(* weakord: command-line front end.

   - run:    execute a litmus test on the reference SC machine, the
             abstract hardware machines, and the axiomatic models
   - races:  DRF0/DRF1 analysis with witnesses
   - verify: Definition 2 over the built-in corpus (or given files)
   - sim:    timing simulation of the paper's workloads
   - trace:  run a litmus test on the simulator and export the structured
             event trace (Chrome trace_event JSON / summary table)
   - faults: seeded fault-injection campaigns on the protocol simulator
   - gen:    emit the litmus source for a generator seed (the
             reproduction half of the batch service's determinism
             contract)
   - batch:  the supervised batch verification service — a job file
             fanned out across forked workers with timeouts, retry,
             quarantine, a persistent verdict cache and drain/resume
   - serve:  the batch machinery as a long-lived daemon — many clients
             over a Unix-domain socket, per-client fair scheduling, one
             shared verdict cache (protocol: docs/PROTOCOL.md)
   - client: stdin-driven protocol client for a running daemon
   - fuzz:   generated corpus through the three-way differential oracle
             (machines vs axiomatic models vs simulator), disagreements
             quarantined with seed-exact repro recipes
   - list:   what is available

   Exit codes: 0 success; 1 a check ran and failed (race, counterexample,
   fault-campaign failure); 2 parse failure, unreadable input, or an
   unusable checkpoint; 3 a budget (deadline, memory, fuel) suspended the
   run cleanly — a checkpoint, when configured, holds the resume point;
   4 a batch completed but quarantined at least one poison job. *)

open Cmdliner

(* --- shared helpers -------------------------------------------------------- *)

(* Parse failures exit 2 with a located, compiler-style report; the
   campaign and verification commands reserve exit 1 for "the check ran
   and failed". *)
let load_prog path =
  try
    if String.equal path "-" then
      Litmus_parse.parse_string (In_channel.input_all In_channel.stdin)
    else Litmus_parse.parse_file path
  with
  | Litmus_parse.Parse_error { line; col; msg } ->
      let file = if String.equal path "-" then "<stdin>" else path in
      Fmt.epr "%s:%d:%d: parse error: %s@." file line col msg;
      exit 2
  | Sys_error e ->
      Fmt.epr "weakord: %s@." e;
      exit 2

let prog_or_classic name_or_path =
  match Litmus_classics.find name_or_path with
  | Some e -> e.Litmus_classics.prog
  | None -> load_prog name_or_path

let corpus = List.map (fun e -> e.Litmus_classics.prog) Litmus_classics.all

let drf_model_conv =
  let parse = function
    | "drf0" -> Ok Drf.DRF0
    | "drf1" -> Ok Drf.DRF1
    | s -> Error (`Msg (Printf.sprintf "unknown model %S (drf0|drf1)" s))
  in
  Arg.conv (parse, Drf.pp_model)

let test_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TEST"
        ~doc:
          "A litmus file, $(b,-) for stdin, or the name of a built-in test \
           (see $(b,weakord list)).")

let jobs_conv =
  let parse = function
    | "auto" -> Ok None
    | s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok (Some n)
        | Some n ->
            Error (`Msg (Printf.sprintf "--jobs must be at least 1 (got %d)" n))
        | None ->
            Error
              (`Msg (Printf.sprintf "--jobs expects a count or 'auto', got %S" s)))
  in
  let print ppf = function
    | None -> Fmt.string ppf "auto"
    | Some n -> Fmt.int ppf n
  in
  Arg.conv (parse, print)

let jobs_flag =
  Arg.(
    value
    & opt jobs_conv None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Explore machine state spaces with $(docv) parallel domains, or \
           $(b,auto) (the default) for the recognized core count. The \
           engine falls back to the sequential path when extra domains \
           cannot help (more domains than cores, or a state space too \
           small to spill). The outcome sets are identical for every \
           value.")

(* [auto] asks the runtime how many cores it recognizes; an explicit
   count is taken as given (the engine's adaptive fallback still caps it
   at the recognized cores unless it is disabled). *)
let resolve_jobs = function
  | None -> Domain.recommended_domain_count ()
  | Some n -> n

(* --- resilience flags (verify / faults) ------------------------------------- *)

let deadline_flag =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget. When it runs out the command stops at a \
           safe point, writes a final checkpoint (with $(b,--checkpoint)) \
           and exits 3 instead of being killed mid-sweep.")

let mem_budget_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-budget" ] ~docv:"BYTES"
        ~doc:
          "Memory budget for the exploration visited set. When crossed \
           without $(b,--spill-dir), the sequential engine degrades to a \
           Bloom-filter visited set (sound: verdicts become bounded, \
           never wrong) and the parallel engine suspends with a \
           checkpoint; with $(b,--spill-dir), both engines spill the \
           visited set to disk instead and coverage stays exhaustive.")

let no_sym_flag =
  Arg.(
    value & flag
    & info [ "no-sym" ]
        ~doc:
          "Disable symmetry reduction (exploring modulo the program's \
           processor/location automorphism group). The escape hatch and \
           the differential baseline: outcome sets and verdicts are \
           identical either way, only states expanded changes.")

let spill_dir_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "spill-dir" ] ~docv:"DIR"
        ~doc:
          "Spill the exploration visited set to CRC-checked immutable \
           runs in $(docv) when the memory budget is crossed (or the \
           hot-tier cap is hit), instead of degrading to a lossy Bloom \
           filter: coverage stays exhaustive under $(b,--mem-budget). \
           The directory must exist; stale runs in it are removed.")

let spill_threshold_flag =
  Arg.(
    value
    & opt int Explore.spill_flush_default
    & info [ "spill-threshold" ] ~docv:"KEYS"
        ~doc:
          "Hot-tier key cap of the spill store (default $(b,65536)): the \
           in-RAM tier flushes to an on-disk run at this size even \
           without a memory budget. Only meaningful with \
           $(b,--spill-dir).")

let checkpoint_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Keep a crash-safe resume point in $(docv): CRC-checked, \
           written to a temp file and atomically renamed, with the \
           previous generation retained as $(docv).prev.")

let checkpoint_every_flag =
  Arg.(
    value
    & opt int Explore.checkpoint_every_default
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "State expansions between periodic checkpoints (default \
           $(b,1000)); a kill at any moment loses at most that much \
           work.")

let resume_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume from a checkpoint written by $(b,--checkpoint). The \
           file is validated (CRC, format version, machine/model/corpus \
           identity) and rejected loudly — exit 2 — when unusable; a \
           corrupt primary falls back to $(docv).prev.")

let budget_of ~deadline ~mem =
  match (deadline, mem) with
  | None, None -> None
  | _ -> Some (Budget.create ?deadline_s:deadline ?mem_bytes:mem ())

(* --- run -------------------------------------------------------------------- *)

let run_cmd =
  let machines_flag =
    Arg.(
      value & opt_all string []
      & info [ "m"; "machine" ] ~docv:"NAME"
          ~doc:"Machine(s) to run (default: all). Repeatable.")
  in
  let axiomatic_flag =
    Arg.(value & flag & info [ "axiomatic" ] ~doc:"Also run the axiomatic models.")
  in
  let no_por_flag =
    Arg.(
      value & flag
      & info [ "no-por" ]
          ~doc:
            "Disable partial-order reduction everywhere: the SC \
             enumeration and the machines' independence oracles (the \
             escape hatch; every outcome set is identical).")
  in
  let por_stats_flag =
    Arg.(
      value & flag
      & info [ "por-stats" ]
          ~doc:
            "Print each machine's reduction telemetry: states expanded, \
             oracle calls, ample hits, suppressed transitions.")
  in
  let sym_stats_flag =
    Arg.(
      value & flag
      & info [ "sym-stats" ]
          ~doc:
            "Print each machine's symmetry telemetry: automorphism-group \
             order, states expanded, orbit-redirected probes.")
  in
  let action test machine_names axiomatic jobs no_por por_stats no_sym
      sym_stats =
    let jobs = resolve_jobs jobs in
    let prog = prog_or_classic test in
    (match Prog.validate prog with
    | Ok () -> ()
    | Error errs ->
        Fmt.epr "warning: %a@." Fmt.(list ~sep:comma Prog.pp_error) errs);
    Fmt.pr "%a@.@." Prog.pp prog;
    let machines =
      match machine_names with
      | [] -> Machines.all
      | names ->
          List.map
            (fun n ->
              match Machines.find n with
              | Some m -> m
              | None -> Fmt.failwith "unknown machine %S" n)
            names
    in
    let sc = Sc.outcomes ~reduce:(not no_por) prog in
    Fmt.pr "SC outcomes (%d):@.%a@.@." (Final.Set.cardinal sc) Final.pp_set sc;
    let rcfg = { Explore.rcfg_default with Explore.sym = not no_sym } in
    List.iter
      (fun m ->
        let r =
          Machines.explore ~domains:jobs ~reduce:(not no_por) ~rcfg m prog
        in
        let outs = Explore.bounded_value r.Explore.result in
        let extra = Final.Set.diff outs sc in
        Fmt.pr "%-8s %d outcomes%s%s@." (Machines.name m)
          (Final.Set.cardinal outs)
          (if Final.Set.is_empty extra then " (appears SC)"
           else Fmt.str ", %d beyond SC" (Final.Set.cardinal extra))
          (match Machines.allows_exists m prog with
          | Some true -> "; allows 'exists'"
          | Some false -> "; forbids 'exists'"
          | None -> "");
        if por_stats then begin
          let st = r.Explore.stats in
          Fmt.pr "  por: %s, %d state(s), %d oracle call(s), %d ample \
                  hit(s), %d suppressed@."
            (if st.Explore.por_enabled then "on" else "off")
            st.Explore.states_expanded st.Explore.oracle_calls
            st.Explore.ample_hits st.Explore.suppressed
        end;
        if sym_stats then begin
          let st = r.Explore.stats in
          Fmt.pr "  sym: group %d, %d state(s), %d orbit hit(s)@."
            st.Explore.sym_group st.Explore.states_expanded
            st.Explore.sym_hits
        end;
        if not (Final.Set.is_empty extra) then
          Fmt.pr "  non-SC: %a@." Final.pp_set extra)
      machines;
    if axiomatic then begin
      Fmt.pr "@.axiomatic models:@.";
      List.iter
        (fun m ->
          let outs = Models.outcomes m prog in
          Fmt.pr "%-18s %d outcomes%s@." (Models.name m)
            (Final.Set.cardinal outs)
            (match Models.allows_exists m prog with
            | Some true -> "; allows 'exists'"
            | Some false -> "; forbids 'exists'"
            | None -> ""))
        Models.all
    end
  in
  let doc = "run a litmus test on the machines and models" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const action $ test_arg $ machines_flag $ axiomatic_flag $ jobs_flag
      $ no_por_flag $ por_stats_flag $ no_sym_flag $ sym_stats_flag)

(* --- races ------------------------------------------------------------------ *)

let races_cmd =
  let model_flag =
    Arg.(
      value
      & opt drf_model_conv Drf.DRF0
      & info [ "model" ] ~docv:"MODEL" ~doc:"Synchronization model (drf0|drf1).")
  in
  let action test model =
    let prog = prog_or_classic test in
    Fmt.pr "%a@.@." Prog.pp prog;
    match Drf.check ~model prog with
    | Ok () -> Fmt.pr "The program obeys %a: no data races.@." Drf.pp_model model
    | Error races ->
        Fmt.pr "The program violates %a:@.%a@." Drf.pp_model model
          Fmt.(list ~sep:cut Drf.pp_race)
          races;
        exit 1
  in
  let doc = "check a program against DRF0 or DRF1 (Definition 3)" in
  Cmd.v (Cmd.info "races" ~doc) Term.(const action $ test_arg $ model_flag)

(* --- verify ------------------------------------------------------------------ *)

let verify_cmd =
  let machine_flag =
    Arg.(
      value & opt string "def2"
      & info [ "m"; "machine" ] ~docv:"NAME" ~doc:"Machine to verify.")
  in
  let model_flag =
    Arg.(
      value & opt string "drf0"
      & info [ "model" ] ~docv:"MODEL" ~doc:"Synchronization model (drf0|drf1).")
  in
  let files_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Litmus files or built-in test names (including the scaling \
             corpus: big3, big4, big5) for the corpus (default: the \
             built-in litmus corpus).")
  in
  let verbose_flag =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:
            "After the report, print one telemetry line per verdict: \
             states, symmetry group and orbit hits, degradation point, \
             spilled runs/keys.")
  in
  let no_por_flag =
    Arg.(
      value & flag
      & info [ "no-por" ]
          ~doc:
            "Disable partial-order reduction on both sides: the SC \
             reference enumeration and the machine's oracle (the escape \
             hatch; the verdicts are identical).")
  in
  let fuel_flag =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Expand at most $(docv) distinct states per program (a bound, \
             like the budgets: exhausting it suspends with exit 3). The \
             bound spans resume — a resumed run continues the original \
             budget.")
  in
  let action machine_name model_name files jobs no_por fuel deadline mem
      checkpoint checkpoint_every resume no_sym spill_dir spill_threshold
      verbose =
    let jobs = resolve_jobs jobs in
    let machine =
      match Machines.find machine_name with
      | Some m -> m
      | None -> Fmt.failwith "unknown machine %S" machine_name
    in
    let model =
      match model_name with
      | "drf0" -> Weak_ordering.drf0
      | "drf1" -> Weak_ordering.drf1
      | "all" -> Weak_ordering.unconstrained
      | s -> Fmt.failwith "unknown model %S (drf0|drf1|all)" s
    in
    let programs =
      match files with [] -> corpus | fs -> List.map prog_or_classic fs
    in
    match
      Weak_ordering.verify_machine ~domains:jobs ?fuel ~por:(not no_por)
        ~sym:(not no_sym) ?spill_dir ~spill_threshold
        ?budget:(budget_of ~deadline ~mem)
        ?checkpoint ~checkpoint_every ?resume
        ~on_event:(fun m -> Fmt.epr "weakord: %s@." m)
        ~machine ~model programs
    with
    | exception Explore.Resume_rejected msg ->
        Fmt.epr "weakord: unusable checkpoint: %s@." msg;
        exit 2
    | rr ->
        let report = rr.Weak_ordering.report in
        Fmt.pr "%a@." Weak_ordering.pp_report report;
        if verbose then
          List.iter
            (fun v ->
              Fmt.pr
                "  %-20s states=%d sym-group=%d sym-hits=%d%s%s@."
                (Prog.name v.Weak_ordering.program)
                v.Weak_ordering.states v.Weak_ordering.sym_group
                v.Weak_ordering.sym_hits
                (match v.Weak_ordering.degraded_at with
                | Some n -> Fmt.str " degraded-at=%d" n
                | None -> "")
                (if v.Weak_ordering.spilled_runs > 0 then
                   Fmt.str " spilled-runs=%d spilled-keys=%d"
                     v.Weak_ordering.spilled_runs
                     v.Weak_ordering.spilled_keys
                 else ""))
            report.Weak_ordering.verdicts;
        (match rr.Weak_ordering.suspended with
        | Some reason ->
            Fmt.epr
              "weakord: %s budget exhausted after %d/%d program(s)%s@."
              (Explore.stop_reason_string reason)
              (List.length report.Weak_ordering.verdicts)
              (List.length programs)
              (match checkpoint with
              | Some p -> "; resume point written to " ^ p
              | None -> " (no --checkpoint: progress was discarded)");
            exit 3
        | None -> if not report.Weak_ordering.weakly_ordered then exit 1)
  in
  let doc = "check Definition 2 over a corpus of programs" in
  Cmd.v
    (Cmd.info "verify" ~doc)
    Term.(
      const action $ machine_flag $ model_flag $ files_arg $ jobs_flag
      $ no_por_flag $ fuel_flag $ deadline_flag $ mem_budget_flag
      $ checkpoint_flag $ checkpoint_every_flag $ resume_flag $ no_sym_flag
      $ spill_dir_flag $ spill_threshold_flag $ verbose_flag)

(* --- sim -------------------------------------------------------------------- *)

let workload_of_name ?nprocs = function
  | "fig3" | "handoff" ->
      (match nprocs with
      | Some n when n <> 2 ->
          Fmt.failwith "fig3 is a fixed 2-processor handoff (got --nprocs %d)"
            n
      | _ -> ());
      Workload.fig3_handoff ()
  | "barrier" -> Workload.spin_barrier ?nprocs ()
  | "barrier-data" -> Workload.spin_barrier ?nprocs ~sync_spin:false ()
  | "locks" -> Workload.critical_sections ?nprocs ()
  | "pipeline" -> Workload.pipeline ?nprocs ()
  | "ticket" -> Workload.ticket_lock ?nprocs ()
  | "sense-barrier" -> Workload.sense_barrier ?nprocs ()
  | "sense-barrier-data" -> Workload.sense_barrier ?nprocs ~sync_spin:false ()
  | s -> Fmt.failwith "unknown workload %S" s

let policy_of_name n =
  match
    List.find_opt (fun p -> String.equal (Cpu.policy_name p) n) Cpu.all_policies
  with
  | Some p -> p
  | None -> Fmt.failwith "unknown policy %S" n

let sim_cmd =
  let workload_flag =
    Arg.(
      value & opt string "fig3"
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:
            "Workload: fig3|barrier|barrier-data|locks|pipeline|ticket|\
             sense-barrier|sense-barrier-data.")
  in
  let policy_flag =
    Arg.(
      value & opt_all string []
      & info [ "p"; "policy" ] ~docv:"NAME"
          ~doc:"Policy (sc|def1|def2|def2-rs); default all. Repeatable.")
  in
  let net_flag =
    Arg.(
      value & opt int 20
      & info [ "net" ] ~docv:"CYCLES" ~doc:"One-way network latency.")
  in
  let out_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Write the run's Chrome trace_event JSON to $(docv) (open in \
             Perfetto or chrome://tracing). With several policies the \
             policy name is inserted before the extension.")
  in
  let summary_flag =
    Arg.(
      value & flag
      & info [ "trace-summary" ]
          ~doc:
            "Print the per-category event table and the stall-attribution \
             table after each run.")
  in
  let nprocs_flag =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "nprocs" ] ~docv:"N"
          ~doc:
            "Run the workload at $(docv) processors (generators default to \
             their paper-scale widths).")
  in
  let normalize_flag =
    Arg.(
      value & flag
      & info [ "normalize" ]
          ~doc:
            "Normalize the exported Chrome trace: shift timestamps to start \
             at 0 and totally order same-cycle events — byte-stable output \
             for golden comparisons.")
  in
  let golden_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "golden" ] ~docv:"FILE"
          ~doc:
            "Write the run's timing fingerprint (normalized Chrome trace, \
             stall table, final memory image, total cycles) to $(docv). \
             Requires exactly one --policy.")
  in
  let no_sanitize_flag =
    Arg.(
      value & flag
      & info [ "no-sanitize" ]
          ~doc:
            "Skip the per-delivery coherence sanitizer sweep (it scans every \
             cache line on every message — quadratic in cores; timing is \
             unaffected either way). For throughput measurement at high \
             core counts.")
  in
  let action workload_name policy_names net nprocs normalize golden
      no_sanitize out summary =
    let w = workload_of_name ?nprocs workload_name in
    let cfg = Sim_config.make ~net ~sanitize:(not no_sanitize) () in
    let policies =
      match policy_names with
      | [] -> Cpu.all_policies
      | names -> List.map policy_of_name names
    in
    if golden <> None && List.length policies <> 1 then
      Fmt.failwith "--golden requires exactly one --policy";
    List.iter
      (fun p ->
        let obs =
          if out <> None || golden <> None || summary then Obs.create ()
          else Obs.null
        in
        let t0 = Unix.gettimeofday () in
        let r = Sim_run.run ~cfg ~obs p w in
        let wall = Unix.gettimeofday () -. t0 in
        Fmt.pr "%a@." Sim_run.pp r;
        let per s n = if s > 0. then float_of_int n /. s else 0. in
        Fmt.pr "%d events in %.1f ms (%.0f events/sec, %.0f cycles/sec)@."
          r.Sim_run.events (wall *. 1000.)
          (per wall r.Sim_run.events)
          (per wall r.Sim_run.total_cycles);
        if summary then
          Fmt.pr "%a@."
            (Obs.pp_summary ~stalls:r.Sim_run.stalls)
            obs;
        (match golden with
        | None -> ()
        | Some path ->
            Atomic_io.write_file path (Sim_run.golden_artifact ~obs r);
            Fmt.pr "golden written to %s@." path);
        (match out with
        | None -> ()
        | Some path ->
            let path =
              if List.length policies = 1 then path
              else
                Filename.remove_extension path
                ^ "." ^ Cpu.policy_name p
                ^ Filename.extension path
            in
            Obs.Chrome.write_file ~normalize path obs;
            Fmt.pr "trace written to %s@." path);
        Fmt.pr "@.")
      policies
  in
  let doc = "run a timing-simulator workload under the issue policies" in
  Cmd.v
    (Cmd.info "sim" ~doc)
    Term.(
      const action $ workload_flag $ policy_flag $ net_flag $ nprocs_flag
      $ normalize_flag $ golden_flag $ no_sanitize_flag $ out_flag
      $ summary_flag)

(* --- trace ------------------------------------------------------------------- *)

let trace_cmd =
  let machine_flag =
    Arg.(
      value & opt string "def2"
      & info [ "m"; "machine" ] ~docv:"NAME"
          ~doc:"Issue policy to trace (sc|def1|def2|def2-rs).")
  in
  let out_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Write Chrome trace_event JSON to $(docv) (open in Perfetto or \
             chrome://tracing).")
  in
  let summary_flag =
    Arg.(
      value & flag
      & info [ "trace-summary" ]
          ~doc:
            "Print the human-readable event and stall-attribution tables \
             (the default when no $(b,-o) is given).")
  in
  let normalize_flag =
    Arg.(
      value & flag
      & info [ "normalize" ]
          ~doc:
            "Shift timestamps so the earliest event starts at 0 — \
             byte-stable output for diffing and golden tests.")
  in
  let action test policy_name out summary normalize =
    let prog = prog_or_classic test in
    let policy = policy_of_name policy_name in
    let obs = Obs.create () in
    let r = Sim_litmus.run ~obs policy prog in
    Fmt.pr "%s under %s: %d cycles, %d messages, %d event(s) recorded@."
      (Prog.name prog)
      (Cpu.policy_name policy)
      r.Sim_litmus.total_cycles r.Sim_litmus.messages (Obs.recorded obs);
    (match out with
    | Some path ->
        Obs.Chrome.write_file ~normalize path obs;
        Fmt.pr "trace written to %s@." path
    | None -> ());
    if summary || out = None then
      Fmt.pr "%a@." (Obs.pp_summary ~stalls:r.Sim_litmus.stalls) obs
  in
  let doc =
    "run a litmus test on the timing simulator and export its structured \
     event trace"
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      const action $ test_arg $ machine_flag $ out_flag $ summary_flag
      $ normalize_flag)

(* --- faults ------------------------------------------------------------------ *)

(* A fault campaign's resume point: the run grid is (scenario, program,
   seed) and every run is deterministic in that triple — [fault_seed] is
   the seed component — so recording the position (plus the grid itself,
   for identity validation) replays the identical fault schedule after a
   resume.  Accumulators travel along so the per-scenario summary lines
   come out right even when the scenario was split across processes. *)
type fault_ckpt = {
  f_policy : string;
  f_scenarios : string list;
  f_seeds : int;
  f_intensity : int;
  f_tests : string list;  (* program fingerprints, in campaign order *)
  f_pos : int * int * int;  (* scenario idx, program idx, next RNG seed *)
  f_failures : int;
  f_acc : int * int * int * int * int;  (* ok, retr, nacks, dups, maxc *)
}

let faults_kind = "weakord.faults"

let write_fault_ckpt path ck =
  let s, p, d = ck.f_pos in
  Snapshot.write_file path
    (Snapshot.frame ~kind:faults_kind
       ~meta:(Printf.sprintf "scenario %d, program %d, seed %d" s p d)
       ~payload:(Marshal.to_string ck []))

let load_fault_ckpt path =
  match Snapshot.load path with
  | Error (e, _) ->
      Fmt.epr "weakord: unusable checkpoint %s: %s@." path
        (Snapshot.error_string e);
      exit 2
  | Ok { Snapshot.container = c; recovered } ->
      if not (String.equal c.Snapshot.kind faults_kind) then begin
        Fmt.epr "weakord: %s holds a %S snapshot, expected %S@." path
          c.Snapshot.kind faults_kind;
        exit 2
      end;
      (match (Marshal.from_string c.Snapshot.payload 0 : fault_ckpt) with
      | ck -> (ck, recovered)
      | exception (Failure _ | Invalid_argument _) ->
          Fmt.epr "weakord: %s: checkpoint payload does not unmarshal@." path;
          exit 2)

let faults_cmd =
  let seeds_flag =
    Arg.(
      value & opt int 10
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Fault schedules per scenario (seeds 0..N-1).")
  in
  let scenario_flag =
    Arg.(
      value & opt_all string []
      & info [ "s"; "scenario" ] ~docv:"NAME"
          ~doc:
            "Fault scenario (none|delay|drop|dup|chaos); default: every \
             faulty one. Repeatable.")
  in
  let policy_flag =
    Arg.(
      value & opt string "def2"
      & info [ "p"; "policy" ] ~docv:"NAME"
          ~doc:"Issue policy under test (sc|def1|def2|def2-rs).")
  in
  let intensity_flag =
    Arg.(
      value & opt int 1000
      & info [ "intensity" ] ~docv:"PERMILLE"
          ~doc:"Scale the scenario's fault rates (1000 = full strength).")
  in
  let tests_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TEST"
          ~doc:
            "Litmus files or built-in test names (default: the built-in \
             corpus).")
  in
  let window_flag =
    Arg.(
      value & opt int 0
      & info [ "trace-window" ] ~docv:"CYCLES"
          ~doc:
            "On each failing run, dump the trace events within $(docv) \
             cycles of every injected fault (0 disables tracing).")
  in
  let action seeds scenario_names policy_name intensity tests window deadline
      checkpoint resume =
    let policy = policy_of_name policy_name in
    let progs =
      match tests with
      | [] ->
          (* One concrete schedule runs per seed, so the corpus default
             excludes read_sync_release: its [await s 0] legitimately spins
             forever on schedules where the other thread's [Set(s,1)] wins
             the race — a program property, not a protocol wedge. *)
          List.filter_map
            (fun e ->
              let p = e.Litmus_classics.prog in
              if String.equal (Prog.name p) "read_sync_release" then None
              else Some p)
            Litmus_classics.all
      | ts -> List.map prog_or_classic ts
    in
    let scenarios =
      match scenario_names with
      | [] -> List.filter (fun (n, _) -> n <> "none") Fault.scenarios
      | names ->
          List.map
            (fun n ->
              match Fault.scenario n with
              | Some p -> (n, p)
              | None ->
                  Fmt.failwith "unknown scenario %S (%s)" n
                    (String.concat "|" Fault.scenario_names))
            names
    in
    let progs_a = Array.of_list progs in
    let scen_a = Array.of_list scenarios in
    let fps =
      List.map
        (fun p -> Format.asprintf "%s|%a" (Prog.name p) Prog.pp p)
        progs
    in
    let scen_names = List.map fst scenarios in
    let budget = budget_of ~deadline ~mem:None in
    (* Restore the campaign position and accumulators from a checkpoint;
       the grid (policy, scenarios, seeds, intensity, corpus) must match
       exactly or the resumed schedule would not be the original one. *)
    let (s0, p0, d0), failures0, acc0 =
      match resume with
      | None -> ((0, 0, 0), 0, (0, 0, 0, 0, 0))
      | Some path ->
          let ck, recovered = load_fault_ckpt path in
          let mismatch what =
            Fmt.epr
              "weakord: checkpoint %s was taken for a different campaign \
               (%s differs)@."
              path what;
            exit 2
          in
          if not (String.equal ck.f_policy policy_name) then
            mismatch "policy";
          if ck.f_scenarios <> scen_names then mismatch "scenario list";
          if ck.f_seeds <> seeds then mismatch "--seeds";
          if ck.f_intensity <> intensity then mismatch "--intensity";
          if ck.f_tests <> fps then mismatch "test corpus";
          let s, p, d = ck.f_pos in
          Fmt.epr
            "weakord: resuming campaign at scenario %d, program %d, seed \
             %d%s@."
            s p d
            (if recovered then
               " (recovered from the last-good .prev generation)"
             else "");
          (ck.f_pos, ck.f_failures, ck.f_acc)
    in
    let failures = ref failures0 in
    let ok = ref 0
    and retr = ref 0
    and nacks = ref 0
    and dups = ref 0
    and maxc = ref 0 in
    let () =
      let a, b, c, d, e = acc0 in
      ok := a;
      retr := b;
      nacks := c;
      dups := d;
      maxc := e
    in
    let save pos =
      match checkpoint with
      | None -> ()
      | Some path ->
          write_fault_ckpt path
            {
              f_policy = policy_name;
              f_scenarios = scen_names;
              f_seeds = seeds;
              f_intensity = intensity;
              f_tests = fps;
              f_pos = pos;
              f_failures = !failures;
              f_acc = (!ok, !retr, !nacks, !dups, !maxc);
            }
    in
    let nscen = Array.length scen_a and nprog = Array.length progs_a in
    Fmt.pr
      "fault campaign: %d program(s) x %d scenario(s) x %d seed(s), policy \
       %s, intensity %d/1000@.@."
      nprog nscen seeds (Cpu.policy_name policy) intensity;
    let si = ref s0 and pi = ref p0 and di = ref d0 in
    while !si < nscen do
      let sname, profile = scen_a.(!si) in
      let profile = Fault.scale profile ~permille:intensity in
      while !pi < nprog do
        let prog = progs_a.(!pi) in
        let drf0 =
          match Drf.check ~model:Drf.DRF0 prog with
          | Ok () -> true
          | Error _ -> false
        in
        while !di < seeds do
          (* Safe point before each run: suspend cleanly at the deadline
             with a checkpoint pointing at this exact (scenario, program,
             seed) — the resumed campaign replays the identical fault
             schedule from here. *)
          (match budget with
          | Some b when Budget.over_deadline b ->
              save (!si, !pi, !di);
              Fmt.epr
                "weakord: deadline exhausted at scenario %d/%d, program \
                 %d/%d, seed %d/%d%s@."
                !si nscen !pi nprog !di seeds
                (match checkpoint with
                | Some p -> "; resume point written to " ^ p
                | None -> " (no --checkpoint: progress was discarded)");
              exit 3
          | _ -> ());
          let seed = !di in
          let cfg = Sim_config.make ~faults:profile ~fault_seed:seed () in
          let obs = if window > 0 then Obs.create () else Obs.null in
          (* On a failing run, show the events surrounding each
             injected fault — the ring retains them even when the run
             raised. *)
          let dump_fault_windows () =
            if window > 0 then
              List.iter
                (fun e ->
                  if String.equal e.Obs.cat "fault" then
                    Fmt.pr "%a@."
                      (fun ppf ->
                        Obs.pp_window ppf ~around:e.Obs.ts ~radius:window)
                      obs)
                (Obs.events obs)
          in
          (* The watchdog hook dumps a final checkpoint (pointing at the
             wedged run) before the abort unwinds the simulator. *)
          (match
             Sim_litmus.try_run ~cfg ~obs
               ~on_wedged:(fun _diag -> save (!si, !pi, !di))
               policy prog
           with
          | Error f ->
              incr failures;
              Fmt.pr "FAIL %-22s %-6s seed %-3d %s@." (Prog.name prog) sname
                seed (Sim_run.failure_kind f);
              dump_fault_windows ()
          | Ok r ->
              retr := !retr + r.Sim_litmus.retransmits;
              nacks := !nacks + r.Sim_litmus.nacks;
              dups := !dups + r.Sim_litmus.dups_suppressed;
              maxc := max !maxc r.Sim_litmus.total_cycles;
              if
                drf0 && not (Sim_litmus.allowed_by_sc prog r.Sim_litmus.final)
              then begin
                incr failures;
                Fmt.pr "FAIL %-22s %-6s seed %-3d non-SC outcome %a@."
                  (Prog.name prog) sname seed Final.pp r.Sim_litmus.final;
                dump_fault_windows ()
              end
              else incr ok);
          incr di;
          save (!si, !pi, !di)
        done;
        di := 0;
        incr pi
      done;
      Fmt.pr
        "%-6s %4d ok, max %7d cycles, %5d retransmits, %4d nacks, %4d \
         dups suppressed@."
        sname !ok !maxc !retr !nacks !dups;
      ok := 0;
      retr := 0;
      nacks := 0;
      dups := 0;
      maxc := 0;
      pi := 0;
      incr si;
      save (!si, 0, 0)
    done;
    if !failures > 0 then begin
      Fmt.pr "@.%d failing run(s).@." !failures;
      exit 1
    end
    else
      Fmt.pr
        "@.every fault schedule terminated, passed the sanitizer, and \
         produced a model-allowed outcome.@."
  in
  let doc =
    "run seeded fault-injection campaigns over the litmus corpus on the \
     protocol simulator"
  in
  Cmd.v
    (Cmd.info "faults" ~doc)
    Term.(
      const action $ seeds_flag $ scenario_flag $ policy_flag $ intensity_flag
      $ tests_arg $ window_flag $ deadline_flag $ checkpoint_flag
      $ resume_flag)

(* --- fences ------------------------------------------------------------------ *)

let fences_cmd =
  let action test =
    let prog = prog_or_classic test in
    let evts = Evts.of_prog prog in
    let pairs = Delay_set.delay_pairs evts in
    Fmt.pr "%a@.@." Prog.pp prog;
    if pairs = [] then
      Fmt.pr "The delay set is empty: no cross-processor orderings needed.@."
    else begin
      Fmt.pr "Delay set (%d program-order pairs to enforce):@."
        (List.length pairs);
      List.iter
        (fun (a, b) ->
          Fmt.pr "  %a before %a@." Event.pp (Evts.event evts a) Event.pp
            (Evts.event evts b))
        pairs;
      let fenced = Delay_set.with_fences prog in
      Fmt.pr "@.Fenced program:@.%s@." (Litmus_print.to_string fenced);
      Fmt.pr "appears SC on wbuf: %b, on ooo: %b@."
        (Machines.appears_sc Machines.wbuf fenced)
        (Machines.appears_sc Machines.ooo fenced)
    end
  in
  let doc = "Shasha-Snir delay-set analysis and fence insertion" in
  Cmd.v (Cmd.info "fences" ~doc) Term.(const action $ test_arg)

(* --- gen --------------------------------------------------------------------- *)

let profile_conv =
  let parse s =
    match Litmus_gen.profile_of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown profile %S (default|wide|deep-await|mixed-sync)" s))
  in
  let print ppf p = Fmt.string ppf (Litmus_gen.profile_name p) in
  Arg.conv (parse, print)

let profile_flag =
  Arg.(
    value
    & opt profile_conv Litmus_gen.default_config.Litmus_gen.profile
    & info [ "profile" ] ~docv:"NAME"
        ~doc:
          "Generator shape profile: $(b,default), $(b,wide) (more, shorter \
           threads), $(b,deep-await) (await-heavy synchronization chains), \
           $(b,mixed-sync) (a location accessed both plainly and as a \
           synchronization point). Each profile is its own frozen \
           seed-to-program mapping; the profile is part of every repro \
           recipe.")

let no_shrink_flag =
  Arg.(
    value & flag
    & info [ "no-shrink" ]
        ~doc:
          "Skip ddmin minimization of quarantined programs (dossiers ship \
           only the full generated program).")

let gen_cmd =
  let seed_arg =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"SEED" ~doc:"Generator seed (any integer).")
  in
  let threads_flag =
    Arg.(
      value
      & opt int Litmus_gen.default_config.Litmus_gen.max_threads
      & info [ "threads" ] ~docv:"N" ~doc:"Maximum threads.")
  in
  let instrs_flag =
    Arg.(
      value
      & opt int Litmus_gen.default_config.Litmus_gen.max_instrs
      & info [ "instrs" ] ~docv:"N" ~doc:"Maximum instructions per thread.")
  in
  let locs_flag =
    Arg.(
      value
      & opt int Litmus_gen.default_config.Litmus_gen.num_locs
      & info [ "locs" ] ~docv:"N" ~doc:"Data locations.")
  in
  let sync_locs_flag =
    Arg.(
      value
      & opt int Litmus_gen.default_config.Litmus_gen.num_sync_locs
      & info [ "sync-locs" ] ~docv:"N" ~doc:"Synchronization locations.")
  in
  let no_rmw_flag =
    Arg.(value & flag & info [ "no-rmw" ] ~doc:"No read-modify-writes.")
  in
  let no_await_flag =
    Arg.(value & flag & info [ "no-await" ] ~doc:"No await spins.")
  in
  let live_flag =
    Arg.(
      value & flag
      & info [ "live" ]
          ~doc:
            "Retry (deterministically) until the program has at least one \
             complete SC execution; exit 1 if none within the attempt \
             bound.")
  in
  let out_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the litmus source to $(docv) instead of stdout.")
  in
  let action seed threads instrs locs sync_locs no_rmw no_await profile live
      out =
    let config =
      {
        Litmus_gen.max_threads = threads;
        max_instrs = instrs;
        num_locs = locs;
        num_sync_locs = sync_locs;
        allow_rmw = not no_rmw;
        allow_await = not no_await;
        profile;
      }
    in
    let prog =
      if live then
        match Litmus_gen.generate_live ~config seed with
        | Some p -> p
        | None ->
            Fmt.epr
              "weakord: seed %d yields no live program within the attempt \
               bound@."
              seed;
            exit 1
      else Litmus_gen.generate ~config seed
    in
    let text = Litmus_print.to_string prog in
    match out with
    | None -> print_string text
    | Some path ->
        Out_channel.with_open_bin path (fun ch ->
            Out_channel.output_string ch text)
  in
  let doc =
    "emit the litmus source for a generator seed (deterministic: the same \
     seed and flags always reproduce the same program — the $(b,seed) and \
     $(b,gen) fields in batch/serve JSONL records and in fuzz quarantine \
     reports name exactly this invocation)"
  in
  Cmd.v
    (Cmd.info "gen" ~doc)
    Term.(
      const action $ seed_arg $ threads_flag $ instrs_flag $ locs_flag
      $ sync_locs_flag $ no_rmw_flag $ no_await_flag $ profile_flag
      $ live_flag $ out_flag)

(* --- batch ------------------------------------------------------------------- *)

let batch_cmd =
  let jobfile_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOBFILE"
          ~doc:
            "The job file ($(b,-) for stdin): one job per line — see the \
             format in DESIGN.md ($(b,test NAME), $(b,file PATH), $(b,seed \
             N), $(b,seeds LO..HI), $(b,wedge), with $(b,machine=M) and \
             generator options per line).")
  in
  let out_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Append results as JSONL to $(docv) (default: stdout). One \
             object per job, in completion order, carrying the engine \
             telemetry ($(b,states), $(b,complete), $(b,degraded) — where \
             the visited set fell back to a Bloom filter under \
             $(b,--mem-budget), or $(b,null) — and $(b,spilled_runs), \
             disk-spill sweeps under $(b,--spill-dir)); volatile fields \
             ($(b,cached), $(b,attempts), $(b,ms)) come last so runs can \
             be compared after stripping them.")
  in
  let workers_flag =
    Arg.(
      value & opt int Batch.default_cfg.Batch.workers
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Forked worker processes to keep in flight. Each job attempt \
             runs in its own process: a crash or wedge costs that attempt, \
             never the batch.")
  in
  let timeout_flag =
    Arg.(
      value & opt float Batch.default_cfg.Batch.timeout_s
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Per-job wall clock; a worker past it is SIGKILLed and the \
             attempt counts as failed.")
  in
  let retries_flag =
    Arg.(
      value & opt int Batch.default_cfg.Batch.retries
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Attempts per job before quarantine (with exponential backoff \
             and deterministic jitter between attempts).")
  in
  let backoff_flag =
    Arg.(
      value & opt int Batch.default_cfg.Batch.backoff_ms
      & info [ "backoff" ] ~docv:"MS" ~doc:"Base retry backoff.")
  in
  let cache_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:
            "Persistent verdict cache. Append-only, CRC-validated per \
             record: a torn or corrupted record is skipped and recomputed, \
             never trusted. Keyed by canonical program text, machine, \
             model and engine version, so replaying a corpus is nearly \
             free and an engine change can never serve stale verdicts.")
  in
  let model_flag =
    Arg.(
      value & opt string "drf0"
      & info [ "model" ] ~docv:"MODEL"
          ~doc:"Synchronization model (drf0|drf1|all|none).")
  in
  let machine_flag =
    Arg.(
      value & opt string "def2"
      & info [ "m"; "machine" ] ~docv:"NAME"
          ~doc:"Default machine for job-file lines that name none.")
  in
  let fuel_flag =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Per-job state-expansion bound forwarded to the workers.")
  in
  let verbose_flag =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:
            "Log per-attempt worker lifecycle events: pids, retries, \
             exact-key cache hits and symmetry-key dedups (the \
             $(b,sym_dedup) counter in the closing summary).")
  in
  let action jobfile out workers timeout retries backoff cache_path model_name
      machine deadline checkpoint resume fuel verbose spill_dir mem_budget =
    let model =
      match Worker.model_of_string model_name with
      | Some m -> m
      | None ->
          Fmt.epr "weakord: unknown model %S (drf0|drf1|all|none)@." model_name;
          exit 2
    in
    (match Machines.find machine with
    | Some _ -> ()
    | None ->
        Fmt.epr "weakord: unknown machine %S@." machine;
        exit 2);
    let jobs =
      let parsed =
        if String.equal jobfile "-" then
          Job.parse_string ~default_machine:machine
            (In_channel.input_all In_channel.stdin)
        else Job.parse_file ~default_machine:machine jobfile
      in
      match parsed with
      | Ok jobs -> jobs
      | Error msg ->
          Fmt.epr "weakord: %s: %s@."
            (if String.equal jobfile "-" then "<stdin>" else jobfile)
            msg;
          exit 2
    in
    if jobs = [] then begin
      Fmt.epr "weakord: %s: no jobs@." jobfile;
      exit 2
    end;
    let cache =
      match cache_path with
      | None -> Verdict_cache.in_memory ()
      | Some p -> Verdict_cache.open_file p
    in
    let cfg =
      {
        Batch.out;
        workers;
        timeout_s = timeout;
        retries;
        backoff_ms = backoff;
        cache;
        checkpoint;
        resume;
        deadline_s = deadline;
        model;
        fuel;
        spill_dir;
        mem_budget;
        log = (fun m -> Fmt.epr "weakord: %s@." m);
        verbose;
      }
    in
    match Batch.run cfg jobs with
    | exception Batch.Resume_rejected msg ->
        Verdict_cache.close cache;
        Fmt.epr "weakord: unusable checkpoint: %s@." msg;
        exit 2
    | summary ->
        Verdict_cache.close cache;
        Fmt.epr "%a@." Batch.pp_summary summary;
        if summary.Batch.suspended then
          Fmt.epr "weakord: batch drained with %d job(s) pending%s@."
            summary.Batch.pending
            (match checkpoint with
            | Some p -> "; resume point written to " ^ p
            | None -> " (no --checkpoint: progress was discarded)");
        exit (Batch.exit_code summary)
  in
  let doc =
    "run a batch of verification jobs under a crash-isolating supervisor \
     (forked workers, timeouts, retry with backoff, poison-job \
     quarantine, persistent verdict cache, drain/resume)"
  in
  Cmd.v
    (Cmd.info "batch" ~doc)
    Term.(
      const action $ jobfile_arg $ out_flag $ workers_flag $ timeout_flag
      $ retries_flag $ backoff_flag $ cache_flag $ model_flag $ machine_flag
      $ deadline_flag $ checkpoint_flag $ resume_flag $ fuel_flag
      $ verbose_flag $ spill_dir_flag $ mem_budget_flag)

(* --- serve ------------------------------------------------------------------- *)

let socket_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SOCKET" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let out_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Append every finished ticket as JSONL to $(docv) — the same \
             record schema as $(b,weakord batch) (including the \
             $(b,degraded) and $(b,spilled_runs) telemetry fields), with \
             ticket numbers as job ids.")
  in
  let workers_flag =
    Arg.(
      value & opt int Daemon.default_cfg.Daemon.workers
      & info [ "workers" ] ~docv:"N"
          ~doc:"Forked worker processes to keep in flight across all clients.")
  in
  let timeout_flag =
    Arg.(
      value & opt float Daemon.default_cfg.Daemon.timeout_s
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Per-job wall clock; a worker past it is SIGKILLed and the \
             attempt counts as failed.")
  in
  let retries_flag =
    Arg.(
      value & opt int Daemon.default_cfg.Daemon.retries
      & info [ "retries" ] ~docv:"N"
          ~doc:"Attempts per job before quarantine.")
  in
  let backoff_flag =
    Arg.(
      value & opt int Daemon.default_cfg.Daemon.backoff_ms
      & info [ "backoff" ] ~docv:"MS" ~doc:"Base retry backoff.")
  in
  let cache_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:
            "Persistent verdict cache shared by every client (exact key \
             plus the orbit-canonical symmetry key) — the daemon's whole \
             point: verdicts amortize across clients and restarts.")
  in
  let model_flag =
    Arg.(
      value & opt string "drf0"
      & info [ "model" ] ~docv:"MODEL"
          ~doc:"Synchronization model (drf0|drf1|all|none).")
  in
  let machine_flag =
    Arg.(
      value & opt string "def2"
      & info [ "m"; "machine" ] ~docv:"NAME"
          ~doc:"Default machine for SUBMIT lines that name none.")
  in
  let fuel_flag =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Per-job state-expansion bound forwarded to the workers.")
  in
  let max_clients_flag =
    Arg.(
      value & opt int Daemon.default_cfg.Daemon.max_clients
      & info [ "max-clients" ] ~docv:"N"
          ~doc:"Concurrent connections before new ones are refused (503).")
  in
  let verbose_flag =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:
            "Log connections and per-attempt worker lifecycle events \
             (pids, retries, cache/sym-dedup hits).")
  in
  let action socket out workers timeout retries backoff cache_path model_name
      machine checkpoint resume fuel spill_dir mem_budget max_clients verbose =
    let model =
      match Worker.model_of_string model_name with
      | Some m -> m
      | None ->
          Fmt.epr "weakord: unknown model %S (drf0|drf1|all|none)@." model_name;
          exit 2
    in
    (match Machines.find machine with
    | Some _ -> ()
    | None ->
        Fmt.epr "weakord: unknown machine %S@." machine;
        exit 2);
    let cache =
      match cache_path with
      | None -> Verdict_cache.in_memory ()
      | Some p -> Verdict_cache.open_file p
    in
    let cfg =
      {
        Daemon.socket;
        out;
        workers;
        timeout_s = timeout;
        retries;
        backoff_ms = backoff;
        cache;
        checkpoint;
        resume;
        model;
        machine;
        fuel;
        spill_dir;
        mem_budget;
        max_clients;
        log = (fun m -> Fmt.epr "weakord: %s@." m);
        verbose;
      }
    in
    match Daemon.run cfg with
    | exception Daemon.Startup_error msg ->
        Verdict_cache.close cache;
        Fmt.epr "weakord: %s@." msg;
        exit 2
    | summary ->
        Verdict_cache.close cache;
        Fmt.epr "%a@." Daemon.pp_summary summary;
        if summary.Daemon.suspended then
          Fmt.epr "weakord: daemon drained with %d job(s) pending%s@."
            summary.Daemon.pending
            (match checkpoint with
            | Some p -> "; resume point written to " ^ p
            | None -> " (no --checkpoint: progress was discarded)");
        exit (Daemon.exit_code summary)
  in
  let doc =
    "serve verification jobs to many concurrent clients over a Unix-domain \
     socket (wire protocol in docs/PROTOCOL.md; per-client fair \
     scheduling, one shared verdict cache, SIGTERM drain + checkpoint + \
     resume like batch)"
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const action $ socket_arg $ out_flag $ workers_flag $ timeout_flag
      $ retries_flag $ backoff_flag $ cache_flag $ model_flag $ machine_flag
      $ checkpoint_flag $ resume_flag $ fuel_flag $ spill_dir_flag
      $ mem_budget_flag $ max_clients_flag $ verbose_flag)

(* --- client ------------------------------------------------------------------ *)

let client_cmd =
  let timeout_flag =
    Arg.(
      value & opt float 30.
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:"Give up waiting for a response after $(docv).")
  in
  let no_hello_flag =
    Arg.(
      value & flag
      & info [ "no-hello" ]
          ~doc:
            "Skip the HELLO handshake (for exercising the server's \
             handshake enforcement; normal requests will be refused with \
             ERR 401).")
  in
  let action socket timeout no_hello =
    let fd =
      match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | fd -> (
          match Unix.connect fd (Unix.ADDR_UNIX socket) with
          | () -> fd
          | exception Unix.Unix_error (e, _, _) ->
              Fmt.epr "weakord: cannot connect to %s: %s@." socket
                (Unix.error_message e);
              exit 2)
      | exception Unix.Unix_error (e, _, _) ->
          Fmt.epr "weakord: socket: %s@." (Unix.error_message e);
          exit 2
    in
    let dec = Wire.decoder () in
    let buf = Bytes.create 4096 in
    (* A drain can close the socket under us between requests; report
       that as a closed connection, not a crash — and as success when
       we were only saying BYE anyway. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let closing = ref false in
    let closed_by_server () =
      if !closing then exit 0
      else begin
        Fmt.epr "weakord: server closed the connection@.";
        exit 1
      end
    in
    (* Lockstep: one request on the wire at a time, so responses cannot
       interleave (RESULT WAIT simply blocks here until the job is
       done). *)
    let recv () =
      let deadline = Unix.gettimeofday () +. timeout in
      let rec go () =
        match Wire.next dec with
        | Ok (Some payload) -> payload
        | Error e ->
            Fmt.epr "weakord: protocol error: %s@." e;
            exit 1
        | Ok None -> (
            if Unix.gettimeofday () > deadline then begin
              Fmt.epr "weakord: timed out waiting for a response@.";
              exit 1
            end;
            match Unix.select [ fd ] [] [] 0.25 with
            | [], _, _ -> go ()
            | _ -> (
                match Unix.read fd buf 0 4096 with
                | 0 -> closed_by_server ()
                | n ->
                    Wire.feed dec (Bytes.sub_string buf 0 n);
                    go ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
                | exception
                    Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                    closed_by_server ()))
      in
      go ()
    in
    let send payload =
      let s = Wire.frame payload in
      match Unix.write_substring fd s 0 (String.length s) with
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          closed_by_server ()
    in
    let roundtrip payload =
      send payload;
      let resp = recv () in
      print_endline resp;
      flush Stdlib.stdout;
      resp
    in
    if not no_hello then begin
      let hello = roundtrip ("HELLO " ^ Wire.greeting) in
      if not (String.length hello >= 2 && String.sub hello 0 2 = "OK")
      then begin
        Fmt.epr "weakord: handshake refused@.";
        exit 1
      end
    end;
    let rec loop () =
      match In_channel.input_line In_channel.stdin with
      | None ->
          closing := true;
          ignore (roundtrip "BYE")
      | Some line ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then loop ()
          else begin
            if String.uppercase_ascii line = "BYE" then closing := true;
            ignore (roundtrip line);
            if !closing then () else loop ()
          end
    in
    loop ();
    (try Unix.close fd with Unix.Unix_error _ -> ());
    exit 0
  in
  let doc =
    "drive a running weakord daemon from stdin: each input line is sent \
     as one protocol request (SUBMIT/STATUS/RESULT/CANCEL/STATS/DRAIN/ \
     PING/BYE) and each response is printed to stdout — the HELLO \
     handshake and length-prefixed framing are handled for you"
  in
  Cmd.v
    (Cmd.info "client" ~doc)
    Term.(const action $ socket_arg $ timeout_flag $ no_hello_flag)

(* --- fuzz -------------------------------------------------------------------- *)

(* Shared by fuzz and fleet: --seeds LO..HI / --count N resolution. *)
let resolve_seed_range ~seeds ~count =
  match (seeds, count) with
  | Some _, Some _ ->
      Fmt.epr "weakord: --seeds and --count are mutually exclusive@.";
      exit 2
  | None, Some n when n > 0 -> (0, n - 1)
  | None, Some _ ->
      Fmt.epr "weakord: --count must be positive@.";
      exit 2
  | Some s, None -> (
      match String.index_opt s '.' with
      | Some i when i + 1 < String.length s && s.[i + 1] = '.' && i > 0 ->
          let parse what v =
            match int_of_string_opt v with
            | Some n -> n
            | None ->
                Fmt.epr "weakord: --seeds: bad %s %S@." what v;
                exit 2
          in
          let lo = parse "low bound" (String.sub s 0 i) in
          let hi =
            parse "high bound" (String.sub s (i + 2) (String.length s - i - 2))
          in
          if lo > hi then begin
            Fmt.epr "weakord: --seeds: empty range %s@." s;
            exit 2
          end;
          (lo, hi)
      | _ ->
          Fmt.epr "weakord: --seeds expects LO..HI, got %S@." s;
          exit 2)
  | None, None ->
      Fmt.epr "weakord: need --seeds LO..HI or --count N@.";
      exit 2

let resolve_machines = function
  | [] -> Machines.all
  | names ->
      List.map
        (fun n ->
          match Machines.find n with
          | Some m -> m
          | None ->
              Fmt.epr "weakord: unknown machine %S@." n;
              exit 2)
        names

(* Flags shared by fuzz and fleet. *)
let seeds_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "seeds" ] ~docv:"LO..HI"
        ~doc:"Inclusive seed range to check (e.g. $(b,0..9999)).")

let count_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "count" ] ~docv:"N" ~doc:"Shorthand for $(b,--seeds) $(i,0..N-1).")

let fz_threads_flag =
  Arg.(
    value
    & opt int Litmus_gen.default_config.Litmus_gen.max_threads
    & info [ "threads" ] ~docv:"N" ~doc:"Maximum threads per program.")

let fz_instrs_flag =
  Arg.(
    value
    & opt int Litmus_gen.default_config.Litmus_gen.max_instrs
    & info [ "instrs" ] ~docv:"N" ~doc:"Maximum instructions per thread.")

let fz_locs_flag =
  Arg.(
    value
    & opt int Litmus_gen.default_config.Litmus_gen.num_locs
    & info [ "locs" ] ~docv:"N" ~doc:"Data locations.")

let fz_sync_locs_flag =
  Arg.(
    value
    & opt int Litmus_gen.default_config.Litmus_gen.num_sync_locs
    & info [ "sync-locs" ] ~docv:"N" ~doc:"Synchronization locations.")

let fz_no_rmw_flag =
  Arg.(value & flag & info [ "no-rmw" ] ~doc:"No read-modify-writes.")

let fz_no_await_flag =
  Arg.(value & flag & info [ "no-await" ] ~doc:"No await spins.")

let fz_machines_flag =
  Arg.(
    value
    & opt_all string []
    & info [ "m"; "machine" ] ~docv:"NAME"
        ~doc:
          "Operational machine(s) to sweep (repeatable; default: all of \
           them).")

let fz_no_sim_flag =
  Arg.(
    value & flag & info [ "no-sim" ] ~doc:"Skip the timing-simulator oracle leg.")

let fz_sim_limit_flag =
  Arg.(
    value & opt int Fuzz.default_cfg.Fuzz.sim_limit
    & info [ "sim-limit" ] ~docv:"N"
        ~doc:"Simulator event budget per run (wedge = livelock past it).")

let fz_quarantine_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "quarantine" ] ~docv:"DIR"
        ~doc:
          "Write each disagreement's program source and report (with the \
           seed-exact repro recipe) into $(docv).")

let fuzz_cmd =
  let progress_flag =
    Arg.(
      value & opt int 0
      & info [ "progress" ] ~docv:"N"
          ~doc:"Log a progress line every $(docv) programs.")
  in
  let action seeds count threads instrs locs sync_locs no_rmw no_await profile
      machine_names no_sim sim_limit quarantine no_shrink deadline progress =
    let lo, hi = resolve_seed_range ~seeds ~count in
    let machines = resolve_machines machine_names in
    let cfg =
      {
        Fuzz.config =
          {
            Litmus_gen.max_threads = threads;
            max_instrs = instrs;
            num_locs = locs;
            num_sync_locs = sync_locs;
            allow_rmw = not no_rmw;
            allow_await = not no_await;
            profile;
          };
        machines;
        sim = not no_sim;
        sim_limit;
        quarantine;
        shrink = not no_shrink;
        deadline_s = deadline;
        progress;
        log = (fun m -> Fmt.epr "weakord: %s@." m);
      }
    in
    let summary = Fuzz.run cfg ~lo ~hi in
    Fmt.epr "%a@." Fuzz.pp_summary summary;
    List.iter
      (fun d ->
        Fmt.pr "DISAGREEMENT seed=%d check=%s%s@." d.Fuzz.d_seed
          d.Fuzz.d_check
          (match d.Fuzz.d_quarantined with
          | Some p -> " report=" ^ p
          | None -> ""))
      summary.Fuzz.disagreements;
    exit (Fuzz.exit_code summary)
  in
  let doc =
    "stream a generated corpus through the three-way differential oracle \
     (operational machines vs axiomatic models vs timing simulator) and \
     quarantine any disagreement with a seed-exact repro recipe"
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const action $ seeds_flag $ count_flag $ fz_threads_flag $ fz_instrs_flag
      $ fz_locs_flag $ fz_sync_locs_flag $ fz_no_rmw_flag $ fz_no_await_flag
      $ profile_flag $ fz_machines_flag $ fz_no_sim_flag $ fz_sim_limit_flag
      $ fz_quarantine_flag $ no_shrink_flag $ deadline_flag $ progress_flag)

(* --- fleet ------------------------------------------------------------------- *)

let fleet_cmd =
  let shards_flag =
    Arg.(
      value & opt int Fleet.default_cfg.Fleet.shards
      & info [ "shards" ] ~docv:"N"
          ~doc:"Concurrent fork-isolated shard workers.")
  in
  let unit_flag =
    Arg.(
      value & opt int Fleet.default_cfg.Fleet.unit_seeds
      & info [ "unit" ] ~docv:"N"
          ~doc:
            "Seeds per work unit — the granularity of scheduling, retry \
             and checkpoint accounting.")
  in
  let hang_timeout_flag =
    Arg.(
      value & opt float Fleet.default_cfg.Fleet.hang_timeout_s
      & info [ "hang-timeout" ] ~docv:"SECS"
          ~doc:
            "Per-seed heartbeat budget. A shard that has not advanced past \
             a seed within $(docv) is SIGKILLed and the unit is bisected \
             around the suspect seed.")
  in
  let retries_flag =
    Arg.(
      value & opt int Fleet.default_cfg.Fleet.retries
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Hang strikes (or failed attempts) before a seed is poison and \
             quarantined with a minimized reproducer.")
  in
  let backoff_flag =
    Arg.(
      value & opt int Fleet.default_cfg.Fleet.backoff_ms
      & info [ "backoff" ] ~docv:"MS"
          ~doc:"Base delay for suspect-retry exponential backoff.")
  in
  let wedge_seed_flag =
    Arg.(
      value
      & opt_all int []
      & info [ "wedge-seed" ] ~docv:"SEED"
          ~doc:
            "Chaos injection (repeatable): wedge the shard on $(docv) \
             forever, deterministically exercising the hang-hunting and \
             poison-quarantine path.")
  in
  let out_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Append unit/disagreement/poison JSONL records to $(docv) \
             instead of stdout (append mode, so a resumed campaign \
             continues the same stream).")
  in
  let stats_socket_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-socket" ] ~docv:"SOCKET"
          ~doc:
            "Serve live campaign gauges over this Unix socket (daemon \
             wire protocol; poke it with $(b,weakord client) $(docv) \
             $(b,stats)).")
  in
  let verbose_flag =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:
            "Log shard lifecycle events: spawns (with pids), heartbeat \
             kills, bisections, requeues and checkpoint writes.")
  in
  let action seeds count threads instrs locs sync_locs no_rmw no_await profile
      machine_names no_sim sim_limit quarantine no_shrink shards unit_seeds
      hang_timeout retries backoff wedge_seeds out checkpoint resume deadline
      mem_budget stats_socket verbose =
    let lo, hi = resolve_seed_range ~seeds ~count in
    let machines = resolve_machines machine_names in
    let oracle =
      {
        Fuzz.config =
          {
            Litmus_gen.max_threads = threads;
            max_instrs = instrs;
            num_locs = locs;
            num_sync_locs = sync_locs;
            allow_rmw = not no_rmw;
            allow_await = not no_await;
            profile;
          };
        machines;
        sim = not no_sim;
        sim_limit;
        quarantine;
        shrink = not no_shrink;
        deadline_s = None;
        progress = 0;
        log = ignore;
      }
    in
    let cfg =
      {
        Fleet.oracle;
        shards;
        unit_seeds;
        hang_timeout_s = hang_timeout;
        retries;
        backoff_ms = backoff;
        out;
        checkpoint;
        resume;
        deadline_s = deadline;
        mem_budget;
        wedge_seeds;
        stats_socket;
        log = (fun m -> Fmt.epr "weakord: %s@." m);
        verbose;
      }
    in
    match Fleet.run cfg ~lo ~hi with
    | exception Fleet.Resume_rejected msg ->
        Fmt.epr "weakord: unusable checkpoint: %s@." msg;
        exit 2
    | exception Invalid_argument msg ->
        Fmt.epr "weakord: %s@." msg;
        exit 2
    | summary ->
        Fmt.epr "%a@." Fleet.pp_summary summary;
        if summary.Fleet.f_suspended then
          Fmt.epr "weakord: fleet drained with %d unit(s) pending%s@."
            summary.Fleet.f_pending
            (match checkpoint with
            | Some p -> "; resume point written to " ^ p
            | None -> " (no --checkpoint: progress was discarded)");
        exit (Fleet.exit_code summary)
  in
  let doc =
    "drive the differential fuzz oracle across a fault-tolerant sharded \
     fleet: fork-isolated shard workers, heartbeat hang-hunting with \
     seed bisection, poison quarantine with ddmin-minimized reproducers, \
     and drain/resume checkpoints"
  in
  Cmd.v
    (Cmd.info "fleet" ~doc)
    Term.(
      const action $ seeds_flag $ count_flag $ fz_threads_flag $ fz_instrs_flag
      $ fz_locs_flag $ fz_sync_locs_flag $ fz_no_rmw_flag $ fz_no_await_flag
      $ profile_flag $ fz_machines_flag $ fz_no_sim_flag $ fz_sim_limit_flag
      $ fz_quarantine_flag $ no_shrink_flag $ shards_flag $ unit_flag
      $ hang_timeout_flag $ retries_flag $ backoff_flag $ wedge_seed_flag
      $ out_flag $ checkpoint_flag $ resume_flag $ deadline_flag
      $ mem_budget_flag $ stats_socket_flag $ verbose_flag)

(* --- list ------------------------------------------------------------------- *)

let list_cmd =
  let action () =
    Fmt.pr "built-in litmus tests:@.";
    List.iter
      (fun e ->
        Fmt.pr "  %-20s %s@."
          (Prog.name e.Litmus_classics.prog)
          e.Litmus_classics.descr)
      Litmus_classics.all;
    Fmt.pr "@.machines:@.";
    List.iter
      (fun m -> Fmt.pr "  %-8s %s@." (Machines.name m) (Machines.descr m))
      Machines.all;
    Fmt.pr "@.axiomatic models:@.";
    List.iter (fun m -> Fmt.pr "  %s@." (Models.name m)) Models.all;
    Fmt.pr
      "@.sim workloads: fig3 barrier barrier-data locks pipeline ticket \
       sense-barrier sense-barrier-data@.";
    Fmt.pr "sim policies:  %s@."
      (String.concat " " (List.map Cpu.policy_name Cpu.all_policies))
  in
  let doc = "list built-in tests, machines, models and workloads" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const action $ const ())

let () =
  let doc = "weak ordering, as a software/hardware contract (Adve & Hill 1990)" in
  let info = Cmd.info "weakord" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            races_cmd;
            verify_cmd;
            sim_cmd;
            trace_cmd;
            faults_cmd;
            fences_cmd;
            gen_cmd;
            batch_cmd;
            serve_cmd;
            client_cmd;
            fuzz_cmd;
            fleet_cmd;
            list_cmd;
          ]))
