(* Unit tests for the program library: expressions, instructions, programs,
   conditions and final states. *)

open Instr

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let env_of bindings =
  List.fold_left (fun m (k, v) -> Exp.Smap.add k v m) Exp.Smap.empty bindings

(* --- Exp ----------------------------------------------------------------- *)

let test_exp_eval () =
  let env = env_of [ ("r0", 3); ("r1", 4) ] in
  check_int "const" 5 (Exp.eval env (Exp.Const 5));
  check_int "reg" 3 (Exp.eval env (Exp.Reg "r0"));
  check_int "add" 7 (Exp.eval env (Exp.Add (Exp.Reg "r0", Exp.Reg "r1")));
  check_int "sub" (-1) (Exp.eval env (Exp.Sub (Exp.Reg "r0", Exp.Reg "r1")));
  Alcotest.check_raises "unbound" (Exp.Unbound_register "zz") (fun () ->
      ignore (Exp.eval env (Exp.Reg "zz")))

let test_exp_registers () =
  let e = Exp.Add (Exp.Reg "a", Exp.Sub (Exp.Const 1, Exp.Reg "b")) in
  Alcotest.(check (list string)) "registers" [ "a"; "b" ] (Exp.registers e)

(* --- Instr --------------------------------------------------------------- *)

let test_instr_classification () =
  check "read is data" true (is_data (read "x" "r"));
  check "sync_write is sync" true (is_sync (sync_write "s" 1));
  check "tas reads" true (is_read (test_and_set "s" "r"));
  check "tas writes" true (is_write (test_and_set "s" "r"));
  check "fence is not access" false (is_access Fence);
  check "await blocks" true (is_blocking (await "s" 1));
  check "lock blocks" true (is_blocking (lock "l"));
  check "lock is sync rmw" true (is_sync (lock "l") && is_read (lock "l") && is_write (lock "l"));
  check "unlock is sync write" true (is_sync (unlock "l") && is_write (unlock "l"))

let test_instr_registers () =
  Alcotest.(check (option string))
    "load target" (Some "r")
    (target_register (read "x" "r"));
  Alcotest.(check (list string))
    "store sources" [ "r0" ]
    (source_registers (store "x" (Exp.Reg "r0")));
  (* The RMW's own register is bound to the old value, not a source. *)
  Alcotest.(check (list string))
    "fadd has no external sources" []
    (source_registers (fetch_and_add "c" "r" 1))

(* --- Prog validation ----------------------------------------------------- *)

let test_validate_ok () =
  let p = Litmus_classics.mp_sync.Litmus_classics.prog in
  check "mp_sync validates" true (Prog.validate p = Ok ())

let test_validate_catches_unassigned () =
  let p = Prog.make ~name:"bad" [ [ store "x" (Exp.Reg "never") ] ] in
  match Prog.validate p with
  | Error [ Prog.Unassigned_register (0, "never") ] -> ()
  | Error es ->
      Alcotest.failf "unexpected errors: %a"
        Fmt.(list ~sep:comma Prog.pp_error)
        es
  | Ok () -> Alcotest.fail "expected a validation error"

let test_validate_duplicate_init () =
  let p = Prog.make ~name:"dup" ~init:[ ("x", 0); ("x", 1) ] [ [] ] in
  check "duplicate init caught" true
    (match Prog.validate p with
    | Error es -> List.mem (Prog.Duplicate_init "x") es
    | Ok () -> false)

let test_validate_paper_strict () =
  let p = Prog.make ~name:"fenced" [ [ Fence ] ] in
  check "fence ok by default" true (Prog.validate p = Ok ());
  check "fence rejected when strict" true
    (match Prog.validate ~paper_strict:true p with
    | Error es -> List.mem (Prog.Fence_not_in_paper_model 0) es
    | Ok () -> false);
  let mixed =
    Prog.make ~name:"mixed" [ [ write "x" 1; sync_read "x" "r" ] ]
  in
  check "mixed sync/data location rejected when strict" true
    (match Prog.validate ~paper_strict:true mixed with
    | Error es -> List.mem (Prog.Mixed_sync_data_location "x") es
    | Ok () -> false)

let test_validate_bad_condition () =
  let p =
    Prog.make ~name:"badcond" ~exists:(Cond.Reg_eq (7, "r", 0)) [ [] ]
  in
  check "bad thread id in condition" true
    (match Prog.validate p with
    | Error es -> List.mem (Prog.Bad_condition_thread 7) es
    | Ok () -> false)

let test_prog_accessors () =
  let p = Litmus_classics.dekker.Litmus_classics.prog in
  check_int "threads" 2 (Prog.num_threads p);
  check_int "instrs" 4 (Prog.num_instrs p);
  Alcotest.(check (list string)) "locations" [ "x"; "y" ] (Prog.locations p);
  Alcotest.(check (list string))
    "sync locations of mp_sync" [ "f" ]
    (Prog.sync_locations Litmus_classics.mp_sync.Litmus_classics.prog)

(* --- Cond / Final -------------------------------------------------------- *)

let final_of ~mem ~regs =
  Final.make
    ~memory:(env_of mem)
    ~regs:(Array.map env_of (Array.of_list regs))

let test_cond_eval () =
  let f = final_of ~mem:[ ("x", 1) ] ~regs:[ [ ("r0", 0) ]; [] ] in
  check "mem_eq" true (Cond.eval f (Cond.Mem_eq ("x", 1)));
  check "mem default 0" true (Cond.eval f (Cond.Mem_eq ("y", 0)));
  check "reg_eq" true (Cond.eval f (Cond.Reg_eq (0, "r0", 0)));
  check "unassigned register fails" false (Cond.eval f (Cond.Reg_eq (1, "r9", 0)));
  check "and/or/not" true
    (Cond.eval f
       (Cond.And
          ( Cond.Or (Cond.Mem_eq ("x", 9), Cond.Mem_eq ("x", 1)),
            Cond.Not (Cond.Reg_eq (0, "r0", 5)) )));
  check "conj empty is true" true (Cond.eval f (Cond.conj []))

let test_final_compare () =
  let a = final_of ~mem:[ ("x", 1) ] ~regs:[ [] ] in
  let b = final_of ~mem:[ ("x", 2) ] ~regs:[ [] ] in
  check "equal self" true (Final.equal a a);
  check "differ" false (Final.equal a b);
  let s = Final.Set.of_list [ a; b; a ] in
  check_int "set dedups" 2 (Final.Set.cardinal s)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "program",
    [
      t "exp eval" test_exp_eval;
      t "exp registers" test_exp_registers;
      t "instr classification" test_instr_classification;
      t "instr registers" test_instr_registers;
      t "validate ok" test_validate_ok;
      t "validate unassigned register" test_validate_catches_unassigned;
      t "validate duplicate init" test_validate_duplicate_init;
      t "validate paper strict" test_validate_paper_strict;
      t "validate bad condition" test_validate_bad_condition;
      t "prog accessors" test_prog_accessors;
      t "cond eval" test_cond_eval;
      t "final compare" test_final_compare;
    ] )
