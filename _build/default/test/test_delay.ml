(* Tests for the Shasha–Snir delay-set analysis. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prog_of e = e.Litmus_classics.prog
let evts_of e = Evts.of_prog (prog_of e)

let test_conflict_edges_symmetric () =
  let evts = evts_of Litmus_classics.dekker in
  let c = Delay_set.conflict_edges evts in
  Rel.iter (fun a b -> check "symmetric" true (Rel.mem c b a)) c;
  (* Same-thread pairs never appear. *)
  Rel.iter
    (fun a b ->
      check "cross-processor" true
        ((Evts.event evts a).Event.proc <> (Evts.event evts b).Event.proc))
    c

let test_dekker_delays () =
  (* Both W->R program-order pairs are delays. *)
  let pairs = Delay_set.delay_pairs (evts_of Litmus_classics.dekker) in
  Alcotest.(check (list (pair int int))) "both pairs" [ (0, 1); (2, 3) ] pairs

let test_corr_delay () =
  (* CoRR's cycle is R->R->W: one program-order pair. *)
  check_int "one delay" 1
    (List.length (Delay_set.delay_pairs (evts_of Litmus_classics.corr)))

let test_no_delays_for_local_programs () =
  check_int "coww" 0 (Delay_set.delay_count (prog_of Litmus_classics.coww));
  check_int "tas" 0
    (Delay_set.delay_count (prog_of Litmus_classics.tas_atomicity));
  let single =
    Prog.make ~name:"single" [ [ Instr.write "x" 1; Instr.read "y" "r" ] ]
  in
  check_int "single thread" 0 (Delay_set.delay_count single)

let test_critical_cycle_shape () =
  let evts = evts_of Litmus_classics.dekker in
  let cycles = Delay_set.critical_cycles evts in
  check "at least one critical cycle" true (cycles <> []);
  List.iter
    (fun cycle ->
      (* Each critical cycle alternates between the two processors' pairs. *)
      check "length 4 in dekker" true (List.length cycle = 4))
    cycles

let test_iriw_critical () =
  (* IRIW's critical cycle spans all four processors. *)
  let cycles = Delay_set.critical_cycles (evts_of Litmus_classics.iriw) in
  check "a 6-node cycle exists" true
    (List.exists (fun c -> List.length c = 6) cycles)

let test_fences_inserted () =
  let fenced = Delay_set.with_fences (prog_of Litmus_classics.dekker) in
  let count_fences p =
    List.fold_left
      (fun n t ->
        n + List.length (List.filter (fun i -> i = Instr.Fence) t))
      0 (Prog.threads p)
  in
  check_int "two fences" 2 (count_fences fenced);
  check "name annotated" true
    (String.equal (Prog.name fenced) "dekker+fences")

let test_fenced_corpus_sc_on_naive_machines () =
  List.iter
    (fun e ->
      let fenced = Delay_set.with_fences (prog_of e) in
      check
        (Prog.name (prog_of e) ^ " fenced SC on wbuf")
        true
        (Machines.appears_sc Machines.wbuf fenced);
      check
        (Prog.name (prog_of e) ^ " fenced SC on ooo")
        true
        (Machines.appears_sc Machines.ooo fenced))
    Litmus_classics.all

let test_fenced_random_programs_sc () =
  (* The Shasha–Snir theorem, differentially: enforcing the delay set makes
     even the weakest machines sequentially consistent. *)
  List.iter
    (fun seed ->
      match Litmus_gen.generate_live seed with
      | None -> ()
      | Some p ->
          let fenced = Delay_set.with_fences p in
          if not (Machines.appears_sc Machines.ooo fenced) then
            Alcotest.failf "ooo not SC after fencing:@.%a" Prog.pp p;
          if not (Machines.appears_sc Machines.wbuf fenced) then
            Alcotest.failf "wbuf not SC after fencing:@.%a" Prog.pp p)
    (List.init 120 (fun i -> (11 * i) + 3))

let test_fencing_preserves_sc_outcomes () =
  (* Fences never change what is SC-possible: only the weak machines are
     constrained. *)
  List.iter
    (fun e ->
      let p = prog_of e in
      let fenced = Delay_set.with_fences p in
      check
        (Prog.name p ^ " same SC outcomes")
        true
        (Final.Set.equal (Sc.outcomes p) (Sc.outcomes fenced)))
    Litmus_classics.all

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "delay",
    [
      t "conflict edges symmetric" test_conflict_edges_symmetric;
      t "dekker delay pairs" test_dekker_delays;
      t "corr delay pair" test_corr_delay;
      t "local programs need no delays" test_no_delays_for_local_programs;
      t "critical cycle shape" test_critical_cycle_shape;
      t "iriw critical cycle" test_iriw_critical;
      t "fences inserted" test_fences_inserted;
      t "fenced corpus SC on naive machines" test_fenced_corpus_sc_on_naive_machines;
      t "fenced random programs SC (ShS88 theorem)" test_fenced_random_programs_sc;
      t "fencing preserves SC outcomes" test_fencing_preserves_sc_outcomes;
    ] )
