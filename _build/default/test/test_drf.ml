(* Tests for happens-before, synchronization orders, and the DRF0/DRF1
   checkers. *)

open Instr

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prog_of e = e.Litmus_classics.prog

(* --- Hb ------------------------------------------------------------------ *)

let test_so_of_trace () =
  let p = prog_of Litmus_classics.dekker_sync in
  let evts = Evts.of_prog p in
  (* Events: 0 = Ws x (P0), 1 = Rs y (P0), 2 = Ws y (P1), 3 = Rs x (P1). *)
  let so = Hb.so_of_trace evts [ 0; 1; 2; 3 ] in
  check "Wsx so Rsx" true (Rel.mem so 0 3);
  check "Rsy so Wsy" true (Rel.mem so 1 2);
  check "no cross-location so" false (Rel.mem so 0 2)

let test_hb_transitive () =
  let p = prog_of Litmus_classics.hb_chain in
  let evts = Evts.of_prog p in
  (* 0 = W x (P0), 1 = Ws s, 2 = Await s (P1), 3 = Ws t, 4 = Await t (P2),
     5 = R x.  Trace in program order: the so edges chain through s and t. *)
  let so = Hb.so_of_trace evts [ 0; 1; 2; 3; 4; 5 ] in
  let hb = Hb.hb evts ~so in
  check "W x hb R x through two sync locations" true (Rel.mem hb 0 5)

let test_hb1_drops_read_release () =
  let p = prog_of Litmus_classics.read_sync_release in
  let evts = Evts.of_prog p in
  (* 0 = W x, 1 = Await s 0 (sync read), 2 = Ws s 1, 3 = R x. *)
  let so = Hb.so_of_trace evts [ 0; 1; 2; 3 ] in
  check "hb orders W x before R x" true (Rel.mem (Hb.hb evts ~so) 0 3);
  check "hb1 does not (read-only release dropped)" false
    (Rel.mem (Hb.hb1 evts ~so) 0 3)

(* --- Sync_orders ---------------------------------------------------------- *)

let test_sync_orders_counts () =
  (* dekker_sync: one sync write and one sync read per location.  Of the
     2 x 2 per-location orderings, the one putting both reads before both
     writes contradicts program order (a cycle), so 3 are realizable. *)
  check_int "dekker_sync" 3 (Sync_orders.count (prog_of Litmus_classics.dekker_sync));
  (* mp_sync: the await can only complete after the sync write: 1 tuple. *)
  check_int "mp_sync" 1 (Sync_orders.count (prog_of Litmus_classics.mp_sync));
  (* no syncs at all: exactly one (empty) tuple. *)
  check_int "dekker" 1 (Sync_orders.count (prog_of Litmus_classics.dekker))

let test_sync_orders_blocking_pruned () =
  (* read_sync_release: Await s 0 must complete before Ws s 1; only one
     order of the two sync ops on s is realizable. *)
  check_int "await prunes" 1
    (Sync_orders.count (prog_of Litmus_classics.read_sync_release))

let test_sync_orders_to_so () =
  let p = prog_of Litmus_classics.mp_sync in
  let evts = Evts.of_prog p in
  match Sync_orders.feasible p with
  | [ tuple ] ->
      let so = Sync_orders.to_so evts tuple in
      (* 1 = Ws f (P0), 2 = Await f (P1): the only so edge. *)
      check "so edge Ws->Await" true (Rel.mem so 1 2);
      check_int "exactly one pair" 1 (Rel.cardinal so)
  | other -> Alcotest.failf "expected 1 tuple, got %d" (List.length other)

(* --- Drf0 / Drf1 expectations --------------------------------------------- *)

let test_corpus_drf0 () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s drf0" (Prog.name (prog_of e)))
        e.Litmus_classics.drf0 (Drf.obeys (prog_of e)))
    Litmus_classics.all

let test_corpus_drf1 () =
  (* DRF1 agrees with DRF0 on the whole corpus except read_sync_release,
     whose only happens-before path runs through a read-only sync release —
     the paper's "does not compromise on the generality" claim. *)
  List.iter
    (fun e ->
      let p = prog_of e in
      let expected =
        e.Litmus_classics.drf0
        && not (String.equal (Prog.name p) "read_sync_release")
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s drf1" (Prog.name p))
        expected
        (Drf.obeys ~model:Drf.DRF1 p))
    Litmus_classics.all

let test_naive_agrees () =
  (* The sync-order checker agrees with the literal Definition 3 checker on
     every corpus program, for both models. *)
  List.iter
    (fun e ->
      let p = prog_of e in
      check (Prog.name p ^ " drf0 naive") true
        (Drf.obeys p = Drf.obeys_naive p);
      check (Prog.name p ^ " drf1 naive") true
        (Drf.obeys ~model:Drf.DRF1 p = Drf.obeys_naive ~model:Drf.DRF1 p))
    Litmus_classics.all

let test_race_witness () =
  match Drf.check (prog_of Litmus_classics.mp) with
  | Ok () -> Alcotest.fail "mp should race"
  | Error races ->
      check "witnesses exist" true (races <> []);
      (* Every witness involves a data access pair on a shared location. *)
      List.iter
        (fun r ->
          check "conflicting" true (Event.conflicts r.Drf.e1 r.Drf.e2);
          check "different procs" true
            (r.Drf.e1.Event.proc <> r.Drf.e2.Event.proc))
        races

let test_sync_sync_pairs_not_races () =
  (* Two conflicting sync writes are not a data race (DRF1 definition;
     equivalent for DRF0). *)
  let p =
    Prog.make ~name:"ss" [ [ sync_write "s" 1 ]; [ sync_write "s" 2 ] ]
  in
  check "all-sync conflict is no race" true (Drf.obeys ~model:Drf.DRF1 p);
  check "and obeys DRF0" true (Drf.obeys p)

(* --- Figure 2 ------------------------------------------------------------- *)

(* The paper's Figure 2 shows two executions on the idealized architecture:
   (a) obeys DRF0 (all conflicting accesses hb-ordered), (b) does not (P0's
   accesses conflict with P1's write unordered; P2's and P4's writes
   conflict unordered).  The published figure's exact layout is ambiguous in
   our source text, so we reconstruct executions with the same structure and
   check them with the per-trace analysis, which is what the figure
   depicts. *)

let fig2a_prog = Litmus_classics.fig2a_execution

let test_fig2a_obeys () =
  check "fig2a obeys DRF0" true (Drf.obeys fig2a_prog);
  (* And each individual SC execution passes the per-trace check. *)
  let evts = Evts.of_prog fig2a_prog in
  Sc.iter_traces fig2a_prog (fun trace _ ->
      check "trace race-free" true (Drf.trace_obeys evts trace))

let fig2b_prog = Litmus_classics.fig2b_execution

let test_fig2b_races () =
  check "fig2b violates DRF0" false (Drf.obeys fig2b_prog);
  let races = Drf.races fig2b_prog in
  let involves l1 l2 =
    List.exists
      (fun r ->
        let locs = (r.Drf.e1.Event.loc, r.Drf.e2.Event.loc) in
        locs = (Some l1, Some l2) || locs = (Some l2, Some l1))
      races
  in
  check "race on y (P0 vs P1)" true (involves "y" "y");
  check "race on z (P2 vs P4)" true (involves "z" "z")

let test_trace_detection_is_per_execution () =
  (* Dynamic detection depends on the trace: mp's racy accesses are
     reported on every trace, because no sync exists to order them. *)
  let p = prog_of Litmus_classics.mp in
  let evts = Evts.of_prog p in
  Sc.iter_traces p (fun trace _ ->
      check "mp trace always racy" false (Drf.trace_obeys evts trace))

(* --- Properties ------------------------------------------------------------ *)

let arbitrary_classic =
  QCheck.make
    ~print:(fun e -> Prog.name e.Litmus_classics.prog)
    (QCheck.Gen.oneofl Litmus_classics.all)

let prop_drf1_weaker_than_drf0 =
  (* Anything DRF1 would accept with the full so it accepts with fewer
     obligations: DRF0 ⊆ DRF1's accepted set is NOT true in general; what
     holds is that hb1 ⊆ hb, so a DRF1-race-free program is DRF0-race-free
     only if... in fact hb1 ⊆ hb gives: DRF1-clean ⇒ DRF0-clean. *)
  QCheck.Test.make ~name:"DRF1-clean implies DRF0-clean" ~count:(List.length Litmus_classics.all)
    arbitrary_classic
    (fun e ->
      let p = e.Litmus_classics.prog in
      (not (Drf.obeys ~model:Drf.DRF1 p)) || Drf.obeys p)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "drf",
    [
      t "so of trace" test_so_of_trace;
      t "hb transitive chain" test_hb_transitive;
      t "hb1 drops read-only releases" test_hb1_drops_read_release;
      t "sync order counts" test_sync_orders_counts;
      t "blocking prunes sync orders" test_sync_orders_blocking_pruned;
      t "sync order to so" test_sync_orders_to_so;
      t "corpus DRF0 expectations" test_corpus_drf0;
      t "corpus DRF1 expectations" test_corpus_drf1;
      t "checker agrees with naive Definition 3" test_naive_agrees;
      t "race witnesses" test_race_witness;
      t "sync/sync pairs are not races" test_sync_sync_pairs_not_races;
      t "figure 2a obeys DRF0" test_fig2a_obeys;
      t "figure 2b races" test_fig2b_races;
      t "per-trace detection" test_trace_detection_is_per_execution;
      QCheck_alcotest.to_alcotest prop_drf1_weaker_than_drf0;
    ] )
