(* Tests for event structures and the SC interleaver. *)

open Instr

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prog_of e = e.Litmus_classics.prog

(* --- Evts ---------------------------------------------------------------- *)

let test_evts_structure () =
  let evts = Evts.of_prog (prog_of Litmus_classics.dekker) in
  check_int "4 events" 4 (Evts.size evts);
  check_int "2 procs" 2 (Evts.num_procs evts);
  let po = Evts.po evts in
  check "po within P0" true (Rel.mem po 0 1);
  check "no po across procs" false (Rel.mem po 0 2 || Rel.mem po 2 0);
  check_int "2 reads" 2 (List.length (Evts.reads evts));
  check_int "2 writes" 2 (List.length (Evts.writes evts))

let test_evts_po_closed () =
  let p = Prog.make ~name:"chain3" [ [ write "a" 1; write "b" 1; write "c" 1 ] ] in
  let po = Evts.po (Evts.of_prog p) in
  check "po transitively closed" true (Rel.mem po 0 2)

let test_conflicting_pairs () =
  let evts = Evts.of_prog (prog_of Litmus_classics.dekker) in
  (* W x (e0) conflicts with R x (e3); W y (e2) conflicts with R y (e1). *)
  let pairs = Evts.conflicting_pairs evts in
  check_int "two conflicts" 2 (List.length pairs);
  check "wx-rx" true (List.mem (0, 3) pairs);
  check "wy-ry" true (List.mem (1, 2) pairs)

let test_conflicts_exclude_read_read () =
  let p =
    Prog.make ~name:"rr" [ [ read "x" "r0" ]; [ read "x" "r1" ] ]
  in
  check_int "no read-read conflict" 0
    (List.length (Evts.conflicting_pairs (Evts.of_prog p)))

let test_rmw_conflicts_with_read () =
  let p =
    Prog.make ~name:"rmwr" [ [ test_and_set "l" "r0" ]; [ read "l" "r1" ] ]
  in
  check_int "rmw conflicts with read" 1
    (List.length (Evts.conflicting_pairs (Evts.of_prog p)))

let test_deps () =
  let p =
    Prog.make ~name:"dep"
      [ [ read "x" "r"; store "y" (Exp.Reg "r"); write "z" 1 ] ]
  in
  let deps = Evts.deps (Evts.of_prog p) in
  check "store depends on load" true (Rel.mem deps 0 1);
  check "independent write free" false (Rel.mem deps 0 2 || Rel.mem deps 1 2)

let test_syncs_of_loc () =
  let evts = Evts.of_prog (prog_of Litmus_classics.mp_sync) in
  check_int "two syncs on f" 2 (List.length (Evts.syncs_of_loc evts "f"));
  check_int "no syncs on x" 0 (List.length (Evts.syncs_of_loc evts "x"))

(* --- SC outcomes --------------------------------------------------------- *)

let outcomes e = Sc.outcomes (prog_of e)

let test_sc_forbids_dekker () =
  check "dekker non-SC outcome forbidden" false
    (Option.get (Sc.allows_exists (prog_of Litmus_classics.dekker)));
  (* And the three SC outcomes are all present: 10, 01, 11 of (r0,r1). *)
  check_int "three outcomes" 3 (Final.Set.cardinal (outcomes Litmus_classics.dekker))

let test_sc_mp () =
  check "mp stale read forbidden under SC" false
    (Option.get (Sc.allows_exists (prog_of Litmus_classics.mp)))

let test_sc_await_blocks () =
  (* With the await, the consumer must see the flag and then the data. *)
  let s = outcomes Litmus_classics.mp_sync in
  check_int "single outcome" 1 (Final.Set.cardinal s);
  let f = Final.Set.choose s in
  Alcotest.(check (option int)) "r1 = 1" (Some 1) (Final.reg f 1 "r1")

let test_sc_lock_mutex () =
  let s = outcomes Litmus_classics.lock_mutex in
  check "x=2 in every outcome" true
    (Final.Set.for_all (fun f -> Final.mem f "x" = 2) s)

let test_sc_lock_race_loses_update () =
  check "unlocked increment can be lost under SC" true
    (Option.get (Sc.allows_exists (prog_of Litmus_classics.lock_race)))

let test_sc_rmw_atomic () =
  check "both TAS cannot win" false
    (Option.get (Sc.allows_exists (prog_of Litmus_classics.tas_atomicity)))

let test_sc_handoff () =
  let s = outcomes Litmus_classics.fig3_handoff in
  check_int "handoff deterministic" 1 (Final.Set.cardinal s);
  check "consumer sees data" true
    (Final.Set.for_all (fun f -> Final.reg f 1 "r" = Some 1) s)

let test_sc_iriw_outcome_count () =
  (* IRIW under SC: exhaustive enumeration must agree with first principles —
     the forbidden outcome is excluded. *)
  check "iriw forbidden" false
    (Option.get (Sc.allows_exists (prog_of Litmus_classics.iriw)))

let test_trace_count_two_by_two () =
  (* Two threads of two instructions each: C(4,2) = 6 interleavings. *)
  check_int "6 traces" 6 (Sc.count_traces (prog_of Litmus_classics.dekker))

let test_traces_are_po_respecting () =
  let prog = prog_of Litmus_classics.dekker in
  let evts = Evts.of_prog prog in
  let po = Evts.po evts in
  Sc.iter_traces prog (fun trace _ ->
      let pos = Array.make (Evts.size evts) 0 in
      List.iteri (fun i e -> pos.(e) <- i) trace;
      Rel.iter (fun a b -> check "po respected" true (pos.(a) < pos.(b))) po)

let test_traces_cover_outcomes () =
  (* The finals seen by iter_traces equal the memoized outcome set. *)
  let prog = prog_of Litmus_classics.lb in
  let via_traces = ref Final.Set.empty in
  Sc.iter_traces prog (fun _ f -> via_traces := Final.Set.add f !via_traces);
  check "trace finals = outcomes" true
    (Final.Set.equal !via_traces (Sc.outcomes prog))

let test_deadlock_paths_excluded () =
  (* An await that can never succeed yields no outcome at all. *)
  let p = Prog.make ~name:"stuck" [ [ await "f" 1 ] ] in
  check_int "no outcomes" 0 (Final.Set.cardinal (Sc.outcomes p))

let test_hb_chain_sc () =
  let s = outcomes Litmus_classics.hb_chain in
  check "chain delivers x" true
    (Final.Set.for_all (fun f -> Final.reg f 2 "r" = Some 1) s)

(* --- Properties ---------------------------------------------------------- *)

let arbitrary_classic =
  QCheck.make
    ~print:(fun e -> Prog.name e.Litmus_classics.prog)
    (QCheck.Gen.oneofl Litmus_classics.all)

let prop_sc_expectations =
  QCheck.Test.make ~name:"corpus SC expectations hold" ~count:(List.length Litmus_classics.all)
    arbitrary_classic
    (fun e ->
      match Sc.allows_exists e.Litmus_classics.prog with
      | Some allowed -> allowed = e.Litmus_classics.sc_allows
      | None -> true)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "exec",
    [
      t "event structure" test_evts_structure;
      t "po transitively closed" test_evts_po_closed;
      t "conflicting pairs" test_conflicting_pairs;
      t "read-read never conflicts" test_conflicts_exclude_read_read;
      t "rmw conflicts with read" test_rmw_conflicts_with_read;
      t "register dependencies" test_deps;
      t "syncs per location" test_syncs_of_loc;
      t "SC forbids dekker outcome" test_sc_forbids_dekker;
      t "SC forbids mp stale read" test_sc_mp;
      t "await forces flag order" test_sc_await_blocks;
      t "lock mutex counts correctly" test_sc_lock_mutex;
      t "lockless increment races" test_sc_lock_race_loses_update;
      t "RMW atomicity" test_sc_rmw_atomic;
      t "fig3 handoff" test_sc_handoff;
      t "iriw forbidden" test_sc_iriw_outcome_count;
      t "trace count" test_trace_count_two_by_two;
      t "traces respect po" test_traces_are_po_respecting;
      t "traces cover outcomes" test_traces_cover_outcomes;
      t "deadlocked await has no outcomes" test_deadlock_paths_excluded;
      t "hb chain delivers" test_hb_chain_sc;
      QCheck_alcotest.to_alcotest prop_sc_expectations;
    ] )
