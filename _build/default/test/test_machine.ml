(* Tests for the abstract hardware machines. *)

let check = Alcotest.(check bool)

let prog_of e = e.Litmus_classics.prog
let allows m e = Option.get (Machines.allows_exists m (prog_of e))

(* --- Figure 1: the SC violation on relaxed configurations ----------------- *)

let test_fig1_wbuf_allows_dekker () =
  check "write buffers admit the Figure 1 violation" true
    (allows Machines.wbuf Litmus_classics.dekker)

let test_fig1_ooo_allows_dekker () =
  check "out-of-order issue admits the Figure 1 violation" true
    (allows Machines.ooo Litmus_classics.dekker)

let test_fig1_sc_forbids () =
  check "the SC machine forbids it" false
    (allows Machines.sc Litmus_classics.dekker)

let test_wbuf_is_not_weakly_ordered () =
  (* Naive write-buffer hardware buffers sync accesses too, so even the
     all-sync Dekker (a DRF0 program) misbehaves: wbuf is not weakly
     ordered w.r.t. DRF0.  This is why Figure 1 motivates making
     synchronization visible to hardware. *)
  check "wbuf breaks dekker_sync" true
    (allows Machines.wbuf Litmus_classics.dekker_sync);
  check "hence not appears-SC" false
    (Machines.appears_sc Machines.wbuf (prog_of Litmus_classics.dekker_sync))

(* --- SC containment -------------------------------------------------------- *)

let test_all_machines_contain_sc () =
  (* Every machine can execute fully in order: SC outcomes are included in
     every machine's outcome set. *)
  List.iter
    (fun e ->
      let p = prog_of e in
      let sc = Sc.outcomes p in
      List.iter
        (fun m ->
          check
            (Printf.sprintf "%s: sc <= %s" (Prog.name p) (Machines.name m))
            true
            (Final.Set.subset sc (Machines.outcomes m p)))
        Machines.all)
    Litmus_classics.all

(* --- Weak ordering w.r.t. DRF0 (Definition 2) ------------------------------ *)

let test_def1_def2_appear_sc_on_drf0 () =
  List.iter
    (fun e ->
      let p = prog_of e in
      if e.Litmus_classics.drf0 then
        List.iter
          (fun m ->
            check
              (Printf.sprintf "%s appears SC on %s" (Machines.name m)
                 (Prog.name p))
              true (Machines.appears_sc m p))
          [ Machines.def1; Machines.def2 ])
    Litmus_classics.all

let test_def2_rs_appears_sc_on_drf1 () =
  (* The read-sync-relaxed machine is weakly ordered w.r.t. DRF1, not DRF0:
     it must appear SC exactly to the DRF1 programs of the corpus. *)
  List.iter
    (fun e ->
      let p = prog_of e in
      if Drf.obeys ~model:Drf.DRF1 p then
        check
          (Printf.sprintf "def2-rs appears SC on %s" (Prog.name p))
          true
          (Machines.appears_sc Machines.def2_rs p))
    Litmus_classics.all

let test_def2_rs_breaks_drf0_only_program () =
  let p = prog_of Litmus_classics.read_sync_release in
  check "def2 keeps read_sync_release SC" true
    (Machines.appears_sc Machines.def2 p);
  check "def2-rs does not" false (Machines.appears_sc Machines.def2_rs p)

let test_machines_weak_on_racy_programs () =
  (* def1 and def2 are genuinely weaker than SC: the racy Dekker shows
     non-SC outcomes on both. *)
  check "def1 weak on dekker" true (allows Machines.def1 Litmus_classics.dekker);
  check "def2 weak on dekker" true (allows Machines.def2 Litmus_classics.dekker)

(* --- The Section 6 separation --------------------------------------------- *)

let test_barrier_spin_separates_def1_def2 () =
  (* "Spinning on a barrier count with a data read": Definition-1 hardware
     (blocking reads, syncs fully ordered) gives it SC behaviour even though
     it races; the paper's new implementation does not. *)
  check "def1 forbids stale read" false
    (allows Machines.def1 Litmus_classics.barrier_data_spin);
  check "def2 allows stale read" true
    (allows Machines.def2 Litmus_classics.barrier_data_spin)

(* --- Mechanics -------------------------------------------------------------- *)

let test_def2_handoff_without_stalling_p0 () =
  (* fig3_handoff must be deterministic on def2: the consumer always sees
     the produced value, reservations notwithstanding. *)
  let p = prog_of Litmus_classics.fig3_handoff in
  let outs = Machines.outcomes Machines.def2 p in
  check "single outcome" true (Final.Set.cardinal outs = 1);
  check "consumer sees data" true
    (Final.Set.for_all (fun f -> Final.reg f 1 "r" = Some 1) outs)

let test_wbuf_forwarding () =
  (* A processor must see its own buffered write. *)
  let p =
    Prog.make ~name:"fwd"
      [ [ Instr.write "x" 1; Instr.read "x" "r" ] ]
  in
  let outs = Machines.outcomes Machines.wbuf p in
  check "own write forwarded" true
    (Final.Set.for_all (fun f -> Final.reg f 0 "r" = Some 1) outs)

let test_ooo_respects_dependencies () =
  (* r := R x; W y r cannot produce y=1 unless x was 1 to read. *)
  let p =
    Prog.make ~name:"dep"
      [ [ Instr.read "x" "r"; Instr.store "y" (Exp.Reg "r") ] ]
  in
  let outs = Machines.outcomes Machines.ooo p in
  check "dependency respected" true
    (Final.Set.for_all (fun f -> Final.mem f "y" = 0) outs)

let test_ooo_same_location_order () =
  check "CoRR holds on ooo" false (allows Machines.ooo Litmus_classics.corr)

let test_rmw_atomic_on_all_machines () =
  List.iter
    (fun m ->
      check
        (Machines.name m ^ " keeps TAS atomic")
        false
        (allows m Litmus_classics.tas_atomicity))
    Machines.all

let test_lock_mutex_on_def_machines () =
  (* Lock-protected increments sum correctly on every weakly ordered
     machine (a DRF0 program). *)
  List.iter
    (fun m ->
      let outs =
        Machines.outcomes m (prog_of Litmus_classics.lock_mutex)
      in
      check
        (Machines.name m ^ " lock mutex correct")
        true
        (Final.Set.for_all (fun f -> Final.mem f "x" = 2) outs))
    [ Machines.def1; Machines.def2; Machines.def2_rs ]

(* --- RP3 and the fenced-delays model ---------------------------------------- *)

let test_rp3_is_naive_about_syncs () =
  (* The RP3 option carries synchronization like data: even the all-sync
     Dekker misbehaves, so rp3 is not weakly ordered w.r.t. DRF0. *)
  check "rp3 allows dekker" true (allows Machines.rp3 Litmus_classics.dekker);
  check "rp3 allows dekker_sync" true
    (allows Machines.rp3 Litmus_classics.dekker_sync);
  let corpus = List.map prog_of Litmus_classics.all in
  let r =
    Weak_ordering.verify
      ~hw:(Weak_ordering.of_machine Machines.rp3)
      ~model:Weak_ordering.drf0 corpus
  in
  check "not weakly ordered w.r.t. DRF0" false r.Weak_ordering.weakly_ordered

let test_fence_machines_weakly_ordered_wrt_fenced_delays () =
  (* The second instance of Definition 2: fence-respecting hardware is
     weakly ordered with respect to the fenced-delays model (every
     Shasha-Snir delay pair separated by a fence). *)
  let corpus = List.map prog_of Litmus_classics.all in
  let fenced = List.map Delay_set.with_fences corpus in
  List.iter
    (fun m ->
      let r =
        Weak_ordering.verify
          ~hw:(Weak_ordering.of_machine m)
          ~model:Weak_ordering.fenced_delays (corpus @ fenced)
      in
      check
        (Machines.name m ^ " weakly ordered w.r.t. fenced-delays")
        true r.Weak_ordering.weakly_ordered)
    [ Machines.rp3; Machines.ooo; Machines.wbuf ]

let test_release_consistency_contract () =
  (* Release consistency's contract is DRF1: weakly ordered w.r.t. DRF1,
     not DRF0 (read-only releases are not honoured), and genuinely weaker
     than SC. *)
  let corpus = List.map prog_of Litmus_classics.all in
  let verdict model =
    (Weak_ordering.verify
       ~hw:(Weak_ordering.of_machine Machines.rc)
       ~model corpus)
      .Weak_ordering.weakly_ordered
  in
  check "rc not WO w.r.t. DRF0" false (verdict Weak_ordering.drf0);
  check "rc WO w.r.t. DRF1" true (verdict Weak_ordering.drf1);
  check "rc weaker than SC" true
    (Weak_ordering.weaker_than_sc ~hw:(Weak_ordering.of_machine Machines.rc) corpus);
  check "rc breaks the DRF0-only program" false
    (Machines.appears_sc Machines.rc
       (prog_of Litmus_classics.read_sync_release))

let test_fenced_delays_obeys () =
  check "unfenced dekker does not obey" false
    (Weak_ordering.fenced_delays.Weak_ordering.obeys
       (prog_of Litmus_classics.dekker));
  check "fenced dekker obeys" true
    (Weak_ordering.fenced_delays.Weak_ordering.obeys
       (Delay_set.with_fences (prog_of Litmus_classics.dekker)));
  check "empty delay set obeys trivially" true
    (Weak_ordering.fenced_delays.Weak_ordering.obeys
       (prog_of Litmus_classics.coww))

let test_fences_restore_sc_on_wbuf () =
  (* Dekker with fences between the write and the read is SC on wbuf. *)
  let p =
    Prog.make ~name:"dekker_fenced"
      ~exists:
        (Cond.And (Cond.Reg_eq (0, "r0", 0), Cond.Reg_eq (1, "r1", 0)))
      [
        [ Instr.write "x" 1; Instr.Fence; Instr.read "y" "r0" ];
        [ Instr.write "y" 1; Instr.Fence; Instr.read "x" "r1" ];
      ]
  in
  check "fences forbid the violation" false
    (Option.get (Machines.allows_exists Machines.wbuf p));
  check "and on ooo too" false
    (Option.get (Machines.allows_exists Machines.ooo p))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "machine",
    [
      t "fig1: wbuf admits violation" test_fig1_wbuf_allows_dekker;
      t "fig1: ooo admits violation" test_fig1_ooo_allows_dekker;
      t "fig1: sc forbids violation" test_fig1_sc_forbids;
      t "wbuf not weakly ordered" test_wbuf_is_not_weakly_ordered;
      t "all machines contain SC" test_all_machines_contain_sc;
      t "def1/def2 appear SC on DRF0 corpus" test_def1_def2_appear_sc_on_drf0;
      t "def2-rs appears SC on DRF1 corpus" test_def2_rs_appears_sc_on_drf1;
      t "def2-rs breaks DRF0-only program" test_def2_rs_breaks_drf0_only_program;
      t "def machines weak on races" test_machines_weak_on_racy_programs;
      t "barrier spin separates def1/def2" test_barrier_spin_separates_def1_def2;
      t "def2 handoff works" test_def2_handoff_without_stalling_p0;
      t "wbuf store forwarding" test_wbuf_forwarding;
      t "ooo dependencies" test_ooo_respects_dependencies;
      t "ooo same-location order" test_ooo_same_location_order;
      t "RMW atomic everywhere" test_rmw_atomic_on_all_machines;
      t "lock mutex on weak machines" test_lock_mutex_on_def_machines;
      t "fences restore SC" test_fences_restore_sc_on_wbuf;
      t "rp3 is naive about syncs" test_rp3_is_naive_about_syncs;
      t "fence machines WO w.r.t. fenced-delays"
        test_fence_machines_weakly_ordered_wrt_fenced_delays;
      t "release consistency contract (DRF1)" test_release_consistency_contract;
      t "fenced-delays membership" test_fenced_delays_obeys;
    ] )
