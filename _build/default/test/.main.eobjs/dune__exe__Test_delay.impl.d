test/test_delay.ml: Alcotest Delay_set Event Evts Final Instr List Litmus_classics Litmus_gen Machines Prog Rel Sc String
