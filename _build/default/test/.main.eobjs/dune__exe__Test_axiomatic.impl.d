test/test_axiomatic.ml: Alcotest Array Candidate Delay_set Evts Exp Final Instr Iset List Litmus_classics Machines Models Option Order Printf Prog Rel Sc
