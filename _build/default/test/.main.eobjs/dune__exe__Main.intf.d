test/main.mli:
