test/test_relation.ml: Alcotest Array Closure Iset List Option Order Printf QCheck QCheck_alcotest Rel String
