test/test_core.ml: Alcotest Candidate Evts Lemma1 List Litmus_classics Machines Models Prog Weak_ordering
