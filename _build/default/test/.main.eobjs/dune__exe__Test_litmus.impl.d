test/test_litmus.ml: Alcotest Array Cond Drf Exp Filename Final Fmt Instr List Litmus_classics Litmus_lex Litmus_parse Litmus_print Machines Option Printf Prog Sc Sys
