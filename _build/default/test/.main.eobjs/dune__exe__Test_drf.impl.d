test/test_drf.ml: Alcotest Drf Event Evts Hb Instr List Litmus_classics Printf Prog QCheck QCheck_alcotest Rel Sc String Sync_orders
