test/main.ml: Alcotest Test_axiomatic Test_core Test_delay Test_differential Test_drf Test_exec Test_litmus Test_machine Test_program Test_relation Test_sim
