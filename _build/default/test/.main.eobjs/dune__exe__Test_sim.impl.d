test/test_sim.ml: Alcotest Array Cpu Engine List Printf Proto Sim_config Sim_run Sim_trace Workload
