test/test_program.ml: Alcotest Array Cond Exp Final Fmt Instr List Litmus_classics Prog
