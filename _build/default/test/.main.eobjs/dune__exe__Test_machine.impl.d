test/test_machine.ml: Alcotest Cond Delay_set Drf Exp Final Instr List Litmus_classics Machines Option Printf Prog Sc Weak_ordering
