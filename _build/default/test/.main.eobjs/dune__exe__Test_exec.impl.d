test/test_exec.ml: Alcotest Array Evts Exp Final Instr List Litmus_classics Option Prog QCheck QCheck_alcotest Rel Sc
