test/test_differential.ml: Alcotest Delay_set Drf Final Fmt Instr Lemma1 List Litmus_gen Litmus_parse Litmus_print Machines Models Printf Prog Sc
