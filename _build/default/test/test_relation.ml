(* Unit and property tests for the relation library. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rel_of n pairs = Rel.of_list n pairs

(* --- Rel ----------------------------------------------------------------- *)

let test_basic_ops () =
  let r = rel_of 4 [ (0, 1); (1, 2) ] in
  check "mem 0 1" true (Rel.mem r 0 1);
  check "not mem 1 0" false (Rel.mem r 1 0);
  check_int "cardinal" 2 (Rel.cardinal r);
  let r' = Rel.add r 2 3 in
  check_int "add grows" 3 (Rel.cardinal r');
  check_int "add is persistent" 2 (Rel.cardinal r);
  let r'' = Rel.remove r' 2 3 in
  check "remove round-trip" true (Rel.equal r r'')

let test_add_idempotent () =
  let r = rel_of 3 [ (0, 1) ] in
  check "physical no-op" true (Rel.add r 0 1 == r)

let test_union_inter_diff () =
  let a = rel_of 3 [ (0, 1); (1, 2) ] in
  let b = rel_of 3 [ (1, 2); (2, 0) ] in
  check_int "union" 3 (Rel.cardinal (Rel.union a b));
  check_int "inter" 1 (Rel.cardinal (Rel.inter a b));
  check_int "diff" 1 (Rel.cardinal (Rel.diff a b));
  check "subset inter" true (Rel.subset (Rel.inter a b) a)

let test_compose () =
  let a = rel_of 4 [ (0, 1); (1, 2) ] in
  let b = rel_of 4 [ (1, 3); (2, 3) ] in
  let c = Rel.compose a b in
  check "0 composes to 3" true (Rel.mem c 0 3);
  check "1 composes to 3" true (Rel.mem c 1 3);
  check_int "only two pairs" 2 (Rel.cardinal c)

let test_inverse () =
  let a = rel_of 3 [ (0, 1); (0, 2) ] in
  let i = Rel.inverse a in
  check "inverted" true (Rel.mem i 1 0 && Rel.mem i 2 0);
  check "involution" true (Rel.equal a (Rel.inverse i))

let test_restrict_filter () =
  let a = rel_of 4 [ (0, 1); (1, 2); (2, 3) ] in
  let r = Rel.restrict a ~keep:(fun e -> e <> 2) in
  check_int "restrict drops pairs touching 2" 1 (Rel.cardinal r);
  let f = Rel.filter (fun x y -> y - x > 1) a in
  check "filter none" true (Rel.is_empty f)

let test_cross () =
  let a = Rel.create 4 in
  let c = Rel.cross a (Iset.of_list [ 0; 1 ]) (Iset.of_list [ 2; 3 ]) in
  check_int "product size" 4 (Rel.cardinal c)

let test_universe_check () =
  let a = rel_of 2 [ (0, 1) ] in
  Alcotest.check_raises "oob add" (Invalid_argument "Rel: event 5 outside universe [0,2)")
    (fun () -> ignore (Rel.add a 5 0))

(* --- Closure ------------------------------------------------------------- *)

let test_closure_chain () =
  let r = rel_of 4 [ (0, 1); (1, 2); (2, 3) ] in
  let c = Closure.transitive_closure r in
  check "0->3" true (Rel.mem c 0 3);
  check_int "6 pairs" 6 (Rel.cardinal c)

let test_closure_agrees_with_warshall () =
  let r = rel_of 6 [ (0, 1); (1, 2); (3, 4); (4, 0); (2, 5) ] in
  check "two algorithms agree" true
    (Rel.equal (Closure.transitive_closure r) (Closure.transitive_closure_warshall r))

let test_acyclic () =
  let dag = rel_of 3 [ (0, 1); (1, 2); (0, 2) ] in
  check "dag acyclic" true (Closure.is_acyclic dag);
  let cyc = rel_of 3 [ (0, 1); (1, 2); (2, 0) ] in
  check "cycle found" false (Closure.is_acyclic cyc);
  let self = rel_of 2 [ (1, 1) ] in
  check "self-loop is a cycle" false (Closure.is_acyclic self)

let test_find_cycle () =
  let cyc = rel_of 4 [ (0, 1); (1, 2); (2, 1); (2, 3) ] in
  match Closure.find_cycle cyc with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
      (* Each consecutive pair (and the wrap-around) must be an edge. *)
      let ok =
        let arr = Array.of_list cycle in
        let n = Array.length arr in
        let edges_ok = ref (n > 0) in
        for i = 0 to n - 1 do
          if not (Rel.mem cyc arr.(i) arr.((i + 1) mod n)) then
            edges_ok := false
        done;
        !edges_ok
      in
      check "witness is a real cycle" true ok

(* --- Order --------------------------------------------------------------- *)

let test_topo_sort () =
  let r = rel_of 4 [ (3, 1); (1, 0); (0, 2) ] in
  (match Order.topological_sort r with
  | None -> Alcotest.fail "expected a sort"
  | Some order ->
      let pos = Array.make 4 0 in
      List.iteri (fun i e -> pos.(e) <- i) order;
      check "3 before 1" true (pos.(3) < pos.(1));
      check "1 before 0" true (pos.(1) < pos.(0));
      check "0 before 2" true (pos.(0) < pos.(2)));
  let cyc = rel_of 2 [ (0, 1); (1, 0) ] in
  check "cycle has no sort" true (Order.topological_sort cyc = None)

let test_linear_extensions_count () =
  (* An empty order over n elements has n! linear extensions. *)
  check_int "3! extensions" 6 (Order.count_linear_extensions (Rel.create 3));
  (* A chain has exactly one. *)
  let chain = rel_of 3 [ (0, 1); (1, 2) ] in
  check_int "chain" 1 (Order.count_linear_extensions chain);
  (* Two independent chains of lengths 2 and 2: C(4,2) = 6. *)
  let two = rel_of 4 [ (0, 1); (2, 3) ] in
  check_int "interleavings" 6 (Order.count_linear_extensions two)

let test_linear_extensions_respect_order () =
  let r = rel_of 4 [ (0, 1); (2, 3) ] in
  Order.linear_extensions r (fun order ->
      let pos = Array.make 4 0 in
      List.iteri (fun i e -> pos.(e) <- i) order;
      check "0<1" true (pos.(0) < pos.(1));
      check "2<3" true (pos.(2) < pos.(3)))

let test_of_total_order () =
  let r = Order.of_total_order 3 [ 2; 0; 1 ] in
  check "2 before 0" true (Rel.mem r 2 0);
  check "2 before 1" true (Rel.mem r 2 1);
  check "0 before 1" true (Rel.mem r 0 1);
  check "total on universe" true
    (Order.is_total_order_on r (Iset.of_range 0 2))

let test_consistent () =
  let a = rel_of 3 [ (0, 1) ] in
  let b = rel_of 3 [ (1, 2) ] in
  check "chains consistent" true (Order.consistent a b);
  let c = rel_of 3 [ (1, 0) ] in
  check "opposite inconsistent" false (Order.consistent a c)

(* --- Properties ---------------------------------------------------------- *)

let arbitrary_rel n =
  let gen =
    QCheck.Gen.(
      list_size (int_bound (n * 2))
        (pair (int_bound (n - 1)) (int_bound (n - 1))))
  in
  QCheck.make
    ~print:(fun pairs ->
      String.concat ";"
        (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) pairs))
    gen

let prop_closure_idempotent =
  QCheck.Test.make ~name:"transitive closure is idempotent" ~count:200
    (arbitrary_rel 7)
    (fun pairs ->
      let r = Closure.transitive_closure (rel_of 7 pairs) in
      Rel.equal r (Closure.transitive_closure r))

let prop_closure_algorithms_agree =
  QCheck.Test.make ~name:"worklist and Warshall closures agree" ~count:200
    (arbitrary_rel 7)
    (fun pairs ->
      let r = rel_of 7 pairs in
      Rel.equal
        (Closure.transitive_closure r)
        (Closure.transitive_closure_warshall r))

let prop_topo_iff_acyclic =
  QCheck.Test.make ~name:"topological sort exists iff acyclic" ~count:200
    (arbitrary_rel 6)
    (fun pairs ->
      let r = rel_of 6 pairs in
      Closure.is_acyclic r = Option.is_some (Order.topological_sort r))

let prop_extension_contains_order =
  QCheck.Test.make ~name:"every linear extension contains the order" ~count:50
    (arbitrary_rel 5)
    (fun pairs ->
      let r = rel_of 5 pairs in
      let ok = ref true in
      Order.linear_extensions r (fun order ->
          let total = Order.of_total_order 5 order in
          if not (Rel.subset (Rel.filter (fun a b -> a <> b) r) total) then
            ok := false);
      !ok)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "relation",
    [
      t "basic ops" test_basic_ops;
      t "add idempotent" test_add_idempotent;
      t "union/inter/diff" test_union_inter_diff;
      t "compose" test_compose;
      t "inverse" test_inverse;
      t "restrict/filter" test_restrict_filter;
      t "cross" test_cross;
      t "universe checks" test_universe_check;
      t "closure chain" test_closure_chain;
      t "closure agrees with warshall" test_closure_agrees_with_warshall;
      t "acyclicity" test_acyclic;
      t "find cycle witness" test_find_cycle;
      t "topological sort" test_topo_sort;
      t "linear extension counts" test_linear_extensions_count;
      t "linear extensions respect order" test_linear_extensions_respect_order;
      t "of_total_order" test_of_total_order;
      t "consistency (ShS88)" test_consistent;
      QCheck_alcotest.to_alcotest prop_closure_idempotent;
      QCheck_alcotest.to_alcotest prop_closure_algorithms_agree;
      QCheck_alcotest.to_alcotest prop_topo_iff_acyclic;
      QCheck_alcotest.to_alcotest prop_extension_contains_order;
    ] )
