(* Differential testing on randomly generated programs.

   These are the repository's strongest checks: the paper's central theorem
   and every pair of independent implementations are tested against each
   other on programs nobody wrote by hand.  All generation is deterministic
   in the seed, so a failure message's seed reproduces the program. *)

let seeds = List.init 250 (fun i -> 7 * i)

let bigger_config =
  {
    Litmus_gen.default_config with
    Litmus_gen.max_threads = 4;
    max_instrs = 4;
    num_locs = 3;
  }

(* Two corpora: a large one of small programs (cheap enough for the
   exponential literal checker) and a smaller one of bigger programs for
   the polynomially-checkable properties. *)
let small_programs =
  List.filter_map (fun seed -> Litmus_gen.generate_live seed) seeds

let big_programs =
  List.filter_map
    (fun seed -> Litmus_gen.generate_live ~config:bigger_config (seed + 1))
    (List.init 40 (fun i -> 13 * i))

let live_programs = small_programs @ big_programs

let check_on corpus name pred =
  List.iter
    (fun prog ->
      if not (pred prog) then
        Alcotest.failf "%s fails on %s:@.%a" name (Prog.name prog) Prog.pp prog)
    corpus

let check_all name pred = check_on live_programs name pred

(* --- the paper's theorem on random programs -------------------------------- *)

let test_drf0_implies_sc_on_def1 () =
  check_all "DRF0 => def1 appears SC" (fun p ->
      (not (Drf.obeys p)) || Machines.appears_sc Machines.def1 p)

let test_drf0_implies_sc_on_def2 () =
  check_all "DRF0 => def2 appears SC" (fun p ->
      (not (Drf.obeys p)) || Machines.appears_sc Machines.def2 p)

let test_drf1_implies_sc_on_def2_rs () =
  check_all "DRF1 => def2-rs appears SC" (fun p ->
      (not (Drf.obeys ~model:Drf.DRF1 p))
      || Machines.appears_sc Machines.def2_rs p)

let test_drf1_implies_sc_on_rc () =
  check_all "DRF1 => rc appears SC" (fun p ->
      (not (Drf.obeys ~model:Drf.DRF1 p)) || Machines.appears_sc Machines.rc p)

(* --- independent implementations agree -------------------------------------- *)

let test_axiomatic_sc_equals_operational () =
  check_all "axiomatic SC = operational SC" (fun p ->
      Final.Set.equal (Models.outcomes Models.sc p) (Sc.outcomes p))

let test_drf_checker_equals_naive () =
  check_on small_programs "sync-order DRF0 checker = literal Definition 3"
    (fun p -> Drf.obeys p = Drf.obeys_naive p)

let test_drf1_checker_equals_naive () =
  check_on small_programs "sync-order DRF1 checker = literal Definition 3"
    (fun p -> Drf.obeys ~model:Drf.DRF1 p = Drf.obeys_naive ~model:Drf.DRF1 p)

let test_wbuf_within_tso () =
  check_all "wbuf machine within TSO axioms" (fun p ->
      Final.Set.subset
        (Machines.outcomes Machines.wbuf p)
        (Models.outcomes Models.tso p))

let test_machines_within_axioms () =
  check_all "def1 machine within def1 axioms" (fun p ->
      Final.Set.subset
        (Machines.outcomes Machines.def1 p)
        (Models.outcomes Models.def1 p));
  check_all "def2 machine within def2 axioms" (fun p ->
      Final.Set.subset
        (Machines.outcomes Machines.def2 p)
        (Models.outcomes Models.def2 p))

(* --- structural sanity -------------------------------------------------------- *)

let test_sc_within_all_machines () =
  List.iter
    (fun m ->
      check_all
        (Printf.sprintf "SC within %s" (Machines.name m))
        (fun p -> Final.Set.subset (Sc.outcomes p) (Machines.outcomes m p)))
    Machines.all

let test_machine_hierarchy () =
  (* def1 is strictly more constrained than def2 (def2 only relaxes): every
     def1 outcome is a def2 outcome. *)
  check_all "def1 outcomes within def2 outcomes" (fun p ->
      Final.Set.subset
        (Machines.outcomes Machines.def1 p)
        (Machines.outcomes Machines.def2 p));
  check_all "def2 outcomes within def2-rs outcomes" (fun p ->
      Final.Set.subset
        (Machines.outcomes Machines.def2 p)
        (Machines.outcomes Machines.def2_rs p))

let test_model_hierarchy () =
  check_all "sc within def1 axioms" (fun p ->
      Final.Set.subset (Models.outcomes Models.sc p) (Models.outcomes Models.def1 p));
  check_all "def1 axioms within def2 axioms" (fun p ->
      Final.Set.subset
        (Models.outcomes Models.def1 p)
        (Models.outcomes Models.def2 p));
  check_all "def2 axioms within coherence" (fun p ->
      Final.Set.subset
        (Models.outcomes Models.def2 p)
        (Models.outcomes Models.coherence_only p))

let test_drf1_weaker_than_drf0 () =
  check_all "DRF1-clean implies DRF0-clean" (fun p ->
      (not (Drf.obeys ~model:Drf.DRF1 p)) || Drf.obeys p)

let test_lemma1_on_drf0_programs () =
  check_all "Lemma 1 on def2 candidates of DRF0 programs" (fun p ->
      (not (Drf.obeys p))
      || List.for_all Lemma1.holds (Models.candidates Models.def2 p))

let test_print_parse_roundtrip_random () =
  (* The litmus printer and parser are exact inverses on every generated
     program (including fenced variants, which exercise the Fence cell). *)
  List.iter
    (fun prog ->
      List.iter
        (fun p ->
          let p' = Litmus_parse.parse_string (Litmus_print.to_string p) in
          if
            not
              (List.for_all2
                 (List.for_all2 Instr.equal)
                 (Prog.threads p) (Prog.threads p'))
          then Alcotest.failf "round-trip broke %s:@.%a" (Prog.name p) Prog.pp p)
        [ prog; Delay_set.with_fences prog ])
    live_programs

let test_generator_determinism () =
  List.iter
    (fun seed ->
      let a = Litmus_gen.generate seed and b = Litmus_gen.generate seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d deterministic" seed)
        true
        (List.for_all2
           (List.for_all2 Instr.equal)
           (Prog.threads a) (Prog.threads b)))
    [ 0; 1; 42; 1000 ]

let test_generated_programs_validate () =
  List.iter
    (fun prog ->
      match Prog.validate prog with
      | Ok () -> ()
      | Error ((Prog.Unassigned_register _ :: _ | _) as es) ->
          (* Generated registers are always fresh loads, so the only errors
             would be real bugs. *)
          Alcotest.failf "%s: %a" (Prog.name prog)
            Fmt.(list ~sep:comma Prog.pp_error)
            es)
    live_programs

let test_corpus_size () =
  (* The filter should keep most generated programs. *)
  Alcotest.(check bool)
    "at least 200 live programs" true
    (List.length live_programs >= 200)

let suite =
  let t name f = Alcotest.test_case name `Slow f in
  let tq name f = Alcotest.test_case name `Quick f in
  ( "differential",
    [
      tq "generator determinism" test_generator_determinism;
      t "print/parse round-trip on random programs" test_print_parse_roundtrip_random;
      tq "generated programs validate" test_generated_programs_validate;
      tq "live corpus size" test_corpus_size;
      t "DRF0 => def1 appears SC" test_drf0_implies_sc_on_def1;
      t "DRF0 => def2 appears SC" test_drf0_implies_sc_on_def2;
      t "DRF1 => def2-rs appears SC" test_drf1_implies_sc_on_def2_rs;
      t "DRF1 => rc appears SC" test_drf1_implies_sc_on_rc;
      t "axiomatic SC = operational SC" test_axiomatic_sc_equals_operational;
      t "DRF0 checker = naive" test_drf_checker_equals_naive;
      t "DRF1 checker = naive" test_drf1_checker_equals_naive;
      t "machines within axioms" test_machines_within_axioms;
      t "wbuf within TSO axioms" test_wbuf_within_tso;
      t "SC within all machines" test_sc_within_all_machines;
      t "machine hierarchy" test_machine_hierarchy;
      t "model hierarchy" test_model_hierarchy;
      t "DRF1-clean implies DRF0-clean" test_drf1_weaker_than_drf0;
      t "Lemma 1 on random DRF0 programs" test_lemma1_on_drf0_programs;
    ] )
