(* Tests for candidate executions and axiomatic models. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prog_of e = e.Litmus_classics.prog

(* --- Candidate enumeration ------------------------------------------------ *)

let test_candidate_counts () =
  (* One write and one read on x: the read takes the write or init, and co
     is trivial: 2 candidates. *)
  let p =
    Prog.make ~name:"wr" [ [ Instr.write "x" 1 ]; [ Instr.read "x" "r" ] ]
  in
  let evts = Evts.of_prog p in
  check_int "2 candidates" 2 (List.length (Candidate.enumerate evts))

let test_candidate_values_flow () =
  (* P0 writes 1; P1 reads it into r and writes r+1 elsewhere. *)
  let p =
    Prog.make ~name:"flow"
      [
        [ Instr.write "x" 1 ];
        [ Instr.read "x" "r"; Instr.store "y" (Exp.Add (Exp.Reg "r", Exp.Const 1)) ];
      ]
  in
  let evts = Evts.of_prog p in
  let cands = Candidate.enumerate evts in
  (* Candidate where the read takes the write: y's write value must be 2. *)
  let found =
    List.exists
      (fun c ->
        (Candidate.rf c).(1) = Candidate.From 0 && Candidate.write_value c 2 = 2)
      cands
  in
  check "value flows through rf" true found

let test_await_constrains_candidates () =
  (* Await f 1 can only read a write of 1; reading init (0) is rejected. *)
  let p =
    Prog.make ~name:"aw" [ [ Instr.write "f" 1 ]; [ Instr.await "f" 1 ] ]
  in
  let evts = Evts.of_prog p in
  let cands = Candidate.enumerate evts in
  check_int "only the rf=From candidate" 1 (List.length cands);
  check "reads the write" true ((Candidate.rf (List.hd cands)).(1) = Candidate.From 0)

let test_oota_rejected () =
  (* r0 := R x; W y r0 || r1 := R y; W x r1 with both reads taking the other
     thread's write is an out-of-thin-air cycle; no such candidate exists. *)
  let p =
    Prog.make ~name:"oota"
      [
        [ Instr.read "x" "r0"; Instr.store "y" (Exp.Reg "r0") ];
        [ Instr.read "y" "r1"; Instr.store "x" (Exp.Reg "r1") ];
      ]
  in
  let evts = Evts.of_prog p in
  let cyclic =
    List.exists
      (fun c ->
        (Candidate.rf c).(0) = Candidate.From 3
        && (Candidate.rf c).(2) = Candidate.From 1)
      (Candidate.enumerate evts)
  in
  check "no rf cycle candidate" false cyclic

let test_fr_derivation () =
  let p =
    Prog.make ~name:"fr" [ [ Instr.write "x" 1 ]; [ Instr.read "x" "r" ] ]
  in
  let evts = Evts.of_prog p in
  let init_reader =
    List.find
      (fun c -> (Candidate.rf c).(1) = Candidate.Init)
      (Candidate.enumerate evts)
  in
  (* Reading init, the read is fr-before the write. *)
  check "fr edge" true (Rel.mem (Candidate.fr init_reader) 1 0)

let test_rmw_atomicity_flag () =
  let p = prog_of Litmus_classics.tas_atomicity in
  let evts = Evts.of_prog p in
  let atomics = List.filter Candidate.rmw_atomic (Candidate.enumerate evts) in
  (* The two TAS events: one must read init and the other must read the
     first's write; both co orders appear, so exactly 2 atomic candidates. *)
  check_int "2 atomic candidates" 2 (List.length atomics)

(* --- Models ----------------------------------------------------------------- *)

let test_sc_agrees_with_operational () =
  List.iter
    (fun e ->
      let p = prog_of e in
      check
        (Printf.sprintf "%s axiomatic sc = operational sc" (Prog.name p))
        true
        (Final.Set.equal (Models.outcomes Models.sc p) (Sc.outcomes p)))
    Litmus_classics.all

let test_model_strength_chain () =
  (* SC ⊆ def1 ⊆ def2 ⊆ coherence-only, outcome-wise, on every program. *)
  List.iter
    (fun e ->
      let p = prog_of e in
      let o m = Models.outcomes m p in
      let name = Prog.name p in
      check (name ^ ": sc <= def1") true (Final.Set.subset (o Models.sc) (o Models.def1));
      check (name ^ ": def1 <= def2") true
        (Final.Set.subset (o Models.def1) (o Models.def2));
      check (name ^ ": def2 <= coherence") true
        (Final.Set.subset (o Models.def2) (o Models.coherence_only)))
    Litmus_classics.all

let test_def1_def2_sc_for_drf0 () =
  (* The paper's claims: def1 hardware is weakly ordered w.r.t. DRF0
     (Section 6), and def2 satisfies the Section 5.1 conditions, so both
     must appear SC to every DRF0 corpus program. *)
  List.iter
    (fun e ->
      let p = prog_of e in
      if e.Litmus_classics.drf0 then begin
        check
          (Prog.name p ^ ": def1 appears SC")
          true
          (Final.Set.subset (Models.outcomes Models.def1 p) (Sc.outcomes p));
        check
          (Prog.name p ^ ": def2 appears SC")
          true
          (Final.Set.subset (Models.outcomes Models.def2 p) (Sc.outcomes p))
      end)
    Litmus_classics.all

let test_def2_weaker_than_def1 () =
  (* Figure 3's point, at the model level: there is a racy program (the
     barrier data spin) where def1 stays SC but def2 does not. *)
  let p = prog_of Litmus_classics.barrier_data_spin in
  let sc = Sc.outcomes p in
  check "def2 shows non-SC outcome" false
    (Final.Set.subset (Models.outcomes Models.def2 p) sc);
  check "dekker weak under both" true
    (Models.allows Models.def1 (prog_of Litmus_classics.dekker)
       (Option.get (Prog.exists (prog_of Litmus_classics.dekker))))

let test_tso_envelope () =
  (* TSO relaxes exactly write-to-read order: Dekker allowed, MP / LB /
     IRIW forbidden; and the write-buffer machine lives inside it. *)
  let allows m e =
    Option.get (Models.allows_exists m (prog_of e))
  in
  check "tso allows dekker" true (allows Models.tso Litmus_classics.dekker);
  check "tso forbids mp" false (allows Models.tso Litmus_classics.mp);
  check "tso forbids lb" false (allows Models.tso Litmus_classics.lb);
  check "tso forbids iriw" false (allows Models.tso Litmus_classics.iriw);
  List.iter
    (fun e ->
      let p = prog_of e in
      check
        (Prog.name p ^ ": wbuf within tso")
        true
        (Final.Set.subset
           (Machines.outcomes Machines.wbuf p)
           (Models.outcomes Models.tso p));
      check
        (Prog.name p ^ ": sc within tso")
        true
        (Final.Set.subset (Models.outcomes Models.sc p) (Models.outcomes Models.tso p)))
    Litmus_classics.all

let test_fences_strengthen_tso () =
  (* The fenced Dekker is SC under TSO. *)
  let fenced = Delay_set.with_fences (prog_of Litmus_classics.dekker) in
  check "fenced dekker forbidden under tso" false
    (Option.get (Models.allows_exists Models.tso fenced))

let test_coherence_forbids_corr () =
  let p = prog_of Litmus_classics.corr in
  check "coherence forbids CoRR" false
    (Option.get (Models.allows_exists Models.coherence_only p))

let test_operational_within_axiomatic () =
  (* The operational def1/def2 machines are implementations of the
     axiomatic models: their outcomes must be included. *)
  List.iter
    (fun e ->
      let p = prog_of e in
      check
        (Prog.name p ^ ": def1 machine within axioms")
        true
        (Final.Set.subset
           (Machines.outcomes Machines.def1 p)
           (Models.outcomes Models.def1 p));
      check
        (Prog.name p ^ ": def2 machine within axioms")
        true
        (Final.Set.subset
           (Machines.outcomes Machines.def2 p)
           (Models.outcomes Models.def2 p)))
    Litmus_classics.all

let test_sync_so_total_per_location () =
  (* In every SC candidate of dekker_sync, the sync ops per location are
     totally ordered by sync_so. *)
  let p = prog_of Litmus_classics.dekker_sync in
  let evts = Evts.of_prog p in
  List.iter
    (fun c ->
      if Models.accepts Models.sc c then begin
        let so = Models.sync_so c in
        List.iter
          (fun loc ->
            let syncs = Iset.of_list (Evts.syncs_of_loc evts loc) in
            check "total" true (Order.is_total_order_on so syncs))
          (Prog.locations p)
      end)
    (Candidate.enumerate evts)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "axiomatic",
    [
      t "candidate counts" test_candidate_counts;
      t "values flow through rf" test_candidate_values_flow;
      t "await constrains rf" test_await_constrains_candidates;
      t "out-of-thin-air rejected" test_oota_rejected;
      t "fr derivation" test_fr_derivation;
      t "rmw atomicity flag" test_rmw_atomicity_flag;
      t "axiomatic sc = operational sc" test_sc_agrees_with_operational;
      t "model strength chain" test_model_strength_chain;
      t "def1/def2 appear SC to DRF0 programs" test_def1_def2_sc_for_drf0;
      t "def2 weaker than def1 on racy program" test_def2_weaker_than_def1;
      t "TSO envelope" test_tso_envelope;
      t "fences strengthen TSO" test_fences_strengthen_tso;
      t "coherence forbids CoRR" test_coherence_forbids_corr;
      t "operational machines within axioms" test_operational_within_axiomatic;
      t "sync order total per location" test_sync_so_total_per_location;
    ] )
