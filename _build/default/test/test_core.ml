(* Tests for the weak-ordering contract (Definition 2) and Lemma 1. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let corpus = List.map (fun e -> e.Litmus_classics.prog) Litmus_classics.all

(* --- sync models ------------------------------------------------------------ *)

let test_models_membership () =
  let dekker = Litmus_classics.dekker.Litmus_classics.prog in
  let mp_sync = Litmus_classics.mp_sync.Litmus_classics.prog in
  check "dekker not DRF0" false (Weak_ordering.drf0.Weak_ordering.obeys dekker);
  check "mp_sync DRF0" true (Weak_ordering.drf0.Weak_ordering.obeys mp_sync);
  check "everything unconstrained" true
    (Weak_ordering.unconstrained.Weak_ordering.obeys dekker)

(* --- appears_sc --------------------------------------------------------------- *)

let test_appears_sc () =
  let hw = Weak_ordering.of_machine Machines.def2 in
  check "def2 appears SC to mp_sync" true
    (Weak_ordering.appears_sc hw (Litmus_classics.mp_sync.Litmus_classics.prog));
  check "def2 does not appear SC to dekker" false
    (Weak_ordering.appears_sc hw (Litmus_classics.dekker.Litmus_classics.prog));
  let sc_hw = Weak_ordering.of_machine Machines.sc in
  List.iter
    (fun p ->
      check
        (Prog.name p ^ ": sc machine appears SC")
        true
        (Weak_ordering.appears_sc sc_hw p))
    corpus

(* --- verify ------------------------------------------------------------------- *)

let test_verify_report_structure () =
  let r =
    Weak_ordering.verify
      ~hw:(Weak_ordering.of_machine Machines.def2)
      ~model:Weak_ordering.drf0 corpus
  in
  check_int "one verdict per program" (List.length corpus)
    (List.length r.Weak_ordering.verdicts);
  check "weakly ordered" true r.Weak_ordering.weakly_ordered;
  check "no counterexamples" true (Weak_ordering.counterexamples r = []);
  (* The verdicts' ok field is the implication. *)
  List.iter
    (fun v ->
      check "ok = obeys implies appears" true
        (v.Weak_ordering.ok
        = ((not v.Weak_ordering.obeys_model) || v.Weak_ordering.sc_appearance)))
    r.Weak_ordering.verdicts

let test_verify_finds_counterexamples () =
  let r =
    Weak_ordering.verify
      ~hw:(Weak_ordering.of_machine Machines.wbuf)
      ~model:Weak_ordering.drf0 corpus
  in
  check "wbuf fails" false r.Weak_ordering.weakly_ordered;
  let ces = Weak_ordering.counterexamples r in
  check "counterexamples listed" true (ces <> []);
  (* Every counterexample is a DRF0 program with a non-SC outcome. *)
  List.iter
    (fun v ->
      check "obeys model" true v.Weak_ordering.obeys_model;
      check "not SC" false v.Weak_ordering.sc_appearance)
    ces

let test_verify_unconstrained_is_sc_test () =
  (* Weak ordering w.r.t. all-programs is exactly sequential consistency. *)
  let r m =
    (Weak_ordering.verify
       ~hw:(Weak_ordering.of_machine m)
       ~model:Weak_ordering.unconstrained corpus)
      .Weak_ordering.weakly_ordered
  in
  check "sc machine passes" true (r Machines.sc);
  check "def2 fails" false (r Machines.def2)

let test_weaker_than_sc () =
  check "def2 weaker than SC" true
    (Weak_ordering.weaker_than_sc
       ~hw:(Weak_ordering.of_machine Machines.def2)
       corpus);
  check "sc machine not weaker" false
    (Weak_ordering.weaker_than_sc ~hw:(Weak_ordering.of_machine Machines.sc) corpus)

let test_verify_axiomatic_hardware () =
  (* Axiomatic models plug into the same contract via of_model. *)
  let r =
    Weak_ordering.verify
      ~hw:(Weak_ordering.of_model Models.def2)
      ~model:Weak_ordering.drf0 corpus
  in
  check "axiomatic def2 weakly ordered" true r.Weak_ordering.weakly_ordered

(* --- Lemma 1 ------------------------------------------------------------------ *)

let test_lemma1_sc_candidates_of_drf0 () =
  List.iter
    (fun e ->
      let p = e.Litmus_classics.prog in
      if e.Litmus_classics.drf0 then
        List.iter
          (fun cand ->
            check
              (Prog.name p ^ ": lemma 1 on SC candidate")
              true (Lemma1.holds cand))
          (Models.candidates Models.sc p))
    Litmus_classics.all

let test_lemma1_fails_on_weak_candidate_of_racy_program () =
  (* mp's stale-read candidate (reads f=1 but x=0) violates the hb-last-write
     characterization: the candidate is def2-acceptable but not SC. *)
  let p = Litmus_classics.mp.Litmus_classics.prog in
  let weak =
    List.filter
      (fun c -> Models.accepts Models.def2 c && not (Models.accepts Models.sc c))
      (Candidate.enumerate (Evts.of_prog p))
  in
  check "weak candidates exist" true (weak <> []);
  check "some weak candidate fails lemma 1" true
    (List.exists (fun c -> not (Lemma1.holds c)) weak)

let test_lemma1_read_checks_details () =
  let p = Litmus_classics.mp_sync.Litmus_classics.prog in
  match Models.candidates Models.sc p with
  | [ cand ] ->
      let checks = Lemma1.check cand in
      check_int "one check per read" 2 (List.length checks);
      List.iter (fun c -> check "each ok" true c.Lemma1.ok) checks
  | other -> Alcotest.failf "expected 1 candidate, got %d" (List.length other)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "core",
    [
      t "sync model membership" test_models_membership;
      t "appears_sc" test_appears_sc;
      t "verify report structure" test_verify_report_structure;
      t "verify finds counterexamples" test_verify_finds_counterexamples;
      t "unconstrained model = SC test" test_verify_unconstrained_is_sc_test;
      t "weaker_than_sc" test_weaker_than_sc;
      t "axiomatic hardware verifies" test_verify_axiomatic_hardware;
      t "lemma 1 on SC candidates of DRF0 corpus" test_lemma1_sc_candidates_of_drf0;
      t "lemma 1 fails on weak racy candidate" test_lemma1_fails_on_weak_candidate_of_racy_program;
      t "lemma 1 read checks" test_lemma1_read_checks_details;
    ] )
