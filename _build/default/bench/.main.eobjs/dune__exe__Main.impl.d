bench/main.ml: Analyze Array Bechamel Benchmark Cpu Drf Experiments Fmt Hashtbl Instance List Litmus_classics Machines Measure Models Option Sc Sim_run Staged Sys Test Time Toolkit Workload
