bench/main.mli:
