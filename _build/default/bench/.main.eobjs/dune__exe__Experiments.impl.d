bench/experiments.ml: Array Cpu Delay_set Drf Event Evts Final Fmt Lemma1 List Litmus_classics Machines Models Option Prog Sc Sim_config Sim_run Sim_trace Weak_ordering Workload
