(* Quickstart: write a litmus test, ask three questions about it.

     dune exec examples/quickstart.exe

   1. Does sequential consistency allow the outcome I'm worried about?
   2. Does my program obey DRF0 (Definition 3)?
   3. What does weakly ordered hardware do with it (Definition 2)? *)

let test =
  {|
name my_first_test
{ x=0; f=0 }
P0          | P1          ;
W x 1       | Await f 1   ;
Ws f 1      | r := R x    ;
exists (1:r=0)
|}

let () =
  let prog = Litmus_parse.parse_string test in
  Fmt.pr "Program:@.%a@.@." Prog.pp prog;

  (* 1. Sequential consistency: enumerate every interleaving. *)
  let sc_outcomes = Sc.outcomes prog in
  Fmt.pr "SC outcomes (%d):@.%a@.@." (Final.Set.cardinal sc_outcomes)
    Final.pp_set sc_outcomes;
  (match Sc.allows_exists prog with
  | Some true -> Fmt.pr "SC allows the 'exists' outcome.@."
  | Some false -> Fmt.pr "SC forbids the 'exists' outcome.@."
  | None -> Fmt.pr "No 'exists' clause.@.");

  (* 2. DRF0: is there enough synchronization? *)
  (match Drf.check prog with
  | Ok () -> Fmt.pr "The program obeys DRF0: no data races.@."
  | Error races ->
      Fmt.pr "Data races found:@.%a@."
        Fmt.(list ~sep:cut Drf.pp_race)
        races);

  (* 3. Weakly ordered hardware must therefore keep it SC (Definition 2). *)
  Fmt.pr "@.Machine verdicts for the 'exists' outcome:@.";
  List.iter
    (fun m ->
      match Machines.allows_exists m prog with
      | Some allowed ->
          Fmt.pr "  %-8s %s@." (Machines.name m)
            (if allowed then "ALLOWS (weaker than SC here)" else "forbids")
      | None -> ())
    Machines.all;

  (* The paper's punchline, mechanically: because the program is DRF0, the
     def1/def2 machines appear sequentially consistent to it. *)
  Fmt.pr "@.appears-SC: def1=%b def2=%b@."
    (Machines.appears_sc Machines.def1 prog)
    (Machines.appears_sc Machines.def2 prog)
