(* Producer/consumer on the timing simulator: Figure 3, narrated.

     dune exec examples/producer_consumer.exe

   P0 writes a datum, releases a lock, and keeps working; P1 acquires the
   lock and reads the datum.  Under Definition-1 hardware, P0 stalls at the
   release until the datum's write is globally performed.  Under the
   paper's implementation, P0 commits the release immediately, the lock
   line is reserved, and the stall moves to P1's acquire — which had to
   wait anyway.  Both are correct; only the new implementation lets the
   producer run ahead. *)

let () =
  let w = Workload.fig3_handoff () in
  Fmt.pr "Figure 3 handoff (net latency %d cycles):@.@."
    (Sim_config.default.Sim_config.net);
  List.iter
    (fun policy ->
      let r = Sim_run.run policy w in
      let p0 = r.Sim_run.proc_stats.(0) in
      let p1 = r.Sim_run.proc_stats.(1) in
      Fmt.pr "%-8s producer done at %4d (sync stalls %3d)   consumer done at %4d   datum read: %s@."
        (Cpu.policy_name policy) p0.Cpu.finish
        (p0.Cpu.stall_pre_sync + p0.Cpu.stall_sync_gp)
        p1.Cpu.finish
        (match Sim_run.observation r "x" with
        | Some v -> string_of_int v
        | None -> "?"))
    Cpu.all_policies;

  Fmt.pr "@.Sweeping the network latency (producer finish time):@.@.";
  Fmt.pr "%8s %8s %8s %8s@." "net" "sc" "def1" "def2";
  List.iter
    (fun net ->
      let cfg = Sim_config.make ~net () in
      let run p = (Sim_run.run ~cfg p w).Sim_run.proc_stats.(0).Cpu.finish in
      Fmt.pr "%8d %8d %8d %8d@." net (run Cpu.Sc) (run Cpu.Def1) (run Cpu.Def2))
    [ 5; 10; 20; 40; 80 ];

  Fmt.pr
    "@.The def2 column is flat in the producer's sync stalls: committing@.\
     the Unset never waits for the datum's invalidations, whatever the@.\
     network costs.  Definition-1 hardware pays the full round trip.@.";

  Fmt.pr "@.Timelines (generation-to-commit spans; S = sync commit):@.@.";
  List.iter
    (fun policy ->
      let r = Sim_run.run policy w in
      Fmt.pr "%s:@.%a@." (Cpu.policy_name policy) (Sim_trace.pp_timeline ~width:72)
        r.Sim_run.trace)
    [ Cpu.Def1; Cpu.Def2 ]
