(* The model zoo: every corpus program against every machine and axiomatic
   model, plus the Definition 2 verification table.

     dune exec examples/model_zoo.exe

   This reproduces, in one screen, the paper's logical content:
   - Figure 1 (wbuf and ooo admit the Dekker violation);
   - Definition 3 (the DRF0 column);
   - Definition 2 (which machines appear SC to which software);
   - Section 6 (def1 is weakly ordered too; def2-rs needs DRF1). *)

let corpus = List.map (fun e -> e.Litmus_classics.prog) Litmus_classics.all

let () =
  Fmt.pr "Does the machine allow the test's 'exists' outcome?@.@.";
  Fmt.pr "%-20s %6s %6s %6s %6s %6s %6s %6s  %5s %5s@." "test" "sc" "wbuf"
    "ooo" "rp3" "def1" "def2" "d2-rs" "drf0" "drf1";
  List.iter
    (fun e ->
      let p = e.Litmus_classics.prog in
      let cell m =
        match Machines.allows_exists m p with
        | Some true -> "yes"
        | Some false -> "-"
        | None -> "?"
      in
      Fmt.pr "%-20s %6s %6s %6s %6s %6s %6s %6s  %5b %5b@." (Prog.name p)
        (cell Machines.sc) (cell Machines.wbuf) (cell Machines.ooo)
        (cell Machines.rp3) (cell Machines.def1) (cell Machines.def2)
        (cell Machines.def2_rs) (Drf.obeys p)
        (Drf.obeys ~model:Drf.DRF1 p))
    Litmus_classics.all;

  Fmt.pr "@.Definition 2 verdicts over this corpus:@.@.";
  let check hw model =
    let r = Weak_ordering.verify ~hw ~model corpus in
    Fmt.pr "  %-8s w.r.t. %-12s %s@." r.Weak_ordering.hardware
      r.Weak_ordering.model
      (if r.Weak_ordering.weakly_ordered then "weakly ordered"
       else
         Fmt.str "NOT weakly ordered (e.g. %s)"
           (match Weak_ordering.counterexamples r with
           | v :: _ -> Prog.name v.Weak_ordering.program
           | [] -> "?"))
  in
  List.iter
    (fun m -> check (Weak_ordering.of_machine m) Weak_ordering.drf0)
    Machines.all;
  check (Weak_ordering.of_machine Machines.def2_rs) Weak_ordering.drf1;
  (* A second instance of Definition 2: fence hardware and the
     fenced-delays model. *)
  let fenced_corpus = corpus @ List.map Delay_set.with_fences corpus in
  List.iter
    (fun m ->
      let r =
        Weak_ordering.verify
          ~hw:(Weak_ordering.of_machine m)
          ~model:Weak_ordering.fenced_delays fenced_corpus
      in
      Fmt.pr "  %-8s w.r.t. %-12s %s@." r.Weak_ordering.hardware
        r.Weak_ordering.model
        (if r.Weak_ordering.weakly_ordered then "weakly ordered"
         else "NOT weakly ordered"))
    [ Machines.rp3; Machines.ooo; Machines.wbuf ];

  Fmt.pr "@.Axiomatic models agree with the operational machines:@.@.";
  List.iter
    (fun e ->
      let p = e.Litmus_classics.prog in
      let within op ax = Final.Set.subset (op p) (ax p) in
      Fmt.pr "  %-20s def1 %s  def2 %s@." (Prog.name p)
        (if
           within
             (Machines.outcomes Machines.def1)
             (Models.outcomes Models.def1)
         then "ok"
         else "VIOLATION")
        (if
           within
             (Machines.outcomes Machines.def2)
             (Models.outcomes Models.def2)
         then "ok"
         else "VIOLATION"))
    Litmus_classics.all
