examples/race_detective.ml: Drf Event Evts Exp Final Fmt Instr List Litmus_classics Machines Prog Sc
