examples/quickstart.mli:
