examples/quickstart.ml: Drf Final Fmt List Litmus_parse Machines Prog Sc
