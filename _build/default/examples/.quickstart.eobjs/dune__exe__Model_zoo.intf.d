examples/model_zoo.mli:
