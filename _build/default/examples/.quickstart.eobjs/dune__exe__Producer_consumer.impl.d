examples/producer_consumer.ml: Array Cpu Fmt List Sim_config Sim_run Sim_trace Workload
