examples/model_zoo.ml: Delay_set Drf Final Fmt List Litmus_classics Machines Models Prog Weak_ordering
