(* Race detective: static (whole-program, Definition 3) and dynamic
   (per-execution, Figure 2 style) data-race analysis.

     dune exec examples/race_detective.exe

   The scenario: a work queue protected by a lock — except one fast-path
   read that skips the lock.  The detective finds the race, shows a
   witnessing synchronization order, and then demonstrates the per-trace
   analysis the paper's Figure 2 performs on idealized executions. *)

open Instr

(* A guarded counter with an unguarded fast-path read. *)
let buggy =
  Prog.make ~name:"queue_fastpath"
    [
      [
        lock "m";
        read "count" "r0";
        store "count" (Exp.Add (Exp.Reg "r0", Exp.Const 1));
        unlock "m";
      ];
      [ read "count" "fast" (* oops: no lock *) ];
      [
        lock "m";
        read "count" "r2";
        store "count" (Exp.Add (Exp.Reg "r2", Exp.Const 1));
        unlock "m";
      ];
    ]

let fixed =
  Prog.make ~name:"queue_fixed"
    [
      [
        lock "m";
        read "count" "r0";
        store "count" (Exp.Add (Exp.Reg "r0", Exp.Const 1));
        unlock "m";
      ];
      [ lock "m"; read "count" "fast"; unlock "m" ];
      [
        lock "m";
        read "count" "r2";
        store "count" (Exp.Add (Exp.Reg "r2", Exp.Const 1));
        unlock "m";
      ];
    ]

let analyze prog =
  Fmt.pr "=== %s ===@." (Prog.name prog);
  (match Drf.check prog with
  | Ok () -> Fmt.pr "No data races: the program obeys DRF0.@."
  | Error races ->
      let unique =
        List.sort_uniq
          (fun a b ->
            compare
              (a.Drf.e1.Event.id, a.Drf.e2.Event.id)
              (b.Drf.e1.Event.id, b.Drf.e2.Event.id))
          races
      in
      Fmt.pr "RACY: %d conflicting pair(s) can go unordered:@." (List.length unique);
      List.iter (fun r -> Fmt.pr "  %a@." Drf.pp_race r) unique);
  Fmt.pr "@."

let () =
  analyze buggy;
  analyze fixed;

  (* Dynamic detection, Figure 2 style: examine individual idealized
     executions of the buggy program.  Each trace is one execution; the
     detective reports the unordered conflicting accesses of that trace. *)
  Fmt.pr "=== per-execution analysis of %s (Figure 2 style) ===@."
    (Prog.name buggy);
  let evts = Evts.of_prog buggy in
  let shown = ref 0 in
  Sc.iter_traces buggy (fun trace _ ->
      if !shown < 3 then begin
        incr shown;
        let races = Drf.races_of_trace evts trace in
        Fmt.pr "execution %d (completion order %a): %s@." !shown
          Fmt.(list ~sep:(any " ") int)
          trace
          (if races = [] then "race-free"
           else
             Fmt.str "races %a"
               Fmt.(
                 list ~sep:comma (fun ppf (a, b) ->
                     pf ppf "(%a, %a)" Event.pp a Event.pp b))
               races)
      end);

  (* Consequences: Definition 2 promises SC behaviour only to race-free
     programs.  The lock-skipping update of the classics corpus really does
     lose an increment, and the fast-path read here can observe any count —
     weakly ordered hardware owes it nothing. *)
  Fmt.pr "@.=== consequences ===@.";
  let fast_values prog hw =
    Final.Set.fold
      (fun f acc ->
        match Final.reg f 1 "fast" with Some v -> v :: acc | None -> acc)
      (hw prog) []
    |> List.sort_uniq compare
  in
  Fmt.pr "fast-path read may observe (%s): sc=%a def2=%a@." (Prog.name buggy)
    Fmt.(list ~sep:comma int)
    (fast_values buggy Sc.outcomes)
    Fmt.(list ~sep:comma int)
    (fast_values buggy (Machines.outcomes Machines.def2));
  let lock_race = Litmus_classics.lock_race.Litmus_classics.prog in
  let counts hw =
    Final.Set.fold (fun f acc -> Final.mem f "x" :: acc) (hw lock_race) []
    |> List.sort_uniq compare
  in
  Fmt.pr "lock_race final x (an unguarded increment): sc=%a def2=%a@."
    Fmt.(list ~sep:comma int)
    (counts Sc.outcomes)
    Fmt.(list ~sep:comma int)
    (counts (Machines.outcomes Machines.def2));
  Fmt.pr
    "Racing code loses updates even under SC; DRF0 is the contract that@.\
     rules such programs out, and Definition 2 only promises SC to the rest.@."
