(** Instructions of litmus programs.

    Memory operations are classified as data or synchronization following the
    paper's Section 4; a synchronization operation accesses exactly one
    location and is recognizable as such by the hardware. *)

type kind = Data | Sync

type t =
  | Load of { kind : kind; loc : string; reg : string }
  | Store of { kind : kind; loc : string; value : Exp.t }
  | Rmw of { kind : kind; loc : string; reg : string; value : Exp.t }
      (** Atomic read-modify-write: [reg := mem[loc]; mem[loc] := value]
          where [value] may mention [reg] (the old contents). *)
  | Await of { kind : kind; loc : string; expect : int; reg : string option }
      (** Spin-read until [mem[loc] = expect], abstracted to its final
          successful read.  [kind = Data] models Section 6's "spinning on a
          barrier count with a data read". *)
  | Lock of { loc : string }
      (** Blocking TestAndSet: spin until [mem[loc] = 0], then set it to 1.
          Always a synchronization RMW. *)
  | Fence  (** Full local barrier; an extension beyond the paper's model. *)

(** {1 Constructors} *)

val load : ?kind:kind -> string -> string -> t
val store : ?kind:kind -> string -> Exp.t -> t

val read : string -> string -> t
(** Data read: [read loc reg]. *)

val write : string -> int -> t
(** Data write of a constant. *)

val sync_read : string -> string -> t
(** Read-only synchronization operation, e.g. [Test]. *)

val sync_write : string -> int -> t
(** Write-only synchronization operation, e.g. [Set]. *)

val unset : string -> t
(** [Unset loc] = synchronization write of 0. *)

val test_and_set : string -> string -> t
(** [test_and_set loc reg]: atomically [reg := mem[loc]; mem[loc] := 1]. *)

val fetch_and_add : string -> string -> int -> t

val await : ?kind:kind -> ?reg:string -> string -> int -> t
(** [await loc expect] blocks until [mem[loc] = expect]; synchronization by
    default. *)

val lock : string -> t
val unlock : string -> t
(** [unlock loc] is a synchronization write of 0 ([Unset]). *)

(** {1 Classification} *)

val kind : t -> kind option
(** [None] for [Fence]. *)

val is_sync : t -> bool
val is_data : t -> bool

val is_access : t -> bool
(** [true] for anything but [Fence]. *)

val is_read : t -> bool
(** Includes the read component of an RMW. *)

val is_write : t -> bool
(** Includes the write component of an RMW. *)

val is_blocking : t -> bool
(** [Await] and [Lock]. *)

val location : t -> string option
val target_register : t -> string option

val source_registers : t -> string list
(** Registers whose values the instruction consumes. *)

val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit
val equal : t -> t -> bool
