lib/program/cond.ml: Final Fmt List
