lib/program/prog.mli: Cond Exp Format Instr
