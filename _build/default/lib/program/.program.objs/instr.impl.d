lib/program/instr.ml: Exp Fmt List Option String
