lib/program/cond.mli: Final Format
