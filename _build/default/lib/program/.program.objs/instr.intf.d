lib/program/instr.mli: Exp Format
