lib/program/prog.ml: Array Cond Exp Fmt Hashtbl Instr List String
