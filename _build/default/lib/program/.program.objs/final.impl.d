lib/program/final.ml: Array Exp Fmt Set
