lib/program/final.mli: Exp Format Set
