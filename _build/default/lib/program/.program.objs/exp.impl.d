lib/program/exp.ml: Fmt Map String
