lib/program/exp.mli: Format Map
