(* The observable result of one execution: the union of the values returned
   by all reads (captured in the per-thread register files) and the final
   state of memory — exactly the notion of "result" the paper adopts when
   instantiating Lamport's definition of sequential consistency. *)

module Smap = Exp.Smap

type t = { memory : int Smap.t; regs : int Smap.t array }

let make ~memory ~regs = { memory; regs }

let num_threads t = Array.length t.regs

let mem t loc =
  match Smap.find_opt loc t.memory with Some v -> v | None -> 0

let reg t proc r =
  if proc < 0 || proc >= Array.length t.regs then None
  else Smap.find_opt r t.regs.(proc)

let bindings_of_map m = Smap.bindings m

let compare a b =
  let c =
    compare (bindings_of_map a.memory) (bindings_of_map b.memory)
  in
  if c <> 0 then c
  else
    compare
      (Array.map bindings_of_map a.regs)
      (Array.map bindings_of_map b.regs)

let equal a b = compare a b = 0

let pp ppf t =
  let pp_binding ppf (k, v) = Fmt.pf ppf "%s=%d" k v in
  let pp_map ppf m =
    Fmt.(list ~sep:(any " ") pp_binding) ppf (bindings_of_map m)
  in
  Fmt.pf ppf "@[<h>[mem: %a]" pp_map t.memory;
  Array.iteri
    (fun i regs ->
      if not (Smap.is_empty regs) then Fmt.pf ppf " [P%d: %a]" i pp_map regs)
    t.regs;
  Fmt.pf ppf "@]"

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let pp_set ppf s =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp) (Set.elements s)
