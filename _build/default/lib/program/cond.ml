(* Final-state predicates: the "exists" clause of a litmus test. *)

type t =
  | True
  | Reg_eq of int * string * int  (** thread id, register, expected value *)
  | Mem_eq of string * int
  | Not of t
  | And of t * t
  | Or of t * t

let rec eval final = function
  | True -> true
  | Reg_eq (p, r, v) -> (
      match Final.reg final p r with Some v' -> v' = v | None -> false)
  | Mem_eq (loc, v) -> Final.mem final loc = v
  | Not c -> not (eval final c)
  | And (a, b) -> eval final a && eval final b
  | Or (a, b) -> eval final a || eval final b

let conj = function
  | [] -> True
  | c :: cs -> List.fold_left (fun acc c -> And (acc, c)) c cs

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | Reg_eq (p, r, v) -> Fmt.pf ppf "P%d:%s=%d" p r v
  | Mem_eq (loc, v) -> Fmt.pf ppf "%s=%d" loc v
  | Not c -> Fmt.pf ppf "~(%a)" pp c
  | And (a, b) -> Fmt.pf ppf "(%a /\\ %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a \\/ %a)" pp a pp b

let rec registers = function
  | True | Mem_eq _ -> []
  | Reg_eq (p, r, _) -> [ (p, r) ]
  | Not c -> registers c
  | And (a, b) | Or (a, b) -> registers a @ registers b

let satisfiable_in finals c = Final.Set.exists (fun f -> eval f c) finals
let holds_in_all finals c = Final.Set.for_all (fun f -> eval f c) finals
