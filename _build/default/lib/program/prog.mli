(** Litmus programs: initial memory, straight-line threads, and an optional
    "exists" condition describing the outcome of interest. *)

type t

val make :
  name:string ->
  ?init:(string * int) list ->
  ?exists:Cond.t ->
  Instr.t list list ->
  t
(** [make ~name ~init ~exists threads].  Locations absent from [init] start
    at 0. *)

val name : t -> string
val num_threads : t -> int

val thread : t -> int -> Instr.t list
(** @raise Invalid_argument on a bad index. *)

val threads : t -> Instr.t list list
val exists : t -> Cond.t option
val init : t -> (string * int) list

val initial_memory : t -> int Exp.Smap.t
(** Initial memory as a map (only explicitly initialized locations). *)

val locations : t -> string list
(** All locations mentioned, sorted, without duplicates. *)

val sync_locations : t -> string list
(** Locations touched by at least one synchronization operation. *)

val num_instrs : t -> int

(** {1 Validation} *)

type error =
  | Duplicate_init of string
  | Unassigned_register of int * string
  | Bad_condition_thread of int
  | Fence_not_in_paper_model of int
  | Mixed_sync_data_location of string

val pp_error : Format.formatter -> error -> unit

val validate : ?paper_strict:bool -> t -> (unit, error list) result
(** Well-formedness.  With [~paper_strict:true], additionally reject fences
    and locations used both for data and synchronization (the paper's DRF0
    discussion keeps the two separate; mixing them is legal for our machines
    but makes examples confusing). *)

val pp : Format.formatter -> t -> unit
