(* Value expressions appearing on the right-hand side of stores and inside
   read-modify-write operations.  Registers are thread-local string names. *)

type t =
  | Const of int
  | Reg of string
  | Add of t * t
  | Sub of t * t

module Smap = Map.Make (String)

exception Unbound_register of string

let rec eval env = function
  | Const v -> v
  | Reg r -> (
      match Smap.find_opt r env with
      | Some v -> v
      | None -> raise (Unbound_register r))
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b

let rec registers = function
  | Const _ -> []
  | Reg r -> [ r ]
  | Add (a, b) | Sub (a, b) -> registers a @ registers b

let rec pp ppf = function
  | Const v -> Fmt.int ppf v
  | Reg r -> Fmt.string ppf r
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Reg x, Reg y -> String.equal x y
  | Add (a1, b1), Add (a2, b2) | Sub (a1, b1), Sub (a2, b2) ->
      equal a1 a2 && equal b1 b2
  | (Const _ | Reg _ | Add _ | Sub _), _ -> false
