(* Litmus programs: a name, initial memory values, one straight-line
   instruction list per thread, and an optional "exists" condition naming
   the outcome of interest. *)

module Smap = Exp.Smap

type t = {
  name : string;
  init : (string * int) list;
  threads : Instr.t list array;
  exists : Cond.t option;
}

let make ~name ?(init = []) ?exists threads =
  { name; init; threads = Array.of_list threads; exists }

let name t = t.name
let num_threads t = Array.length t.threads
let thread t p = t.threads.(p)
let threads t = Array.to_list t.threads
let exists t = t.exists
let init t = t.init

let initial_memory t =
  List.fold_left (fun m (loc, v) -> Smap.add loc v m) Smap.empty t.init

let locations t =
  let add_instr acc i =
    match Instr.location i with Some l -> l :: acc | None -> acc
  in
  let from_threads =
    Array.fold_left (List.fold_left add_instr) [] t.threads
  in
  let from_init = List.map fst t.init in
  List.sort_uniq String.compare (from_init @ from_threads)

let num_instrs t =
  Array.fold_left (fun n is -> n + List.length is) 0 t.threads

let sync_locations t =
  let add_instr acc i =
    match (Instr.is_sync i, Instr.location i) with
    | true, Some l -> l :: acc
    | _, _ -> acc
  in
  List.sort_uniq String.compare
    (Array.fold_left (List.fold_left add_instr) [] t.threads)

type error =
  | Duplicate_init of string
  | Unassigned_register of int * string  (** used before any load sets it *)
  | Bad_condition_thread of int
  | Fence_not_in_paper_model of int  (** thread containing a fence *)
  | Mixed_sync_data_location of string
      (** a location accessed both by sync and data operations *)

let pp_error ppf = function
  | Duplicate_init loc -> Fmt.pf ppf "location %s initialized twice" loc
  | Unassigned_register (p, r) ->
      Fmt.pf ppf "thread %d uses register %s before any load assigns it" p r
  | Bad_condition_thread p ->
      Fmt.pf ppf "condition mentions nonexistent thread %d" p
  | Fence_not_in_paper_model p ->
      Fmt.pf ppf "thread %d contains a fence (outside the paper's model)" p
  | Mixed_sync_data_location loc ->
      Fmt.pf ppf
        "location %s is accessed by both sync and data operations" loc

let check_thread_registers p instrs errors =
  let step (assigned, errors) i =
    let errors =
      List.fold_left
        (fun errors r ->
          if List.mem r assigned then errors
          else Unassigned_register (p, r) :: errors)
        errors (Instr.source_registers i)
    in
    let assigned =
      match Instr.target_register i with
      | Some r -> r :: assigned
      | None -> assigned
    in
    (assigned, errors)
  in
  snd (List.fold_left step ([], errors) instrs)

let validate ?(paper_strict = false) t =
  let errors = [] in
  let errors =
    let seen = Hashtbl.create 8 in
    List.fold_left
      (fun errors (loc, _) ->
        if Hashtbl.mem seen loc then Duplicate_init loc :: errors
        else begin
          Hashtbl.add seen loc ();
          errors
        end)
      errors t.init
  in
  let errors =
    let acc = ref errors in
    Array.iteri
      (fun p instrs -> acc := check_thread_registers p instrs !acc)
      t.threads;
    !acc
  in
  let errors =
    match t.exists with
    | None -> errors
    | Some c ->
        List.fold_left
          (fun errors (p, _) ->
            if p < 0 || p >= num_threads t then Bad_condition_thread p :: errors
            else errors)
          errors (Cond.registers c)
  in
  let errors =
    if not paper_strict then errors
    else begin
      let acc = ref errors in
      Array.iteri
        (fun p instrs ->
          if List.exists (fun i -> i = Instr.Fence) instrs then
            acc := Fence_not_in_paper_model p :: !acc)
        t.threads;
      let sync = sync_locations t in
      let data =
        let add_instr l i =
          match (Instr.is_data i, Instr.location i) with
          | true, Some loc -> loc :: l
          | _, _ -> l
        in
        List.sort_uniq String.compare
          (Array.fold_left (List.fold_left add_instr) [] t.threads)
      in
      List.iter
        (fun loc ->
          if List.mem loc data then
            acc := Mixed_sync_data_location loc :: !acc)
        sync;
      !acc
    end
  in
  match errors with [] -> Ok () | _ -> Error (List.rev errors)

let pp ppf t =
  Fmt.pf ppf "@[<v>%s" t.name;
  if t.init <> [] then
    Fmt.pf ppf "@,{ %a }"
      Fmt.(list ~sep:(any "; ") (fun ppf (l, v) -> pf ppf "%s=%d" l v))
      t.init;
  Array.iteri
    (fun p instrs ->
      Fmt.pf ppf "@,P%d: @[<v>%a@]" p
        Fmt.(list ~sep:cut Instr.pp)
        instrs)
    t.threads;
  (match t.exists with
  | Some c -> Fmt.pf ppf "@,exists %a" Cond.pp c
  | None -> ());
  Fmt.pf ppf "@]"
