(** Final states (outcomes) of litmus-program executions.

    An outcome is the paper's notion of execution "result": the values
    returned by all reads (recorded in per-thread register files) together
    with the final state of memory. *)

module Smap = Exp.Smap

type t = { memory : int Smap.t; regs : int Smap.t array }

val make : memory:int Smap.t -> regs:int Smap.t array -> t
val num_threads : t -> int

val mem : t -> string -> int
(** Final memory value of a location; unwritten locations read 0. *)

val reg : t -> int -> string -> int option
(** [reg t p r] is the final value of register [r] of thread [p], or [None]
    if the register was never assigned or [p] is out of range. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t

val pp_set : Format.formatter -> Set.t -> unit
