(* The instruction set of litmus programs.

   Following the paper (Section 4), every memory operation is either a
   *data* operation or a *synchronization* operation, and a synchronization
   operation accesses exactly one memory location.  Synchronization
   operations come in three flavours distinguished in Section 6: read-only
   (e.g. Test), write-only (e.g. Unset), and read-write (e.g. TestAndSet).
   That classification is what the DRF1 refinement keys on.

   [Fence] is not part of the paper's model; it is provided for the abstract
   hardware machines (a full local ordering barrier) and is rejected by the
   DRF0 checker's well-formedness pass when one asks for paper-strict
   programs. *)

type kind = Data | Sync

type t =
  | Load of { kind : kind; loc : string; reg : string }
      (** [reg := mem[loc]] *)
  | Store of { kind : kind; loc : string; value : Exp.t }
      (** [mem[loc] := value] *)
  | Rmw of { kind : kind; loc : string; reg : string; value : Exp.t }
      (** Atomically [reg := mem[loc]; mem[loc] := value], where [value] may
          mention [reg] (bound to the old contents).  [TestAndSet s r] is
          [Rmw {loc = s; reg = r; value = Const 1}]. *)
  | Await of { kind : kind; loc : string; expect : int; reg : string option }
      (** Spin-read until [mem[loc] = expect], abstracted to its final,
          successful read: the instruction blocks until the location holds
          [expect].  With [kind = Data] this is exactly the "spinning on a
          barrier count with a data read" idiom of Section 6 — a data race
          under DRF0. *)
  | Lock of { loc : string }
      (** Blocking TestAndSet: spin until [mem[loc] = 0], then atomically set
          it to 1.  Always a synchronization read-modify-write. *)
  | Fence  (** Full local ordering barrier; not a memory access. *)

let load ?(kind = Data) loc reg = Load { kind; loc; reg }
let store ?(kind = Data) loc value = Store { kind; loc; value }
let read loc reg = Load { kind = Data; loc; reg }
let write loc v = Store { kind = Data; loc; value = Exp.Const v }
let sync_read loc reg = Load { kind = Sync; loc; reg }
let sync_write loc v = Store { kind = Sync; loc; value = Exp.Const v }
let test_and_set loc reg = Rmw { kind = Sync; loc; reg; value = Exp.Const 1 }
let unset loc = Store { kind = Sync; loc; value = Exp.Const 0 }

let fetch_and_add loc reg n =
  Rmw { kind = Sync; loc; reg; value = Exp.Add (Exp.Reg reg, Exp.Const n) }

let await ?(kind = Sync) ?reg loc expect = Await { kind; loc; expect; reg }
let lock loc = Lock { loc }
let unlock loc = Store { kind = Sync; loc; value = Exp.Const 0 }

let kind = function
  | Load { kind; _ } | Store { kind; _ } | Rmw { kind; _ } | Await { kind; _ }
    ->
      Some kind
  | Lock _ -> Some Sync
  | Fence -> None

let is_sync i = kind i = Some Sync
let is_data i = kind i = Some Data
let is_access i = kind i <> None

let is_read = function
  | Load _ | Rmw _ | Await _ | Lock _ -> true
  | Store _ | Fence -> false

let is_write = function
  | Store _ | Rmw _ | Lock _ -> true
  | Load _ | Await _ | Fence -> false

let is_blocking = function
  | Await _ | Lock _ -> true
  | Load _ | Store _ | Rmw _ | Fence -> false

let location = function
  | Load { loc; _ }
  | Store { loc; _ }
  | Rmw { loc; _ }
  | Await { loc; _ }
  | Lock { loc } ->
      Some loc
  | Fence -> None

let target_register = function
  | Load { reg; _ } | Rmw { reg; _ } -> Some reg
  | Await { reg; _ } -> reg
  | Store _ | Lock _ | Fence -> None

let source_registers = function
  | Store { value; _ } -> Exp.registers value
  | Rmw { reg; value; _ } ->
      (* [reg] is bound to the old value, so it is not a source. *)
      List.filter (fun r -> not (String.equal r reg)) (Exp.registers value)
  | Load _ | Await _ | Lock _ | Fence -> []

let pp_kind ppf = function
  | Data -> Fmt.string ppf "data"
  | Sync -> Fmt.string ppf "sync"

let pp ppf = function
  | Load { kind = Data; loc; reg } -> Fmt.pf ppf "%s := R %s" reg loc
  | Load { kind = Sync; loc; reg } -> Fmt.pf ppf "%s := Rs %s" reg loc
  | Store { kind = Data; loc; value } -> Fmt.pf ppf "W %s %a" loc Exp.pp value
  | Store { kind = Sync; loc; value } -> Fmt.pf ppf "Ws %s %a" loc Exp.pp value
  | Rmw { kind; loc; reg; value } ->
      Fmt.pf ppf "%s := RMW%s %s %a" reg
        (match kind with Sync -> "" | Data -> "d")
        loc Exp.pp value
  | Await { kind; loc; expect; reg } ->
      Fmt.pf ppf "%aAwait%s %s %d"
        Fmt.(option (fmt "%s := "))
        reg
        (match kind with Sync -> "" | Data -> "d")
        loc expect
  | Lock { loc } -> Fmt.pf ppf "Lock %s" loc
  | Fence -> Fmt.string ppf "Fence"

let equal a b =
  match (a, b) with
  | Load x, Load y ->
      x.kind = y.kind && String.equal x.loc y.loc && String.equal x.reg y.reg
  | Store x, Store y ->
      x.kind = y.kind && String.equal x.loc y.loc && Exp.equal x.value y.value
  | Rmw x, Rmw y ->
      x.kind = y.kind && String.equal x.loc y.loc
      && String.equal x.reg y.reg && Exp.equal x.value y.value
  | Await x, Await y ->
      x.kind = y.kind && String.equal x.loc y.loc && x.expect = y.expect
      && Option.equal String.equal x.reg y.reg
  | Lock x, Lock y -> String.equal x.loc y.loc
  | Fence, Fence -> true
  | (Load _ | Store _ | Rmw _ | Await _ | Lock _ | Fence), _ -> false
