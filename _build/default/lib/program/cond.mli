(** Final-state predicates — the "exists" clause of a litmus test. *)

type t =
  | True
  | Reg_eq of int * string * int
      (** [Reg_eq (p, r, v)]: register [r] of thread [p] ended with [v]. *)
  | Mem_eq of string * int
  | Not of t
  | And of t * t
  | Or of t * t

val eval : Final.t -> t -> bool
(** An unassigned register satisfies no [Reg_eq]. *)

val conj : t list -> t
(** Conjunction of a list; [True] for the empty list. *)

val registers : t -> (int * string) list
(** The (thread, register) pairs the condition mentions. *)

val satisfiable_in : Final.Set.t -> t -> bool
(** Does some outcome in the set satisfy the condition? *)

val holds_in_all : Final.Set.t -> t -> bool

val pp : Format.formatter -> t -> unit
