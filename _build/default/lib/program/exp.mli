(** Value expressions for store values and read-modify-write updates. *)

type t =
  | Const of int
  | Reg of string  (** thread-local register *)
  | Add of t * t
  | Sub of t * t

module Smap : Map.S with type key = string

exception Unbound_register of string

val eval : int Smap.t -> t -> int
(** Evaluate under a register environment.
    @raise Unbound_register if a register is not bound. *)

val registers : t -> string list
(** Registers mentioned, with duplicates, in left-to-right order. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
