lib/sim/cpu.ml: Array Engine Proto Sim_config Sim_trace Workload
