lib/sim/sim_trace.mli: Format
