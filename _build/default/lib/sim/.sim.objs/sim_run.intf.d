lib/sim/sim_run.mli: Cpu Format Sim_config Sim_trace Workload
