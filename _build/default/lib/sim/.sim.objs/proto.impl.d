lib/sim/proto.ml: Array Engine Exp Hashtbl Iset List Queue Sim_config
