lib/sim/engine.mli:
