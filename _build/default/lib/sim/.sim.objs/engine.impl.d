lib/sim/engine.ml: Map
