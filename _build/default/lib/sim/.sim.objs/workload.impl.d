lib/sim/workload.ml: List Printf
