lib/sim/workload.mli:
