lib/sim/proto.mli: Engine Sim_config
