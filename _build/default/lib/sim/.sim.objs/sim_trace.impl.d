lib/sim/sim_trace.ml: Array Bytes Fmt Format Hashtbl List String
