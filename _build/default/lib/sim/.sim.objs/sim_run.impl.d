lib/sim/sim_run.ml: Array Cpu Engine Fmt List Option Proto Sim_config Sim_trace String Workload
