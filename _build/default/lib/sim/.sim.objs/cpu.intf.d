lib/sim/cpu.mli: Engine Proto Sim_config Sim_trace Workload
