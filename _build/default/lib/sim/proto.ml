(* The cache-coherence substrate of Sections 5.2–5.3: a directory-based,
   write-back invalidation protocol over a general interconnection network.

   - Every processor has a private cache (unbounded: locations are lines,
     one word per line, no evictions).
   - The directory keeps a full map per line (Uncached / Shared sharers /
     Exclusive owner) and serializes transactions per line.
   - On a write miss to a Shared line, the data is forwarded to the
     requester *in parallel* with the invalidations (the paper's protocol);
     invalidation acks return to the directory, which then sends its ack to
     the writer: the write *commits* when it modifies the local copy and is
     *globally performed* when the directory's ack arrives.
   - Every processor keeps the RP3-style counter of outstanding accesses:
     incremented on a miss; decremented when a read's line arrives, when a
     write's line arrives already exclusive (no other copies), or when the
     directory's ack arrives for a write to a previously-shared line.
   - Reserve bits (Section 5.3): a policy may reserve a line after
     committing a synchronization operation while the counter is positive.
     While a line is reserved its owner defers all foreign requests for it
     until the counter reads zero (the paper keeps reserved lines from
     being flushed; we defer service, which subsumes that).  All reserve
     bits clear when the counter reads zero, and the deferred queue is then
     serviced — the paper's "queue of stalled requests". *)

module Smap = Exp.Smap

type line_state = I | S | M

type line = {
  mutable lstate : line_state;
  mutable lvalue : int;
  mutable reserved : bool;
  mutable gp_waiters : (unit -> unit) list option;
      (** [Some ws] while a write to this line by its current owner is not
          yet globally performed; [None] otherwise.  Readers of the line
          (the owner reading its own dirty copy) are globally performed
          only once the write is — the paper's definition of a read being
          globally performed. *)
}

type dir_state = Uncached | Shared of Iset.t | Exclusive of int

type dentry = {
  mutable dstate : dir_state;
  mutable mem : int;
  mutable busy : bool;
  waiting : (unit -> unit) Queue.t;  (** requests serialized per line *)
  mutable last_delivery : int;
      (** latest scheduled delivery time of any message about this line *)
}

type pstate = {
  lines : (string, line) Hashtbl.t;
  mutable counter : int;
  mutable zero_waiters : (unit -> unit) list;
  inflight : (string, (unit -> unit) Queue.t) Hashtbl.t;
      (** lines with an outstanding transaction; queued thunks retry after
          the line arrives *)
  mutable deferred : (unit -> unit) list;
      (** foreign requests deferred by reserved lines *)
}

type stats = {
  mutable messages : int;
  mutable invalidations : int;
  mutable deferrals : int;  (** requests delayed by a reserve bit *)
}

type t = {
  cfg : Sim_config.t;
  eng : Engine.t;
  procs : pstate array;
  dir : (string, dentry) Hashtbl.t;
  init : int Smap.t;
  stats : stats;
}

let create ?(init = []) cfg eng =
  {
    cfg;
    eng;
    procs =
      Array.init cfg.Sim_config.nprocs (fun _ ->
          {
            lines = Hashtbl.create 16;
            counter = 0;
            zero_waiters = [];
            inflight = Hashtbl.create 4;
            deferred = [];
          });
    dir = Hashtbl.create 16;
    init = List.fold_left (fun m (l, v) -> Smap.add l v m) Smap.empty init;
    stats = { messages = 0; invalidations = 0; deferrals = 0 };
  }

let stats t = t.stats
let counter t p = t.procs.(p).counter

let line_of t p loc =
  let ps = t.procs.(p) in
  match Hashtbl.find_opt ps.lines loc with
  | Some l -> l
  | None ->
      let l = { lstate = I; lvalue = 0; reserved = false; gp_waiters = None } in
      Hashtbl.add ps.lines loc l;
      l

let dentry_of t loc =
  match Hashtbl.find_opt t.dir loc with
  | Some d -> d
  | None ->
      let mem = match Smap.find_opt loc t.init with Some v -> v | None -> 0 in
      let d =
        {
          dstate = Uncached;
          mem;
          busy = false;
          waiting = Queue.create ();
          last_delivery = 0;
        }
      in
      Hashtbl.add t.dir loc d;
      d

(* A network hop.  With [net_jitter] set, each message gets a
   deterministic pseudo-random extra delay: the "general interconnection
   network" of the paper, where messages between unrelated lines may be
   arbitrarily reordered.  Messages concerning one line, however, are
   delivered in send order — the protocol (like real directory protocols
   without transient states) relies on per-line point-to-point ordering;
   without it a stale invalidation can destroy a re-acquired copy. *)
let send t loc f =
  t.stats.messages <- t.stats.messages + 1;
  let jitter =
    let j = t.cfg.Sim_config.net_jitter in
    if j <= 0 then 0 else (t.stats.messages * 2654435761) land 0x3FFFFFFF mod j
  in
  let d = dentry_of t loc in
  let deliver_at =
    max
      (Engine.now t.eng + t.cfg.Sim_config.net + jitter)
      (d.last_delivery + 1)
  in
  d.last_delivery <- deliver_at;
  Engine.schedule t.eng ~delay:(deliver_at - Engine.now t.eng) f

let after_hit t f = Engine.schedule t.eng ~delay:t.cfg.Sim_config.cache_hit f

(* Run [k] once every write to this line is globally performed
   (immediately if none is pending). *)
let when_line_gp t l k =
  match l.gp_waiters with
  | None -> Engine.schedule t.eng ~delay:0 k
  | Some ws -> l.gp_waiters <- Some (k :: ws)

let resolve_line_gp t l =
  match l.gp_waiters with
  | None -> ()
  | Some ws ->
      l.gp_waiters <- None;
      List.iter (fun k -> Engine.schedule t.eng ~delay:0 k) (List.rev ws)

(* --- counter maintenance -------------------------------------------------- *)

let incr_counter t p = t.procs.(p).counter <- t.procs.(p).counter + 1

let decr_counter t p =
  let ps = t.procs.(p) in
  assert (ps.counter > 0);
  ps.counter <- ps.counter - 1;
  if ps.counter = 0 then begin
    (* All reserve bits are reset when the counter reads zero... *)
    Hashtbl.iter (fun _ l -> l.reserved <- false) ps.lines;
    (* ...pending processor stalls resume... *)
    let ws = ps.zero_waiters in
    ps.zero_waiters <- [];
    List.iter (fun k -> Engine.schedule t.eng ~delay:0 k) ws;
    (* ...and the queue of stalled foreign requests is serviced. *)
    let ds = List.rev ps.deferred in
    ps.deferred <- [];
    List.iter (fun k -> Engine.schedule t.eng ~delay:0 k) ds
  end

let when_counter_zero t p k =
  let ps = t.procs.(p) in
  if ps.counter = 0 then Engine.schedule t.eng ~delay:0 k
  else ps.zero_waiters <- k :: ps.zero_waiters

let reserve_if_outstanding t ~proc ~loc =
  let ps = t.procs.(proc) in
  if ps.counter > 0 then begin
    let l = line_of t proc loc in
    l.reserved <- true
  end

(* Defer a foreign request at [owner] until its counter reads zero. *)
let defer t owner k =
  t.stats.deferrals <- t.stats.deferrals + 1;
  let ps = t.procs.(owner) in
  if ps.counter = 0 then Engine.schedule t.eng ~delay:0 k
  else ps.deferred <- k :: ps.deferred

(* --- directory -------------------------------------------------------------- *)

let dir_next t loc =
  let d = dentry_of t loc in
  match Queue.take_opt d.waiting with
  | None -> d.busy <- false
  | Some req ->
      d.busy <- true;
      Engine.schedule t.eng ~delay:t.cfg.Sim_config.dir_occupancy req

let dir_submit t loc req =
  let d = dentry_of t loc in
  Queue.add req d.waiting;
  if not d.busy then dir_next t loc

(* Service a GetS (read miss).  [deliver v] runs at the requester when the
   line arrives. *)
let rec dir_gets t ~proc ~loc ~deliver =
  let d = dentry_of t loc in
  match d.dstate with
  | Uncached | Shared _ ->
      let sharers =
        match d.dstate with Shared s -> s | Uncached | Exclusive _ -> Iset.empty
      in
      d.dstate <- Shared (Iset.add proc sharers);
      let v = d.mem in
      send t loc (fun () -> deliver v);
      dir_next t loc
  | Exclusive owner ->
      (* Forward to the owner; the owner downgrades, sends the line to the
         requester directly, and copies back to the directory. *)
      send t loc (fun () ->
          owner_service t ~owner ~loc (fun () ->
              let l = line_of t owner loc in
              l.lstate <- S;
              let v = l.lvalue in
              send t loc (fun () -> deliver v);
              send t loc (fun () ->
                  d.mem <- v;
                  d.dstate <- Shared (Iset.of_list [ owner; proc ]);
                  dir_next t loc)))

(* Service a GetX (write miss / upgrade).  [deliver v ~gp] runs at the
   requester with the line value; [gp] is true when the write is globally
   performed on arrival.  [on_gp] runs when the directory's ack arrives
   (only when [gp] was false). *)
and dir_getx t ~proc ~loc ~deliver ~on_gp =
  let d = dentry_of t loc in
  match d.dstate with
  | Uncached ->
      d.dstate <- Exclusive proc;
      let v = d.mem in
      send t loc (fun () -> deliver v ~gp:true);
      dir_next t loc
  | Shared sharers ->
      let others = Iset.remove proc sharers in
      d.dstate <- Exclusive proc;
      let v = d.mem in
      if Iset.is_empty others then begin
        send t loc (fun () -> deliver v ~gp:true);
        dir_next t loc
      end
      else begin
        (* Forward the line in parallel with the invalidations. *)
        send t loc (fun () -> deliver v ~gp:false);
        let acks = ref (Iset.cardinal others) in
        Iset.iter
          (fun sh ->
            send t loc (fun () ->
                t.stats.invalidations <- t.stats.invalidations + 1;
                let l = line_of t sh loc in
                l.lstate <- I;
                (* ack back to the directory *)
                send t loc (fun () ->
                    decr acks;
                    if !acks = 0 then begin
                      send t loc (fun () -> on_gp ());
                      dir_next t loc
                    end)))
          others
      end
  | Exclusive owner when owner = proc ->
      (* Stale request: the requester already owns the line (can happen if
         it re-requested during in-flight state changes; not expected with
         per-line inflight tracking, but handled for robustness). *)
      let v = d.mem in
      send t loc (fun () -> deliver v ~gp:true);
      dir_next t loc
  | Exclusive owner ->
      send t loc (fun () ->
          owner_service t ~owner ~loc (fun () ->
              t.stats.invalidations <- t.stats.invalidations + 1;
              let l = line_of t owner loc in
              l.lstate <- I;
              let v = l.lvalue in
              send t loc (fun () -> deliver v ~gp:false);
              (* Owner acks the directory, which acks the writer. *)
              send t loc (fun () ->
                  d.mem <- v;
                  d.dstate <- Exclusive proc;
                  send t loc (fun () -> on_gp ());
                  dir_next t loc)))

(* Run [k] at [owner] now, or defer it if the line is reserved (Section
   5.3: a reserved line is never given up before the counter reads zero). *)
and owner_service t ~owner ~loc k =
  let l = line_of t owner loc in
  if l.reserved then defer t owner k else k ()

(* --- processor-facing API --------------------------------------------------- *)

(* Serialize accesses of one processor to one in-flight line. *)
let with_line_free t p loc k =
  let ps = t.procs.(p) in
  match Hashtbl.find_opt ps.inflight loc with
  | Some q -> Queue.add k q
  | None -> k ()

let mark_inflight t p loc =
  let ps = t.procs.(p) in
  Hashtbl.replace ps.inflight loc (Queue.create ())

let release_inflight t p loc =
  let ps = t.procs.(p) in
  match Hashtbl.find_opt ps.inflight loc with
  | None -> ()
  | Some q ->
      Hashtbl.remove ps.inflight loc;
      Queue.iter (fun k -> Engine.schedule t.eng ~delay:0 k) q

let read ?(on_gp = fun () -> ()) t ~proc ~loc ~k =
  with_line_free t proc loc (fun () ->
      let l = line_of t proc loc in
      match l.lstate with
      | S | M ->
          after_hit t (fun () ->
              k l.lvalue;
              (* Reading one's own dirty, not-yet-performed write: the read
                 is globally performed only when the write is. *)
              when_line_gp t l on_gp)
      | I ->
          mark_inflight t proc loc;
          incr_counter t proc;
          send t loc (fun () ->
              dir_submit t loc (fun () ->
                  dir_gets t ~proc ~loc ~deliver:(fun v ->
                      l.lstate <- S;
                      l.lvalue <- v;
                      decr_counter t proc;
                      release_inflight t proc loc;
                      k v;
                      (* A line served by the directory or a previous owner
                         only carries globally performed writes (directory
                         transactions are serialized per line). *)
                      on_gp ()))))

let modify ?(on_gp = fun () -> ()) t ~proc ~loc ~f ~on_commit =
  with_line_free t proc loc (fun () ->
      let l = line_of t proc loc in
      match l.lstate with
      | M ->
          let old = l.lvalue in
          l.lvalue <- f old;
          after_hit t (fun () ->
              on_commit old;
              (* No other cache holds the line, but stale copies may still
                 await invalidation from the transaction that procured it:
                 this write is globally performed when that one is. *)
              when_line_gp t l on_gp)
      | S | I ->
          mark_inflight t proc loc;
          incr_counter t proc;
          send t loc (fun () ->
              dir_submit t loc (fun () ->
                  dir_getx t ~proc ~loc
                    ~deliver:(fun v ~gp ->
                      l.lstate <- M;
                      let old = v in
                      l.lvalue <- f old;
                      release_inflight t proc loc;
                      on_commit old;
                      if gp then begin
                        decr_counter t proc;
                        on_gp ()
                      end
                      else l.gp_waiters <- Some [])
                    ~on_gp:(fun () ->
                      decr_counter t proc;
                      on_gp ();
                      resolve_line_gp t l))))

let line_state t p loc =
  match Hashtbl.find_opt t.procs.(p).lines loc with
  | None -> I
  | Some l -> l.lstate

let line_reserved t p loc =
  match Hashtbl.find_opt t.procs.(p).lines loc with
  | None -> false
  | Some l -> l.reserved

let memory_value t loc = (dentry_of t loc).mem

(* The coherent value of a location at quiescence: the owner's copy if the
   line is exclusive somewhere, the directory's otherwise. *)
let settled_value t loc =
  let d = dentry_of t loc in
  match d.dstate with
  | Exclusive owner -> (line_of t owner loc).lvalue
  | Uncached | Shared _ -> d.mem
