(* Execution traces of the timing simulator, and a mechanical check of the
   Section 5.1 sufficient conditions over them.

   Every memory operation a processor performs is recorded with its
   generation time (when the processor produced it), commit time, and
   globally-performed time.  The checker then validates, on the actual run:

   - condition 2: writes to the same location are totally ordered by their
     commit times;
   - condition 3: synchronization operations to the same location commit in
     a total order and are globally performed in that same order;
   - condition 4: no access is generated before all program-earlier
     synchronization operations of its processor have committed;
   - condition 5: once a synchronization operation S by Pi has committed,
     no other processor's synchronization operation on the same location
     commits until all Pi reads before S have committed and all Pi writes
     before S are globally performed.

   Condition 1 (intra-processor dependencies) is structural in the
   processor model — operations execute in program order per thread — and
   has no per-event content to check. *)

type ev = {
  ep : int;  (** processor *)
  eidx : int;  (** per-processor operation sequence number *)
  sync : bool;
  reads : bool;
  writes : bool;
  eloc : string;
  egen : int;  (** generation time *)
  mutable ecommit : int;  (** -1 until committed *)
  mutable egp : int;  (** -1 until globally performed *)
}

let make ~ep ~eidx ~sync ~reads ~writes ~eloc ~egen =
  { ep; eidx; sync; reads; writes; eloc; egen; ecommit = -1; egp = -1 }

let pp_ev ppf e =
  Fmt.pf ppf "P%d#%d %s%s%s %s gen=%d commit=%d gp=%d" e.ep e.eidx
    (if e.sync then "S" else "")
    (if e.reads then "R" else "")
    (if e.writes then "W" else "")
    e.eloc e.egen e.ecommit e.egp

type violation = { condition : int; message : string }

let pp_violation ppf v =
  Fmt.pf ppf "condition %d: %s" v.condition v.message

let violation condition fmt =
  Format.kasprintf (fun message -> { condition; message }) fmt

let by_loc evs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let cur = try Hashtbl.find tbl e.eloc with Not_found -> [] in
      Hashtbl.replace tbl e.eloc (e :: cur))
    evs;
  Hashtbl.fold (fun loc es acc -> (loc, List.rev es) :: acc) tbl []

let completed evs = List.filter (fun e -> e.ecommit >= 0) evs

let check_condition2 evs =
  let writes = List.filter (fun e -> e.writes) (completed evs) in
  List.concat_map
    (fun (loc, es) ->
      (* Same-processor ties are ordered by program order (retries released
         from one in-flight transaction execute back-to-back); only ties
         between different processors would leave the order undefined. *)
      let sorted = List.sort (fun a b -> compare a.ecommit b.ecommit) es in
      let rec dups = function
        | a :: (b :: _ as rest) ->
            if a.ecommit = b.ecommit && a.ep <> b.ep then
              violation 2 "writes to %s commit simultaneously (%a / %a)" loc
                pp_ev a pp_ev b
              :: dups rest
            else dups rest
        | [] | [ _ ] -> []
      in
      dups sorted)
    (by_loc writes)

let check_condition3 evs =
  (* Ties in commit time leave the total order free to break them either
     way (e.g. a spin read hitting a stale copy in the same cycle a foreign
     sync write commits), so only strict commit inequalities constrain the
     global-performance order. *)
  let syncs = List.filter (fun e -> e.sync) (completed evs) in
  List.concat_map
    (fun (loc, es) ->
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b ->
              if
                a.ecommit < b.ecommit
                && a.egp >= 0
                && b.egp >= 0
                && a.egp > b.egp
              then
                Some
                  (violation 3
                     "syncs on %s globally perform out of commit order (%a / %a)"
                     loc pp_ev a pp_ev b)
              else None)
            es)
        es)
    (by_loc syncs)

let check_condition4 evs =
  let evs = completed evs in
  List.concat_map
    (fun e ->
      List.filter_map
        (fun s ->
          if
            s.ep = e.ep && s.sync
            && s.eidx < e.eidx
            && s.ecommit >= 0
            && e.egen < s.ecommit
          then
            Some
              (violation 4 "%a generated before earlier sync committed (%a)"
                 pp_ev e pp_ev s)
          else None)
        evs)
    evs

let check_condition5 evs =
  let evs = completed evs in
  let syncs = List.filter (fun e -> e.sync) evs in
  let check_pair s s' =
    (* s by Pi commits before s' (another processor, same location): the
       reads of Pi before s must have committed, and its writes before s
       must be globally performed, by s'.commit. *)
    List.filter_map
      (fun o ->
        if o.ep <> s.ep || o.eidx >= s.eidx then None
        else if o.reads && o.ecommit > s'.ecommit then
          Some
            (violation 5 "%a not committed before foreign sync %a" pp_ev o
               pp_ev s')
        else if o.writes && (o.egp < 0 || o.egp > s'.ecommit) then
          Some
            (violation 5 "%a not globally performed before foreign sync %a"
               pp_ev o pp_ev s')
        else None)
      evs
  in
  List.concat_map
    (fun s ->
      List.concat_map
        (fun s' ->
          if
            s'.ep <> s.ep
            && String.equal s'.eloc s.eloc
            && s.ecommit < s'.ecommit
          then check_pair s s'
          else [])
        syncs)
    syncs

let check_all evs =
  check_condition2 evs @ check_condition3 evs @ check_condition4 evs
  @ check_condition5 evs

(* --- timeline rendering ------------------------------------------------------ *)

(* A compact per-processor text timeline: each operation paints the span
   from its generation to its commit ('.' = idle, '-' = an operation in
   flight), with a letter at the commit column: r/w for data reads/writes,
   S for synchronization operations, and '!' overprinting the point where
   a sync's global performance lags its commit. *)
let pp_timeline ?(width = 72) ppf evs =
  let evs = completed evs in
  match evs with
  | [] -> Fmt.pf ppf "(empty trace)@."
  | _ ->
      let tmax =
        List.fold_left (fun m e -> max m (max e.ecommit e.egp)) 1 evs
      in
      let nprocs = 1 + List.fold_left (fun m e -> max m e.ep) 0 evs in
      let col t = min (width - 1) (t * width / (tmax + 1)) in
      let rows = Array.init nprocs (fun _ -> Bytes.make width '.') in
      List.iter
        (fun e ->
          let row = rows.(e.ep) in
          let c0 = col e.egen and c1 = col e.ecommit in
          for c = c0 to c1 - 1 do
            if Bytes.get row c = '.' then Bytes.set row c '-'
          done;
          let letter =
            if e.sync then 'S' else if e.writes then 'w' else 'r'
          in
          Bytes.set row c1 letter;
          if e.sync && e.egp > e.ecommit then begin
            let cg = col e.egp in
            if Bytes.get rows.(e.ep) cg = '.' then Bytes.set row cg '!'
          end)
        evs;
      Array.iteri
        (fun p row -> Fmt.pf ppf "P%d |%s|@." p (Bytes.to_string row))
        rows;
      Fmt.pf ppf "    0%*d cycles@." (width - 1) tmax
