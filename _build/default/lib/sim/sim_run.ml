(* Top-level simulator runs: wire a workload to the protocol under a
   policy, drain the event queue, and report statistics, observations and
   final memory values. *)

type result = {
  policy : Cpu.policy;
  workload : string;
  total_cycles : int;  (** completion of the last thread *)
  proc_stats : Cpu.proc_stats array;
  observations : Cpu.obs list;  (** in observation order *)
  finals : (string * int) list;  (** settled value of every location touched *)
  messages : int;
  invalidations : int;
  deferrals : int;
  events : int;
  trace : Sim_trace.ev list;  (** per-operation trace, in generation order *)
}

let locations_of workload =
  let add acc = function
    | Workload.Read { loc; _ }
    | Workload.Write { loc; _ }
    | Workload.Sync_read { loc; _ }
    | Workload.Sync_write { loc; _ }
    | Workload.Tas { loc; _ }
    | Workload.Fadd { loc; _ }
    | Workload.Spin_until { loc; _ }
    | Workload.Lock { loc }
    | Workload.Unlock { loc } ->
        loc :: acc
    | Workload.Work _ -> acc
  in
  let from_threads =
    List.concat_map (List.fold_left add []) workload.Workload.threads
  in
  List.sort_uniq String.compare
    (List.map fst workload.Workload.init @ from_threads)

let run ?cfg ?(limit = 10_000_000) policy workload =
  let nprocs = Workload.num_threads workload in
  let cfg =
    match cfg with
    | Some c -> { c with Sim_config.nprocs }
    | None -> Sim_config.make ~nprocs ()
  in
  let eng = Engine.create () in
  let proto = Proto.create ~init:workload.Workload.init cfg eng in
  let ctx =
    {
      Cpu.cfg;
      eng;
      proto;
      policy;
      stats = Array.init nprocs (fun _ -> Cpu.fresh_stats ());
      observations = [];
      trace = [];
      op_seq = Array.make nprocs 0;
    }
  in
  List.iteri
    (fun p ops ->
      Engine.schedule eng ~delay:0 (fun () ->
          Cpu.exec_thread ctx p ops (fun () ->
              ctx.Cpu.stats.(p).Cpu.finish <- Engine.now eng;
              Proto.when_counter_zero proto p (fun () ->
                  ctx.Cpu.stats.(p).Cpu.drained <- Engine.now eng))))
    workload.Workload.threads;
  Engine.run ~limit eng;
  let total_cycles =
    Array.fold_left (fun m s -> max m s.Cpu.finish) 0 ctx.Cpu.stats
  in
  let stats = Proto.stats proto in
  {
    policy;
    workload = workload.Workload.name;
    total_cycles;
    proc_stats = ctx.Cpu.stats;
    observations = List.rev ctx.Cpu.observations;
    finals =
      List.map (fun loc -> (loc, Proto.settled_value proto loc)) (locations_of workload);
    messages = stats.Proto.messages;
    invalidations = stats.Proto.invalidations;
    deferrals = stats.Proto.deferrals;
    events = Engine.executed eng;
    trace = List.rev ctx.Cpu.trace;
  }

let observation result tag =
  List.find_opt (fun o -> String.equal o.Cpu.o_tag tag) result.observations
  |> Option.map (fun o -> o.Cpu.o_value)

let final result loc = List.assoc_opt loc result.finals

let pp_proc_stats ppf (p, s) =
  Fmt.pf ppf
    "P%d: finish=%d drained=%d pre-sync=%d sync-gp=%d acquire=%d read=%d \
     spins=%d retries=%d"
    p s.Cpu.finish s.Cpu.drained s.Cpu.stall_pre_sync s.Cpu.stall_sync_gp
    s.Cpu.stall_acquire s.Cpu.stall_read s.Cpu.spin_iters s.Cpu.lock_retries

let pp ppf r =
  Fmt.pf ppf "@[<v>%s under %s: %d cycles, %d msgs, %d invals, %d deferrals@,%a@]"
    r.workload (Cpu.policy_name r.policy) r.total_cycles r.messages
    r.invalidations r.deferrals
    Fmt.(list ~sep:cut pp_proc_stats)
    (Array.to_list (Array.mapi (fun i s -> (i, s)) r.proc_stats))
