(** Per-operation traces of simulator runs and a mechanical check of the
    Section 5.1 sufficient conditions on them. *)

type ev = {
  ep : int;
  eidx : int;
  sync : bool;
  reads : bool;
  writes : bool;
  eloc : string;
  egen : int;
  mutable ecommit : int;
  mutable egp : int;
}

val make :
  ep:int ->
  eidx:int ->
  sync:bool ->
  reads:bool ->
  writes:bool ->
  eloc:string ->
  egen:int ->
  ev

val pp_ev : Format.formatter -> ev -> unit

type violation = { condition : int; message : string }

val pp_violation : Format.formatter -> violation -> unit

val check_condition2 : ev list -> violation list
val check_condition3 : ev list -> violation list
val check_condition4 : ev list -> violation list
val check_condition5 : ev list -> violation list

val check_all : ev list -> violation list
(** All four checkable conditions (condition 1 is structural). *)

val pp_timeline : ?width:int -> Format.formatter -> ev list -> unit
(** Compact per-processor text timeline of a run: '-' spans an operation
    from generation to commit; r/w/S mark commits; '!' marks a sync whose
    global performance lags its commit. *)
