(** Deterministic discrete-event simulation engine. *)

type t

val create : unit -> t
val now : t -> int

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** Run the thunk [delay] cycles from now; ties run in insertion order.
    @raise Invalid_argument on negative delay. *)

val executed : t -> int
(** Number of events executed so far. *)

exception Out_of_time

val run : ?limit:int -> t -> unit
(** Drain the queue.
    @raise Out_of_time if simulated time exceeds [limit] (default 10^7) —
    the safety net against livelock. *)
