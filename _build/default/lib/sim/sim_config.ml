(* Simulator parameters.  Latencies are in processor cycles.  Locations act
   as whole cache lines (one word per line: no false sharing), and caches
   are unbounded (no evictions — the paper expects reserve-bit flushes to
   be "fairly rare"; we make them impossible and say so in DESIGN.md). *)

type t = {
  nprocs : int;
  cache_hit : int;  (** latency of a local cache hit *)
  net : int;  (** one-way network hop latency (processor <-> directory) *)
  net_jitter : int;
      (** per-message deterministic latency variation in [0, net_jitter):
          a general interconnection network delivers messages with varying
          delays, so messages between the same endpoints may be reordered *)
  dir_occupancy : int;  (** directory processing time per message *)
  spin_interval : int;  (** cycles between spin-loop iterations *)
}

let default =
  {
    nprocs = 2;
    cache_hit = 1;
    net = 20;
    net_jitter = 0;
    dir_occupancy = 4;
    spin_interval = 2;
  }

let make ?(nprocs = 2) ?(cache_hit = 1) ?(net = 20) ?(net_jitter = 0)
    ?(dir_occupancy = 4) ?(spin_interval = 2) () =
  { nprocs; cache_hit; net; net_jitter; dir_occupancy; spin_interval }

let pp ppf c =
  Fmt.pf ppf "nprocs=%d net=%d dir=%d hit=%d" c.nprocs c.net c.dir_occupancy
    c.cache_hit
