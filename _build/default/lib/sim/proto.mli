(** The directory-based write-back invalidation protocol of Sections
    5.2–5.3, with RP3-style outstanding-access counters and reserve bits.

    Timing, not semantics: nondeterminism is resolved deterministically by
    the engine, so one run explores one schedule.  The abstract machines in
    [lib/machine] cover the full behaviour space; this simulator measures
    stalls, messages and cycles. *)

type t

type line_state = I | S | M

type stats = {
  mutable messages : int;
  mutable invalidations : int;
  mutable deferrals : int;
}

val create : ?init:(string * int) list -> Sim_config.t -> Engine.t -> t
val stats : t -> stats

val counter : t -> int -> int
(** Outstanding accesses of a processor (the Section 5.3 counter). *)

val when_counter_zero : t -> int -> (unit -> unit) -> unit
(** Run the thunk when the processor's counter reads zero (immediately if
    it already does). *)

val reserve_if_outstanding : t -> proc:int -> loc:string -> unit
(** Set the reserve bit on the processor's copy of [loc] if its counter is
    positive (call after committing a synchronization operation). *)

val read :
  ?on_gp:(unit -> unit) -> t -> proc:int -> loc:string -> k:(int -> unit) -> unit
(** Blocking read: [k v] runs when the value is bound (cache hit, or line
    arrival on a miss) — the read's commit.  [on_gp] runs when the read is
    globally performed: its value is bound and the write that produced the
    value is globally performed (later than [k] only when a processor reads
    its own not-yet-performed write). *)

val modify :
  ?on_gp:(unit -> unit) ->
  t ->
  proc:int ->
  loc:string ->
  f:(int -> int) ->
  on_commit:(int -> unit) ->
  unit
(** Acquire the line exclusive and apply [f] to it; [on_commit old] runs at
    the commit point (local modification) and [on_gp] when the write is
    globally performed (at commit for an exclusive hit; at the directory's
    ack otherwise).  Writes are [modify ~f:(fun _ -> v)]; atomic RMWs pass
    a genuine function. *)

val line_state : t -> int -> string -> line_state
val line_reserved : t -> int -> string -> bool
val memory_value : t -> string -> int

val settled_value : t -> string -> int
(** The coherent value of a location once the system is quiescent. *)
