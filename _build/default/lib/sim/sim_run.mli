(** Running workloads on the timing simulator. *)

type result = {
  policy : Cpu.policy;
  workload : string;
  total_cycles : int;
  proc_stats : Cpu.proc_stats array;
  observations : Cpu.obs list;
  finals : (string * int) list;
  messages : int;
  invalidations : int;
  deferrals : int;
  events : int;
  trace : Sim_trace.ev list;
}

val run : ?cfg:Sim_config.t -> ?limit:int -> Cpu.policy -> Workload.t -> result
(** Deterministic: same inputs, same result.  [cfg.nprocs] is overridden by
    the workload's thread count.
    @raise Engine.Out_of_time if simulated time exceeds [limit]. *)

val observation : result -> string -> int option
(** Value recorded under a tag, if the tagged read executed. *)

val final : result -> string -> int option
(** Settled value of a location. *)

val pp : Format.formatter -> result -> unit
val pp_proc_stats : Format.formatter -> int * Cpu.proc_stats -> unit
