lib/machine/machine_sig.ml: Final Prog
