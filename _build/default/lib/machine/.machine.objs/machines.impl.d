lib/machine/machines.ml: Cond Explore Final List M_def1 M_def2 M_ooo M_rc M_rp3 M_wbuf Option Prog Sc String
