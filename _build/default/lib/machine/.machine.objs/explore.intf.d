lib/machine/explore.mli: Cond Final Machine_sig Prog
