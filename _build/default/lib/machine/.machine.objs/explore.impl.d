lib/machine/explore.ml: Cond Final Hashtbl List Machine_sig Option Prog Sc
