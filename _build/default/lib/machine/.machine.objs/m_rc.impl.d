lib/machine/m_rc.ml: Array Exp Final Fun Instr List Marshal Prog String
