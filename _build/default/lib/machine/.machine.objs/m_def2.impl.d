lib/machine/m_def2.ml: Array Exp Final Fun Instr List Marshal Prog String
