lib/machine/machines.mli: Cond Final Prog
