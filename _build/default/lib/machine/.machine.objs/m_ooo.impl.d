lib/machine/m_ooo.ml: Array Exp Final Fun Instr List Marshal Prog String
