lib/machine/m_rp3.ml: Array Exp Final Fun Instr List Marshal Prog String
