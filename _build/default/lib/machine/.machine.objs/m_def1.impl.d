lib/machine/m_def1.ml: Array Exp Final Fun Instr List Marshal Prog String
