lib/machine/m_wbuf.ml: Array Exp Final Fun Instr List Marshal Prog String
