(** Memoized exhaustive exploration of abstract machines. *)

module Make (M : Machine_sig.MACHINE) : sig
  val outcomes : Prog.t -> Final.Set.t
  val allows : Prog.t -> Cond.t -> bool
  val allows_exists : Prog.t -> bool option

  val appears_sc : Prog.t -> bool
  (** Every machine outcome is an SC outcome (Definition 2's "appears
      sequentially consistent" for one program). *)
end
