(* The interface of an abstract hardware machine: a nondeterministic labeled
   transition system whose complete runs define the outcomes the hardware
   allows for a program.  [Explore] turns any machine into an exhaustive
   outcome-set computation. *)

module type MACHINE = sig
  type state

  val name : string

  val initial : Prog.t -> state

  val successors : Prog.t -> state -> state list
  (** All states reachable in one step.  The empty list on a non-final state
      means the machine is stuck (e.g. all threads blocked on awaits);
      such runs produce no outcome. *)

  val final : Prog.t -> state -> Final.t option
  (** [Some f] iff the state is a complete run (all threads finished, all
      buffered effects drained). *)

  val key : state -> string
  (** A canonical encoding for memoization: equal keys must mean the same
      set of future behaviours. *)
end
