(* Exhaustive exploration of an abstract machine: memoized DFS computing the
   complete set of outcomes a machine allows for a program. *)

module Make (M : Machine_sig.MACHINE) = struct
  let outcomes prog =
    let memo : (string, Final.Set.t) Hashtbl.t = Hashtbl.create 4096 in
    let rec explore state =
      let k = M.key state in
      match Hashtbl.find_opt memo k with
      | Some res -> res
      | None ->
          (* Mark before recursing: machine graphs are acyclic by
             construction (every transition makes progress), but guard
             against accidental cycles by treating revisits as empty. *)
          Hashtbl.add memo k Final.Set.empty;
          let res =
            match M.final prog state with
            | Some f -> Final.Set.singleton f
            | None ->
                List.fold_left
                  (fun acc s -> Final.Set.union (explore s) acc)
                  Final.Set.empty (M.successors prog state)
          in
          Hashtbl.replace memo k res;
          res
    in
    explore (M.initial prog)

  let allows prog cond = Cond.satisfiable_in (outcomes prog) cond

  let allows_exists prog =
    Option.map (allows prog) (Prog.exists prog)

  (* A machine [appears sequentially consistent] to a program when every
     outcome it allows is also an SC outcome (Definition 2's "appears"). *)
  let appears_sc prog = Final.Set.subset (outcomes prog) (Sc.outcomes prog)
end
