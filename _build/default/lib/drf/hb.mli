(** Happens-before relations (paper, Section 4): [hb = (po ∪ so)+]. *)

val so_of_trace : Evts.t -> int list -> Rel.t
(** Synchronization order induced by an execution trace (a total completion
    order of event ids): same-location synchronization operations, ordered
    as they complete. *)

val hb : Evts.t -> so:Rel.t -> Rel.t
(** [(po ∪ so)+]. *)

val so_release_acquire : Evts.t -> Rel.t -> Rel.t
(** Keep only so edges from an operation with a write component to one with
    a read component — the Section 6 refinement by which read-only
    synchronization operations stop acting as releases. *)

val hb1 : Evts.t -> so:Rel.t -> Rel.t
(** [(po ∪ so_release_acquire so)+] — happens-before for DRF1. *)

val ordered : Rel.t -> int -> int -> bool
(** Related one way or the other. *)

val unordered_conflicts : Evts.t -> Rel.t -> (int * int) list
(** Conflicting pairs not ordered by the given relation. *)
