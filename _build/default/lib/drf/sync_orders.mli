(** Feasible per-location synchronization completion orders.

    The happens-before relation of an idealized execution depends only on
    the order in which same-location synchronization operations complete;
    this module enumerates exactly the orders realizable by complete SC
    executions (a memoized semantic search, so blocking [Await]/[Lock]
    instructions correctly prune unrealizable orders). *)

type t = (string * int list) list
(** For each synchronization location (sorted by name), sync event ids in
    completion order. *)

val feasible : Prog.t -> t list
(** All realizable synchronization orders (each appears once). *)

val to_so : Evts.t -> t -> Rel.t
(** The synchronization-order relation induced by one order choice. *)

val count : Prog.t -> int
val pp : Format.formatter -> t -> unit
