(** The Data-Race-Free-0 synchronization model (Definition 3) and the DRF1
    refinement of Section 6.

    A program obeys DRF0 iff, for every execution on the idealized
    architecture, all conflicting accesses are ordered by that execution's
    happens-before relation [hb = (po ∪ so)+].  DRF1 weakens so to
    release→acquire edges, so read-only synchronization operations (e.g. the
    Test of Test-and-TestAndSet) stop ordering the issuing processor's
    previous accesses. *)

type model = DRF0 | DRF1

val pp_model : Format.formatter -> model -> unit
val hb_of_model : model -> Evts.t -> so:Rel.t -> Rel.t

type race = {
  e1 : Event.t;
  e2 : Event.t;
  sync_order : Sync_orders.t;
      (** synchronization order of a witnessing execution *)
}

val pp_race : Format.formatter -> race -> unit

val races : ?model:model -> Prog.t -> race list
(** All witnesses over all feasible synchronization orders (a conflicting
    pair may be reported once per witnessing order). *)

val check : ?model:model -> Prog.t -> (unit, race list) result
val obeys : ?model:model -> Prog.t -> bool

val races_of_trace :
  ?model:model -> Evts.t -> int list -> (Event.t * Event.t) list
(** Dynamic race detection on one execution trace (Figure 2 checks one
    depicted execution this way). *)

val trace_obeys : ?model:model -> Evts.t -> int list -> bool

val obeys_naive : ?model:model -> Prog.t -> bool
(** Literal Definition 3 over every SC interleaving; exponential.  For
    cross-checking {!obeys} on small programs. *)
