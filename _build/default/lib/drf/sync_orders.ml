(* Feasible synchronization orders of a program.

   DRF0 (Definition 3) quantifies over all executions on the idealized
   architecture, but the happens-before relation of an execution depends
   only on the per-location completion order of its synchronization
   operations.  This module computes exactly the set of such orders that
   are realizable by some complete SC execution, by a memoized depth-first
   search of the idealized semantics.

   The search must be semantic, not purely combinatorial: blocking
   operations ([Await], [Lock]) make some combinatorially-plausible sync
   orders unrealizable (e.g. an await completing before the write it waits
   for), and those orders must not be counted. *)

type t = (string * int list) list
(** For each synchronization location (sorted), the sync event ids in
    completion order. *)

module Tuple_set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let empty_tuple sync_locs = List.map (fun l -> (l, [])) sync_locs

let prepend loc e tuple =
  List.map (fun (l, es) -> if String.equal l loc then (l, e :: es) else (l, es)) tuple

let feasible prog =
  let evts = Evts.of_prog prog in
  let sync_locs = Prog.sync_locations prog in
  let terminal = Tuple_set.singleton (empty_tuple sync_locs) in
  let ids =
    Array.init (Prog.num_threads prog) (fun p ->
        Array.of_list (Evts.by_proc evts p))
  in
  let memo : (Sem.key, Tuple_set.t) Hashtbl.t = Hashtbl.create 512 in
  let rec explore state =
    let key = Sem.key_of_state state in
    match Hashtbl.find_opt memo key with
    | Some res -> res
    | None ->
        let res =
          if Sem.all_done prog state then terminal
          else begin
            let acc = ref Tuple_set.empty in
            for p = 0 to Prog.num_threads prog - 1 do
              match Sem.step prog state p with
              | None -> ()
              | Some state' ->
                  let eid = ids.(p).(state.Sem.threads.(p).Sem.next) in
                  let e = Evts.event evts eid in
                  let futures = explore state' in
                  let futures =
                    match (Event.is_sync e, e.Event.loc) with
                    | true, Some loc ->
                        Tuple_set.map (prepend loc eid) futures
                    | _, _ -> futures
                  in
                  acc := Tuple_set.union futures !acc
            done;
            !acc
          end
        in
        Hashtbl.add memo key res;
        res
  in
  Tuple_set.elements (explore (Sem.initial prog))

let to_so evts tuple =
  let n = Evts.size evts in
  let pairs = ref [] in
  List.iter
    (fun (_, es) ->
      let rec walk = function
        | [] -> ()
        | a :: rest ->
            List.iter (fun b -> pairs := (a, b) :: !pairs) rest;
            walk rest
      in
      walk es)
    tuple;
  Rel.of_list n !pairs

let count prog = List.length (feasible prog)

let pp ppf tuple =
  let pp_loc ppf (l, es) =
    Fmt.pf ppf "%s:[%a]" l Fmt.(list ~sep:(any ",") int) es
  in
  Fmt.pf ppf "@[<h>%a@]" Fmt.(list ~sep:(any "; ") pp_loc) tuple
