(* Happens-before relations (paper, Section 4).

   For an execution on the idealized architecture:
     - program order (po):  op1 po op2 iff op1 precedes op2 in some thread;
     - synchronization order (so):  op1 so op2 iff both are synchronization
       operations on the same location and op1 completes before op2;
     - happens-before (hb):  the irreflexive transitive closure of po ∪ so.

   An execution is represented either by an explicit completion order (a
   trace from the SC interleaver) or by a choice of per-location sync
   orders (see {!Sync_orders}), which is all hb depends on. *)

let so_of_trace evts trace =
  let n = Evts.size evts in
  (* Position of each event in the completion order. *)
  let pos = Array.make n max_int in
  List.iteri (fun i e -> pos.(e) <- i) trace;
  let pairs = ref [] in
  List.iter
    (fun loc ->
      let syncs = Evts.syncs_of_loc evts loc in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if a <> b && pos.(a) < pos.(b) then pairs := (a, b) :: !pairs)
            syncs)
        syncs)
    (Evts.locations evts);
  Rel.of_list n !pairs

let hb evts ~so = Closure.transitive_closure (Rel.union (Evts.po evts) so)

(* The DRF1 refinement of Section 6: a read-only synchronization operation
   cannot be used to order the issuing processor's previous accesses with
   respect to other processors' subsequent synchronization operations.  We
   adopt the formalization from the authors' later work: only so edges from
   an operation with a *write* component to an operation with a *read*
   component (release -> acquire) carry cross-processor ordering. *)
let so_release_acquire evts so =
  Rel.filter
    (fun a b ->
      Event.is_write (Evts.event evts a) && Event.is_read (Evts.event evts b))
    so

let hb1 evts ~so =
  Closure.transitive_closure
    (Rel.union (Evts.po evts) (so_release_acquire evts so))

let ordered rel a b = Rel.mem rel a b || Rel.mem rel b a

let unordered_conflicts evts rel =
  List.filter
    (fun (a, b) -> not (ordered rel a b))
    (Evts.conflicting_pairs evts)
