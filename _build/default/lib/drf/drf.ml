(* The Data-Race-Free-0 synchronization model (paper, Definition 3) and the
   DRF1 refinement sketched in Section 6.

   A program obeys DRF0 iff (1) all synchronization operations are
   hardware-recognizable and access exactly one location — guaranteed by
   construction of our instruction set — and (2) for every execution on the
   idealized architecture, all conflicting accesses are ordered by the
   happens-before relation of that execution. *)

type model = DRF0 | DRF1

let pp_model ppf m =
  Fmt.string ppf (match m with DRF0 -> "DRF0" | DRF1 -> "DRF1")

let hb_of_model = function DRF0 -> Hb.hb | DRF1 -> Hb.hb1

type race = {
  e1 : Event.t;
  e2 : Event.t;
  sync_order : Sync_orders.t;
      (** the synchronization order of a witnessing execution *)
}

let pp_race ppf r =
  Fmt.pf ppf "@[<h>%a and %a are unordered under sync order %a@]" Event.pp
    r.e1 Event.pp r.e2 Sync_orders.pp r.sync_order

(* Race candidates: conflicting pairs involving at least one data operation.
   Two synchronization operations never race — under DRF0 this is merely a
   simplification (same-location sync pairs are always ordered by so, hence
   by hb), but under DRF1 it is part of the definition: synchronization
   operations are ordered by the implementation's serialization of syncs
   (condition 3), not by happens-before. *)
let race_candidates evts =
  List.filter
    (fun (a, b) ->
      Event.is_data (Evts.event evts a) || Event.is_data (Evts.event evts b))
    (Evts.conflicting_pairs evts)

let unordered_candidates evts hb =
  List.filter
    (fun (a, b) -> not (Hb.ordered hb a b))
    (race_candidates evts)

(* --- whole-program checking --------------------------------------------- *)

let races ?(model = DRF0) prog =
  let evts = Evts.of_prog prog in
  let hb_fn = hb_of_model model in
  let tuples = Sync_orders.feasible prog in
  List.concat_map
    (fun tuple ->
      let so = Sync_orders.to_so evts tuple in
      let hb = hb_fn evts ~so in
      List.map
        (fun (a, b) ->
          { e1 = Evts.event evts a; e2 = Evts.event evts b; sync_order = tuple })
        (unordered_candidates evts hb))
    tuples

let check ?(model = DRF0) prog =
  match races ~model prog with [] -> Ok () | rs -> Error rs

let obeys ?(model = DRF0) prog = races ~model prog = []

(* --- per-execution checking (Figure 2 style) ----------------------------- *)

let races_of_trace ?(model = DRF0) evts trace =
  let so = Hb.so_of_trace evts trace in
  let hb = (hb_of_model model) evts ~so in
  List.map
    (fun (a, b) -> (Evts.event evts a, Evts.event evts b))
    (unordered_candidates evts hb)

let trace_obeys ?(model = DRF0) evts trace =
  races_of_trace ~model evts trace = []

(* --- naive cross-check ---------------------------------------------------- *)

(* Definition 3, checked literally: enumerate every SC interleaving and test
   its happens-before.  Exponential; exists to validate the sync-order-based
   checker on small programs. *)
let obeys_naive ?(model = DRF0) prog =
  let evts = Evts.of_prog prog in
  let ok = ref true in
  Sc.iter_traces prog (fun trace _ ->
      if !ok && not (trace_obeys ~model evts trace) then ok := false);
  !ok
