lib/drf/drf.ml: Event Evts Fmt Hb List Sc Sync_orders
