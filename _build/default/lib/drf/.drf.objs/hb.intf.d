lib/drf/hb.mli: Evts Rel
