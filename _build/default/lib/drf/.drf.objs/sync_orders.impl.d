lib/drf/sync_orders.ml: Array Event Evts Fmt Hashtbl List Prog Rel Sem Set String
