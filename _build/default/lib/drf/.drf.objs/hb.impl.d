lib/drf/hb.ml: Array Closure Event Evts List Rel
