lib/drf/sync_orders.mli: Evts Format Prog Rel
