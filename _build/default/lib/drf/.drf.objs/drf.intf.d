lib/drf/drf.mli: Event Evts Format Prog Rel Sync_orders
