(* Axiomatic memory models over candidate executions.

   Each model is a predicate on candidates; the outcomes a model allows for
   a program are the results of the candidates it accepts.  The operational
   machines in lib/machine provide independent definitions of the same
   models, and the test suite checks that the two agree on the corpus. *)

type t = { name : string; accepts : Candidate.t -> bool }

let name m = m.name
let accepts m c = m.accepts c

(* --- shared building blocks ---------------------------------------------- *)

let sync_events evts =
  Iset.of_list (Evts.syncs evts)

let po_to_sync evts =
  let syncs = sync_events evts in
  Rel.filter (fun _ b -> Iset.mem b syncs) (Evts.po evts)

let po_from_sync evts =
  let syncs = sync_events evts in
  Rel.filter (fun a _ -> Iset.mem a syncs) (Evts.po evts)

(* Coherence (per-location SC, the paper's "writes to the same location
   observed in the same order by all processors"): acyclic(po-loc ∪ com). *)
let coherent cand =
  let evts = Candidate.evts cand in
  Closure.acyclic_union [ Evts.po_loc evts; Candidate.com cand ]

(* Sync-order edges of a candidate: same-location synchronization operations
   ordered by communication (transitively closed per location). *)
let sync_so cand =
  let evts = Candidate.evts cand in
  let syncs = sync_events evts in
  let com_sync =
    Rel.filter
      (fun a b ->
        Iset.mem a syncs && Iset.mem b syncs
        && Event.same_loc (Evts.event evts a) (Evts.event evts b))
      (Candidate.com cand)
  in
  Closure.transitive_closure com_sync

(* --- models ---------------------------------------------------------------- *)

let sc =
  {
    name = "sc";
    accepts =
      (fun cand ->
        let evts = Candidate.evts cand in
        Candidate.rmw_atomic cand
        && Closure.acyclic_union [ Evts.po evts; Candidate.com cand ]);
  }

let coherence_only =
  {
    name = "coherence";
    accepts = (fun cand -> Candidate.rmw_atomic cand && coherent cand);
  }

(* Definition 1 (Dubois, Scheurich & Briggs): (1) sync operations strongly
   ordered; (2) no access issued before all previous data accesses are
   globally performed when a sync follows; (3) no access issued until a
   previous sync is globally performed.  Axiomatically: program order into
   and out of synchronization operations is globally enforced, plus
   intra-processor dependencies, coherence and RMW atomicity. *)
let def1 =
  {
    name = "def1-weak-ordering";
    accepts =
      (fun cand ->
        let evts = Candidate.evts cand in
        let ppo =
          Rel.union (Evts.deps evts)
            (Rel.union (po_to_sync evts) (po_from_sync evts))
        in
        Candidate.rmw_atomic cand && coherent cand
        && Closure.acyclic_union [ ppo; Candidate.com cand ]);
  }

(* The Section 5.1 conditions, axiomatically.  Condition 4 enforces program
   order out of a committed sync; condition 5 makes accesses po-before a
   sync visible before any *subsequent same-location sync by another
   processor* — the release edge is [po∩(A×S) ; so], not [po∩(A×S)]
   itself.  That is exactly how Definition 2's hardware may be weaker than
   Definition 1's. *)
let def2 =
  {
    name = "def2-drf0-sufficient";
    accepts =
      (fun cand ->
        let evts = Candidate.evts cand in
        let so = sync_so cand in
        let release = Rel.compose (po_to_sync evts) so in
        let ghb =
          List.fold_left Rel.union (Evts.deps evts)
            [ po_from_sync evts; so; release ]
        in
        Candidate.rmw_atomic cand && coherent cand
        && Closure.acyclic_union [ ghb; Candidate.com cand ]);
  }

(* SPARC-style total store ordering: only write-to-read program order may
   be relaxed, and a processor may read its own buffered write early (rf
   internal edges are not globally ordered).  The wbuf machine is an
   implementation of this model; the test suite keeps it inside. *)
let tso =
  {
    name = "tso";
    accepts =
      (fun cand ->
        let evts = Candidate.evts cand in
        let ppo =
          Rel.filter
            (fun a b ->
              not
                (Event.is_write (Evts.event evts a)
                && Event.is_read (Evts.event evts b)
                && not (Event.is_read (Evts.event evts a))
                && not (Event.is_write (Evts.event evts b))))
            (Evts.po evts)
        in
        let rfe =
          Rel.filter
            (fun a b ->
              (Evts.event evts a).Event.proc <> (Evts.event evts b).Event.proc)
            (Candidate.rf_rel cand)
        in
        let fences = Iset.of_list (Evts.fences evts) in
        let po_fence =
          (* fences restore all program order around them *)
          Rel.filter
            (fun a b -> Iset.mem a fences || Iset.mem b fences)
            (Evts.po evts)
        in
        Candidate.rmw_atomic cand && coherent cand
        && Closure.acyclic_union
             [
               Rel.union ppo po_fence;
               rfe;
               Candidate.co cand;
               Candidate.fr cand;
             ]);
  }

let all = [ sc; tso; coherence_only; def1; def2 ]

let find n = List.find_opt (fun m -> String.equal m.name n) all

(* --- running --------------------------------------------------------------- *)

let candidates model prog =
  let evts = Evts.of_prog prog in
  List.filter model.accepts (Candidate.enumerate evts)

let outcomes model prog =
  List.fold_left
    (fun acc cand -> Final.Set.add (Candidate.final cand) acc)
    Final.Set.empty (candidates model prog)

let allows model prog cond = Cond.satisfiable_in (outcomes model prog) cond

let allows_exists model prog =
  Option.map (allows model prog) (Prog.exists prog)
