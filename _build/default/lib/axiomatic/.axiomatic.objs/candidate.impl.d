lib/axiomatic/candidate.ml: Array Event Evts Exp Final Fmt Hashtbl Instr Iset List Option Order Prog Rel
