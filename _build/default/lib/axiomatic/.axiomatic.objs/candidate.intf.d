lib/axiomatic/candidate.mli: Evts Final Format Rel
