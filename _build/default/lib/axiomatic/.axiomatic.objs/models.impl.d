lib/axiomatic/models.ml: Candidate Closure Cond Event Evts Final Iset List Option Prog Rel String
