lib/axiomatic/models.mli: Candidate Cond Final Prog Rel
