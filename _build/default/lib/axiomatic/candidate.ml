(* Candidate executions, herd-style.

   A candidate fixes, for every read, the write it reads from (rf) and, for
   every location, a total coherence order over its writes (co).  Values are
   then computed from rf and intra-processor register flow; candidates whose
   value flow is cyclic (out-of-thin-air) are rejected, as are candidates
   violating the value constraints of blocking instructions ([Await] reads
   its expected value, [Lock] reads 0).

   A read-modify-write is a single event; rf never relates an event to
   itself, and from-read pairs between an RMW's own components are
   excluded. *)

type source = Init | From of int

type t = {
  evts : Evts.t;
  rf : source array;  (** indexed by event id; meaningful for reads *)
  co : Rel.t;  (** union of the per-location total orders on writes *)
  read_value : int array;
  write_value : int array;
}

let evts t = t.evts
let rf t = t.rf
let co t = t.co
let read_value t e = t.read_value.(e)
let write_value t e = t.write_value.(e)

(* rf as a relation: write -> read. *)
let rf_rel t =
  let n = Evts.size t.evts in
  let pairs = ref [] in
  Array.iteri
    (fun r src -> match src with From w -> pairs := (w, r) :: !pairs | Init -> ())
    t.rf;
  Rel.of_list n !pairs

let fr t =
  let n = Evts.size t.evts in
  let pairs = ref [] in
  List.iter
    (fun r ->
      let e = Evts.event t.evts r in
      match e.Event.loc with
      | None -> ()
      | Some loc -> (
          let later_writes =
            match t.rf.(r) with
            | Init -> Evts.writes_of_loc t.evts loc
            | From w -> Iset.elements (Rel.successors t.co w)
          in
          List.iter
            (fun w' -> if w' <> r then pairs := (r, w') :: !pairs)
            later_writes))
    (Evts.reads t.evts);
  Rel.of_list n !pairs

let com t = Rel.union (rf_rel t) (Rel.union t.co (fr t))

(* --- value computation --------------------------------------------------- *)

(* For each event, the registers its value expression consumes together with
   the po-latest defining event of each. *)
let register_bindings evts =
  let bindings = Array.make (Evts.size evts) [] in
  for p = 0 to Evts.num_procs evts - 1 do
    let last_def = Hashtbl.create 8 in
    List.iter
      (fun id ->
        let e = Evts.event evts id in
        bindings.(id) <-
          List.filter_map
            (fun r ->
              match Hashtbl.find_opt last_def r with
              | Some d -> Some (r, d)
              | None -> None)
            (Instr.source_registers e.Event.instr);
        match Instr.target_register e.Event.instr with
        | Some r -> Hashtbl.replace last_def r id
        | None -> ())
      (Evts.by_proc evts p)
  done;
  bindings

exception Rejected

(* Compute read/write values for an rf choice, or reject (value cycle or a
   violated Await/Lock constraint).  Returns (read_value, write_value). *)
let compute_values evts bindings init_mem rf =
  let n = Evts.size evts in
  (* Order events so that producers come first: def-before-use and
     rf-source-before-read. *)
  let order_rel =
    let pairs = ref [] in
    Array.iteri
      (fun id bs -> List.iter (fun (_, d) -> pairs := (d, id) :: !pairs) bs)
      bindings;
    Array.iteri
      (fun r src ->
        match src with
        | From w when w <> r -> pairs := (w, r) :: !pairs
        | From _ | Init -> ())
      rf;
    Rel.of_list n !pairs
  in
  match Order.topological_sort order_rel with
  | None -> None (* out-of-thin-air value cycle *)
  | Some order -> (
      let read_value = Array.make n 0 in
      let write_value = Array.make n 0 in
      let init_of loc =
        match Exp.Smap.find_opt loc init_mem with Some v -> v | None -> 0
      in
      let env_of id extra =
        List.fold_left
          (fun env (r, d) -> Exp.Smap.add r read_value.(d) env)
          (List.fold_left
             (fun env (r, v) -> Exp.Smap.add r v env)
             Exp.Smap.empty extra)
          bindings.(id)
      in
      try
        List.iter
          (fun id ->
            let e = Evts.event evts id in
            let loc = e.Event.loc in
            let rval () =
              match rf.(id) with
              | Init -> init_of (Option.get loc)
              | From w -> write_value.(w)
            in
            match e.Event.instr with
            | Instr.Load _ -> read_value.(id) <- rval ()
            | Instr.Store { value; _ } ->
                write_value.(id) <- Exp.eval (env_of id []) value
            | Instr.Rmw { reg; value; _ } ->
                let old = rval () in
                read_value.(id) <- old;
                write_value.(id) <- Exp.eval (env_of id [ (reg, old) ]) value
            | Instr.Await { expect; _ } ->
                let v = rval () in
                if v <> expect then raise Rejected;
                read_value.(id) <- v
            | Instr.Lock _ ->
                let v = rval () in
                if v <> 0 then raise Rejected;
                read_value.(id) <- v;
                write_value.(id) <- 1
            | Instr.Fence -> ())
          order;
        Some (read_value, write_value)
      with Rejected -> None)

(* --- enumeration ---------------------------------------------------------- *)

let rec product = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = product rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let enumerate_rf evts =
  let reads = Evts.reads evts in
  let choices =
    List.map
      (fun r ->
        let e = Evts.event evts r in
        let loc = Option.get e.Event.loc in
        let writers =
          List.filter (fun w -> w <> r) (Evts.writes_of_loc evts loc)
        in
        List.map (fun w -> (r, From w)) writers @ [ (r, Init) ])
      reads
  in
  List.map
    (fun assignment ->
      let rf = Array.make (Evts.size evts) Init in
      List.iter (fun (r, src) -> rf.(r) <- src) assignment;
      rf)
    (product choices)

let enumerate_co evts =
  let n = Evts.size evts in
  let per_loc =
    List.map
      (fun loc -> permutations (Evts.writes_of_loc evts loc))
      (Evts.locations evts)
  in
  List.map
    (fun orders ->
      let pairs = ref [] in
      List.iter
        (fun order ->
          let rec walk = function
            | [] -> ()
            | a :: rest ->
                List.iter (fun b -> pairs := (a, b) :: !pairs) rest;
                walk rest
          in
          walk order)
        orders;
      Rel.of_list n !pairs)
    (product per_loc)

let enumerate evts =
  let bindings = register_bindings evts in
  let init_mem = Prog.initial_memory (Evts.prog evts) in
  let cos = enumerate_co evts in
  List.concat_map
    (fun rf ->
      match compute_values evts bindings init_mem rf with
      | None -> []
      | Some (read_value, write_value) ->
          List.map
            (fun co -> { evts; rf; co; read_value; write_value })
            cos)
    (enumerate_rf evts)

(* --- derived facts -------------------------------------------------------- *)

let rmw_atomic t =
  (* The write an RMW reads from must be its immediate co predecessor (and
     an init-reading RMW's write must be co-minimal). *)
  List.for_all
    (fun id ->
      let e = Evts.event t.evts id in
      if not (Event.is_read e && Event.is_write e) then true
      else
        match t.rf.(id) with
        | From w ->
            Rel.mem t.co w id
            && Iset.for_all
                 (fun mid -> mid = id || not (Rel.mem t.co mid id))
                 (Rel.successors t.co w)
        | Init ->
            (* no other write co-precedes this event's write *)
            let loc = Option.get e.Event.loc in
            List.for_all
              (fun w -> w = id || not (Rel.mem t.co w id))
              (Evts.writes_of_loc t.evts loc))
    (Evts.accesses t.evts)

let final t =
  let prog = Evts.prog t.evts in
  let memory =
    List.fold_left
      (fun m loc ->
        match Evts.writes_of_loc t.evts loc with
        | [] -> m
        | writes ->
            (* co-last write *)
            let last =
              List.find
                (fun w -> List.for_all (fun w' -> w = w' || Rel.mem t.co w' w) writes)
                writes
            in
            Exp.Smap.add loc t.write_value.(last) m)
      (Prog.initial_memory prog) (Prog.locations prog)
  in
  let regs =
    Array.init (Prog.num_threads prog) (fun p ->
        List.fold_left
          (fun env id ->
            let e = Evts.event t.evts id in
            match Instr.target_register e.Event.instr with
            | Some r when Event.is_read e -> Exp.Smap.add r t.read_value.(id) env
            | Some _ | None -> env)
          Exp.Smap.empty (Evts.by_proc t.evts p))
  in
  Final.make ~memory ~regs

let pp ppf t =
  let pp_src ppf (r, src) =
    match src with
    | Init -> Fmt.pf ppf "e%d<-init" r
    | From w -> Fmt.pf ppf "e%d<-e%d" r w
  in
  let rf_list =
    List.map (fun r -> (r, t.rf.(r))) (Evts.reads t.evts)
  in
  Fmt.pf ppf "@[<v>rf: %a@,co: %a@]"
    Fmt.(list ~sep:(any "; ") pp_src)
    rf_list Rel.pp t.co
