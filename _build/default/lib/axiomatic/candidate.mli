(** Candidate executions (herd-style): a reads-from choice plus per-location
    coherence orders, with values computed from the register flow.

    Candidates with cyclic value flow (out-of-thin-air) are excluded, as are
    candidates violating blocking-instruction value constraints ([Await]
    must read its expected value, [Lock] must read 0). *)

type source = Init | From of int

type t

val evts : t -> Evts.t
val rf : t -> source array
val co : t -> Rel.t
val read_value : t -> int -> int
val write_value : t -> int -> int

val rf_rel : t -> Rel.t
(** rf as a write→read relation. *)

val fr : t -> Rel.t
(** From-read: a read precedes every write co-after its source. *)

val com : t -> Rel.t
(** [rf ∪ co ∪ fr]. *)

val enumerate : Evts.t -> t list
(** All value-consistent candidates. *)

val rmw_atomic : t -> bool
(** Every RMW reads from its immediate co predecessor. *)

val final : t -> Final.t
(** The result: co-last write per location, last read per register. *)

val pp : Format.formatter -> t -> unit
