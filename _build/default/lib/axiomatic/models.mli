(** Axiomatic memory models over candidate executions.

    Each model is a predicate on candidates; the outcome set it assigns a
    program is the set of results of accepted candidates.  The operational
    machines of [lib/machine] implement the same models independently; the
    test suite checks agreement on the corpus. *)

type t

val name : t -> string
val accepts : t -> Candidate.t -> bool

val sc : t
(** Sequential consistency: RMW atomicity plus
    [acyclic (po ∪ rf ∪ co ∪ fr)]. *)

val tso : t
(** Total store ordering: write-to-read program order relaxed, internal
    reads-from unordered, fences restore order.  The axiomatic envelope of
    the write-buffer machine. *)

val coherence_only : t
(** Per-location SC only — the weakest model here; useful as a lower
    bound. *)

val def1 : t
(** Definition 1 weak ordering (Dubois/Scheurich/Briggs), rendered
    axiomatically: dependencies, program order into and out of sync
    operations, coherence, RMW atomicity. *)

val def2 : t
(** The Section 5.1 sufficient conditions, rendered axiomatically: the
    release edge is [po∩(A×S); so] — accesses before a sync are only
    ordered with respect to *subsequent same-location syncs by other
    processors* (and what follows them), not globally. *)

val all : t list
val find : string -> t option

val coherent : Candidate.t -> bool
val sync_so : Candidate.t -> Rel.t
(** Same-location sync operations ordered by communication. *)

val candidates : t -> Prog.t -> Candidate.t list
val outcomes : t -> Prog.t -> Final.Set.t
val allows : t -> Prog.t -> Cond.t -> bool
val allows_exists : t -> Prog.t -> bool option
