(** Shasha–Snir delay-set analysis ([ShS88], discussed in the paper's
    Section 2.1): the static, software route to sequential consistency.

    The delay set is the set of program-order pairs appearing in critical
    cycles of the program-order ∪ conflict graph; enforcing just these
    orderings guarantees sequential consistency on coherent, write-atomic
    hardware. *)

type cycle = int list
(** Event ids in cycle order. *)

val conflict_edges : Evts.t -> Rel.t
(** Symmetric edges between different threads' conflicting accesses. *)

val simple_cycles : ?max_len:int -> Evts.t -> cycle list
(** All simple cycles of the combined graph, each anchored at its minimal
    event (no rotational duplicates). *)

val is_critical : Evts.t -> cycle -> bool
(** At most two events per processor and three per location, each group
    adjacent in the cycle. *)

val critical_cycles : Evts.t -> cycle list

val delay_pairs : Evts.t -> (int * int) list
(** Program-order pairs that must be enforced (the delay set), sorted. *)

val with_fences : Prog.t -> Prog.t
(** Insert a full fence after the first element of every delay pair. *)

val delay_count : Prog.t -> int
