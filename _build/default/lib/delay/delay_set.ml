(* Shasha & Snir's delay-set analysis (Section 2.1's software route to
   sequential consistency, [ShS88]).

   Build the graph whose nodes are the program's events, with directed
   program-order edges inside each thread and symmetric conflict edges
   between different threads' accesses to a common location (not both
   reads).  A *critical cycle* is a simple cycle in this graph that visits
   at most two events per processor (adjacent in the cycle) and at most
   three events per location (adjacent in the cycle).  The *delay set* is
   the set of program-order edges of critical cycles: if the hardware
   enforces just these orderings (e.g. with fences), every execution is
   sequentially consistent — however weak the machine otherwise is,
   provided it is coherent and write-atomic.

   The differential tests close the loop: for random programs, inserting a
   fence on every delay pair makes the wbuf and ooo machines appear
   sequentially consistent. *)

type cycle = int list

let conflict_edges evts =
  let n = Evts.size evts in
  let pairs = ref [] in
  List.iter
    (fun (a, b) ->
      if (Evts.event evts a).Event.proc <> (Evts.event evts b).Event.proc then begin
        pairs := (a, b) :: (b, a) :: !pairs
      end)
    (Evts.conflicting_pairs evts);
  Rel.of_list n !pairs

let edges evts = Rel.union (Evts.po evts) (conflict_edges evts)

(* Enumerate simple cycles: DFS from each start node, visiting only nodes
   >= start (so each cycle is produced exactly once, anchored at its
   minimal node), bounded by [max_len]. *)
let simple_cycles ?(max_len = 12) evts =
  let g = edges evts in
  let n = Evts.size evts in
  let cycles = ref [] in
  let rec extend start path visited node =
    if List.length path <= max_len then
      Iset.iter
        (fun next ->
          if next = start && List.length path >= 2 then
            cycles := List.rev path :: !cycles
          else if next > start && not (Iset.mem next visited) then
            extend start (next :: path) (Iset.add next visited) next)
        (Rel.successors g node)
  in
  for start = 0 to n - 1 do
    extend start [ start ] (Iset.singleton start) start
  done;
  !cycles

(* Positions of a value in a cycle, for the adjacency side conditions. *)
let adjacent_in_cycle cycle positions =
  let len = List.length cycle in
  match positions with
  | [] | [ _ ] -> true
  | _ ->
      (* The positions must form one contiguous block, cyclically: the gaps
         between consecutive positions are all 1 except a single wrap gap. *)
      let sorted = List.sort compare positions in
      let gaps =
        let rec walk = function
          | a :: (b :: _ as rest) -> (b - a) :: walk rest
          | [ last ] -> [ List.hd sorted + len - last ]
          | [] -> []
        in
        walk sorted
      in
      List.length (List.filter (fun g -> g <> 1) gaps) <= 1

let is_critical evts cycle =
  let arr = Array.of_list cycle in
  let len = Array.length arr in
  let positions_by key =
    let tbl = Hashtbl.create 8 in
    Array.iteri
      (fun i e ->
        let k = key (Evts.event evts e) in
        Hashtbl.replace tbl k (i :: (try Hashtbl.find tbl k with Not_found -> [])))
      arr;
    tbl
  in
  let by_proc = positions_by (fun e -> string_of_int e.Event.proc) in
  let by_loc =
    positions_by (fun e -> match e.Event.loc with Some l -> l | None -> "")
  in
  (* Length-2 "cycles" just traverse one symmetric conflict edge twice;
     they contain no program-order edge and are not Shasha–Snir cycles. *)
  len >= 3
  && Hashtbl.fold
       (fun _ ps acc ->
         acc && List.length ps <= 2 && adjacent_in_cycle cycle ps)
       by_proc true
  && Hashtbl.fold
       (fun _ ps acc ->
         acc && List.length ps <= 3 && adjacent_in_cycle cycle ps)
       by_loc true

let critical_cycles evts =
  List.filter (is_critical evts) (simple_cycles evts)

(* The program-order edges of the critical cycles. *)
let delay_pairs evts =
  let po = Evts.po evts in
  let add acc cycle =
    let arr = Array.of_list cycle in
    let len = Array.length arr in
    let rec walk i acc =
      if i >= len then acc
      else
        let a = arr.(i) and b = arr.((i + 1) mod len) in
        let acc = if Rel.mem po a b then (a, b) :: acc else acc in
        walk (i + 1) acc
    in
    walk 0 acc
  in
  List.sort_uniq compare
    (List.fold_left add [] (critical_cycles evts))

(* Insert a full fence immediately after the first element of every delay
   pair (a full fence anywhere between the pair enforces the delay; right
   after the source is simplest and merges overlapping pairs). *)
let with_fences prog =
  let evts = Evts.of_prog prog in
  let pairs = delay_pairs evts in
  let fence_after =
    (* (proc, index) pairs needing a trailing fence *)
    List.sort_uniq compare
      (List.map
         (fun (a, _) ->
           let e = Evts.event evts a in
           (e.Event.proc, e.Event.index))
         pairs)
  in
  let threads =
    List.mapi
      (fun p instrs ->
        List.concat
          (List.mapi
             (fun i instr ->
               if List.mem (p, i) fence_after then [ instr; Instr.Fence ]
               else [ instr ])
             instrs))
      (Prog.threads prog)
  in
  Prog.make
    ~name:(Prog.name prog ^ "+fences")
    ~init:(Prog.init prog)
    ?exists:(Prog.exists prog) threads

let delay_count prog = List.length (delay_pairs (Evts.of_prog prog))
