(** Random litmus-program generation for differential testing.

    Deterministic in the seed: the same seed always yields the same
    program, so any failing property is reproducible from one integer. *)

type config = {
  max_threads : int;
  max_instrs : int;
  num_locs : int;
  num_sync_locs : int;
  allow_rmw : bool;
  allow_await : bool;
}

val default_config : config

val generate : ?config:config -> int -> Prog.t
(** Generate program number [seed]. *)

val has_complete_execution : Prog.t -> bool
(** At least one SC interleaving runs to completion (no universal
    deadlock). *)

val generate_live : ?config:config -> ?max_attempts:int -> int -> Prog.t option
(** Like {!generate}, but retries (deterministically) until the program has
    a complete execution. *)
