(** Printing programs in the litmus text format (inverse of
    {!Litmus_parse}). *)

val cell_of_instr : Instr.t -> string
val to_string : Prog.t -> string
