lib/litmus/litmus_classics.ml: Cond Exp Instr List Prog String
