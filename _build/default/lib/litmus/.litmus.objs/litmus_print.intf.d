lib/litmus/litmus_print.mli: Instr Prog
