lib/litmus/litmus_classics.mli: Prog
