lib/litmus/litmus_lex.ml: Fmt List Printf String
