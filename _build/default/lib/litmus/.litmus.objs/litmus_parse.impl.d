lib/litmus/litmus_parse.ml: Cond Exp Filename Format Instr List Litmus_lex Prog String
