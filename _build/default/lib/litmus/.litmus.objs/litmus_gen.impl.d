lib/litmus/litmus_gen.ml: Final Instr Int64 List Printf Prog Sc
