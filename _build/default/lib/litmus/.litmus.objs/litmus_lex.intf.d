lib/litmus/litmus_lex.mli: Format
