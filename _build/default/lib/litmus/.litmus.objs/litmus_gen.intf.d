lib/litmus/litmus_gen.mli: Prog
