lib/litmus/litmus_parse.mli: Cond Instr Prog
