lib/litmus/litmus_print.ml: Array Buffer Cond Exp Fmt Instr List Printf Prog String
