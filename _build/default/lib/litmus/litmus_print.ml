(* Printing programs back into the litmus text format.  [parse (print p)]
   reproduces [p] up to syntactic sugar (e.g. [TAS] prints as its [RMW]
   desugaring); the round-trip is checked in the test suite. *)

let exp_to_string e = Fmt.str "%a" Exp.pp e

let cell_of_instr = function
  | Instr.Store { kind = Instr.Data; loc; value } ->
      Printf.sprintf "W %s %s" loc (exp_to_string value)
  | Instr.Store { kind = Instr.Sync; loc; value } ->
      Printf.sprintf "Ws %s %s" loc (exp_to_string value)
  | Instr.Load { kind = Instr.Data; loc; reg } ->
      Printf.sprintf "%s := R %s" reg loc
  | Instr.Load { kind = Instr.Sync; loc; reg } ->
      Printf.sprintf "%s := Rs %s" reg loc
  | Instr.Rmw { kind; loc; reg; value } ->
      Printf.sprintf "%s := RMW%s %s %s" reg
        (match kind with Instr.Sync -> "" | Instr.Data -> "d")
        loc (exp_to_string value)
  | Instr.Await { kind; loc; expect; reg } ->
      let prefix = match reg with Some r -> r ^ " := " | None -> "" in
      Printf.sprintf "%sAwait%s %s %d" prefix
        (match kind with Instr.Sync -> "" | Instr.Data -> "d")
        loc expect
  | Instr.Lock { loc } -> Printf.sprintf "Lock %s" loc
  | Instr.Fence -> "Fence"

let to_string prog =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "name %s\n" (Prog.name prog));
  (match Prog.init prog with
  | [] -> ()
  | init ->
      let bindings =
        String.concat "; "
          (List.map (fun (l, v) -> Printf.sprintf "%s=%d" l v) init)
      in
      Buffer.add_string buf (Printf.sprintf "{ %s }\n" bindings));
  let n = Prog.num_threads prog in
  let header =
    String.concat " | " (List.init n (fun p -> Printf.sprintf "P%d" p))
  in
  Buffer.add_string buf (header ^ " ;\n");
  let threads = Array.of_list (Prog.threads prog) in
  let rows = Array.fold_left (fun m t -> max m (List.length t)) 0 threads in
  for row = 0 to rows - 1 do
    let cells =
      List.init n (fun p ->
          match List.nth_opt threads.(p) row with
          | Some i -> cell_of_instr i
          | None -> "")
    in
    Buffer.add_string buf (String.concat " | " cells ^ " ;\n")
  done;
  (match Prog.exists prog with
  | Some c -> Buffer.add_string buf (Fmt.str "exists %a\n" Cond.pp c)
  | None -> ());
  Buffer.contents buf
