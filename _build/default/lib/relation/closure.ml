(* Transitive-closure algorithms and cycle detection.

   Two independent closure implementations are provided — set-propagation
   (worklist) and Warshall — and the test suite checks they agree; this
   guards the foundation everything else rests on. *)

let transitive_closure rel =
  let n = Rel.size rel in
  (* succ.(a) accumulates everything reachable from [a] in >= 1 step. *)
  let succ = Array.init n (fun a -> Rel.successors rel a) in
  let changed = ref true in
  while !changed do
    changed := false;
    for a = 0 to n - 1 do
      let extended =
        Iset.fold (fun b acc -> Iset.union succ.(b) acc) succ.(a) succ.(a)
      in
      if not (Iset.equal extended succ.(a)) then begin
        succ.(a) <- extended;
        changed := true
      end
    done
  done;
  let pairs = ref [] in
  Array.iteri
    (fun a s -> Iset.iter (fun b -> pairs := (a, b) :: !pairs) s)
    succ;
  Rel.of_list n !pairs

let transitive_closure_warshall rel =
  let n = Rel.size rel in
  let reach = Array.make_matrix n n false in
  Rel.iter (fun a b -> reach.(a).(b) <- true) rel;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if reach.(i).(k) then
        for j = 0 to n - 1 do
          if reach.(k).(j) then reach.(i).(j) <- true
        done
    done
  done;
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if reach.(i).(j) then pairs := (i, j) :: !pairs
    done
  done;
  Rel.of_list n !pairs

let reflexive_transitive_closure rel =
  Rel.union (transitive_closure rel) (Rel.identity (Rel.size rel))

let is_acyclic rel =
  (* DFS with three colours; a back edge is a cycle. *)
  let n = Rel.size rel in
  let colour = Array.make n `White in
  let exception Cycle in
  let rec visit a =
    match colour.(a) with
    | `Grey -> raise Cycle
    | `Black -> ()
    | `White ->
        colour.(a) <- `Grey;
        Iset.iter visit (Rel.successors rel a);
        colour.(a) <- `Black
  in
  try
    for a = 0 to n - 1 do
      visit a
    done;
    true
  with Cycle -> false

let find_cycle rel =
  let n = Rel.size rel in
  let colour = Array.make n `White in
  let exception Found of int list in
  (* [path] is the current DFS stack, most recent first. *)
  let rec visit path a =
    match colour.(a) with
    | `Black -> ()
    | `Grey ->
        (* [a] is on the stack: the cycle is the prefix of [path] up to and
           including the earlier occurrence of [a]. *)
        let rec take acc = function
          | [] -> acc
          | b :: rest -> if b = a then b :: acc else take (b :: acc) rest
        in
        raise (Found (take [] path))
    | `White ->
        colour.(a) <- `Grey;
        Iset.iter (visit (a :: path)) (Rel.successors rel a);
        colour.(a) <- `Black
  in
  try
    for a = 0 to n - 1 do
      visit [] a
    done;
    None
  with Found cycle -> Some cycle

let acyclic_union rels =
  match rels with
  | [] -> invalid_arg "Closure.acyclic_union: empty list"
  | r :: rest -> is_acyclic (List.fold_left Rel.union r rest)
