lib/relation/order.mli: Iset Rel
