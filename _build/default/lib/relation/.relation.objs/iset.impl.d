lib/relation/iset.ml: Fmt Int Set
