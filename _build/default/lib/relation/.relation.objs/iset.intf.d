lib/relation/iset.mli: Format Set
