lib/relation/closure.mli: Rel
