lib/relation/order.ml: Array Closure Iset List Rel
