lib/relation/closure.ml: Array Iset List Rel
