lib/relation/rel.mli: Format Iset
