lib/relation/rel.ml: Array Fmt Iset List Printf
