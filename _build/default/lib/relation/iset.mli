(** Finite sets of non-negative integers (event identifiers).

    This is [Set.Make (Int)] extended with a few convenience functions; it is
    the adjacency representation used by {!Rel}. *)

include Set.S with type elt = int

val of_range : int -> int -> t
(** [of_range lo hi] is the set [{lo, lo+1, ..., hi}]; empty if [lo > hi]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print as [{a, b, c}]. *)
