(* Finite binary relations over the universe {0, ..., size-1}.

   The representation is a persistent array-of-sets: [succ.(a)] is the set of
   all [b] with [(a, b)] in the relation.  All operations are persistent; the
   underlying arrays are copied before mutation.  Relations in this project
   are litmus-test sized (tens of events), so the O(n) copies are cheap and
   the simplicity is worth it. *)

type t = { size : int; succ : Iset.t array }

let create size =
  if size < 0 then invalid_arg "Rel.create: negative size";
  { size; succ = Array.make size Iset.empty }

let size t = t.size

let check_event t a =
  if a < 0 || a >= t.size then
    invalid_arg (Printf.sprintf "Rel: event %d outside universe [0,%d)" a t.size)

let mem t a b =
  check_event t a;
  check_event t b;
  Iset.mem b t.succ.(a)

let add t a b =
  check_event t a;
  check_event t b;
  if Iset.mem b t.succ.(a) then t
  else begin
    let succ = Array.copy t.succ in
    succ.(a) <- Iset.add b succ.(a);
    { t with succ }
  end

let remove t a b =
  check_event t a;
  check_event t b;
  if not (Iset.mem b t.succ.(a)) then t
  else begin
    let succ = Array.copy t.succ in
    succ.(a) <- Iset.remove b succ.(a);
    { t with succ }
  end

let of_list size pairs =
  let succ = Array.make size Iset.empty in
  let add_pair (a, b) =
    if a < 0 || a >= size || b < 0 || b >= size then
      invalid_arg "Rel.of_list: pair outside universe";
    succ.(a) <- Iset.add b succ.(a)
  in
  List.iter add_pair pairs;
  { size; succ }

let successors t a =
  check_event t a;
  t.succ.(a)

let fold f t acc =
  let fold_from a s acc = Iset.fold (fun b acc -> f a b acc) s acc in
  let acc = ref acc in
  Array.iteri (fun a s -> acc := fold_from a s !acc) t.succ;
  !acc

let iter f t = fold (fun a b () -> f a b) t ()

let to_list t = List.rev (fold (fun a b acc -> (a, b) :: acc) t [])

let cardinal t = fold (fun _ _ n -> n + 1) t 0

let is_empty t = Array.for_all Iset.is_empty t.succ

let check_same_size t u op =
  if t.size <> u.size then
    invalid_arg (Printf.sprintf "Rel.%s: universes differ (%d vs %d)" op t.size u.size)

let map2 op name t u =
  check_same_size t u name;
  { size = t.size; succ = Array.init t.size (fun a -> op t.succ.(a) u.succ.(a)) }

let union t u = map2 Iset.union "union" t u
let inter t u = map2 Iset.inter "inter" t u
let diff t u = map2 Iset.diff "diff" t u

let subset t u =
  check_same_size t u "subset";
  let ok = ref true in
  Array.iteri (fun a s -> if not (Iset.subset s u.succ.(a)) then ok := false) t.succ;
  !ok

let equal t u = subset t u && subset u t

let inverse t =
  let succ = Array.make t.size Iset.empty in
  iter (fun a b -> succ.(b) <- Iset.add a succ.(b)) t;
  { size = t.size; succ }

let compose t u =
  check_same_size t u "compose";
  let succ =
    Array.init t.size (fun a ->
        Iset.fold (fun b acc -> Iset.union u.succ.(b) acc) t.succ.(a) Iset.empty)
  in
  { size = t.size; succ }

let restrict t ~keep =
  let succ =
    Array.init t.size (fun a ->
        if keep a then Iset.filter keep t.succ.(a) else Iset.empty)
  in
  { size = t.size; succ }

let filter f t =
  let succ =
    Array.init t.size (fun a -> Iset.filter (fun b -> f a b) t.succ.(a))
  in
  { size = t.size; succ }

let cross t xs ys =
  let ys = Iset.filter (fun y -> y < t.size && y >= 0) ys in
  let succ = Array.copy t.succ in
  Iset.iter
    (fun x ->
      check_event t x;
      succ.(x) <- Iset.union ys succ.(x))
    xs;
  { t with succ }

let identity size =
  { size; succ = Array.init size (fun a -> Iset.singleton a) }

let is_irreflexive t =
  let ok = ref true in
  Array.iteri (fun a s -> if Iset.mem a s then ok := false) t.succ;
  !ok

let pp ppf t =
  let pp_pair ppf (a, b) = Fmt.pf ppf "%d->%d" a b in
  Fmt.pf ppf "@[<hov 1>[%a]@]" Fmt.(list ~sep:(any ";@ ") pp_pair) (to_list t)
