(* Integer sets used to represent adjacency in finite relations. *)

include Set.Make (Int)

let of_range lo hi =
  let rec loop acc i = if i > hi then acc else loop (add i acc) (i + 1) in
  loop empty lo

let pp ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",@ ") int) (elements s)
