(* Orders derived from relations: topological sorts, linear extensions, and
   the consistency test of Shasha & Snir used throughout the paper's
   appendices ("two relations are consistent iff their union extends to a
   total order"). *)

let topological_sort rel =
  let n = Rel.size rel in
  let indegree = Array.make n 0 in
  Rel.iter (fun _ b -> indegree.(b) <- indegree.(b) + 1) rel;
  (* Smallest-first queue keeps the output deterministic. *)
  let ready = ref Iset.empty in
  for a = 0 to n - 1 do
    if indegree.(a) = 0 then ready := Iset.add a !ready
  done;
  let rec loop acc produced =
    match Iset.min_elt_opt !ready with
    | None -> if produced = n then Some (List.rev acc) else None
    | Some a ->
        ready := Iset.remove a !ready;
        Iset.iter
          (fun b ->
            indegree.(b) <- indegree.(b) - 1;
            if indegree.(b) = 0 then ready := Iset.add b !ready)
          (Rel.successors rel a);
        loop (a :: acc) (produced + 1)
  in
  loop [] 0

let linear_extensions rel =
  let n = Rel.size rel in
  let indegree = Array.make n 0 in
  Rel.iter (fun _ b -> indegree.(b) <- indegree.(b) + 1) rel;
  let initial_ready =
    let s = ref Iset.empty in
    for a = 0 to n - 1 do
      if indegree.(a) = 0 then s := Iset.add a !s
    done;
    !s
  in
  (* Depth-first enumeration over choices of the next minimal element.  The
     indegree array is mutated and restored around each choice. *)
  let rec extend acc produced ready k =
    if produced = n then k (List.rev acc)
    else
      Iset.iter
        (fun a ->
          let newly_ready = ref (Iset.remove a ready) in
          Iset.iter
            (fun b ->
              indegree.(b) <- indegree.(b) - 1;
              if indegree.(b) = 0 then newly_ready := Iset.add b !newly_ready)
            (Rel.successors rel a);
          extend (a :: acc) (produced + 1) !newly_ready k;
          Iset.iter
            (fun b -> indegree.(b) <- indegree.(b) + 1)
            (Rel.successors rel a))
        ready
  in
  fun k -> extend [] 0 initial_ready k

let linear_extensions_list rel =
  let acc = ref [] in
  linear_extensions rel (fun order -> acc := order :: !acc);
  List.rev !acc

let count_linear_extensions rel =
  let n = ref 0 in
  linear_extensions rel (fun _ -> incr n);
  !n

let of_total_order size order =
  let rec pairs acc = function
    | [] | [ _ ] -> acc
    | a :: rest ->
        (* Add all pairs, not just adjacent ones, so the result is already
           transitively closed. *)
        pairs (List.map (fun c -> (a, c)) rest @ acc) rest
  in
  Rel.of_list size (pairs [] order)

let consistent a b = Closure.is_acyclic (Rel.union a b)

let is_total_order_on rel events =
  let ordered a b = Rel.mem rel a b || Rel.mem rel b a in
  Closure.is_acyclic (Rel.restrict rel ~keep:(fun e -> Iset.mem e events))
  && Iset.for_all
       (fun a -> Iset.for_all (fun b -> a = b || ordered a b) events)
       events
