(** Transitive closures and cycle detection over {!Rel.t}. *)

val transitive_closure : Rel.t -> Rel.t
(** Irreflexive-in-input transitive closure [r+] (worklist algorithm).  Note
    that if the input has a cycle, the result relates cycle members to
    themselves. *)

val transitive_closure_warshall : Rel.t -> Rel.t
(** Same specification as {!transitive_closure}, computed with Warshall's
    algorithm.  Kept as an independent implementation for cross-checking. *)

val reflexive_transitive_closure : Rel.t -> Rel.t
(** [r* = r+ ∪ id]. *)

val is_acyclic : Rel.t -> bool
(** [true] iff the relation, viewed as a directed graph, has no cycle
    (self-loops count as cycles). *)

val find_cycle : Rel.t -> int list option
(** A witness cycle [[a1; ...; ak]] with edges [a1->a2->...->ak->a1], if any. *)

val acyclic_union : Rel.t list -> bool
(** [acyclic_union rs] is [is_acyclic (union of rs)].  This is the form in
    which axiomatic memory-model constraints are stated.
    @raise Invalid_argument on the empty list. *)
