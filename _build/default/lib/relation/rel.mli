(** Finite binary relations over a fixed universe [{0, ..., size-1}].

    Events in this project (memory operations of a litmus test) are numbered
    densely from 0, so every relation carries its universe size and all
    binary operations require equal sizes.  All operations are persistent. *)

type t

val create : int -> t
(** [create n] is the empty relation over universe size [n].
    @raise Invalid_argument if [n < 0]. *)

val size : t -> int
(** Universe size. *)

val mem : t -> int -> int -> bool
(** [mem t a b] is [true] iff [(a, b)] is in the relation.
    @raise Invalid_argument if [a] or [b] is outside the universe. *)

val add : t -> int -> int -> t
(** Add one pair. *)

val remove : t -> int -> int -> t
(** Remove one pair (no-op if absent). *)

val of_list : int -> (int * int) list -> t
(** [of_list n pairs] builds a relation over universe size [n]. *)

val successors : t -> int -> Iset.t
(** [successors t a] is [{b | (a, b) in t}]. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> int -> unit) -> t -> unit

val to_list : t -> (int * int) list
(** All pairs, sorted by first then second component. *)

val cardinal : t -> int
(** Number of pairs. *)

val is_empty : t -> bool

val union : t -> t -> t
val inter : t -> t -> t

val diff : t -> t -> t
(** Set difference of pair sets. *)

val subset : t -> t -> bool
val equal : t -> t -> bool

val inverse : t -> t
(** [(a, b)] becomes [(b, a)]. *)

val compose : t -> t -> t
(** [compose t u] contains [(a, c)] iff there is [b] with [(a, b)] in [t]
    and [(b, c)] in [u]. *)

val restrict : t -> keep:(int -> bool) -> t
(** Keep only pairs whose both endpoints satisfy [keep]. *)

val filter : (int -> int -> bool) -> t -> t
(** Keep only pairs [(a, b)] with [f a b]. *)

val cross : t -> Iset.t -> Iset.t -> t
(** [cross t xs ys] adds the full product [xs * ys] to [t]. *)

val identity : int -> t
(** The identity relation over universe size [n]. *)

val is_irreflexive : t -> bool

val pp : Format.formatter -> t -> unit
