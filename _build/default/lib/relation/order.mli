(** Topological sorts, linear extensions and order consistency. *)

val topological_sort : Rel.t -> int list option
(** A deterministic (smallest-eligible-first) topological sort of the whole
    universe, or [None] if the relation is cyclic. *)

val linear_extensions : Rel.t -> (int list -> unit) -> unit
(** [linear_extensions r k] calls [k] once for every total order of the
    universe consistent with [r].  If [r] is cyclic, [k] is never called. *)

val linear_extensions_list : Rel.t -> int list list
(** All linear extensions, materialized.  Use only on small universes. *)

val count_linear_extensions : Rel.t -> int

val of_total_order : int -> int list -> Rel.t
(** [of_total_order n order] is the strict total order relation placing
    elements as listed.  Elements of the universe missing from [order] are
    unrelated. *)

val consistent : Rel.t -> Rel.t -> bool
(** Shasha–Snir consistency: [A] and [B] are consistent iff [A ∪ B] can be
    extended to a total order, i.e. iff [A ∪ B] is acyclic. *)

val is_total_order_on : Rel.t -> Iset.t -> bool
(** [is_total_order_on r s] holds iff [r] restricted to [s] is acyclic and
    relates every two distinct elements of [s] one way or the other. *)
