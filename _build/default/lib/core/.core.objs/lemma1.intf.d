lib/core/lemma1.mli: Candidate Event Format Rel
