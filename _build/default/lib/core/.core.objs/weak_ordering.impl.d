lib/core/weak_ordering.ml: Delay_set Drf Event Evts Final Fmt List Machines Models Prog Sc
