lib/core/lemma1.ml: Array Candidate Event Evts Fmt Hb List Models Rel
