lib/core/weak_ordering.mli: Final Format Machines Models Prog
