(** Lemma 1 (Appendix A): on executions of DRF0 programs, every read
    returns the value of the hb-last write to its location.

    Checked on candidate executions, using the candidate's own
    synchronization order to build happens-before. *)

type read_check = {
  read : Event.t;
  hb_last_write : int option;
  actual_source : Candidate.source;
  ok : bool;
}

val hb_of_candidate : Candidate.t -> Rel.t
val check : Candidate.t -> read_check list

val holds : Candidate.t -> bool
(** Every read reads its hb-last write (or the initial value when no write
    is hb-before it). *)

val pp_read_check : Format.formatter -> read_check -> unit
