(* Lemma 1 (Appendix A): a system is weakly ordered with respect to DRF0
   iff for any execution E of a DRF0 program there is a happens-before
   relation such that every read in E returns the value written by the
   last write to the same variable ordered before it by happens-before.

   We check the characterization on candidate executions: take the
   execution's own synchronization order (derived from its communication
   relations), build hb = (po ∪ so)+, and test each read against the
   hb-last same-location write. *)

type read_check = {
  read : Event.t;
  hb_last_write : int option;  (** [None] means the initial value *)
  actual_source : Candidate.source;
  ok : bool;
}

let hb_of_candidate cand =
  let evts = Candidate.evts cand in
  Hb.hb evts ~so:(Models.sync_so cand)

(* The hb-maximal writes to [loc] ordered hb-before [r].  For executions of
   DRF0 programs this set has at most one element. *)
let hb_last_writes cand hb r =
  let evts = Candidate.evts cand in
  let e = Evts.event evts r in
  match e.Event.loc with
  | None -> []
  | Some loc ->
      let before =
        List.filter
          (fun w -> w <> r && Rel.mem hb w r)
          (Evts.writes_of_loc evts loc)
      in
      List.filter
        (fun w ->
          not (List.exists (fun w' -> w' <> w && Rel.mem hb w w') before))
        before

let check_read cand hb r =
  let evts = Candidate.evts cand in
  let lasts = hb_last_writes cand hb r in
  let actual = (Candidate.rf cand).(r) in
  let hb_last_write, ok =
    match lasts with
    | [] -> (None, actual = Candidate.Init)
    | [ w ] -> (Some w, actual = Candidate.From w)
    | w :: _ ->
        (* More than one hb-maximal write: the program is racy on this
           execution; the lemma's premise fails.  Report not-ok. *)
        (Some w, false)
  in
  { read = Evts.event evts r; hb_last_write; actual_source = actual; ok }

let check cand =
  let evts = Candidate.evts cand in
  let hb = hb_of_candidate cand in
  List.map (check_read cand hb) (Evts.reads evts)

let holds cand = List.for_all (fun c -> c.ok) (check cand)

let pp_read_check ppf c =
  Fmt.pf ppf "%a: hb-last=%a actual=%s %s" Event.pp c.read
    Fmt.(option ~none:(any "init") int)
    c.hb_last_write
    (match c.actual_source with
    | Candidate.Init -> "init"
    | Candidate.From w -> string_of_int w)
    (if c.ok then "ok" else "MISMATCH")
