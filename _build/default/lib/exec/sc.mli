(** Exhaustive sequentially consistent execution of litmus programs. *)

val outcomes : Prog.t -> Final.Set.t
(** The complete set of SC results, computed by memoized state-space
    exploration. *)

val iter_traces : Prog.t -> (int list -> Final.t -> unit) -> unit
(** [iter_traces p f] calls [f trace final] for every SC interleaving, where
    [trace] lists event ids (see {!Evts}) in execution order.  Exponential in
    program size; use for litmus-sized programs and cross-checks only. *)

val count_traces : Prog.t -> int

val allows : Prog.t -> Cond.t -> bool
(** Is the condition satisfied by some SC outcome? *)

val allows_exists : Prog.t -> bool option
(** [allows] applied to the program's own "exists" clause, if any. *)
