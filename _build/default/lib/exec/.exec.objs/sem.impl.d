lib/exec/sem.ml: Array Exp Final Instr List Prog
