lib/exec/evts.mli: Event Format Prog Rel
