lib/exec/event.ml: Fmt Instr String
