lib/exec/event.mli: Format Instr
