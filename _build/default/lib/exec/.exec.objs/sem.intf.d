lib/exec/sem.mli: Exp Final Instr Prog
