lib/exec/sc.ml: Array Cond Evts Final Hashtbl List Prog Sem
