lib/exec/evts.ml: Array Event Fmt Hashtbl Instr List Prog Rel
