lib/exec/sc.mli: Cond Final Prog
