(* The event structure of a program: all events, program order, and the
   derived sets and relations every analysis needs. *)

type t = {
  prog : Prog.t;
  events : Event.t array;
  po : Rel.t;
  by_proc : int list array;  (** event ids of each thread, in program order *)
}

let of_prog prog =
  let events = ref [] in
  let next_id = ref 0 in
  let nprocs = Prog.num_threads prog in
  let by_proc = Array.make nprocs [] in
  for p = 0 to nprocs - 1 do
    List.iteri
      (fun index instr ->
        let e = Event.of_instr ~id:!next_id ~proc:p ~index instr in
        incr next_id;
        events := e :: !events;
        by_proc.(p) <- e.Event.id :: by_proc.(p))
      (Prog.thread prog p)
  done;
  let events =
    let a = Array.of_list (List.rev !events) in
    Array.iteri (fun i e -> assert (e.Event.id = i)) a;
    a
  in
  let by_proc = Array.map List.rev by_proc in
  let n = Array.length events in
  (* po relates every pair of same-thread events in program order, not just
     adjacent ones, so it can be unioned directly into axiom checks. *)
  let po =
    let pairs = ref [] in
    Array.iter
      (fun ids ->
        let rec walk = function
          | [] -> ()
          | a :: rest ->
              List.iter (fun b -> pairs := (a, b) :: !pairs) rest;
              walk rest
        in
        walk ids)
      by_proc;
    Rel.of_list n !pairs
  in
  { prog; events; po; by_proc }

let prog t = t.prog
let events t = t.events
let po t = t.po
let size t = Array.length t.events
let event t id = t.events.(id)
let by_proc t p = t.by_proc.(p)
let num_procs t = Array.length t.by_proc

let filter_ids pred t =
  Array.to_list t.events
  |> List.filter pred
  |> List.map (fun e -> e.Event.id)

let reads t = filter_ids Event.is_read t
let writes t = filter_ids Event.is_write t
let accesses t = filter_ids Event.is_access t
let syncs t = filter_ids Event.is_sync t
let fences t = filter_ids Event.is_fence t

let accesses_of_loc t loc =
  filter_ids
    (fun e -> Event.is_access e && e.Event.loc = Some loc)
    t

let writes_of_loc t loc =
  filter_ids (fun e -> Event.is_write e && e.Event.loc = Some loc) t

let syncs_of_loc t loc =
  filter_ids (fun e -> Event.is_sync e && e.Event.loc = Some loc) t

let locations t = Prog.locations t.prog

let conflicting_pairs t =
  let n = size t in
  let pairs = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if Event.conflicts t.events.(a) t.events.(b) then
        pairs := (a, b) :: !pairs
    done
  done;
  List.rev !pairs

let po_loc t =
  Rel.filter (fun a b -> Event.same_loc t.events.(a) t.events.(b)) t.po

(* Intra-processor data dependencies: event [b] depends on event [a] when
   [a] assigns a register that [b]'s value expression consumes (through
   intermediate register copies there are none: registers are written only
   by loads/RMWs, so the def reaching [b] is the po-latest load of that
   register before [b]). *)
let deps t =
  let n = size t in
  let pairs = ref [] in
  Array.iter
    (fun ids ->
      (* last_def maps register -> event id of its latest definition *)
      let last_def = Hashtbl.create 8 in
      List.iter
        (fun id ->
          let e = event t id in
          List.iter
            (fun r ->
              match Hashtbl.find_opt last_def r with
              | Some d -> pairs := (d, id) :: !pairs
              | None -> ())
            (Instr.source_registers e.Event.instr);
          match Instr.target_register e.Event.instr with
          | Some r -> Hashtbl.replace last_def r id
          | None -> ())
        ids)
    t.by_proc;
  Rel.of_list n !pairs

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut Event.pp)
    (Array.to_list t.events)
