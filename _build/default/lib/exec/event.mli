(** Dynamic memory events of a litmus program.

    Threads are straight-line, so the event set is static: every execution
    performs the same events.  A read-modify-write is a single event with
    both a read and a write component, matching the paper's Section 5.1
    treatment of synchronization RMWs. *)

type dir = R | W | RW | F

type t = {
  id : int;
  proc : int;
  index : int;
  dir : dir;
  kind : Instr.kind option;
  loc : string option;
  instr : Instr.t;
}

val of_instr : id:int -> proc:int -> index:int -> Instr.t -> t

val is_read : t -> bool
(** Has a read component (includes RMW). *)

val is_write : t -> bool
(** Has a write component (includes RMW). *)

val is_access : t -> bool
val is_sync : t -> bool
val is_data : t -> bool
val is_fence : t -> bool
val same_loc : t -> t -> bool

val conflicts : t -> t -> bool
(** Paper Section 4: same location and not both reads. *)

val pp : Format.formatter -> t -> unit
val pp_dir : Format.formatter -> dir -> unit
