(** Event structures: the static events of a program with program order and
    the derived sets and relations that analyses consume. *)

type t

val of_prog : Prog.t -> t
val prog : t -> Prog.t
val events : t -> Event.t array

val po : t -> Rel.t
(** Program order as a strict partial order (transitively closed within each
    thread, empty across threads). *)

val size : t -> int
(** Number of events; event ids are [0 .. size-1]. *)

val event : t -> int -> Event.t
val by_proc : t -> int -> int list
val num_procs : t -> int

val reads : t -> int list
val writes : t -> int list
val accesses : t -> int list
val syncs : t -> int list
val fences : t -> int list
val accesses_of_loc : t -> string -> int list
val writes_of_loc : t -> string -> int list
val syncs_of_loc : t -> string -> int list
val locations : t -> string list

val conflicting_pairs : t -> (int * int) list
(** All pairs [(a, b)], [a < b], of conflicting accesses (paper Section 4:
    same location, not both reads), including same-thread pairs. *)

val po_loc : t -> Rel.t
(** Program order restricted to same-location pairs. *)

val deps : t -> Rel.t
(** Intra-processor data dependencies: the po-latest definition of each
    register consumed by an instruction's value expression. *)

val pp : Format.formatter -> t -> unit
