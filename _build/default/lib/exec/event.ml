(* Dynamic events: one per executed instruction.  Litmus threads are
   straight-line, so the events of a program are static — every execution
   performs exactly the same event set, in program order per thread.  A
   read-modify-write is one event with both a read and a write component,
   which matches the paper's treatment (its components commit and globally
   perform together, Section 5.1). *)

type dir = R | W | RW | F

type t = {
  id : int;  (** dense, unique across the program *)
  proc : int;
  index : int;  (** position within the thread *)
  dir : dir;
  kind : Instr.kind option;  (** [None] for fences *)
  loc : string option;
  instr : Instr.t;
}

let dir_of_instr = function
  | Instr.Load _ | Instr.Await _ -> R
  | Instr.Store _ -> W
  | Instr.Rmw _ | Instr.Lock _ -> RW
  | Instr.Fence -> F

let of_instr ~id ~proc ~index instr =
  {
    id;
    proc;
    index;
    dir = dir_of_instr instr;
    kind = Instr.kind instr;
    loc = Instr.location instr;
    instr;
  }

let is_read e = match e.dir with R | RW -> true | W | F -> false
let is_write e = match e.dir with W | RW -> true | R | F -> false
let is_access e = match e.dir with F -> false | R | W | RW -> true
let is_sync e = e.kind = Some Instr.Sync
let is_data e = e.kind = Some Instr.Data
let is_fence e = e.dir = F

let same_loc a b =
  match (a.loc, b.loc) with
  | Some la, Some lb -> String.equal la lb
  | _, _ -> false

let conflicts a b =
  (* Paper, Section 4: two accesses conflict iff they access the same
     location and they are not both reads. *)
  let both_reads = (not (is_write a)) && not (is_write b) in
  is_access a && is_access b && same_loc a b && not both_reads

let pp_dir ppf d =
  Fmt.string ppf (match d with R -> "R" | W -> "W" | RW -> "RW" | F -> "F")

let pp ppf e =
  Fmt.pf ppf "e%d:P%d.%d:%a%s%a" e.id e.proc e.index pp_dir e.dir
    (if is_sync e then "s" else "")
    Fmt.(option string)
    e.loc
