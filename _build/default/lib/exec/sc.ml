(* Exhaustive enumeration of sequentially consistent executions.

   An SC execution is an interleaving of the threads in which each access
   executes atomically, in program order (Lamport's definition, as
   instantiated in the paper's introduction).  [outcomes] computes the full
   set of results with memoization on machine states; [iter_traces]
   enumerates every interleaving (no memoization — exponential, intended for
   litmus-sized programs and for cross-checking smarter analyses). *)

let outcomes prog =
  let memo : (Sem.key, Final.Set.t) Hashtbl.t = Hashtbl.create 1024 in
  let rec explore state =
    let key = Sem.key_of_state state in
    match Hashtbl.find_opt memo key with
    | Some res -> res
    | None ->
        let res =
          if Sem.all_done prog state then
            Final.Set.singleton (Sem.final_of_state state)
          else begin
            let acc = ref Final.Set.empty in
            for p = 0 to Prog.num_threads prog - 1 do
              match Sem.step prog state p with
              | None -> ()
              | Some state' -> acc := Final.Set.union (explore state') !acc
            done;
            !acc
          end
        in
        Hashtbl.add memo key res;
        res
  in
  explore (Sem.initial prog)

let iter_traces prog f =
  let evts = Evts.of_prog prog in
  let nprocs = Prog.num_threads prog in
  (* Event ids of each thread as arrays for O(1) lookup by index. *)
  let ids = Array.init nprocs (fun p -> Array.of_list (Evts.by_proc evts p)) in
  let rec explore state trace =
    if Sem.all_done prog state then
      f (List.rev trace) (Sem.final_of_state state)
    else
      for p = 0 to nprocs - 1 do
        match Sem.step prog state p with
        | None -> ()
        | Some state' ->
            let fired = ids.(p).(state.Sem.threads.(p).Sem.next) in
            explore state' (fired :: trace)
      done
  in
  explore (Sem.initial prog) []

let count_traces prog =
  let n = ref 0 in
  iter_traces prog (fun _ _ -> incr n);
  !n

let allows prog cond =
  Cond.satisfiable_in (outcomes prog) cond

let allows_exists prog =
  match Prog.exists prog with
  | None -> None
  | Some c -> Some (allows prog c)
