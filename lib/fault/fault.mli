(** Deterministic, seed-driven fault schedules for the simulated
    interconnect.

    A [t] is a pure function of its seed: the [n]-th call to {!decide}
    always returns the same answer for the same seed and profile, so every
    fault campaign run is reproducible from one integer.  The module knows
    nothing about the simulator; the transport layer ([Net] in [lib/sim])
    asks it what the network does to each message and implements the
    consequences (retransmission, deduplication, reordering buffers). *)

type profile = {
  spike_permille : int;  (** chance (out of 1000) of a latency spike *)
  max_spike : int;  (** spike magnitude drawn from [1, max_spike] *)
  drop_permille : int;  (** chance of losing a delivery attempt *)
  max_drops : int;  (** bound on consecutive losses of one message *)
  dup_permille : int;  (** chance of delivering a message twice *)
}

val quiet : profile
(** No faults; the transport behaves like the seed network. *)

val delay_storm : profile
val lossy : profile
val duplicating : profile
val chaos : profile
(** All fault kinds at once. *)

val scenarios : (string * profile) list
(** The named scenarios: none, delay, drop, dup, chaos. *)

val scenario : string -> profile option
(** Look up a named scenario. *)

val scenario_names : string list

val scale : profile -> permille:int -> profile
(** Scale the event rates: the degradation-curve intensity knob. *)

val pp_profile : Format.formatter -> profile -> unit

type decision = {
  extra_delay : int;  (** latency spike added to the message's flight time *)
  drops : int;  (** transient losses before the copy that gets through *)
  duplicate : bool;  (** deliver a second, redundant copy *)
}

val benign : decision
(** The no-fault decision. *)

type counts = {
  mutable n_messages : int;
  mutable n_spikes : int;
  mutable n_drops : int;
  mutable n_dups : int;
}

type t

val create : ?profile:profile -> int -> t
(** [create ~profile seed]. *)

val decide : t -> decision
(** The fate of the next message. *)

val counts : t -> counts
val profile : t -> profile
val pp_counts : Format.formatter -> counts -> unit
