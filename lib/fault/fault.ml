(* Deterministic, seed-driven fault schedules for the simulator's
   interconnect.  The paper's Section 5.2 setting is a "general
   interconnection network"; real instances of those lose, duplicate and
   arbitrarily delay messages.  This module is the adversary: given a seed
   and an intensity profile it answers, for each message the protocol
   sends, "what does the network do to this one?" — a latency spike, some
   number of transient losses (each recovered by a link-level retransmit),
   and/or a duplicated delivery.

   Everything is integer arithmetic on a splitmix64 stream, so a schedule
   is a pure function of (seed, message index): the same seed always
   produces the same faults, and any failing campaign run is reproducible
   from one integer. *)

type profile = {
  spike_permille : int;  (** chance (out of 1000) of a latency spike *)
  max_spike : int;  (** spike magnitude drawn from [1, max_spike] *)
  drop_permille : int;  (** chance of losing a delivery attempt *)
  max_drops : int;  (** bound on consecutive losses of one message *)
  dup_permille : int;  (** chance of delivering a message twice *)
}

let quiet =
  {
    spike_permille = 0;
    max_spike = 0;
    drop_permille = 0;
    max_drops = 0;
    dup_permille = 0;
  }

let delay_storm =
  { quiet with spike_permille = 300; max_spike = 120 }

let lossy = { quiet with drop_permille = 150; max_drops = 3 }

let duplicating = { quiet with dup_permille = 200 }

let chaos =
  {
    spike_permille = 200;
    max_spike = 80;
    drop_permille = 100;
    max_drops = 3;
    dup_permille = 100;
  }

let scenarios =
  [
    ("none", quiet);
    ("delay", delay_storm);
    ("drop", lossy);
    ("dup", duplicating);
    ("chaos", chaos);
  ]

let scenario name = List.assoc_opt name scenarios
let scenario_names = List.map fst scenarios

(* Scale a profile's event rates to [permille]/1000 of their value — the
   degradation-curve knob: [scale chaos ~permille:500] is half-intensity
   chaos. *)
let scale p ~permille =
  let s r = r * permille / 1000 in
  {
    p with
    spike_permille = s p.spike_permille;
    drop_permille = s p.drop_permille;
    dup_permille = s p.dup_permille;
  }

let pp_profile ppf p =
  Fmt.pf ppf "spike=%d‰(≤%d) drop=%d‰(≤%d) dup=%d‰" p.spike_permille
    p.max_spike p.drop_permille p.max_drops p.dup_permille

(* --- the deterministic stream ---------------------------------------------- *)

type decision = {
  extra_delay : int;  (** latency spike added to the message's flight time *)
  drops : int;  (** transient losses before the copy that gets through *)
  duplicate : bool;  (** deliver a second, redundant copy *)
}

let benign = { extra_delay = 0; drops = 0; duplicate = false }

type counts = {
  mutable n_messages : int;
  mutable n_spikes : int;
  mutable n_drops : int;  (** total lost delivery attempts *)
  mutable n_dups : int;
}

type t = { profile : profile; mutable state : int64; counts : counts }

let create ?(profile = chaos) seed =
  {
    profile;
    (* Avoid the all-zeros fixed point and decorrelate small seeds. *)
    state = Int64.add (Int64.of_int seed) 0x9E3779B97F4A7C15L;
    counts = { n_messages = 0; n_spikes = 0; n_drops = 0; n_dups = 0 };
  }

let counts t = t.counts
let profile t = t.profile

(* splitmix64: the standard 64-bit mixer; high quality, tiny, stateless in
   the increment. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A uniform draw in [0, bound). *)
let draw t bound =
  if bound <= 0 then 0
  else
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    r mod bound

let flip t permille = permille > 0 && draw t 1000 < permille

let decide t =
  let p = t.profile in
  t.counts.n_messages <- t.counts.n_messages + 1;
  let extra_delay =
    if flip t p.spike_permille then begin
      t.counts.n_spikes <- t.counts.n_spikes + 1;
      1 + draw t (max 1 p.max_spike)
    end
    else 0
  in
  let drops =
    let rec losses k =
      if k >= p.max_drops then k
      else if flip t p.drop_permille then losses (k + 1)
      else k
    in
    let d = losses 0 in
    t.counts.n_drops <- t.counts.n_drops + d;
    d
  in
  let duplicate =
    let dup = flip t p.dup_permille in
    if dup then t.counts.n_dups <- t.counts.n_dups + 1;
    dup
  in
  { extra_delay; drops; duplicate }

let pp_counts ppf c =
  Fmt.pf ppf "msgs=%d spikes=%d drops=%d dups=%d" c.n_messages c.n_spikes
    c.n_drops c.n_dups
