(** Running workloads on the timing simulator, with a watchdog.

    A run that stops making progress does not hang: the watchdog detects a
    drained event queue with blocked threads (deadlock) or an exceeded
    event-time limit (livelock) and raises {!Wedged} with a diagnostic dump
    — per-line directory state, cache contents, in-flight transactions and
    the protocol event journal's tail. *)

exception Wedged of string

type result = {
  policy : Cpu.policy;  (** the issue policy that ran *)
  workload : string;  (** workload name *)
  total_cycles : int;  (** completion cycle of the last thread *)
  proc_stats : Cpu.proc_stats array;  (** per-processor aggregates *)
  observations : Cpu.obs list;  (** tagged reads, in observation order *)
  finals : (string * int) list;  (** settled value of every location *)
  messages : int;  (** protocol messages sent *)
  invalidations : int;  (** invalidation messages *)
  deferrals : int;  (** requests delayed by a reserve bit *)
  nacks : int;  (** requests bounced off busy directory lines *)
  txn_timeouts : int;  (** transaction deadline extensions *)
  retransmits : int;  (** lost messages recovered by backoff *)
  dups_suppressed : int;  (** duplicate deliveries discarded *)
  reorders : int;  (** messages buffered to restore per-line order *)
  sanitizer_checks : int;  (** invariant sweeps performed *)
  events : int;  (** engine events executed *)
  trace : Sim_trace.ev list;  (** per-operation trace, generation order *)
  stalls : Obs.Stall.t;  (** stalled cycles by (proc, cause, location) *)
}
(** Everything a finished run reports. *)

type failure =
  | Deadlock of string  (** queue drained with blocked threads; dump *)
  | Livelock of string  (** event limit exceeded; dump *)
  | Invariant of string  (** sanitizer violation; diagnostic *)

val run :
  ?cfg:Sim_config.t ->
  ?limit:int ->
  ?obs:Obs.t ->
  ?on_wedged:(string -> unit) ->
  Cpu.policy ->
  Workload.t ->
  result
(** Deterministic: same inputs, same result.  [cfg.nprocs] is overridden by
    the workload's thread count.  When [cfg.sanitize] is set (the default)
    the coherence sanitizer sweeps the protocol invariants after every
    delivered message and once more at quiescence.  [obs] (default
    {!Obs.null}) receives the full event stream — op lifecycle spans,
    coherence transactions, NACK/defer/reserve instants, counter samples
    and injected-fault marks; stall attribution is always collected and
    returned in the result.  [on_wedged] (default [ignore]) runs with the
    diagnostic just {e before} {!Wedged} is raised — the hook checkpointed
    campaigns use to dump a final resume point before the abort unwinds.
    @raise Wedged on deadlock or livelock (with diagnostic dump)
    @raise Sim_sanitizer.Violation on an invariant violation *)

val try_run :
  ?cfg:Sim_config.t ->
  ?limit:int ->
  ?obs:Obs.t ->
  ?on_wedged:(string -> unit) ->
  Cpu.policy ->
  Workload.t ->
  (result, failure) Stdlib.result
(** [run] with every failure mode reified — for fault-injection campaigns.
    On failure the tracer passed as [obs] retains the events leading up to
    the wedge, so callers can dump the window around an injected fault. *)

val failure_kind : failure -> string
(** ["deadlock"], ["livelock"] or ["invariant"]. *)

val pp_failure : Format.formatter -> failure -> unit
(** The failure kind and its diagnostic dump. *)

val golden_artifact : obs:Obs.t -> result -> string
(** Canonical timing-fingerprint of a run, for golden tests gating
    timing-invisible optimizations: the normalized Chrome trace of [obs]
    (which must have observed the run), the stall-attribution table, the
    settled memory image and the total cycle count.  Engine event counts
    are excluded — they are the optimization's cost metric, not part of
    simulated time. *)

val observation : result -> string -> int option
(** Value recorded under a tag, if the tagged read executed. *)

val final : result -> string -> int option
(** Settled value of a location. *)

val pp : Format.formatter -> result -> unit
(** Multi-line run summary: cycles, messages, per-processor statistics. *)

val pp_proc_stats : Format.formatter -> int * Cpu.proc_stats -> unit
(** One processor's statistics on one line. *)
