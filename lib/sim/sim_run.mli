(** Running workloads on the timing simulator, with a watchdog.

    A run that stops making progress does not hang: the watchdog detects a
    drained event queue with blocked threads (deadlock) or an exceeded
    event-time limit (livelock) and raises {!Wedged} with a diagnostic dump
    — per-line directory state, cache contents, in-flight transactions and
    the protocol event journal's tail. *)

exception Wedged of string

type result = {
  policy : Cpu.policy;
  workload : string;
  total_cycles : int;
  proc_stats : Cpu.proc_stats array;
  observations : Cpu.obs list;
  finals : (string * int) list;
  messages : int;
  invalidations : int;
  deferrals : int;
  nacks : int;  (** requests bounced off busy directory lines *)
  txn_timeouts : int;  (** transaction deadline extensions *)
  retransmits : int;  (** lost messages recovered by backoff *)
  dups_suppressed : int;  (** duplicate deliveries discarded *)
  reorders : int;  (** messages buffered to restore per-line order *)
  sanitizer_checks : int;  (** invariant sweeps performed *)
  events : int;
  trace : Sim_trace.ev list;
}

type failure =
  | Deadlock of string
  | Livelock of string
  | Invariant of string

val run : ?cfg:Sim_config.t -> ?limit:int -> Cpu.policy -> Workload.t -> result
(** Deterministic: same inputs, same result.  [cfg.nprocs] is overridden by
    the workload's thread count.  When [cfg.sanitize] is set (the default)
    the coherence sanitizer sweeps the protocol invariants after every
    delivered message and once more at quiescence.
    @raise Wedged on deadlock or livelock (with diagnostic dump)
    @raise Sim_sanitizer.Violation on an invariant violation *)

val try_run :
  ?cfg:Sim_config.t ->
  ?limit:int ->
  Cpu.policy ->
  Workload.t ->
  (result, failure) Stdlib.result
(** [run] with every failure mode reified — for fault-injection campaigns. *)

val failure_kind : failure -> string
val pp_failure : Format.formatter -> failure -> unit

val observation : result -> string -> int option
(** Value recorded under a tag, if the tagged read executed. *)

val final : result -> string -> int option
(** Settled value of a location. *)

val pp : Format.formatter -> result -> unit
val pp_proc_stats : Format.formatter -> int * Cpu.proc_stats -> unit
