(* The coherence sanitizer: a runtime invariant monitor over the protocol
   state, run after every protocol state change (each delivered message's
   effects, via the [Proto.set_monitor] hook).

   Always-checkable invariants (hold in every reachable state, transient or
   not):

   - every outstanding-access counter is non-negative, and equals the
     number of in-flight transactions of its processor;
   - a reserve bit is set only while its processor's counter is positive
     (Section 5.3: all reserve bits clear when the counter reads zero);
   - the deferred-request queue of a processor is non-empty only while its
     counter is positive (it drains at counter-zero).

   Quiescent-line invariants (meaningful only when no transaction, queued
   request or network message concerns the line — mid-transaction the
   directory deliberately runs ahead of the caches):

   - single-writer / multiple-reader: at most one M copy, and never an M
     copy alongside S copies;
   - directory/cache agreement: [Exclusive p] iff exactly P[p] holds the
     line in M; every S copy's holder is in the sharer set of a [Shared]
     directory entry; a sharer listed by the directory holds the line in
     S (the converse — a cache dropping a clean copy — would be benign,
     but our caches are unbounded so copies are never dropped); every
     shared/uncached copy agrees with the directory's memory value.

   A violation aborts the run with [Violation], carrying a diagnostic that
   names the broken invariant and embeds the full protocol dump (per-line
   directory state, caches, in-flight transactions, event-journal tail). *)

exception Violation of string

type t = { proto : Proto.t; mutable checks : int }

let fail t fmt =
  Format.kasprintf
    (fun s -> raise (Violation (s ^ "\n" ^ Proto.dump t.proto)))
    fmt

let check_counters t =
  let p = t.proto in
  let open_by_proc = Array.make (Proto.nprocs p) 0 in
  List.iter
    (fun (_, proc, _) -> open_by_proc.(proc) <- open_by_proc.(proc) + 1)
    (Proto.open_txns p);
  for proc = 0 to Proto.nprocs p - 1 do
    let c = Proto.counter p proc in
    if c < 0 then fail t "sanitizer: P%d counter is negative (%d)" proc c;
    if c <> open_by_proc.(proc) then
      fail t
        "sanitizer: P%d counter=%d but %d in-flight transaction(s) — the \
         outstanding-access count drifted"
        proc c open_by_proc.(proc);
    if c = 0 && Proto.deferred_count p proc > 0 then
      fail t
        "sanitizer: P%d holds %d deferred request(s) with counter zero — \
         the stalled-request queue must drain at counter-zero"
        proc (Proto.deferred_count p proc);
    if c = 0 then
      List.iter
        (fun (loc, lv) ->
          if lv.Proto.lv_reserved then
            fail t
              "sanitizer: P%d holds %s reserved with counter zero — reserve \
               bits must clear when the counter reads zero"
              proc loc)
        (Proto.cached_lines p proc)
  done

(* Cached copies of [loc], per state. *)
let copies t loc =
  let p = t.proto in
  let ms = ref [] and ss = ref [] in
  for proc = 0 to Proto.nprocs p - 1 do
    List.iter
      (fun (l, lv) ->
        if l = loc then
          match lv.Proto.lv_state with
          | Proto.M -> ms := (proc, lv) :: !ms
          | Proto.S -> ss := (proc, lv) :: !ss
          | Proto.I -> ())
      (Proto.cached_lines p proc)
  done;
  (!ms, !ss)

let check_line t (loc, dstate) =
  if Proto.line_quiescent t.proto loc then begin
    let ms, ss = copies t loc in
    (match ms with
    | [] | [ _ ] -> ()
    | _ ->
        fail t "sanitizer: %s has %d modified copies (single-writer broken)"
          loc (List.length ms));
    (match (ms, ss) with
    | _ :: _, _ :: _ ->
        fail t
          "sanitizer: %s modified at P%d while shared at P%d — a stale \
           reader copy survived a write (single-writer/multiple-reader \
           broken)"
          loc
          (fst (List.hd ms))
          (fst (List.hd ss))
    | _ -> ());
    match dstate with
    | Proto.Exclusive owner -> (
        match ms with
        | [ (p, _) ] when p = owner -> ()
        | [] ->
            fail t
              "sanitizer: directory says %s is Exclusive P%d but P%d holds \
               no modified copy"
              loc owner owner
        | (p, _) :: _ ->
            fail t
              "sanitizer: directory says %s is Exclusive P%d but P%d holds \
               it modified"
              loc owner p)
    | Proto.Shared sharers ->
        (match ms with
        | [] -> ()
        | (p, _) :: _ ->
            fail t
              "sanitizer: directory says %s is Shared but P%d holds it \
               modified"
              loc p);
        List.iter
          (fun (p, lv) ->
            if not (Iset.mem p sharers) then
              fail t
                "sanitizer: P%d holds %s shared but the directory does not \
                 list it as a sharer"
                p loc;
            if lv.Proto.lv_value <> Proto.memory_value t.proto loc then
              fail t
                "sanitizer: P%d's shared copy of %s reads %d but memory \
                 holds %d"
                p loc lv.Proto.lv_value
                (Proto.memory_value t.proto loc))
          ss;
        Iset.iter
          (fun p ->
            if not (List.mem_assoc p ss) then
              fail t
                "sanitizer: directory lists P%d as a sharer of %s but its \
                 cache holds no shared copy"
                p loc)
          sharers
    | Proto.Uncached -> (
        match (ms, ss) with
        | [], [] -> ()
        | (p, _) :: _, _ | _, (p, _) :: _ ->
            fail t
              "sanitizer: directory says %s is Uncached but P%d holds a copy"
              loc p)
  end

let check t =
  t.checks <- t.checks + 1;
  check_counters t;
  List.iter (check_line t) (Proto.dir_lines t.proto)

let checks t = t.checks

(* Install the sanitizer on a protocol instance: every delivered message's
   effects are followed by a full invariant sweep. *)
let install proto =
  let t = { proto; checks = 0 } in
  Proto.set_monitor proto (fun () -> check t);
  t
