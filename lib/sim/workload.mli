(** Timing workloads for the simulator, with generators for the paper's
    scenarios. *)

type op =
  | Read of { loc : string; tag : string option }
      (** blocking data read; [tag] records the observed value *)
  | Write of { loc : string; value : int }  (** non-blocking data write *)
  | Sync_read of { loc : string; tag : string option }
  | Sync_write of { loc : string; value : int }
  | Tas of { loc : string; tag : string option }
      (** one TestAndSet attempt (no retry) *)
  | Fadd of { loc : string; n : int }
  | Spin_until of { loc : string; expect : int; sync : bool }
  | Lock of { loc : string }  (** TestAndSet loop until acquired *)
  | Unlock of { loc : string }
  | Work of int  (** local computation, in cycles *)

type t = {
  name : string;
  init : (string * int) list;  (** initial memory image *)
  threads : op list list;  (** one operation list per processor *)
}
(** A timing workload: straight-line per-processor operation streams (no
    registers or control flow — contrast with litmus {!Prog.t}). *)

(** {2 Constructors} — one smart constructor per {!op} case. *)

val read : ?tag:string -> string -> op
val write : string -> int -> op
val sync_read : ?tag:string -> string -> op
val sync_write : string -> int -> op
val tas : ?tag:string -> string -> op
val fadd : string -> int -> op
val spin : ?sync:bool -> string -> int -> op
val lock : string -> op
val unlock : string -> op
val work : int -> op

(** {2 The paper's scenarios}

    Every generator validates its arguments: [nprocs] must lie in
    [\[1, max_procs\]], round/batch counts must be positive, and work/delay
    cycle counts non-negative.  Violations raise [Invalid_argument] with a
    message naming the generator, the argument, the accepted range, and the
    offending value. *)

val max_procs : int
(** Upper bound on [?nprocs] accepted by the generators (1024). *)

val fig3_handoff :
  ?work_before:int -> ?work_after:int -> ?consumer_delay:int -> unit -> t
(** Figure 3: [W(x) ... Unset(s)] producing for [TestAndSet(s) ... R(x)]. *)

val spin_barrier : ?nprocs:int -> ?stagger:int -> ?sync_spin:bool -> unit -> t
(** Section 6: central counter barrier; [sync_spin] chooses sync-read
    spinning (serialized by base def2) vs data-read spinning. *)

val critical_sections :
  ?nprocs:int -> ?rounds:int -> ?work_in:int -> ?work_out:int -> unit -> t
(** Lock-protected counter increments: [rounds] acquisitions per
    processor, [work_in]/[work_out] cycles of local work inside/outside
    the critical section. *)

val pipeline : ?nprocs:int -> ?batch:int -> ?work_cycles:int -> unit -> t
(** Producer-consumer chain: each stage writes a batch and signals the
    next with an Unset/TestAndSet handoff (Figure 3 repeated in series). *)

val ticket_lock : ?nprocs:int -> ?work_in:int -> ?work_out:int -> unit -> t
(** FADD-based ticket lock: explicit FIFO, no TestAndSet ping-pong. *)

val sense_barrier : ?nprocs:int -> ?rounds:int -> ?sync_spin:bool -> unit -> t
(** Centralized sense-reversing barrier with a static coordinator. *)

val num_threads : t -> int
(** Number of processors the workload occupies. *)
