(** Per-operation traces of simulator runs and a mechanical check of the
    Section 5.1 sufficient conditions on them. *)

type ev = {
  ep : int;  (** issuing processor *)
  eidx : int;  (** program-order index within the processor *)
  sync : bool;  (** synchronization operation? *)
  reads : bool;
  writes : bool;
  eloc : string;  (** memory location *)
  egen : int;  (** generation cycle (the processor issues the access) *)
  mutable ecommit : int;  (** commit cycle; [-1] until known *)
  mutable egp : int;  (** globally-performed cycle; [-1] until known *)
}
(** One memory operation of a run, with the three timestamps the
    Section 5.1 conditions are phrased over. *)

val make :
  ep:int ->
  eidx:int ->
  sync:bool ->
  reads:bool ->
  writes:bool ->
  eloc:string ->
  egen:int ->
  ev
(** A freshly generated operation ([ecommit] and [egp] start at [-1]). *)

val pp_ev : Format.formatter -> ev -> unit

type violation = { condition : int; message : string }
(** A Section 5.1 condition broken by the trace, with its number. *)

val pp_violation : Format.formatter -> violation -> unit

(** [check_conditionN] verifies the paper's condition [N] over a complete
    run trace and returns every breach; empty = the run was compliant. *)

val check_condition2 : ev list -> violation list
val check_condition3 : ev list -> violation list
val check_condition4 : ev list -> violation list
val check_condition5 : ev list -> violation list

val check_all : ev list -> violation list
(** All four checkable conditions (condition 1 is structural). *)

val pp_timeline : ?width:int -> Format.formatter -> ev list -> unit
(** Compact per-processor text timeline of a run: '-' spans an operation
    from generation to commit; r/w/S mark commits; '!' marks a sync whose
    global performance lags its commit. *)
