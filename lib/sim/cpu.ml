(* Processor models: interpret a workload thread on top of the coherence
   protocol under one of four issue policies.

   - [Sc]: every access (data or sync) is globally performed before the
     next issues — Lamport-conservative hardware.
   - [Def1]: Definition-1 weak ordering.  Data reads block; data writes
     overlap.  A synchronization operation waits for the counter to read
     zero before issuing (condition 2) and is globally performed before
     anything later issues (condition 3).
   - [Def2]: the paper's Section 5.3 implementation.  A synchronization
     operation only waits to *commit* (procure the line and modify it);
     if the counter is positive at commit, the line is reserved, shifting
     the stall to the *next* processor that synchronizes on the location.
   - [Def2_rs]: [Def2] plus the Section 6 refinement — read-only sync
     operations are ordinary coherent reads (cacheable shared) and place no
     reservation, so sync-read spinning is not serialized. *)

type policy = Sc | Def1 | Def2 | Def2_rs | Def2_noresv

let policy_name = function
  | Sc -> "sc"
  | Def1 -> "def1"
  | Def2 -> "def2"
  | Def2_rs -> "def2-rs"
  | Def2_noresv -> "def2-noresv"

let all_policies = [ Sc; Def1; Def2; Def2_rs ]

(* [Def2_noresv] is the deliberately broken ablation: the Section 5.3
   implementation *without* reserve bits.  It violates condition 5 and the
   trace checker (and the consumer's stale reads) catch it; it is excluded
   from [all_policies]. *)
let ablation_policies = [ Def2_noresv ]

type obs = {
  o_proc : int;
  o_tag : string;
  o_loc : string;
  o_value : int;
  o_time : int;
}

(* Stall-cause tags used by the {!Obs.Stall} attribution table.  Shared
   constants so the bench, the CLI and the tests agree on spelling. *)
let cause_counter = "counter-nonzero"
let cause_gp = "gp-wait"
let cause_acquire = "acquire"
let cause_read = "read-miss"

type proc_stats = {
  mutable finish : int;  (** cycle at which the thread's last op completed *)
  mutable drained : int;  (** cycle at which its counter last read zero *)
  mutable stall_pre_sync : int;
      (** waiting for the counter before issuing a sync (Def1 cond. 2) *)
  mutable stall_sync_gp : int;
      (** waiting for a sync to be globally performed (Def1 cond. 3 / SC) *)
  mutable stall_acquire : int;
      (** waiting for a sync to commit: line acquisition, including remote
          reservations (Def2 cond. 5 shifts stalls here) *)
  mutable stall_read : int;  (** read-miss latency *)
  mutable spin_iters : int;
  mutable lock_retries : int;
}

let fresh_stats () =
  {
    finish = 0;
    drained = 0;
    stall_pre_sync = 0;
    stall_sync_gp = 0;
    stall_acquire = 0;
    stall_read = 0;
    spin_iters = 0;
    lock_retries = 0;
  }

type ctx = {
  cfg : Sim_config.t;
  eng : Engine.t;
  proto : Proto.t;
  policy : policy;
  stats : proc_stats array;
  mutable observations : obs list;
  mutable trace : Sim_trace.ev list;
  op_seq : int array;  (** per-processor operation sequence numbers *)
  obs : Obs.t;
  stalls : Obs.Stall.t;
}

(* Emit the op-lifecycle span once the policy releases the processor.
   [t0] is the generation time; the cause tag names the dominant reason
   the processor was held (or [""] for an unstalled op). *)
let op_span ctx proc ~name ~loc ~t0 ~cause =
  Obs.span ctx.obs ~cat:"op" ~name ~tid:proc ~ts:t0
    ~dur:(Engine.now ctx.eng - t0) ~loc ~cause

let stall ctx proc ~cause ~loc ~cycles =
  Obs.Stall.add ctx.stalls ~tid:proc ~cause ~loc ~cycles

(* Record an operation in the trace at its generation point; commit and
   globally-performed times are filled in by the protocol callbacks. *)
let record ctx proc ~sync ~reads ~writes loc =
  let eidx = ctx.op_seq.(proc) in
  ctx.op_seq.(proc) <- eidx + 1;
  let ev =
    Sim_trace.make ~ep:proc ~eidx ~sync ~reads ~writes ~eloc:loc
      ~egen:(Engine.now ctx.eng)
  in
  ctx.trace <- ev :: ctx.trace;
  ev

let observe ctx proc tag loc value =
  ctx.observations <-
    { o_proc = proc; o_tag = tag; o_loc = loc; o_value = value; o_time = Engine.now ctx.eng }
    :: ctx.observations

(* --- policy-specific wrappers -------------------------------------------- *)

let data_read ctx proc loc k =
  let t0 = Engine.now ctx.eng in
  let ev = record ctx proc ~sync:false ~reads:true ~writes:false loc in
  Proto.read ctx.proto ~proc ~loc
    ~on_gp:(fun () -> ev.Sim_trace.egp <- Engine.now ctx.eng)
    ~k:(fun v ->
      ev.Sim_trace.ecommit <- Engine.now ctx.eng;
      ctx.stats.(proc).stall_read <-
        ctx.stats.(proc).stall_read + (Engine.now ctx.eng - t0);
      let missed =
        Engine.now ctx.eng - t0 - ctx.cfg.Sim_config.cache_hit
      in
      stall ctx proc ~cause:cause_read ~loc ~cycles:missed;
      op_span ctx proc ~name:"R" ~loc ~t0
        ~cause:(if missed > 0 then cause_read else "");
      k v)

(* Data write: SC waits for global performance; the weak policies move on
   as soon as the write is handed to the memory system. *)
let data_write ctx proc loc value k =
  let ev = record ctx proc ~sync:false ~reads:false ~writes:true loc in
  let on_commit _ = ev.Sim_trace.ecommit <- Engine.now ctx.eng in
  let on_gp () = ev.Sim_trace.egp <- Engine.now ctx.eng in
  match ctx.policy with
  | Sc ->
      let t0 = Engine.now ctx.eng in
      Proto.modify ctx.proto ~proc ~loc ~f:(fun _ -> value) ~on_gp
        ~on_commit:(fun old ->
          on_commit old;
          Proto.when_counter_zero ctx.proto proc (fun () ->
              let waited = Engine.now ctx.eng - t0 in
              ctx.stats.(proc).stall_sync_gp <-
                ctx.stats.(proc).stall_sync_gp + waited;
              stall ctx proc ~cause:cause_gp ~loc ~cycles:waited;
              op_span ctx proc ~name:"W" ~loc ~t0
                ~cause:(if waited > 0 then cause_gp else "");
              k ()))
  | Def1 | Def2 | Def2_rs | Def2_noresv ->
      let t0 = Engine.now ctx.eng in
      Proto.modify ctx.proto ~proc ~loc ~f:(fun _ -> value) ~on_gp ~on_commit;
      Engine.schedule ctx.eng ~delay:1 (fun () ->
          op_span ctx proc ~name:"W" ~loc ~t0 ~cause:"";
          k ())

(* A synchronization operation that acquires the line exclusive (sync
   write, TAS, FADD — and, for Def2 base, sync reads too).  [reads] and
   [writes] record the *architectural* classification for the trace.
   [k old] runs when the policy lets the processor continue. *)
let sync_modify ctx proc loc ~reads ~writes f k =
  let st = ctx.stats.(proc) in
  let ev = record ctx proc ~sync:true ~reads ~writes loc in
  let on_gp () = ev.Sim_trace.egp <- Engine.now ctx.eng in
  let commit () = ev.Sim_trace.ecommit <- Engine.now ctx.eng in
  let name =
    if reads && writes then "Srmw" else if writes then "Sw" else "Sr"
  in
  match ctx.policy with
  | Sc ->
      let t0 = Engine.now ctx.eng in
      Proto.modify ctx.proto ~proc ~loc ~f ~on_gp ~on_commit:(fun old ->
          commit ();
          Proto.when_counter_zero ctx.proto proc (fun () ->
              let waited = Engine.now ctx.eng - t0 in
              st.stall_sync_gp <- st.stall_sync_gp + waited;
              stall ctx proc ~cause:cause_gp ~loc ~cycles:waited;
              op_span ctx proc ~name ~loc ~t0 ~cause:cause_gp;
              k old))
  | Def1 ->
      let t0 = Engine.now ctx.eng in
      Proto.when_counter_zero ctx.proto proc (fun () ->
          let drained = Engine.now ctx.eng - t0 in
          st.stall_pre_sync <- st.stall_pre_sync + drained;
          stall ctx proc ~cause:cause_counter ~loc ~cycles:drained;
          let t1 = Engine.now ctx.eng in
          Proto.modify ctx.proto ~proc ~loc ~f ~on_gp ~on_commit:(fun old ->
              commit ();
              Proto.when_counter_zero ctx.proto proc (fun () ->
                  let waited = Engine.now ctx.eng - t1 in
                  st.stall_sync_gp <- st.stall_sync_gp + waited;
                  stall ctx proc ~cause:cause_gp ~loc ~cycles:waited;
                  op_span ctx proc ~name ~loc ~t0
                    ~cause:(if drained > 0 then cause_counter else cause_gp);
                  k old)))
  | Def2 | Def2_rs | Def2_noresv ->
      let t0 = Engine.now ctx.eng in
      Proto.modify ctx.proto ~proc ~loc ~f ~on_gp ~on_commit:(fun old ->
          commit ();
          let waited = Engine.now ctx.eng - t0 in
          st.stall_acquire <- st.stall_acquire + waited;
          stall ctx proc ~cause:cause_acquire ~loc ~cycles:waited;
          op_span ctx proc ~name ~loc ~t0
            ~cause:(if waited > 0 then cause_acquire else "");
          if ctx.policy <> Def2_noresv then
            Proto.reserve_if_outstanding ctx.proto ~proc ~loc;
          k old)

(* A read-only synchronization operation. *)
let sync_read ctx proc loc k =
  let st = ctx.stats.(proc) in
  let plain_read stall_field =
    let t0 = Engine.now ctx.eng in
    let ev = record ctx proc ~sync:true ~reads:true ~writes:false loc in
    Proto.read ctx.proto ~proc ~loc
      ~on_gp:(fun () -> ev.Sim_trace.egp <- Engine.now ctx.eng)
      ~k:(fun v ->
        ev.Sim_trace.ecommit <- Engine.now ctx.eng;
        let stalled =
          max 0 (Engine.now ctx.eng - t0 - ctx.cfg.Sim_config.cache_hit)
        in
        let cause =
          match stall_field with
          | `Gp ->
              st.stall_sync_gp <- st.stall_sync_gp + stalled;
              cause_gp
          | `Acquire ->
              st.stall_acquire <- st.stall_acquire + stalled;
              cause_acquire
        in
        stall ctx proc ~cause ~loc ~cycles:stalled;
        op_span ctx proc ~name:"Sr" ~loc ~t0
          ~cause:(if stalled > 0 then cause else "");
        k v)
  in
  match ctx.policy with
  | Sc -> plain_read `Gp
  | Def1 ->
      let t0 = Engine.now ctx.eng in
      Proto.when_counter_zero ctx.proto proc (fun () ->
          let drained = Engine.now ctx.eng - t0 in
          st.stall_pre_sync <- st.stall_pre_sync + drained;
          stall ctx proc ~cause:cause_counter ~loc ~cycles:drained;
          plain_read `Gp)
  | Def2 | Def2_noresv ->
      (* Base implementation: all sync operations are treated as writes by
         the coherence protocol — even a Test acquires the line exclusive
         and is serialized (the Section 6 performance complaint). *)
      sync_modify ctx proc loc ~reads:true ~writes:false (fun v -> v) k
  | Def2_rs ->
      (* Refinement: a read-only sync is a coherent read; it honours
         reservations at the owner (acquire side) but places none. *)
      plain_read `Acquire

(* --- the interpreter -------------------------------------------------------- *)

let spin_delay ctx k =
  Engine.schedule ctx.eng ~delay:ctx.cfg.Sim_config.spin_interval k

(* --- spin parking ------------------------------------------------------------

   A processor spinning on a cached line runs the same deterministic
   iteration over and over: a cache hit on a stale value, [cache_hit]
   cycles of latency, [spin_interval] cycles of delay.  Nothing it does is
   visible to anyone else (hits send no messages, touch no directory
   state), and nothing can change what it observes except a foreign
   request invalidating or downgrading its copy — the value of a valid
   line only changes through the spinner's own miss refill.  So instead of
   burning one engine event per iteration per core, the processor *parks*:
   it registers a {!Proto.watch_line} wakeup and stops scheduling.  When
   the wakeup fires (or a keepalive bounds the backlog), the skipped
   iterations' bookkeeping — trace events, op spans, stall attribution,
   statistics — is replayed from the closed-form per-policy iteration
   profile, so every observable artifact is identical to the unparked run
   (gated by the golden timing fingerprints and a park-on/off differential
   test).

   Eligibility: the next iteration must be a guaranteed pure hit — line in
   S/M for plain-read spins, M for exclusive-acquiring spins (Def2-base
   sync spins, lock retries), no pending global-perform on the line, and
   the outstanding counter at zero (so Def1's pre-sync wait passes
   immediately and Def2's re-reservation is a no-op; a spinner makes no
   accesses, so the counter stays zero while parked).

   The wake boundary: an iteration issuing exactly at the wake cycle [tw]
   read the stale value iff its engine event was created before the
   delivery event that mutated the line — i.e. iff [tw - spin_interval <
   Engine.running_since]; on a creation-cycle tie the delivery is taken
   first.  Iterations strictly before [tw] are always stale hits. *)

type spin_kind = Spin_data | Spin_sync | Lock_retry

(* One skipped iteration's bookkeeping, issued at [t]: exactly what the
   live hit path records, with the clock terms evaluated in closed form
   ([Engine.now] at issue is [t]; the check runs at [t + cache_hit]). *)
let replay_iter ctx proc loc kind ~t =
  let ch = ctx.cfg.Sim_config.cache_hit in
  let st = ctx.stats.(proc) in
  let record_at ~sync ~reads ~writes =
    let eidx = ctx.op_seq.(proc) in
    ctx.op_seq.(proc) <- eidx + 1;
    let ev =
      Sim_trace.make ~ep:proc ~eidx ~sync ~reads ~writes ~eloc:loc ~egen:t
    in
    ev.Sim_trace.ecommit <- t + ch;
    ev.Sim_trace.egp <- t + ch;
    ctx.trace <- ev :: ctx.trace
  in
  let span name cause =
    Obs.span ctx.obs ~cat:"op" ~name ~tid:proc ~ts:t ~dur:ch ~loc ~cause
  in
  match (kind, ctx.policy) with
  | Spin_data, _ ->
      (* data_read: stall_read grows by the full latency even on a hit;
         the miss residue is zero, so no stall-table row and no cause. *)
      record_at ~sync:false ~reads:true ~writes:false;
      st.stall_read <- st.stall_read + ch;
      span "R" "";
      st.spin_iters <- st.spin_iters + 1
  | Spin_sync, (Sc | Def1 | Def2_rs) ->
      (* plain sync read, hit: zero stalled cycles under all three. *)
      record_at ~sync:true ~reads:true ~writes:false;
      span "Sr" "";
      st.spin_iters <- st.spin_iters + 1
  | Spin_sync, (Def2 | Def2_noresv) ->
      (* base Def2 treats the sync read as an exclusive acquire: the
         cache-hit commit latency is charged as acquire stall. *)
      record_at ~sync:true ~reads:true ~writes:false;
      st.stall_acquire <- st.stall_acquire + ch;
      stall ctx proc ~cause:cause_acquire ~loc ~cycles:ch;
      span "Sr" (if ch > 0 then cause_acquire else "");
      st.spin_iters <- st.spin_iters + 1
  | Lock_retry, (Def2 | Def2_rs | Def2_noresv) ->
      record_at ~sync:true ~reads:true ~writes:true;
      st.stall_acquire <- st.stall_acquire + ch;
      stall ctx proc ~cause:cause_acquire ~loc ~cycles:ch;
      span "Srmw" (if ch > 0 then cause_acquire else "");
      st.lock_retries <- st.lock_retries + 1
  | Lock_retry, (Sc | Def1) ->
      (* both charge the commit-to-continue wait as sync-gp stall. *)
      record_at ~sync:true ~reads:true ~writes:true;
      st.stall_sync_gp <- st.stall_sync_gp + ch;
      stall ctx proc ~cause:cause_gp ~loc ~cycles:ch;
      span "Srmw" cause_gp;
      st.lock_retries <- st.lock_retries + 1

let park_eligible ctx proc loc kind =
  let cfg = ctx.cfg in
  cfg.Sim_config.park_spins
  && cfg.Sim_config.cache_hit + cfg.Sim_config.spin_interval > 0
  && Proto.counter ctx.proto proc = 0
  && (not (Proto.line_gp_pending ctx.proto proc loc))
  &&
  match Proto.line_state ctx.proto proc loc with
  | Proto.M -> true
  | Proto.S -> (
      match kind with
      | Spin_data -> true
      | Spin_sync -> (
          match ctx.policy with
          | Sc | Def1 | Def2_rs -> true
          | Def2 | Def2_noresv -> false)
      | Lock_retry -> false)
  | Proto.I -> false

(* Park instead of scheduling the next iteration, when eligible; [resume]
   is the live iteration body (the spin loop's own function).  Runs at the
   point where the failed check would have called {!spin_delay}, so the
   next iteration issues [spin_interval] cycles from now. *)
let spin_or_park ctx proc loc kind resume =
  if not (park_eligible ctx proc loc kind) then spin_delay ctx resume
  else begin
    let si = ctx.cfg.Sim_config.spin_interval in
    let period = ctx.cfg.Sim_config.cache_hit + si in
    (* issue time of the next not-yet-replayed iteration *)
    let next = ref (Engine.now ctx.eng + si) in
    let awake = ref false in
    let replay () =
      replay_iter ctx proc loc kind ~t:!next;
      next := !next + period
    in
    let ka = ref None in
    let wake () =
      if not !awake then begin
        awake := true;
        Proto.unwatch_line ctx.proto ~proc ~loc;
        (match !ka with Some h -> Engine.cancel h | None -> ());
        let tw = Engine.now ctx.eng in
        while !next < tw do
          replay ()
        done;
        (* The boundary iteration — one issuing exactly at the wake cycle.
           Under Def1 the sync paths bounce through a zero-delay
           counter-drain event, so the line-state check re-enters the queue
           at the wake cycle behind the already-scheduled invalidation
           delivery: always a miss.  The direct-check paths read the line
           inside the iteration event itself, which runs before the
           delivery iff it was scheduled on an earlier cycle than the
           delivery was (the delivery's cell is created when its network
           arrival executes — [running_since] inside the wake); ties go to
           the delivery. *)
        let boundary_hit =
          match (kind, ctx.policy) with
          | (Spin_sync | Lock_retry), Def1 -> false
          | _ -> tw - si < Engine.running_since ctx.eng
        in
        if !next = tw && boundary_hit then replay ();
        Engine.schedule ctx.eng ~delay:(!next - tw) resume
      end
    in
    (* While parked the queue must not drain silently: a keepalive tick
       keeps simulated time advancing so a spin that is never woken (e.g.
       under the Skip_invalidation mutation) still trips the livelock
       watchdog, exactly like an unparked spin; it also bounds the replay
       backlog by draining it incrementally.  Cancelled on wake so a stale
       tick cannot outlive the real schedule and stretch [total_cycles]. *)
    let rec keepalive () =
      ka :=
        Some
          (Engine.schedule_cancellable ctx.eng
             ~delay:ctx.cfg.Sim_config.park_keepalive (fun () ->
               let now = Engine.now ctx.eng in
               while !next < now do
                 replay ()
               done;
               keepalive ()))
    in
    Proto.watch_line ctx.proto ~proc ~loc wake;
    keepalive ()
  end

let rec exec_op ctx proc op k =
  let st = ctx.stats.(proc) in
  match op with
  | Workload.Work n -> Engine.schedule ctx.eng ~delay:n k
  | Workload.Read { loc; tag } ->
      data_read ctx proc loc (fun v ->
          (match tag with Some tg -> observe ctx proc tg loc v | None -> ());
          k ())
  | Workload.Write { loc; value } -> data_write ctx proc loc value k
  | Workload.Sync_read { loc; tag } ->
      sync_read ctx proc loc (fun v ->
          (match tag with Some tg -> observe ctx proc tg loc v | None -> ());
          k ())
  | Workload.Sync_write { loc; value } ->
      sync_modify ctx proc loc ~reads:false ~writes:true (fun _ -> value)
        (fun _ -> k ())
  | Workload.Tas { loc; tag } ->
      sync_modify ctx proc loc ~reads:true ~writes:true (fun _ -> 1) (fun old ->
          (match tag with Some tg -> observe ctx proc tg loc old | None -> ());
          k ())
  | Workload.Fadd { loc; n } ->
      sync_modify ctx proc loc ~reads:true ~writes:true (fun v -> v + n)
        (fun _ -> k ())
  | Workload.Spin_until { loc; expect; sync } ->
      let kind = if sync then Spin_sync else Spin_data in
      let rec iter () =
        st.spin_iters <- st.spin_iters + 1;
        let check v =
          if v = expect then k () else spin_or_park ctx proc loc kind iter
        in
        if sync then sync_read ctx proc loc check
        else data_read ctx proc loc check
      in
      iter ()
  | Workload.Lock { loc } ->
      let rec attempt () =
        sync_modify ctx proc loc ~reads:true ~writes:true
          (fun v -> if v = 0 then 1 else v)
          (fun old ->
            if old = 0 then k ()
            else begin
              st.lock_retries <- st.lock_retries + 1;
              spin_or_park ctx proc loc Lock_retry attempt
            end)
      in
      attempt ()
  | Workload.Unlock { loc } -> exec_op ctx proc (Workload.Sync_write { loc; value = 0 }) k

let rec exec_thread ctx proc ops k =
  match ops with
  | [] -> k ()
  | op :: rest -> exec_op ctx proc op (fun () -> exec_thread ctx proc rest k)
