(* Processor models: interpret a workload thread on top of the coherence
   protocol under one of four issue policies.

   - [Sc]: every access (data or sync) is globally performed before the
     next issues — Lamport-conservative hardware.
   - [Def1]: Definition-1 weak ordering.  Data reads block; data writes
     overlap.  A synchronization operation waits for the counter to read
     zero before issuing (condition 2) and is globally performed before
     anything later issues (condition 3).
   - [Def2]: the paper's Section 5.3 implementation.  A synchronization
     operation only waits to *commit* (procure the line and modify it);
     if the counter is positive at commit, the line is reserved, shifting
     the stall to the *next* processor that synchronizes on the location.
   - [Def2_rs]: [Def2] plus the Section 6 refinement — read-only sync
     operations are ordinary coherent reads (cacheable shared) and place no
     reservation, so sync-read spinning is not serialized. *)

type policy = Sc | Def1 | Def2 | Def2_rs | Def2_noresv

let policy_name = function
  | Sc -> "sc"
  | Def1 -> "def1"
  | Def2 -> "def2"
  | Def2_rs -> "def2-rs"
  | Def2_noresv -> "def2-noresv"

let all_policies = [ Sc; Def1; Def2; Def2_rs ]

(* [Def2_noresv] is the deliberately broken ablation: the Section 5.3
   implementation *without* reserve bits.  It violates condition 5 and the
   trace checker (and the consumer's stale reads) catch it; it is excluded
   from [all_policies]. *)
let ablation_policies = [ Def2_noresv ]

type obs = {
  o_proc : int;
  o_tag : string;
  o_loc : string;
  o_value : int;
  o_time : int;
}

(* Stall-cause tags used by the {!Obs.Stall} attribution table.  Shared
   constants so the bench, the CLI and the tests agree on spelling. *)
let cause_counter = "counter-nonzero"
let cause_gp = "gp-wait"
let cause_acquire = "acquire"
let cause_read = "read-miss"

type proc_stats = {
  mutable finish : int;  (** cycle at which the thread's last op completed *)
  mutable drained : int;  (** cycle at which its counter last read zero *)
  mutable stall_pre_sync : int;
      (** waiting for the counter before issuing a sync (Def1 cond. 2) *)
  mutable stall_sync_gp : int;
      (** waiting for a sync to be globally performed (Def1 cond. 3 / SC) *)
  mutable stall_acquire : int;
      (** waiting for a sync to commit: line acquisition, including remote
          reservations (Def2 cond. 5 shifts stalls here) *)
  mutable stall_read : int;  (** read-miss latency *)
  mutable spin_iters : int;
  mutable lock_retries : int;
}

let fresh_stats () =
  {
    finish = 0;
    drained = 0;
    stall_pre_sync = 0;
    stall_sync_gp = 0;
    stall_acquire = 0;
    stall_read = 0;
    spin_iters = 0;
    lock_retries = 0;
  }

type ctx = {
  cfg : Sim_config.t;
  eng : Engine.t;
  proto : Proto.t;
  policy : policy;
  stats : proc_stats array;
  mutable observations : obs list;
  mutable trace : Sim_trace.ev list;
  op_seq : int array;  (** per-processor operation sequence numbers *)
  obs : Obs.t;
  stalls : Obs.Stall.t;
}

(* Emit the op-lifecycle span once the policy releases the processor.
   [t0] is the generation time; the cause tag names the dominant reason
   the processor was held (or [""] for an unstalled op). *)
let op_span ctx proc ~name ~loc ~t0 ~cause =
  Obs.span ctx.obs ~cat:"op" ~name ~tid:proc ~ts:t0
    ~dur:(Engine.now ctx.eng - t0) ~loc ~cause

let stall ctx proc ~cause ~loc ~cycles =
  Obs.Stall.add ctx.stalls ~tid:proc ~cause ~loc ~cycles

(* Record an operation in the trace at its generation point; commit and
   globally-performed times are filled in by the protocol callbacks. *)
let record ctx proc ~sync ~reads ~writes loc =
  let eidx = ctx.op_seq.(proc) in
  ctx.op_seq.(proc) <- eidx + 1;
  let ev =
    Sim_trace.make ~ep:proc ~eidx ~sync ~reads ~writes ~eloc:loc
      ~egen:(Engine.now ctx.eng)
  in
  ctx.trace <- ev :: ctx.trace;
  ev

let observe ctx proc tag loc value =
  ctx.observations <-
    { o_proc = proc; o_tag = tag; o_loc = loc; o_value = value; o_time = Engine.now ctx.eng }
    :: ctx.observations

(* --- policy-specific wrappers -------------------------------------------- *)

let data_read ctx proc loc k =
  let t0 = Engine.now ctx.eng in
  let ev = record ctx proc ~sync:false ~reads:true ~writes:false loc in
  Proto.read ctx.proto ~proc ~loc
    ~on_gp:(fun () -> ev.Sim_trace.egp <- Engine.now ctx.eng)
    ~k:(fun v ->
      ev.Sim_trace.ecommit <- Engine.now ctx.eng;
      ctx.stats.(proc).stall_read <-
        ctx.stats.(proc).stall_read + (Engine.now ctx.eng - t0);
      let missed =
        Engine.now ctx.eng - t0 - ctx.cfg.Sim_config.cache_hit
      in
      stall ctx proc ~cause:cause_read ~loc ~cycles:missed;
      op_span ctx proc ~name:"R" ~loc ~t0
        ~cause:(if missed > 0 then cause_read else "");
      k v)

(* Data write: SC waits for global performance; the weak policies move on
   as soon as the write is handed to the memory system. *)
let data_write ctx proc loc value k =
  let ev = record ctx proc ~sync:false ~reads:false ~writes:true loc in
  let on_commit _ = ev.Sim_trace.ecommit <- Engine.now ctx.eng in
  let on_gp () = ev.Sim_trace.egp <- Engine.now ctx.eng in
  match ctx.policy with
  | Sc ->
      let t0 = Engine.now ctx.eng in
      Proto.modify ctx.proto ~proc ~loc ~f:(fun _ -> value) ~on_gp
        ~on_commit:(fun old ->
          on_commit old;
          Proto.when_counter_zero ctx.proto proc (fun () ->
              let waited = Engine.now ctx.eng - t0 in
              ctx.stats.(proc).stall_sync_gp <-
                ctx.stats.(proc).stall_sync_gp + waited;
              stall ctx proc ~cause:cause_gp ~loc ~cycles:waited;
              op_span ctx proc ~name:"W" ~loc ~t0
                ~cause:(if waited > 0 then cause_gp else "");
              k ()))
  | Def1 | Def2 | Def2_rs | Def2_noresv ->
      let t0 = Engine.now ctx.eng in
      Proto.modify ctx.proto ~proc ~loc ~f:(fun _ -> value) ~on_gp ~on_commit;
      Engine.schedule ctx.eng ~delay:1 (fun () ->
          op_span ctx proc ~name:"W" ~loc ~t0 ~cause:"";
          k ())

(* A synchronization operation that acquires the line exclusive (sync
   write, TAS, FADD — and, for Def2 base, sync reads too).  [reads] and
   [writes] record the *architectural* classification for the trace.
   [k old] runs when the policy lets the processor continue. *)
let sync_modify ctx proc loc ~reads ~writes f k =
  let st = ctx.stats.(proc) in
  let ev = record ctx proc ~sync:true ~reads ~writes loc in
  let on_gp () = ev.Sim_trace.egp <- Engine.now ctx.eng in
  let commit () = ev.Sim_trace.ecommit <- Engine.now ctx.eng in
  let name =
    if reads && writes then "Srmw" else if writes then "Sw" else "Sr"
  in
  match ctx.policy with
  | Sc ->
      let t0 = Engine.now ctx.eng in
      Proto.modify ctx.proto ~proc ~loc ~f ~on_gp ~on_commit:(fun old ->
          commit ();
          Proto.when_counter_zero ctx.proto proc (fun () ->
              let waited = Engine.now ctx.eng - t0 in
              st.stall_sync_gp <- st.stall_sync_gp + waited;
              stall ctx proc ~cause:cause_gp ~loc ~cycles:waited;
              op_span ctx proc ~name ~loc ~t0 ~cause:cause_gp;
              k old))
  | Def1 ->
      let t0 = Engine.now ctx.eng in
      Proto.when_counter_zero ctx.proto proc (fun () ->
          let drained = Engine.now ctx.eng - t0 in
          st.stall_pre_sync <- st.stall_pre_sync + drained;
          stall ctx proc ~cause:cause_counter ~loc ~cycles:drained;
          let t1 = Engine.now ctx.eng in
          Proto.modify ctx.proto ~proc ~loc ~f ~on_gp ~on_commit:(fun old ->
              commit ();
              Proto.when_counter_zero ctx.proto proc (fun () ->
                  let waited = Engine.now ctx.eng - t1 in
                  st.stall_sync_gp <- st.stall_sync_gp + waited;
                  stall ctx proc ~cause:cause_gp ~loc ~cycles:waited;
                  op_span ctx proc ~name ~loc ~t0
                    ~cause:(if drained > 0 then cause_counter else cause_gp);
                  k old)))
  | Def2 | Def2_rs | Def2_noresv ->
      let t0 = Engine.now ctx.eng in
      Proto.modify ctx.proto ~proc ~loc ~f ~on_gp ~on_commit:(fun old ->
          commit ();
          let waited = Engine.now ctx.eng - t0 in
          st.stall_acquire <- st.stall_acquire + waited;
          stall ctx proc ~cause:cause_acquire ~loc ~cycles:waited;
          op_span ctx proc ~name ~loc ~t0
            ~cause:(if waited > 0 then cause_acquire else "");
          if ctx.policy <> Def2_noresv then
            Proto.reserve_if_outstanding ctx.proto ~proc ~loc;
          k old)

(* A read-only synchronization operation. *)
let sync_read ctx proc loc k =
  let st = ctx.stats.(proc) in
  let plain_read stall_field =
    let t0 = Engine.now ctx.eng in
    let ev = record ctx proc ~sync:true ~reads:true ~writes:false loc in
    Proto.read ctx.proto ~proc ~loc
      ~on_gp:(fun () -> ev.Sim_trace.egp <- Engine.now ctx.eng)
      ~k:(fun v ->
        ev.Sim_trace.ecommit <- Engine.now ctx.eng;
        let stalled =
          max 0 (Engine.now ctx.eng - t0 - ctx.cfg.Sim_config.cache_hit)
        in
        let cause =
          match stall_field with
          | `Gp ->
              st.stall_sync_gp <- st.stall_sync_gp + stalled;
              cause_gp
          | `Acquire ->
              st.stall_acquire <- st.stall_acquire + stalled;
              cause_acquire
        in
        stall ctx proc ~cause ~loc ~cycles:stalled;
        op_span ctx proc ~name:"Sr" ~loc ~t0
          ~cause:(if stalled > 0 then cause else "");
        k v)
  in
  match ctx.policy with
  | Sc -> plain_read `Gp
  | Def1 ->
      let t0 = Engine.now ctx.eng in
      Proto.when_counter_zero ctx.proto proc (fun () ->
          let drained = Engine.now ctx.eng - t0 in
          st.stall_pre_sync <- st.stall_pre_sync + drained;
          stall ctx proc ~cause:cause_counter ~loc ~cycles:drained;
          plain_read `Gp)
  | Def2 | Def2_noresv ->
      (* Base implementation: all sync operations are treated as writes by
         the coherence protocol — even a Test acquires the line exclusive
         and is serialized (the Section 6 performance complaint). *)
      sync_modify ctx proc loc ~reads:true ~writes:false (fun v -> v) k
  | Def2_rs ->
      (* Refinement: a read-only sync is a coherent read; it honours
         reservations at the owner (acquire side) but places none. *)
      plain_read `Acquire

(* --- the interpreter -------------------------------------------------------- *)

let spin_delay ctx k =
  Engine.schedule ctx.eng ~delay:ctx.cfg.Sim_config.spin_interval k

let rec exec_op ctx proc op k =
  let st = ctx.stats.(proc) in
  match op with
  | Workload.Work n -> Engine.schedule ctx.eng ~delay:n k
  | Workload.Read { loc; tag } ->
      data_read ctx proc loc (fun v ->
          (match tag with Some tg -> observe ctx proc tg loc v | None -> ());
          k ())
  | Workload.Write { loc; value } -> data_write ctx proc loc value k
  | Workload.Sync_read { loc; tag } ->
      sync_read ctx proc loc (fun v ->
          (match tag with Some tg -> observe ctx proc tg loc v | None -> ());
          k ())
  | Workload.Sync_write { loc; value } ->
      sync_modify ctx proc loc ~reads:false ~writes:true (fun _ -> value)
        (fun _ -> k ())
  | Workload.Tas { loc; tag } ->
      sync_modify ctx proc loc ~reads:true ~writes:true (fun _ -> 1) (fun old ->
          (match tag with Some tg -> observe ctx proc tg loc old | None -> ());
          k ())
  | Workload.Fadd { loc; n } ->
      sync_modify ctx proc loc ~reads:true ~writes:true (fun v -> v + n)
        (fun _ -> k ())
  | Workload.Spin_until { loc; expect; sync } ->
      let rec iter () =
        st.spin_iters <- st.spin_iters + 1;
        let check v = if v = expect then k () else spin_delay ctx iter in
        if sync then sync_read ctx proc loc check
        else data_read ctx proc loc check
      in
      iter ()
  | Workload.Lock { loc } ->
      let rec attempt () =
        sync_modify ctx proc loc ~reads:true ~writes:true
          (fun v -> if v = 0 then 1 else v)
          (fun old ->
            if old = 0 then k ()
            else begin
              st.lock_retries <- st.lock_retries + 1;
              spin_delay ctx attempt
            end)
      in
      attempt ()
  | Workload.Unlock { loc } -> exec_op ctx proc (Workload.Sync_write { loc; value = 0 }) k

let rec exec_thread ctx proc ops k =
  match ops with
  | [] -> k ()
  | op :: rest -> exec_op ctx proc op (fun () -> exec_thread ctx proc rest k)
