(* Top-level simulator runs: wire a workload to the protocol under a
   policy, drain the event queue, and report statistics, observations and
   final memory values.

   This layer is also the watchdog.  A run can fail to make progress two
   ways: the event queue drains while a thread is still blocked (deadlock —
   e.g. a directory line wedged by a lost acknowledgement), or simulated
   time blows through the limit while events keep firing (livelock).
   Either way [run] raises [Wedged] with a diagnostic dump instead of
   hanging or returning a silently-truncated result; [try_run] converts
   every failure mode into a [failure] value for fault-injection campaigns
   that must survive hundreds of runs. *)

exception Wedged of string

type result = {
  policy : Cpu.policy;
  workload : string;
  total_cycles : int;  (** completion of the last thread *)
  proc_stats : Cpu.proc_stats array;
  observations : Cpu.obs list;  (** in observation order *)
  finals : (string * int) list;  (** settled value of every location touched *)
  messages : int;
  invalidations : int;
  deferrals : int;
  nacks : int;
  txn_timeouts : int;
  retransmits : int;
  dups_suppressed : int;
  reorders : int;
  sanitizer_checks : int;
  events : int;
  trace : Sim_trace.ev list;  (** per-operation trace, in generation order *)
  stalls : Obs.Stall.t;  (** stalled cycles by (proc, cause, location) *)
}

type failure =
  | Deadlock of string  (** queue drained with blocked threads; dump *)
  | Livelock of string  (** event limit exceeded; dump *)
  | Invariant of string  (** sanitizer violation; diagnostic *)

let locations_of workload =
  let add acc = function
    | Workload.Read { loc; _ }
    | Workload.Write { loc; _ }
    | Workload.Sync_read { loc; _ }
    | Workload.Sync_write { loc; _ }
    | Workload.Tas { loc; _ }
    | Workload.Fadd { loc; _ }
    | Workload.Spin_until { loc; _ }
    | Workload.Lock { loc }
    | Workload.Unlock { loc } ->
        loc :: acc
    | Workload.Work _ -> acc
  in
  let from_threads =
    List.concat_map (List.fold_left add []) workload.Workload.threads
  in
  List.sort_uniq String.compare
    (List.map fst workload.Workload.init @ from_threads)

let run ?cfg ?(limit = 10_000_000) ?(obs = Obs.null) ?(on_wedged = ignore)
    policy workload =
  let nprocs = Workload.num_threads workload in
  let cfg =
    match cfg with
    | Some c -> { c with Sim_config.nprocs }
    | None -> Sim_config.make ~nprocs ()
  in
  let eng = Engine.create ~batch:cfg.Sim_config.batch_events () in
  let stalls = Obs.Stall.create () in
  let proto = Proto.create ~init:workload.Workload.init ~obs ~stalls cfg eng in
  let sanitizer =
    if cfg.Sim_config.sanitize then Some (Sim_sanitizer.install proto)
    else None
  in
  let ctx =
    {
      Cpu.cfg;
      eng;
      proto;
      policy;
      stats = Array.init nprocs (fun _ -> Cpu.fresh_stats ());
      observations = [];
      trace = [];
      op_seq = Array.make nprocs 0;
      obs;
      stalls;
    }
  in
  let done_flags = Array.make nprocs false in
  List.iteri
    (fun p ops ->
      Engine.schedule eng ~delay:0 (fun () ->
          Cpu.exec_thread ctx p ops (fun () ->
              ctx.Cpu.stats.(p).Cpu.finish <- Engine.now eng;
              Proto.when_counter_zero proto p (fun () ->
                  ctx.Cpu.stats.(p).Cpu.drained <- Engine.now eng;
                  done_flags.(p) <- true))))
    workload.Workload.threads;
  (* [wedge] funnels every no-progress abort through the watchdog hook:
     callers running checkpointed campaigns dump a final checkpoint there
     before the exception unwinds the run. *)
  let wedge diag =
    on_wedged diag;
    raise (Wedged diag)
  in
  (try Engine.run ~limit eng with
  | Engine.Out_of_time ->
      wedge
        (Printf.sprintf
           "livelock: simulated time exceeded the %d-cycle limit with \
            events still firing\n%s"
           limit (Proto.dump proto))
  | Proto.Stuck diag -> wedge ("stuck: " ^ diag));
  (* The no-progress check: the event queue drained, so nothing can ever
     run again — any thread still blocked is deadlocked. *)
  if not (Array.for_all Fun.id done_flags) then begin
    let blocked =
      Array.to_seq done_flags |> Seq.mapi (fun p d -> (p, d))
      |> Seq.filter_map (fun (p, d) -> if d then None else Some (string_of_int p))
      |> List.of_seq |> String.concat ", "
    in
    wedge
      (Printf.sprintf
         "deadlock: event queue drained but thread(s) P%s never \
          completed/drained\n%s"
         blocked (Proto.dump proto))
  end;
  (* One final sweep at quiescence: with everything drained every line is
     quiescent, so the full directory/cache agreement check applies. *)
  Option.iter Sim_sanitizer.check sanitizer;
  let total_cycles =
    Array.fold_left (fun m s -> max m s.Cpu.finish) 0 ctx.Cpu.stats
  in
  let stats = Proto.stats proto in
  let nstats = Net.stats (Proto.net proto) in
  {
    policy;
    workload = workload.Workload.name;
    total_cycles;
    proc_stats = ctx.Cpu.stats;
    observations = List.rev ctx.Cpu.observations;
    finals =
      List.map (fun loc -> (loc, Proto.settled_value proto loc)) (locations_of workload);
    messages = stats.Proto.messages;
    invalidations = stats.Proto.invalidations;
    deferrals = stats.Proto.deferrals;
    nacks = stats.Proto.nacks;
    txn_timeouts = stats.Proto.txn_timeouts;
    retransmits = nstats.Net.retransmits;
    dups_suppressed = nstats.Net.dups_suppressed;
    reorders = nstats.Net.reorders;
    sanitizer_checks =
      (match sanitizer with Some s -> Sim_sanitizer.checks s | None -> 0);
    events = Engine.executed eng;
    trace = List.rev ctx.Cpu.trace;
    stalls;
  }

let try_run ?cfg ?limit ?obs ?on_wedged policy workload =
  match run ?cfg ?limit ?obs ?on_wedged policy workload with
  | r -> Ok r
  | exception Wedged d ->
      if String.length d >= 8 && String.sub d 0 8 = "livelock" then
        Error (Livelock d)
      else Error (Deadlock d)
  | exception Sim_sanitizer.Violation d -> Error (Invariant d)
  | exception Proto.Stuck d -> Error (Deadlock d)

let pp_failure ppf = function
  | Deadlock d -> Fmt.pf ppf "deadlock:@,%s" d
  | Livelock d -> Fmt.pf ppf "livelock:@,%s" d
  | Invariant d -> Fmt.pf ppf "invariant violation:@,%s" d

let failure_kind = function
  | Deadlock _ -> "deadlock"
  | Livelock _ -> "livelock"
  | Invariant _ -> "invariant"

(* The timing-invisibility gate artifact: everything an optimization must
   leave untouched, in one canonical string.  The normalized Chrome trace
   (total-sorted, so same-cycle recording order is invisible), the stall
   table (canonically sorted rows), the settled memory image and the total
   cycle count.  Engine event counts are deliberately excluded — they are
   the engine's cost metric and legitimately change under batching. *)
let golden_artifact ~obs r =
  let buf = Buffer.create 4096 in
  Obs.Chrome.to_buffer ~normalize:true buf (Obs.events obs);
  Buffer.add_string buf "\n=== stalls ===\n";
  Buffer.add_string buf (Fmt.str "%a" Obs.Stall.pp r.stalls);
  Buffer.add_string buf "\n=== finals ===\n";
  List.iter
    (fun (loc, v) -> Buffer.add_string buf (Printf.sprintf "%s=%d\n" loc v))
    r.finals;
  Buffer.add_string buf
    (Printf.sprintf "=== total_cycles ===\n%d\n" r.total_cycles);
  Buffer.contents buf

let observation result tag =
  List.find_opt (fun o -> String.equal o.Cpu.o_tag tag) result.observations
  |> Option.map (fun o -> o.Cpu.o_value)

let final result loc = List.assoc_opt loc result.finals

let pp_proc_stats ppf (p, s) =
  Fmt.pf ppf
    "P%d: finish=%d drained=%d pre-sync=%d sync-gp=%d acquire=%d read=%d \
     spins=%d retries=%d"
    p s.Cpu.finish s.Cpu.drained s.Cpu.stall_pre_sync s.Cpu.stall_sync_gp
    s.Cpu.stall_acquire s.Cpu.stall_read s.Cpu.spin_iters s.Cpu.lock_retries

let pp ppf r =
  Fmt.pf ppf "@[<v>%s under %s: %d cycles, %d msgs, %d invals, %d deferrals@,%a@]"
    r.workload (Cpu.policy_name r.policy) r.total_cycles r.messages
    r.invalidations r.deferrals
    Fmt.(list ~sep:cut pp_proc_stats)
    (Array.to_list (Array.mapi (fun i s -> (i, s)) r.proc_stats))
