(* Simulator parameters.  Latencies are in processor cycles.  Locations act
   as whole cache lines (one word per line: no false sharing), and caches
   are unbounded (no evictions — the paper expects reserve-bit flushes to
   be "fairly rare"; we make them impossible and say so in DESIGN.md). *)

(* Deliberate protocol mutations for testing the sanitizer and watchdog:
   each breaks exactly one protocol rule so the monitors must catch it. *)
type mutation =
  | No_mutation
  | Skip_invalidation
      (** sharers acknowledge invalidations without applying them: a stale
          shared copy survives a foreign write (breaks single-writer) *)
  | Forget_ack
      (** a sharer applies an invalidation but never acknowledges it: the
          directory waits forever (wedges the line) *)

type t = {
  nprocs : int;
  cache_hit : int;  (** latency of a local cache hit *)
  net : int;  (** one-way network hop latency (processor <-> directory) *)
  net_jitter : int;
      (** per-message deterministic latency variation in [0, net_jitter):
          a general interconnection network delivers messages with varying
          delays, so messages between the same endpoints may be reordered *)
  dir_occupancy : int;  (** directory processing time per message *)
  spin_interval : int;  (** cycles between spin-loop iterations *)
  (* --- the resilience layer ------------------------------------------- *)
  faults : Fault.profile option;
      (** inject seed-driven interconnect faults (see [lib/fault]) *)
  fault_seed : int;
  rto : int;
      (** base link-layer retransmission timeout; doubles per consecutive
          loss of the same message (exponential backoff) *)
  nack_threshold : int;
      (** a directory line busy longer than this NACKs newly arriving
          requests instead of queueing them *)
  nack_backoff : int;
      (** requester back-off after the first NACK; doubles per retry *)
  max_nacks : int;
      (** retries before a request is queued unconditionally (no
          starvation) *)
  txn_timeout : int;
      (** per-transaction deadline; extended (doubling) while the
          transport retries, escalating to a wedge report when exceeded
          [max_txn_extensions] times *)
  max_txn_extensions : int;
  sanitize : bool;  (** run the coherence sanitizer after every delivery *)
  mutation : mutation;  (** deliberate protocol bug, for monitor tests *)
  (* --- engine throughput (timing-invisible) ---------------------------- *)
  batch_events : bool;
      (** merge consecutive same-cycle schedules into one engine event
          cell; execution order (and so all timing) is unchanged *)
  park_spins : bool;
      (** park spinning processors on a line wakeup list instead of
          burning one event per spin interval; timing-invisible — gated
          by the golden timing fingerprints *)
  park_keepalive : int;
      (** while parked, a keepalive event fires every this many cycles so
          a never-woken spin still trips the livelock watchdog instead of
          reading as a drained-queue deadlock *)
}

let default =
  {
    nprocs = 2;
    cache_hit = 1;
    net = 20;
    net_jitter = 0;
    dir_occupancy = 4;
    spin_interval = 2;
    faults = None;
    fault_seed = 0;
    rto = 60;
    nack_threshold = 400;
    nack_backoff = 40;
    max_nacks = 4;
    txn_timeout = 5000;
    max_txn_extensions = 8;
    sanitize = true;
    mutation = No_mutation;
    batch_events = true;
    park_spins = true;
    park_keepalive = 4096;
  }

let make ?(nprocs = 2) ?(cache_hit = 1) ?(net = 20) ?(net_jitter = 0)
    ?(dir_occupancy = 4) ?(spin_interval = 2) ?faults ?(fault_seed = 0)
    ?(rto = 60) ?(nack_threshold = 400) ?(nack_backoff = 40) ?(max_nacks = 4)
    ?(txn_timeout = 5000) ?(max_txn_extensions = 8) ?(sanitize = true)
    ?(mutation = No_mutation) ?(batch_events = true) ?(park_spins = true)
    ?(park_keepalive = 4096) () =
  {
    nprocs;
    cache_hit;
    net;
    net_jitter;
    dir_occupancy;
    spin_interval;
    faults;
    fault_seed;
    rto;
    nack_threshold;
    nack_backoff;
    max_nacks;
    txn_timeout;
    max_txn_extensions;
    sanitize;
    mutation;
    batch_events;
    park_spins;
    park_keepalive;
  }

let pp ppf c =
  Fmt.pf ppf "nprocs=%d net=%d dir=%d hit=%d%a" c.nprocs c.net c.dir_occupancy
    c.cache_hit
    (fun ppf -> function
      | None -> ()
      | Some p -> Fmt.pf ppf " faults[seed=%d %a]" c.fault_seed Fault.pp_profile p)
    c.faults
