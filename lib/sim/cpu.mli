(** Processor issue policies interpreting workload threads over the
    coherence protocol. *)

type policy =
  | Sc
  | Def1
  | Def2
  | Def2_rs
  | Def2_noresv
      (** deliberately broken ablation: Section 5.3 without reserve bits;
          violates condition 5 (kept out of {!all_policies}) *)

val policy_name : policy -> string

val all_policies : policy list
(** The four correct policies. *)

val ablation_policies : policy list

type obs = {
  o_proc : int;
  o_tag : string;
  o_loc : string;
  o_value : int;
  o_time : int;
}

type proc_stats = {
  mutable finish : int;
  mutable drained : int;
  mutable stall_pre_sync : int;
      (** cycles waiting for the counter before a sync issues (Def1) *)
  mutable stall_sync_gp : int;
      (** cycles waiting for global performance after a sync (Def1/SC) *)
  mutable stall_acquire : int;
      (** cycles waiting for a sync to commit, incl. remote reservations *)
  mutable stall_read : int;
  mutable spin_iters : int;
  mutable lock_retries : int;
}

val fresh_stats : unit -> proc_stats

type ctx = {
  cfg : Sim_config.t;
  eng : Engine.t;
  proto : Proto.t;
  policy : policy;
  stats : proc_stats array;
  mutable observations : obs list;
  mutable trace : Sim_trace.ev list;
  op_seq : int array;
}

val exec_thread : ctx -> int -> Workload.op list -> (unit -> unit) -> unit
(** Run a thread's operations in order; the continuation fires when the
    last completes (by the policy's notion of completion). *)

(** {1 Per-operation wrappers}

    The policy-aware building blocks behind [exec_thread], exposed for
    other interpreters (e.g. [Sim_litmus], which runs [Prog.t] litmus
    tests on the timing simulator). *)

val data_read : ctx -> int -> string -> (int -> unit) -> unit
val data_write : ctx -> int -> string -> int -> (unit -> unit) -> unit

val sync_modify :
  ctx ->
  int ->
  string ->
  reads:bool ->
  writes:bool ->
  (int -> int) ->
  (int -> unit) ->
  unit
(** Synchronization RMW: acquire the line exclusive, apply the function;
    the continuation receives the old value when the policy lets the
    processor continue. *)

val sync_read : ctx -> int -> string -> (int -> unit) -> unit

val spin_delay : ctx -> (unit -> unit) -> unit
(** One spin-loop backoff interval. *)
