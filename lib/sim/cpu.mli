(** Processor issue policies interpreting workload threads over the
    coherence protocol.

    Each policy realizes one hardware strategy from the paper: [Sc] is
    Lamport-conservative hardware, [Def1] is Definition-1 weak ordering
    (stall the processor at every synchronization operation until its
    outstanding accesses drain), [Def2] is the Section 5.3 implementation
    (commit early, shift the wait to the next synchronizing processor via
    reserve bits), and [Def2_rs] adds the Section 6 read-only-sync
    refinement.  Every wrapper records the operation in the architectural
    trace, emits an {!Obs} lifecycle span, and attributes stalled cycles
    to a cause in the context's {!Obs.Stall} table. *)

type policy =
  | Sc
  | Def1
  | Def2
  | Def2_rs
  | Def2_noresv
      (** deliberately broken ablation: Section 5.3 without reserve bits;
          violates condition 5 (kept out of {!all_policies}) *)

val policy_name : policy -> string
(** Short CLI/bench spelling of a policy, e.g. ["def2-rs"]. *)

val all_policies : policy list
(** The four correct policies. *)

val ablation_policies : policy list
(** Deliberately broken variants, for sanitizer tests only. *)

(** {1 Stall-cause tags}

    The spellings used in the {!Obs.Stall} attribution table; shared
    constants so the bench, the CLI and the tests agree. *)

val cause_counter : string
(** ["counter-nonzero"]: Definition-1 condition 2 — waiting for the
    outstanding-access counter to drain before a sync issues. *)

val cause_gp : string
(** ["gp-wait"]: waiting for an operation to be globally performed
    (Definition-1 condition 3, and all of SC). *)

val cause_acquire : string
(** ["acquire"]: waiting for a sync to commit — line acquisition,
    including waits on remote reserve bits (Def2 condition 5). *)

val cause_read : string
(** ["read-miss"]: data-read latency beyond a cache hit. *)

type obs = {
  o_proc : int;  (** observing processor *)
  o_tag : string;  (** the workload's observation tag *)
  o_loc : string;  (** location read *)
  o_value : int;  (** value seen *)
  o_time : int;  (** cycle of the observation *)
}
(** A tagged value observation made by a workload read. *)

type proc_stats = {
  mutable finish : int;
  mutable drained : int;
  mutable stall_pre_sync : int;
      (** cycles waiting for the counter before a sync issues (Def1) *)
  mutable stall_sync_gp : int;
      (** cycles waiting for global performance after a sync (Def1/SC) *)
  mutable stall_acquire : int;
      (** cycles waiting for a sync to commit, incl. remote reservations *)
  mutable stall_read : int;
  mutable spin_iters : int;  (** spin-loop iterations executed *)
  mutable lock_retries : int;  (** failed lock acquisition attempts *)
}
(** Aggregate per-processor timing statistics. *)

val fresh_stats : unit -> proc_stats
(** All-zero statistics. *)

type ctx = {
  cfg : Sim_config.t;  (** latency model *)
  eng : Engine.t;  (** the discrete-event engine driving the run *)
  proto : Proto.t;  (** coherence protocol instance *)
  policy : policy;  (** issue policy for every processor *)
  stats : proc_stats array;  (** per-processor aggregates *)
  mutable observations : obs list;  (** tagged reads, newest first *)
  mutable trace : Sim_trace.ev list;  (** architectural trace, newest first *)
  op_seq : int array;  (** per-processor operation sequence numbers *)
  obs : Obs.t;  (** event tracer ({!Obs.null} to disable) *)
  stalls : Obs.Stall.t;  (** stall-cycle attribution table *)
}
(** Everything a processor model needs to interpret a thread. *)

val exec_thread : ctx -> int -> Workload.op list -> (unit -> unit) -> unit
(** Run a thread's operations in order; the continuation fires when the
    last completes (by the policy's notion of completion). *)

(** {1 Per-operation wrappers}

    The policy-aware building blocks behind [exec_thread], exposed for
    other interpreters (e.g. [Sim_litmus], which runs [Prog.t] litmus
    tests on the timing simulator). *)

val data_read : ctx -> int -> string -> (int -> unit) -> unit
(** [data_read ctx proc loc k]: an ordinary read; [k v] runs with the
    value once it returns (all policies block on data reads). *)

val data_write : ctx -> int -> string -> int -> (unit -> unit) -> unit
(** An ordinary write; SC waits for global performance, the weak
    policies continue one cycle after handing it to the memory system. *)

val sync_modify :
  ctx ->
  int ->
  string ->
  reads:bool ->
  writes:bool ->
  (int -> int) ->
  (int -> unit) ->
  unit
(** Synchronization RMW: acquire the line exclusive, apply the function;
    the continuation receives the old value when the policy lets the
    processor continue. *)

val sync_read : ctx -> int -> string -> (int -> unit) -> unit
(** A read-only synchronization operation — an exclusive acquisition
    under base Def2, a coherent read under [Def2_rs]. *)

val spin_delay : ctx -> (unit -> unit) -> unit
(** One spin-loop backoff interval. *)
