(** Running litmus programs ([Prog.t]) on the timing simulator.

    The same corpus that drives the abstract machines runs on the protocol
    simulator — under fault injection, the observed outcome must still be
    one the corresponding model allows. *)

type run = {
  final : Final.t;  (** settled memory + per-thread register files *)
  total_cycles : int;  (** completion cycle of the last thread *)
  messages : int;  (** protocol messages sent *)
  retransmits : int;  (** lost messages recovered by backoff *)
  nacks : int;  (** requests bounced off busy directory lines *)
  txn_timeouts : int;  (** transaction deadline extensions *)
  dups_suppressed : int;  (** duplicate deliveries discarded *)
  reorders : int;  (** messages buffered to restore per-line order *)
  sanitizer_checks : int;  (** invariant sweeps performed *)
  spin_iters : int;  (** spin-loop iterations across all threads *)
  stalls : Obs.Stall.t;  (** stalled cycles by (proc, cause, location) *)
}
(** What one simulated litmus run reports. *)

val run :
  ?cfg:Sim_config.t ->
  ?limit:int ->
  ?obs:Obs.t ->
  ?on_wedged:(string -> unit) ->
  Cpu.policy ->
  Prog.t ->
  run
(** Deterministic; [cfg.nprocs] is overridden by the program's thread
    count.  [obs] (default {!Obs.null}) receives the same event stream as
    {!Sim_run.run}: op spans, transactions, protocol instants, counter
    samples and fault marks.  [on_wedged] (default [ignore]) runs with
    the diagnostic just before {!Sim_run.Wedged} is raised — the hook
    checkpointed campaigns use to dump a final resume point.
    @raise Sim_run.Wedged on deadlock or livelock (with diagnostic dump)
    @raise Sim_sanitizer.Violation on a coherence-invariant violation *)

val try_run :
  ?cfg:Sim_config.t ->
  ?limit:int ->
  ?obs:Obs.t ->
  ?on_wedged:(string -> unit) ->
  Cpu.policy ->
  Prog.t ->
  (run, Sim_run.failure) result
(** [run] with every failure mode reified — for fault campaigns.  On
    failure the tracer passed as [obs] retains the events leading up to
    the wedge, so the campaign can dump the window around each injected
    fault. *)

val matches : Prog.t -> Final.t -> Final.t -> bool
(** Semantic outcome equality over the program's locations and assigned
    registers ([Final.compare] is structural on map bindings, so absent
    and zero bindings would spuriously differ). *)

val in_set : Prog.t -> Final.t -> Final.Set.t -> bool
(** [in_set prog f outcomes]: some outcome in the set semantically matches
    [f] — e.g. the simulator's outcome is among the SC outcomes. *)

val allowed_by_sc : Prog.t -> Final.t -> bool
(** [in_set] against the program's SC outcome set, enumerated once per
    program via {!Sc.outcomes_cached} — the membership check fault
    campaigns run per perturbed schedule. *)
