(** Running litmus programs ([Prog.t]) on the timing simulator.

    The same corpus that drives the abstract machines runs on the protocol
    simulator — under fault injection, the observed outcome must still be
    one the corresponding model allows. *)

type run = {
  final : Final.t;  (** settled memory + per-thread register files *)
  total_cycles : int;
  messages : int;
  retransmits : int;
  nacks : int;
  txn_timeouts : int;
  dups_suppressed : int;
  reorders : int;
  sanitizer_checks : int;
  spin_iters : int;
}

val run : ?cfg:Sim_config.t -> ?limit:int -> Cpu.policy -> Prog.t -> run
(** Deterministic; [cfg.nprocs] is overridden by the program's thread
    count.
    @raise Sim_run.Wedged on deadlock or livelock (with diagnostic dump)
    @raise Sim_sanitizer.Violation on a coherence-invariant violation *)

val try_run :
  ?cfg:Sim_config.t ->
  ?limit:int ->
  Cpu.policy ->
  Prog.t ->
  (run, Sim_run.failure) result
(** [run] with every failure mode reified — for fault campaigns. *)

val matches : Prog.t -> Final.t -> Final.t -> bool
(** Semantic outcome equality over the program's locations and assigned
    registers ([Final.compare] is structural on map bindings, so absent
    and zero bindings would spuriously differ). *)

val in_set : Prog.t -> Final.t -> Final.Set.t -> bool
(** [in_set prog f outcomes]: some outcome in the set semantically matches
    [f] — e.g. the simulator's outcome is among the SC outcomes. *)

val allowed_by_sc : Prog.t -> Final.t -> bool
(** [in_set] against the program's SC outcome set, enumerated once per
    program via {!Sc.outcomes_cached} — the membership check fault
    campaigns run per perturbed schedule. *)
