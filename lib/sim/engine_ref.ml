(* The original Map-based event engine, kept verbatim as the reference
   implementation for the heap engine's differential property test
   (test/test_engine.ml).  Do not optimize this module: its value is that
   it is obviously correct — a persistent map ordered by (time, seq) keys
   pops in exactly (time, insertion-order) sequence. *)

module Pq = Map.Make (struct
  type t = int * int (* time, sequence *)

  let compare = compare
end)

type t = {
  mutable now : int;
  mutable seq : int;
  mutable queue : (unit -> unit) Pq.t;
  mutable executed : int;
}

let create () = { now = 0; seq = 0; queue = Pq.empty; executed = 0 }

let now t = t.now

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  let key = (t.now + delay, t.seq) in
  t.seq <- t.seq + 1;
  t.queue <- Pq.add key f t.queue

let executed t = t.executed

exception Out_of_time

(* Run until the queue drains.  [limit] bounds simulated time as a safety
   net against livelock bugs (spinning processors reschedule themselves
   forever if the value they wait for never arrives). *)
let run ?(limit = 10_000_000) t =
  let continue = ref true in
  while !continue do
    match Pq.min_binding_opt t.queue with
    | None -> continue := false
    | Some (((time, _) as key), f) ->
        if time > limit then raise Out_of_time;
        t.queue <- Pq.remove key t.queue;
        t.now <- max t.now time;
        t.executed <- t.executed + 1;
        f ()
  done
