(** Reliable, per-line-ordered message transport over an unreliable wire.

    The protocol above this layer sees exactly-once, in-send-order delivery
    per line; underneath, the wire may spike latencies, lose attempts
    (recovered by retransmission with exponential backoff) and duplicate
    copies (discarded by sequence number), all driven by a deterministic
    seeded fault schedule.  With no fault profile configured the layer
    reproduces the seed simulator's timing exactly. *)

type t
(** One interconnect instance (all lines share it). *)

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable retransmits : int;  (** lost attempts recovered by backoff *)
  mutable dups_suppressed : int;  (** duplicate copies discarded by seq id *)
  mutable reorders : int;  (** messages held to restore per-line order *)
}
(** Transport-layer counters (independent of protocol statistics). *)

val create : ?obs:Obs.t -> Sim_config.t -> Engine.t -> t
(** A fresh transport over [eng] with the latency/fault model of [cfg].
    [obs] (default {!Obs.null}) receives a [fault]-category instant for
    every injected drop, delay spike or duplication. *)

val send : t -> line:string -> (unit -> unit) -> unit
(** Send a message concerning [line]; the thunk runs at the receiver when
    the message is (finally) delivered. *)

val line_quiescent : t -> string -> bool
(** No message concerning the line is still in flight. *)

val set_monitor : t -> (unit -> unit) -> unit
(** Install a hook that runs after each delivered message's effects —
    where the coherence sanitizer attaches. *)

val stats : t -> stats
(** The live counters (mutated as the run proceeds). *)

val fault_counts : t -> Fault.counts option
(** Injected-fault tallies, when a fault profile is configured. *)

val pp_stats : Format.formatter -> stats -> unit
(** One-line rendering of {!stats}. *)
