(** Reliable, per-line-ordered message transport over an unreliable wire.

    The protocol above this layer sees exactly-once, in-send-order delivery
    per line; underneath, the wire may spike latencies, lose attempts
    (recovered by retransmission with exponential backoff) and duplicate
    copies (discarded by sequence number), all driven by a deterministic
    seeded fault schedule.  With no fault profile configured the layer
    reproduces the seed simulator's timing exactly. *)

type t

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable retransmits : int;  (** lost attempts recovered by backoff *)
  mutable dups_suppressed : int;  (** duplicate copies discarded by seq id *)
  mutable reorders : int;  (** messages held to restore per-line order *)
}

val create : Sim_config.t -> Engine.t -> t

val send : t -> line:string -> (unit -> unit) -> unit
(** Send a message concerning [line]; the thunk runs at the receiver when
    the message is (finally) delivered. *)

val line_quiescent : t -> string -> bool
(** No message concerning the line is still in flight. *)

val set_monitor : t -> (unit -> unit) -> unit
(** Install a hook that runs after each delivered message's effects —
    where the coherence sanitizer attaches. *)

val stats : t -> stats
val fault_counts : t -> Fault.counts option
val pp_stats : Format.formatter -> stats -> unit
