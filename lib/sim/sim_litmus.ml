(* Run litmus programs ([Prog.t]) on the timing simulator.

   The abstract machines in [lib/machine] enumerate every outcome a model
   allows; the simulator executes one concrete schedule under a policy.
   This bridge interprets the litmus instruction set over the protocol so
   the same corpus drives both — in particular the fault-injection
   campaigns: a seeded fault schedule perturbs the interconnect, and the
   resulting outcome must still be one the model allows (for DRF0 programs
   under a weakly-ordered policy: an SC outcome).

   Interpretation notes:
   - threads are straight-line, so register environments are evaluated at
     issue time (all program-order-previous loads have completed by
     construction of the continuation chain);
   - every RMW executes as an exclusive-line atomic via [Cpu.sync_modify];
     a [Data]-kind RMW is timed the same way (the protocol has one RMW
     path) though the trace records it as synchronization;
   - [Fence] waits for the issuing processor's outstanding-access counter
     to read zero (the RP3 fence);
   - [Await]/[Lock] spin with the configured backoff interval. *)

module Smap = Exp.Smap

type run = {
  final : Final.t;
  total_cycles : int;
  messages : int;
  retransmits : int;
  nacks : int;
  txn_timeouts : int;
  dups_suppressed : int;
  reorders : int;
  sanitizer_checks : int;
  spin_iters : int;
  stalls : Obs.Stall.t;
}

let exec_instr ctx proc regs instr k =
  match instr with
  | Instr.Load { kind; loc; reg } ->
      let bind v =
        regs := Smap.add reg v !regs;
        k ()
      in
      (match kind with
      | Instr.Data -> Cpu.data_read ctx proc loc bind
      | Instr.Sync -> Cpu.sync_read ctx proc loc bind)
  | Instr.Store { kind; loc; value } -> (
      let v = Exp.eval !regs value in
      match kind with
      | Instr.Data -> Cpu.data_write ctx proc loc v k
      | Instr.Sync ->
          Cpu.sync_modify ctx proc loc ~reads:false ~writes:true
            (fun _ -> v)
            (fun _ -> k ()))
  | Instr.Rmw { kind = _; loc; reg; value } ->
      (* reg := mem[loc]; mem[loc] := value (which may mention reg) *)
      Cpu.sync_modify ctx proc loc ~reads:true ~writes:true
        (fun old -> Exp.eval (Smap.add reg old !regs) value)
        (fun old ->
          regs := Smap.add reg old !regs;
          k ())
  | Instr.Await { kind; loc; expect; reg } ->
      let rec iter () =
        ctx.Cpu.stats.(proc).Cpu.spin_iters <-
          ctx.Cpu.stats.(proc).Cpu.spin_iters + 1;
        let check v =
          if v = expect then begin
            (match reg with
            | Some r -> regs := Smap.add r v !regs
            | None -> ());
            k ()
          end
          else Cpu.spin_delay ctx iter
        in
        match kind with
        | Instr.Sync -> Cpu.sync_read ctx proc loc check
        | Instr.Data -> Cpu.data_read ctx proc loc check
      in
      iter ()
  | Instr.Lock { loc } ->
      let rec attempt () =
        Cpu.sync_modify ctx proc loc ~reads:true ~writes:true
          (fun v -> if v = 0 then 1 else v)
          (fun old ->
            if old = 0 then k ()
            else begin
              ctx.Cpu.stats.(proc).Cpu.lock_retries <-
                ctx.Cpu.stats.(proc).Cpu.lock_retries + 1;
              Cpu.spin_delay ctx attempt
            end)
      in
      attempt ()
  | Instr.Fence -> Proto.when_counter_zero ctx.Cpu.proto proc k

let rec exec_thread ctx proc regs instrs k =
  match instrs with
  | [] -> k ()
  | i :: rest -> exec_instr ctx proc regs i (fun () -> exec_thread ctx proc regs rest k)

let run ?cfg ?(limit = 10_000_000) ?(obs = Obs.null) ?(on_wedged = ignore)
    policy prog =
  let nprocs = Prog.num_threads prog in
  let cfg =
    match cfg with
    | Some c -> { c with Sim_config.nprocs }
    | None -> Sim_config.make ~nprocs ()
  in
  let eng = Engine.create () in
  let stalls = Obs.Stall.create () in
  let proto = Proto.create ~init:(Prog.init prog) ~obs ~stalls cfg eng in
  let sanitizer =
    if cfg.Sim_config.sanitize then Some (Sim_sanitizer.install proto)
    else None
  in
  let ctx =
    {
      Cpu.cfg;
      eng;
      proto;
      policy;
      stats = Array.init nprocs (fun _ -> Cpu.fresh_stats ());
      observations = [];
      trace = [];
      op_seq = Array.make nprocs 0;
      obs;
      stalls;
    }
  in
  let regs = Array.init nprocs (fun _ -> ref Smap.empty) in
  let done_flags = Array.make nprocs false in
  List.iteri
    (fun p instrs ->
      Engine.schedule eng ~delay:0 (fun () ->
          exec_thread ctx p regs.(p) instrs (fun () ->
              ctx.Cpu.stats.(p).Cpu.finish <- Engine.now eng;
              Proto.when_counter_zero proto p (fun () ->
                  ctx.Cpu.stats.(p).Cpu.drained <- Engine.now eng;
                  done_flags.(p) <- true))))
    (Prog.threads prog);
  (* As in [Sim_run]: the watchdog hook fires with the diagnostic before
     the abort unwinds, so checkpointed campaigns can dump a resume
     point. *)
  let wedge diag =
    on_wedged diag;
    raise (Sim_run.Wedged diag)
  in
  (try Engine.run ~limit eng with
  | Engine.Out_of_time ->
      wedge
        (Printf.sprintf
           "livelock: %s exceeded the %d-cycle limit with events still \
            firing\n%s"
           (Prog.name prog) limit (Proto.dump proto))
  | Proto.Stuck diag -> wedge ("stuck: " ^ diag));
  if not (Array.for_all Fun.id done_flags) then
    wedge
      (Printf.sprintf
         "deadlock: %s drained its event queue with blocked thread(s)\n%s"
         (Prog.name prog) (Proto.dump proto));
  Option.iter Sim_sanitizer.check sanitizer;
  let memory =
    List.fold_left
      (fun m loc -> Smap.add loc (Proto.settled_value proto loc) m)
      Smap.empty (Prog.locations prog)
  in
  let final = Final.make ~memory ~regs:(Array.map ( ! ) regs) in
  let stats = Proto.stats proto in
  let nstats = Net.stats (Proto.net proto) in
  {
    final;
    total_cycles =
      Array.fold_left (fun m s -> max m s.Cpu.finish) 0 ctx.Cpu.stats;
    messages = stats.Proto.messages;
    retransmits = nstats.Net.retransmits;
    nacks = stats.Proto.nacks;
    txn_timeouts = stats.Proto.txn_timeouts;
    dups_suppressed = nstats.Net.dups_suppressed;
    reorders = nstats.Net.reorders;
    sanitizer_checks =
      (match sanitizer with Some s -> Sim_sanitizer.checks s | None -> 0);
    spin_iters =
      Array.fold_left (fun a s -> a + s.Cpu.spin_iters) 0 ctx.Cpu.stats;
    stalls;
  }

let try_run ?cfg ?limit ?obs ?on_wedged policy prog =
  match run ?cfg ?limit ?obs ?on_wedged policy prog with
  | r -> Ok r
  | exception Sim_run.Wedged d ->
      if String.length d >= 8 && String.sub d 0 8 = "livelock" then
        Error (Sim_run.Livelock d)
      else Error (Sim_run.Deadlock d)
  | exception Sim_sanitizer.Violation d -> Error (Sim_run.Invariant d)
  | exception Proto.Stuck d -> Error (Sim_run.Deadlock d)

(* --- semantic outcome comparison ------------------------------------------- *)

(* [Final.compare] is structural on the underlying maps, so [{x=0}] and
   [{}] differ even though both mean "x reads 0".  Membership of a
   simulator outcome in a model's outcome set must therefore compare
   semantically: same value for every location the program mentions, and
   same value for every register the program assigns. *)

let registers_of prog =
  List.mapi
    (fun _ instrs -> List.filter_map Instr.target_register instrs)
    (Prog.threads prog)

let matches prog a b =
  List.for_all (fun loc -> Final.mem a loc = Final.mem b loc) (Prog.locations prog)
  && List.for_all2
       (fun p rs ->
         List.for_all (fun r -> Final.reg a p r = Final.reg b p r) rs)
       (List.init (Prog.num_threads prog) Fun.id)
       (registers_of prog)

let in_set prog f set = Final.Set.exists (matches prog f) set

(* Fault campaigns check every perturbed run against the same program's SC
   set; the process-wide cache enumerates it once per program. *)
let allowed_by_sc prog f = in_set prog f (Sc.outcomes_cached prog)
