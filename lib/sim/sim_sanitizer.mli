(** Runtime coherence sanitizer: checks protocol invariants after every
    protocol state change.

    Always: counters non-negative and equal to the in-flight transaction
    count; reserve bits only while the counter is positive; deferred
    queues drained at counter-zero.  On quiescent lines (no in-flight
    transaction, queued request or network message): single-writer /
    multiple-reader, and directory-vs-cache agreement.

    A violation aborts with {!Violation}, whose payload names the broken
    invariant and embeds the full diagnostic dump. *)

type t

exception Violation of string

val install : Proto.t -> t
(** Hook the sanitizer into the protocol's monitor slot; every delivered
    message triggers a sweep. *)

val check : t -> unit
(** Run one sweep explicitly (also usable at end of run). *)

val checks : t -> int
(** Number of sweeps performed. *)
