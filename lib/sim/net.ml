(* The interconnect: a reliable, per-line-ordered message layer built on an
   unreliable wire.

   The directory protocol (like real directory protocols without transient
   states) relies on messages about one line being delivered in send order,
   and on every message being delivered exactly once.  A general
   interconnection network guarantees neither, so this module implements
   the classic transport recipe on top of whatever the wire does:

   - every message gets a per-line sequence number (its transaction /
     message id);
   - the receiver delivers strictly in sequence order, holding early
     arrivals in a reorder buffer until the gap fills;
   - duplicated copies are recognized by their sequence number and
     discarded (idempotence);
   - lost attempts are recovered by retransmission with exponential
     backoff: a message dropped [k] times is re-sent after
     [rto * 2^k] cycles, so transient loss degrades latency instead of
     wedging the protocol.

   Faults come from a deterministic seed-driven schedule ([Fault]); with no
   fault profile configured the layer reduces to the seed simulator's
   behaviour exactly (fixed hop latency plus optional deterministic
   jitter, per-line delivery in send order). *)

type chan = {
  mutable next_send : int;  (** next sequence number to assign *)
  mutable next_deliver : int;  (** lowest sequence not yet delivered *)
  arrived : (int, unit -> unit) Hashtbl.t;  (** reorder buffer *)
  mutable undelivered : int;  (** sent but not yet handed to the protocol *)
  mutable last_time : int;  (** latest delivery time used on this line *)
}

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable retransmits : int;  (** lost attempts recovered by backoff *)
  mutable dups_suppressed : int;  (** duplicate copies discarded by seq id *)
  mutable reorders : int;  (** messages held to restore per-line order *)
}

type t = {
  cfg : Sim_config.t;
  eng : Engine.t;
  fault : Fault.t option;
  chans : (string, chan) Hashtbl.t;
  stats : stats;
  mutable on_delivery : unit -> unit;
      (** monitor hook, run after each delivered message's effects *)
  obs : Obs.t;
}

let create ?(obs = Obs.null) cfg eng =
  {
    cfg;
    eng;
    obs;
    fault =
      Option.map
        (fun profile -> Fault.create ~profile cfg.Sim_config.fault_seed)
        cfg.Sim_config.faults;
    chans = Hashtbl.create 16;
    stats =
      { sent = 0; delivered = 0; retransmits = 0; dups_suppressed = 0; reorders = 0 };
    on_delivery = (fun () -> ());
  }

let stats t = t.stats
let fault_counts t = Option.map Fault.counts t.fault
let set_monitor t f = t.on_delivery <- f

let chan_of t line =
  match Hashtbl.find_opt t.chans line with
  | Some c -> c
  | None ->
      let c =
        {
          next_send = 0;
          next_deliver = 0;
          arrived = Hashtbl.create 4;
          undelivered = 0;
          last_time = 0;
        }
      in
      Hashtbl.add t.chans line c;
      c

let line_quiescent t line =
  match Hashtbl.find_opt t.chans line with
  | None -> true
  | Some c -> c.undelivered = 0

(* Deliver everything at the head of the sequence.  Delivery times on one
   line are strictly increasing (the [last_time] floor), so events that
   raced through the network still commit in distinguishable cycles. *)
let rec drain t chan =
  match Hashtbl.find_opt chan.arrived chan.next_deliver with
  | None -> ()
  | Some f ->
      Hashtbl.remove chan.arrived chan.next_deliver;
      chan.next_deliver <- chan.next_deliver + 1;
      t.stats.delivered <- t.stats.delivered + 1;
      let now = Engine.now t.eng in
      let time = max now (chan.last_time + 1) in
      chan.last_time <- time;
      Engine.schedule t.eng ~delay:(time - now) (fun () ->
          chan.undelivered <- chan.undelivered - 1;
          f ();
          t.on_delivery ());
      drain t chan

(* An attempt of message [seq] reaches the receiver. *)
let arrive t chan seq f =
  if seq < chan.next_deliver || Hashtbl.mem chan.arrived seq then
    t.stats.dups_suppressed <- t.stats.dups_suppressed + 1
  else begin
    Hashtbl.add chan.arrived seq f;
    if seq > chan.next_deliver then t.stats.reorders <- t.stats.reorders + 1;
    drain t chan
  end

(* Cumulative backoff before the attempt that finally gets through: a
   message lost [drops] times is retransmitted after rto, 2*rto, 4*rto, ... *)
let drop_penalty t drops =
  let rec sum k acc =
    if k >= drops then acc else sum (k + 1) (acc + (t.cfg.Sim_config.rto lsl k))
  in
  sum 0 0

let send t ~line f =
  let chan = chan_of t line in
  let seq = chan.next_send in
  chan.next_send <- seq + 1;
  chan.undelivered <- chan.undelivered + 1;
  t.stats.sent <- t.stats.sent + 1;
  let jitter =
    let j = t.cfg.Sim_config.net_jitter in
    if j <= 0 then 0 else t.stats.sent * 2654435761 land 0x3FFFFFFF mod j
  in
  let decision =
    match t.fault with None -> Fault.benign | Some fl -> Fault.decide fl
  in
  (* Injected faults are worth a mark in the trace: the campaign dumps
     the event window around each one when a run fails. *)
  if decision.Fault.drops > 0 then
    Obs.instant t.obs ~cat:"fault" ~name:"drop" ~tid:0
      ~ts:(Engine.now t.eng) ~loc:line ~cause:"injected";
  if decision.Fault.extra_delay > 0 then
    Obs.instant t.obs ~cat:"fault" ~name:"spike" ~tid:0
      ~ts:(Engine.now t.eng) ~loc:line ~cause:"injected";
  if decision.Fault.duplicate then
    Obs.instant t.obs ~cat:"fault" ~name:"dup" ~tid:0
      ~ts:(Engine.now t.eng) ~loc:line ~cause:"injected";
  t.stats.retransmits <- t.stats.retransmits + decision.Fault.drops;
  let flight =
    t.cfg.Sim_config.net + jitter + decision.Fault.extra_delay
    + drop_penalty t decision.Fault.drops
  in
  Engine.schedule t.eng ~delay:flight (fun () -> arrive t chan seq f);
  if decision.Fault.duplicate then
    (* A redundant copy takes its own path through the network; the
       sequence number identifies it for dedup at the receiver. *)
    Engine.schedule t.eng
      ~delay:(flight + 1 + (t.cfg.Sim_config.net / 2))
      (fun () -> arrive t chan seq f)

let pp_stats ppf s =
  Fmt.pf ppf "sent=%d delivered=%d retransmits=%d dups=%d reorders=%d" s.sent
    s.delivered s.retransmits s.dups_suppressed s.reorders
