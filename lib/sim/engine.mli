(** Deterministic discrete-event simulation engine.

    A priority queue of thunks keyed on simulated time; same-cycle events
    run in insertion order, so a run is a pure function of the scheduled
    work — the determinism every golden-trace and differential test in
    the repository leans on. *)

type t
(** An event queue with a clock. *)

val create : unit -> t
(** A fresh engine at cycle 0 with an empty queue. *)

val now : t -> int
(** The current simulated cycle. *)

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** Run the thunk [delay] cycles from now; ties run in insertion order.
    @raise Invalid_argument on negative delay. *)

val executed : t -> int
(** Number of events executed so far. *)

exception Out_of_time
(** Raised by {!run} when the clock passes its limit. *)

val run : ?limit:int -> t -> unit
(** Drain the queue.
    @raise Out_of_time if simulated time exceeds [limit] (default 10^7) —
    the safety net against livelock. *)
