(** Deterministic discrete-event simulation engine.

    A priority queue of thunks keyed on simulated time; same-cycle events
    run in insertion order, so a run is a pure function of the scheduled
    work — the determinism every golden-trace and differential test in
    the repository leans on.

    The queue is an array-based binary min-heap of event cells.  With
    batching on (the default), consecutive schedules targeting the same
    cycle merge into one cell — one heap operation for a whole same-cycle
    burst — without changing execution order.  {!Engine_ref} keeps the
    original persistent-map implementation as the differential-test
    reference. *)

type t
(** An event queue with a clock. *)

val create : ?batch:bool -> unit -> t
(** A fresh engine at cycle 0 with an empty queue.  [batch] (default
    [true]) merges consecutive same-cycle schedules into one event cell;
    execution order is identical either way, only {!executed} and
    {!merged} accounting differs. *)

val now : t -> int
(** The current simulated cycle. *)

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** Run the thunk [delay] cycles from now; ties run in insertion order.
    @raise Invalid_argument on negative delay. *)

type handle
(** A cancellable scheduled event. *)

val schedule_cancellable : t -> delay:int -> (unit -> unit) -> handle
(** Like {!schedule}, but returns a handle for {!cancel}.  The event never
    merges with batched neighbours (cancellation must affect exactly one
    thunk), so reserve it for rare control events — the spin-parking
    keepalive — not hot-path traffic.
    @raise Invalid_argument on negative delay. *)

val cancel : handle -> unit
(** Drop the event: when its turn comes it is discarded without running,
    without advancing the clock, and without counting in {!executed} — as
    if it had never been scheduled.  Idempotent; a no-op after the event
    has already run. *)

val executed : t -> int
(** Number of event cells executed so far.  With batching off, exactly
    the number of thunks run ({!Engine_ref.executed} parity). *)

val merged : t -> int
(** Number of thunks that were batched into an already-scheduled cell
    instead of costing their own heap operation.  Thunks run =
    [executed + merged] once the queue drains. *)

val running_since : t -> int
(** The clock value at which the currently-executing event cell was
    {e created} (0 before the first pop).  Lets same-cycle observers
    order themselves against the event that scheduled them — used by the
    spin-parking wake tie-break. *)

exception Out_of_time
(** Raised by {!run} when the clock passes its limit. *)

val run : ?limit:int -> t -> unit
(** Drain the queue.
    @raise Out_of_time if simulated time exceeds [limit] (default 10^7) —
    the safety net against livelock. *)
