(** The original [Map]-based event engine, kept as the reference
    implementation for {!Engine}'s differential property test.

    Same contract as {!Engine} (minus batching): thunks keyed on
    [(time, seq)] in a persistent map, popped in key order — same-cycle
    events run in insertion order.  O(log n) per operation and
    allocation-heavy, which is why {!Engine} replaced it on the hot path;
    obviously correct, which is why it survives here. *)

type t
(** An event queue with a clock. *)

val create : unit -> t
(** A fresh engine at cycle 0 with an empty queue. *)

val now : t -> int
(** The current simulated cycle. *)

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** Run the thunk [delay] cycles from now; ties run in insertion order.
    @raise Invalid_argument on negative delay. *)

val executed : t -> int
(** Number of events executed so far. *)

exception Out_of_time
(** Raised by {!run} when the clock passes its limit. *)

val run : ?limit:int -> t -> unit
(** Drain the queue.
    @raise Out_of_time if simulated time exceeds [limit] (default 10^7) —
    the safety net against livelock. *)
