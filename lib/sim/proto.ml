(* The cache-coherence substrate of Sections 5.2–5.3: a directory-based,
   write-back invalidation protocol over a general interconnection network.

   - Every processor has a private cache (unbounded: locations are lines,
     one word per line, no evictions).
   - The directory keeps a full map per line (Uncached / Shared sharers /
     Exclusive owner) and serializes transactions per line.
   - On a write miss to a Shared line, the data is forwarded to the
     requester *in parallel* with the invalidations (the paper's protocol);
     invalidation acks return to the directory, which then sends its ack to
     the writer: the write *commits* when it modifies the local copy and is
     *globally performed* when the directory's ack arrives.
   - Every processor keeps the RP3-style counter of outstanding accesses:
     incremented on a miss; decremented when a read's line arrives, when a
     write's line arrives already exclusive (no other copies), or when the
     directory's ack arrives for a write to a previously-shared line.
   - Reserve bits (Section 5.3): a policy may reserve a line after
     committing a synchronization operation while the counter is positive.
     While a line is reserved its owner defers all foreign requests for it
     until the counter reads zero (the paper keeps reserved lines from
     being flushed; we defer service, which subsumes that).  All reserve
     bits clear when the counter reads zero — the paper's coarse rule —
     and, more precisely, each reservation clears as soon as the accesses
     that were outstanding when it was placed (the sync's *previous*
     accesses) have globally performed; the deferred queue is then
     serviced — the paper's "queue of stalled requests".  The refinement
     matters for liveness: two processors alternating sync operations on
     each other's reserved lines (dekker, iriw, all-sync variants) would
     otherwise defer each other forever.

   Resilience (this file plus [Net] and [Sim_sanitizer]): messages travel
   over a transport that survives injected faults — loss (retransmission
   with exponential backoff), duplication (sequence-number dedup) and
   arbitrary delay (per-line reorder buffering).  Above that, every miss is
   a tracked *transaction* with a deadline that escalates to a wedge report
   ([Stuck]) instead of hanging silently, and a directory line that stays
   busy too long NACKs newly arriving requests so the requester retries
   with backoff rather than queueing behind a stall.  A bounded journal of
   recent protocol events feeds the diagnostic dump. *)

module Smap = Exp.Smap

exception Stuck of string
(** A transaction exceeded its escalated deadline: the protocol is wedged.
    The payload is a full diagnostic dump. *)

type line_state = I | S | M

type line = {
  mutable lstate : line_state;
  mutable lvalue : int;
  mutable reserved : bool;
  mutable resv_deps : Iset.t;
      (** transactions that were outstanding when the reservation was
          placed (the accesses *previous* to the reserving sync, in the
          sense of Section 5.1); the reservation clears when they have all
          globally performed — Section 5.3's counter-zero rule is the
          coarse version and remains as a backstop, but clearing per
          reservation keeps sync-heavy programs (dekker, iriw with sync
          accesses) from deadlocking on mutual reservations *)
  mutable gp_waiters : (unit -> unit) list option;
      (** [Some ws] while a write to this line by its current owner is not
          yet globally performed; [None] otherwise.  Readers of the line
          (the owner reading its own dirty copy) are globally performed
          only once the write is — the paper's definition of a read being
          globally performed. *)
}

type dir_state = Uncached | Shared of Iset.t | Exclusive of int

type dentry = {
  mutable dstate : dir_state;
  mutable mem : int;
  mutable busy : bool;
  mutable busy_since : int;
      (** when the transaction now holding the line started *)
  waiting : (unit -> unit) Queue.t;  (** requests serialized per line *)
}

type pstate = {
  lines : (string, line) Hashtbl.t;
  mutable counter : int;
  mutable zero_waiters : (unit -> unit) list;
  inflight : (string, (unit -> unit) Queue.t) Hashtbl.t;
      (** lines with an outstanding transaction; queued thunks retry after
          the line arrives *)
  deferred : (string, (int * (unit -> unit)) Queue.t) Hashtbl.t;
      (** foreign requests deferred by reserved lines, per line; the int is
          a global arrival stamp so a drain-all services them in arrival
          order across lines *)
  mutable deferred_n : int;  (** total deferred requests, across lines *)
  mutable defer_seq : int;  (** next arrival stamp *)
  mutable open_txns : Iset.t;
      (** this processor's in-flight transaction ids — the set a new
          reservation depends on, maintained here so placing a reservation
          does not scan the global transaction table *)
  mutable reserved_lines : (string * line) list;
      (** lines currently reserved, in reservation order — so clearing
          reservations (per transaction close, or all at counter zero)
          does not scan the whole cache *)
  mutable watcher : (string * (unit -> unit)) option;
      (** a parked spinner's wakeup: runs synchronously when a foreign
          request changes the state of this processor's copy of the line
          (invalidation or downgrade).  At most one — a processor spins on
          one location at a time *)
}

(* A tracked miss: from issue until the access is globally performed.  The
   transport retransmits individual messages; this is the end-to-end
   safety net (and the NACK retry counter). *)
type txn = {
  txid : int;
  tproc : int;
  tloc : string;
  twrite : bool;
  tstart : int;
  mutable topen : bool;
  mutable tnacks : int;
  mutable textensions : int;
}

type stats = {
  mutable messages : int;
  mutable invalidations : int;
  mutable deferrals : int;  (** requests delayed by a reserve bit *)
  mutable nacks : int;  (** requests bounced off a busy directory line *)
  mutable txn_timeouts : int;  (** transaction deadline extensions *)
}

type t = {
  cfg : Sim_config.t;
  eng : Engine.t;
  net : Net.t;
  procs : pstate array;
  dir : (string, dentry) Hashtbl.t;
  init : int Smap.t;
  stats : stats;
  txns : (int, txn) Hashtbl.t;
  mutable next_txid : int;
  journal : string Queue.t;  (** bounded tail of protocol events *)
  obs : Obs.t;
  stalls : Obs.Stall.t;
}

(* Stall-cause tags owned by the protocol layer (the processor-side tags
   live in [Cpu], which depends on this module). *)
let cause_nack = "nack-retry"
let cause_reserve = "reserve-bit"

let journal_cap = 64

let journal t fmt =
  Format.kasprintf
    (fun s ->
      if Queue.length t.journal >= journal_cap then ignore (Queue.pop t.journal);
      Queue.add (Printf.sprintf "[%6d] %s" (Engine.now t.eng) s) t.journal)
    fmt

let create ?(init = []) ?(obs = Obs.null) ?(stalls = Obs.Stall.create ()) cfg
    eng =
  {
    cfg;
    eng;
    net = Net.create ~obs cfg eng;
    procs =
      Array.init cfg.Sim_config.nprocs (fun _ ->
          {
            lines = Hashtbl.create 16;
            counter = 0;
            zero_waiters = [];
            inflight = Hashtbl.create 4;
            deferred = Hashtbl.create 4;
            deferred_n = 0;
            defer_seq = 0;
            open_txns = Iset.empty;
            reserved_lines = [];
            watcher = None;
          });
    dir = Hashtbl.create 16;
    init = List.fold_left (fun m (l, v) -> Smap.add l v m) Smap.empty init;
    stats =
      { messages = 0; invalidations = 0; deferrals = 0; nacks = 0; txn_timeouts = 0 };
    txns = Hashtbl.create 16;
    next_txid = 0;
    journal = Queue.create ();
    obs;
    stalls;
  }

let stats t = t.stats
let net t = t.net
let counter t p = t.procs.(p).counter
let nprocs t = t.cfg.Sim_config.nprocs

let set_monitor t f = Net.set_monitor t.net f

(* --- line watchers (spin parking) ------------------------------------------ *)

let watch_line t ~proc ~loc f = t.procs.(proc).watcher <- Some (loc, f)

let unwatch_line t ~proc ~loc:_ = t.procs.(proc).watcher <- None

(* A foreign request just changed P[proc]'s copy of [loc] (invalidation or
   downgrade): fire the parked spinner's wakeup, synchronously — the waker
   runs inside the delivery event, so [Engine.running_since] tells it how
   the mutation ordered against same-cycle spin iterations. *)
let notify_line t proc loc =
  match t.procs.(proc).watcher with
  | Some (l, f) when String.equal l loc -> f ()
  | Some _ | None -> ()

let line_of t p loc =
  let ps = t.procs.(p) in
  match Hashtbl.find_opt ps.lines loc with
  | Some l -> l
  | None ->
      let l =
        {
          lstate = I;
          lvalue = 0;
          reserved = false;
          resv_deps = Iset.empty;
          gp_waiters = None;
        }
      in
      Hashtbl.add ps.lines loc l;
      l

let dentry_of t loc =
  match Hashtbl.find_opt t.dir loc with
  | Some d -> d
  | None ->
      let mem = match Smap.find_opt loc t.init with Some v -> v | None -> 0 in
      let d =
        {
          dstate = Uncached;
          mem;
          busy = false;
          busy_since = 0;
          waiting = Queue.create ();
        }
      in
      Hashtbl.add t.dir loc d;
      d

(* A network hop, via the reliable transport (sequence numbers, reorder
   buffering, retransmission, dedup — see [Net]).  Messages concerning one
   line are delivered in send order; the protocol (like real directory
   protocols without transient states) relies on that. *)
let send t loc f =
  t.stats.messages <- t.stats.messages + 1;
  Net.send t.net ~line:loc f

let after_hit t f = Engine.schedule t.eng ~delay:t.cfg.Sim_config.cache_hit f

(* Run [k] once every write to this line is globally performed
   (immediately if none is pending). *)
let when_line_gp t l k =
  match l.gp_waiters with
  | None -> Engine.schedule t.eng ~delay:0 k
  | Some ws -> l.gp_waiters <- Some (k :: ws)

let resolve_line_gp t l =
  match l.gp_waiters with
  | None -> ()
  | Some ws ->
      l.gp_waiters <- None;
      List.iter (fun k -> Engine.schedule t.eng ~delay:0 k) (List.rev ws)

(* --- diagnostics ----------------------------------------------------------- *)

let pp_line_state ppf = function
  | I -> Fmt.string ppf "I"
  | S -> Fmt.string ppf "S"
  | M -> Fmt.string ppf "M"

let pp_dir_state ppf = function
  | Uncached -> Fmt.string ppf "Uncached"
  | Shared s ->
      Fmt.pf ppf "Shared{%a}" Fmt.(list ~sep:comma int) (Iset.elements s)
  | Exclusive p -> Fmt.pf ppf "Exclusive P%d" p

let dump t =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Fmt.pf ppf "=== protocol diagnostic dump (t=%d) ===@." (Engine.now t.eng);
  Fmt.pf ppf "directory:@.";
  let dirs =
    Hashtbl.fold (fun loc d acc -> (loc, d) :: acc) t.dir []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (loc, d) ->
      Fmt.pf ppf "  %-8s %a mem=%d%s%s@." loc pp_dir_state d.dstate d.mem
        (if d.busy then
           Printf.sprintf " BUSY(since=%d, for %d)" d.busy_since
             (Engine.now t.eng - d.busy_since)
         else "")
        (if Queue.is_empty d.waiting then ""
         else Printf.sprintf " queued=%d" (Queue.length d.waiting)))
    dirs;
  Fmt.pf ppf "caches:@.";
  Array.iteri
    (fun p ps ->
      Fmt.pf ppf "  P%d: counter=%d deferred=%d zero-waiters=%d@." p ps.counter
        ps.deferred_n
        (List.length ps.zero_waiters);
      let lines =
        Hashtbl.fold (fun loc l acc -> (loc, l) :: acc) ps.lines []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter
        (fun (loc, l) ->
          if l.lstate <> I || l.reserved then
            Fmt.pf ppf "    %-8s %a=%d%s%s@." loc pp_line_state l.lstate
              l.lvalue
              (if l.reserved then
                 Printf.sprintf " RESERVED{deps=%s}"
                   (String.concat ","
                      (List.map string_of_int (Iset.elements l.resv_deps)))
               else "")
              (match l.gp_waiters with
              | Some ws -> Printf.sprintf " gp-pending(%d)" (List.length ws)
              | None -> ""))
        lines)
    t.procs;
  let opened = Hashtbl.fold (fun _ tx acc -> tx :: acc) t.txns [] in
  Fmt.pf ppf "in-flight transactions (%d):@." (List.length opened);
  List.iter
    (fun tx ->
      Fmt.pf ppf "  txn %d: P%d %s %s, started=%d (age %d), nacks=%d, \
                  deadline extensions=%d@."
        tx.txid tx.tproc
        (if tx.twrite then "write" else "read")
        tx.tloc tx.tstart
        (Engine.now t.eng - tx.tstart)
        tx.tnacks tx.textensions)
    (List.sort (fun a b -> compare a.txid b.txid) opened);
  Fmt.pf ppf "transport: %a@." Net.pp_stats (Net.stats t.net);
  (match Net.fault_counts t.net with
  | Some c -> Fmt.pf ppf "injected faults: %a@." Fault.pp_counts c
  | None -> ());
  Fmt.pf ppf "recent protocol events (oldest first):@.";
  Queue.iter (fun line -> Fmt.pf ppf "  %s@." line) t.journal;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* --- introspection (for the sanitizer) -------------------------------------- *)

type line_view = { lv_state : line_state; lv_value : int; lv_reserved : bool }

let dir_lines t =
  Hashtbl.fold (fun loc d acc -> (loc, d.dstate) :: acc) t.dir []

let cached_lines t p =
  Hashtbl.fold
    (fun loc l acc ->
      (loc, { lv_state = l.lstate; lv_value = l.lvalue; lv_reserved = l.reserved })
      :: acc)
    t.procs.(p).lines []

let memory_value t loc = (dentry_of t loc).mem

let deferred_count t p = t.procs.(p).deferred_n

let open_txns t =
  Hashtbl.fold (fun _ tx acc -> (tx.txid, tx.tproc, tx.tloc) :: acc) t.txns []

let line_quiescent t loc =
  (match Hashtbl.find_opt t.dir loc with
  | None -> true
  | Some d -> (not d.busy) && Queue.is_empty d.waiting)
  && Net.line_quiescent t.net loc
  && Array.for_all (fun ps -> not (Hashtbl.mem ps.inflight loc)) t.procs

(* --- transactions ------------------------------------------------------------ *)

let open_txn t ~proc ~loc ~write =
  let txid = t.next_txid in
  t.next_txid <- txid + 1;
  let tx =
    {
      txid;
      tproc = proc;
      tloc = loc;
      twrite = write;
      tstart = Engine.now t.eng;
      topen = true;
      tnacks = 0;
      textensions = 0;
    }
  in
  Hashtbl.add t.txns txid tx;
  t.procs.(proc).open_txns <- Iset.add txid t.procs.(proc).open_txns;
  journal t "P%d %s miss on %s -> txn %d" proc
    (if write then "write" else "read")
    loc txid;
  (* The end-to-end deadline: while the transport is still retrying the
     deadline extends with exponential backoff; a transaction that blows
     through every extension is wedged, and we say so loudly instead of
     spinning forever. *)
  let rec watch delay =
    Engine.schedule t.eng ~delay (fun () ->
        if tx.topen then begin
          t.stats.txn_timeouts <- t.stats.txn_timeouts + 1;
          tx.textensions <- tx.textensions + 1;
          journal t "txn %d deadline passed (extension %d, next in %d)"
            tx.txid tx.textensions (delay * 2);
          if tx.textensions > t.cfg.Sim_config.max_txn_extensions then
            raise
              (Stuck
                 (Printf.sprintf
                    "transaction %d (P%d %s %s) exceeded its deadline after \
                     %d extensions\n%s"
                    tx.txid tx.tproc
                    (if tx.twrite then "write" else "read")
                    tx.tloc tx.textensions (dump t)))
          else watch (delay * 2)
        end)
  in
  watch t.cfg.Sim_config.txn_timeout;
  tx

(* Release the deferred foreign requests for [loc] held at [proc]. *)
let release_deferred t proc loc =
  let ps = t.procs.(proc) in
  match Hashtbl.find_opt ps.deferred loc with
  | None -> ()
  | Some q ->
      Hashtbl.remove ps.deferred loc;
      ps.deferred_n <- ps.deferred_n - Queue.length q;
      Queue.iter (fun (_, k) -> Engine.schedule t.eng ~delay:0 k) q

let close_txn t tx =
  tx.topen <- false;
  Hashtbl.remove t.txns tx.txid;
  let ps = t.procs.(tx.tproc) in
  ps.open_txns <- Iset.remove tx.txid ps.open_txns;
  Obs.span t.obs ~cat:"txn"
    ~name:(if tx.twrite then "GetX" else "GetS")
    ~tid:tx.tproc ~ts:tx.tstart
    ~dur:(Engine.now t.eng - tx.tstart)
    ~loc:tx.tloc ~cause:(if tx.tnacks > 0 then cause_nack else "");
  (* Reservations placed while this access was outstanding may now have
     seen all their previous accesses globally performed: clear them (and
     service their stalled requests) as soon as that happens, rather than
     waiting for the full counter to read zero — mutual reservations
     between sync-heavy processors would otherwise never drain.  Only the
     registered reserved lines are visited, not the whole cache. *)
  if ps.reserved_lines <> [] then begin
    List.iter
      (fun (loc, l) ->
        if l.reserved && Iset.mem tx.txid l.resv_deps then begin
          l.resv_deps <- Iset.remove tx.txid l.resv_deps;
          if Iset.is_empty l.resv_deps then begin
            l.reserved <- false;
            release_deferred t tx.tproc loc
          end
        end)
      ps.reserved_lines;
    ps.reserved_lines <-
      List.filter (fun (_, l) -> l.reserved) ps.reserved_lines
  end

(* --- counter maintenance -------------------------------------------------- *)

let sample_counter t p =
  Obs.counter t.obs ~cat:"proto" ~name:"outstanding" ~tid:p
    ~ts:(Engine.now t.eng) ~value:t.procs.(p).counter

let incr_counter t p =
  t.procs.(p).counter <- t.procs.(p).counter + 1;
  sample_counter t p

let decr_counter t p =
  let ps = t.procs.(p) in
  if ps.counter <= 0 then
    raise
      (Stuck
         (Printf.sprintf "counter underflow at P%d\n%s" p (dump t)));
  ps.counter <- ps.counter - 1;
  sample_counter t p;
  if ps.counter = 0 then begin
    (* All reserve bits are reset when the counter reads zero... *)
    List.iter
      (fun (_, l) ->
        l.reserved <- false;
        l.resv_deps <- Iset.empty)
      ps.reserved_lines;
    ps.reserved_lines <- [];
    (* ...pending processor stalls resume... *)
    let ws = ps.zero_waiters in
    ps.zero_waiters <- [];
    List.iter (fun k -> Engine.schedule t.eng ~delay:0 k) ws;
    (* ...and the queue of stalled foreign requests is serviced, in
       arrival order across lines (the global stamps). *)
    if ps.deferred_n > 0 then begin
      let ds =
        Hashtbl.fold
          (fun _ q acc -> Queue.fold (fun acc d -> d :: acc) acc q)
          ps.deferred []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      Hashtbl.reset ps.deferred;
      ps.deferred_n <- 0;
      List.iter (fun (_, k) -> Engine.schedule t.eng ~delay:0 k) ds
    end
  end

let when_counter_zero t p k =
  let ps = t.procs.(p) in
  if ps.counter = 0 then Engine.schedule t.eng ~delay:0 k
  else ps.zero_waiters <- k :: ps.zero_waiters

let reserve_if_outstanding t ~proc ~loc =
  let ps = t.procs.(proc) in
  if ps.counter > 0 then begin
    let l = line_of t proc loc in
    if not l.reserved then ps.reserved_lines <- ps.reserved_lines @ [ (loc, l) ];
    l.reserved <- true;
    Obs.instant t.obs ~cat:"proto" ~name:"reserve" ~tid:proc
      ~ts:(Engine.now t.eng) ~loc ~cause:"";
    (* The accesses previous to this sync that are not yet globally
       performed: exactly the processor's open transactions right now
       (later accesses have not issued yet — threads are driven by
       continuations). *)
    l.resv_deps <- ps.open_txns
  end

(* Defer a foreign request for [loc] at [owner] until the reservation
   clears (its previous accesses globally perform, or the counter reads
   zero). *)
let defer t owner loc k =
  t.stats.deferrals <- t.stats.deferrals + 1;
  journal t "foreign request for %s deferred at P%d (reserved line)" loc owner;
  let ps = t.procs.(owner) in
  if ps.counter = 0 then Engine.schedule t.eng ~delay:0 k
  else begin
    let q =
      match Hashtbl.find_opt ps.deferred loc with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.add ps.deferred loc q;
          q
    in
    Queue.add (ps.defer_seq, k) q;
    ps.defer_seq <- ps.defer_seq + 1;
    ps.deferred_n <- ps.deferred_n + 1
  end

(* --- directory -------------------------------------------------------------- *)

let dir_next t loc =
  let d = dentry_of t loc in
  match Queue.take_opt d.waiting with
  | None -> d.busy <- false
  | Some req ->
      d.busy <- true;
      d.busy_since <- Engine.now t.eng;
      Engine.schedule t.eng ~delay:t.cfg.Sim_config.dir_occupancy req

(* Admit a request to the per-line serialization queue — unless the line
   has been busy past the NACK threshold (a long stall, e.g. a reservation
   held under fault-delayed writes), in which case bounce it back: the
   requester retries with exponential backoff, and after [max_nacks]
   bounces it queues unconditionally, so nobody starves. *)
let rec dir_submit ?txn t loc req =
  let d = dentry_of t loc in
  let stalled =
    d.busy && Engine.now t.eng - d.busy_since > t.cfg.Sim_config.nack_threshold
  in
  match txn with
  | Some tx when stalled && tx.tnacks < t.cfg.Sim_config.max_nacks ->
      tx.tnacks <- tx.tnacks + 1;
      t.stats.nacks <- t.stats.nacks + 1;
      journal t "NACK txn %d (dir %s busy for %d)" tx.txid loc
        (Engine.now t.eng - d.busy_since);
      Obs.instant t.obs ~cat:"proto" ~name:"nack" ~tid:tx.tproc
        ~ts:(Engine.now t.eng) ~loc ~cause:cause_nack;
      let backoff =
        t.cfg.Sim_config.nack_backoff * (1 lsl (tx.tnacks - 1))
      in
      Obs.Stall.add t.stalls ~tid:tx.tproc ~cause:cause_nack ~loc
        ~cycles:backoff;
      (* NACK message back to the requester, which waits out the backoff
         and re-sends the request. *)
      send t loc (fun () ->
          Engine.schedule t.eng ~delay:backoff (fun () ->
              send t loc (fun () -> dir_submit ?txn t loc req)))
  | _ ->
      Queue.add req d.waiting;
      if not d.busy then dir_next t loc

(* Service a GetS (read miss).  [deliver v] runs at the requester when the
   line arrives. *)
let rec dir_gets t ~proc ~loc ~deliver =
  let d = dentry_of t loc in
  journal t "dir %s: GetS from P%d (%a)" loc proc pp_dir_state d.dstate;
  match d.dstate with
  | Uncached | Shared _ ->
      let sharers =
        match d.dstate with Shared s -> s | Uncached | Exclusive _ -> Iset.empty
      in
      d.dstate <- Shared (Iset.add proc sharers);
      let v = d.mem in
      send t loc (fun () -> deliver v);
      dir_next t loc
  | Exclusive owner ->
      (* Forward to the owner; the owner downgrades, sends the line to the
         requester directly, and copies back to the directory. *)
      send t loc (fun () ->
          owner_service t ~owner ~requester:proc ~loc (fun () ->
              let l = line_of t owner loc in
              l.lstate <- S;
              notify_line t owner loc;
              let v = l.lvalue in
              send t loc (fun () -> deliver v);
              send t loc (fun () ->
                  d.mem <- v;
                  d.dstate <- Shared (Iset.of_list [ owner; proc ]);
                  dir_next t loc)))

(* Service a GetX (write miss / upgrade).  [deliver v ~gp] runs at the
   requester with the line value; [gp] is true when the write is globally
   performed on arrival.  [on_gp] runs when the directory's ack arrives
   (only when [gp] was false). *)
and dir_getx t ~proc ~loc ~deliver ~on_gp =
  let d = dentry_of t loc in
  journal t "dir %s: GetX from P%d (%a)" loc proc pp_dir_state d.dstate;
  match d.dstate with
  | Uncached ->
      d.dstate <- Exclusive proc;
      let v = d.mem in
      send t loc (fun () -> deliver v ~gp:true);
      dir_next t loc
  | Shared sharers ->
      let others = Iset.remove proc sharers in
      d.dstate <- Exclusive proc;
      let v = d.mem in
      if Iset.is_empty others then begin
        send t loc (fun () -> deliver v ~gp:true);
        dir_next t loc
      end
      else begin
        (* Forward the line in parallel with the invalidations. *)
        send t loc (fun () -> deliver v ~gp:false);
        let acks = ref (Iset.cardinal others) in
        Iset.iter
          (fun sh ->
            send t loc (fun () ->
                t.stats.invalidations <- t.stats.invalidations + 1;
                let l = line_of t sh loc in
                (* [Skip_invalidation] is the sanitizer's mutation: the
                   sharer acks without dropping its copy, silently breaking
                   single-writer.  [Forget_ack] applies the invalidation
                   but never acks, wedging the directory for the watchdog
                   to catch. *)
                (match t.cfg.Sim_config.mutation with
                | Sim_config.Skip_invalidation -> ()
                | Sim_config.No_mutation | Sim_config.Forget_ack ->
                    l.lstate <- I;
                    notify_line t sh loc);
                journal t "invalidate %s at P%d" loc sh;
                if t.cfg.Sim_config.mutation <> Sim_config.Forget_ack then
                  (* ack back to the directory *)
                  send t loc (fun () ->
                      decr acks;
                      if !acks = 0 then begin
                        send t loc (fun () -> on_gp ());
                        dir_next t loc
                      end)))
          others
      end
  | Exclusive owner when owner = proc ->
      (* Stale request: the requester already owns the line (can happen if
         it re-requested during in-flight state changes; not expected with
         per-line inflight tracking, but handled for robustness). *)
      let v = d.mem in
      send t loc (fun () -> deliver v ~gp:true);
      dir_next t loc
  | Exclusive owner ->
      send t loc (fun () ->
          owner_service t ~owner ~requester:proc ~loc (fun () ->
              t.stats.invalidations <- t.stats.invalidations + 1;
              let l = line_of t owner loc in
              l.lstate <- I;
              notify_line t owner loc;
              let v = l.lvalue in
              journal t "invalidate owner %s at P%d" loc owner;
              send t loc (fun () -> deliver v ~gp:false);
              (* Owner acks the directory, which acks the writer. *)
              send t loc (fun () ->
                  d.mem <- v;
                  d.dstate <- Exclusive proc;
                  send t loc (fun () -> on_gp ());
                  dir_next t loc)))

(* Run [k] at [owner] now, or defer it if the line is reserved (Section
   5.3: a reserved line is never given up before the counter reads zero).
   [requester] is the processor whose miss is being serviced: the cycles
   spent deferred are *its* stall, shifted there by condition 5, and are
   attributed to it — this is exactly the wait the paper's Definition-2
   hardware moves off the synchronizing processor. *)
and owner_service t ~owner ~requester ~loc k =
  let l = line_of t owner loc in
  if l.reserved then begin
    Obs.instant t.obs ~cat:"proto" ~name:"defer" ~tid:owner
      ~ts:(Engine.now t.eng) ~loc ~cause:cause_reserve;
    let t0 = Engine.now t.eng in
    defer t owner loc (fun () ->
        Obs.Stall.add t.stalls ~tid:requester ~cause:cause_reserve ~loc
          ~cycles:(Engine.now t.eng - t0);
        k ())
  end
  else k ()

(* --- processor-facing API --------------------------------------------------- *)

(* Serialize accesses of one processor to one in-flight line. *)
let with_line_free t p loc k =
  let ps = t.procs.(p) in
  match Hashtbl.find_opt ps.inflight loc with
  | Some q -> Queue.add k q
  | None -> k ()

let mark_inflight t p loc =
  let ps = t.procs.(p) in
  Hashtbl.replace ps.inflight loc (Queue.create ())

let release_inflight t p loc =
  let ps = t.procs.(p) in
  match Hashtbl.find_opt ps.inflight loc with
  | None -> ()
  | Some q ->
      Hashtbl.remove ps.inflight loc;
      Queue.iter (fun k -> Engine.schedule t.eng ~delay:0 k) q

let read ?(on_gp = fun () -> ()) t ~proc ~loc ~k =
  with_line_free t proc loc (fun () ->
      let l = line_of t proc loc in
      match l.lstate with
      | S | M ->
          after_hit t (fun () ->
              k l.lvalue;
              (* Reading one's own dirty, not-yet-performed write: the read
                 is globally performed only when the write is. *)
              when_line_gp t l on_gp)
      | I ->
          mark_inflight t proc loc;
          incr_counter t proc;
          let tx = open_txn t ~proc ~loc ~write:false in
          send t loc (fun () ->
              dir_submit ~txn:tx t loc (fun () ->
                  dir_gets t ~proc ~loc ~deliver:(fun v ->
                      l.lstate <- S;
                      l.lvalue <- v;
                      close_txn t tx;
                      decr_counter t proc;
                      release_inflight t proc loc;
                      k v;
                      (* A line served by the directory or a previous owner
                         only carries globally performed writes (directory
                         transactions are serialized per line). *)
                      on_gp ()))))

let modify ?(on_gp = fun () -> ()) t ~proc ~loc ~f ~on_commit =
  with_line_free t proc loc (fun () ->
      let l = line_of t proc loc in
      match l.lstate with
      | M ->
          let old = l.lvalue in
          l.lvalue <- f old;
          after_hit t (fun () ->
              on_commit old;
              (* No other cache holds the line, but stale copies may still
                 await invalidation from the transaction that procured it:
                 this write is globally performed when that one is. *)
              when_line_gp t l on_gp)
      | S | I ->
          mark_inflight t proc loc;
          incr_counter t proc;
          let tx = open_txn t ~proc ~loc ~write:true in
          send t loc (fun () ->
              dir_submit ~txn:tx t loc (fun () ->
                  dir_getx t ~proc ~loc
                    ~deliver:(fun v ~gp ->
                      l.lstate <- M;
                      let old = v in
                      l.lvalue <- f old;
                      if gp then begin
                        (* Globally performed on arrival: the access leaves
                           the outstanding count *before* the processor
                           continues, so a sync commit sees only genuinely
                           previous accesses in the counter.  (Counting the
                           op itself would let two processors reserve their
                           own sync lines against each other and deadlock —
                           e.g. dekker with sync reads under Def2.) *)
                        close_txn t tx;
                        decr_counter t proc;
                        release_inflight t proc loc;
                        on_commit old;
                        on_gp ()
                      end
                      else begin
                        l.gp_waiters <- Some [];
                        release_inflight t proc loc;
                        on_commit old
                      end)
                    ~on_gp:(fun () ->
                      close_txn t tx;
                      decr_counter t proc;
                      on_gp ();
                      resolve_line_gp t l))))

let line_state t p loc =
  match Hashtbl.find_opt t.procs.(p).lines loc with
  | None -> I
  | Some l -> l.lstate

let line_reserved t p loc =
  match Hashtbl.find_opt t.procs.(p).lines loc with
  | None -> false
  | Some l -> l.reserved

let line_gp_pending t p loc =
  match Hashtbl.find_opt t.procs.(p).lines loc with
  | None -> false
  | Some l -> l.gp_waiters <> None

(* The coherent value of a location at quiescence: the owner's copy if the
   line is exclusive somewhere, the directory's otherwise. *)
let settled_value t loc =
  let d = dentry_of t loc in
  match d.dstate with
  | Exclusive owner -> (line_of t owner loc).lvalue
  | Uncached | Shared _ -> d.mem
