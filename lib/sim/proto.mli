(** The directory-based write-back invalidation protocol of Sections
    5.2–5.3, with RP3-style outstanding-access counters and reserve bits.

    Timing, not semantics: nondeterminism is resolved deterministically by
    the engine, so one run explores one schedule.  The abstract machines in
    [lib/machine] cover the full behaviour space; this simulator measures
    stalls, messages and cycles.

    Messages travel over the reliable transport in [Net], which survives
    injected interconnect faults.  Above it, every miss is a tracked
    transaction with an escalating deadline ([Stuck] when exceeded — the
    protocol never hangs silently), and requests bounced off a long-busy
    directory line retry with exponential backoff (NACK-and-retry). *)

type t
(** One protocol instance: caches, directory, transport, counters. *)

exception Stuck of string
(** The protocol is wedged (a transaction blew through every deadline
    extension, or an invariant such as counter non-negativity broke).  The
    payload is the full diagnostic dump. *)

type line_state = I | S | M
(** MSI cache-line states. *)

type dir_state = Uncached | Shared of Iset.t | Exclusive of int
(** Directory full-map state for one line. *)

type stats = {
  mutable messages : int;
  mutable invalidations : int;
  mutable deferrals : int;  (** requests delayed by a reserve bit *)
  mutable nacks : int;  (** requests bounced off a busy directory line *)
  mutable txn_timeouts : int;  (** transaction deadline extensions *)
}
(** Protocol-layer counters. *)

val create :
  ?init:(string * int) list ->
  ?obs:Obs.t ->
  ?stalls:Obs.Stall.t ->
  Sim_config.t ->
  Engine.t ->
  t
(** A fresh protocol instance over [eng].  [init] seeds memory values.
    [obs] (default {!Obs.null}) receives transaction spans ([txn]
    category), NACK/defer/reserve instants and outstanding-counter
    samples ([proto] category), and is passed down to the transport for
    fault instants.  [stalls] collects NACK-backoff and reserve-bit
    deferral cycles, attributed to the {e requesting} processor. *)

val cause_nack : string
(** ["nack-retry"]: stall tag for NACK backoff cycles. *)

val cause_reserve : string
(** ["reserve-bit"]: stall tag for cycles a miss spent deferred behind a
    remote reservation (the wait Definition 2's condition 5 shifts off
    the synchronizing processor). *)

val stats : t -> stats
(** The live protocol counters. *)

val net : t -> Net.t
(** The transport underneath this protocol instance. *)

val counter : t -> int -> int
(** Outstanding accesses of a processor (the Section 5.3 counter). *)

val when_counter_zero : t -> int -> (unit -> unit) -> unit
(** Run the thunk when the processor's counter reads zero (immediately if
    it already does). *)

val reserve_if_outstanding : t -> proc:int -> loc:string -> unit
(** Set the reserve bit on the processor's copy of [loc] if its counter is
    positive (call after committing a synchronization operation). *)

val read :
  ?on_gp:(unit -> unit) -> t -> proc:int -> loc:string -> k:(int -> unit) -> unit
(** Blocking read: [k v] runs when the value is bound (cache hit, or line
    arrival on a miss) — the read's commit.  [on_gp] runs when the read is
    globally performed: its value is bound and the write that produced the
    value is globally performed (later than [k] only when a processor reads
    its own not-yet-performed write). *)

val modify :
  ?on_gp:(unit -> unit) ->
  t ->
  proc:int ->
  loc:string ->
  f:(int -> int) ->
  on_commit:(int -> unit) ->
  unit
(** Acquire the line exclusive and apply [f] to it; [on_commit old] runs at
    the commit point (local modification) and [on_gp] when the write is
    globally performed (at commit for an exclusive hit; at the directory's
    ack otherwise).  Writes are [modify ~f:(fun _ -> v)]; atomic RMWs pass
    a genuine function. *)

val line_state : t -> int -> string -> line_state
(** A processor's cached state for a line ([I] when absent). *)

val line_reserved : t -> int -> string -> bool
(** Whether the processor holds a reservation on the line. *)

val line_gp_pending : t -> int -> string -> bool
(** Whether a write by this processor to this line is committed but not
    yet globally performed ([gp] waiters outstanding). *)

(** {1 Line watchers (spin parking)}

    A parked spinner registers a wakeup on (processor, line); the protocol
    fires it synchronously whenever a {e foreign} request changes that
    processor's copy of the line — invalidation or downgrade — which is
    the only way the value a spinning read observes can ever change.  At
    most one watcher per processor (it spins on one location at a time). *)

val watch_line : t -> proc:int -> loc:string -> (unit -> unit) -> unit
(** Register the processor's wakeup for [loc] (replaces any previous). *)

val unwatch_line : t -> proc:int -> loc:string -> unit
(** Drop the processor's wakeup. *)

val memory_value : t -> string -> int
(** The directory's memory copy (possibly stale while Exclusive). *)

val settled_value : t -> string -> int
(** The coherent value of a location once the system is quiescent. *)

(** {1 Monitoring and introspection}

    Used by [Sim_sanitizer] (invariant checks after every protocol state
    change) and by the watchdog's diagnostic dumps. *)

val set_monitor : t -> (unit -> unit) -> unit
(** Install a hook that runs after each delivered message's effects. *)

type line_view = { lv_state : line_state; lv_value : int; lv_reserved : bool }
(** A sanitizer-facing snapshot of one cached line. *)

val nprocs : t -> int
(** Number of processors in the configuration. *)

val dir_lines : t -> (string * dir_state) list
(** All directory entries (unordered). *)

val cached_lines : t -> int -> (string * line_view) list
(** A processor's cached lines (unordered). *)

val deferred_count : t -> int -> int
(** Foreign requests currently deferred at the processor. *)

val open_txns : t -> (int * int * string) list
(** In-flight transactions as [(txid, proc, loc)]. *)

val line_quiescent : t -> string -> bool
(** No transaction, queued request or in-flight message concerns the line:
    its directory state and cached copies must agree. *)

val dump : t -> string
(** Multi-line diagnostic dump: per-line directory state, cache contents,
    counters, in-flight transactions, transport statistics and the tail of
    the protocol event journal. *)

val pp_line_state : Format.formatter -> line_state -> unit
(** [I]/[S]/[M]. *)

val pp_dir_state : Format.formatter -> dir_state -> unit
(** e.g. [Shared{0,2}], [Exclusive P1]. *)
