(* A discrete-event simulation engine: a time-ordered queue of thunks.
   Ties are broken by insertion order, so runs are fully deterministic.

   The queue is a mutable array-based binary min-heap of *cells* ordered
   by (time, seq) — O(log n) with no allocation per op beyond the cell,
   versus the persistent-map reference implementation (Engine_ref) that
   allocates a rebalanced spine on every add and remove.

   Batching: consecutive schedules for the same cycle merge into the most
   recently created cell, so e.g. an invalidation fan-out that lands N
   messages on one cycle costs one heap pop, not N.  This is
   order-preserving: the merge target is always the cell with the
   globally maximal seq, so every other same-cycle cell pops before it,
   and within a cell thunks run in append order — together exactly the
   (time, insertion-order) sequence the reference engine executes.  The
   merge target is cleared when it is popped, so a thunk that schedules
   more same-cycle work from inside the running cell gets a fresh cell
   with a fresh seq, again matching the reference order. *)

type cell = {
  time : int;
  seq : int;  (* creation order; unique — the tie-break *)
  created : int;  (* engine clock when the cell was created *)
  mutable thunks : (unit -> unit) list;  (* newest first; reversed to run *)
  mutable cancelled : bool;
      (* a cancelled cell is dropped on pop without running, counting, or
         advancing the clock — as if it was never scheduled *)
}

type handle = cell

type t = {
  mutable now : int;
  mutable seq : int;
  mutable heap : cell array;  (* heap.(0 .. size-1), min at 0 *)
  mutable size : int;
  mutable executed : int;  (* cells executed *)
  mutable merged : int;  (* thunks batched into an existing cell *)
  mutable last : cell option;  (* most recently created, not yet popped *)
  mutable running_since : int;  (* [created] of the cell being executed *)
  batch : bool;
}

let dummy = { time = 0; seq = 0; created = 0; thunks = []; cancelled = false }

let create ?(batch = true) () =
  {
    now = 0;
    seq = 0;
    heap = Array.make 256 dummy;
    size = 0;
    executed = 0;
    merged = 0;
    last = None;
    running_since = 0;
    batch;
  }

let now t = t.now
let executed t = t.executed
let merged t = t.merged
let running_since t = t.running_since

(* --- heap primitives ------------------------------------------------------- *)

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let sift_up h i c =
  let i = ref i in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less c h.(p)
  do
    let p = (!i - 1) / 2 in
    h.(!i) <- h.(p);
    i := p
  done;
  h.(!i) <- c

let sift_down h size c =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= size then continue := false
    else begin
      let m = if l + 1 < size && less h.(l + 1) h.(l) then l + 1 else l in
      if less h.(m) c then begin
        h.(!i) <- h.(m);
        i := m
      end
      else continue := false
    end
  done;
  h.(!i) <- c

let push t c =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.size <- t.size + 1;
  sift_up t.heap (t.size - 1) c

let pop t =
  let c = t.heap.(0) in
  t.size <- t.size - 1;
  let moved = t.heap.(t.size) in
  t.heap.(t.size) <- dummy (* drop the reference: thunks capture closures *);
  if t.size > 0 then sift_down t.heap t.size moved;
  c

(* --- scheduling ------------------------------------------------------------ *)

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  let time = t.now + delay in
  match t.last with
  | Some l when t.batch && l.time = time ->
      l.thunks <- f :: l.thunks;
      t.merged <- t.merged + 1
  | _ ->
      let c =
        { time; seq = t.seq; created = t.now; thunks = [ f ]; cancelled = false }
      in
      t.seq <- t.seq + 1;
      push t c;
      t.last <- Some c

(* A cancellable event never becomes a merge target (and never merges into
   one): cancellation must affect exactly the one thunk it was issued for,
   and a cancelled cell must not swallow later same-cycle schedules. *)
let schedule_cancellable t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  let c =
    {
      time = t.now + delay;
      seq = t.seq;
      created = t.now;
      thunks = [ f ];
      cancelled = false;
    }
  in
  t.seq <- t.seq + 1;
  push t c;
  c

let cancel c = c.cancelled <- true

exception Out_of_time

(* Run until the queue drains.  [limit] bounds simulated time as a safety
   net against livelock bugs (spinning processors reschedule themselves
   forever if the value they wait for never arrives). *)
let run ?(limit = 10_000_000) t =
  while t.size > 0 do
    if t.heap.(0).cancelled then ignore (pop t)
    else begin
      if t.heap.(0).time > limit then raise Out_of_time;
      let c = pop t in
      (match t.last with Some l when l == c -> t.last <- None | _ -> ());
      t.now <- max t.now c.time;
      t.running_since <- c.created;
      t.executed <- t.executed + 1;
      List.iter (fun f -> f ()) (List.rev c.thunks)
    end
  done
