(* Timing workloads: per-processor operation lists with local work and
   spinning, plus generators for the paper's scenarios.  Unlike litmus
   programs, these are about cycles, not outcome sets: loops are expressed
   by generating unrolled operation lists or by the [Spin_until]/[Lock]
   primitives, which iterate at run time. *)

type op =
  | Read of { loc : string; tag : string option }
  | Write of { loc : string; value : int }
  | Sync_read of { loc : string; tag : string option }
  | Sync_write of { loc : string; value : int }
  | Tas of { loc : string; tag : string option }
  | Fadd of { loc : string; n : int }
  | Spin_until of { loc : string; expect : int; sync : bool }
  | Lock of { loc : string }
  | Unlock of { loc : string }
  | Work of int

type t = {
  name : string;
  init : (string * int) list;
  threads : op list list;
}

(* --- generator argument validation ----------------------------------------

   A zero or negative width/round count, or a width past the simulator's
   processor limit, used to build a nonsense workload silently (an empty
   thread list still "runs" and reports zero cycles).  Every generator now
   validates its arguments up front and raises a located, actionable
   [Invalid_argument] instead. *)

let max_procs = 1024

let check_arg ~gen name ~lo ~hi v =
  if v < lo || v > hi then
    invalid_arg
      (Printf.sprintf "Workload.%s: %s must be in [%d, %d] (got %d)" gen name
         lo hi v)

let check_nprocs ~gen v = check_arg ~gen "nprocs" ~lo:1 ~hi:max_procs v
let check_pos ~gen name v = check_arg ~gen name ~lo:1 ~hi:max_int v
let check_nonneg ~gen name v = check_arg ~gen name ~lo:0 ~hi:max_int v

let read ?tag loc = Read { loc; tag }
let write loc value = Write { loc; value }
let sync_read ?tag loc = Sync_read { loc; tag }
let sync_write loc value = Sync_write { loc; value }
let tas ?tag loc = Tas { loc; tag }
let fadd loc n = Fadd { loc; n }
let spin ?(sync = true) loc expect = Spin_until { loc; expect; sync }
let lock loc = Lock { loc }
let unlock loc = Unlock { loc }
let work n = Work n

(* --- Figure 3: producer/consumer handoff --------------------------------- *)

(* P0 holds the lock (it TestAndSets s first, so the line sits exclusive in
   its cache and the Unset is a cache hit that commits immediately), writes
   the datum, does unrelated work, Unsets s, and continues working; P1
   acquires s (TestAndSet loop) and reads the datum.  The warm-up reads put
   x in both caches, so the producer's write needs an invalidation and is
   slow to perform globally — exactly the figure's "write of x takes a long
   time": the Unset commits while the write is pending, the line is
   reserved, and P1's TestAndSet is deferred until the write performs. *)
let fig3_handoff ?(work_before = 10) ?(work_after = 200) ?(consumer_delay = 60)
    () =
  let gen = "fig3_handoff" in
  check_nonneg ~gen "work_before" work_before;
  check_nonneg ~gen "work_after" work_after;
  check_nonneg ~gen "consumer_delay" consumer_delay;
  {
    name = "fig3_handoff";
    init = [];
    threads =
      [
        [
          lock "s" (* P0 starts as the lock holder: line M in its cache *);
          read "x" (* warm-up: cache x shared *);
          work work_before;
          write "x" 1;
          unlock "s" (* Unset: a cache hit; commits at once *);
          work work_after (* other work P0 can overlap *);
        ];
        [
          read "x" (* warm-up, so the write above needs an invalidation *);
          work consumer_delay (* P1 synchronizes after the Unset commits *);
          lock "s" (* TestAndSet loop *);
          read ~tag:"x" "x";
        ];
      ];
  }

(* --- Section 6: spinning on a barrier ------------------------------------ *)

(* A central counter barrier: every processor increments the count with a
   sync fetch-and-add and then spins until it reaches [nprocs].  [sync_spin]
   selects sync-read spinning (serialized by the base def2 implementation)
   versus data-read spinning. *)
let spin_barrier ?(nprocs = 4) ?(stagger = 25) ?(sync_spin = true) () =
  let gen = "spin_barrier" in
  check_nprocs ~gen nprocs;
  check_nonneg ~gen "stagger" stagger;
  {
    name = "spin_barrier";
    init = [];
    threads =
      List.init nprocs (fun p ->
          [
            work (p * stagger);
            fadd "count" 1;
            Spin_until { loc = "count"; expect = nprocs; sync = sync_spin };
            Write { loc = Printf.sprintf "done%d" p; value = 1 };
          ]);
  }

(* --- Lock-based critical sections ----------------------------------------- *)

(* Every processor repeatedly takes a lock, updates shared data inside the
   critical section, and does private work outside: the general workload
   for comparing the policies' sync costs. *)
let critical_sections ?(nprocs = 4) ?(rounds = 4) ?(work_in = 10)
    ?(work_out = 50) () =
  let gen = "critical_sections" in
  check_nprocs ~gen nprocs;
  check_pos ~gen "rounds" rounds;
  check_nonneg ~gen "work_in" work_in;
  check_nonneg ~gen "work_out" work_out;
  let round p =
    [
      lock "l";
      read "shared";
      write "shared" (p + 1);
      work work_in;
      write "shared2" p;
      unlock "l";
      work work_out;
      write (Printf.sprintf "private%d" p) 1;
    ]
  in
  {
    name = "critical_sections";
    init = [];
    threads = List.init nprocs (fun p -> List.concat (List.init rounds (fun _ -> round p)));
  }

(* --- Producer/consumer pipeline ------------------------------------------- *)

(* A chain: processor i produces a batch of data and releases flag i; the
   next processor awaits the flag, consumes, produces its own, and so on.
   Exercises the transitive-handoff pattern (Section 4's hb chain) at
   timing level. *)
let pipeline ?(nprocs = 4) ?(batch = 4) ?(work_cycles = 20) () =
  let gen = "pipeline" in
  check_nprocs ~gen nprocs;
  check_pos ~gen "batch" batch;
  check_nonneg ~gen "work_cycles" work_cycles;
  let produce p =
    List.init batch (fun j -> write (Printf.sprintf "d%d_%d" p j) (j + 1))
  in
  let consume p =
    List.init batch (fun j ->
        read ~tag:(Printf.sprintf "d%d_%d" p j) (Printf.sprintf "d%d_%d" p j))
  in
  {
    name = "pipeline";
    init = [];
    threads =
      List.init nprocs (fun p ->
          (if p = 0 then []
           else [ spin (Printf.sprintf "f%d" (p - 1)) 1 ] @ consume (p - 1))
          @ produce p
          @ [ work work_cycles ]
          @ [ sync_write (Printf.sprintf "f%d" p) 1 ]);
  }

(* --- Ticket lock ------------------------------------------------------------ *)

(* Each processor takes a ticket with a sync fetch-and-add and spins until
   [serving] reaches its ticket, then executes the critical section and
   increments [serving].  Tickets remove the TestAndSet ping-pong: the
   queue is explicit.  Because tickets are assigned dynamically, the
   critical sections use a per-round location rather than per-owner data. *)
let ticket_lock ?(nprocs = 4) ?(work_in = 10) ?(work_out = 40) () =
  let gen = "ticket_lock" in
  check_nprocs ~gen nprocs;
  check_nonneg ~gen "work_in" work_in;
  check_nonneg ~gen "work_out" work_out;
  {
    name = "ticket_lock";
    init = [];
    threads =
      List.init nprocs (fun p ->
          [
            work (p * 3);
            fadd "next_ticket" 1 (* my ticket is the old value *);
            (* Spin until serving = my ticket.  The workload language has no
               registers, so each processor's expected ticket is its arrival
               order under the deterministic schedule; we spin on our
               processor id, which matches arrival order here. *)
            Spin_until { loc = "serving"; expect = p; sync = true };
            read "shared";
            write "shared" (p + 1);
            work work_in;
            fadd "serving" 1;
            work work_out;
          ]);
  }

(* --- Sense-reversing barrier ------------------------------------------------- *)

(* The classic centralized barrier: processors FADD the count; the last one
   resets the count and flips the sense flag; the others spin on the sense
   flag.  [sync_spin] selects the spin flavour, as in [spin_barrier]. *)
let sense_barrier ?(nprocs = 4) ?(rounds = 2) ?(sync_spin = true) () =
  let gen = "sense_barrier" in
  check_nprocs ~gen nprocs;
  check_pos ~gen "rounds" rounds;
  let round r =
    let sense = Printf.sprintf "sense%d" r in
    [
      fadd "count" 1;
      (* Every processor spins until the sense flips; the "last arrival
         flips it" logic needs a conditional, which the op language lacks,
         so a designated coordinator (processor 0) awaits full count and
         flips.  The barrier semantics are identical; only the flipper is
         static. *)
    ]
    @ [ Spin_until { loc = sense; expect = 1; sync = sync_spin } ]
  in
  let coordinator_round r =
    let sense = Printf.sprintf "sense%d" r in
    [
      fadd "count" 1;
      Spin_until { loc = "count"; expect = nprocs * (r + 1); sync = sync_spin };
      sync_write sense 1;
    ]
  in
  {
    name = "sense_barrier";
    init = [];
    threads =
      List.init nprocs (fun p ->
          List.concat
            (List.init rounds (fun r ->
                 (if p = 0 then coordinator_round r else round r)
                 @ [ work 15 ])));
  }

let num_threads w = List.length w.threads
