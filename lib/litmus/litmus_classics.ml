(* A corpus of classic litmus tests, with the paper's own examples.

   Each entry records what is *expected* of it: whether the program obeys
   DRF0 (Definition 3) and whether sequential consistency allows its
   "exists" outcome.  The expectations are asserted by the test suite
   against the implemented checkers, and several come straight from the
   paper's figures. *)

open Instr

type entry = {
  prog : Prog.t;
  drf0 : bool;  (** does the program obey DRF0? *)
  sc_allows : bool;  (** does SC allow the "exists" outcome? *)
  descr : string;
}

let reg_eq p r v = Cond.Reg_eq (p, r, v)

(* --- Figure 1: Dekker-style SC violation -------------------------------- *)

(* The paper's Figure 1, with "kill P" replaced by observing the other
   flag: both registers 0 is exactly the "both processors killed" result
   that sequential consistency forbids. *)
let dekker =
  {
    prog =
      Prog.make ~name:"dekker"
        ~exists:(Cond.And (reg_eq 0 "r0" 0, reg_eq 1 "r1" 0))
        [
          [ write "x" 1; read "y" "r0" ];
          [ write "y" 1; read "x" "r1" ];
        ];
    drf0 = false;
    sc_allows = false;
    descr = "Figure 1: store buffering / Dekker; SC forbids r0=r1=0";
  }

(* Same communication pattern, but all accesses are synchronization
   operations: trivially DRF0, so weakly ordered hardware must forbid the
   non-SC outcome too. *)
let dekker_sync =
  {
    prog =
      Prog.make ~name:"dekker_sync"
        ~exists:(Cond.And (reg_eq 0 "r0" 0, reg_eq 1 "r1" 0))
        [
          [ sync_write "x" 1; sync_read "y" "r0" ];
          [ sync_write "y" 1; sync_read "x" "r1" ];
        ];
    drf0 = true;
    sc_allows = false;
    descr = "Dekker with sync accesses only: DRF0, so must stay SC";
  }

(* --- Message passing ----------------------------------------------------- *)

let mp =
  {
    prog =
      Prog.make ~name:"mp"
        ~exists:(Cond.And (reg_eq 1 "r0" 1, reg_eq 1 "r1" 0))
        [
          [ write "x" 1; write "f" 1 ];
          [ read "f" "r0"; read "x" "r1" ];
        ];
    drf0 = false;
    sc_allows = false;
    descr = "Message passing with data flag: racy; SC forbids r0=1,r1=0";
  }

let mp_sync =
  {
    prog =
      Prog.make ~name:"mp_sync"
        ~exists:(reg_eq 1 "r1" 0)
        [
          [ write "x" 1; sync_write "f" 1 ];
          [ await "f" 1; read "x" "r1" ];
        ];
    drf0 = true;
    sc_allows = false;
    descr = "Message passing, sync flag + await: DRF0; consumer must see x=1";
  }

(* Section 6: "spinning on a barrier count with a data read" — the data
   spin makes it racy under DRF0 even though Definition-1 hardware happens
   to give it SC behaviour. *)
let mp_data_spin =
  {
    prog =
      Prog.make ~name:"mp_data_spin"
        ~exists:(reg_eq 1 "r1" 0)
        [
          [ write "x" 1; write "f" 1 ];
          [ await ~kind:Data "f" 1; read "x" "r1" ];
        ];
    drf0 = false;
    sc_allows = false;
    descr = "Section 6: data-read spin on a flag; a data race under DRF0";
  }

(* --- Load buffering ------------------------------------------------------ *)

let lb =
  {
    prog =
      Prog.make ~name:"lb"
        ~exists:(Cond.And (reg_eq 0 "r0" 1, reg_eq 1 "r1" 1))
        [
          [ read "x" "r0"; write "y" 1 ];
          [ read "y" "r1"; write "x" 1 ];
        ];
    drf0 = false;
    sc_allows = false;
    descr = "Load buffering: racy; SC forbids r0=r1=1";
  }

(* --- Independent reads of independent writes ----------------------------- *)

let iriw =
  {
    prog =
      Prog.make ~name:"iriw"
        ~exists:
          (Cond.conj
             [
               reg_eq 2 "r0" 1;
               reg_eq 2 "r1" 0;
               reg_eq 3 "r2" 1;
               reg_eq 3 "r3" 0;
             ])
        [
          [ write "x" 1 ];
          [ write "y" 1 ];
          [ read "x" "r0"; read "y" "r1" ];
          [ read "y" "r2"; read "x" "r3" ];
        ];
    drf0 = false;
    sc_allows = false;
    descr = "IRIW: readers disagree on the order of independent writes";
  }

let iriw_sync =
  {
    prog =
      Prog.make ~name:"iriw_sync"
        ~exists:
          (Cond.conj
             [
               reg_eq 2 "r0" 1;
               reg_eq 2 "r1" 0;
               reg_eq 3 "r2" 1;
               reg_eq 3 "r3" 0;
             ])
        [
          [ sync_write "x" 1 ];
          [ sync_write "y" 1 ];
          [ sync_read "x" "r0"; sync_read "y" "r1" ];
          [ sync_read "y" "r2"; sync_read "x" "r3" ];
        ];
    drf0 = true;
    sc_allows = false;
    descr = "IRIW with sync accesses only: DRF0, must remain forbidden";
  }

(* --- Coherence ----------------------------------------------------------- *)

let corr =
  {
    prog =
      Prog.make ~name:"corr"
        ~exists:(Cond.And (reg_eq 1 "r0" 1, reg_eq 1 "r1" 0))
        [
          [ write "x" 1 ];
          [ read "x" "r0"; read "x" "r1" ];
        ];
    drf0 = false;
    sc_allows = false;
    descr = "CoRR: same-location reads may not go backwards";
  }

let coww =
  {
    prog =
      Prog.make ~name:"coww" ~exists:(Cond.Mem_eq ("x", 1))
        [ [ write "x" 1; write "x" 2 ] ];
    drf0 = true;
    sc_allows = false;
    descr = "CoWW: program order of same-location writes is final";
  }

(* --- Locks and atomic RMW ------------------------------------------------ *)

let tas_atomicity =
  {
    prog =
      Prog.make ~name:"tas_atomicity"
        ~exists:(Cond.And (reg_eq 0 "r0" 0, reg_eq 1 "r1" 0))
        [
          [ test_and_set "l" "r0" ];
          [ test_and_set "l" "r1" ];
        ];
    drf0 = true;
    sc_allows = false;
    descr = "Two TestAndSets cannot both win: RMW atomicity";
  }

let lock_mutex =
  {
    prog =
      Prog.make ~name:"lock_mutex"
        ~exists:(Cond.Not (Cond.Mem_eq ("x", 2)))
        [
          [ lock "l"; read "x" "r0"; store "x" (Exp.Add (Exp.Reg "r0", Exp.Const 1)); unlock "l" ];
          [ lock "l"; read "x" "r1"; store "x" (Exp.Add (Exp.Reg "r1", Exp.Const 1)); unlock "l" ];
        ];
    drf0 = true;
    sc_allows = false;
    descr = "Two lock-protected increments always sum: DRF0; x=2 in all outcomes";
  }

let lock_race =
  {
    prog =
      Prog.make ~name:"lock_race"
        ~exists:(Cond.Not (Cond.Mem_eq ("x", 2)))
        [
          [ lock "l"; read "x" "r0"; store "x" (Exp.Add (Exp.Reg "r0", Exp.Const 1)); unlock "l" ];
          [ read "x" "r1"; store "x" (Exp.Add (Exp.Reg "r1", Exp.Const 1)) ];
        ];
    drf0 = false;
    sc_allows = true;
    descr = "One thread skips the lock: racy, and SC can lose an update";
  }

(* --- Figure 3: producer/consumer handoff -------------------------------- *)

(* P0 writes data then Unsets s; P1 blocks acquiring s and then reads the
   data.  s starts held (1).  DRF0 because every execution orders W(x)
   before R(x) through the synchronization on s. *)
let fig3_handoff =
  {
    prog =
      Prog.make ~name:"fig3_handoff" ~init:[ ("s", 1) ]
        ~exists:(reg_eq 1 "r" 0)
        [
          [ write "x" 1; unlock "s" ];
          [ lock "s"; read "x" "r" ];
        ];
    drf0 = true;
    sc_allows = false;
    descr = "Figure 3: W(x); Unset(s) || Lock(s); R(x): DRF0 handoff";
  }

(* --- Section 4's happens-before chain ------------------------------------ *)

(* The chain op(P1,x) -> S(P1,s) -> S(P2,s) -> S(P2,t) -> S(P3,t) -> op(P3,x):
   the endpoint accesses of x are ordered purely through two different
   synchronization locations.  Awaits pin the sync order so that *every*
   execution orders the conflicting accesses. *)
let hb_chain =
  {
    prog =
      Prog.make ~name:"hb_chain" ~exists:(reg_eq 2 "r" 0)
        [
          [ write "x" 1; sync_write "s" 1 ];
          [ await "s" 1; sync_write "t" 1 ];
          [ await "t" 1; read "x" "r" ];
        ];
    drf0 = true;
    sc_allows = false;
    descr = "Section 4 chain: transitive hb through two sync locations";
  }

(* Section 6's closing example: a barrier count incremented with a sync RMW
   but spun on with a *data* read.  DRF0 calls it racy (the data spin
   conflicts with the sync increment), so Definition 2 promises nothing —
   yet Definition-1 hardware, with blocking reads, happens to give it SC
   behaviour, while the paper's new implementation does not.  "This feature
   is not a drawback of Definition 2, but a limitation of DRF0." *)
let barrier_data_spin =
  {
    prog =
      Prog.make ~name:"barrier_data_spin" ~exists:(reg_eq 1 "r1" 0)
        [
          [ write "x" 1; fetch_and_add "b" "r0" 1 ];
          [ await ~kind:Data "b" 1; read "x" "r1" ];
        ];
    drf0 = false;
    sc_allows = false;
    descr = "Section 6: sync-incremented barrier count spun on with data reads";
  }

(* A program that is DRF0 but not DRF1: the only happens-before path runs
   through a *read-only* synchronization operation acting as a release.
   P0's sync Test of s (awaiting 0) must complete before P1's sync write of
   1 in every complete execution, so DRF0's completion-order so orders
   W(x) before R(x); DRF1's release→acquire so1 drops the read→write edge
   and calls the program racy.  Consequently the base def2 machine keeps it
   SC while the read-sync-relaxed refinement does not — the exact software
   cost of the Section 6 optimization. *)
let read_sync_release =
  {
    prog =
      Prog.make ~name:"read_sync_release" ~exists:(reg_eq 1 "r1" 0)
        [
          [ write "x" 1; await "s" 0 ];
          [ sync_write "s" 1; read "x" "r1" ];
        ];
    drf0 = true;
    sc_allows = false;
    descr = "DRF0 but not DRF1: a read-only sync operation as a release";
  }

(* --- Two-plus-two writes --------------------------------------------------- *)

let two_plus_two_w =
  {
    prog =
      Prog.make ~name:"2+2w"
        ~exists:(Cond.And (Cond.Mem_eq ("x", 1), Cond.Mem_eq ("y", 1)))
        [
          [ write "x" 1; write "y" 2 ];
          [ write "y" 1; write "x" 2 ];
        ];
    drf0 = false;
    sc_allows = false;
    descr = "2+2W: criss-crossed write pairs; SC forbids both losing";
  }

let two_plus_two_w_sync =
  {
    prog =
      Prog.make ~name:"2+2w_sync"
        ~exists:(Cond.And (Cond.Mem_eq ("x", 1), Cond.Mem_eq ("y", 1)))
        [
          [ sync_write "x" 1; sync_write "y" 2 ];
          [ sync_write "y" 1; sync_write "x" 2 ];
        ];
    drf0 = true;
    sc_allows = false;
    descr = "2+2W with sync writes only: DRF0, must stay forbidden";
  }

(* --- R: write racing a write-read pair ------------------------------------ *)

let r_test =
  {
    prog =
      Prog.make ~name:"r"
        ~exists:(Cond.And (Cond.Mem_eq ("y", 2), reg_eq 1 "r" 0))
        [
          [ write "x" 1; write "y" 1 ];
          [ write "y" 2; read "x" "r" ];
        ];
    drf0 = false;
    sc_allows = false;
    descr = "R: if P1's write of y loses, its read must see x";
  }

(* --- FADD as a release ------------------------------------------------------ *)

(* The barrier pattern done right: the counter is incremented with a sync
   fetch-and-add and awaited with a sync read, so the data handoff is
   ordered through the counter in every execution — DRF0, unlike
   [barrier_data_spin]. *)
let fadd_release =
  {
    prog =
      Prog.make ~name:"fadd_release" ~exists:(reg_eq 1 "r1" 0)
        [
          [ write "x" 1; fetch_and_add "c" "r0" 1 ];
          [ await "c" 1; read "x" "r1" ];
        ];
    drf0 = true;
    sc_allows = false;
    descr = "Sync FADD as release, sync await as acquire: DRF0 barrier";
  }

(* --- Write-to-read causality --------------------------------------------- *)

let wrc =
  {
    prog =
      Prog.make ~name:"wrc"
        ~exists:(Cond.And (reg_eq 2 "r1" 1, reg_eq 2 "r2" 0))
        [
          [ write "x" 1 ];
          [ read "x" "r0"; store "y" (Exp.Reg "r0") ];
          [ read "y" "r1"; read "x" "r2" ];
        ];
    drf0 = false;
    sc_allows = false;
    descr = "WRC: causality through a forwarded value";
  }

let all =
  [
    dekker;
    dekker_sync;
    mp;
    mp_sync;
    mp_data_spin;
    lb;
    iriw;
    iriw_sync;
    corr;
    coww;
    tas_atomicity;
    lock_mutex;
    lock_race;
    fig3_handoff;
    hb_chain;
    barrier_data_spin;
    read_sync_release;
    two_plus_two_w;
    two_plus_two_w_sync;
    r_test;
    fadd_release;
    wrc;
  ]

(* --- Scaling corpus -------------------------------------------------------

   Programs deliberately beyond litmus size, for exercising the engine
   knobs (symmetry reduction, spill store, memory budgets) rather than the
   checkers.  Each is a ring of racing write/read pairs: thread i writes
   its own location and reads its neighbours', cyclically, so the program
   has a nontrivial (cyclic) automorphism group — the symmetry reduction's
   best case — and a state space that grows steeply with the thread count.
   They are kept out of [all]: the expectation fields are real but the
   test-suite sweeps over [all] would pay minutes re-verifying them. *)

(* Ring of [n] threads over [locs]: thread i runs
   W l_i 1; r := R l_{i+1}; W l_i 2; r' := R l_{i+2}. *)
let ring_prog ~name locs =
  let n = List.length locs in
  let loc i = List.nth locs (i mod n) in
  let threads =
    List.init n (fun i ->
        [
          write (loc i) 1;
          read (loc (i + 1)) (Printf.sprintf "r%d" (3 * i));
          write (loc i) 2;
          read (loc (i + 2)) (Printf.sprintf "r%d" ((3 * i) + 1));
        ])
  in
  Prog.make ~name
    ~init:(List.map (fun l -> (l, 0)) locs)
    ~exists:(reg_eq 0 "r0" 0) threads

(* The bench harness's original "big3", byte-for-byte the same program
   (three threads racing over three locations) so bench baselines stay
   comparable now that it lives here. *)
let big3 =
  {
    prog = ring_prog ~name:"big3" [ "x"; "y"; "z" ];
    drf0 = false;
    sc_allows = true;
    descr = "scaling: 3-thread ring of racing accesses over 3 locations";
  }

let big4 =
  {
    prog = ring_prog ~name:"big4" [ "w"; "x"; "y"; "z" ];
    drf0 = false;
    sc_allows = true;
    descr = "scaling: 4-thread ring; ~10^5 def2 states, Z4 symmetry";
  }

let big5 =
  {
    prog = ring_prog ~name:"big5" [ "v"; "w"; "x"; "y"; "z" ];
    drf0 = false;
    sc_allows = true;
    descr = "scaling: 5-thread ring; ~10^6+ def2 states, Z5 symmetry";
  }

let scaling = [ big3; big4; big5 ]

let find name =
  List.find_opt
    (fun e -> String.equal (Prog.name e.prog) name)
    (all @ scaling)

let names = List.map (fun e -> Prog.name e.prog) all

(* --- Figure 2 reconstructions --------------------------------------------- *)

(* The paper's Figure 2 depicts two executions on the idealized
   architecture: (a) obeys DRF0 — all conflicting accesses ordered by
   happens-before, through chains of synchronization operations — and (b)
   violates it (P0's accesses conflict with P1's write unordered, and two
   writes conflict unordered).  The published figure's exact event layout
   is ambiguous in our source text, so these programs reconstruct the same
   structure; the per-trace checks in the benches analyze their idealized
   executions exactly as the figure does. *)

let fig2a_execution =
  Prog.make ~name:"fig2a"
    [
      [ write "x" 1; sync_write "a" 1 ];
      [ await "a" 1; read "x" "r1"; sync_write "b" 1 ];
      [ await "b" 1; write "x" 2 ];
    ]

let fig2b_execution =
  Prog.make ~name:"fig2b"
    [
      [ read "y" "r0"; write "x" 1 ];
      [ write "y" 1 ];
      [ write "z" 1; sync_write "b" 1 ];
      [ await "b" 1; read "x" "r3" ];
      [ write "z" 2 ];
    ]
