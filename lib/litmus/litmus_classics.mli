(** Classic litmus tests, including the paper's figures, with expected
    verdicts asserted by the test suite. *)

type entry = {
  prog : Prog.t;
  drf0 : bool;  (** does the program obey DRF0 (Definition 3)? *)
  sc_allows : bool;  (** does SC allow the program's "exists" outcome? *)
  descr : string;
}

val dekker : entry
(** Figure 1: store buffering; SC forbids both-read-0. *)

val dekker_sync : entry
val mp : entry
val mp_sync : entry

val mp_data_spin : entry
(** Section 6: spinning on a flag with a data read — racy under DRF0. *)

val lb : entry
val iriw : entry
val iriw_sync : entry
val corr : entry
val coww : entry
val tas_atomicity : entry
val lock_mutex : entry
val lock_race : entry

val fig3_handoff : entry
(** Figure 3: [W(x); Unset(s)] handing off to [Lock(s); R(x)]. *)

val hb_chain : entry
(** Section 4's transitive happens-before chain through two sync
    locations. *)

val barrier_data_spin : entry
(** Section 6's closing example: a sync-incremented barrier count spun on
    with data reads — racy under DRF0, yet SC on Definition-1 hardware. *)

val read_sync_release : entry
(** DRF0 but not DRF1: the only happens-before path runs through a
    read-only synchronization operation acting as a release. *)

val two_plus_two_w : entry
val two_plus_two_w_sync : entry
val r_test : entry

val fadd_release : entry
(** The barrier pattern done right: sync FADD release, sync await acquire —
    DRF0, unlike {!barrier_data_spin}. *)

val wrc : entry

val all : entry list

val big3 : entry
(** The bench harness's 3-thread ring of racing accesses — same program
    the harness always measured, now shared. *)

val big4 : entry
(** 4-thread ring: ~10^5 def2 states with a Z4 automorphism group — the
    scale-smoke workload for the symmetry reduction and spill store. *)

val big5 : entry
(** 5-thread ring: the stretch workload (10^6+ def2 states). *)

val scaling : entry list
(** [big3; big4; big5] — deliberately beyond litmus size, kept out of
    {!all} so corpus-wide test sweeps stay fast.  {!find} sees them. *)

val find : string -> entry option
(** Looks through {!all} and {!scaling}. *)

val names : string list
(** Names of {!all} only (the litmus-size corpus). *)

val fig2a_execution : Prog.t
(** Reconstruction of Figure 2(a): every conflicting access ordered by
    happens-before through synchronization chains. *)

val fig2b_execution : Prog.t
(** Reconstruction of Figure 2(b): conflicting accesses left unordered. *)
