(** Tokenizer for the litmus text format. *)

type token =
  | INT of int
  | IDENT of string
  | ASSIGN
  | COLON
  | EQ
  | LPAR
  | RPAR
  | LBRACE
  | RBRACE
  | BAR
  | SEMI
  | AND
  | OR
  | NOT
  | PLUS
  | MINUS

exception Lex_error of { pos : int; msg : string }
(** [pos] is the 0-based character index, within the string given to
    {!tokenize}, at which the error was detected. *)

val tokenize : string -> token list
(** @raise Lex_error on an unrecognized character or an out-of-range
    integer literal. *)

val strip_comment : string -> string
(** Remove a trailing [# ...] comment. *)

val is_ident_char : char -> bool

val pp_token : Format.formatter -> token -> unit
