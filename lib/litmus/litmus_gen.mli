(** Random litmus-program generation for differential testing and the
    batch verification service.

    {b The determinism contract.}  Generation is a pure function of
    [(seed, config)]: the generator draws every choice from a splittable
    SplitMix64 PRNG seeded with [seed] alone — no global state, no
    [Random], no environment.  The same [(seed, config)] pair therefore
    yields the same program on every run, every machine, and every
    process, so a batch record (a quarantined job, a JSONL result line)
    that carries the seed and the non-default config flags is a complete
    reproduction recipe: [weakord gen --seed N <flags>] re-emits the
    exact litmus source.  Any change to the generation algorithm or to
    {!default_config} breaks the mapping and must be treated as an
    engine-version bump (the verdict cache keys on it). *)

(** Weighted generator shape.  {!Default} is the frozen historical
    corpus (its seed→program mapping is part of the determinism
    contract and never changes); the others cover shapes the default
    mix underweights:

    - {!Wide}: more threads than the default cap (3 up to
      [max_threads + 2]), each kept short — stresses the machines'
      cross-processor orderings wider than the usual 2–3 threads.
    - {!Deep_await}: longer threads with triple the blocking weight, so
      programs stack several [Await]s per thread — the nesting depth
      the default mix almost never reaches.
    - {!Mixed_sync}: routes extra accesses through one location touched
      both as data {e and} as synchronization — legal for the machines
      but outside the paper's disjoint-location discussion, so a shape
      the theorems must survive, not assume away. *)
type profile = Default | Wide | Deep_await | Mixed_sync

val profile_name : profile -> string
(** ["default"], ["wide"], ["deep-await"], ["mixed-sync"]. *)

val profile_of_string : string -> profile option
(** Inverse of {!profile_name}. *)

val all_profiles : profile list

type config = {
  max_threads : int;
  max_instrs : int;
  num_locs : int;
  num_sync_locs : int;
  allow_rmw : bool;
  allow_await : bool;
  profile : profile;
}

val default_config : config

val generate : ?config:config -> int -> Prog.t
(** Generate program number [seed]. *)

val has_complete_execution : Prog.t -> bool
(** At least one SC interleaving runs to completion (no universal
    deadlock). *)

val generate_live : ?config:config -> ?max_attempts:int -> int -> Prog.t option
(** Like {!generate}, but retries (deterministically) until the program has
    a complete execution. *)

val config_args : config -> string
(** The canonical [weakord gen] flag rendering of a config — empty for
    {!default_config}, e.g. ["--threads 4 --no-await"] otherwise.  A
    record carrying [seed] plus this string is a complete reproduction
    recipe (see the determinism contract above). *)

val pp_config : Format.formatter -> config -> unit

val seed_range : ?config:config -> lo:int -> hi:int -> unit -> (int * Prog.t) Seq.t
(** The corpus driver for seed-range batch jobs: programs [lo..hi]
    (inclusive), generated lazily in seed order.
    @raise Invalid_argument when [lo > hi]. *)
