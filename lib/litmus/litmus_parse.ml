(* Parser for the litmus text format.

   A test looks like:

     name SB                       # optional; defaults to "anon"
     { x=0; y=0 }                  # optional initial memory
     P0          | P1          ;   # header fixes the thread count
     W x 1       | W y 1       ;
     r0 := R y   | r1 := R x   ;
     exists (0:r0=0 /\ 1:r1=0)     # optional

   Instruction cells:
     W loc exp        data write        Ws loc exp       sync write
     r := R loc       data read         r := Rs loc      sync read (Test)
     r := RMW loc exp sync RMW          r := RMWd loc exp  data RMW
     r := TAS loc     TestAndSet        r := FADD loc n  fetch-and-add
     Await loc n      sync spin-read    r := Await loc n
     Awaitd loc n     data spin-read (Section 6's barrier-count data spin)
     Lock loc         blocking TestAndSet
     Unlock loc       sync write of 0 (Unset)
     Fence            full local barrier
     (empty)          no instruction

   Conditions:  cond := disj; disj := conj (\/ conj)*; conj := atom (/\ atom)*;
   atom := ~atom | (cond) | P:reg = int | loc = int | true.  Thread ids in
   conditions may be written [0:r0] or [P0:r0]. *)

open Litmus_lex

exception Parse_error of { line : int; col : int; msg : string }

(* Inner parsing functions operate on token lists and know nothing about
   positions; they raise with line 0 / col 0 and [located] below patches in
   the real coordinates at the line/cell level.  Columns are 1-based;
   [line = 0] means "position unknown" (only possible through the
   token-level entry points [parse_cell] / [parse_condition]). *)

let fail fmt =
  Format.kasprintf (fun msg -> raise (Parse_error { line = 0; col = 0; msg })) fmt

let fail_at ~line ~col fmt =
  Format.kasprintf (fun msg -> raise (Parse_error { line; col; msg })) fmt

(* Run [f], attributing any un-located parse error (and any lexer error) to
   the source region that starts at [line]/[col].  A lexer error's character
   offset is relative to the tokenized substring, so it lands exactly. *)
let located ~line ~col f =
  try f () with
  | Parse_error { line = 0; col = 0; msg } -> raise (Parse_error { line; col; msg })
  | Litmus_lex.Lex_error { pos; msg } ->
      raise (Parse_error { line; col = col + pos; msg })

(* --- token-stream helpers ---------------------------------------------- *)

let expect_ident = function
  | IDENT s :: rest -> (s, rest)
  | t :: _ -> fail "expected identifier, found %a" pp_token t
  | [] -> fail "expected identifier, found end of input"

let expect_int = function
  | INT n :: rest -> (n, rest)
  | t :: _ -> fail "expected integer, found %a" pp_token t
  | [] -> fail "expected integer, found end of input"

let expect tok toks =
  match toks with
  | t :: rest when t = tok -> rest
  | t :: _ -> fail "expected %a, found %a" pp_token tok pp_token t
  | [] -> fail "expected %a, found end of input" pp_token tok

let expect_end what = function
  | [] -> ()
  | t :: _ -> fail "trailing %a after %s" pp_token t what

(* --- expressions -------------------------------------------------------- *)

let rec parse_exp toks =
  let atom, toks = parse_exp_atom toks in
  parse_exp_rest atom toks

and parse_exp_atom = function
  | INT n :: rest -> (Exp.Const n, rest)
  | IDENT r :: rest -> (Exp.Reg r, rest)
  | LPAR :: rest ->
      let e, rest = parse_exp rest in
      (e, expect RPAR rest)
  | t :: _ -> fail "expected expression, found %a" pp_token t
  | [] -> fail "expected expression, found end of input"

and parse_exp_rest acc = function
  | PLUS :: rest ->
      let e, rest = parse_exp_atom rest in
      parse_exp_rest (Exp.Add (acc, e)) rest
  | MINUS :: rest ->
      let e, rest = parse_exp_atom rest in
      parse_exp_rest (Exp.Sub (acc, e)) rest
  | rest -> (acc, rest)

(* --- instructions ------------------------------------------------------- *)

let parse_op_without_target toks =
  match toks with
  | IDENT "W" :: rest ->
      let loc, rest = expect_ident rest in
      let value, rest = parse_exp rest in
      (Instr.Store { kind = Instr.Data; loc; value }, rest)
  | IDENT "Ws" :: rest ->
      let loc, rest = expect_ident rest in
      let value, rest = parse_exp rest in
      (Instr.Store { kind = Instr.Sync; loc; value }, rest)
  | IDENT "Await" :: rest ->
      let loc, rest = expect_ident rest in
      let expect_v, rest = expect_int rest in
      (Instr.await ~kind:Instr.Sync loc expect_v, rest)
  | IDENT "Awaitd" :: rest ->
      let loc, rest = expect_ident rest in
      let expect_v, rest = expect_int rest in
      (Instr.await ~kind:Instr.Data loc expect_v, rest)
  | IDENT "Lock" :: rest ->
      let loc, rest = expect_ident rest in
      (Instr.lock loc, rest)
  | IDENT "Unlock" :: rest ->
      let loc, rest = expect_ident rest in
      (Instr.unlock loc, rest)
  | IDENT "Fence" :: rest -> (Instr.Fence, rest)
  | t :: _ -> fail "unknown instruction starting with %a" pp_token t
  | [] -> fail "empty instruction"

let parse_op_with_target reg toks =
  match toks with
  | IDENT "R" :: rest ->
      let loc, rest = expect_ident rest in
      (Instr.Load { kind = Instr.Data; loc; reg }, rest)
  | IDENT "Rs" :: rest ->
      let loc, rest = expect_ident rest in
      (Instr.Load { kind = Instr.Sync; loc; reg }, rest)
  | IDENT "RMW" :: rest ->
      let loc, rest = expect_ident rest in
      let value, rest = parse_exp rest in
      (Instr.Rmw { kind = Instr.Sync; loc; reg; value }, rest)
  | IDENT "RMWd" :: rest ->
      let loc, rest = expect_ident rest in
      let value, rest = parse_exp rest in
      (Instr.Rmw { kind = Instr.Data; loc; reg; value }, rest)
  | IDENT "TAS" :: rest ->
      let loc, rest = expect_ident rest in
      (Instr.test_and_set loc reg, rest)
  | IDENT "FADD" :: rest ->
      let loc, rest = expect_ident rest in
      let n, rest = expect_int rest in
      (Instr.fetch_and_add loc reg n, rest)
  | IDENT "Await" :: rest ->
      let loc, rest = expect_ident rest in
      let expect_v, rest = expect_int rest in
      (Instr.await ~kind:Instr.Sync ~reg loc expect_v, rest)
  | IDENT "Awaitd" :: rest ->
      let loc, rest = expect_ident rest in
      let expect_v, rest = expect_int rest in
      (Instr.await ~kind:Instr.Data ~reg loc expect_v, rest)
  | t :: _ -> fail "unknown instruction %a after %s :=" pp_token t reg
  | [] -> fail "missing instruction after %s :=" reg

let parse_instr toks =
  match toks with
  | IDENT reg :: ASSIGN :: rest -> parse_op_with_target reg rest
  | _ -> parse_op_without_target toks

let parse_cell_toks = function
  | [] -> None
  | toks ->
      let i, rest = parse_instr toks in
      expect_end "instruction" rest;
      Some i

let parse_cell s =
  located ~line:0 ~col:1 (fun () -> parse_cell_toks (tokenize s))

(* --- conditions --------------------------------------------------------- *)

let thread_id_of_string s =
  (* Accept both "0" (via INT) and "P0" (via IDENT). *)
  if String.length s >= 2 && s.[0] = 'P' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some p -> Some p
    | None -> None
  else None

let rec parse_cond toks =
  let c, toks = parse_conj toks in
  match toks with
  | OR :: rest ->
      let c', rest = parse_cond rest in
      (Cond.Or (c, c'), rest)
  | _ -> (c, toks)

and parse_conj toks =
  let c, toks = parse_catom toks in
  match toks with
  | AND :: rest ->
      let c', rest = parse_conj rest in
      (Cond.And (c, c'), rest)
  | _ -> (c, toks)

and parse_catom = function
  | NOT :: rest ->
      let c, rest = parse_catom rest in
      (Cond.Not c, rest)
  | LPAR :: rest ->
      let c, rest = parse_cond rest in
      (c, expect RPAR rest)
  | IDENT "true" :: rest -> (Cond.True, rest)
  | INT p :: COLON :: IDENT r :: EQ :: rest ->
      let v, rest = expect_int rest in
      (Cond.Reg_eq (p, r, v), rest)
  | IDENT s :: COLON :: IDENT r :: EQ :: rest -> (
      match thread_id_of_string s with
      | Some p ->
          let v, rest = expect_int rest in
          (Cond.Reg_eq (p, r, v), rest)
      | None -> fail "bad thread id %s in condition" s)
  | IDENT loc :: EQ :: rest ->
      let v, rest = expect_int rest in
      (Cond.Mem_eq (loc, v), rest)
  | t :: _ -> fail "unexpected %a in condition" pp_token t
  | [] -> fail "unexpected end of condition"

let parse_condition_toks toks =
  let c, rest = parse_cond toks in
  expect_end "condition" rest;
  c

let parse_condition s =
  located ~line:0 ~col:1 (fun () -> parse_condition_toks (tokenize s))

(* --- init block --------------------------------------------------------- *)

let parse_init toks =
  let rec bindings acc = function
    | RBRACE :: rest ->
        expect_end "init block" rest;
        List.rev acc
    | IDENT loc :: EQ :: rest ->
        let v, rest = expect_int rest in
        let rest = match rest with SEMI :: r -> r | r -> r in
        bindings ((loc, v) :: acc) rest
    | t :: _ -> fail "unexpected %a in init block" pp_token t
    | [] -> fail "unterminated init block"
  in
  match toks with
  | LBRACE :: rest -> bindings [] rest
  | _ -> fail "init block must start with {"

(* --- whole files -------------------------------------------------------- *)

let split_cells line =
  String.split_on_char '|' line

(* Each cell paired with the 1-based column at which it starts in the
   original line — the '|' separators are one character wide, so the
   offsets survive [String.split_on_char]. *)
let split_cells_cols line =
  let _, rev =
    List.fold_left
      (fun (col, acc) cell ->
        (col + String.length cell + 1, (col, cell) :: acc))
      (1, []) (split_cells line)
  in
  List.rev rev

let is_blank s = String.trim s = ""

let leading_ws s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\r') do
    incr i
  done;
  !i

let starts_with_word w line =
  let line = String.trim line in
  String.length line >= String.length w
  && String.sub line 0 (String.length w) = w
  && (String.length line = String.length w
     || not (Litmus_lex.is_ident_char line.[String.length w]))

let drop_word w line =
  let line = String.trim line in
  String.trim (String.sub line (String.length w) (String.length line - String.length w))

(* [drop_word] plus the 1-based column in the original line at which the
   remainder starts, for error attribution. *)
let drop_word_col w line =
  let start = leading_ws line + String.length w in
  let rest = String.sub line start (String.length line - start) in
  (String.trim rest, start + leading_ws rest + 1)

let parse_string ?(name = "anon") text =
  let raw_lines = String.split_on_char '\n' text in
  let last_line = List.length raw_lines in
  (* Number lines before dropping blanks, so errors report positions in the
     original text. *)
  let lines =
    List.mapi (fun i l -> (i + 1, Litmus_lex.strip_comment l)) raw_lines
    |> List.filter (fun (_, l) -> not (is_blank l))
  in
  let here = function (ln, _) :: _ -> ln | [] -> last_line in
  let name, lines =
    match lines with
    | (_, l) :: rest when starts_with_word "name" l -> (drop_word "name" l, rest)
    | _ -> (name, lines)
  in
  let init, lines =
    match lines with
    | (ln, l) :: rest
      when String.length (String.trim l) > 0 && (String.trim l).[0] = '{' ->
        (located ~line:ln ~col:1 (fun () -> parse_init (tokenize l)), rest)
    | _ -> ([], lines)
  in
  let header, lines =
    match lines with
    | (_, l) :: rest when String.contains l '|' || starts_with_word "P0" l ->
        (split_cells l, rest)
    | _ ->
        fail_at ~line:(here lines) ~col:1
          "missing thread header row (e.g. \"P0 | P1 ;\")"
  in
  let strip_semi s =
    let s = String.trim s in
    if String.length s > 0 && s.[String.length s - 1] = ';' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  let nthreads = List.length (List.map strip_semi header) in
  let body, cond_lines =
    let rec split acc = function
      | [] -> (List.rev acc, [])
      | (_, l) :: _ as rest when starts_with_word "exists" l ->
          (List.rev acc, rest)
      | l :: rest -> split (l :: acc) rest
    in
    split [] lines
  in
  let rows =
    List.map
      (fun (ln, line) ->
        let cells = split_cells_cols line in
        let cells =
          if List.length cells > nthreads then
            fail_at ~line:ln ~col:1
              "row has %d cells but header declares %d threads"
              (List.length cells) nthreads
          else
            cells
            @ List.init (nthreads - List.length cells) (fun _ -> (1, ""))
        in
        List.map
          (fun (col, cell) ->
            let cell' = strip_semi cell in
            located ~line:ln ~col:(col + leading_ws cell) (fun () ->
                parse_cell_toks (tokenize cell')))
          cells)
      body
  in
  let threads =
    List.init nthreads (fun p ->
        List.filter_map (fun row -> List.nth row p) rows)
  in
  let exists =
    match cond_lines with
    | [] -> None
    | (ln, l) :: rest ->
        (match rest with
        | [] -> ()
        | (ln', l') :: _ ->
            fail_at ~line:ln' ~col:(leading_ws l' + 1)
              "unexpected content after the exists condition");
        let cond_str, col = drop_word_col "exists" l in
        Some
          (located ~line:ln ~col (fun () ->
               parse_condition_toks (tokenize cond_str)))
  in
  Prog.make ~name ~init ?exists threads

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let base = Filename.remove_extension (Filename.basename path) in
  parse_string ~name:base text
