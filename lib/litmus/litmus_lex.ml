(* Tokenizer for the litmus text format.  The format is line-structured; this
   lexer handles the tokens within a line segment. *)

type token =
  | INT of int
  | IDENT of string
  | ASSIGN  (** [:=] *)
  | COLON
  | EQ
  | LPAR
  | RPAR
  | LBRACE
  | RBRACE
  | BAR
  | SEMI
  | AND  (** [/\ ] *)
  | OR  (** [\/] *)
  | NOT  (** [~] *)
  | PLUS
  | MINUS

exception Lex_error of { pos : int; msg : string }
(* [pos] is the 0-based character index in the string given to [tokenize]. *)

let lex_fail pos fmt =
  Format.kasprintf (fun msg -> raise (Lex_error { pos; msg })) fmt

let pp_token ppf = function
  | INT n -> Fmt.pf ppf "%d" n
  | IDENT s -> Fmt.string ppf s
  | ASSIGN -> Fmt.string ppf ":="
  | COLON -> Fmt.string ppf ":"
  | EQ -> Fmt.string ppf "="
  | LPAR -> Fmt.string ppf "("
  | RPAR -> Fmt.string ppf ")"
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | BAR -> Fmt.string ppf "|"
  | SEMI -> Fmt.string ppf ";"
  | AND -> Fmt.string ppf "/\\"
  | OR -> Fmt.string ppf "\\/"
  | NOT -> Fmt.string ppf "~"
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let rec scan i acc =
    if i >= n then List.rev acc
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\r' then scan (i + 1) acc
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit s.[!j] do
          incr j
        done;
        let lit = String.sub s i (!j - i) in
        match int_of_string_opt lit with
        | Some v -> scan !j (INT v :: acc)
        | None -> lex_fail i "integer literal %s does not fit in an int" lit
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do
          incr j
        done;
        scan !j (IDENT (String.sub s i (!j - i)) :: acc)
      end
      else
        let two = if i + 1 < n then String.sub s i 2 else "" in
        match two with
        | ":=" -> scan (i + 2) (ASSIGN :: acc)
        | "/\\" -> scan (i + 2) (AND :: acc)
        | "\\/" -> scan (i + 2) (OR :: acc)
        | _ -> (
            match c with
            | ':' -> scan (i + 1) (COLON :: acc)
            | '=' -> scan (i + 1) (EQ :: acc)
            | '(' -> scan (i + 1) (LPAR :: acc)
            | ')' -> scan (i + 1) (RPAR :: acc)
            | '{' -> scan (i + 1) (LBRACE :: acc)
            | '}' -> scan (i + 1) (RBRACE :: acc)
            | '|' -> scan (i + 1) (BAR :: acc)
            | ';' -> scan (i + 1) (SEMI :: acc)
            | '~' -> scan (i + 1) (NOT :: acc)
            | '+' -> scan (i + 1) (PLUS :: acc)
            | '-' ->
                (* A minus immediately before a digit is a negative literal. *)
                if i + 1 < n && is_digit s.[i + 1] then begin
                  let j = ref (i + 1) in
                  while !j < n && is_digit s.[!j] do
                    incr j
                  done;
                  let lit = String.sub s (i + 1) (!j - i - 1) in
                  match int_of_string_opt lit with
                  | Some v -> scan !j (INT (-v) :: acc)
                  | None ->
                      lex_fail i "integer literal -%s does not fit in an int"
                        lit
                end
                else scan (i + 1) (MINUS :: acc)
            | _ -> lex_fail i "unexpected character %C" c)
  in
  scan 0 []

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line
