(** Parser for the litmus text format.

    A test file looks like:
    {v
    name SB
    { x=0; y=0 }
    P0          | P1          ;
    W x 1       | W y 1       ;
    r0 := R y   | r1 := R x   ;
    exists (0:r0=0 /\ 1:r1=0)
    v}

    Instruction cells: [W loc exp] (data write), [Ws loc exp] (sync write),
    [r := R loc] / [r := Rs loc] (data/sync read), [r := RMW loc exp] /
    [r := RMWd loc exp], [r := TAS loc], [r := FADD loc n],
    [Await loc n] / [r := Await loc n] / [Awaitd loc n], [Lock loc],
    [Unlock loc], [Fence], or empty.  [#] starts a comment. *)

exception Parse_error of { line : int; col : int; msg : string }
(** Malformed input.  [line] and [col] are 1-based positions in the parsed
    text; [msg] names what was found and, where applicable, what was
    expected instead.  [line = 0] means the position is unknown (only
    possible through the sub-term entry points {!parse_condition} and
    {!parse_cell}, which parse bare strings with no line context).

    This is the only exception any entry point below raises on bad input:
    lexer errors ({!Litmus_lex.Lex_error}) are caught and re-raised as
    [Parse_error] with the character offset folded into [col]. *)

val parse_string : ?name:string -> string -> Prog.t
(** Parse a whole test.  [name] is the fallback if the text has no [name]
    line.
    @raise Parse_error on malformed input, with the line/column of the
    offending cell or token. *)

val parse_file : string -> Prog.t
(** Parse a file; the default name is the file's basename.
    @raise Parse_error on malformed input
    @raise Sys_error if the file cannot be read *)

val parse_condition : string -> Cond.t
(** Parse just a condition, e.g. ["0:r0=0 /\\ x=1"].
    @raise Parse_error on malformed input (with [line = 0]). *)

val parse_cell : string -> Instr.t option
(** Parse one instruction cell; [None] for a blank cell.
    @raise Parse_error on malformed input (with [line = 0]). *)
