(* Random litmus-program generation, for differential testing.

   The point is to test the paper's theorems on programs nobody wrote by
   hand: DRF0 programs must appear SC on the def1/def2 machines, the
   sync-order DRF0 checker must agree with the literal Definition 3, the
   axiomatic SC model must agree with the operational interleaver, and the
   operational machines must stay within their axiomatic envelopes.

   Programs are kept small (the analyses are exhaustive) and are built from
   a deterministic splittable PRNG so failures are reproducible from the
   integer seed alone.  Blocking instructions ([Await]/[Lock]) are
   generated only in value patterns guaranteed to complete in at least one
   interleaving (an await for [v] requires some thread to write [v] to that
   location first), keeping deadlock-only programs rare but not impossible
   — exhaustive analyses handle those anyway. *)

(* Weighted generator shapes.  [Default] is the historical corpus and
   is frozen: its draw sequence must stay byte-identical (the verdict
   cache and every recorded seed recipe key on it).  The other profiles
   cover the shapes ROADMAP names as underweighted — they are *new*
   mappings from seed to program, free to draw differently. *)
type profile = Default | Wide | Deep_await | Mixed_sync

let profile_name = function
  | Default -> "default"
  | Wide -> "wide"
  | Deep_await -> "deep-await"
  | Mixed_sync -> "mixed-sync"

let profile_of_string = function
  | "default" -> Some Default
  | "wide" -> Some Wide
  | "deep-await" -> Some Deep_await
  | "mixed-sync" -> Some Mixed_sync
  | _ -> None

let all_profiles = [ Default; Wide; Deep_await; Mixed_sync ]

type config = {
  max_threads : int;
  max_instrs : int;  (** per thread *)
  num_locs : int;
  num_sync_locs : int;
  allow_rmw : bool;
  allow_await : bool;
  profile : profile;
}

let default_config =
  {
    max_threads = 3;
    max_instrs = 3;
    num_locs = 2;
    num_sync_locs = 2;
    allow_rmw = true;
    allow_await = true;
    profile = Default;
  }

(* A tiny deterministic PRNG (SplitMix64-style) so generation depends only
   on the seed, not on global state. *)
module Rng = struct
  type t = { mutable state : int64 }

  let make seed = { state = Int64.of_int seed }

  let next t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Rng.int";
    Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

  let bool t = int t 2 = 0
  let pick t xs = List.nth xs (int t (List.length xs))
end

let data_loc i = Printf.sprintf "x%d" i
let sync_loc i = Printf.sprintf "s%d" i

(* Values written to a location are drawn from a small palette so that
   awaits have a real chance to find their expected value. *)
let gen_value rng = 1 + Rng.int rng 2

(* The location every [Mixed_sync] program routes both kinds through:
   the paper keeps data and synchronization locations disjoint, so a
   location carrying both is exactly the corpus shape the default
   profile never produces. *)
let mixed_loc = data_loc 0

let gen_instr cfg rng ~proc ~idx =
  let reg = Printf.sprintf "r%d_%d" proc idx in
  let dloc () = data_loc (Rng.int rng cfg.num_locs) in
  let sloc () = sync_loc (Rng.int rng cfg.num_sync_locs) in
  let base =
    [ `Data_read; `Data_write; `Sync_read; `Sync_write ]
    @ (if cfg.allow_rmw then [ `Rmw ] else [])
    @ if cfg.allow_await then [ `Await; `Await_data ] else []
  in
  let choices =
    match cfg.profile with
    | Default | Wide -> base
    | Deep_await ->
        (* Triple the blocking weight: threads stack several awaits, the
           nesting depth the default mix almost never reaches. *)
        base
        @ (if cfg.allow_await then [ `Await; `Await; `Await_data ]
           else [ `Sync_write ])
    | Mixed_sync -> base @ [ `Mixed_access; `Mixed_access ]
  in
  match Rng.pick rng choices with
  | `Data_read -> Instr.read (dloc ()) reg
  | `Data_write -> Instr.write (dloc ()) (gen_value rng)
  | `Sync_read -> Instr.sync_read (sloc ()) reg
  | `Sync_write -> Instr.sync_write (sloc ()) (gen_value rng)
  | `Rmw ->
      if Rng.bool rng then Instr.test_and_set (sloc ()) reg
      else Instr.fetch_and_add (sloc ()) reg 1
  | `Await -> Instr.await (sloc ()) (gen_value rng)
  | `Await_data ->
      (* The Section 6 idiom: a data-read spin on a location others write
         (racy under DRF0 — exactly the behaviours the theorems must
         distinguish). *)
      Instr.await ~kind:Instr.Data (dloc ()) (gen_value rng)
  | `Mixed_access -> (
      (* One location, both kinds: half the draws touch [mixed_loc] as
         data, half as synchronization. *)
      match (Rng.bool rng, Rng.bool rng) with
      | true, true -> Instr.read mixed_loc reg
      | true, false -> Instr.write mixed_loc (gen_value rng)
      | false, true -> Instr.load ~kind:Instr.Sync mixed_loc reg
      | false, false ->
          Instr.store ~kind:Instr.Sync mixed_loc
            (Exp.Const (gen_value rng)))

let generate ?(config = default_config) seed =
  let rng = Rng.make seed in
  let nthreads =
    match config.profile with
    | Default | Deep_await | Mixed_sync ->
        2 + Rng.int rng (config.max_threads - 1)
    | Wide ->
        (* More threads than the default cap, each kept short below, so
           wide programs stay exhaustively explorable. *)
        3 + Rng.int rng config.max_threads
  in
  let instrs_per_thread () =
    match config.profile with
    | Default | Mixed_sync -> 1 + Rng.int rng config.max_instrs
    | Wide -> 1 + Rng.int rng (max 1 (config.max_instrs - 1))
    | Deep_await -> 2 + Rng.int rng (config.max_instrs + 1)
  in
  let threads =
    List.init nthreads (fun proc ->
        let n = instrs_per_thread () in
        List.init n (fun idx -> gen_instr config rng ~proc ~idx))
  in
  Prog.make ~name:(Printf.sprintf "gen%d" seed) threads

(* Some generated programs deadlock in every interleaving (an await whose
   value is never written).  They have no complete executions, so every
   "for all executions" claim holds vacuously; filter them out when a test
   needs live programs. *)
let has_complete_execution prog = not (Final.Set.is_empty (Sc.outcomes prog))

let generate_live ?(config = default_config) ?(max_attempts = 50) seed =
  let rec go i =
    if i >= max_attempts then None
    else
      let prog = generate ~config (seed + (1000003 * i)) in
      if has_complete_execution prog then Some prog else go (i + 1)
  in
  go 0

(* --- the determinism contract, rendered ------------------------------------

   A generated job is reproducible from (seed, config) alone, so any
   record that quarantines or reports one must carry both.  [config_args]
   is the canonical rendering: the exact `weakord gen` flags that rebuild
   the program, empty for the default config. *)

let config_args cfg =
  let flag name v dflt = if v = dflt then [] else [ Printf.sprintf "--%s %d" name v ] in
  let bool name v dflt = if v = dflt then [] else [ "--" ^ name ] in
  String.concat " "
    (flag "threads" cfg.max_threads default_config.max_threads
    @ flag "instrs" cfg.max_instrs default_config.max_instrs
    @ flag "locs" cfg.num_locs default_config.num_locs
    @ flag "sync-locs" cfg.num_sync_locs default_config.num_sync_locs
    @ bool "no-rmw" cfg.allow_rmw default_config.allow_rmw
    @ bool "no-await" cfg.allow_await default_config.allow_await
    @
    if cfg.profile = Default then []
    else [ "--profile " ^ profile_name cfg.profile ])

let pp_config ppf cfg =
  Format.fprintf ppf
    "threads<=%d instrs<=%d locs=%d sync-locs=%d rmw=%b await=%b profile=%s"
    cfg.max_threads cfg.max_instrs cfg.num_locs cfg.num_sync_locs
    cfg.allow_rmw cfg.allow_await (profile_name cfg.profile)

let seed_range ?(config = default_config) ~lo ~hi () =
  if lo > hi then invalid_arg "Litmus_gen.seed_range: lo > hi";
  Seq.map (fun s -> (s, generate ~config s)) (Seq.ints lo |> Seq.take (hi - lo + 1))
