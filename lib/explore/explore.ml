(* Exhaustive exploration of an abstract machine.

   The engine computes the complete set of outcomes a machine allows for a
   program as the union of [M.final] over every reachable state — a
   reachability sweep with a hash-consed transposition table, not a
   per-state memoized fold.  Two execution strategies share that shape:

   - sequential: an explicit-stack DFS with a single interner; and
   - parallel ([~domains:n], n > 1): a frontier-based sweep over [n]
     domains with a sharded claim table and a shared overflow queue.

   Both honour the bound contract: [fuel] and the wall-clock/memory budget
   only cut branches, so a [Partial] result is always a sound subset of
   the complete outcome set — exploration never invents outcomes.  In the
   parallel engine the set of states cut depends on the schedule, but the
   subset property (and, when nothing is cut, equality with the sequential
   result) does not.

   Partial-order reduction.  When the machine declares an oracle
   ([M.por]), the engine prunes provably outcome-preserving transitions:

   - both engines fire the machine's *ample* transition alone where the
     oracle proves one exists (the persistent-set argument: the chosen
     transition commutes with everything other processors can do before
     it and occurs in every complete run, so reordering recovers every
     outcome);
   - the sequential engine additionally runs *sleep sets* (Godefroid's
     state-caching variant): a transition explored from some earlier
     branch of the search is not re-fired from sibling states it
     commutes into, and each visited state remembers the sleep set it
     was first expanded under so a later visit with a smaller sleep set
     re-fires exactly the newly awake transitions.  The parallel engine
     keeps to ample-only reduction — sleep sets depend on the visit
     order, which a parallel sweep does not fix, and the claimed-state
     set must stay schedule-independent.

   Every machine graph here is acyclic (issues consume program positions,
   drains consume buffer entries), finals are sinks, and persistent +
   sleep sets preserve all sinks, so the reduced sweep reaches the same
   outcome set; the differential suite pins this machine by machine.
   Reduction composes with the bound contract unchanged: a reduced
   [Partial] is still a sound subset.  Degraded Bloom mode disables
   reduction loudly — the approximate visited set cannot support the
   sleep-set revisit protocol, and a degraded run is already pinned
   [Partial].

   The resilience layer rides on three hooks:

   - every bound is checked *before* a state is claimed, so a stopped
     sweep leaves every unexpanded state in the frontier and the
     (frontier, transposition table, outcome accumulator) triple is a
     complete resume point;
   - that triple is periodically marshalled into a CRC-checked
     [Snapshot] frame and handed to the configured sink — and once more
     when a budget stops the sweep;
   - when the visited set crosses the memory budget, the sequential
     engine migrates it into a Bloom filter and keeps going: a
     false-positive "seen" can only prune, so the outcome set stays a
     sound subset, and the result is pinned [Partial] so degraded
     coverage is never reported exhaustive.  (The parallel engine drains
     at the budget instead — its sharded exact table cannot be swapped
     mid-sweep without a barrier.) *)

type 'a bounded = Complete of 'a | Partial of 'a

let bounded_value = function Complete v | Partial v -> v
let is_complete = function Complete _ -> true | Partial _ -> false

type stop_reason =
  | Fuel_exhausted
  | Deadline_exceeded
  | Memory_exhausted
  | Cancelled

let stop_reason_string = function
  | Fuel_exhausted -> "fuel"
  | Deadline_exceeded -> "deadline"
  | Memory_exhausted -> "memory"
  | Cancelled -> "cancel"

type stats = {
  states_expanded : int;
  domains_used : int;
  claimed : int;
  claimed_per_shard : int array;
  donations : int;
  table_buckets : int;
  max_probe : int;
  degraded_at : int option;
  por_enabled : bool;
  oracle_calls : int;
  ample_hits : int;
  suppressed : int;
  sym_group : int;
  sym_hits : int;
  spilled_runs : int;
  spilled_keys : int;
}

(* Telemetry for engines that do not run a sharded sweep (the SC
   interleaving enumerator): one "shard" holding every claimed state. *)
let basic_stats ?(por_enabled = false) ?(oracle_calls = 0) ?(ample_hits = 0)
    ?(suppressed = 0) ?(sym_group = 1) ?(sym_hits = 0) ~states_expanded
    ~domains_used () =
  {
    states_expanded;
    domains_used;
    claimed = states_expanded;
    claimed_per_shard = [| states_expanded |];
    donations = 0;
    table_buckets = 0;
    max_probe = 0;
    degraded_at = None;
    por_enabled;
    oracle_calls;
    ample_hits;
    suppressed;
    sym_group;
    sym_hits;
    spilled_runs = 0;
    spilled_keys = 0;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d state(s) expanded, %d claimed over %d shard(s), %d donation(s)"
    s.states_expanded s.claimed
    (Array.length s.claimed_per_shard)
    s.donations;
  if s.table_buckets > 0 then
    Format.fprintf ppf "; table: %d bucket(s), occupancy %.2f, max probe %d"
      s.table_buckets
      (float_of_int s.claimed /. float_of_int s.table_buckets)
      s.max_probe;
  if s.por_enabled then
    Format.fprintf ppf
      "; por: %d oracle call(s), %d ample hit(s), %d transition(s) suppressed"
      s.oracle_calls s.ample_hits s.suppressed;
  if s.sym_group > 1 then
    Format.fprintf ppf "; sym: group order %d, %d orbit hit(s)" s.sym_group
      s.sym_hits;
  if s.spilled_runs > 0 then
    Format.fprintf ppf "; spill: %d run(s), %d key(s) on disk" s.spilled_runs
      s.spilled_keys;
  match s.degraded_at with
  | Some n -> Format.fprintf ppf "; DEGRADED to Bloom visited set at %d" n
  | None -> ()

type run_result = {
  result : Final.Set.t bounded;
  stats : stats;
  stop : stop_reason option;
}

(* --- resilience configuration ---------------------------------------------- *)

let checkpoint_every_default = 1000

(* Hot-tier cap of the spill store, in keys: a flush is forced when the
   RAM tier reaches this many keys even without a memory budget, so a
   spilling sweep's resident set stays bounded by construction. *)
let spill_flush_default = 65_536

type rcfg = {
  budget : Budget.t option;
  checkpoint_every : int;
  snapshot_sink : (string -> unit) option;
  resume : string option;
  sym : bool;
  spill_dir : string option;
  spill_threshold : int;
  obs : Obs.t;
  on_event : string -> unit;
  cancel : (unit -> bool) option;
}

let rcfg_default =
  {
    budget = None;
    checkpoint_every = checkpoint_every_default;
    snapshot_sink = None;
    resume = None;
    sym = true;
    spill_dir = None;
    spill_threshold = spill_flush_default;
    obs = Obs.null;
    on_event = ignore;
    cancel = None;
  }

exception Resume_rejected of string

(* Shard count for the parallel claim table; a power of two well above any
   sensible domain count keeps lock contention negligible. *)
let n_shards = 64

(* Reduction is pure overhead on programs whose state space fits in a few
   thousand states: the oracle tests cost more than the states they save.
   Every built-in corpus program is under this bar; [big3]-sized programs
   (12+ instructions) are over it.  Overridable per run for tests. *)
let por_min_instrs_default = 11

(* Adaptive parallelism: a requested multi-domain run first sweeps
   sequentially, and only fans out to domains if it is still going after
   this many states — spawning domains for a sub-millisecond sweep costs
   40-200x the sweep itself. *)
let spill_threshold_default = 2000

module Make (M : Machine_sig.MACHINE) = struct
  (* Keys are hashed once, when first canonicalized; the table, the
     shard selector and the Bloom filter all reuse the cached hash, and
     equality fast-fails on it. *)
  type hkey = { kh : int; kk : M.key }

  module H = Hashtbl.Make (struct
    type t = hkey

    let hash k = k.kh
    let equal a b = a.kh = b.kh && M.equal a.kk b.kk
  end)

  let hkey k = { kh = M.hash k; kk = k }

  (* --- snapshots ------------------------------------------------------------ *)

  (* A state's canonical key is immutable structural data, so the whole
     resume point marshals cleanly: no closures, no custom blocks.  The
     CRC in the [Snapshot] frame guards the unmarshal — only validated
     payloads are ever decoded.

     With reduction, visited states carry their stored sleep set and
     frontier states their arrival sleep set: the sleep-set revisit
     protocol resumes exactly where it stopped.  A run without reduction
     (and any parallel run) stores empty sleep lists. *)

  type visited_repr =
    | Exact_keys of (M.key * Machine_sig.action list) array
    | Bloom_filter of Bloom.state
    | Spilled of Spill_store.state
        (** visited set lives in a tiered spill store: hot keys inline,
            the rest named by immutable run files on disk *)

  type snap = {
    s_fingerprint : string;  (** name + printed program: identity check *)
    s_reduce : bool;  (** partial-order reduction active for the run *)
    s_sym : bool;  (** symmetry reduction active for the run *)
    s_visited : visited_repr;
    s_claimed : int;
    s_frontier : (M.state * Machine_sig.action list) list;
    s_acc : Final.Set.t;
    s_expanded : int;
    s_sym_hits : int;
        (** carried so a resumed run's telemetry continues the count —
            the verbose report stays byte-identical across kill/resume *)
    s_degraded_at : int option;
  }

  (* "explore3": the resume payload gained the symmetry mode pin and the
     spill-store visited representation; older snapshots are rejected by
     kind rather than misread. *)
  let snap_kind = "weakord.explore3/" ^ M.name

  let fingerprint prog =
    Format.asprintf "%s|%a" (Prog.name prog) Prog.pp prog

  let encode_snap s =
    Snapshot.frame ~kind:snap_kind
      ~meta:
        (Printf.sprintf "%d state(s) expanded, frontier %d" s.s_expanded
           (List.length s.s_frontier))
      ~payload:(Marshal.to_string s [])

  let decode_snap ~prog bytes =
    match Snapshot.unframe bytes with
    | Error e -> raise (Resume_rejected (Snapshot.error_string e))
    | Ok c ->
        if not (String.equal c.Snapshot.kind snap_kind) then
          raise
            (Resume_rejected
               (Printf.sprintf "snapshot was taken by %S, this engine is %S"
                  c.Snapshot.kind snap_kind));
        let s =
          try (Marshal.from_string c.Snapshot.payload 0 : snap)
          with Failure _ | Invalid_argument _ ->
            raise (Resume_rejected "snapshot payload does not unmarshal")
        in
        if not (String.equal s.s_fingerprint (fingerprint prog)) then
          raise
            (Resume_rejected
               "snapshot was taken for a different program (fingerprint \
                mismatch)");
        s

  let snapshot_frontier_length bytes =
    match Snapshot.unframe bytes with
    | Error e -> raise (Resume_rejected (Snapshot.error_string e))
    | Ok c -> (
        match (Marshal.from_string c.Snapshot.payload 0 : snap) with
        | s -> List.length s.s_frontier
        | exception (Failure _ | Invalid_argument _) ->
            raise (Resume_rejected "snapshot payload does not unmarshal"))

  (* Sleep-set state only ever comes from a reduced *sequential* run, and
     only the sequential engine can honour its revisit protocol. *)
  let snap_has_sleeps s =
    (match s.s_visited with
    | Exact_keys pairs -> Array.exists (fun (_, sl) -> sl <> []) pairs
    | Bloom_filter _ | Spilled _ -> false)
    || List.exists (fun (_, sl) -> sl <> []) s.s_frontier

  (* Rough per-entry cost of the exact visited set: the key's reachable
     words plus a few words of hash-table binding.  Measured once per run
     on the initial state's key — deterministic, so memory-budget
     behaviour is reproducible. *)
  let entry_bytes_estimate prog =
    let k = M.canon (M.initial prog) in
    (Obj.reachable_words (Obj.repr k) + 4) * (Sys.word_size / 8)

  (* Bloom probes come from two independent structural hashes of the key:
     the machine's own (cached in the [hkey]) and a seeded stdlib
     traversal. *)
  let bloom_hashes hk =
    (hk.kh, Hashtbl.seeded_hash_param 128 256 0x9e3779b9 hk.kk)

  (* --- sequential engine ---------------------------------------------------- *)

  (* A frontier entry: the state plus the sleep set it arrives with
     (always [[]] without reduction). *)
  type fentry = { fs : M.state; fsleep : Machine_sig.action list }

  (* [run_seq] is both the one-domain engine (ample + sleep sets when the
     oracle is on and [use_sleep]) and the adaptive probe for a
     multi-domain request ([use_sleep:false], ample-only, so its visited
     set can be handed to the parallel engine at [spill]).  Returns the
     spill resume point instead of finishing when the threshold hits. *)
  let run_seq ~oracle:oracle0 ~use_sleep ?spill ~perms ~store ~resumed ~fuel
      ~(rcfg : rcfg) prog =
    (* The interner doubles as the transposition table: a key's presence
       means the state was claimed; its value is the sleep set stored by
       the first expansion, consulted on revisits.  Keys are stored once;
       no marshalled strings.  With a spill store the table is bypassed
       entirely: membership lives in the store (hot tier + disk runs),
       which is valid because a spilling run never uses sleep sets. *)
    let visited : Machine_sig.action list ref H.t = H.create 4096 in
    let bloom = ref None in
    let claimed = ref 0 in
    let acc = ref Final.Set.empty in
    let expanded = ref 0 in
    let degraded_at = ref None in
    let oracle = ref oracle0 in
    let reduce_on = oracle0 <> None in
    let oracle_calls = ref 0 in
    let ample_hits = ref 0 in
    let suppressed = ref 0 in
    let sym_hits = ref 0 in
    let stack = ref [ { fs = M.initial prog; fsleep = [] } ] in
    let stop = ref None in
    let spilled = ref false in
    let entry_bytes = entry_bytes_estimate prog in
    (* The least key of the state's orbit under the program's automorphism
       group: the transposition-table probe identifies a state with every
       symmetric image of it.  [perms = []] is the identity fold — free. *)
    let orbit_min k =
      match perms with
      | [] -> k
      | _ ->
          let m =
            List.fold_left
              (fun m pi ->
                let k' = M.permute pi k in
                if compare k' m < 0 then k' else m)
              k perms
          in
          if m != k then incr sym_hits;
          m
    in
    (* Restore a resume point before the sweep starts. *)
    (match resumed with
    | None -> ()
    | Some s ->
        (match (s.s_visited, store) with
        | _, Some _ ->
            (* [run] already loaded the spill store (import, or a fresh
               store seeded from the snapshot's exact keys). *)
            ()
        | Exact_keys pairs, None ->
            Array.iter
              (fun (k, sl) ->
                let hk = hkey k in
                if not (H.mem visited hk) then H.add visited hk (ref sl))
              pairs
        | Bloom_filter bs, None -> bloom := Some (Bloom.import bs)
        | Spilled _, None -> assert false (* rejected in [run] *));
        claimed := s.s_claimed;
        acc := s.s_acc;
        expanded := s.s_expanded;
        sym_hits := s.s_sym_hits;
        degraded_at := s.s_degraded_at;
        if !degraded_at <> None then oracle := None;
        stack := List.map (fun (st, sl) -> { fs = st; fsleep = sl }) s.s_frontier;
        Obs.instant rcfg.obs ~cat:"explore" ~name:"resume" ~tid:0
          ~ts:s.s_expanded ~loc:"" ~cause:"";
        rcfg.on_event
          (Printf.sprintf
             "resumed %s/%s: %d state(s) already expanded, frontier %d%s"
             M.name (Prog.name prog) s.s_expanded (List.length s.s_frontier)
             (match s.s_degraded_at with
             | Some n ->
                 Printf.sprintf " (degraded to Bloom visited set at %d)" n
             | None -> "")));
    let make_snap () =
      (* Stored sleep sets exist only to answer the revisit protocol
         while exploration continues.  Once the frontier is empty nothing
         will ever be revisited, so the final snapshot drops them — they
         are the expensive part of the payload (per-key action lists vs.
         bare keys). *)
      let keep_sleeps = !stack <> [] in
      let repr =
        match store with
        | Some sp -> Spilled (Spill_store.export sp)
        | None -> (
            match !bloom with
            | Some b -> Bloom_filter (Bloom.export b)
            | None ->
                let pairs =
                  Array.make (H.length visited)
                    (M.canon (M.initial prog), ([] : Machine_sig.action list))
                in
                let i = ref 0 in
                H.iter
                  (fun hk sl ->
                    pairs.(!i) <- (hk.kk, (if keep_sleeps then !sl else []));
                    incr i)
                  visited;
                Exact_keys pairs)
      in
      {
        s_fingerprint = fingerprint prog;
        s_reduce = reduce_on;
        s_sym = perms <> [];
        s_visited = repr;
        s_claimed = !claimed;
        s_frontier = List.map (fun f -> (f.fs, f.fsleep)) !stack;
        s_acc = !acc;
        s_expanded = !expanded;
        s_sym_hits = !sym_hits;
        s_degraded_at = !degraded_at;
      }
    in
    let take_snapshot () = encode_snap (make_snap ()) in
    (* Periodic snapshots are throttled by their own cost: one is skipped
       while taking it would spend more than ~5% of the wall-clock since
       the last one (snapshot cost grows with the visited set, so a fixed
       expansion interval would go quadratic on big sweeps).  [~force]
       (stop/final snapshots) bypasses the throttle — a suspension always
       leaves a current resume point. *)
    let last_snap_end = ref neg_infinity in
    let last_snap_cost = ref 0. in
    let checkpoint ~force () =
      match rcfg.snapshot_sink with
      | None -> ()
      | Some sink ->
          let now = Unix.gettimeofday () in
          if force || now -. !last_snap_end >= 20. *. !last_snap_cost then begin
            sink (take_snapshot ());
            let fin = Unix.gettimeofday () in
            last_snap_end := fin;
            last_snap_cost := fin -. now;
            Obs.instant rcfg.obs ~cat:"explore" ~name:"checkpoint" ~tid:0
              ~ts:!expanded ~loc:"" ~cause:""
          end
    in
    (* Migrate the exact table into a Bloom filter: sized at ~32 bits per
       key already claimed (with a 2^20 floor) the false-positive rate is
       negligible at litmus scale, and the byte cost per future state
       drops from hundreds to four bits.  The approximate table cannot
       answer the sleep-set revisit protocol, so reduction is switched
       off for the rest of the sweep — the run is pinned Partial anyway. *)
    let degrade () =
      let bits = max (1 lsl 20) (32 * !claimed) in
      let b = Bloom.create ~bits in
      H.iter
        (fun hk _ ->
          let h1, h2 = bloom_hashes hk in
          ignore (Bloom.add_mem b h1 h2))
        visited;
      H.reset visited;
      bloom := Some b;
      degraded_at := Some !expanded;
      let por_note =
        if !oracle <> None then begin
          oracle := None;
          "; partial-order reduction disabled for the rest of the sweep"
        end
        else ""
      in
      Obs.instant rcfg.obs ~cat:"explore" ~name:"degrade" ~tid:0 ~ts:!expanded
        ~loc:"" ~cause:"mem-budget";
      rcfg.on_event
        (Printf.sprintf
           "memory budget crossed at %d state(s) (~%d bytes of visited \
            set): degrading to a Bloom-filter visited set (%d bits) — \
            coverage is now approximate, the verdict will be Partial%s"
           !expanded (!claimed * entry_bytes) (Bloom.bits b) por_note)
    in
    (* The spill-store counterpart of [degrade]: crossing the memory
       budget flushes the hot tier into an immutable run on disk instead
       of forgetting anything, so membership stays exact and the result
       stays [Complete]. *)
    let spill_flush sp =
      Spill_store.flush sp;
      Gc.compact ();
      let s = Spill_store.stats sp in
      Obs.instant rcfg.obs ~cat:"explore" ~name:"spill" ~tid:0 ~ts:!expanded
        ~loc:"" ~cause:"mem-budget";
      rcfg.on_event
        (Printf.sprintf
           "memory budget crossed at %d state(s): flushed the hot visited \
            tier to disk (%d run(s), %d key(s) spilled) — coverage stays \
            exact" !expanded s.Spill_store.st_runs
           s.Spill_store.st_spilled_keys)
    in
    let push fs fsleep = stack := { fs; fsleep } :: !stack in
    (* Expand a freshly claimed state.  [stored] is its visited-table
       slot (None once degraded); the first expansion records the arrival
       sleep restricted to enabled transitions so a later visit with a
       smaller sleep set knows exactly what to re-fire. *)
    let expand_fresh st ~stored ~sleep =
      incr expanded;
      match M.final prog st with
      | Some f ->
          (* Close recorded outcomes under the automorphism group: the
             skipped orbit siblings' finals are exactly these images. *)
          acc := Final.Set.add f !acc;
          List.iter
            (fun pi -> acc := Final.Set.add (Sym.apply_final pi f) !acc)
            perms
      | None -> (
          match !oracle with
          | None -> List.iter (fun s -> push s []) (M.successors prog st)
          | Some o -> (
              incr oracle_calls;
              let succs = o.Machine_sig.successors_labeled st in
              let sleep = if use_sleep then sleep else [] in
              (match stored with
              | Some r when sleep <> [] ->
                  r :=
                    List.filter
                      (fun a -> List.exists (fun (b, _) -> b = a) succs)
                      sleep
              | _ -> ());
              match o.Machine_sig.ample st succs with
              | Some (a, s') ->
                  incr ample_hits;
                  let n = List.length succs in
                  if use_sleep && List.mem a sleep then
                    (* The whole subtree is covered from wherever [a] was
                       fired before this branch slept it. *)
                    suppressed := !suppressed + n
                  else begin
                    suppressed := !suppressed + n - 1;
                    push s'
                      (List.filter
                         (fun u -> Machine_sig.independent u a)
                         sleep)
                  end
              | None ->
                  if not use_sleep then
                    List.iter (fun (_, s') -> push s' []) succs
                  else begin
                    (* Full expansion under sleep sets: skip slept
                       transitions; each fired child sleeps its earlier
                       siblings (and inherited sleepers) that commute
                       with it. *)
                    let fired = ref [] in
                    List.iter
                      (fun (a, s') ->
                        if List.mem a sleep then incr suppressed
                        else begin
                          push s'
                            (List.filter
                               (fun u -> Machine_sig.independent u a)
                               (List.rev_append !fired sleep));
                          fired := a :: !fired
                        end)
                      succs
                  end))
    in
    (* Revisit of a cached state: re-fire exactly the transitions the
       first expansion slept that this visit does not, and shrink the
       stored sleep to the intersection (Godefroid's state-caching +
       sleep-sets protocol).  No [expanded] tick: the state was counted
       when first claimed. *)
    let revisit st ~stored ~sleep =
      let need, keep =
        List.partition (fun a -> not (List.mem a sleep)) !stored
      in
      if need <> [] then begin
        stored := keep;
        match !oracle with
        | None -> ()
        | Some o ->
            let fired = ref [] in
            List.iter
              (fun (a, s') ->
                if List.mem a need then begin
                  push s'
                    (List.filter
                       (fun u -> Machine_sig.independent u a)
                       (List.rev_append !fired sleep));
                  fired := a :: !fired
                end)
              (o.Machine_sig.successors_labeled st)
      end
    in
    let iters = ref 0 in
    let running = ref true in
    while !running do
      match !stack with
      | [] -> running := false
      | { fs = st; fsleep = sleep } :: rest ->
          (* Safe point: every bound is checked before [st] is claimed,
             so on a stop it stays in the frontier and the resume point
             is complete. *)
          (* The mask test fires at iteration 0 too, so an already-expired
             deadline suspends before anything is expanded. *)
          (match rcfg.budget with
          | Some b when !iters land 63 = 0 && Budget.over_deadline b ->
              stop := Some Deadline_exceeded
          | _ -> ());
          (* External cancellation (a supervisor's drain signal) stops at
             the same safe point as the budgets: the state under the
             cursor stays in the frontier and the final snapshot is a
             complete resume point. *)
          (match rcfg.cancel with
          | Some cancelled when !iters land 63 = 0 && cancelled () ->
              stop := Some Cancelled
          | _ -> ());
          incr iters;
          if !expanded >= fuel then stop := Some Fuel_exhausted;
          (match spill with
          | Some sp when !stop = None && !bloom = None && !expanded >= sp ->
              spilled := true
          | _ -> ());
          if !stop <> None || !spilled then running := false
          else begin
            stack := rest;
            let kk = orbit_min (M.canon st) in
            (match store with
            | Some sp ->
                if Spill_store.add sp (Marshal.to_string kk [ Marshal.No_sharing ])
                then begin
                  incr claimed;
                  (match rcfg.budget with
                  | Some b
                    when Budget.over_memory b
                           ~bytes:(Spill_store.hot_size sp * entry_bytes) ->
                      spill_flush sp
                  | _ -> ());
                  expand_fresh st ~stored:None ~sleep
                end
            | None -> (
                let hk = hkey kk in
                match !bloom with
                | Some b ->
                    let h1, h2 = bloom_hashes hk in
                    if not (Bloom.add_mem b h1 h2) then begin
                      incr claimed;
                      expand_fresh st ~stored:None ~sleep
                    end
                | None -> (
                    match H.find_opt visited hk with
                    | Some stored -> revisit st ~stored ~sleep
                    | None ->
                        let stored = ref [] in
                        H.add visited hk stored;
                        incr claimed;
                        (match rcfg.budget with
                        | Some b
                          when Budget.over_memory b
                                 ~bytes:(!claimed * entry_bytes) ->
                            degrade ()
                        | _ -> ());
                        expand_fresh st ~stored:(Some stored) ~sleep)));
            if
              rcfg.snapshot_sink <> None
              && !expanded mod rcfg.checkpoint_every = 0
            then checkpoint ~force:false ()
          end
    done;
    if !stop <> None then checkpoint ~force:true ();
    if reduce_on then begin
      Obs.counter rcfg.obs ~cat:"explore" ~name:"por_oracle_calls" ~tid:0
        ~ts:!expanded ~value:!oracle_calls;
      Obs.counter rcfg.obs ~cat:"explore" ~name:"por_ample_hits" ~tid:0
        ~ts:!expanded ~value:!ample_hits;
      Obs.counter rcfg.obs ~cat:"explore" ~name:"por_suppressed" ~tid:0
        ~ts:!expanded ~value:!suppressed
    end;
    let table_buckets, max_probe =
      if !bloom = None && store = None then
        let hstats = H.stats visited in
        (hstats.Hashtbl.num_buckets, hstats.Hashtbl.max_bucket_length)
      else (0, 0)
    in
    let spilled_runs, spilled_keys =
      match store with
      | None -> (0, 0)
      | Some sp ->
          let s = Spill_store.stats sp in
          (s.Spill_store.st_runs, s.Spill_store.st_spilled_keys)
    in
    let partial = !stop <> None || !degraded_at <> None in
    ( {
        result = (if partial then Partial !acc else Complete !acc);
        stop = !stop;
        stats =
          {
            states_expanded = !expanded;
            domains_used = 1;
            claimed = !claimed;
            claimed_per_shard = [| !claimed |];
            donations = 0;
            table_buckets;
            max_probe;
            degraded_at = !degraded_at;
            por_enabled = reduce_on;
            oracle_calls = !oracle_calls;
            ample_hits = !ample_hits;
            suppressed = !suppressed;
            sym_group = List.length perms + 1;
            sym_hits = !sym_hits;
            spilled_runs;
            spilled_keys;
          };
      },
      if !spilled then Some (make_snap ()) else None )

  (* --- parallel engine ------------------------------------------------------ *)

  type shard = { lock : Mutex.t; table : int H.t }

  type shared = {
    shards : shard array;
    next_id : int Atomic.t;
    queue_lock : Mutex.t;
    work : Condition.t;
    mutable pending : M.state list;  (** overflow frontier, any order *)
    mutable idle : int;
    mutable stop : bool;
    hungry : int Atomic.t;  (** mirrors [idle] for lock-free peeking *)
    fuel : int;
    stopping : stop_reason option Atomic.t;
    expanded : int Atomic.t;
    donations : int Atomic.t;
    ndomains : int;
    budget : Budget.t option;
    cancel : (unit -> bool) option;
    entry_bytes : int;
    store : Spill_store.t option;
        (** shared spill store replacing the sharded claim table; its own
            mutex serializes claims, and duplicates refund the fuel they
            reserved (an immutable run cannot be unclaimed) *)
    leftover_lock : Mutex.t;
    mutable leftovers : M.state list;
        (** unclaimed states parked by stopping workers — the other half
            of the resume frontier *)
  }

  let shard_of sh hk = sh.shards.((hk.kh land max_int) mod Array.length sh.shards)

  (* First visit wins: returns [true] iff this domain claimed the key. *)
  let try_claim sh hk =
    let s = shard_of sh hk in
    Mutex.lock s.lock;
    let fresh = not (H.mem s.table hk) in
    if fresh then H.add s.table hk (Atomic.fetch_and_add sh.next_id 1);
    Mutex.unlock s.lock;
    fresh

  (* Give a claim back (the claimer hit a bound before expanding): the
     state must stay claimable after resume. *)
  let unclaim sh hk =
    let s = shard_of sh hk in
    Mutex.lock s.lock;
    H.remove s.table hk;
    Mutex.unlock s.lock

  let set_stop sh reason =
    if Atomic.compare_and_set sh.stopping None (Some reason) then begin
      (* Wake sleepers so they can drain and exit. *)
      Mutex.lock sh.queue_lock;
      Condition.broadcast sh.work;
      Mutex.unlock sh.queue_lock
    end

  let add_leftover sh st =
    Mutex.lock sh.leftover_lock;
    sh.leftovers <- st :: sh.leftovers;
    Mutex.unlock sh.leftover_lock

  let donate sh batch =
    Atomic.incr sh.donations;
    Mutex.lock sh.queue_lock;
    sh.pending <- List.rev_append batch sh.pending;
    Condition.broadcast sh.work;
    Mutex.unlock sh.queue_lock

  (* Blocking pop with distributed-termination detection: when every domain
     is idle and the overflow queue is empty — or a stop was requested —
     the sweep is done.  On a stop the queue is drained into [leftovers]
     so the resume frontier loses nothing. *)
  let get_work sh =
    Mutex.lock sh.queue_lock;
    let rec loop () =
      if Atomic.get sh.stopping <> None then begin
        if sh.pending <> [] then begin
          Mutex.lock sh.leftover_lock;
          sh.leftovers <- List.rev_append sh.pending sh.leftovers;
          Mutex.unlock sh.leftover_lock;
          sh.pending <- []
        end;
        sh.stop <- true;
        Condition.broadcast sh.work;
        Mutex.unlock sh.queue_lock;
        None
      end
      else
        match sh.pending with
        | st :: rest ->
            sh.pending <- rest;
            Mutex.unlock sh.queue_lock;
            Some st
        | [] ->
            if sh.stop then begin
              Mutex.unlock sh.queue_lock;
              None
            end
            else begin
              sh.idle <- sh.idle + 1;
              Atomic.incr sh.hungry;
              if sh.idle = sh.ndomains then begin
                sh.stop <- true;
                Condition.broadcast sh.work;
                Mutex.unlock sh.queue_lock;
                None
              end
              else begin
                Condition.wait sh.work sh.queue_lock;
                sh.idle <- sh.idle - 1;
                Atomic.decr sh.hungry;
                loop ()
              end
            end
    in
    loop ()

  let rec split_half n acc l =
    if n = 0 then (acc, l)
    else
      match l with [] -> (acc, []) | x :: rest -> split_half (n - 1) (x :: acc) rest

  (* Parallel workers run ample-only reduction: the ample choice is a
     function of the state alone, so the claimed-state set stays
     schedule-independent.  (Sleep sets are a property of the visit
     order; they stay sequential.)  Per-worker reduction counters avoid
     atomic traffic; the parent sums them. *)
  let worker sh oracle perms prog =
    let acc = ref Final.Set.empty in
    let oracle_calls = ref 0 in
    let ample_hits = ref 0 in
    let suppressed = ref 0 in
    let sym_hits = ref 0 in
    let local = ref [] in
    let iters = ref 0 in
    (* Deterministic function of the state alone, so symmetry pruning
       keeps the claimed-state set schedule-independent. *)
    let orbit_min k =
      match perms with
      | [] -> k
      | _ ->
          let m =
            List.fold_left
              (fun m pi ->
                let k' = M.permute pi k in
                if compare k' m < 0 then k' else m)
              k perms
          in
          if m != k then incr sym_hits;
          m
    in
    let expand st =
      match M.final prog st with
      | Some f ->
          acc := Final.Set.add f !acc;
          List.iter
            (fun pi -> acc := Final.Set.add (Sym.apply_final pi f) !acc)
            perms
      | None -> (
          match oracle with
          | None ->
              List.iter (fun s -> local := s :: !local) (M.successors prog st)
          | Some o -> (
              incr oracle_calls;
              let succs = o.Machine_sig.successors_labeled st in
              match o.Machine_sig.ample st succs with
              | Some (_, s') ->
                  incr ample_hits;
                  suppressed := !suppressed + List.length succs - 1;
                  local := s' :: !local
              | None -> List.iter (fun (_, s') -> local := s' :: !local) succs))
    in
    let process st =
      if Atomic.get sh.stopping <> None then add_leftover sh st
      else begin
        (match sh.budget with
        | Some b when !iters land 63 = 0 ->
            let bytes =
              match sh.store with
              | Some sp -> Spill_store.hot_size sp * sh.entry_bytes
              | None -> Atomic.get sh.next_id * sh.entry_bytes
            in
            (match Budget.check b ~bytes with
            | Some Budget.Deadline -> set_stop sh Deadline_exceeded
            | Some Budget.Memory -> (
                match sh.store with
                | Some sp ->
                    (* Spill instead of stopping: the hot tier flushes to
                       an immutable run and the sweep stays exact. *)
                    Spill_store.flush sp
                | None ->
                    (* The sharded exact table cannot migrate to a Bloom
                       filter mid-sweep; drain cleanly instead. *)
                    set_stop sh Memory_exhausted)
            | None -> ())
        | _ -> ());
        (match sh.cancel with
        | Some cancelled when !iters land 63 = 0 && cancelled () ->
            set_stop sh Cancelled
        | _ -> ());
        incr iters;
        if Atomic.get sh.stopping <> None then add_leftover sh st
        else
          let kk = orbit_min (M.canon st) in
          match sh.store with
          | Some sp ->
              (* Fuel is reserved *before* the claim: a spilled claim
                 cannot be given back (runs are immutable), so a
                 duplicate refunds its reservation instead. *)
              let n = Atomic.fetch_and_add sh.expanded 1 in
              if n >= sh.fuel then begin
                Atomic.decr sh.expanded;
                set_stop sh Fuel_exhausted;
                add_leftover sh st
              end
              else if
                not
                  (Spill_store.add sp
                     (Marshal.to_string kk [ Marshal.No_sharing ]))
              then Atomic.decr sh.expanded
              else expand st
          | None ->
              let hk = hkey kk in
              if try_claim sh hk then
                let n = Atomic.fetch_and_add sh.expanded 1 in
                if n >= sh.fuel then begin
                  (* Bound reached after the claim: give the claim back so
                     the state survives into the resume frontier. *)
                  Atomic.decr sh.expanded;
                  unclaim sh hk;
                  set_stop sh Fuel_exhausted;
                  add_leftover sh st
                end
                else expand st
      end
    in
    let rec loop () =
      match !local with
      | st :: rest ->
          local := rest;
          process st;
          (* Rebalance: if someone is starving and we hold more than one
             state, hand over half of our stack. *)
          (if Atomic.get sh.hungry > 0 && Atomic.get sh.stopping = None then
             match !local with
             | _ :: _ :: _ ->
                 let gift, keep =
                   split_half (List.length !local / 2) [] !local
                 in
                 local := keep;
                 donate sh gift
             | _ -> ());
          loop ()
      | [] -> (
          match get_work sh with
          | Some st ->
              local := [ st ];
              loop ()
          | None ->
              (* A stopping worker parks whatever it still holds. *)
              if Atomic.get sh.stopping <> None then
                List.iter (add_leftover sh) !local)
    in
    loop ();
    (!acc, !oracle_calls, !ample_hits, !suppressed, !sym_hits)

  let run_par ~oracle ~perms ~store ~resumed ~domains ~fuel ~(rcfg : rcfg)
      prog =
    (match resumed with
    | Some { s_visited = Bloom_filter _; _ } ->
        raise
          (Resume_rejected
             "this snapshot's visited set is a Bloom filter (degraded \
              run); resume it with the sequential engine (--jobs 1)")
    | _ -> ());
    let sh =
      {
        shards =
          Array.init n_shards (fun _ ->
              { lock = Mutex.create (); table = H.create 1024 });
        next_id = Atomic.make 0;
        queue_lock = Mutex.create ();
        work = Condition.create ();
        pending = [ M.initial prog ];
        idle = 0;
        stop = false;
        hungry = Atomic.make 0;
        fuel;
        stopping = Atomic.make None;
        expanded = Atomic.make 0;
        donations = Atomic.make 0;
        ndomains = domains;
        budget = rcfg.budget;
        cancel = rcfg.cancel;
        entry_bytes = entry_bytes_estimate prog;
        store;
        leftover_lock = Mutex.create ();
        leftovers = [];
      }
    in
    let resumed_sym_hits = ref 0 in
    let resumed_acc =
      match resumed with
      | None -> Final.Set.empty
      | Some s ->
          (match (s.s_visited, store) with
          | _, Some _ ->
              (* The store already holds the claims: either [run] loaded
                 it, or the adaptive probe shares this very instance. *)
              ()
          | Exact_keys pairs, None ->
              Array.iter (fun (k, _) -> ignore (try_claim sh (hkey k))) pairs
          | (Bloom_filter _ | Spilled _), None -> assert false);
          Atomic.set sh.expanded s.s_expanded;
          resumed_sym_hits := s.s_sym_hits;
          sh.pending <- List.map fst s.s_frontier;
          rcfg.on_event
            (Printf.sprintf
               "resumed %s/%s: %d state(s) already expanded, frontier %d"
               M.name (Prog.name prog) s.s_expanded
               (List.length s.s_frontier));
          s.s_acc
    in
    let others =
      Array.init (domains - 1) (fun _ ->
          Domain.spawn (fun () -> worker sh oracle perms prog))
    in
    let mine = worker sh oracle perms prog in
    let results = Array.append [| mine |] (Array.map Domain.join others) in
    let acc =
      Array.fold_left
        (fun a (w, _, _, _, _) -> Final.Set.union w a)
        resumed_acc results
    in
    let sum f = Array.fold_left (fun a r -> a + f r) 0 results in
    let oracle_calls = sum (fun (_, oc, _, _, _) -> oc) in
    let ample_hits = sum (fun (_, _, ah, _, _) -> ah) in
    let suppressed = sum (fun (_, _, _, su, _) -> su) in
    let sym_hits = !resumed_sym_hits + sum (fun (_, _, _, _, sy) -> sy) in
    let stop = Atomic.get sh.stopping in
    (* On an early stop, hand the caller a resume point: every claimed key
       plus the parked frontier. *)
    (match (stop, rcfg.snapshot_sink) with
    | Some _, Some sink ->
        let repr, n =
          match store with
          | Some sp -> (Spilled (Spill_store.export sp), Spill_store.total sp)
          | None ->
              let n =
                Array.fold_left (fun a s -> a + H.length s.table) 0 sh.shards
              in
              let keys =
                Array.make n
                  (M.canon (M.initial prog), ([] : Machine_sig.action list))
              in
              let i = ref 0 in
              Array.iter
                (fun s ->
                  H.iter
                    (fun hk _ ->
                      keys.(!i) <- (hk.kk, []);
                      incr i)
                    s.table)
                sh.shards;
              (Exact_keys keys, n)
        in
        sink
          (encode_snap
             {
               s_fingerprint = fingerprint prog;
               s_reduce = oracle <> None;
               s_sym = perms <> [];
               s_visited = repr;
               s_claimed = n;
               s_frontier = List.map (fun st -> (st, [])) sh.leftovers;
               s_acc = acc;
               s_expanded = Atomic.get sh.expanded;
               s_sym_hits = sym_hits;
               s_degraded_at = None;
             });
        Obs.instant rcfg.obs ~cat:"explore" ~name:"checkpoint" ~tid:0
          ~ts:(Atomic.get sh.expanded) ~loc:"" ~cause:""
    | _ -> ());
    let claimed, per_shard, buckets, max_probe =
      match store with
      | Some sp -> (Spill_store.total sp, [| Spill_store.total sp |], 0, 0)
      | None ->
          let per_shard = Array.map (fun s -> H.length s.table) sh.shards in
          let buckets, max_probe =
            Array.fold_left
              (fun (b, m) s ->
                let st = H.stats s.table in
                ( b + st.Hashtbl.num_buckets,
                  max m st.Hashtbl.max_bucket_length ))
              (0, 0) sh.shards
          in
          (Array.fold_left ( + ) 0 per_shard, per_shard, buckets, max_probe)
    in
    let spilled_runs, spilled_keys =
      match store with
      | None -> (0, 0)
      | Some sp ->
          let s = Spill_store.stats sp in
          (s.Spill_store.st_runs, s.Spill_store.st_spilled_keys)
    in
    {
      result = (if stop <> None then Partial acc else Complete acc);
      stop;
      stats =
        {
          states_expanded = Atomic.get sh.expanded;
          domains_used = domains;
          claimed;
          claimed_per_shard = per_shard;
          donations = Atomic.get sh.donations;
          table_buckets = buckets;
          max_probe;
          degraded_at = None;
          por_enabled = oracle <> None;
          oracle_calls;
          ample_hits;
          suppressed;
          sym_group = List.length perms + 1;
          sym_hits;
          spilled_runs;
          spilled_keys;
        };
    }

  (* --- public API ----------------------------------------------------------- *)

  let run ?(domains = 1) ?(adaptive = true) ?(reduce = true)
      ?(por_min_instrs = por_min_instrs_default) ?fuel ?(rcfg = rcfg_default)
      prog =
    if domains < 1 then invalid_arg "Explore.run: domains must be >= 1";
    (match fuel with
    | Some f when f < 0 -> invalid_arg "Explore.run: negative fuel"
    | _ -> ());
    if rcfg.checkpoint_every < 1 then
      invalid_arg "Explore.run: checkpoint_every must be >= 1";
    if rcfg.spill_threshold < 1 then
      invalid_arg "Explore.run: spill_threshold must be >= 1";
    let fuel = Option.value fuel ~default:max_int in
    (* The cheap guard: below the instruction threshold the whole state
       space is a few thousand states and the oracle costs more than it
       saves — skip the machinery entirely. *)
    let oracle =
      if reduce && Prog.num_instrs prog >= por_min_instrs then M.por prog
      else None
    in
    let reduce_on = oracle <> None in
    (* Symmetry reduction activates whenever the program's automorphism
       group is nontrivial — unlike the oracle it has no size guard, the
       trivial group costing nothing. *)
    let perms = if rcfg.sym then (Sym.cached prog).Sym.perms else [] in
    let sym_on = perms <> [] in
    let resumed =
      Option.map (fun bytes -> decode_snap ~prog bytes) rcfg.resume
    in
    (match resumed with
    | Some s when s.s_reduce <> reduce_on ->
        raise
          (Resume_rejected
             (Printf.sprintf
                "snapshot was taken with partial-order reduction %s but \
                 this run has it %s; rerun with a matching --no-por setting"
                (if s.s_reduce then "on" else "off")
                (if reduce_on then "on" else "off")))
    | _ -> ());
    (match resumed with
    | Some s when s.s_sym <> sym_on ->
        raise
          (Resume_rejected
             (Printf.sprintf
                "snapshot was taken with symmetry reduction %s but this \
                 run has it %s; rerun with a matching --no-sym setting"
                (if s.s_sym then "on" else "off")
                (if sym_on then "on" else "off")))
    | _ -> ());
    (* The spill store is decided (and loaded) before any engine starts:
       it is active from the very first claim or not at all — no
       mid-sweep migration. *)
    let store =
      match rcfg.spill_dir with
      | None -> (
          match resumed with
          | Some { s_visited = Spilled _; _ } ->
              raise
                (Resume_rejected
                   "this snapshot's visited set lives in a spill store; \
                    resume it with the same --spill-dir")
          | _ -> None)
      | Some dir -> (
          let threshold = rcfg.spill_threshold in
          match resumed with
          | Some { s_visited = Spilled xs; _ } -> (
              match Spill_store.import ~dir ~threshold xs with
              | sp -> Some sp
              | exception Spill_store.Corrupt msg ->
                  raise
                    (Resume_rejected ("spill store failed validation: " ^ msg)))
          | Some { s_visited = Bloom_filter _; _ } ->
              raise
                (Resume_rejected
                   "this snapshot's visited set is a Bloom filter (degraded \
                    run); it cannot seed an exact spill store")
          | Some { s_visited = Exact_keys pairs; _ } ->
              let sp = Spill_store.create ~dir ~threshold in
              Array.iter
                (fun (k, _) ->
                  ignore
                    (Spill_store.add sp
                       (Marshal.to_string k [ Marshal.No_sharing ])))
                pairs;
              Some sp
          | None -> Some (Spill_store.create ~dir ~threshold))
    in
    (* Sleep sets are path-dependent: a revisit under a smaller sleep set
       must re-fire transitions, which neither the membership-only store
       nor orbit-merged visits can answer.  Ample-set reduction (a
       function of the state alone) stays on. *)
    let use_sleep = (not sym_on) && store = None in
    let finish r =
      Option.iter Spill_store.close store;
      r
    in
    let reject_sleeps () =
      match resumed with
      | Some s when snap_has_sleeps s ->
          raise
            (Resume_rejected
               "this snapshot carries sleep-set state from a reduced \
                sequential run; resume it with the sequential engine \
                (--jobs 1)")
      | _ -> ()
    in
    (* A sleep-carrying snapshot can only resume where the revisit
       protocol still runs: sequential, no symmetry, no spill store. *)
    if not use_sleep then reject_sleeps ();
    if domains = 1 then
      finish
        (fst
           (run_seq ~oracle ~use_sleep ~perms ~store ~resumed ~fuel ~rcfg
              prog))
    else if not adaptive then begin
      reject_sleeps ();
      finish (run_par ~oracle ~perms ~store ~resumed ~domains ~fuel ~rcfg prog)
    end
    else begin
      (* Adaptive parallelism: never spawn more domains than the machine
         has cores, and never spawn any before the frontier proves it is
         worth it — a sequential probe sweeps until [spill_threshold] and
         hands its visited set over only if it is still going. *)
      let recommended = Domain.recommended_domain_count () in
      let eff = min domains recommended in
      if eff = 1 then begin
        Obs.instant rcfg.obs ~cat:"explore" ~name:"adaptive" ~tid:0 ~ts:0
          ~loc:"" ~cause:"cores";
        rcfg.on_event
          (Printf.sprintf
             "adaptive parallelism: %d domain(s) requested but %d core(s) \
              recognized; using the sequential engine" domains recommended);
        finish
          (fst
             (run_seq ~oracle ~use_sleep ~perms ~store ~resumed ~fuel ~rcfg
                prog))
      end
      else begin
        reject_sleeps ();
        let r, sp =
          run_seq ~oracle ~use_sleep:false ~perms ~store ~resumed ~fuel
            ~spill:spill_threshold_default ~rcfg prog
        in
        match sp with
        | None ->
            Obs.instant rcfg.obs ~cat:"explore" ~name:"adaptive" ~tid:0
              ~ts:r.stats.states_expanded ~loc:"" ~cause:"small-frontier";
            rcfg.on_event
              (Printf.sprintf
                 "adaptive parallelism: sweep ended under %d state(s); \
                  the sequential engine finished without spawning domains"
                 spill_threshold_default);
            finish r
        | Some snapv ->
            Obs.instant rcfg.obs ~cat:"explore" ~name:"adaptive" ~tid:0
              ~ts:snapv.s_expanded ~loc:"" ~cause:"spill";
            rcfg.on_event
              (Printf.sprintf
                 "adaptive parallelism: frontier spilled at %d state(s); \
                  fanning out to %d domain(s)" snapv.s_expanded eff);
            finish
              (run_par ~oracle ~perms ~store ~resumed:(Some snapv)
                 ~domains:eff ~fuel ~rcfg prog)
      end
    end

  let outcomes ?domains ?reduce prog =
    bounded_value (run ?domains ?reduce prog).result

  let outcomes_bounded ~fuel prog =
    if fuel < 0 then invalid_arg "Explore.outcomes_bounded: negative fuel";
    (run ~fuel prog).result

  let allows prog cond = Cond.satisfiable_in (outcomes prog) cond

  let allows_exists prog = Option.map (allows prog) (Prog.exists prog)

  (* A machine [appears sequentially consistent] to a program when every
     outcome it allows is also an SC outcome (Definition 2's "appears").
     The SC reference set can be passed in (e.g. when sweeping many
     machines over one program); otherwise the process-wide memoized cache
     avoids re-enumerating SC per call. *)
  let appears_sc ?sc prog =
    let sc =
      match sc with Some s -> s | None -> Sc.outcomes_cached prog
    in
    Final.Set.subset (outcomes prog) sc
end
