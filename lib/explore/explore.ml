(* Exhaustive exploration of an abstract machine.

   The engine computes the complete set of outcomes a machine allows for a
   program as the union of [M.final] over every reachable state — a
   reachability sweep with a hash-consed transposition table, not a
   per-state memoized fold.  Two execution strategies share that shape:

   - sequential: an explicit-stack DFS with a single interner; and
   - parallel ([~domains:n], n > 1): a frontier-based sweep over [n]
     domains with a sharded claim table and a shared overflow queue.

   Both honour the fuel contract: [fuel] bounds the number of distinct
   states *expanded*; running out only cuts branches, so a [Partial] result
   is always a sound subset of the complete outcome set — exploration never
   invents outcomes.  In the parallel engine the set of states cut depends
   on the schedule, but the subset property (and, when nothing is cut,
   equality with the sequential result) does not. *)

type 'a bounded = Complete of 'a | Partial of 'a

let bounded_value = function Complete v | Partial v -> v
let is_complete = function Complete _ -> true | Partial _ -> false

type stats = {
  states_expanded : int;
  domains_used : int;
  claimed : int;
  claimed_per_shard : int array;
  donations : int;
  table_buckets : int;
  max_probe : int;
}

(* Telemetry for engines that do not run a sharded sweep (the SC
   interleaving enumerator): one "shard" holding every claimed state. *)
let basic_stats ~states_expanded ~domains_used =
  {
    states_expanded;
    domains_used;
    claimed = states_expanded;
    claimed_per_shard = [| states_expanded |];
    donations = 0;
    table_buckets = 0;
    max_probe = 0;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d state(s) expanded, %d claimed over %d shard(s), %d donation(s)"
    s.states_expanded s.claimed
    (Array.length s.claimed_per_shard)
    s.donations;
  if s.table_buckets > 0 then
    Format.fprintf ppf "; table: %d bucket(s), occupancy %.2f, max probe %d"
      s.table_buckets
      (float_of_int s.claimed /. float_of_int s.table_buckets)
      s.max_probe

type run_result = { result : Final.Set.t bounded; stats : stats }

(* Shard count for the parallel claim table; a power of two well above any
   sensible domain count keeps lock contention negligible. *)
let n_shards = 64

module Make (M : Machine_sig.MACHINE) = struct
  module H = Hashtbl.Make (struct
    type t = M.key

    let hash = M.hash
    let equal = M.equal
  end)

  (* --- sequential engine ---------------------------------------------------- *)

  let run_seq ~fuel prog =
    (* The interner doubles as the transposition table: a key's presence
       means the state was claimed, and its interned int is the visit
       order.  Keys are stored once; no marshalled strings. *)
    let interned : int H.t = H.create 4096 in
    let next_id = ref 0 in
    let acc = ref Final.Set.empty in
    let expanded = ref 0 in
    let cut = ref false in
    let stack = ref [ M.initial prog ] in
    let running = ref true in
    while !running do
      match !stack with
      | [] -> running := false
      | st :: rest ->
          stack := rest;
          let k = M.canon st in
          if not (H.mem interned k) then begin
            H.add interned k !next_id;
            incr next_id;
            if !expanded >= fuel then cut := true
            else begin
              incr expanded;
              match M.final prog st with
              | Some f -> acc := Final.Set.add f !acc
              | None ->
                  List.iter
                    (fun s -> stack := s :: !stack)
                    (M.successors prog st)
            end
          end
    done;
    let hstats = H.stats interned in
    {
      result = (if !cut then Partial !acc else Complete !acc);
      stats =
        {
          states_expanded = !expanded;
          domains_used = 1;
          claimed = H.length interned;
          claimed_per_shard = [| H.length interned |];
          donations = 0;
          table_buckets = hstats.Hashtbl.num_buckets;
          max_probe = hstats.Hashtbl.max_bucket_length;
        };
    }

  (* --- parallel engine ------------------------------------------------------ *)

  type shard = { lock : Mutex.t; table : int H.t }

  type shared = {
    shards : shard array;
    next_id : int Atomic.t;
    queue_lock : Mutex.t;
    work : Condition.t;
    mutable pending : M.state list;  (** overflow frontier, any order *)
    mutable idle : int;
    mutable stop : bool;
    hungry : int Atomic.t;  (** mirrors [idle] for lock-free peeking *)
    fuel_left : int Atomic.t;
    cut : bool Atomic.t;
    expanded : int Atomic.t;
    donations : int Atomic.t;
    ndomains : int;
  }

  (* First visit wins: returns [true] iff this domain claimed the key. *)
  let try_claim sh k =
    let s = sh.shards.((M.hash k land max_int) mod Array.length sh.shards) in
    Mutex.lock s.lock;
    let fresh = not (H.mem s.table k) in
    if fresh then H.add s.table k (Atomic.fetch_and_add sh.next_id 1);
    Mutex.unlock s.lock;
    fresh

  let donate sh batch =
    Atomic.incr sh.donations;
    Mutex.lock sh.queue_lock;
    sh.pending <- List.rev_append batch sh.pending;
    Condition.broadcast sh.work;
    Mutex.unlock sh.queue_lock

  (* Blocking pop with distributed-termination detection: when every domain
     is idle and the overflow queue is empty, the sweep is done. *)
  let get_work sh =
    Mutex.lock sh.queue_lock;
    let rec loop () =
      match sh.pending with
      | st :: rest ->
          sh.pending <- rest;
          Mutex.unlock sh.queue_lock;
          Some st
      | [] ->
          if sh.stop then begin
            Mutex.unlock sh.queue_lock;
            None
          end
          else begin
            sh.idle <- sh.idle + 1;
            Atomic.incr sh.hungry;
            if sh.idle = sh.ndomains then begin
              sh.stop <- true;
              Condition.broadcast sh.work;
              Mutex.unlock sh.queue_lock;
              None
            end
            else begin
              Condition.wait sh.work sh.queue_lock;
              sh.idle <- sh.idle - 1;
              Atomic.decr sh.hungry;
              loop ()
            end
          end
    in
    loop ()

  let rec split_half n acc l =
    if n = 0 then (acc, l)
    else
      match l with [] -> (acc, []) | x :: rest -> split_half (n - 1) (x :: acc) rest

  let worker sh prog =
    let acc = ref Final.Set.empty in
    let local = ref [] in
    let process st =
      let k = M.canon st in
      if try_claim sh k then
        if Atomic.fetch_and_add sh.fuel_left (-1) <= 0 then
          Atomic.set sh.cut true
        else begin
          Atomic.incr sh.expanded;
          match M.final prog st with
          | Some f -> acc := Final.Set.add f !acc
          | None ->
              List.iter (fun s -> local := s :: !local) (M.successors prog st)
        end
    in
    let rec loop () =
      match !local with
      | st :: rest ->
          local := rest;
          process st;
          (* Rebalance: if someone is starving and we hold more than one
             state, hand over half of our stack. *)
          (if Atomic.get sh.hungry > 0 then
             match !local with
             | _ :: _ :: _ ->
                 let gift, keep =
                   split_half (List.length !local / 2) [] !local
                 in
                 local := keep;
                 donate sh gift
             | _ -> ());
          loop ()
      | [] -> (
          match get_work sh with
          | Some st ->
              local := [ st ];
              loop ()
          | None -> ())
    in
    loop ();
    !acc

  let run_par ~domains ~fuel prog =
    let sh =
      {
        shards =
          Array.init n_shards (fun _ ->
              { lock = Mutex.create (); table = H.create 1024 });
        next_id = Atomic.make 0;
        queue_lock = Mutex.create ();
        work = Condition.create ();
        pending = [ M.initial prog ];
        idle = 0;
        stop = false;
        hungry = Atomic.make 0;
        fuel_left = Atomic.make fuel;
        cut = Atomic.make false;
        expanded = Atomic.make 0;
        donations = Atomic.make 0;
        ndomains = domains;
      }
    in
    let others =
      Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker sh prog))
    in
    let mine = worker sh prog in
    let acc =
      Array.fold_left
        (fun a d -> Final.Set.union (Domain.join d) a)
        mine others
    in
    let per_shard = Array.map (fun s -> H.length s.table) sh.shards in
    let buckets, max_probe =
      Array.fold_left
        (fun (b, m) s ->
          let st = H.stats s.table in
          (b + st.Hashtbl.num_buckets, max m st.Hashtbl.max_bucket_length))
        (0, 0) sh.shards
    in
    {
      result = (if Atomic.get sh.cut then Partial acc else Complete acc);
      stats =
        {
          states_expanded = Atomic.get sh.expanded;
          domains_used = domains;
          claimed = Array.fold_left ( + ) 0 per_shard;
          claimed_per_shard = per_shard;
          donations = Atomic.get sh.donations;
          table_buckets = buckets;
          max_probe;
        };
    }

  (* --- public API ----------------------------------------------------------- *)

  let run ?(domains = 1) ?fuel prog =
    if domains < 1 then invalid_arg "Explore.run: domains must be >= 1";
    (match fuel with
    | Some f when f < 0 -> invalid_arg "Explore.run: negative fuel"
    | _ -> ());
    let fuel = Option.value fuel ~default:max_int in
    if domains = 1 then run_seq ~fuel prog else run_par ~domains ~fuel prog

  let outcomes ?domains prog = bounded_value (run ?domains prog).result

  let outcomes_bounded ~fuel prog =
    if fuel < 0 then invalid_arg "Explore.outcomes_bounded: negative fuel";
    (run ~fuel prog).result

  let allows prog cond = Cond.satisfiable_in (outcomes prog) cond

  let allows_exists prog = Option.map (allows prog) (Prog.exists prog)

  (* A machine [appears sequentially consistent] to a program when every
     outcome it allows is also an SC outcome (Definition 2's "appears").
     The SC reference set can be passed in (e.g. when sweeping many
     machines over one program); otherwise the process-wide memoized cache
     avoids re-enumerating SC per call. *)
  let appears_sc ?sc prog =
    let sc =
      match sc with Some s -> s | None -> Sc.outcomes_cached prog
    in
    Final.Set.subset (outcomes prog) sc
end
