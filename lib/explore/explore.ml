(* Exhaustive exploration of an abstract machine.

   The engine computes the complete set of outcomes a machine allows for a
   program as the union of [M.final] over every reachable state — a
   reachability sweep with a hash-consed transposition table, not a
   per-state memoized fold.  Two execution strategies share that shape:

   - sequential: an explicit-stack DFS with a single interner; and
   - parallel ([~domains:n], n > 1): a frontier-based sweep over [n]
     domains with a sharded claim table and a shared overflow queue.

   Both honour the bound contract: [fuel] and the wall-clock/memory budget
   only cut branches, so a [Partial] result is always a sound subset of
   the complete outcome set — exploration never invents outcomes.  In the
   parallel engine the set of states cut depends on the schedule, but the
   subset property (and, when nothing is cut, equality with the sequential
   result) does not.

   The resilience layer rides on three hooks:

   - every bound is checked *before* a state is claimed, so a stopped
     sweep leaves every unexpanded state in the frontier and the
     (frontier, transposition table, outcome accumulator) triple is a
     complete resume point;
   - that triple is periodically marshalled into a CRC-checked
     [Snapshot] frame and handed to the configured sink — and once more
     when a budget stops the sweep;
   - when the visited set crosses the memory budget, the sequential
     engine migrates it into a Bloom filter and keeps going: a
     false-positive "seen" can only prune, so the outcome set stays a
     sound subset, and the result is pinned [Partial] so degraded
     coverage is never reported exhaustive.  (The parallel engine drains
     at the budget instead — its sharded exact table cannot be swapped
     mid-sweep without a barrier.) *)

type 'a bounded = Complete of 'a | Partial of 'a

let bounded_value = function Complete v | Partial v -> v
let is_complete = function Complete _ -> true | Partial _ -> false

type stop_reason = Fuel_exhausted | Deadline_exceeded | Memory_exhausted

let stop_reason_string = function
  | Fuel_exhausted -> "fuel"
  | Deadline_exceeded -> "deadline"
  | Memory_exhausted -> "memory"

type stats = {
  states_expanded : int;
  domains_used : int;
  claimed : int;
  claimed_per_shard : int array;
  donations : int;
  table_buckets : int;
  max_probe : int;
  degraded_at : int option;
}

(* Telemetry for engines that do not run a sharded sweep (the SC
   interleaving enumerator): one "shard" holding every claimed state. *)
let basic_stats ~states_expanded ~domains_used =
  {
    states_expanded;
    domains_used;
    claimed = states_expanded;
    claimed_per_shard = [| states_expanded |];
    donations = 0;
    table_buckets = 0;
    max_probe = 0;
    degraded_at = None;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d state(s) expanded, %d claimed over %d shard(s), %d donation(s)"
    s.states_expanded s.claimed
    (Array.length s.claimed_per_shard)
    s.donations;
  if s.table_buckets > 0 then
    Format.fprintf ppf "; table: %d bucket(s), occupancy %.2f, max probe %d"
      s.table_buckets
      (float_of_int s.claimed /. float_of_int s.table_buckets)
      s.max_probe;
  match s.degraded_at with
  | Some n -> Format.fprintf ppf "; DEGRADED to Bloom visited set at %d" n
  | None -> ()

type run_result = {
  result : Final.Set.t bounded;
  stats : stats;
  stop : stop_reason option;
}

(* --- resilience configuration ---------------------------------------------- *)

let checkpoint_every_default = 1000

type rcfg = {
  budget : Budget.t option;
  checkpoint_every : int;
  snapshot_sink : (string -> unit) option;
  resume : string option;
  obs : Obs.t;
  on_event : string -> unit;
}

let rcfg_default =
  {
    budget = None;
    checkpoint_every = checkpoint_every_default;
    snapshot_sink = None;
    resume = None;
    obs = Obs.null;
    on_event = ignore;
  }

exception Resume_rejected of string

(* Shard count for the parallel claim table; a power of two well above any
   sensible domain count keeps lock contention negligible. *)
let n_shards = 64

module Make (M : Machine_sig.MACHINE) = struct
  module H = Hashtbl.Make (struct
    type t = M.key

    let hash = M.hash
    let equal = M.equal
  end)

  (* --- snapshots ------------------------------------------------------------ *)

  (* A state's canonical key is immutable structural data, so the whole
     resume point marshals cleanly: no closures, no custom blocks.  The
     CRC in the [Snapshot] frame guards the unmarshal — only validated
     payloads are ever decoded. *)

  type visited_repr =
    | Exact_keys of M.key array
    | Bloom_filter of Bloom.state

  type snap = {
    s_fingerprint : string;  (** name + printed program: identity check *)
    s_visited : visited_repr;
    s_claimed : int;
    s_frontier : M.state list;
    s_acc : Final.Set.t;
    s_expanded : int;
    s_degraded_at : int option;
  }

  let snap_kind = "weakord.explore/" ^ M.name

  let fingerprint prog =
    Format.asprintf "%s|%a" (Prog.name prog) Prog.pp prog

  let encode_snap s =
    Snapshot.frame ~kind:snap_kind
      ~meta:
        (Printf.sprintf "%d state(s) expanded, frontier %d" s.s_expanded
           (List.length s.s_frontier))
      ~payload:(Marshal.to_string s [])

  let decode_snap ~prog bytes =
    match Snapshot.unframe bytes with
    | Error e -> raise (Resume_rejected (Snapshot.error_string e))
    | Ok c ->
        if not (String.equal c.Snapshot.kind snap_kind) then
          raise
            (Resume_rejected
               (Printf.sprintf "snapshot was taken by %S, this engine is %S"
                  c.Snapshot.kind snap_kind));
        let s =
          try (Marshal.from_string c.Snapshot.payload 0 : snap)
          with Failure _ | Invalid_argument _ ->
            raise (Resume_rejected "snapshot payload does not unmarshal")
        in
        if not (String.equal s.s_fingerprint (fingerprint prog)) then
          raise
            (Resume_rejected
               "snapshot was taken for a different program (fingerprint \
                mismatch)");
        s

  let snapshot_frontier_length bytes =
    match Snapshot.unframe bytes with
    | Error e -> raise (Resume_rejected (Snapshot.error_string e))
    | Ok c -> (
        match (Marshal.from_string c.Snapshot.payload 0 : snap) with
        | s -> List.length s.s_frontier
        | exception (Failure _ | Invalid_argument _) ->
            raise (Resume_rejected "snapshot payload does not unmarshal"))

  (* Rough per-entry cost of the exact visited set: the key's reachable
     words plus a few words of hash-table binding.  Measured once per run
     on the initial state's key — deterministic, so memory-budget
     behaviour is reproducible. *)
  let entry_bytes_estimate prog =
    let k = M.canon (M.initial prog) in
    (Obj.reachable_words (Obj.repr k) + 4) * (Sys.word_size / 8)

  (* Bloom probes come from two independent structural hashes of the key:
     the machine's own and a seeded stdlib traversal. *)
  let bloom_hashes k =
    (M.hash k, Hashtbl.seeded_hash_param 128 256 0x9e3779b9 k)

  (* --- sequential engine ---------------------------------------------------- *)

  let run_seq ~fuel ~rcfg prog =
    (* The interner doubles as the transposition table: a key's presence
       means the state was claimed, and its interned int is the visit
       order.  Keys are stored once; no marshalled strings. *)
    let interned : int H.t = H.create 4096 in
    let bloom = ref None in
    let next_id = ref 0 in
    let claimed = ref 0 in
    let acc = ref Final.Set.empty in
    let expanded = ref 0 in
    let degraded_at = ref None in
    let stack = ref [ M.initial prog ] in
    let stop = ref None in
    let entry_bytes = entry_bytes_estimate prog in
    (* Restore a resume point before the sweep starts. *)
    (match rcfg.resume with
    | None -> ()
    | Some bytes ->
        let s = decode_snap ~prog bytes in
        (match s.s_visited with
        | Exact_keys keys ->
            Array.iter
              (fun k ->
                if not (H.mem interned k) then begin
                  H.add interned k !next_id;
                  incr next_id
                end)
              keys
        | Bloom_filter bs -> bloom := Some (Bloom.import bs));
        claimed := s.s_claimed;
        acc := s.s_acc;
        expanded := s.s_expanded;
        degraded_at := s.s_degraded_at;
        stack := s.s_frontier;
        Obs.instant rcfg.obs ~cat:"explore" ~name:"resume" ~tid:0
          ~ts:s.s_expanded ~loc:"" ~cause:"";
        rcfg.on_event
          (Printf.sprintf
             "resumed %s/%s: %d state(s) already expanded, frontier %d%s"
             M.name (Prog.name prog) s.s_expanded (List.length s.s_frontier)
             (match s.s_degraded_at with
             | Some n ->
                 Printf.sprintf " (degraded to Bloom visited set at %d)" n
             | None -> "")));
    let take_snapshot () =
      let visited =
        match !bloom with
        | Some b -> Bloom_filter (Bloom.export b)
        | None ->
            let keys = Array.make (H.length interned) (M.canon (M.initial prog)) in
            let i = ref 0 in
            H.iter
              (fun k _ ->
                keys.(!i) <- k;
                incr i)
              interned;
            Exact_keys keys
      in
      encode_snap
        {
          s_fingerprint = fingerprint prog;
          s_visited = visited;
          s_claimed = !claimed;
          s_frontier = !stack;
          s_acc = !acc;
          s_expanded = !expanded;
          s_degraded_at = !degraded_at;
        }
    in
    (* Periodic snapshots are throttled by their own cost: one is skipped
       while taking it would spend more than ~5% of the wall-clock since
       the last one (snapshot cost grows with the visited set, so a fixed
       expansion interval would go quadratic on big sweeps).  [~force]
       (stop/final snapshots) bypasses the throttle — a suspension always
       leaves a current resume point. *)
    let last_snap_end = ref neg_infinity in
    let last_snap_cost = ref 0. in
    let checkpoint ~force () =
      match rcfg.snapshot_sink with
      | None -> ()
      | Some sink ->
          let now = Unix.gettimeofday () in
          if force || now -. !last_snap_end >= 20. *. !last_snap_cost then begin
            sink (take_snapshot ());
            let fin = Unix.gettimeofday () in
            last_snap_end := fin;
            last_snap_cost := fin -. now;
            Obs.instant rcfg.obs ~cat:"explore" ~name:"checkpoint" ~tid:0
              ~ts:!expanded ~loc:"" ~cause:""
          end
    in
    (* Migrate the exact table into a Bloom filter: sized at ~32 bits per
       key already claimed (with a 2^20 floor) the false-positive rate is
       negligible at litmus scale, and the byte cost per future state
       drops from hundreds to four bits. *)
    let degrade () =
      let bits = max (1 lsl 20) (32 * !claimed) in
      let b = Bloom.create ~bits in
      H.iter
        (fun k _ ->
          let h1, h2 = bloom_hashes k in
          ignore (Bloom.add_mem b h1 h2))
        interned;
      H.reset interned;
      bloom := Some b;
      degraded_at := Some !expanded;
      Obs.instant rcfg.obs ~cat:"explore" ~name:"degrade" ~tid:0 ~ts:!expanded
        ~loc:"" ~cause:"mem-budget";
      rcfg.on_event
        (Printf.sprintf
           "memory budget crossed at %d state(s) (~%d bytes of visited \
            set): degrading to a Bloom-filter visited set (%d bits) — \
            coverage is now approximate, the verdict will be Partial"
           !expanded (!claimed * entry_bytes) (Bloom.bits b))
    in
    let claim k =
      match !bloom with
      | Some b ->
          let h1, h2 = bloom_hashes k in
          if Bloom.add_mem b h1 h2 then false
          else begin
            incr claimed;
            true
          end
      | None ->
          if H.mem interned k then false
          else begin
            H.add interned k !next_id;
            incr next_id;
            incr claimed;
            (match rcfg.budget with
            | Some b
              when !bloom = None
                   && Budget.over_memory b ~bytes:(!claimed * entry_bytes) ->
                degrade ()
            | _ -> ());
            true
          end
    in
    let iters = ref 0 in
    let running = ref true in
    while !running do
      match !stack with
      | [] -> running := false
      | st :: rest ->
          (* Safe point: every bound is checked before [st] is claimed,
             so on a stop it stays in the frontier and the resume point
             is complete. *)
          (* The mask test fires at iteration 0 too, so an already-expired
             deadline suspends before anything is expanded. *)
          (match rcfg.budget with
          | Some b when !iters land 63 = 0 && Budget.over_deadline b ->
              stop := Some Deadline_exceeded
          | _ -> ());
          incr iters;
          if !expanded >= fuel then stop := Some Fuel_exhausted;
          if !stop <> None then running := false
          else begin
            stack := rest;
            let k = M.canon st in
            if claim k then begin
              incr expanded;
              (match M.final prog st with
              | Some f -> acc := Final.Set.add f !acc
              | None ->
                  List.iter
                    (fun s -> stack := s :: !stack)
                    (M.successors prog st));
              if
                rcfg.snapshot_sink <> None
                && !expanded mod rcfg.checkpoint_every = 0
              then checkpoint ~force:false ()
            end
          end
    done;
    if !stop <> None then checkpoint ~force:true ();
    let table_buckets, max_probe =
      if !bloom = None then
        let hstats = H.stats interned in
        (hstats.Hashtbl.num_buckets, hstats.Hashtbl.max_bucket_length)
      else (0, 0)
    in
    let partial = !stop <> None || !degraded_at <> None in
    {
      result = (if partial then Partial !acc else Complete !acc);
      stop = !stop;
      stats =
        {
          states_expanded = !expanded;
          domains_used = 1;
          claimed = !claimed;
          claimed_per_shard = [| !claimed |];
          donations = 0;
          table_buckets;
          max_probe;
          degraded_at = !degraded_at;
        };
    }

  (* --- parallel engine ------------------------------------------------------ *)

  type shard = { lock : Mutex.t; table : int H.t }

  type shared = {
    shards : shard array;
    next_id : int Atomic.t;
    queue_lock : Mutex.t;
    work : Condition.t;
    mutable pending : M.state list;  (** overflow frontier, any order *)
    mutable idle : int;
    mutable stop : bool;
    hungry : int Atomic.t;  (** mirrors [idle] for lock-free peeking *)
    fuel : int;
    stopping : stop_reason option Atomic.t;
    expanded : int Atomic.t;
    donations : int Atomic.t;
    ndomains : int;
    budget : Budget.t option;
    entry_bytes : int;
    leftover_lock : Mutex.t;
    mutable leftovers : M.state list;
        (** unclaimed states parked by stopping workers — the other half
            of the resume frontier *)
  }

  let shard_of sh k = sh.shards.((M.hash k land max_int) mod Array.length sh.shards)

  (* First visit wins: returns [true] iff this domain claimed the key. *)
  let try_claim sh k =
    let s = shard_of sh k in
    Mutex.lock s.lock;
    let fresh = not (H.mem s.table k) in
    if fresh then H.add s.table k (Atomic.fetch_and_add sh.next_id 1);
    Mutex.unlock s.lock;
    fresh

  (* Give a claim back (the claimer hit a bound before expanding): the
     state must stay claimable after resume. *)
  let unclaim sh k =
    let s = shard_of sh k in
    Mutex.lock s.lock;
    H.remove s.table k;
    Mutex.unlock s.lock

  let set_stop sh reason =
    if Atomic.compare_and_set sh.stopping None (Some reason) then begin
      (* Wake sleepers so they can drain and exit. *)
      Mutex.lock sh.queue_lock;
      Condition.broadcast sh.work;
      Mutex.unlock sh.queue_lock
    end

  let add_leftover sh st =
    Mutex.lock sh.leftover_lock;
    sh.leftovers <- st :: sh.leftovers;
    Mutex.unlock sh.leftover_lock

  let donate sh batch =
    Atomic.incr sh.donations;
    Mutex.lock sh.queue_lock;
    sh.pending <- List.rev_append batch sh.pending;
    Condition.broadcast sh.work;
    Mutex.unlock sh.queue_lock

  (* Blocking pop with distributed-termination detection: when every domain
     is idle and the overflow queue is empty — or a stop was requested —
     the sweep is done.  On a stop the queue is drained into [leftovers]
     so the resume frontier loses nothing. *)
  let get_work sh =
    Mutex.lock sh.queue_lock;
    let rec loop () =
      if Atomic.get sh.stopping <> None then begin
        if sh.pending <> [] then begin
          Mutex.lock sh.leftover_lock;
          sh.leftovers <- List.rev_append sh.pending sh.leftovers;
          Mutex.unlock sh.leftover_lock;
          sh.pending <- []
        end;
        sh.stop <- true;
        Condition.broadcast sh.work;
        Mutex.unlock sh.queue_lock;
        None
      end
      else
        match sh.pending with
        | st :: rest ->
            sh.pending <- rest;
            Mutex.unlock sh.queue_lock;
            Some st
        | [] ->
            if sh.stop then begin
              Mutex.unlock sh.queue_lock;
              None
            end
            else begin
              sh.idle <- sh.idle + 1;
              Atomic.incr sh.hungry;
              if sh.idle = sh.ndomains then begin
                sh.stop <- true;
                Condition.broadcast sh.work;
                Mutex.unlock sh.queue_lock;
                None
              end
              else begin
                Condition.wait sh.work sh.queue_lock;
                sh.idle <- sh.idle - 1;
                Atomic.decr sh.hungry;
                loop ()
              end
            end
    in
    loop ()

  let rec split_half n acc l =
    if n = 0 then (acc, l)
    else
      match l with [] -> (acc, []) | x :: rest -> split_half (n - 1) (x :: acc) rest

  let worker sh prog =
    let acc = ref Final.Set.empty in
    let local = ref [] in
    let iters = ref 0 in
    let process st =
      if Atomic.get sh.stopping <> None then add_leftover sh st
      else begin
        (match sh.budget with
        | Some b when !iters land 63 = 0 ->
            let bytes = Atomic.get sh.next_id * sh.entry_bytes in
            (match Budget.check b ~bytes with
            | Some Budget.Deadline -> set_stop sh Deadline_exceeded
            | Some Budget.Memory ->
                (* The sharded exact table cannot migrate to a Bloom
                   filter mid-sweep; drain cleanly instead. *)
                set_stop sh Memory_exhausted
            | None -> ())
        | _ -> ());
        incr iters;
        if Atomic.get sh.stopping <> None then add_leftover sh st
        else
          let k = M.canon st in
          if try_claim sh k then
            let n = Atomic.fetch_and_add sh.expanded 1 in
            if n >= sh.fuel then begin
              (* Bound reached after the claim: give the claim back so
                 the state survives into the resume frontier. *)
              Atomic.decr sh.expanded;
              unclaim sh k;
              set_stop sh Fuel_exhausted;
              add_leftover sh st
            end
            else
              match M.final prog st with
              | Some f -> acc := Final.Set.add f !acc
              | None ->
                  List.iter (fun s -> local := s :: !local) (M.successors prog st)
      end
    in
    let rec loop () =
      match !local with
      | st :: rest ->
          local := rest;
          process st;
          (* Rebalance: if someone is starving and we hold more than one
             state, hand over half of our stack. *)
          (if Atomic.get sh.hungry > 0 && Atomic.get sh.stopping = None then
             match !local with
             | _ :: _ :: _ ->
                 let gift, keep =
                   split_half (List.length !local / 2) [] !local
                 in
                 local := keep;
                 donate sh gift
             | _ -> ());
          loop ()
      | [] -> (
          match get_work sh with
          | Some st ->
              local := [ st ];
              loop ()
          | None ->
              (* A stopping worker parks whatever it still holds. *)
              if Atomic.get sh.stopping <> None then
                List.iter (add_leftover sh) !local)
    in
    loop ();
    !acc

  let run_par ~domains ~fuel ~rcfg prog =
    let resumed =
      Option.map (fun bytes -> decode_snap ~prog bytes) rcfg.resume
    in
    (match resumed with
    | Some { s_visited = Bloom_filter _; _ } ->
        raise
          (Resume_rejected
             "this snapshot's visited set is a Bloom filter (degraded \
              run); resume it with the sequential engine (--jobs 1)")
    | _ -> ());
    let sh =
      {
        shards =
          Array.init n_shards (fun _ ->
              { lock = Mutex.create (); table = H.create 1024 });
        next_id = Atomic.make 0;
        queue_lock = Mutex.create ();
        work = Condition.create ();
        pending = [ M.initial prog ];
        idle = 0;
        stop = false;
        hungry = Atomic.make 0;
        fuel;
        stopping = Atomic.make None;
        expanded = Atomic.make 0;
        donations = Atomic.make 0;
        ndomains = domains;
        budget = rcfg.budget;
        entry_bytes = entry_bytes_estimate prog;
        leftover_lock = Mutex.create ();
        leftovers = [];
      }
    in
    let resumed_acc =
      match resumed with
      | None -> Final.Set.empty
      | Some s ->
          (match s.s_visited with
          | Exact_keys keys ->
              Array.iter (fun k -> ignore (try_claim sh k)) keys
          | Bloom_filter _ -> assert false);
          Atomic.set sh.expanded s.s_expanded;
          sh.pending <- s.s_frontier;
          rcfg.on_event
            (Printf.sprintf
               "resumed %s/%s: %d state(s) already expanded, frontier %d"
               M.name (Prog.name prog) s.s_expanded
               (List.length s.s_frontier));
          s.s_acc
    in
    let others =
      Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker sh prog))
    in
    let mine = worker sh prog in
    let acc =
      Array.fold_left
        (fun a d -> Final.Set.union (Domain.join d) a)
        (Final.Set.union resumed_acc mine)
        others
    in
    let stop = Atomic.get sh.stopping in
    (* On an early stop, hand the caller a resume point: every claimed key
       plus the parked frontier. *)
    (match (stop, rcfg.snapshot_sink) with
    | Some _, Some sink ->
        let n = Array.fold_left (fun a s -> a + H.length s.table) 0 sh.shards in
        let keys = Array.make n (M.canon (M.initial prog)) in
        let i = ref 0 in
        Array.iter
          (fun s ->
            H.iter
              (fun k _ ->
                keys.(!i) <- k;
                incr i)
              s.table)
          sh.shards;
        sink
          (encode_snap
             {
               s_fingerprint = fingerprint prog;
               s_visited = Exact_keys keys;
               s_claimed = n;
               s_frontier = sh.leftovers;
               s_acc = acc;
               s_expanded = Atomic.get sh.expanded;
               s_degraded_at = None;
             });
        Obs.instant rcfg.obs ~cat:"explore" ~name:"checkpoint" ~tid:0
          ~ts:(Atomic.get sh.expanded) ~loc:"" ~cause:""
    | _ -> ());
    let per_shard = Array.map (fun s -> H.length s.table) sh.shards in
    let buckets, max_probe =
      Array.fold_left
        (fun (b, m) s ->
          let st = H.stats s.table in
          (b + st.Hashtbl.num_buckets, max m st.Hashtbl.max_bucket_length))
        (0, 0) sh.shards
    in
    {
      result = (if stop <> None then Partial acc else Complete acc);
      stop;
      stats =
        {
          states_expanded = Atomic.get sh.expanded;
          domains_used = domains;
          claimed = Array.fold_left ( + ) 0 per_shard;
          claimed_per_shard = per_shard;
          donations = Atomic.get sh.donations;
          table_buckets = buckets;
          max_probe;
          degraded_at = None;
        };
    }

  (* --- public API ----------------------------------------------------------- *)

  let run ?(domains = 1) ?fuel ?(rcfg = rcfg_default) prog =
    if domains < 1 then invalid_arg "Explore.run: domains must be >= 1";
    (match fuel with
    | Some f when f < 0 -> invalid_arg "Explore.run: negative fuel"
    | _ -> ());
    if rcfg.checkpoint_every < 1 then
      invalid_arg "Explore.run: checkpoint_every must be >= 1";
    let fuel = Option.value fuel ~default:max_int in
    if domains = 1 then run_seq ~fuel ~rcfg prog
    else run_par ~domains ~fuel ~rcfg prog

  let outcomes ?domains prog = bounded_value (run ?domains prog).result

  let outcomes_bounded ~fuel prog =
    if fuel < 0 then invalid_arg "Explore.outcomes_bounded: negative fuel";
    (run ~fuel prog).result

  let allows prog cond = Cond.satisfiable_in (outcomes prog) cond

  let allows_exists prog = Option.map (allows prog) (Prog.exists prog)

  (* A machine [appears sequentially consistent] to a program when every
     outcome it allows is also an SC outcome (Definition 2's "appears").
     The SC reference set can be passed in (e.g. when sweeping many
     machines over one program); otherwise the process-wide memoized cache
     avoids re-enumerating SC per call. *)
  let appears_sc ?sc prog =
    let sc =
      match sc with Some s -> s | None -> Sc.outcomes_cached prog
    in
    Final.Set.subset (outcomes prog) sc
end
