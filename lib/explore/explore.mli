(** Exhaustive exploration of abstract machines: hash-consed transposition
    table, optional parallel (multi-domain) frontier sweep, fuel bounds —
    and the resilience layer: wall-clock/memory budgets checked at safe
    points, crash-safe checkpoints of the frontier + transposition table,
    resume, and graceful degradation to a Bloom-filter visited set under
    memory pressure. *)

type 'a bounded = Complete of 'a | Partial of 'a
(** [Partial] means coverage cannot be trusted to be exhaustive: a budget
    (fuel, deadline, memory) cut the sweep short, or the visited set was
    degraded to a Bloom filter.  The carried set is always a sound
    {e subset} of the complete outcome set (exploration only cuts
    branches, never invents outcomes) — so any violation it contains is
    real. *)

val bounded_value : 'a bounded -> 'a
(** Drop the completeness marker. *)

val is_complete : 'a bounded -> bool
(** The sweep was exhaustive and the visited set exact. *)

type stop_reason =
  | Fuel_exhausted  (** the distinct-states-expanded bound was reached *)
  | Deadline_exceeded  (** the budget's wall-clock deadline passed *)
  | Memory_exhausted
      (** the parallel engine drained at the memory budget (the
          sequential engine degrades to a Bloom visited set instead) *)
  | Cancelled
      (** the [rcfg.cancel] hook asked the sweep to stop — a supervisor
          draining its workers, a per-job soft timeout *)

val stop_reason_string : stop_reason -> string
(** ["fuel"], ["deadline"], ["memory"] or ["cancel"]. *)

type stats = {
  states_expanded : int;
      (** distinct states expanded — equal across strategies on a
          [Complete] run *)
  domains_used : int;  (** domains that ran the sweep (1 = sequential) *)
  claimed : int;
      (** distinct states claimed in the transposition table; equals
          [states_expanded] on every run now that budget stops leave
          unexpanded states in the frontier rather than claiming them *)
  claimed_per_shard : int array;
      (** claimed states per claim-table shard — the shard-balance view;
          a single cell on sequential runs *)
  donations : int;
      (** work-donation events: batches a busy domain handed to a
          starving one (0 on sequential runs) *)
  table_buckets : int;
      (** total hash-table buckets across shards; [claimed /.
          table_buckets] is the load factor ([0] once degraded — the
          exact table was dropped) *)
  max_probe : int;  (** longest bucket chain in any shard — probe cost *)
  degraded_at : int option;
      (** [Some n]: the visited set switched to a Bloom filter after [n]
          expansions (memory budget crossed); coverage is approximate
          from then on and the result is pinned [Partial] *)
  por_enabled : bool;
      (** partial-order reduction was active for this run (the machine
          declared an oracle and the program cleared the size guard) *)
  oracle_calls : int;
      (** non-final expansions that consulted the oracle *)
  ample_hits : int;
      (** expansions where the oracle proved a single ample transition
          sufficient — on parallel runs, summed over workers *)
  suppressed : int;
      (** transitions present in the full successor relation that the
          reduction did not fire (ample- plus sleep-suppressed) *)
  sym_group : int;
      (** order of the program's automorphism group used by this run
          ([1]: symmetry reduction off or the group is trivial) *)
  sym_hits : int;
      (** frontier states whose transposition-table probe was redirected
          to a different orbit representative — each is a state class the
          symmetry reduction may merge *)
  spilled_runs : int;
      (** immutable visited-set runs written to the spill directory
          ([0] without [--spill-dir]) *)
  spilled_keys : int;  (** visited keys resident on disk rather than RAM *)
}
(** Telemetry from one exploration sweep. *)

val basic_stats :
  ?por_enabled:bool ->
  ?oracle_calls:int ->
  ?ample_hits:int ->
  ?suppressed:int ->
  ?sym_group:int ->
  ?sym_hits:int ->
  states_expanded:int ->
  domains_used:int ->
  unit ->
  stats
(** Degenerate telemetry for engines without a sharded sweep (one shard
    holding every claimed state, no table data) — e.g. the SC
    interleaving enumerator. *)

val pp_stats : Format.formatter -> stats -> unit
(** One line: states, claims, shards, donations, table occupancy,
    reduction counters. *)

type run_result = {
  result : Final.Set.t bounded;
  stats : stats;
  stop : stop_reason option;
      (** why the sweep stopped early; [None] when the frontier drained
          (even under degradation, where the result is still [Partial]) *)
}
(** The outcome set together with the sweep's telemetry. *)

(** {1 Resilience configuration} *)

val checkpoint_every_default : int
(** Default periodic-checkpoint interval, in state expansions ([1000]). *)

type rcfg = {
  budget : Budget.t option;
      (** wall-clock deadline and memory budget, checked at safe points *)
  checkpoint_every : int;
      (** expansions between periodic snapshots (sequential engine only;
          the parallel engine snapshots at budget stops).  Periodic
          snapshots self-throttle: one is skipped while taking it would
          spend more than ~5% of the wall-clock since the last (snapshot
          cost grows with the visited set), so the overhead stays bounded
          on big sweeps; stop/final snapshots are never skipped *)
  snapshot_sink : (string -> unit) option;
      (** receives framed snapshot bytes (see {!Snapshot}): periodically
          every [checkpoint_every] expansions, and once at any early stop
          — the caller decides where they live (a file, an enclosing
          checkpoint) *)
  resume : string option;
      (** framed snapshot bytes to restore before exploring; validated
          (CRC, version, machine, program) — never silently trusted *)
  sym : bool;
      (** prune modulo the program's automorphism group ({!Sym}): the
          transposition table is probed with the least key of each
          state's orbit and recorded outcomes are closed under the
          group.  A [Complete] outcome set is identical either way; on
          symmetric programs [states_expanded] drops by up to the group
          order.  Activating symmetry (a nontrivial group) disables
          sleep-set pruning — orbit-merged visits cannot answer the
          revisit protocol — while ample-set reduction stays on. *)
  spill_dir : string option;
      (** directory for a tiered exact visited store ({!Spill_store}):
          under memory pressure the sweep flushes its hot visited tier
          into immutable runs there instead of degrading to a lossy
          Bloom filter, so the result stays [Complete].  Active from the
          first claim or not at all; disables sleep sets like [sym]. *)
  spill_threshold : int;
      (** hot-tier key cap of the spill store (flush happens at the cap
          even without a memory budget); {!spill_flush_default} *)
  obs : Obs.t;
      (** receives ["explore"]-category instants for checkpoint, resume
          and degradation events *)
  on_event : string -> unit;
      (** loud human-readable notices (degradation, recovery); the CLI
          routes this to stderr *)
  cancel : (unit -> bool) option;
      (** the per-job stop hook: polled at the same safe points as the
          budget (both engines).  Returning [true] stops the sweep with
          {!Cancelled} — the in-flight state stays in the frontier and
          the final snapshot is a complete resume point, exactly like a
          budget stop.  The batch service routes its drain signal
          (SIGTERM/SIGINT forwarded to a worker) through this. *)
}
(** Everything the resilience layer needs, bundled so engines can thread
    it without widening every signature.  {!rcfg_default} disables it
    all. *)

val rcfg_default : rcfg

exception Resume_rejected of string
(** A resume snapshot failed validation: corrupted (CRC), version-skewed,
    wrong machine, wrong program, taken under the opposite reduction or
    symmetry setting, a degraded (Bloom) snapshot offered to the parallel
    engine, a reduced sequential snapshot (carrying sleep-set state)
    offered to a parallel run, a spill-store snapshot resumed without its
    [spill_dir] (or with a corrupted store), or a degraded snapshot
    offered to a spilling run. *)

val por_min_instrs_default : int
(** Programs with fewer instructions than this skip the reduction
    machinery entirely (the cheap guard): their state spaces are small
    enough that oracle tests cost more than the states they would save. *)

val spill_threshold_default : int
(** A multi-domain request first probes sequentially and only fans out
    to domains once this many states have been expanded — spawning
    domains for a sub-millisecond sweep costs more than the sweep.
    (Unrelated to the spill {e store}; see {!spill_flush_default}.) *)

val spill_flush_default : int
(** Default hot-tier key cap of the spill store ([rcfg.spill_threshold]):
    the RAM tier flushes to an immutable on-disk run at this size even
    without a memory budget. *)

module Make (M : Machine_sig.MACHINE) : sig
  val run :
    ?domains:int ->
    ?adaptive:bool ->
    ?reduce:bool ->
    ?por_min_instrs:int ->
    ?fuel:int ->
    ?rcfg:rcfg ->
    Prog.t ->
    run_result
  (** [run ~domains:n ~fuel p] explores [p]'s state graph.  [n = 1]
      (default) is a sequential DFS; [n > 1] spawns extra domains over a
      sharded claim table.  [fuel] bounds the number of distinct states
      expanded — across resume, so a resumed run continues the original
      budget; without it exploration is exhaustive.  A [Complete] result
      carries the same outcome set for every [domains]; a [Partial]
      result is always a sound subset of the complete set.

      [reduce] (default [true]) enables partial-order reduction when the
      machine declares an oracle and the program has at least
      [por_min_instrs] instructions (default
      {!por_min_instrs_default}): the sequential engine runs ample-set
      selection plus sleep-set pruning, the parallel engine ample-set
      selection only, so reduced sequential runs expand at most as many
      states as reduced parallel runs.  The outcome set of a [Complete]
      run is unchanged by [reduce]; only [states_expanded] varies.

      [adaptive] (default [true]) makes a multi-domain request safe on
      small problems: domains are capped at
      [Domain.recommended_domain_count ()], and the sweep starts on the
      sequential engine, fanning out only after
      {!spill_threshold_default} states ([stats.domains_used] reports
      what actually ran).  Pass [~adaptive:false] to force the parallel
      engine at exactly [domains].

      With [rcfg]: the budget is checked between expansions and the sweep
      drains cleanly to [Partial] (with a final snapshot handed to the
      sink) instead of being killed mid-sweep; under memory pressure the
      sequential engine degrades the visited set to a Bloom filter and
      keeps going (disabling reduction from that point, loudly).
      Snapshots record the reduction setting and any sleep-set state; a
      resume must use the same [reduce] setting, and snapshots from
      reduced sequential runs can only resume on the sequential engine.
      @raise Invalid_argument on [domains < 1], negative [fuel], or a
        non-positive [checkpoint_every]
      @raise Resume_rejected if [rcfg.resume] fails validation *)

  val snapshot_frontier_length : string -> int
  (** Frontier length recorded in framed snapshot bytes — introspection
      for tests and tooling.
      @raise Resume_rejected on invalid bytes. *)

  val outcomes : ?domains:int -> ?reduce:bool -> Prog.t -> Final.Set.t
  (** The complete outcome set ({!run} without fuel, result unwrapped). *)

  val outcomes_bounded : fuel:int -> Prog.t -> Final.Set.t bounded
  (** Explore at most [fuel] distinct states; always terminates and never
      raises on well-formed programs.  Returns [Complete s] when the state
      graph fit in the budget (then [s] equals {!outcomes}), [Partial s]
      otherwise, with [s] a subset of the complete set.
      @raise Invalid_argument on negative [fuel]. *)

  val allows : Prog.t -> Cond.t -> bool
  (** Some complete outcome satisfies the condition. *)

  val allows_exists : Prog.t -> bool option
  (** {!allows} against the program's [exists] clause, when it has one. *)

  val appears_sc : ?sc:Final.Set.t -> Prog.t -> bool
  (** Every machine outcome is an SC outcome (Definition 2's "appears
      sequentially consistent" for one program).  [?sc] supplies the SC
      reference set; by default it comes from {!Sc.outcomes_cached}. *)
end
