(** Exhaustive exploration of abstract machines: hash-consed transposition
    table, optional parallel (multi-domain) frontier sweep, fuel bounds. *)

type 'a bounded = Complete of 'a | Partial of 'a
(** [Partial] means the fuel budget ran out: the carried set is a sound
    subset of the complete outcome set (exploration only cuts branches). *)

val bounded_value : 'a bounded -> 'a
(** Drop the completeness marker. *)

val is_complete : 'a bounded -> bool
(** The fuel budget was not exhausted. *)

type stats = {
  states_expanded : int;
      (** distinct states expanded — equal across strategies on a
          [Complete] run *)
  domains_used : int;  (** domains that ran the sweep (1 = sequential) *)
  claimed : int;
      (** distinct states claimed in the transposition table; equals
          [states_expanded] on an unbounded run (fuel only cuts claimed
          states short of expansion) *)
  claimed_per_shard : int array;
      (** claimed states per claim-table shard — the shard-balance view;
          a single cell on sequential runs *)
  donations : int;
      (** work-donation events: batches a busy domain handed to a
          starving one (0 on sequential runs) *)
  table_buckets : int;
      (** total hash-table buckets across shards; [claimed /.
          table_buckets] is the load factor *)
  max_probe : int;  (** longest bucket chain in any shard — probe cost *)
}
(** Telemetry from one exploration sweep. *)

val basic_stats : states_expanded:int -> domains_used:int -> stats
(** Degenerate telemetry for engines without a sharded sweep (one shard
    holding every claimed state, no table data) — e.g. the SC
    interleaving enumerator. *)

val pp_stats : Format.formatter -> stats -> unit
(** One line: states, claims, shards, donations, table occupancy. *)

type run_result = { result : Final.Set.t bounded; stats : stats }
(** The outcome set together with the sweep's telemetry. *)

module Make (M : Machine_sig.MACHINE) : sig
  val run : ?domains:int -> ?fuel:int -> Prog.t -> run_result
  (** [run ~domains:n ~fuel p] explores [p]'s state graph.  [n = 1]
      (default) is a sequential DFS; [n > 1] spawns [n - 1] extra domains
      over a sharded claim table.  [fuel] bounds the number of distinct
      states expanded; without it exploration is exhaustive.  A [Complete]
      result is identical for every [domains]; a [Partial] result is always
      a sound subset of the complete set.
      @raise Invalid_argument on [domains < 1] or negative [fuel]. *)

  val outcomes : ?domains:int -> Prog.t -> Final.Set.t
  (** The complete outcome set ({!run} without fuel, result unwrapped). *)

  val outcomes_bounded : fuel:int -> Prog.t -> Final.Set.t bounded
  (** Explore at most [fuel] distinct states; always terminates and never
      raises on well-formed programs.  Returns [Complete s] when the state
      graph fit in the budget (then [s] equals {!outcomes}), [Partial s]
      otherwise, with [s] a subset of the complete set.
      @raise Invalid_argument on negative [fuel]. *)

  val allows : Prog.t -> Cond.t -> bool
  (** Some complete outcome satisfies the condition. *)

  val allows_exists : Prog.t -> bool option
  (** {!allows} against the program's [exists] clause, when it has one. *)

  val appears_sc : ?sc:Final.Set.t -> Prog.t -> bool
  (** Every machine outcome is an SC outcome (Definition 2's "appears
      sequentially consistent" for one program).  [?sc] supplies the SC
      reference set; by default it comes from {!Sc.outcomes_cached}. *)
end
