(* The interface of an abstract hardware machine: a nondeterministic labeled
   transition system whose complete runs define the outcomes the hardware
   allows for a program.  [Explore] turns any machine into an exhaustive
   outcome-set computation, sequential or parallel.

   A machine may additionally declare a partial-order reduction oracle: a
   labeling of its transitions with enough information to decide
   commutativity, plus an ample-transition selector.  Machines without an
   oracle ([por _ = None]) are explored in full — the safe default. *)

type action = {
  a_proc : int;  (** issuing processor *)
  a_id : int;
      (** discriminates this transition among [a_proc]'s transitions: the
          instruction index for issues, the pending-buffer slot for drains.
          Must be stable across revisits of the same canonical state so
          that sleep-set membership is meaningful. *)
  a_loc : string;
      (** shared location the step touches, or [""] for a purely
          processor-local step (register write, buffer enqueue, fence) *)
  a_write : bool;  (** the step can change the value at [a_loc] *)
  a_sync : bool;
      (** the step reads or writes global synchronization structures
          (reservations, lock state) beyond the single location [a_loc];
          sync steps are never independent of other shared-memory steps *)
}

(* Commutativity of two transition labels.  Deliberately conservative:
   same-processor steps are always dependent (program order), sync steps
   conflict with every non-local step, and two accesses to one location
   conflict unless both are reads.  A machine's labeling must be honest —
   [a_loc = ""] promises the step commutes with every step of every other
   processor. *)
let independent t u =
  t.a_proc <> u.a_proc
  && (t.a_loc = "" || u.a_loc = ""
     || ((not t.a_sync) && (not u.a_sync)
        && not (t.a_loc = u.a_loc && (t.a_write || u.a_write))))

type 'state oracle = {
  successors_labeled : 'state -> (action * 'state) list;
      (** Same transitions as [successors], in the same order, each
          carrying its label. *)
  ample : 'state -> (action * 'state) list -> (action * 'state) option;
      (** [ample st succs], where [succs = successors_labeled st]:
          [Some (a, s')] iff the machine can prove firing this single
          transition alone preserves the outcome set — [(a, s')] must be
          one of [succs]'s entries, commute with every transition any
          other processor (and, for non-issue steps, the same processor)
          can fire before it, and occur in every complete run from [st].
          [None] means expand everything. *)
}

module type MACHINE = sig
  type state

  type key
  (** A canonical, structurally comparable summary of a state.  Equal keys
      must mean the same set of future behaviours.  Keys are built from
      immutable data (ints, strings, tuples, lists, arrays) so they can be
      hashed and compared cheaply and shared freely across domains — no
      serialization involved. *)

  val name : string

  val initial : Prog.t -> state

  val successors : Prog.t -> state -> state list
  (** All states reachable in one step.  The empty list on a non-final state
      means the machine is stuck (e.g. all threads blocked on awaits);
      such runs produce no outcome. *)

  val final : Prog.t -> state -> Final.t option
  (** [Some f] iff the state is a complete run (all threads finished, all
      buffered effects drained). *)

  val canon : state -> key
  (** Canonicalize a state for memoization.  Must be cheap: one structural
      copy of the varying parts, no marshalling. *)

  val hash : key -> int
  val equal : key -> key -> bool

  val permute : Sym.perm -> key -> key
  (** The image of a canonical key under a program automorphism: memory
      bindings relocated (and re-sorted — renaming does not preserve
      binding order), per-processor components moved to the image
      processor with registers/locations renamed, and any global
      synchronization structures (reservation lists) renamed and
      re-normalized.  Must satisfy
      [canon (sigma st) = permute sigma (canon st)] for the state map
      [sigma] the automorphism induces; the orbit-representative pruning
      in [Explore] is sound exactly because of that equation. *)

  val por : Prog.t -> state oracle option
  (** The machine's partial-order reduction oracle for [prog], or [None]
      to disable reduction for this machine (always sound). *)
end

(* The default key hash.  [Hashtbl.hash] caps at 10 meaningful nodes, which
   collides badly on machine states that differ only deep inside a buffer;
   widen the traversal so the whole canonical form participates. *)
let structural_hash k = Hashtbl.hash_param 128 256 k
