(* The interface of an abstract hardware machine: a nondeterministic labeled
   transition system whose complete runs define the outcomes the hardware
   allows for a program.  [Explore] turns any machine into an exhaustive
   outcome-set computation, sequential or parallel. *)

module type MACHINE = sig
  type state

  type key
  (** A canonical, structurally comparable summary of a state.  Equal keys
      must mean the same set of future behaviours.  Keys are built from
      immutable data (ints, strings, tuples, lists, arrays) so they can be
      hashed and compared cheaply and shared freely across domains — no
      serialization involved. *)

  val name : string

  val initial : Prog.t -> state

  val successors : Prog.t -> state -> state list
  (** All states reachable in one step.  The empty list on a non-final state
      means the machine is stuck (e.g. all threads blocked on awaits);
      such runs produce no outcome. *)

  val final : Prog.t -> state -> Final.t option
  (** [Some f] iff the state is a complete run (all threads finished, all
      buffered effects drained). *)

  val canon : state -> key
  (** Canonicalize a state for memoization.  Must be cheap: one structural
      copy of the varying parts, no marshalling. *)

  val hash : key -> int

  val equal : key -> key -> bool
end

(* The default key hash.  [Hashtbl.hash] caps at 10 meaningful nodes, which
   collides badly on machine states that differ only deep inside a buffer;
   widen the traversal so the whole canonical form participates. *)
let structural_hash k = Hashtbl.hash_param 128 256 k
