(* Structured tracing and metrics, built for always-on use.

   The tracer is a preallocated ring of mutable event records: recording
   mutates fields in place (no allocation, no formatting), and a disabled
   tracer short-circuits after one branch.  Everything expensive — JSON
   escaping, sorting, table layout — happens at export time, on the
   bounded set of retained events.  Stall accounting and histograms are
   separate always-on structures: a bounded hash table and a fixed bucket
   array, each O(1) per update. *)

type ev = {
  mutable ph : char;
  mutable cat : string;
  mutable name : string;
  mutable tid : int;
  mutable ts : int;
  mutable dur : int;
  mutable loc : string;
  mutable cause : string;
  mutable value : int;
}

let fresh_ev () =
  {
    ph = ' ';
    cat = "";
    name = "";
    tid = 0;
    ts = 0;
    dur = 0;
    loc = "";
    cause = "";
    value = min_int;
  }

type t = {
  on : bool;
  cap : int;
  ring : ev array;
  mutable total : int;  (* events ever recorded *)
}

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Obs.create: capacity must be positive";
  { on = true; cap = capacity; ring = Array.init capacity (fun _ -> fresh_ev ()); total = 0 }

let null = { on = false; cap = 0; ring = [||]; total = 0 }

let enabled t = t.on
let recorded t = t.total
let dropped t = if t.total > t.cap then t.total - t.cap else 0
let capacity t = t.cap
let clear t = t.total <- 0

(* The one hot-path function: claim the next slot and fill it in place. *)
let record t ph cat name tid ts dur loc cause value =
  if t.on then begin
    let e = t.ring.(t.total mod t.cap) in
    t.total <- t.total + 1;
    e.ph <- ph;
    e.cat <- cat;
    e.name <- name;
    e.tid <- tid;
    e.ts <- ts;
    e.dur <- dur;
    e.loc <- loc;
    e.cause <- cause;
    e.value <- value
  end

let span t ~cat ~name ~tid ~ts ~dur ~loc ~cause =
  record t 'X' cat name tid ts dur loc cause min_int

let instant t ~cat ~name ~tid ~ts ~loc ~cause =
  record t 'i' cat name tid ts 0 loc cause min_int

let counter t ~cat ~name ~tid ~ts ~value =
  record t 'C' cat name tid ts 0 "" "" value

let copy_ev e =
  {
    ph = e.ph;
    cat = e.cat;
    name = e.name;
    tid = e.tid;
    ts = e.ts;
    dur = e.dur;
    loc = e.loc;
    cause = e.cause;
    value = e.value;
  }

let events t =
  let n = min t.total t.cap in
  (* Oldest first: when the ring has wrapped, the oldest live slot is the
     one the next record would overwrite. *)
  let first = if t.total > t.cap then t.total mod t.cap else 0 in
  List.init n (fun i -> copy_ev t.ring.((first + i) mod t.cap))

(* --- stall accounting -------------------------------------------------------- *)

module Stall = struct
  type key = int * string * string

  type t = (key, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let add t ~tid ~cause ~loc ~cycles =
    if cycles > 0 then
      match Hashtbl.find_opt t (tid, cause, loc) with
      | Some r -> r := !r + cycles
      | None -> Hashtbl.add t (tid, cause, loc) (ref cycles)

  let get t ~tid ~cause ~loc =
    match Hashtbl.find_opt t (tid, cause, loc) with
    | Some r -> !r
    | None -> 0

  let total ?tid ?cause ?loc t =
    Hashtbl.fold
      (fun (kt, kc, kl) r acc ->
        let keep = function Some x, y -> x = y | None, _ -> true in
        if
          keep (tid, kt)
          && keep (cause, kc)
          && keep (loc, kl)
        then acc + !r
        else acc)
      t 0

  let rows t =
    Hashtbl.fold (fun (kt, kc, kl) r acc -> (kt, kc, kl, !r) :: acc) t []
    |> List.filter (fun (_, _, _, c) -> c > 0)
    |> List.sort compare

  let pp ppf t =
    match rows t with
    | [] -> Format.fprintf ppf "(no stalled cycles recorded)"
    | rs ->
        Format.fprintf ppf "%-4s %-16s %-8s %10s" "proc" "cause" "loc" "cycles";
        List.iter
          (fun (tid, cause, loc, cycles) ->
            Format.fprintf ppf "@\nP%-3d %-16s %-8s %10d" tid cause
              (if loc = "" then "-" else loc)
              cycles)
          rs
end

(* --- histograms -------------------------------------------------------------- *)

module Hist = struct
  type t = {
    counts : int array;  (* counts.(i): values in (2^(i-1), 2^i], zeros in 0 *)
    mutable n : int;
    mutable sum : int;
    mutable vmax : int;
  }

  let nbuckets = 62

  let create () = { counts = Array.make nbuckets 0; n = 0; sum = 0; vmax = 0 }

  let bucket_of v =
    let rec go b bound = if v <= bound then b else go (b + 1) (bound * 2) in
    go 0 1

  let add t v =
    let v = if v < 0 then 0 else v in
    t.counts.(min (nbuckets - 1) (bucket_of v)) <- t.counts.(bucket_of v) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum + v;
    if v > t.vmax then t.vmax <- v

  let count t = t.n
  let max_value t = t.vmax
  let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n

  let buckets t =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.counts.(i) > 0 then acc := (1 lsl i, t.counts.(i)) :: !acc
    done;
    !acc

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.1f max=%d" t.n (mean t) t.vmax;
    List.iter
      (fun (bound, c) -> Format.fprintf ppf " <=%d:%d" bound c)
      (buckets t)
end

module Gauge = struct
  type t = { mutable cur : int; mutable gmax : int; mutable sum : int; mutable n : int }

  let create () = { cur = 0; gmax = 0; sum = 0; n = 0 }

  let set t v =
    let v = if v < 0 then 0 else v in
    t.cur <- v;
    if v > t.gmax then t.gmax <- v;
    t.sum <- t.sum + v;
    t.n <- t.n + 1

  let incr t = set t (t.cur + 1)
  let decr t = set t (t.cur - 1)
  let current t = t.cur
  let max_level t = t.gmax
  let samples t = t.n
  let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n
end

(* --- Chrome trace_event export ----------------------------------------------- *)

module Chrome = struct
  (* Synthetic process grouping: category -> pid.  Keeps CPU-op tracks,
     protocol transactions and the interconnect on separate swim-lane
     groups in the viewer. *)
  let pid_of_cat = function
    | "op" -> 0
    | "txn" | "proto" -> 1
    | "net" | "fault" -> 2
    | _ -> 0

  let process_names = [ (0, "cpu ops"); (1, "coherence protocol"); (2, "interconnect") ]

  let escape b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 32 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let field b key value =
    Buffer.add_char b '"';
    escape b key;
    Buffer.add_string b "\":\"";
    escape b value;
    Buffer.add_char b '"'

  let emit_args b e =
    let args = ref [] in
    if e.value <> min_int then args := ("value", `I e.value) :: !args;
    if e.cause <> "" then args := ("cause", `S e.cause) :: !args;
    if e.loc <> "" then args := ("loc", `S e.loc) :: !args;
    match !args with
    | [] -> ()
    | args ->
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            match v with
            | `S s -> field b k s
            | `I n ->
                Buffer.add_char b '"';
                escape b k;
                Buffer.add_string b "\":";
                Buffer.add_string b (string_of_int n))
          args;
        Buffer.add_char b '}'

  let emit_event b shift e =
    Buffer.add_char b '{';
    field b "name" e.name;
    Buffer.add_char b ',';
    field b "cat" e.cat;
    Buffer.add_char b ',';
    field b "ph" (String.make 1 e.ph);
    if e.ph = 'i' then Buffer.add_string b ",\"s\":\"t\"";
    Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d,\"ts\":%d"
      (pid_of_cat e.cat) e.tid (e.ts - shift));
    if e.ph = 'X' then Buffer.add_string b (Printf.sprintf ",\"dur\":%d" e.dur);
    (if e.ph = 'C' then
       Buffer.add_string b
         (Printf.sprintf ",\"args\":{\"value\":%d}"
            (if e.value = min_int then 0 else e.value))
     else emit_args b e);
    Buffer.add_char b '}'

  let to_buffer ?(normalize = false) b evs =
    (* Stable sort by start time keeps simultaneous events in record
       order, so deterministic runs export byte-identical documents.
       Normalized exports (diffing, golden tests) sort by a *total* key
       instead: the document then depends only on the multiset of events,
       not on the order the ring received them — which is what lets
       timing-invisible optimizations (batched delivery, spin parking)
       reorder same-cycle recording without perturbing the goldens. *)
    let evs =
      if normalize then
        List.sort
          (fun a e ->
            compare
              (a.ts, a.tid, a.cat, a.name, a.dur, a.loc, a.cause, a.value, a.ph)
              (e.ts, e.tid, e.cat, e.name, e.dur, e.loc, e.cause, e.value, e.ph))
          evs
      else List.stable_sort (fun a e -> compare a.ts e.ts) evs
    in
    let shift =
      if not normalize then 0
      else List.fold_left (fun m e -> min m e.ts) max_int evs
    in
    let shift = if shift = max_int then 0 else shift in
    Buffer.add_string b "{\"traceEvents\":[";
    let first = ref true in
    let sep () =
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b "\n  "
    in
    List.iter
      (fun (pid, pname) ->
        sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
             pid pname))
      process_names;
    List.iter
      (fun e ->
        sep ();
        emit_event b shift e)
      evs;
    Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"timeUnit\":\"cycles\"}}\n"

  let to_string ?normalize t =
    let b = Buffer.create 4096 in
    to_buffer ?normalize b (events t);
    Buffer.contents b

  (* Atomic install (temp file + fsync + rename): a crash mid-export
     leaves either the previous trace or the new one, never a truncated
     JSON document that the viewer rejects. *)
  let write_file ?normalize path t =
    Atomic_io.write_file path (to_string ?normalize t)
end

(* --- summaries --------------------------------------------------------------- *)

let pp_summary ?stalls ppf t =
  Format.fprintf ppf "trace: %d event(s) recorded, %d dropped (capacity %d)"
    (recorded t) (dropped t) (capacity t);
  let evs = events t in
  (* Per-category event counts and total span cycles. *)
  let cats : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 8 in
  let tids : (int, int ref * int ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let bump tbl key =
        let n, cyc =
          match Hashtbl.find_opt tbl key with
          | Some p -> p
          | None ->
              let p = (ref 0, ref 0) in
              Hashtbl.add tbl key p;
              p
        in
        incr n;
        if e.ph = 'X' then cyc := !cyc + e.dur
      in
      bump cats e.cat;
      if e.cat = "op" then bump tids e.tid)
    evs;
  if evs <> [] then begin
    Format.fprintf ppf "@\n%-8s %8s %12s" "category" "events" "span-cycles";
    Hashtbl.fold (fun c v acc -> (c, v) :: acc) cats []
    |> List.sort compare
    |> List.iter (fun (c, (n, cyc)) ->
           Format.fprintf ppf "@\n%-8s %8d %12d" c !n !cyc);
    let ts = Hashtbl.fold (fun t v acc -> (t, v) :: acc) tids [] in
    if ts <> [] then begin
      Format.fprintf ppf "@\nper-processor operations:";
      List.sort compare ts
      |> List.iter (fun (tid, (n, cyc)) ->
             Format.fprintf ppf "@\n  P%d: %d op(s), %d cycle(s) in flight"
               tid !n !cyc)
    end
  end;
  match stalls with
  | None -> ()
  | Some s ->
      Format.fprintf ppf "@\nstall attribution:@\n%a" Stall.pp s

let pp_window ppf ~around ~radius t =
  let evs =
    List.filter (fun e -> abs (e.ts - around) <= radius) (events t)
  in
  Format.fprintf ppf "trace window [%d, %d] (%d event(s)):"
    (around - radius) (around + radius) (List.length evs);
  List.iter
    (fun e ->
      Format.fprintf ppf "@\n  [%6d] %c %s/%s P%d%s%s%s" e.ts e.ph e.cat
        e.name e.tid
        (if e.loc = "" then "" else " loc=" ^ e.loc)
        (if e.cause = "" then "" else " cause=" ^ e.cause)
        (if e.ph = 'X' then Printf.sprintf " dur=%d" e.dur
         else if e.value <> min_int then Printf.sprintf " value=%d" e.value
         else ""))
    evs
