(** Structured tracing and metrics: the observability substrate of the
    timing simulator and the exploration engine.

    The design goal is a tracer cheap enough to leave compiled in: events
    are recorded into a preallocated ring of mutable records (no per-event
    allocation, one bounds check and a handful of field writes), and all
    formatting happens lazily at export time.  A disabled tracer ({!null})
    reduces every record call to a single branch.

    Three kinds of events mirror the Chrome [trace_event] phases the
    exporter emits:

    - {e spans} (['X']): an operation with a start time and a duration —
      a processor's memory operation from generation to completion, or a
      coherence transaction from miss to close;
    - {e instants} (['i']): a point event — a NACK, a reservation being
      placed, an injected interconnect fault;
    - {e counters} (['C']): a sampled value — a processor's
      outstanding-access counter.

    Alongside the tracer live two always-on metric structures: {!Stall},
    which attributes every stalled cycle to a (processor, cause, location)
    triple — the paper's Figure 3 claim is a statement about exactly this
    table — and {!Hist}, power-of-two histograms for the exploration
    engine's table telemetry.

    This module depends only on the standard library and the resilience
    layer's {!Atomic_io} (crash-safe trace export). *)

(** {1 Events} *)

type ev = {
  mutable ph : char;  (** phase: ['X'] span, ['i'] instant, ['C'] counter *)
  mutable cat : string;
      (** category, e.g. ["op"], ["txn"], ["proto"], ["fault"]; drives the
          exporter's process grouping *)
  mutable name : string;  (** short event name, e.g. ["Sw"], ["nack"] *)
  mutable tid : int;  (** track id — the processor (or shard) number *)
  mutable ts : int;  (** start time, in simulated cycles *)
  mutable dur : int;  (** duration in cycles (spans only; 0 otherwise) *)
  mutable loc : string;  (** memory location concerned, [""] if none *)
  mutable cause : string;  (** stall/fault cause tag, [""] if none *)
  mutable value : int;  (** counter sample or payload; [min_int] if none *)
}
(** One recorded event.  The fields mirror the Chrome [trace_event]
    schema, with [loc]/[cause]/[value] exported under ["args"]. *)

(** {1 Tracers} *)

type t
(** A ring-buffered tracer.  Once more than [capacity] events have been
    recorded, the oldest are overwritten (and counted in {!dropped}). *)

val create : ?capacity:int -> unit -> t
(** A fresh, enabled tracer.  [capacity] (default [65536]) is the ring
    size in events; all event storage is allocated here, up front.
    @raise Invalid_argument if [capacity < 1]. *)

val null : t
(** The disabled tracer: every record call returns after one branch.
    Pass it wherever tracing is compiled in but not wanted. *)

val enabled : t -> bool
(** [false] exactly on {!null}. *)

val span :
  t ->
  cat:string ->
  name:string ->
  tid:int ->
  ts:int ->
  dur:int ->
  loc:string ->
  cause:string ->
  unit
(** Record a completed span: an operation that started at [ts] and took
    [dur] cycles.  Pass [""] for an absent [loc] or [cause]; the strings
    are stored by reference, so callers should pass literals or
    already-built names (the tracer never copies or formats them). *)

val instant :
  t -> cat:string -> name:string -> tid:int -> ts:int -> loc:string -> cause:string -> unit
(** Record a point event at time [ts]. *)

val counter : t -> cat:string -> name:string -> tid:int -> ts:int -> value:int -> unit
(** Record a sampled counter value at time [ts]. *)

val recorded : t -> int
(** Total events ever recorded, including any that were overwritten. *)

val dropped : t -> int
(** Events lost to ring overwrite: [max 0 (recorded - capacity)]. *)

val capacity : t -> int
(** The ring size chosen at {!create} ([0] for {!null}). *)

val events : t -> ev list
(** The retained events, oldest first, as fresh copies (safe to hold
    across further recording).  At most [capacity] long. *)

val clear : t -> unit
(** Forget all recorded events (the ring stays allocated). *)

(** {1 Stall accounting} *)

(** Attribution of stalled cycles to a cause and a location.

    Every cycle a processor spends waiting is added under a
    [(tid, cause, loc)] key — e.g. [(0, "counter-nonzero", "s")] for a
    Definition-1 processor waiting out its outstanding-access counter
    before a synchronization operation on [s].  The table is cheap enough
    to keep always on: one bounded hash table, one lookup per stall. *)
module Stall : sig
  type t
  (** A mutable stall-attribution table. *)

  val create : unit -> t
  (** An empty table. *)

  val add : t -> tid:int -> cause:string -> loc:string -> cycles:int -> unit
  (** Attribute [cycles] stalled cycles; calls with [cycles <= 0] are
      ignored, so callers can pass raw time differences. *)

  val get : t -> tid:int -> cause:string -> loc:string -> int
  (** Cycles recorded under one key ([0] if none). *)

  val total : ?tid:int -> ?cause:string -> ?loc:string -> t -> int
  (** Sum over all keys matching the given coordinates (all keys when
      none is given). *)

  val rows : t -> (int * string * string * int) list
  (** All nonzero entries as [(tid, cause, loc, cycles)], sorted by
      processor, then cause, then location. *)

  val pp : Format.formatter -> t -> unit
  (** A per-processor table of causes, locations and cycles. *)
end

(** {1 Histograms} *)

(** Power-of-two histograms for small nonnegative measurements (probe
    lengths, batch sizes).  Bucket [i] counts values [v] with
    [2^(i-1) < v <= 2^i] (bucket [0] counts zeros and ones). *)
module Hist : sig
  type t
  (** A mutable histogram. *)

  val create : unit -> t
  (** An empty histogram. *)

  val add : t -> int -> unit
  (** Record one value; negative values are clamped to [0]. *)

  val count : t -> int
  (** Number of values recorded. *)

  val max_value : t -> int
  (** Largest value recorded ([0] when empty). *)

  val mean : t -> float
  (** Arithmetic mean of the recorded values ([0.] when empty). *)

  val buckets : t -> (int * int) list
  (** Nonempty buckets as [(inclusive upper bound, count)], ascending. *)

  val pp : Format.formatter -> t -> unit
  (** One line: count, mean, max and the nonempty buckets. *)
end

(** {1 Gauges} *)

(** Level gauges for quantities that rise and fall — queue depth,
    in-flight workers, connected clients.  Unlike {!Hist}, which
    records a stream of independent measurements, a gauge tracks the
    {e current} level and summarizes its history: every {!Gauge.set}
    is one observation folded into the running mean and maximum.
    Used by the service daemon to report queue-depth and concurrency
    statistics in [STATS] responses. *)
module Gauge : sig
  type t
  (** A mutable gauge. *)

  val create : unit -> t
  (** A gauge at level [0] with no observations. *)

  val set : t -> int -> unit
  (** [set g v] moves the gauge to level [v] (clamped at [0]) and
      records the observation. *)

  val incr : t -> unit
  (** [incr g] is [set g (current g + 1)]. *)

  val decr : t -> unit
  (** [decr g] is [set g (current g - 1)]; the level never goes below
      [0]. *)

  val current : t -> int
  (** The level as of the last {!set}. *)

  val max_level : t -> int
  (** The highest level ever observed ([0] when untouched). *)

  val mean : t -> float
  (** Arithmetic mean over all observations ([0.] when untouched). *)

  val samples : t -> int
  (** Number of observations recorded. *)
end

(** {1 Exporters} *)

(** Chrome [trace_event] JSON export, loadable in [chrome://tracing] and
    {{:https://ui.perfetto.dev}Perfetto}.

    Cycles are written as microseconds (the format's native unit), so one
    trace-viewer microsecond is one simulated cycle.  Events are grouped
    into synthetic processes by category — processor operations, protocol
    transactions, interconnect — with named tracks per processor. *)
module Chrome : sig
  val to_buffer : ?normalize:bool -> Buffer.t -> ev list -> unit
  (** Append a complete JSON document for the given events.
      [normalize] (default [false]) shifts all timestamps so the earliest
      event starts at 0 — byte-stable output for golden tests. *)

  val to_string : ?normalize:bool -> t -> string
  (** The tracer's retained events as a JSON document string. *)

  val write_file : ?normalize:bool -> string -> t -> unit
  (** Write {!to_string} to a file, atomically installed (written to a
      temp file in the same directory, fsynced, renamed into place) — a
      crash mid-export never leaves a truncated document.
      @raise Sys_error if the file cannot be written. *)
end

val pp_summary : ?stalls:Stall.t -> Format.formatter -> t -> unit
(** The human-readable [--trace-summary] table: ring statistics, per-
    category event counts and span cycles, per-processor operation counts,
    and (when given) the stall-attribution table. *)

val pp_window : Format.formatter -> around:int -> radius:int -> t -> unit
(** Print the events whose start time falls within [radius] cycles of
    [around], oldest first — the forensic window a fault campaign dumps
    around each injected fault. *)
