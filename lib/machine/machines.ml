(* Registry of abstract hardware machines with a uniform interface. *)

module Wbuf_x = Explore.Make (M_wbuf)
module Ooo_x = Explore.Make (M_ooo)
module Def1_x = Explore.Make (M_def1)
module Def2_x = Explore.Make (M_def2.Base)
module Def2_rs_x = Explore.Make (M_def2.Read_sync_relaxed)
module Rp3_x = Explore.Make (M_rp3)
module Rc_x = Explore.Make (M_rc)

type t = {
  name : string;
  descr : string;
  explore :
    domains:int ->
    adaptive:bool ->
    reduce:bool ->
    por_min:int option ->
    fuel:int option ->
    rcfg:Explore.rcfg ->
    Prog.t ->
    Explore.run_result;
  snapshot_frontier_length : string -> int;
}

let name m = m.name
let descr m = m.descr

let explore ?(domains = 1) ?(adaptive = true) ?(reduce = true)
    ?por_min_instrs ?fuel ?(rcfg = Explore.rcfg_default) m prog =
  m.explore ~domains ~adaptive ~reduce ~por_min:por_min_instrs ~fuel ~rcfg prog

let snapshot_frontier_length m bytes = m.snapshot_frontier_length bytes

let outcomes m prog =
  Explore.bounded_value
    (m.explore ~domains:1 ~adaptive:true ~reduce:true ~por_min:None ~fuel:None
       ~rcfg:Explore.rcfg_default prog)
      .Explore.result

let outcomes_bounded m ~fuel prog =
  if fuel < 0 then invalid_arg "Machines.outcomes_bounded: negative fuel";
  (m.explore ~domains:1 ~adaptive:true ~reduce:true ~por_min:None
     ~fuel:(Some fuel) ~rcfg:Explore.rcfg_default prog)
    .Explore.result

let of_engine
    (run :
      ?domains:int -> ?adaptive:bool -> ?reduce:bool -> ?por_min_instrs:int ->
      ?fuel:int -> ?rcfg:Explore.rcfg -> Prog.t -> Explore.run_result) =
  fun ~domains ~adaptive ~reduce ~por_min ~fuel ~rcfg prog ->
    run ~domains ~adaptive ~reduce ?por_min_instrs:por_min ?fuel ~rcfg prog

let sc =
  {
    name = "sc";
    descr = "sequentially consistent reference machine (atomic, in order)";
    explore =
      (* interleaving enumeration, not a Machine_sig sweep: always complete,
         always sequential (its state graph is explored with the POR pass
         instead of extra domains).  The same cheap guard as the machine
         engine applies: programs too small to amortize the oracle are
         swept unreduced. *)
      (fun ~domains:_ ~adaptive:_ ~reduce ~por_min ~fuel:_ ~rcfg prog ->
        let por_min =
          Option.value por_min ~default:Explore.por_min_instrs_default
        in
        let reduce = reduce && Prog.num_instrs prog >= por_min in
        let sym = rcfg.Explore.sym in
        let sym_group = if sym then (Sym.cached prog).Sym.order else 1 in
        match rcfg.Explore.budget with
        | None ->
            let set, states, por = Sc.explore_counted ~reduce ~sym prog in
            {
              Explore.result = Explore.Complete set;
              stats =
                Explore.basic_stats ~por_enabled:reduce
                  ~oracle_calls:(por.Sc.por_taken + por.Sc.por_declined)
                  ~ample_hits:por.Sc.por_taken ~sym_group
                  ~states_expanded:states ~domains_used:1 ();
              stop = None;
            }
        | Some budget ->
            let set, states, complete =
              Sc.explore_within ~reduce ~sym ~budget prog
            in
            {
              Explore.result =
                (if complete then Explore.Complete set
                 else Explore.Partial set);
              stats =
                Explore.basic_stats ~por_enabled:reduce ~sym_group
                  ~states_expanded:states ~domains_used:1 ();
              stop =
                (if complete then None
                 else if Budget.over_deadline budget then
                   Some Explore.Deadline_exceeded
                 else Some Explore.Memory_exhausted);
            });
    snapshot_frontier_length =
      (fun _ ->
        raise
          (Explore.Resume_rejected
             "the sc reference machine does not take snapshots"));
  }

let wbuf =
  {
    name = "wbuf";
    descr =
      "FIFO write buffers with read bypass — Figure 1's bus configurations";
    explore = of_engine Wbuf_x.run;
    snapshot_frontier_length = Wbuf_x.snapshot_frontier_length;
  }

let ooo =
  {
    name = "ooo";
    descr =
      "out-of-order issue with register interlocks — Figure 1's network \
       configurations";
    explore = of_engine Ooo_x.run;
    snapshot_frontier_length = Ooo_x.snapshot_frontier_length;
  }

let def1 =
  {
    name = "def1";
    descr =
      "Definition-1 weak ordering (Dubois/Scheurich/Briggs): syncs stall \
       for previous accesses and vice versa";
    explore = of_engine Def1_x.run;
    snapshot_frontier_length = Def1_x.snapshot_frontier_length;
  }

let def2 =
  {
    name = "def2";
    descr =
      "the paper's implementation (Section 5.3): sync ops commit without \
       stalling; reservations delay other processors' syncs (condition 5)";
    explore = of_engine Def2_x.run;
    snapshot_frontier_length = Def2_x.snapshot_frontier_length;
  }

let def2_rs =
  {
    name = "def2-rs";
    descr =
      "Section 6 refinement of def2: read-only sync ops do not place \
       reservations";
    explore = of_engine Def2_rs_x.run;
    snapshot_frontier_length = Def2_rs_x.snapshot_frontier_length;
  }

let rp3 =
  {
    name = "rp3";
    descr =
      "RP3 fence option (Section 2.1): syncs travel like data; only an \
       explicit fence waits for outstanding acknowledgements";
    explore = of_engine Rp3_x.run;
    snapshot_frontier_length = Rp3_x.snapshot_frontier_length;
  }

let rc =
  {
    name = "rc";
    descr =
      "release consistency: releases drain the issuer's pending accesses; \
       acquires do not wait (weakly ordered w.r.t. DRF1)";
    explore = of_engine Rc_x.run;
    snapshot_frontier_length = Rc_x.snapshot_frontier_length;
  }

let all = [ sc; wbuf; ooo; def1; def2; def2_rs; rp3; rc ]

let find n = List.find_opt (fun m -> String.equal m.name n) all

let allows m prog cond = Cond.satisfiable_in (outcomes m prog) cond

let allows_exists m prog = Option.map (allows m prog) (Prog.exists prog)

(* Definition 2's "appears SC" — against the process-wide memoized SC set,
   so sweeps comparing every machine against one program enumerate SC
   once, not once per machine. *)
let appears_sc ?sc:sc_set m prog =
  let sc_set =
    match sc_set with Some s -> s | None -> Sc.outcomes_cached prog
  in
  Final.Set.subset (outcomes m prog) sc_set
