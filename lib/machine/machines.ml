(* Registry of abstract hardware machines with a uniform interface. *)

module Wbuf_x = Explore.Make (M_wbuf)
module Ooo_x = Explore.Make (M_ooo)
module Def1_x = Explore.Make (M_def1)
module Def2_x = Explore.Make (M_def2.Base)
module Def2_rs_x = Explore.Make (M_def2.Read_sync_relaxed)
module Rp3_x = Explore.Make (M_rp3)
module Rc_x = Explore.Make (M_rc)

type t = {
  name : string;
  descr : string;
  outcomes : Prog.t -> Final.Set.t;
  outcomes_bounded : fuel:int -> Prog.t -> Final.Set.t Explore.bounded;
}

let name m = m.name
let descr m = m.descr
let outcomes m prog = m.outcomes prog
let outcomes_bounded m ~fuel prog = m.outcomes_bounded ~fuel prog

let sc =
  {
    name = "sc";
    descr = "sequentially consistent reference machine (atomic, in order)";
    outcomes = Sc.outcomes;
    outcomes_bounded =
      (* interleaving enumeration, not a Machine_sig DFS: always complete *)
      (fun ~fuel:_ prog -> Explore.Complete (Sc.outcomes prog));
  }

let wbuf =
  {
    name = "wbuf";
    descr =
      "FIFO write buffers with read bypass — Figure 1's bus configurations";
    outcomes = Wbuf_x.outcomes;
    outcomes_bounded = Wbuf_x.outcomes_bounded;
  }

let ooo =
  {
    name = "ooo";
    descr =
      "out-of-order issue with register interlocks — Figure 1's network \
       configurations";
    outcomes = Ooo_x.outcomes;
    outcomes_bounded = Ooo_x.outcomes_bounded;
  }

let def1 =
  {
    name = "def1";
    descr =
      "Definition-1 weak ordering (Dubois/Scheurich/Briggs): syncs stall \
       for previous accesses and vice versa";
    outcomes = Def1_x.outcomes;
    outcomes_bounded = Def1_x.outcomes_bounded;
  }

let def2 =
  {
    name = "def2";
    descr =
      "the paper's implementation (Section 5.3): sync ops commit without \
       stalling; reservations delay other processors' syncs (condition 5)";
    outcomes = Def2_x.outcomes;
    outcomes_bounded = Def2_x.outcomes_bounded;
  }

let def2_rs =
  {
    name = "def2-rs";
    descr =
      "Section 6 refinement of def2: read-only sync ops do not place \
       reservations";
    outcomes = Def2_rs_x.outcomes;
    outcomes_bounded = Def2_rs_x.outcomes_bounded;
  }

let rp3 =
  {
    name = "rp3";
    descr =
      "RP3 fence option (Section 2.1): syncs travel like data; only an \
       explicit fence waits for outstanding acknowledgements";
    outcomes = Rp3_x.outcomes;
    outcomes_bounded = Rp3_x.outcomes_bounded;
  }

let rc =
  {
    name = "rc";
    descr =
      "release consistency: releases drain the issuer's pending accesses; \
       acquires do not wait (weakly ordered w.r.t. DRF1)";
    outcomes = Rc_x.outcomes;
    outcomes_bounded = Rc_x.outcomes_bounded;
  }

let all = [ sc; wbuf; ooo; def1; def2; def2_rs; rp3; rc ]

let find n = List.find_opt (fun m -> String.equal m.name n) all

let allows m prog cond = Cond.satisfiable_in (outcomes m prog) cond

let allows_exists m prog = Option.map (allows m prog) (Prog.exists prog)

let appears_sc m prog = Final.Set.subset (outcomes m prog) (Sc.outcomes prog)
