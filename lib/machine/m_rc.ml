(* A release-consistency machine (Gharachorloo et al., ISCA 1990 — the
   companion model the paper's conclusions anticipate under "other
   synchronization models").

   Synchronization operations are split by direction:
   - a *release* (sync write, or the write side of a sync RMW) waits for
     all the processor's previous accesses to be globally performed before
     it commits;
   - an *acquire* (sync read, sync await) commits at once; in-order issue
     makes everything after it wait for it, but it does not wait for the
     processor's own previous accesses.

   This is weaker than Definition-1 weak ordering (acquires do not drain)
   and incomparable to the paper's def2 (no reservations; releases stall
   the issuer).  Its contract is DRF1: read-only synchronization carries no
   release obligation, exactly matching the machine's treatment — the test
   suite checks that it appears SC to every DRF1 program. *)

module Smap = Exp.Smap

type pending = { wloc : string; wval : int }

type proc = {
  next : int;
  regs : int Smap.t;
  pending : pending list;  (** issue order, oldest first *)
}

type state = { memory : int Smap.t; procs : proc array }

let name = "rc"

let initial prog =
  {
    memory = Prog.initial_memory prog;
    procs =
      Array.init (Prog.num_threads prog) (fun _ ->
          { next = 0; regs = Smap.empty; pending = [] });
  }

let read_mem memory loc =
  match Smap.find_opt loc memory with Some v -> v | None -> 0

let forwarded pending loc =
  List.fold_left
    (fun acc pw -> if String.equal pw.wloc loc then Some pw.wval else acc)
    None pending

let visible st p loc =
  match forwarded st.procs.(p).pending loc with
  | Some v -> v
  | None -> read_mem st.memory loc

let with_proc st p proc =
  let procs = Array.copy st.procs in
  procs.(p) <- proc;
  { st with procs }

let advance ?(regs = fun r -> r) ?(pending = fun w -> w) st p =
  let pr = st.procs.(p) in
  with_proc st p
    { next = pr.next + 1; regs = regs pr.regs; pending = pending pr.pending }

let issue prog st p =
  let pr = st.procs.(p) in
  match List.nth_opt (Prog.thread prog p) pr.next with
  | None -> []
  | Some instr -> (
      let drained = pr.pending = [] in
      match instr with
      | Instr.Load { kind = Instr.Data; loc; reg } ->
          let v = visible st p loc in
          [ advance ~regs:(Smap.add reg v) st p ]
      | Instr.Store { kind = Instr.Data; loc; value } ->
          let v = Exp.eval pr.regs value in
          [ advance ~pending:(fun w -> w @ [ { wloc = loc; wval = v } ]) st p ]
      | Instr.Await { kind = Instr.Data; loc; expect; reg } ->
          if visible st p loc = expect then
            let regs =
              match reg with Some r -> Smap.add r expect | None -> fun x -> x
            in
            [ advance ~regs st p ]
          else []
      (* Acquires: atomic at once, no drain of the processor's own pending
         writes — but still forwarding from them (intra-processor
         dependencies are preserved). *)
      | Instr.Load { kind = Instr.Sync; loc; reg } ->
          let v = visible st p loc in
          [ advance ~regs:(Smap.add reg v) st p ]
      | Instr.Await { kind = Instr.Sync; loc; expect; reg } ->
          if visible st p loc = expect then
            let regs =
              match reg with Some r -> Smap.add r expect | None -> fun x -> x
            in
            [ advance ~regs st p ]
          else []
      (* Releases (and RMWs, which contain a release): drain first. *)
      | Instr.Store { kind = Instr.Sync; loc; value } ->
          if drained then begin
            let v = Exp.eval pr.regs value in
            let st = { st with memory = Smap.add loc v st.memory } in
            [ advance st p ]
          end
          else []
      | Instr.Rmw { loc; reg; value; _ } ->
          if drained then begin
            let old = read_mem st.memory loc in
            let regs = Smap.add reg old pr.regs in
            let v = Exp.eval regs value in
            let st = { st with memory = Smap.add loc v st.memory } in
            [ advance ~regs:(fun _ -> regs) st p ]
          end
          else []
      | Instr.Lock { loc } ->
          if drained && read_mem st.memory loc = 0 then begin
            let st = { st with memory = Smap.add loc 1 st.memory } in
            [ advance st p ]
          end
          else []
      | Instr.Fence -> if drained then [ advance st p ] else [])

(* Globally perform one pending write; same-location writes leave in issue
   order. *)
let perform st p =
  let pr = st.procs.(p) in
  let rec candidates seen_locs before acc = function
    | [] -> acc
    | pw :: rest ->
        let acc =
          if List.mem pw.wloc seen_locs then acc
          else begin
            let st' = { st with memory = Smap.add pw.wloc pw.wval st.memory } in
            with_proc st' p { pr with pending = List.rev_append before rest }
            :: acc
          end
        in
        candidates (pw.wloc :: seen_locs) (pw :: before) acc rest
  in
  candidates [] [] [] pr.pending

let successors prog st =
  let acc = ref [] in
  for p = Array.length st.procs - 1 downto 0 do
    acc := issue prog st p @ perform st p @ !acc
  done;
  !acc

let final prog st =
  let complete =
    Array.to_list st.procs
    |> List.mapi (fun p pr ->
           pr.pending = [] && pr.next >= List.length (Prog.thread prog p))
    |> List.for_all Fun.id
  in
  if not complete then None
  else
    Some
      (Final.make ~memory:st.memory
         ~regs:(Array.map (fun pr -> pr.regs) st.procs))

type key =
  (string * int) list * (int * (string * int) list * (string * int) list) array

let canon st : key =
  ( Smap.bindings st.memory,
    Array.map
      (fun pr ->
        ( pr.next,
          Smap.bindings pr.regs,
          List.map (fun w -> (w.wloc, w.wval)) pr.pending ))
      st.procs )

let hash = Machine_sig.structural_hash
let equal (a : key) (b : key) = a = b

let permute pi ((mem, procs) : key) : key =
  ( Sym.rename_bindings pi mem,
    Sym.permute_procs pi
      (fun p (next, regs, pend) ->
        ( next,
          Sym.rename_reg_bindings pi ~proc:p regs,
          List.map (fun (l, v) -> (Sym.rename_loc pi l, v)) pend ))
      procs )

(* No reduction oracle: these machines interleave reservation bookkeeping
   (global-perform counters, reservation multisets) with every shared
   access, so a conservative labeling would mark everything [a_sync] and
   suppress nothing.  Explored in full — always sound. *)
let por _ = None
