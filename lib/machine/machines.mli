(** Registry of abstract hardware machines.

    Each machine assigns a program the exhaustive set of outcomes it can
    produce, computed by memoized search of a nondeterministic operational
    model. *)

type t

val name : t -> string
val descr : t -> string
val outcomes : t -> Prog.t -> Final.Set.t

val explore :
  ?domains:int ->
  ?adaptive:bool ->
  ?reduce:bool ->
  ?por_min_instrs:int ->
  ?fuel:int ->
  ?rcfg:Explore.rcfg ->
  t ->
  Prog.t ->
  Explore.run_result
(** The full-control entry point: [~domains:n] explores with [n] parallel
    domains (default 1 — the sequential engine), [~adaptive] (default
    [true]) lets the engine fall back to the sequential path when extra
    domains cannot help (more domains than recognized cores, or a state
    space too small to spill), [~reduce] (default [true]) enables each
    machine's partial-order reduction oracle — outcome sets are identical
    either way; [~reduce:false] forces the full sweep — [~fuel] bounds
    distinct states expanded, [~rcfg] threads the resilience layer
    (budgets, checkpoints, resume), and the result carries
    {!Explore.stats} telemetry.  A [Complete] result is identical for
    every [domains].  Programs below [por_min_instrs] instructions
    (default {!Explore.por_min_instrs_default}) skip the oracle machinery
    even with [~reduce:true]; [~por_min_instrs:0] forces it on — the
    differential-test hook.
    (The [sc] reference machine enumerates interleavings with its own
    partial-order reduction instead, honouring [~reduce] and the same
    size guard; it honours [rcfg.budget] but never snapshots — its
    frontier is an interleaving prefix, not a state set.) *)

val snapshot_frontier_length : t -> string -> int
(** Frontier length recorded in a machine's framed snapshot bytes.
    @raise Explore.Resume_rejected on invalid bytes or the [sc]
      machine. *)

val outcomes_bounded : t -> fuel:int -> Prog.t -> Final.Set.t Explore.bounded
(** Fuel-bounded exploration: expand at most [fuel] distinct states.
    Always terminates; [Partial] carries a sound subset of the complete
    outcome set.  (The [sc] reference machine enumerates interleavings
    directly and always reports [Complete].) *)

val sc : t
(** Atomic, in-program-order reference machine. *)

val wbuf : t
(** Per-processor FIFO write buffers with read bypass and forwarding
    (Figure 1's bus configurations).  Not weakly ordered w.r.t. DRF0. *)

val ooo : t
(** Out-of-order issue constrained only by register interlocks,
    same-location order and fences (Figure 1's network configurations). *)

val def1 : t
(** Definition-1 weak ordering: a sync operation waits for all previous
    accesses to be globally performed, and nothing issues past a sync. *)

val def2 : t
(** The paper's Section 5.1/5.3 implementation: syncs commit without
    waiting for the issuing processor's pending writes; other processors'
    syncs on the same location wait instead (reservations / condition 5). *)

val def2_rs : t
(** [def2] with the Section-6 read-only-sync refinement. *)

val rp3 : t
(** The RP3 fence option (Section 2.1): synchronization is invisible to
    the hardware; only explicit fences wait for outstanding
    acknowledgements.  Weakly ordered w.r.t. the fenced-delays model, not
    DRF0. *)

val rc : t
(** Release consistency: a release waits for the issuer's previous
    accesses; an acquire does not.  Weakly ordered w.r.t. DRF1 — the
    "other synchronization models" direction the paper's conclusions
    anticipate. *)

val all : t list
val find : string -> t option

val allows : t -> Prog.t -> Cond.t -> bool
val allows_exists : t -> Prog.t -> bool option

val appears_sc : ?sc:Final.Set.t -> t -> Prog.t -> bool
(** Definition 2's "appears sequentially consistent", for one program:
    the machine's outcomes are a subset of the SC outcomes.  [?sc]
    supplies the SC reference set; by default it comes from the
    process-wide {!Sc.outcomes_cached}, so sweeps over many machines per
    program enumerate SC once. *)
