(** Memoized exhaustive exploration of abstract machines. *)

type 'a bounded = Complete of 'a | Partial of 'a
(** [Partial] means the fuel budget ran out: the carried set is a sound
    subset of the complete outcome set (exploration only cuts branches). *)

val bounded_value : 'a bounded -> 'a
val is_complete : 'a bounded -> bool

module Make (M : Machine_sig.MACHINE) : sig
  val outcomes : Prog.t -> Final.Set.t

  val outcomes_bounded : fuel:int -> Prog.t -> Final.Set.t bounded
  (** Explore at most [fuel] distinct states; always terminates and never
      raises on well-formed programs.  Returns [Complete s] when the state
      graph fit in the budget (then [s] equals {!outcomes}), [Partial s]
      otherwise, with [s] a subset of the complete set.
      @raise Invalid_argument on negative [fuel]. *)

  val allows : Prog.t -> Cond.t -> bool
  val allows_exists : Prog.t -> bool option

  val appears_sc : Prog.t -> bool
  (** Every machine outcome is an SC outcome (Definition 2's "appears
      sequentially consistent" for one program). *)
end
