(* A write-buffer machine: each processor has a FIFO store buffer that
   drains to a single atomic memory at arbitrary times, and reads are
   allowed to pass buffered writes (with forwarding from the processor's
   own buffer).

   This is Figure 1's shared-bus configuration: "the execution is possible
   if ... reads are allowed to pass writes in write buffers".  The machine
   is deliberately naive about synchronization — sync loads and stores go
   through the same buffer, which is why it is *not* weakly ordered with
   respect to DRF0 (atomic RMWs and fences drain the buffer, as on real
   TSO-like hardware). *)

module Smap = Exp.Smap

type proc = {
  next : int;
  regs : int Smap.t;
  wbuf : (string * int) list;  (** oldest first *)
}

type state = { memory : int Smap.t; procs : proc array }

let name = "wbuf"

let initial prog =
  {
    memory = Prog.initial_memory prog;
    procs =
      Array.init (Prog.num_threads prog) (fun _ ->
          { next = 0; regs = Smap.empty; wbuf = [] });
  }

let read_mem memory loc =
  match Smap.find_opt loc memory with Some v -> v | None -> 0

(* Newest buffered write to [loc], if any. *)
let forwarded wbuf loc =
  List.fold_left
    (fun acc (l, v) -> if String.equal l loc then Some v else acc)
    None wbuf

let visible st p loc =
  match forwarded st.procs.(p).wbuf loc with
  | Some v -> v
  | None -> read_mem st.memory loc

let with_proc st p proc =
  let procs = Array.copy st.procs in
  procs.(p) <- proc;
  { st with procs }

let advance ?(regs = fun r -> r) ?(wbuf = fun b -> b) st p =
  let pr = st.procs.(p) in
  with_proc st p { next = pr.next + 1; regs = regs pr.regs; wbuf = wbuf pr.wbuf }

(* One issue successor, or [None] when the next instruction is blocked
   (await unsatisfied, RMW/lock/fence waiting on the buffer). *)
let issue_one instr st p =
  let pr = st.procs.(p) in
  match instr with
  | Instr.Load { loc; reg; _ } ->
      let v = visible st p loc in
      Some (advance ~regs:(Smap.add reg v) st p)
  | Instr.Store { loc; value; _ } ->
      let v = Exp.eval pr.regs value in
      Some (advance ~wbuf:(fun b -> b @ [ (loc, v) ]) st p)
  | Instr.Await { loc; expect; reg; _ } ->
      if visible st p loc = expect then
        let regs =
          match reg with Some r -> Smap.add r expect | None -> fun x -> x
        in
        Some (advance ~regs st p)
      else None
  | Instr.Rmw { loc; reg; value; _ } ->
      if pr.wbuf <> [] then None
      else begin
        let old = read_mem st.memory loc in
        let regs = Smap.add reg old pr.regs in
        let v = Exp.eval regs value in
        let st = { st with memory = Smap.add loc v st.memory } in
        Some (advance ~regs:(fun _ -> regs) st p)
      end
  | Instr.Lock { loc } ->
      if pr.wbuf = [] && read_mem st.memory loc = 0 then begin
        let st = { st with memory = Smap.add loc 1 st.memory } in
        Some (advance st p)
      end
      else None
  | Instr.Fence -> if pr.wbuf = [] then Some (advance st p) else None

let drain_one st p =
  match st.procs.(p).wbuf with
  | [] -> None
  | (loc, v) :: rest ->
      let st = { st with memory = Smap.add loc v st.memory } in
      Some (with_proc st p { (st.procs.(p)) with wbuf = rest })

(* Successor order (pinned; snapshots and the reduction's sleep sets
   depend on it being deterministic): per processor ascending, issue
   before drain. *)
let successors prog st =
  let instrs = (Por_static.cached prog).Por_static.instrs in
  let acc = ref [] in
  for p = Array.length st.procs - 1 downto 0 do
    (match drain_one st p with Some s -> acc := s :: !acc | None -> ());
    let pr = st.procs.(p) in
    let ins = instrs.(p) in
    if pr.next < Array.length ins then
      match issue_one ins.(pr.next) st p with
      | Some s -> acc := s :: !acc
      | None -> ()
  done;
  !acc

let final prog st =
  let instrs = (Por_static.cached prog).Por_static.instrs in
  let complete = ref true in
  Array.iteri
    (fun p pr ->
      if pr.wbuf <> [] || pr.next < Array.length instrs.(p) then
        complete := false)
    st.procs;
  if not !complete then None
  else
    Some
      (Final.make ~memory:st.memory
         ~regs:(Array.map (fun pr -> pr.regs) st.procs))

(* --- partial-order reduction oracle -------------------------------------

   Transition labels.  A store *issue* only appends to the issuer's own
   buffer — no other processor can observe it — so it is labeled local
   ([a_loc = ""]), like a fence; the write becomes visible at the *drain*,
   which carries the location.  Loads and awaits read their location
   (possibly forwarded, but forwarding only consults the issuer's own
   buffer).  RMW and lock are reads-and-writes of their location.  No
   transition touches global structures beyond its one location, so no
   label needs [a_sync].

   Ample selection, scanned in successor order; each class's soundness:

   - any local step (store issue, fence): commutes with every foreign
     step by construction, and with the issuer's own drains — append and
     head-pop commute, and a fence only fires on an empty buffer, so no
     own drain can precede it; every complete run performs it.
   - a load of [l] when no other processor has an unissued instruction
     accessing... writing [l] nor a buffered write to [l]: every foreign
     step in any run is then independent of it (read-read sharing is
     fine), and the issuer's own drains commute with it by the
     forwarding argument (forwarding reads the newest buffered write,
     draining pops the oldest; when they coincide the drained value is
     exactly the one forwarded).
   - a head drain of [(l, v)] when no other processor has an unissued
     instruction accessing [l] nor a buffered write to [l]: foreign
     steps never touch [l] again; the issuer's own loads/awaits of [l]
     forward past it, its stores append behind it, and its RMW/lock/
     fence need the whole buffer empty so cannot fire before the head
     drains.

   Awaits, RMWs and locks are never chosen: they block on conditions
   foreign writes can change, so firing them alone is not outcome-
   preserving in general. *)

let successors_labeled prog st =
  let instrs = (Por_static.cached prog).Por_static.instrs in
  let acc = ref [] in
  for p = Array.length st.procs - 1 downto 0 do
    let pr = st.procs.(p) in
    (match drain_one st p with
    | Some s ->
        let loc = fst (List.hd pr.wbuf) in
        acc :=
          ( {
              Machine_sig.a_proc = p;
              a_id = -1;
              a_loc = loc;
              a_write = true;
              a_sync = false;
            },
            s )
          :: !acc
    | None -> ());
    let ins = instrs.(p) in
    if pr.next < Array.length ins then
      let instr = ins.(pr.next) in
      match issue_one instr st p with
      | Some s ->
          let a_loc, a_write =
            match instr with
            | Instr.Store _ | Instr.Fence -> ("", false)
            | Instr.Load { loc; _ } | Instr.Await { loc; _ } -> (loc, false)
            | Instr.Rmw { loc; _ } | Instr.Lock { loc } -> (loc, true)
          in
          acc :=
            ( {
                Machine_sig.a_proc = p;
                a_id = pr.next;
                a_loc;
                a_write;
                a_sync = false;
              },
              s )
            :: !acc
      | None -> ()
  done;
  !acc

let por prog =
  let info = Por_static.cached prog in
  (* No processor besides [p] ever touches [loc] again: no unissued
     instruction ([write_only]: no writing instruction) and no buffered
     write. *)
  let foreign_clear ~write_only st p loc =
    let ok = ref true in
    Array.iteri
      (fun q pr ->
        if q <> p && !ok then
          if
            (if write_only then
               Por_static.write_remains info ~p:q ~j:pr.next loc
             else Por_static.access_remains info ~p:q ~j:pr.next loc)
            || List.exists (fun (l, _) -> String.equal l loc) pr.wbuf
          then ok := false)
      st.procs;
    !ok
  in
  let ample st succs =
    List.find_opt
      (fun ((a : Machine_sig.action), _) ->
        if a.a_loc = "" then true
        else if a.a_id < 0 then
          foreign_clear ~write_only:false st a.a_proc a.a_loc
        else
          match info.Por_static.instrs.(a.a_proc).(a.a_id) with
          | Instr.Load _ -> foreign_clear ~write_only:true st a.a_proc a.a_loc
          | _ -> false)
      succs
  in
  Some
    { Machine_sig.successors_labeled = successors_labeled prog; ample }

type key =
  (string * int) list * (int * (string * int) list * (string * int) list) array

let canon st : key =
  ( Smap.bindings st.memory,
    Array.map (fun pr -> (pr.next, Smap.bindings pr.regs, pr.wbuf)) st.procs )

let hash = Machine_sig.structural_hash
let equal (a : key) (b : key) = a = b

let permute pi ((mem, procs) : key) : key =
  ( Sym.rename_bindings pi mem,
    Sym.permute_procs pi
      (fun p (next, regs, wbuf) ->
        ( next,
          Sym.rename_reg_bindings pi ~proc:p regs,
          List.map (fun (l, v) -> (Sym.rename_loc pi l, v)) wbuf ))
      procs )
