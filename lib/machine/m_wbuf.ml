(* A write-buffer machine: each processor has a FIFO store buffer that
   drains to a single atomic memory at arbitrary times, and reads are
   allowed to pass buffered writes (with forwarding from the processor's
   own buffer).

   This is Figure 1's shared-bus configuration: "the execution is possible
   if ... reads are allowed to pass writes in write buffers".  The machine
   is deliberately naive about synchronization — sync loads and stores go
   through the same buffer, which is why it is *not* weakly ordered with
   respect to DRF0 (atomic RMWs and fences drain the buffer, as on real
   TSO-like hardware). *)

module Smap = Exp.Smap

type proc = {
  next : int;
  regs : int Smap.t;
  wbuf : (string * int) list;  (** oldest first *)
}

type state = { memory : int Smap.t; procs : proc array }

let name = "wbuf"

let initial prog =
  {
    memory = Prog.initial_memory prog;
    procs =
      Array.init (Prog.num_threads prog) (fun _ ->
          { next = 0; regs = Smap.empty; wbuf = [] });
  }

let read_mem memory loc =
  match Smap.find_opt loc memory with Some v -> v | None -> 0

(* Newest buffered write to [loc], if any. *)
let forwarded wbuf loc =
  List.fold_left
    (fun acc (l, v) -> if String.equal l loc then Some v else acc)
    None wbuf

let visible st p loc =
  match forwarded st.procs.(p).wbuf loc with
  | Some v -> v
  | None -> read_mem st.memory loc

let with_proc st p proc =
  let procs = Array.copy st.procs in
  procs.(p) <- proc;
  { st with procs }

let advance ?(regs = fun r -> r) ?(wbuf = fun b -> b) st p =
  let pr = st.procs.(p) in
  with_proc st p { next = pr.next + 1; regs = regs pr.regs; wbuf = wbuf pr.wbuf }

let issue prog st p =
  let pr = st.procs.(p) in
  match List.nth_opt (Prog.thread prog p) pr.next with
  | None -> []
  | Some instr -> (
      match instr with
      | Instr.Load { loc; reg; _ } ->
          let v = visible st p loc in
          [ advance ~regs:(Smap.add reg v) st p ]
      | Instr.Store { loc; value; _ } ->
          let v = Exp.eval pr.regs value in
          [ advance ~wbuf:(fun b -> b @ [ (loc, v) ]) st p ]
      | Instr.Await { loc; expect; reg; _ } ->
          if visible st p loc = expect then
            let regs =
              match reg with Some r -> Smap.add r expect | None -> fun x -> x
            in
            [ advance ~regs st p ]
          else []
      | Instr.Rmw { loc; reg; value; _ } ->
          if pr.wbuf <> [] then []
          else begin
            let old = read_mem st.memory loc in
            let regs = Smap.add reg old pr.regs in
            let v = Exp.eval regs value in
            let st = { st with memory = Smap.add loc v st.memory } in
            [ advance ~regs:(fun _ -> regs) st p ]
          end
      | Instr.Lock { loc } ->
          if pr.wbuf = [] && read_mem st.memory loc = 0 then begin
            let st = { st with memory = Smap.add loc 1 st.memory } in
            [ advance st p ]
          end
          else []
      | Instr.Fence -> if pr.wbuf = [] then [ advance st p ] else [])

let drain st p =
  match st.procs.(p).wbuf with
  | [] -> []
  | (loc, v) :: rest ->
      let st = { st with memory = Smap.add loc v st.memory } in
      [ with_proc st p { (st.procs.(p)) with wbuf = rest } ]

let successors prog st =
  let acc = ref [] in
  for p = Array.length st.procs - 1 downto 0 do
    acc := issue prog st p @ drain st p @ !acc
  done;
  !acc

let final prog st =
  let complete =
    Array.to_list st.procs
    |> List.mapi (fun p pr ->
           pr.wbuf = [] && pr.next >= List.length (Prog.thread prog p))
    |> List.for_all Fun.id
  in
  if not complete then None
  else
    Some
      (Final.make ~memory:st.memory
         ~regs:(Array.map (fun pr -> pr.regs) st.procs))

type key =
  (string * int) list * (int * (string * int) list * (string * int) list) array

let canon st : key =
  ( Smap.bindings st.memory,
    Array.map (fun pr -> (pr.next, Smap.bindings pr.regs, pr.wbuf)) st.procs )

let hash = Machine_sig.structural_hash
let equal (a : key) (b : key) = a = b
