(* Exhaustive exploration of an abstract machine: memoized DFS computing the
   complete set of outcomes a machine allows for a program. *)

type 'a bounded = Complete of 'a | Partial of 'a

let bounded_value = function Complete v | Partial v -> v
let is_complete = function Complete _ -> true | Partial _ -> false

module Make (M : Machine_sig.MACHINE) = struct
  (* The worker: [fuel] bounds the number of distinct states expanded.
     When the budget runs out a state's successors are simply not explored
     (contributing the empty set), so a [Partial] result is always a
     subset of the complete outcome set — exploration only ever *cuts*
     branches, never invents outcomes. *)
  let outcomes_fuelled ~fuel prog =
    let memo : (string, Final.Set.t) Hashtbl.t = Hashtbl.create 4096 in
    let remaining = ref fuel in
    let cut = ref false in
    let rec explore state =
      let k = M.key state in
      match Hashtbl.find_opt memo k with
      | Some res -> res
      | None when !remaining = 0 ->
          (* Budget exhausted: stop expanding.  Do not memoize — the state
             was not actually explored. *)
          cut := true;
          Final.Set.empty
      | None ->
          decr remaining;
          (* Mark before recursing: machine graphs are acyclic by
             construction (every transition makes progress), but guard
             against accidental cycles by treating revisits as empty. *)
          Hashtbl.add memo k Final.Set.empty;
          let res =
            match M.final prog state with
            | Some f -> Final.Set.singleton f
            | None ->
                List.fold_left
                  (fun acc s -> Final.Set.union (explore s) acc)
                  Final.Set.empty (M.successors prog state)
          in
          Hashtbl.replace memo k res;
          res
    in
    let res = explore (M.initial prog) in
    if !cut then Partial res else Complete res

  let outcomes prog = bounded_value (outcomes_fuelled ~fuel:(-1) prog)

  let outcomes_bounded ~fuel prog =
    if fuel < 0 then invalid_arg "Explore.outcomes_bounded: negative fuel";
    outcomes_fuelled ~fuel prog

  let allows prog cond = Cond.satisfiable_in (outcomes prog) cond

  let allows_exists prog =
    Option.map (allows prog) (Prog.exists prog)

  (* A machine [appears sequentially consistent] to a program when every
     outcome it allows is also an SC outcome (Definition 2's "appears"). *)
  let appears_sc prog = Final.Set.subset (outcomes prog) (Sc.outcomes prog)
end
