(* The paper's implementation (Sections 5.1–5.3) as an abstract machine —
   weakly ordered with respect to DRF0 by Definition 2, yet violating
   conditions 2 and 3 of Definition 1.

   The machine separates a synchronization operation's *commit* (its atomic
   update of memory, at issue) from the *global performance* of the data
   writes issued before it.  A processor never stalls for its own pending
   writes: committing a sync operation S on location l while writes are
   pending instead places a *reservation* on l (the reserve bit of Section
   5.3), recording a watermark — the youngest pending write at commit time
   (the paper's "more dynamic solution" for distinguishing accesses
   generated before S from those after).  A later synchronization operation
   on l by another processor blocks until every reserved write up to the
   watermark is globally performed — condition 5.  Reads block, so
   condition 5's "all reads of Pi before S are committed" holds at issue.

   [read_only_syncs_reserve] selects between the base implementation (all
   sync operations are treated as writes and place reservations) and the
   Section 6 refinement in which read-only synchronization operations do
   not order the issuing processor's previous accesses (they still *honour*
   reservations — the acquire side — but do not place them). *)

module Smap = Exp.Smap

module type CONFIG = sig
  val machine_name : string

  val read_only_syncs_reserve : bool
end

module Make (C : CONFIG) = struct
  type pending = { wloc : string; wval : int; seq : int }
  type resv = { rproc : int; watermark : int }

  type proc = {
    next : int;
    regs : int Smap.t;
    pending : pending list;  (** issue order, oldest first *)
    nseq : int;  (** next write sequence number *)
  }

  type state = {
    memory : int Smap.t;
    procs : proc array;
    resvs : (string * resv list) list;  (** sorted by location *)
  }

  let name = C.machine_name

  let initial prog =
    {
      memory = Prog.initial_memory prog;
      procs =
        Array.init (Prog.num_threads prog) (fun _ ->
            { next = 0; regs = Smap.empty; pending = []; nseq = 0 });
      resvs = [];
    }

  let read_mem memory loc =
    match Smap.find_opt loc memory with Some v -> v | None -> 0

  let forwarded pending loc =
    List.fold_left
      (fun acc pw -> if String.equal pw.wloc loc then Some pw.wval else acc)
      None pending

  let visible st p loc =
    match forwarded st.procs.(p).pending loc with
    | Some v -> v
    | None -> read_mem st.memory loc

  (* Drop satisfied reservations: a reservation stands only while its
     processor still has pending writes at or below the watermark. *)
  let cleanup st =
    let live r =
      List.exists
        (fun pw -> pw.seq <= r.watermark)
        st.procs.(r.rproc).pending
    in
    let resvs =
      List.filter_map
        (fun (l, rs) ->
          match List.filter live rs with [] -> None | rs -> Some (l, rs))
        st.resvs
    in
    { st with resvs }

  let blocked_by_reservation st p loc =
    match List.assoc_opt loc st.resvs with
    | None -> false
    | Some rs -> List.exists (fun r -> r.rproc <> p) rs

  (* Place (or refresh) [p]'s reservation on [loc], if it has pending
     writes. *)
  let reserve st p loc =
    match st.procs.(p).pending with
    | [] -> st
    | pending ->
        let watermark =
          List.fold_left (fun m pw -> max m pw.seq) min_int pending
        in
        let mine = { rproc = p; watermark } in
        let rec update = function
          | [] -> [ (loc, [ mine ]) ]
          | (l, rs) :: rest when String.equal l loc ->
              let rs = mine :: List.filter (fun r -> r.rproc <> p) rs in
              let rs = List.sort (fun a b -> compare a.rproc b.rproc) rs in
              (l, rs) :: rest
          | entry :: rest -> entry :: update rest
        in
        let resvs =
          if List.mem_assoc loc st.resvs then update st.resvs
          else List.sort (fun (a, _) (b, _) -> String.compare a b)
              ((loc, [ mine ]) :: st.resvs)
        in
        { st with resvs }

  let with_proc st p proc =
    let procs = Array.copy st.procs in
    procs.(p) <- proc;
    { st with procs }

  let advance ?(regs = fun r -> r) ?(pending = fun w -> w) ?(nseq = fun n -> n)
      st p =
    let pr = st.procs.(p) in
    with_proc st p
      {
        next = pr.next + 1;
        regs = regs pr.regs;
        pending = pending pr.pending;
        nseq = nseq pr.nseq;
      }

  (* Commit a synchronization operation: check foreign reservations, update
     memory atomically, optionally place our own reservation. *)
  let commit_sync st p loc ~reserves ~update =
    if blocked_by_reservation st p loc then []
    else
      match update (read_mem st.memory loc) with
      | None -> []
      | Some (new_mem_value, regs) ->
          let st =
            match new_mem_value with
            | Some v -> { st with memory = Smap.add loc v st.memory }
            | None -> st
          in
          let st = advance ~regs st p in
          let st = if reserves then reserve st p loc else st in
          [ cleanup st ]

  let issue prog st p =
    let pr = st.procs.(p) in
    match List.nth_opt (Prog.thread prog p) pr.next with
    | None -> []
    | Some instr -> (
        match instr with
        | Instr.Load { kind = Instr.Data; loc; reg } ->
            let v = visible st p loc in
            [ advance ~regs:(Smap.add reg v) st p ]
        | Instr.Store { kind = Instr.Data; loc; value } ->
            let v = Exp.eval pr.regs value in
            [
              advance
                ~pending:(fun w ->
                  w @ [ { wloc = loc; wval = v; seq = pr.nseq } ])
                ~nseq:(fun n -> n + 1)
                st p;
            ]
        | Instr.Await { kind = Instr.Data; loc; expect; reg } ->
            if visible st p loc = expect then
              let regs =
                match reg with Some r -> Smap.add r expect | None -> fun x -> x
              in
              [ advance ~regs st p ]
            else []
        | Instr.Load { kind = Instr.Sync; loc; reg } ->
            commit_sync st p loc ~reserves:C.read_only_syncs_reserve
              ~update:(fun v -> Some (None, Smap.add reg v))
        | Instr.Await { kind = Instr.Sync; loc; expect; reg } ->
            commit_sync st p loc ~reserves:C.read_only_syncs_reserve
              ~update:(fun v ->
                if v <> expect then None
                else
                  let regs =
                    match reg with
                    | Some r -> Smap.add r expect
                    | None -> fun x -> x
                  in
                  Some (None, regs))
        | Instr.Store { kind = Instr.Sync; loc; value } ->
            let v = Exp.eval pr.regs value in
            commit_sync st p loc ~reserves:true ~update:(fun _ ->
                Some (Some v, fun r -> r))
        | Instr.Rmw { loc; reg; value; _ } ->
            commit_sync st p loc ~reserves:true ~update:(fun old ->
                let regs = Smap.add reg old pr.regs in
                let v = Exp.eval regs value in
                Some (Some v, fun _ -> regs))
        | Instr.Lock { loc } ->
            commit_sync st p loc ~reserves:true ~update:(fun v ->
                if v <> 0 then None else Some (Some 1, fun r -> r))
        | Instr.Fence -> if pr.pending = [] then [ cleanup (advance st p) ] else [])

  (* Globally perform a pending write; same-location writes of a processor
     leave in issue order. *)
  let perform st p =
    let pr = st.procs.(p) in
    let rec candidates seen_locs before acc = function
      | [] -> acc
      | pw :: rest ->
          let acc =
            if List.mem pw.wloc seen_locs then acc
            else begin
              let st' =
                { st with memory = Smap.add pw.wloc pw.wval st.memory }
              in
              let st' =
                with_proc st' p { pr with pending = List.rev_append before rest }
              in
              cleanup st' :: acc
            end
          in
          candidates (pw.wloc :: seen_locs) (pw :: before) acc rest
    in
    candidates [] [] [] pr.pending

  let successors prog st =
    let acc = ref [] in
    for p = Array.length st.procs - 1 downto 0 do
      acc := issue prog st p @ perform st p @ !acc
    done;
    !acc

  let final prog st =
    let complete =
      Array.to_list st.procs
      |> List.mapi (fun p pr ->
             pr.pending = [] && pr.next >= List.length (Prog.thread prog p))
      |> List.for_all Fun.id
    in
    if not complete then None
    else
      Some
        (Final.make ~memory:st.memory
           ~regs:(Array.map (fun pr -> pr.regs) st.procs))

  type key =
    (string * int) list
    * (int * (string * int) list * (string * int * int) list * int) array
    * (string * (int * int) list) list

  let canon st : key =
    ( Smap.bindings st.memory,
      Array.map
        (fun pr ->
          ( pr.next,
            Smap.bindings pr.regs,
            List.map (fun w -> (w.wloc, w.wval, w.seq)) pr.pending,
            pr.nseq ))
        st.procs,
      List.map
        (fun (l, rs) -> (l, List.map (fun r -> (r.rproc, r.watermark)) rs))
        st.resvs )

  let hash = Machine_sig.structural_hash
  let equal (a : key) (b : key) = a = b

  (* Sequence numbers are per-processor counters, so they move with the
     processor unchanged.  Reservations are kept sorted (outer list by
     location, each owner list by processor), so renaming must re-sort
     both levels to land back in canonical form. *)
  let permute pi ((mem, procs, resvs) : key) : key =
    ( Sym.rename_bindings pi mem,
      Sym.permute_procs pi
        (fun p (next, regs, pend, nseq) ->
          ( next,
            Sym.rename_reg_bindings pi ~proc:p regs,
            List.map (fun (l, v, s) -> (Sym.rename_loc pi l, v, s)) pend,
            nseq ))
        procs,
      List.map
        (fun (l, rs) ->
          ( Sym.rename_loc pi l,
            List.sort compare
              (List.map (fun (rp, w) -> (Sym.proc pi rp, w)) rs) ))
        resvs
      |> List.sort compare )

  (* --- partial-order reduction oracle -----------------------------------

     Liveness invariant: in every reachable state, every reservation is
     live (its owner still has a pending write at or below the
     watermark).  Initially there are none; [commit_sync] and [perform] —
     the only steps that create reservations or drop pending writes — end
     in [cleanup], and data issues only append writes with sequence
     numbers above every existing watermark.  Hence [cleanup] is a no-op
     inside fences and sync commits, which makes the labels below honest.

     Labels (issues carry [a_id = next], drains [-(slot + 1)], both stable
     because [canon] includes the pending list):

     - data store issue, fence: local ([a_loc = ""]) — they touch only the
       issuing processor's registers/pending/counter, and no foreign step
       reads those (cleanup liveness is unaffected: a fresh write's
       sequence number exceeds every watermark).
     - data load / await of [l]: read [l].
     - sync-class issues: [a_sync] — they consult and update the global
       reservation table.
     - drains of [l]: write [l]; [a_sync] iff the program has any
       synchronization-class instruction, because draining can drop the
       processor's own reservations (on any location) and unblock foreign
       commits — an effect invisible to a plain [(loc, write)] label.

     Ample classes, each of which commutes with every step another
     processor — and, for drains, the same processor — can fire first,
     stays enabled, and occurs in every complete run:

     - data store issue: local, unconditionally enabled, must eventually
       issue.  Own drains commute with it: the new write's sequence number
       keeps it out of existing watermarks and it drains strictly after
       same-location predecessors.
     - fence: local; enabled only once [pending = []], so no own drain can
       precede it, and no own issue can (program order).
     - data load of [l] when no other processor has a pending write on
       [l] or a not-yet-issued write of [l]: no foreign step can change
       [l] first, and own drains preserve the visible value (forwarding
       returns the newest same-location entry; draining removes the
       oldest, and when they coincide memory then holds that value).
     - drain of [l] when the reservation table is empty, the processor
       has no synchronization-class instruction left to issue (else a
       later own commit would build a reservation whose liveness the
       drain changes), and no other processor has a pending write on [l]
       or any remaining access of [l].  Pending writes must drain before
       the run completes, so it occurs in every complete run.

     Data awaits (value-blocking) and sync-class issues (reservation
     traffic) are never ample. *)

  let issue_labeled prog st p =
    let pr = st.procs.(p) in
    match List.nth_opt (Prog.thread prog p) pr.next with
    | None -> []
    | Some instr ->
        let a_loc, a_write, a_sync =
          match instr with
          | Instr.Store { kind = Instr.Data; _ } | Instr.Fence ->
              ("", false, false)
          | Instr.Load { kind = Instr.Data; loc; _ }
          | Instr.Await { kind = Instr.Data; loc; _ } ->
              (loc, false, false)
          | Instr.Load { kind = Instr.Sync; loc; _ }
          | Instr.Await { kind = Instr.Sync; loc; _ } ->
              (loc, C.read_only_syncs_reserve, true)
          | Instr.Store { kind = Instr.Sync; loc; _ }
          | Instr.Rmw { loc; _ }
          | Instr.Lock { loc } ->
              (loc, true, true)
        in
        let a =
          { Machine_sig.a_proc = p; a_id = pr.next; a_loc; a_write; a_sync }
        in
        List.map (fun st' -> (a, st')) (issue prog st p)

  let perform_labeled ~drain_sync st p =
    let pr = st.procs.(p) in
    let rec candidates i seen_locs before acc = function
      | [] -> acc
      | pw :: rest ->
          let acc =
            if List.mem pw.wloc seen_locs then acc
            else begin
              let st' =
                { st with memory = Smap.add pw.wloc pw.wval st.memory }
              in
              let st' =
                with_proc st' p { pr with pending = List.rev_append before rest }
              in
              ( {
                  Machine_sig.a_proc = p;
                  a_id = -(i + 1);
                  a_loc = pw.wloc;
                  a_write = true;
                  a_sync = drain_sync;
                },
                cleanup st' )
              :: acc
            end
          in
          candidates (i + 1) (pw.wloc :: seen_locs) (pw :: before) acc rest
    in
    candidates 0 [] [] [] pr.pending

  let successors_labeled ~drain_sync prog st =
    let acc = ref [] in
    for p = Array.length st.procs - 1 downto 0 do
      acc := issue_labeled prog st p @ perform_labeled ~drain_sync st p @ !acc
    done;
    !acc

  let por prog =
    let info = Por_static.cached prog in
    let nthreads = Prog.num_threads prog in
    let has_sync =
      let rec loop p =
        p < nthreads
        && (Por_static.sync_remains info ~p ~j:0 || loop (p + 1))
      in
      loop 0
    in
    (* No other processor holds a pending write on [loc], nor a
       not-yet-issued write ([write_only]) / access of it. *)
    let foreign_clear ~write_only st p loc =
      let ok = ref true in
      Array.iteri
        (fun q pr ->
          if q <> p && !ok then
            if
              (if write_only then
                 Por_static.write_remains info ~p:q ~j:pr.next loc
               else Por_static.access_remains info ~p:q ~j:pr.next loc)
              || List.exists (fun pw -> String.equal pw.wloc loc) pr.pending
            then ok := false)
        st.procs;
      !ok
    in
    let ample st succs =
      List.find_opt
        (fun ((a : Machine_sig.action), _) ->
          if a.a_loc = "" then true
          else if a.a_id >= 0 then
            match info.Por_static.instrs.(a.a_proc).(a.a_id) with
            | Instr.Load { kind = Instr.Data; _ } ->
                foreign_clear ~write_only:true st a.a_proc a.a_loc
            | _ -> false
          else
            st.resvs = []
            && (not
                  (Por_static.sync_remains info ~p:a.a_proc
                     ~j:st.procs.(a.a_proc).next))
            && foreign_clear ~write_only:false st a.a_proc a.a_loc)
        succs
    in
    Some
      {
        Machine_sig.successors_labeled =
          successors_labeled ~drain_sync:has_sync prog;
        ample;
      }
end

module Base = Make (struct
  let machine_name = "def2"
  let read_only_syncs_reserve = true
end)

module Read_sync_relaxed = Make (struct
  let machine_name = "def2-rs"
  let read_only_syncs_reserve = false
end)
