(* The paper's implementation (Sections 5.1–5.3) as an abstract machine —
   weakly ordered with respect to DRF0 by Definition 2, yet violating
   conditions 2 and 3 of Definition 1.

   The machine separates a synchronization operation's *commit* (its atomic
   update of memory, at issue) from the *global performance* of the data
   writes issued before it.  A processor never stalls for its own pending
   writes: committing a sync operation S on location l while writes are
   pending instead places a *reservation* on l (the reserve bit of Section
   5.3), recording a watermark — the youngest pending write at commit time
   (the paper's "more dynamic solution" for distinguishing accesses
   generated before S from those after).  A later synchronization operation
   on l by another processor blocks until every reserved write up to the
   watermark is globally performed — condition 5.  Reads block, so
   condition 5's "all reads of Pi before S are committed" holds at issue.

   [read_only_syncs_reserve] selects between the base implementation (all
   sync operations are treated as writes and place reservations) and the
   Section 6 refinement in which read-only synchronization operations do
   not order the issuing processor's previous accesses (they still *honour*
   reservations — the acquire side — but do not place them). *)

module Smap = Exp.Smap

module type CONFIG = sig
  val machine_name : string

  val read_only_syncs_reserve : bool
end

module Make (C : CONFIG) = struct
  type pending = { wloc : string; wval : int; seq : int }
  type resv = { rproc : int; watermark : int }

  type proc = {
    next : int;
    regs : int Smap.t;
    pending : pending list;  (** issue order, oldest first *)
    nseq : int;  (** next write sequence number *)
  }

  type state = {
    memory : int Smap.t;
    procs : proc array;
    resvs : (string * resv list) list;  (** sorted by location *)
  }

  let name = C.machine_name

  let initial prog =
    {
      memory = Prog.initial_memory prog;
      procs =
        Array.init (Prog.num_threads prog) (fun _ ->
            { next = 0; regs = Smap.empty; pending = []; nseq = 0 });
      resvs = [];
    }

  let read_mem memory loc =
    match Smap.find_opt loc memory with Some v -> v | None -> 0

  let forwarded pending loc =
    List.fold_left
      (fun acc pw -> if String.equal pw.wloc loc then Some pw.wval else acc)
      None pending

  let visible st p loc =
    match forwarded st.procs.(p).pending loc with
    | Some v -> v
    | None -> read_mem st.memory loc

  (* Drop satisfied reservations: a reservation stands only while its
     processor still has pending writes at or below the watermark. *)
  let cleanup st =
    let live r =
      List.exists
        (fun pw -> pw.seq <= r.watermark)
        st.procs.(r.rproc).pending
    in
    let resvs =
      List.filter_map
        (fun (l, rs) ->
          match List.filter live rs with [] -> None | rs -> Some (l, rs))
        st.resvs
    in
    { st with resvs }

  let blocked_by_reservation st p loc =
    match List.assoc_opt loc st.resvs with
    | None -> false
    | Some rs -> List.exists (fun r -> r.rproc <> p) rs

  (* Place (or refresh) [p]'s reservation on [loc], if it has pending
     writes. *)
  let reserve st p loc =
    match st.procs.(p).pending with
    | [] -> st
    | pending ->
        let watermark =
          List.fold_left (fun m pw -> max m pw.seq) min_int pending
        in
        let mine = { rproc = p; watermark } in
        let rec update = function
          | [] -> [ (loc, [ mine ]) ]
          | (l, rs) :: rest when String.equal l loc ->
              let rs = mine :: List.filter (fun r -> r.rproc <> p) rs in
              let rs = List.sort (fun a b -> compare a.rproc b.rproc) rs in
              (l, rs) :: rest
          | entry :: rest -> entry :: update rest
        in
        let resvs =
          if List.mem_assoc loc st.resvs then update st.resvs
          else List.sort (fun (a, _) (b, _) -> String.compare a b)
              ((loc, [ mine ]) :: st.resvs)
        in
        { st with resvs }

  let with_proc st p proc =
    let procs = Array.copy st.procs in
    procs.(p) <- proc;
    { st with procs }

  let advance ?(regs = fun r -> r) ?(pending = fun w -> w) ?(nseq = fun n -> n)
      st p =
    let pr = st.procs.(p) in
    with_proc st p
      {
        next = pr.next + 1;
        regs = regs pr.regs;
        pending = pending pr.pending;
        nseq = nseq pr.nseq;
      }

  (* Commit a synchronization operation: check foreign reservations, update
     memory atomically, optionally place our own reservation. *)
  let commit_sync st p loc ~reserves ~update =
    if blocked_by_reservation st p loc then []
    else
      match update (read_mem st.memory loc) with
      | None -> []
      | Some (new_mem_value, regs) ->
          let st =
            match new_mem_value with
            | Some v -> { st with memory = Smap.add loc v st.memory }
            | None -> st
          in
          let st = advance ~regs st p in
          let st = if reserves then reserve st p loc else st in
          [ cleanup st ]

  let issue prog st p =
    let pr = st.procs.(p) in
    match List.nth_opt (Prog.thread prog p) pr.next with
    | None -> []
    | Some instr -> (
        match instr with
        | Instr.Load { kind = Instr.Data; loc; reg } ->
            let v = visible st p loc in
            [ advance ~regs:(Smap.add reg v) st p ]
        | Instr.Store { kind = Instr.Data; loc; value } ->
            let v = Exp.eval pr.regs value in
            [
              advance
                ~pending:(fun w ->
                  w @ [ { wloc = loc; wval = v; seq = pr.nseq } ])
                ~nseq:(fun n -> n + 1)
                st p;
            ]
        | Instr.Await { kind = Instr.Data; loc; expect; reg } ->
            if visible st p loc = expect then
              let regs =
                match reg with Some r -> Smap.add r expect | None -> fun x -> x
              in
              [ advance ~regs st p ]
            else []
        | Instr.Load { kind = Instr.Sync; loc; reg } ->
            commit_sync st p loc ~reserves:C.read_only_syncs_reserve
              ~update:(fun v -> Some (None, Smap.add reg v))
        | Instr.Await { kind = Instr.Sync; loc; expect; reg } ->
            commit_sync st p loc ~reserves:C.read_only_syncs_reserve
              ~update:(fun v ->
                if v <> expect then None
                else
                  let regs =
                    match reg with
                    | Some r -> Smap.add r expect
                    | None -> fun x -> x
                  in
                  Some (None, regs))
        | Instr.Store { kind = Instr.Sync; loc; value } ->
            let v = Exp.eval pr.regs value in
            commit_sync st p loc ~reserves:true ~update:(fun _ ->
                Some (Some v, fun r -> r))
        | Instr.Rmw { loc; reg; value; _ } ->
            commit_sync st p loc ~reserves:true ~update:(fun old ->
                let regs = Smap.add reg old pr.regs in
                let v = Exp.eval regs value in
                Some (Some v, fun _ -> regs))
        | Instr.Lock { loc } ->
            commit_sync st p loc ~reserves:true ~update:(fun v ->
                if v <> 0 then None else Some (Some 1, fun r -> r))
        | Instr.Fence -> if pr.pending = [] then [ cleanup (advance st p) ] else [])

  (* Globally perform a pending write; same-location writes of a processor
     leave in issue order. *)
  let perform st p =
    let pr = st.procs.(p) in
    let rec candidates seen_locs before acc = function
      | [] -> acc
      | pw :: rest ->
          let acc =
            if List.mem pw.wloc seen_locs then acc
            else begin
              let st' =
                { st with memory = Smap.add pw.wloc pw.wval st.memory }
              in
              let st' =
                with_proc st' p { pr with pending = List.rev_append before rest }
              in
              cleanup st' :: acc
            end
          in
          candidates (pw.wloc :: seen_locs) (pw :: before) acc rest
    in
    candidates [] [] [] pr.pending

  let successors prog st =
    let acc = ref [] in
    for p = Array.length st.procs - 1 downto 0 do
      acc := issue prog st p @ perform st p @ !acc
    done;
    !acc

  let final prog st =
    let complete =
      Array.to_list st.procs
      |> List.mapi (fun p pr ->
             pr.pending = [] && pr.next >= List.length (Prog.thread prog p))
      |> List.for_all Fun.id
    in
    if not complete then None
    else
      Some
        (Final.make ~memory:st.memory
           ~regs:(Array.map (fun pr -> pr.regs) st.procs))

  type key =
    (string * int) list
    * (int * (string * int) list * (string * int * int) list * int) array
    * (string * (int * int) list) list

  let canon st : key =
    ( Smap.bindings st.memory,
      Array.map
        (fun pr ->
          ( pr.next,
            Smap.bindings pr.regs,
            List.map (fun w -> (w.wloc, w.wval, w.seq)) pr.pending,
            pr.nseq ))
        st.procs,
      List.map
        (fun (l, rs) -> (l, List.map (fun r -> (r.rproc, r.watermark)) rs))
        st.resvs )

  let hash = Machine_sig.structural_hash
  let equal (a : key) (b : key) = a = b
end

module Base = Make (struct
  let machine_name = "def2"
  let read_only_syncs_reserve = true
end)

module Read_sync_relaxed = Make (struct
  let machine_name = "def2-rs"
  let read_only_syncs_reserve = false
end)
