(* An out-of-order machine: every access executes atomically against a
   single memory, but a processor may execute its instructions in any order
   that respects (a) register dependencies (true, anti and output — the
   "simple interlock logic" of Figure 1's caption), (b) program order
   between same-location accesses, and (c) fences.

   This models Figure 1's general-interconnection-network configurations,
   where accesses issued in program order reach memory modules in a
   different order.  Synchronization operations receive no special
   treatment — naive hardware — so the machine is not weakly ordered with
   respect to anything; it exists to demonstrate the violations of
   Figure 1. *)

module Smap = Exp.Smap

type proc = { executed : int; regs : int Smap.t }  (** [executed] is a bitmask *)

type state = { memory : int Smap.t; procs : proc array }

let name = "ooo"

(* Per-thread precedence masks: preds.(p).(j) is the bitmask of indices that
   must execute before instruction j of thread p. *)
let preds_of_prog prog =
  Array.init (Prog.num_threads prog) (fun p ->
      let instrs = Array.of_list (Prog.thread prog p) in
      let n = Array.length instrs in
      Array.init n (fun j ->
          let ij = instrs.(j) in
          let mask = ref 0 in
          for i = 0 to j - 1 do
            let ii = instrs.(i) in
            let same_loc =
              match (Instr.location ii, Instr.location ij) with
              | Some a, Some b -> String.equal a b
              | _, _ -> false
            in
            let fence = ii = Instr.Fence || ij = Instr.Fence in
            let true_dep =
              match Instr.target_register ii with
              | Some r -> List.mem r (Instr.source_registers ij)
              | None -> false
            in
            let anti_dep =
              match Instr.target_register ij with
              | Some r -> List.mem r (Instr.source_registers ii)
              | None -> false
            in
            let output_dep =
              match (Instr.target_register ii, Instr.target_register ij) with
              | Some a, Some b -> String.equal a b
              | _, _ -> false
            in
            if same_loc || fence || true_dep || anti_dep || output_dep then
              mask := !mask lor (1 lsl i)
          done;
          !mask))

(* The masks depend only on the program; cache them across calls.  An
   [Atomic] so parallel exploration domains can race on it safely — a lost
   update merely recomputes the (immutable) masks. *)
let preds_cache : (Prog.t * int array array) option Atomic.t = Atomic.make None

let preds prog =
  match Atomic.get preds_cache with
  | Some (p, masks) when p == prog -> masks
  | Some _ | None ->
      let masks = preds_of_prog prog in
      Atomic.set preds_cache (Some (prog, masks));
      masks

let initial prog =
  {
    memory = Prog.initial_memory prog;
    procs =
      Array.init (Prog.num_threads prog) (fun _ ->
          { executed = 0; regs = Smap.empty });
  }

let read_mem memory loc =
  match Smap.find_opt loc memory with Some v -> v | None -> 0

let with_proc st p proc =
  let procs = Array.copy st.procs in
  procs.(p) <- proc;
  { st with procs }

let execute_instr instr st p j =
  let pr = st.procs.(p) in
  let mark regs = { executed = pr.executed lor (1 lsl j); regs } in
  match instr with
  | Instr.Load { loc; reg; _ } ->
      let v = read_mem st.memory loc in
      Some (with_proc st p (mark (Smap.add reg v pr.regs)))
  | Instr.Store { loc; value; _ } ->
      let v = Exp.eval pr.regs value in
      Some (with_proc { st with memory = Smap.add loc v st.memory } p (mark pr.regs))
  | Instr.Rmw { loc; reg; value; _ } ->
      let old = read_mem st.memory loc in
      let regs = Smap.add reg old pr.regs in
      let v = Exp.eval regs value in
      Some (with_proc { st with memory = Smap.add loc v st.memory } p (mark regs))
  | Instr.Await { loc; expect; reg; _ } ->
      if read_mem st.memory loc = expect then
        let regs =
          match reg with Some r -> Smap.add r expect pr.regs | None -> pr.regs
        in
        Some (with_proc st p (mark regs))
      else None
  | Instr.Lock { loc } ->
      if read_mem st.memory loc = 0 then
        Some (with_proc { st with memory = Smap.add loc 1 st.memory } p (mark pr.regs))
      else None
  | Instr.Fence -> Some (with_proc st p (mark pr.regs))

let successors prog st =
  let masks = preds prog in
  let instrs = (Por_static.cached prog).Por_static.instrs in
  let acc = ref [] in
  for p = Array.length st.procs - 1 downto 0 do
    let pr = st.procs.(p) in
    let n = Array.length masks.(p) in
    for j = n - 1 downto 0 do
      let not_done = pr.executed land (1 lsl j) = 0 in
      let ready = masks.(p).(j) land lnot pr.executed = 0 in
      if not_done && ready then
        match execute_instr instrs.(p).(j) st p j with
        | Some st' -> acc := st' :: !acc
        | None -> ()
    done
  done;
  !acc

let final prog st =
  let masks = preds prog in
  let complete =
    Array.to_list st.procs
    |> List.mapi (fun p pr ->
           pr.executed = (1 lsl Array.length masks.(p)) - 1)
    |> List.for_all Fun.id
  in
  if not complete then None
  else
    Some
      (Final.make ~memory:st.memory
         ~regs:(Array.map (fun pr -> pr.regs) st.procs))

type key = (string * int) list * (int * (string * int) list) array

let canon st : key =
  ( Smap.bindings st.memory,
    Array.map (fun pr -> (pr.executed, Smap.bindings pr.regs)) st.procs )

let hash = Machine_sig.structural_hash
let equal (a : key) (b : key) = a = b

(* The executed bitmask indexes instructions; automorphisms map thread [p]'s
   instruction [i] to the image thread's instruction [i], so the mask moves
   with the processor unchanged. *)
let permute pi ((mem, procs) : key) : key =
  ( Sym.rename_bindings pi mem,
    Sym.permute_procs pi
      (fun p (executed, regs) ->
        (executed, Sym.rename_reg_bindings pi ~proc:p regs))
      procs )

(* --- partial-order reduction oracle -------------------------------------

   Transition labels: every ready instruction executes atomically against
   memory, so the label is just its location and direction; fences are
   local (they only set an executed bit).  There is no global structure
   beyond memory, so no label needs [a_sync].

   Ample selection, scanned in successor order; each class's soundness
   leans on the precedence masks: any two same-location or register-
   dependent instructions of one processor are ordered by [preds], so a
   *ready* instruction has no unexecuted same-processor conflict — its
   earlier conflicts are executed, and its later ones list it in their
   masks and cannot fire first.  Readiness is monotone (bits only get
   set), so an ample candidate stays enabled while others fire.

   - a ready fence: its mask contains every earlier instruction and it
     appears in every later one's mask, so nothing of its own processor
     can fire before it; it changes nothing but a bit, so every foreign
     step commutes with it; every complete run performs it.
   - a ready load of [l] when no *other* processor has an unexecuted
     instruction writing [l]: all remaining foreign steps are
     independent of it (read-read sharing is fine).
   - a ready store or RMW of [l] when no other processor has an
     unexecuted instruction accessing [l].

   Awaits and locks are never chosen: they block on memory values that
   foreign writes can change. *)

let successors_labeled prog st =
  let masks = preds prog in
  let instrs = (Por_static.cached prog).Por_static.instrs in
  let acc = ref [] in
  for p = Array.length st.procs - 1 downto 0 do
    let pr = st.procs.(p) in
    let n = Array.length masks.(p) in
    for j = n - 1 downto 0 do
      let not_done = pr.executed land (1 lsl j) = 0 in
      let ready = masks.(p).(j) land lnot pr.executed = 0 in
      if not_done && ready then
        let instr = instrs.(p).(j) in
        match execute_instr instr st p j with
        | Some st' ->
            let a_loc, a_write =
              match instr with
              | Instr.Fence -> ("", false)
              | Instr.Load { loc; _ } | Instr.Await { loc; _ } -> (loc, false)
              | Instr.Store { loc; _ } | Instr.Rmw { loc; _ } | Instr.Lock { loc }
                ->
                  (loc, true)
            in
            acc :=
              ( {
                  Machine_sig.a_proc = p;
                  a_id = j;
                  a_loc;
                  a_write;
                  a_sync = false;
                },
                st' )
              :: !acc
        | None -> ()
    done
  done;
  !acc

let por prog =
  let info = Por_static.cached prog in
  (* No unexecuted instruction of any other processor writes
     ([write_only]) or touches [loc]. *)
  let foreign_clear ~write_only st p loc =
    let ok = ref true in
    Array.iteri
      (fun q pr ->
        if q <> p && !ok then begin
          let am, wm = Por_static.loc_bitmasks info ~p:q loc in
          if (if write_only then wm else am) land lnot pr.executed <> 0 then
            ok := false
        end)
      st.procs;
    !ok
  in
  let ample st succs =
    List.find_opt
      (fun ((a : Machine_sig.action), _) ->
        if a.a_loc = "" then true
        else
          match info.Por_static.instrs.(a.a_proc).(a.a_id) with
          | Instr.Load _ -> foreign_clear ~write_only:true st a.a_proc a.a_loc
          | Instr.Store _ | Instr.Rmw _ ->
              foreign_clear ~write_only:false st a.a_proc a.a_loc
          | Instr.Await _ | Instr.Lock _ | Instr.Fence -> false)
      succs
  in
  Some { Machine_sig.successors_labeled = successors_labeled prog; ample }
