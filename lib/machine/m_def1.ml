(* Definition-1 weak ordering (Dubois, Scheurich & Briggs), as an abstract
   machine:

   - instructions issue in program order, and reads block until their value
     returns (the processor model of the era);
   - data writes issue into a per-processor pending set and become globally
     visible (globally performed) at arbitrary later times, except that
     same-location writes of one processor perform in issue order;
   - condition 2: a synchronization operation cannot issue until all the
     processor's previous data accesses are globally performed (reads are
     blocking, so only pending writes matter);
   - condition 3: since synchronization operations execute atomically at
     issue (they are "strongly ordered"), nothing issues past an incomplete
     sync by construction;
   - condition 1 (sync ops strongly ordered) holds because syncs update the
     single memory atomically. *)

module Smap = Exp.Smap

type pending = { wloc : string; wval : int }

type proc = {
  next : int;
  regs : int Smap.t;
  pending : pending list;  (** issue order, oldest first *)
}

type state = { memory : int Smap.t; procs : proc array }

let name = "def1"

let initial prog =
  {
    memory = Prog.initial_memory prog;
    procs =
      Array.init (Prog.num_threads prog) (fun _ ->
          { next = 0; regs = Smap.empty; pending = [] });
  }

let read_mem memory loc =
  match Smap.find_opt loc memory with Some v -> v | None -> 0

let forwarded pending loc =
  List.fold_left
    (fun acc pw -> if String.equal pw.wloc loc then Some pw.wval else acc)
    None pending

let visible st p loc =
  match forwarded st.procs.(p).pending loc with
  | Some v -> v
  | None -> read_mem st.memory loc

let with_proc st p proc =
  let procs = Array.copy st.procs in
  procs.(p) <- proc;
  { st with procs }

let advance ?(regs = fun r -> r) ?(pending = fun w -> w) st p =
  let pr = st.procs.(p) in
  with_proc st p
    { next = pr.next + 1; regs = regs pr.regs; pending = pending pr.pending }

let issue prog st p =
  let pr = st.procs.(p) in
  match List.nth_opt (Prog.thread prog p) pr.next with
  | None -> []
  | Some instr -> (
      let drained = pr.pending = [] in
      match instr with
      | Instr.Load { kind = Instr.Data; loc; reg } ->
          let v = visible st p loc in
          [ advance ~regs:(Smap.add reg v) st p ]
      | Instr.Store { kind = Instr.Data; loc; value } ->
          let v = Exp.eval pr.regs value in
          [ advance ~pending:(fun w -> w @ [ { wloc = loc; wval = v } ]) st p ]
      | Instr.Await { kind = Instr.Data; loc; expect; reg } ->
          if visible st p loc = expect then
            let regs =
              match reg with Some r -> Smap.add r expect | None -> fun x -> x
            in
            [ advance ~regs st p ]
          else []
      | Instr.Load { kind = Instr.Sync; loc; reg } ->
          if drained then begin
            let v = read_mem st.memory loc in
            [ advance ~regs:(Smap.add reg v) st p ]
          end
          else []
      | Instr.Store { kind = Instr.Sync; loc; value } ->
          if drained then begin
            let v = Exp.eval pr.regs value in
            let st = { st with memory = Smap.add loc v st.memory } in
            [ advance st p ]
          end
          else []
      | Instr.Await { kind = Instr.Sync; loc; expect; reg } ->
          if drained && read_mem st.memory loc = expect then
            let regs =
              match reg with Some r -> Smap.add r expect | None -> fun x -> x
            in
            [ advance ~regs st p ]
          else []
      | Instr.Rmw { loc; reg; value; _ } ->
          (* RMWs are atomic, hence routed through the sync discipline
             regardless of kind. *)
          if drained then begin
            let old = read_mem st.memory loc in
            let regs = Smap.add reg old pr.regs in
            let v = Exp.eval regs value in
            let st = { st with memory = Smap.add loc v st.memory } in
            [ advance ~regs:(fun _ -> regs) st p ]
          end
          else []
      | Instr.Lock { loc } ->
          if drained && read_mem st.memory loc = 0 then begin
            let st = { st with memory = Smap.add loc 1 st.memory } in
            [ advance st p ]
          end
          else []
      | Instr.Fence -> if drained then [ advance st p ] else [])

(* Globally perform one pending write of [p].  Any entry may go, except that
   same-location entries leave in issue order (write serialization). *)
let perform st p =
  let pr = st.procs.(p) in
  let rec candidates seen_locs before acc = function
    | [] -> acc
    | pw :: rest ->
        let acc =
          if List.mem pw.wloc seen_locs then acc
          else
            let st' = { st with memory = Smap.add pw.wloc pw.wval st.memory } in
            with_proc st' p { pr with pending = List.rev_append before rest }
            :: acc
        in
        candidates (pw.wloc :: seen_locs) (pw :: before) acc rest
  in
  candidates [] [] [] pr.pending

let successors prog st =
  let acc = ref [] in
  for p = Array.length st.procs - 1 downto 0 do
    acc := issue prog st p @ perform st p @ !acc
  done;
  !acc

let final prog st =
  let complete =
    Array.to_list st.procs
    |> List.mapi (fun p pr ->
           pr.pending = [] && pr.next >= List.length (Prog.thread prog p))
    |> List.for_all Fun.id
  in
  if not complete then None
  else
    Some
      (Final.make ~memory:st.memory
         ~regs:(Array.map (fun pr -> pr.regs) st.procs))

type key =
  (string * int) list * (int * (string * int) list * (string * int) list) array

let canon st : key =
  ( Smap.bindings st.memory,
    Array.map
      (fun pr ->
        ( pr.next,
          Smap.bindings pr.regs,
          List.map (fun w -> (w.wloc, w.wval)) pr.pending ))
      st.procs )

let hash = Machine_sig.structural_hash
let equal (a : key) (b : key) = a = b

let permute pi ((mem, procs) : key) : key =
  ( Sym.rename_bindings pi mem,
    Sym.permute_procs pi
      (fun p (next, regs, pend) ->
        ( next,
          Sym.rename_reg_bindings pi ~proc:p regs,
          List.map (fun (l, v) -> (Sym.rename_loc pi l, v)) pend ))
      procs )

(* No reduction oracle: these machines interleave reservation bookkeeping
   (global-perform counters, reservation multisets) with every shared
   access, so a conservative labeling would mark everything [a_sync] and
   suppress nothing.  Explored in full — always sound. *)
let por _ = None
