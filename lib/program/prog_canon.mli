(** Orbit-canonical program text: a rendering invariant under processor
    reordering and location/register renaming, for symmetry-deduplicating
    cache keys. *)

val max_threads : int
(** Processor-permutation search cap ([6]); beyond it only the identity
    ordering is rendered (the text is still renaming-invariant for
    locations and registers, just not for processor order). *)

val text : Prog.t -> string
(** The least rendering of the program over all processor permutations,
    with locations and registers renamed by first occurrence.  Two
    programs related by any processor/location/register renaming yield
    the same text (for at most {!max_threads} processors); programs with
    different semantics never share one.  The program's name does not
    participate. *)
