(* Orbit-canonical program text.

   Two programs that differ only by a renaming — of processors, memory
   locations, or registers — explore isomorphic state graphs and receive
   isomorphic verdicts, so a verdict cache keyed on raw program text
   leaves symmetric duplicates uncached.  [text] renders a program to a
   string invariant under those renamings: for every processor
   permutation (up to {!max_threads} processors) the program is
   re-rendered with locations and registers renamed by first occurrence,
   and the lexicographically least rendering wins.

   The rendering covers everything verdict-relevant: instruction kinds
   and shapes, initial memory (values attached to renamed locations),
   and the "exists" clause with its thread indices remapped through the
   permutation.  The program's name is deliberately absent.  The
   canonicalization is purely syntactic — unlike the exploration-time
   {!Sym} oracle it never proves a permutation is an automorphism, it
   just quotients the cache key by renaming, which is exactly the
   invariance verdicts have. *)

module Smap = Map.Make (String)

let max_threads = 6

type renamer = {
  mutable map : string Smap.t;
  mutable next : int;
  prefix : string;
}

let fresh prefix = { map = Smap.empty; next = 0; prefix }

let rename rn x =
  match Smap.find_opt x rn.map with
  | Some y -> y
  | None ->
      let y = Printf.sprintf "%s%d" rn.prefix rn.next in
      rn.next <- rn.next + 1;
      rn.map <- Smap.add x y rn.map;
      y

(* All permutations of [0 .. n-1]. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

(* One candidate rendering: threads visited in [order], names assigned by
   first occurrence along that visit.  Evaluation order matters (each
   [rename] call may mint a name), so every renamed component is bound
   with [let] before the surrounding string is assembled. *)
let render prog order =
  let n = Prog.num_threads prog in
  let locs = fresh "l" in
  let regs = Array.init n (fun _ -> fresh "r") in
  let inv = Array.make n 0 in
  List.iteri (fun newp oldp -> inv.(oldp) <- newp) order;
  let buf = Buffer.create 256 in
  let rec exp rn = function
    | Exp.Const v -> string_of_int v
    | Exp.Reg r -> rename rn r
    | Exp.Add (a, b) ->
        let a = exp rn a in
        let b = exp rn b in
        "(" ^ a ^ "+" ^ b ^ ")"
    | Exp.Sub (a, b) ->
        let a = exp rn a in
        let b = exp rn b in
        "(" ^ a ^ "-" ^ b ^ ")"
  in
  let kind = function Instr.Data -> "d" | Instr.Sync -> "s" in
  let instr p = function
    | Instr.Load { kind = k; loc; reg } ->
        let loc = rename locs loc in
        let reg = rename regs.(p) reg in
        Printf.sprintf "L%s %s %s" (kind k) loc reg
    | Instr.Store { kind = k; loc; value } ->
        let loc = rename locs loc in
        let value = exp regs.(p) value in
        Printf.sprintf "S%s %s %s" (kind k) loc value
    | Instr.Rmw { kind = k; loc; reg; value } ->
        let loc = rename locs loc in
        let reg = rename regs.(p) reg in
        let value = exp regs.(p) value in
        Printf.sprintf "M%s %s %s %s" (kind k) loc reg value
    | Instr.Await { kind = k; loc; expect; reg } ->
        let loc = rename locs loc in
        let reg =
          match reg with None -> "_" | Some r -> rename regs.(p) r
        in
        Printf.sprintf "A%s %s %d %s" (kind k) loc expect reg
    | Instr.Lock { loc } -> Printf.sprintf "K %s" (rename locs loc)
    | Instr.Fence -> "F"
  in
  List.iter
    (fun oldp ->
      Buffer.add_char buf 'P';
      List.iter
        (fun i ->
          Buffer.add_string buf (instr oldp i);
          Buffer.add_char buf ';')
        (Prog.thread prog oldp);
      Buffer.add_char buf '\n')
    order;
  (* Init entries keep their values; locations only initialized (never
     accessed) are named in original-name order, and the final sort is
     over renamed names so the section is order-insensitive. *)
  let init =
    List.sort compare
      (List.map
         (fun (l, v) -> (rename locs l, v))
         (List.sort compare (Prog.init prog)))
  in
  List.iter (fun (l, v) -> Buffer.add_string buf
                (Printf.sprintf "I %s %d\n" l v)) init;
  (match Prog.exists prog with
  | None -> ()
  | Some c ->
      let rec cond = function
        | Cond.True -> "T"
        | Cond.Reg_eq (p, r, v) when p >= 0 && p < n ->
            let r = rename regs.(p) r in
            Printf.sprintf "%d:%s=%d" inv.(p) r v
        | Cond.Reg_eq (p, r, v) ->
            (* malformed thread index: keep it verbatim *)
            Printf.sprintf "%d:%s=%d" p r v
        | Cond.Mem_eq (l, v) -> Printf.sprintf "%s=%d" (rename locs l) v
        | Cond.Not c -> "!(" ^ cond c ^ ")"
        | Cond.And (a, b) ->
            let a = cond a in
            let b = cond b in
            "(" ^ a ^ "&" ^ b ^ ")"
        | Cond.Or (a, b) ->
            let a = cond a in
            let b = cond b in
            "(" ^ a ^ "|" ^ b ^ ")"
      in
      Buffer.add_string buf ("E " ^ cond c ^ "\n"));
  Buffer.contents buf

let text prog =
  let n = Prog.num_threads prog in
  let orders =
    if n = 0 || n > max_threads then [ List.init n Fun.id ]
    else permutations (List.init n Fun.id)
  in
  List.fold_left
    (fun best o ->
      let c = render prog o in
      match best with Some b when b <= c -> best | _ -> Some c)
    None orders
  |> Option.get
