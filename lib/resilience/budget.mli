(** Wall-clock and memory budgets for long verification runs.

    A budget is created when a run starts ([deadline_s] is relative to
    creation time) and consulted at safe points: the exploration engine
    checks it between state expansions, the SC enumerator between visited
    states, and the fault campaign between simulator runs.  Exhaustion is
    always cooperative — the caller drains to a clean [Partial] result
    (with a resumable checkpoint where one is configured) rather than
    being killed mid-sweep. *)

type t

type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | Memory  (** the tracked structure crossed the memory budget *)

val create : ?deadline_s:float -> ?mem_bytes:int -> unit -> t
(** [create ~deadline_s ~mem_bytes ()] starts the clock now.  Omitted
    components are unlimited.
    @raise Invalid_argument on a negative deadline or byte budget. *)

val unlimited : t
(** A budget nothing can exhaust. *)

val is_unlimited : t -> bool

val over_deadline : t -> bool
(** The wall-clock deadline (if any) has passed.  One [gettimeofday] per
    call: cheap enough for a safe-point check every few dozen states, not
    for one per instruction. *)

val over_memory : t -> bytes:int -> bool
(** [bytes] — the caller's estimate of the structure under budget —
    exceeds the memory budget (if any). *)

val check : t -> bytes:int -> reason option
(** Both checks; [Memory] wins ties (it is the cheaper test). *)

val deadline_only : t -> t
(** The same absolute deadline with the memory component dropped — for
    sub-sweeps whose structures are not the memory hog (e.g. the SC
    reference enumeration inside a budgeted verify). *)

val deadline_s : t -> float option
(** Seconds until the deadline (negative once passed); [None] if
    unlimited. *)

val mem_bytes : t -> int option

val reason_string : reason -> string
(** ["deadline"] or ["memory"]. *)

val pp_reason : Format.formatter -> reason -> unit
