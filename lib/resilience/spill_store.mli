(** A tiered exact visited store: hot in-RAM keys in front of immutable,
    prefix-compressed, CRC-checked sorted runs on disk, with a per-run
    Bloom front-filter for cheap negative probes.

    The store replaces the lossy Bloom-degradation path of the
    exploration engine: crossing the memory budget flushes the hot tier
    to a new run instead of forgetting anything, so membership answers
    stay {e exact} and a sweep under memory pressure stays [Complete].
    (The Bloom filters here only short-circuit negatives — a "maybe"
    always falls through to the CRC-checked block read.)

    Keys are opaque byte strings; callers marshal their structural keys
    with [Marshal.No_sharing] so byte equality coincides with structural
    equality.  Run files are written atomically and never rewritten, so a
    snapshot can name them and a crash/resume re-opens exactly the same
    immutable data.  Every operation takes an internal mutex: one store
    can serve as the shared claim table of a parallel sweep. *)

type t

exception Corrupt of string
(** A run file failed validation (bad magic, CRC mismatch, truncation).
    Raised by {!import} and by probes that hit a file corrupted after
    import — never silently ignored. *)

val create : dir:string -> threshold:int -> t
(** A fresh store spilling into [dir] (created if missing), flushing the
    hot tier whenever it reaches [threshold] keys.  Pre-existing run
    files in [dir] are deleted: a fresh store owns the directory's run
    namespace.
    @raise Invalid_argument if [threshold < 1]. *)

val add : t -> string -> bool
(** [add t key] is [true] iff [key] was not yet in the store (it is now):
    the claim operation of a transposition table. *)

val mem : t -> string -> bool
(** Membership without insertion. *)

val flush : t -> unit
(** Force the hot tier into a new run on disk (no-op when empty) — the
    memory-budget safety valve. *)

val hot_size : t -> int
(** Keys currently in the RAM tier — what the memory budget meters. *)

val total : t -> int
(** Distinct keys in the store (hot + spilled). *)

type stats = {
  st_hot : int;
  st_runs : int;
  st_spilled_keys : int;
  st_probes : int;
  st_bloom_skips : int;  (** negative probes answered by a Bloom filter *)
  st_disk_bytes : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

type state = { x_hot : string array; x_runs : string list }
(** The marshal-friendly image of a store: the hot keys plus the
    basenames of the immutable run files.  Blooms and block indexes are
    derived data, rebuilt (and CRC-validated) on {!import}. *)

val export : t -> state

val import : dir:string -> threshold:int -> state -> t
(** Rebuild a store from {!export}'s image: every listed run file is
    re-scanned and validated, and run files in [dir] {e not} listed
    (flushed after the snapshot was taken) are deleted as orphans.
    @raise Corrupt if a listed run file is missing or fails validation.
    @raise Invalid_argument if [threshold < 1]. *)

val close : t -> unit
(** Close any channels held open on run files (the files stay). *)
