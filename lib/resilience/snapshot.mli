(** The versioned, CRC-checked snapshot container.

    Every checkpoint — an exploration frontier + transposition table, a
    verification run's corpus position, a fault campaign's schedule
    position — travels inside this frame:

    {v
    WOSNAP <format version>\n
    <kind>\n
    <meta>\n
    <payload length> <crc32 of payload, hex>\n
    <payload bytes>
    v}

    The header is line-based so a corrupted file is diagnosable with
    [head]; the payload is opaque (producers marshal their own state into
    it).  Readers validate magic, version, length and CRC {e before}
    touching the payload — a snapshot is never silently trusted.

    Files are written via {!Atomic_io} with one retained last-good
    generation: writing [path] first rotates the existing [path] to
    [path ^ ".prev"], so a crash between generations (or a corrupted
    latest generation) still leaves a loadable checkpoint behind. *)

val format_version : int
(** Bumped on any change to the frame or to a payload's shape; a reader
    rejects other versions with {!Version_skew} rather than guessing. *)

type container = {
  kind : string;  (** producer tag, e.g. ["weakord.explore/def2"] *)
  meta : string;  (** human-readable context, e.g. the program name *)
  payload : string;  (** opaque producer bytes *)
}

type error =
  | Not_a_snapshot  (** magic mismatch: not our file at all *)
  | Version_skew of { found : int; expected : int }
  | Truncated  (** header fine, payload shorter than declared *)
  | Crc_mismatch  (** payload bytes fail the declared CRC-32 *)
  | Io_error of string  (** unreadable file *)

val error_string : error -> string
val pp_error : Format.formatter -> error -> unit

val frame : kind:string -> meta:string -> payload:string -> string
(** Serialize one container.
    @raise Invalid_argument if [kind] or [meta] contains a newline. *)

val unframe : string -> (container, error) result
(** Parse and validate one container (magic, version, length, CRC). *)

val prev_path : string -> string
(** [path ^ ".prev"] — where the last-good generation is retained. *)

val write_file : string -> string -> unit
(** Atomically install already-framed bytes at a path, rotating any
    existing file to {!prev_path} first.
    @raise Sys_error if the directory is not writable. *)

type loaded = {
  container : container;
  recovered : bool;
      (** the primary file was missing or invalid and the last-good
          generation at {!prev_path} was used instead *)
}

val load : string -> (loaded, error * error option) result
(** Read and validate a snapshot, falling back to the retained last-good
    generation when the primary is corrupt, version-skewed or missing.
    [Error (primary, prev)] reports why the primary failed and, when a
    fallback existed, why it failed too. *)
