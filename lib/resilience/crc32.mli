(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]) over strings.

    The checksum that guards every snapshot payload: a bit flip anywhere in
    a checkpoint is detected before the payload is unmarshalled, so a
    corrupted snapshot is reported instead of trusted. *)

val digest : string -> int
(** The CRC-32 of the whole string, in [0, 0xFFFFFFFF]. *)

val digest_sub : string -> pos:int -> len:int -> int
(** The CRC-32 of a substring.
    @raise Invalid_argument on an out-of-bounds range. *)
