(* The framed snapshot container: text header, binary payload, CRC-32
   validated before the payload is handed to anyone. *)

let format_version = 1
let magic = "WOSNAP"

type container = { kind : string; meta : string; payload : string }

type error =
  | Not_a_snapshot
  | Version_skew of { found : int; expected : int }
  | Truncated
  | Crc_mismatch
  | Io_error of string

let error_string = function
  | Not_a_snapshot -> "not a weakord snapshot (bad magic)"
  | Version_skew { found; expected } ->
      Printf.sprintf "snapshot format version %d, this build reads %d" found
        expected
  | Truncated -> "snapshot is truncated (payload shorter than declared)"
  | Crc_mismatch -> "snapshot payload fails its CRC-32 (corrupted)"
  | Io_error msg -> msg

let pp_error ppf e = Format.pp_print_string ppf (error_string e)

let frame ~kind ~meta ~payload =
  if String.contains kind '\n' || String.contains meta '\n' then
    invalid_arg "Snapshot.frame: kind/meta must be single-line";
  Printf.sprintf "%s %d\n%s\n%s\n%d %08x\n%s" magic format_version kind meta
    (String.length payload) (Crc32.digest payload) payload

(* [line s pos] is the segment [pos .. newline), plus the position after
   the newline. *)
let line s pos =
  match String.index_from_opt s pos '\n' with
  | None -> None
  | Some nl -> Some (String.sub s pos (nl - pos), nl + 1)

let unframe s =
  let ( let* ) o f = match o with None -> Error Truncated | Some v -> f v in
  let magic_len = String.length magic in
  if String.length s < magic_len + 2 || not (String.equal (String.sub s 0 magic_len) magic)
  then Error Not_a_snapshot
  else
    let* l0, p1 = line s 0 in
    match int_of_string_opt (String.sub l0 (magic_len + 1) (String.length l0 - magic_len - 1)) with
    | exception Invalid_argument _ -> Error Not_a_snapshot
    | None -> Error Not_a_snapshot
    | Some v when v <> format_version ->
        Error (Version_skew { found = v; expected = format_version })
    | Some _ -> (
        let* kind, p2 = line s p1 in
        let* meta, p3 = line s p2 in
        let* sizes, p4 = line s p3 in
        match String.split_on_char ' ' sizes with
        | [ len_s; crc_s ] -> (
            match
              (int_of_string_opt len_s, int_of_string_opt ("0x" ^ crc_s))
            with
            | Some len, Some crc ->
                if len < 0 || String.length s - p4 < len then Error Truncated
                else if Crc32.digest_sub s ~pos:p4 ~len <> crc then
                  Error Crc_mismatch
                else Ok { kind; meta; payload = String.sub s p4 len }
            | _ -> Error Truncated)
        | _ -> Error Truncated)

let prev_path path = path ^ ".prev"

let write_file path framed =
  (* Retain the previous generation first: if the process dies between the
     rotation and the install, [load] recovers from [path ^ ".prev"]. *)
  if Sys.file_exists path then Sys.rename path (prev_path path);
  Atomic_io.write_file path framed

type loaded = { container : container; recovered : bool }

let read_validate path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error (Io_error msg)
  | bytes -> unframe bytes

let load path =
  match read_validate path with
  | Ok c -> Ok { container = c; recovered = false }
  | Error primary -> (
      match read_validate (prev_path path) with
      | Ok c -> Ok { container = c; recovered = true }
      | Error prev -> Error (primary, Some prev)
      | exception _ -> Error (primary, None))
