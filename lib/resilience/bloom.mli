(** A Bloom filter over pre-hashed keys: the degraded visited set the
    exploration engine falls back to under memory pressure.

    The filter answers "possibly seen" / "definitely new".  Used as a
    transposition table this is {e sound for verdicts by construction}: a
    false-positive "seen" can only prune a branch, and pruning only ever
    shrinks the computed outcome set — so any violation found under
    degradation is real, while completeness claims must be (and are)
    dropped to [Partial].  A membership bit costs one byte budget what a
    stored key costs in the hundreds. *)

type t

val create : bits:int -> t
(** A filter of [bits] bits (rounded up to a power of two, at least
    [4096]), using 4 probes per key. *)

val add_mem : t -> int -> int -> bool
(** [add_mem t h1 h2] inserts the key with independent hashes [h1], [h2]
    (double hashing derives the probe sequence) and returns [true] iff
    every probed bit was already set — the key was {e possibly} seen
    before. *)

val mem : t -> int -> int -> bool
(** [mem t h1 h2] is [true] iff the key with hashes [h1], [h2] was
    {e possibly} inserted before — the pure membership probe ({!add_mem}
    without the insertion), used as the spill store's negative
    front-filter. *)

val bits : t -> int
(** The filter size in bits. *)

val ones : t -> int
(** Set bits — the saturation telemetry ([ones]/[bits] near 1 means the
    filter is blind and nearly everything looks "seen"). *)

type state = { s_bits : int; s_data : Bytes.t }
(** The marshal-friendly image of a filter, carried inside degraded-mode
    checkpoints. *)

val export : t -> state
(** A snapshot copy of the filter (safe to marshal and keep). *)

val import : state -> t
(** Rebuild a filter from {!export}'s image.
    @raise Invalid_argument if the image is inconsistent. *)
