(** Crash-safe file writes: write to a temporary file in the target's
    directory, flush, [fsync], then atomically rename over the target.

    A reader never observes a half-written file: it sees either the old
    contents or the new ones.  An interrupted writer leaves at worst a
    [*.tmp.<pid>] file beside the target, never a truncated target.  This
    is the single write path for checkpoints, [BENCH_<date>.json] dumps
    and Chrome-trace exports. *)

val write_file : ?fsync:bool -> string -> string -> unit
(** [write_file path data] atomically replaces [path] with [data].
    [fsync] (default [true]) forces the data to stable storage before the
    rename — turn it off only for output whose loss on power failure is
    acceptable (trace exports, bench dumps).
    @raise Sys_error if the directory is not writable. *)

val with_file : ?fsync:bool -> string -> (out_channel -> unit) -> unit
(** [with_file path f] runs [f] on a channel to the temporary file, then
    commits it to [path] as {!write_file} does.  If [f] raises, the
    temporary file is removed and [path] is untouched. *)
