(* Temp-file + fsync + atomic-rename writes.

   The temporary lives in the target's own directory (rename is only
   atomic within a filesystem), is named per-pid so concurrent writers
   cannot collide, and is unlinked on any failure so an interrupted run
   leaves the target untouched. *)

let temp_name path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

let with_file ?(fsync = true) path f =
  let tmp = temp_name path in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let oc = Unix.out_channel_of_descr fd in
  (try
     f oc;
     flush oc;
     if fsync then Unix.fsync fd;
     close_out oc
   with e ->
     (try close_out_noerr oc with _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_file ?fsync path data =
  with_file ?fsync path (fun oc -> output_string oc data)
