(* Budgets: an absolute wall-clock deadline plus a byte ceiling for the
   dominant in-memory structure (the visited set).  Both optional; both
   checked cooperatively at safe points. *)

type reason = Deadline | Memory

type t = {
  deadline : float option;  (** absolute, [Unix.gettimeofday] scale *)
  mem_bytes : int option;
}

let create ?deadline_s ?mem_bytes () =
  (match deadline_s with
  | Some d when d < 0. -> invalid_arg "Budget.create: negative deadline"
  | _ -> ());
  (match mem_bytes with
  | Some b when b < 0 -> invalid_arg "Budget.create: negative memory budget"
  | _ -> ());
  {
    deadline = Option.map (fun d -> Unix.gettimeofday () +. d) deadline_s;
    mem_bytes;
  }

let unlimited = { deadline = None; mem_bytes = None }
let is_unlimited t = t.deadline = None && t.mem_bytes = None

let over_deadline t =
  match t.deadline with
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let over_memory t ~bytes =
  match t.mem_bytes with None -> false | Some b -> bytes > b

let check t ~bytes =
  if over_memory t ~bytes then Some Memory
  else if over_deadline t then Some Deadline
  else None

let deadline_only t = { t with mem_bytes = None }
let deadline_s t = Option.map (fun d -> d -. Unix.gettimeofday ()) t.deadline
let mem_bytes t = t.mem_bytes
let reason_string = function Deadline -> "deadline" | Memory -> "memory"
let pp_reason ppf r = Format.pp_print_string ppf (reason_string r)
