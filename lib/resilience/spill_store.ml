(* A tiered exact visited store: a hot in-RAM set of key strings in front
   of immutable sorted runs on disk.  The replacement for the lossy
   Bloom-degradation path — memory pressure now means "flush the hot tier
   to a new run and keep going", and the store stays exact, so the sweep
   stays Complete.

   Keys are opaque byte strings (the engine marshals its canonical keys
   with [Marshal.No_sharing], so byte equality coincides with structural
   key equality).  A probe walks:

     hot table  ->  per-run Bloom front-filter  ->  sparse block index
                ->  one CRC-checked block read + scan

   Runs are written once, atomically (temp file + rename), and never
   rewritten: a snapshot taken at any moment names a set of immutable
   files, so crash/resume just re-opens them.  Each run file is

     "WOSPILL1 <keys> <blocks>\n"
     repeated blocks:  "<bodylen> <crc32hex> <count>\n" <body>

   where a body is a prefix-compressed sorted key sequence: per key, the
   shared-prefix length with the previous key and the suffix length as
   decimal ASCII, then the suffix bytes.  The per-run Bloom filter and the
   (first key, offset) block index are rebuilt by scanning the file — they
   are derived data, never trusted from a snapshot.

   Every operation takes the store's mutex, so the parallel engine's
   domains can share one store as their claim table. *)

let block_keys = 256
let magic = "WOSPILL1"

type run = {
  file : string;  (* absolute path *)
  count : int;
  bloom : Bloom.t;
  index : (string * int) array;  (* first key of each block, byte offset *)
  mutable chan : in_channel option;  (* lazily opened, kept open *)
  mutable cached_block : (int * string array) option;
      (* last block read: offset, decoded keys *)
}

type t = {
  dir : string;
  threshold : int;
  lock : Mutex.t;
  hot : (string, unit) Hashtbl.t;
  mutable runs : run list;  (* newest first *)
  mutable next_run : int;
  mutable spilled_keys : int;
  mutable probes : int;
  mutable bloom_skips : int;
}

type stats = {
  st_hot : int;
  st_runs : int;
  st_spilled_keys : int;
  st_probes : int;
  st_bloom_skips : int;
  st_disk_bytes : int;
}

exception Corrupt of string

let key_hashes key =
  (Hashtbl.hash_param 64 256 key, Hashtbl.seeded_hash 0x9e3779b9 key)

let run_name i = Printf.sprintf "run-%06d.spill" i

let is_run_file name =
  String.length name > 10
  && String.sub name 0 4 = "run-"
  && Filename.check_suffix name ".spill"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir ~threshold =
  if threshold < 1 then invalid_arg "Spill_store.create: threshold must be >= 1";
  mkdir_p dir;
  (* A fresh store owns the directory's run namespace: leftovers from a
     previous (completed or abandoned) sweep are dead weight and would
     otherwise accumulate across a multi-program campaign. *)
  Array.iter
    (fun f ->
      if is_run_file f then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  {
    dir;
    threshold;
    lock = Mutex.create ();
    hot = Hashtbl.create 4096;
    runs = [];
    next_run = 0;
    spilled_keys = 0;
    probes = 0;
    bloom_skips = 0;
  }

(* --- run encoding ----------------------------------------------------------- *)

let shared_prefix a b =
  let n = min (String.length a) (String.length b) in
  let i = ref 0 in
  while !i < n && a.[!i] = b.[!i] do
    incr i
  done;
  !i

let encode_block buf keys lo hi =
  Buffer.clear buf;
  let prev = ref "" in
  for i = lo to hi - 1 do
    let k = keys.(i) in
    let pl = shared_prefix !prev k in
    Buffer.add_string buf (string_of_int pl);
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int (String.length k - pl));
    Buffer.add_char buf ' ';
    Buffer.add_substring buf k pl (String.length k - pl);
    prev := k
  done;
  Buffer.contents buf

let decode_block body count =
  let keys = Array.make count "" in
  let pos = ref 0 in
  let len = String.length body in
  let int_until stop =
    let s = !pos in
    while !pos < len && body.[!pos] <> stop do
      incr pos
    done;
    if !pos >= len then raise (Corrupt "spill block: truncated entry");
    let v =
      match int_of_string_opt (String.sub body s (!pos - s)) with
      | Some v when v >= 0 -> v
      | _ -> raise (Corrupt "spill block: bad entry length")
    in
    incr pos;
    v
  in
  let prev = ref "" in
  for i = 0 to count - 1 do
    let pl = int_until ' ' in
    let sl = int_until ' ' in
    if pl > String.length !prev || !pos + sl > len then
      raise (Corrupt "spill block: entry overruns block");
    let k = String.sub !prev 0 pl ^ String.sub body !pos sl in
    pos := !pos + sl;
    keys.(i) <- k;
    prev := k
  done;
  if !pos <> len then raise (Corrupt "spill block: trailing bytes");
  keys

(* Write the sorted key array as a run file and return the run (bloom and
   index built in the same pass). *)
let write_run t keys =
  let n = Array.length keys in
  let file = Filename.concat t.dir (run_name t.next_run) in
  t.next_run <- t.next_run + 1;
  let nblocks = (n + block_keys - 1) / block_keys in
  let bloom = Bloom.create ~bits:(10 * n) in
  let index = Array.make nblocks ("", 0) in
  let buf = Buffer.create (64 * block_keys) in
  Atomic_io.with_file file (fun oc ->
      output_string oc (Printf.sprintf "%s %d %d\n" magic n nblocks);
      let offset = ref (String.length magic + 1
                        + String.length (string_of_int n) + 1
                        + String.length (string_of_int nblocks) + 1) in
      for b = 0 to nblocks - 1 do
        let lo = b * block_keys and hi = min n ((b + 1) * block_keys) in
        let body = encode_block buf keys lo hi in
        let header =
          Printf.sprintf "%d %08x %d\n" (String.length body)
            (Crc32.digest body) (hi - lo)
        in
        index.(b) <- (keys.(lo), !offset);
        output_string oc header;
        output_string oc body;
        offset := !offset + String.length header + String.length body
      done);
  Array.iter
    (fun k ->
      let h1, h2 = key_hashes k in
      ignore (Bloom.add_mem bloom h1 h2))
    keys;
  { file; count = n; bloom; index; chan = None; cached_block = None }

(* Re-derive a run's bloom and index by scanning its file, validating
   every block CRC on the way — the resume path. *)
let scan_run file =
  let ic =
    try open_in_bin file
    with Sys_error msg -> raise (Corrupt msg)
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let header = try input_line ic with End_of_file -> raise (Corrupt (file ^ ": empty")) in
  let n, nblocks =
    match String.split_on_char ' ' header with
    | [ m; n; b ] when String.equal m magic -> (
        match (int_of_string_opt n, int_of_string_opt b) with
        | Some n, Some b when n >= 0 && b >= 0 -> (n, b)
        | _ -> raise (Corrupt (file ^ ": bad header")))
    | _ -> raise (Corrupt (file ^ ": bad magic"))
  in
  let bloom = Bloom.create ~bits:(10 * max n 1) in
  let index = Array.make (max nblocks 1) ("", 0) in
  let total = ref 0 in
  for b = 0 to nblocks - 1 do
    let offset = pos_in ic in
    let bh = try input_line ic with End_of_file -> raise (Corrupt (file ^ ": truncated")) in
    let blen, crc, count =
      match String.split_on_char ' ' bh with
      | [ l; c; k ] -> (
          match
            (int_of_string_opt l, int_of_string_opt ("0x" ^ c),
             int_of_string_opt k)
          with
          | Some l, Some c, Some k when l >= 0 && k >= 0 -> (l, c, k)
          | _ -> raise (Corrupt (file ^ ": bad block header")))
      | _ -> raise (Corrupt (file ^ ": bad block header"))
    in
    let body = really_input_string ic blen in
    if Crc32.digest body <> crc then
      raise (Corrupt (file ^ ": block CRC mismatch"));
    let keys = decode_block body count in
    if count > 0 then index.(b) <- (keys.(0), offset);
    Array.iter
      (fun k ->
        let h1, h2 = key_hashes k in
        ignore (Bloom.add_mem bloom h1 h2))
      keys;
    total := !total + count
  done;
  if !total <> n then raise (Corrupt (file ^ ": key count mismatch"));
  {
    file;
    count = n;
    bloom;
    index = (if nblocks = 0 then [||] else index);
    chan = None;
    cached_block = None;
  }

(* --- probing ---------------------------------------------------------------- *)

let run_channel r =
  match r.chan with
  | Some ic -> ic
  | None ->
      let ic = open_in_bin r.file in
      r.chan <- Some ic;
      ic

let read_block r offset =
  match r.cached_block with
  | Some (o, keys) when o = offset -> keys
  | _ ->
      let ic = run_channel r in
      seek_in ic offset;
      let bh = try input_line ic with End_of_file -> raise (Corrupt (r.file ^ ": truncated")) in
      let blen, crc, count =
        match String.split_on_char ' ' bh with
        | [ l; c; k ] -> (
            match
              (int_of_string_opt l, int_of_string_opt ("0x" ^ c),
               int_of_string_opt k)
            with
            | Some l, Some c, Some k when l >= 0 && k >= 0 -> (l, c, k)
            | _ -> raise (Corrupt (r.file ^ ": bad block header")))
        | _ -> raise (Corrupt (r.file ^ ": bad block header"))
      in
      let body = really_input_string ic blen in
      if Crc32.digest body <> crc then
        raise (Corrupt (r.file ^ ": block CRC mismatch"));
      let keys = decode_block body count in
      r.cached_block <- Some (offset, keys);
      keys

(* Greatest block whose first key is <= [key], by binary search. *)
let block_for r key =
  let lo = ref 0 and hi = ref (Array.length r.index - 1) in
  if !hi < 0 || compare key (fst r.index.(0)) < 0 then None
  else begin
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if compare (fst r.index.(mid)) key <= 0 then lo := mid else hi := mid - 1
    done;
    Some (snd r.index.(!lo))
  end

let run_mem t r key =
  let h1, h2 = key_hashes key in
  if not (Bloom.mem r.bloom h1 h2) then begin
    t.bloom_skips <- t.bloom_skips + 1;
    false
  end
  else
    match block_for r key with
    | None -> false
    | Some offset ->
        let keys = read_block r offset in
        let rec scan i =
          if i >= Array.length keys then false
          else
            let c = compare keys.(i) key in
            if c = 0 then true else if c > 0 then false else scan (i + 1)
        in
        scan 0

let mem_locked t key =
  Hashtbl.mem t.hot key || List.exists (fun r -> run_mem t r key) t.runs

let flush_locked t =
  if Hashtbl.length t.hot > 0 then begin
    let keys = Array.make (Hashtbl.length t.hot) "" in
    let i = ref 0 in
    Hashtbl.iter
      (fun k () ->
        keys.(!i) <- k;
        incr i)
      t.hot;
    Array.sort compare keys;
    let r = write_run t keys in
    t.runs <- r :: t.runs;
    t.spilled_keys <- t.spilled_keys + Array.length keys;
    Hashtbl.reset t.hot
  end

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let mem t key =
  with_lock t @@ fun () ->
  t.probes <- t.probes + 1;
  mem_locked t key

let add t key =
  with_lock t @@ fun () ->
  t.probes <- t.probes + 1;
  if mem_locked t key then false
  else begin
    Hashtbl.add t.hot key ();
    if Hashtbl.length t.hot >= t.threshold then flush_locked t;
    true
  end

let flush t = with_lock t (fun () -> flush_locked t)
let hot_size t = with_lock t @@ fun () -> Hashtbl.length t.hot

let total t =
  with_lock t @@ fun () -> Hashtbl.length t.hot + t.spilled_keys

let stats t =
  with_lock t @@ fun () ->
  {
    st_hot = Hashtbl.length t.hot;
    st_runs = List.length t.runs;
    st_spilled_keys = t.spilled_keys;
    st_probes = t.probes;
    st_bloom_skips = t.bloom_skips;
    st_disk_bytes =
      List.fold_left
        (fun a r ->
          a + (try (Unix.stat r.file).Unix.st_size with Unix.Unix_error _ -> 0))
        0 t.runs;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d hot key(s), %d run(s) on disk (%d key(s), %d byte(s)), %d probe(s), \
     %d bloom skip(s)"
    s.st_hot s.st_runs s.st_spilled_keys s.st_disk_bytes s.st_probes
    s.st_bloom_skips

(* --- snapshot state --------------------------------------------------------- *)

type state = {
  x_hot : string array;
  x_runs : string list;  (* run file basenames, newest first *)
}

let export t =
  with_lock t @@ fun () ->
  let hot = Array.make (Hashtbl.length t.hot) "" in
  let i = ref 0 in
  Hashtbl.iter
    (fun k () ->
      hot.(!i) <- k;
      incr i)
    t.hot;
  { x_hot = hot; x_runs = List.map (fun r -> Filename.basename r.file) t.runs }

let import ~dir ~threshold s =
  if threshold < 1 then invalid_arg "Spill_store.import: threshold must be >= 1";
  mkdir_p dir;
  let runs =
    List.map (fun base -> scan_run (Filename.concat dir base)) s.x_runs
  in
  (* Runs flushed after the snapshot was taken are orphans: their keys
     were still in the snapshot's hot tier (or will be re-explored), so
     keeping the files would only leak disk. *)
  let listed = List.map Filename.basename s.x_runs in
  Array.iter
    (fun f ->
      if is_run_file f && not (List.mem f listed) then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  let next_run =
    List.fold_left
      (fun a base ->
        match int_of_string_opt (String.sub base 4 6) with
        | Some i -> max a (i + 1)
        | None -> a)
      0 listed
  in
  let hot = Hashtbl.create (max 4096 (Array.length s.x_hot)) in
  Array.iter (fun k -> Hashtbl.replace hot k ()) s.x_hot;
  {
    dir;
    threshold;
    lock = Mutex.create ();
    hot;
    runs;
    next_run;
    spilled_keys = List.fold_left (fun a r -> a + r.count) 0 runs;
    probes = 0;
    bloom_skips = 0;
  }

let close t =
  with_lock t @@ fun () ->
  List.iter
    (fun r ->
      match r.chan with
      | Some ic ->
          close_in_noerr ic;
          r.chan <- None
      | None -> ())
    t.runs
