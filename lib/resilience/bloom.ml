(* Bit-set Bloom filter with double hashing: probe i lands on
   h1 + i*(h2|1), all modulo the (power-of-two) size. *)

type t = { bits : int; data : Bytes.t; mutable ones : int }

let rec pow2_at_least n v = if v >= n then v else pow2_at_least n (v * 2)

let create ~bits =
  let bits = pow2_at_least (max bits 4096) 4096 in
  { bits; data = Bytes.make (bits / 8) '\000'; ones = 0 }

let probes = 4

let add_mem t h1 h2 =
  let mask = t.bits - 1 in
  let step = h2 lor 1 in
  let all_set = ref true in
  for i = 0 to probes - 1 do
    let bit = (h1 + (i * step)) land max_int land mask in
    let byte = bit lsr 3 and off = bit land 7 in
    let b = Char.code (Bytes.get t.data byte) in
    if b land (1 lsl off) = 0 then begin
      all_set := false;
      t.ones <- t.ones + 1;
      Bytes.set t.data byte (Char.chr (b lor (1 lsl off)))
    end
  done;
  !all_set

let mem t h1 h2 =
  let mask = t.bits - 1 in
  let step = h2 lor 1 in
  let rec probe i =
    if i >= probes then true
    else
      let bit = (h1 + (i * step)) land max_int land mask in
      let byte = bit lsr 3 and off = bit land 7 in
      if Char.code (Bytes.get t.data byte) land (1 lsl off) = 0 then false
      else probe (i + 1)
  in
  probe 0

let bits t = t.bits
let ones t = t.ones

type state = { s_bits : int; s_data : Bytes.t }

let export t = { s_bits = t.bits; s_data = Bytes.copy t.data }

let import s =
  if s.s_bits < 8 || s.s_bits land (s.s_bits - 1) <> 0 then
    invalid_arg "Bloom.import: bit count is not a power of two";
  if Bytes.length s.s_data <> s.s_bits / 8 then
    invalid_arg "Bloom.import: data length does not match bit count";
  let ones = ref 0 in
  Bytes.iter
    (fun c ->
      let b = ref (Char.code c) in
      while !b <> 0 do
        ones := !ones + (!b land 1);
        b := !b lsr 1
      done)
    s.s_data;
  { bits = s.s_bits; data = Bytes.copy s.s_data; ones = !ones }
