(* The batch supervisor: a pool of forked workers under one event loop.

   Process architecture: the supervisor forks one worker process per job
   attempt (never more than [cfg.workers] in flight) and does no
   verification itself.  A worker computes one verdict, writes it to a
   CRC-framed result file (atomic install), and [Unix._exit]s — it never
   touches the parent's channels, cache, or checkpoint.  All parent-side
   state transitions happen in one thread, in the reap/dispatch loop, so
   there is no locking anywhere.

   The failure matrix the loop implements:

     worker exit 0 + valid result file   -> verdict (cache + JSONL)
     worker exit 0 + missing/corrupt file-> failed attempt (torn write)
     worker exit 9                       -> cancelled (drain): job stays
                                            pending for the resume
     any other exit / any signal         -> failed attempt
     wall-clock past cfg.timeout_s       -> SIGKILL, failed attempt
     attempts exhausted                  -> quarantine with stderr tail

   Failed attempts requeue with exponential backoff plus deterministic
   jitter; quarantined jobs keep the batch going (exit code 4, not a
   crash).  SIGTERM/SIGINT (or the deadline) starts a drain: dispatch
   stops, in-flight workers get SIGTERM (their exploration stops at a
   safe point via the rcfg cancel hook), and the queue state is
   checkpointed so --resume picks up exactly the unfinished jobs. *)

type cfg = {
  out : string option;
  workers : int;
  timeout_s : float;
  retries : int;
  backoff_ms : int;
  cache : Verdict_cache.t;
  checkpoint : string option;
  resume : string option;
  deadline_s : float option;
  model : Worker.model;
  fuel : int option;
  spill_dir : string option;
  mem_budget : int option;
  log : string -> unit;
  verbose : bool;
}

let default_cfg =
  {
    out = None;
    workers = 4;
    timeout_s = 10.;
    retries = 3;
    backoff_ms = 100;
    cache = Verdict_cache.in_memory ();
    checkpoint = None;
    resume = None;
    deadline_s = None;
    model = Worker.Drf0;
    fuel = None;
    spill_dir = None;
    mem_budget = None;
    log = ignore;
    verbose = false;
  }

type quarantined = {
  q_job : Job.t;
  q_attempts : int;
  q_reason : string;
  q_stderr : string;
}

type summary = {
  total : int;
  completed : int;
  ok : int;
  violations : int;
  quarantined : quarantined list;
  quarantined_total : int;
  pending : int;
  served_from_cache : int;
  sym_dedup : int;
  cache : Verdict_cache.stats;
  suspended : bool;
  wall_s : float;
}

exception Resume_rejected of string

let exit_code s =
  if s.suspended then 3
  else if s.violations > 0 then 1
  else if s.quarantined_total > 0 then 4
  else 0

(* Deterministic jitter: a SplitMix64-style scramble of (job_id,
   attempt), reduced mod base.  Same schedule on every run — a retry
   storm never synchronizes, and a reproduction run backs off exactly
   like the original. *)
let backoff_delay_ms ~base ~attempt ~job_id =
  if base <= 0 then 0
  else
    let z =
      Int64.mul
        (Int64.add
           (Int64.mul (Int64.of_int job_id) 0x9E3779B97F4A7C15L)
           (Int64.of_int attempt))
        0xBF58476D1CE4E5B9L
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let jitter = Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int base)) in
    (base * (1 lsl min (attempt - 1) 16)) + jitter

(* JSONL rendering and the fork-per-attempt machinery live in [Runner],
   shared with the socket daemon; this file keeps only the scheduling
   policy (queues, retries, drain, checkpoint). *)

let quarantine_record q ~ms =
  Runner.quarantine_record q.q_job ~reason:q.q_reason ~stderr:q.q_stderr
    ~attempts:q.q_attempts ~ms

(* --- checkpoint -------------------------------------------------------------- *)

let ckpt_kind = "weakord.batch"

type ckpt = {
  c_fingerprint : string;
  c_model : string;
  c_emitted : int list;  (** final records already streamed *)
  c_attempts : (int * int) list;  (** unfinished jobs: id, failed attempts *)
  c_completed : int;
  c_violations : int;
  c_quarantined : int;
}

let write_ckpt path ck =
  Snapshot.write_file path
    (Snapshot.frame ~kind:ckpt_kind
       ~meta:
         (Printf.sprintf "%d emitted, %d quarantined"
            (List.length ck.c_emitted) ck.c_quarantined)
       ~payload:(Marshal.to_string ck []))

let load_ckpt path =
  match Snapshot.load path with
  | Error (e, _) ->
      raise
        (Resume_rejected
           (Printf.sprintf "%s: %s" path (Snapshot.error_string e)))
  | Ok { Snapshot.container = c; recovered } ->
      if not (String.equal c.Snapshot.kind ckpt_kind) then
        raise
          (Resume_rejected
             (Printf.sprintf "%s holds a %S snapshot, expected %S" path
                c.Snapshot.kind ckpt_kind));
      (match (Marshal.from_string c.Snapshot.payload 0 : ckpt) with
      | ck -> (ck, recovered)
      | exception (Failure _ | Invalid_argument _) ->
          raise
            (Resume_rejected
               (path ^ ": checkpoint payload does not unmarshal")))

(* --- job materialization ----------------------------------------------------- *)

type jstate = {
  job : Job.t;
  prog : (Prog.t * string * string) option;
      (** program + cache key + symmetry key; [None] = wedge *)
  mat_error : string option;
  mutable attempts : int;
  mutable eligible_at : float;
  mutable last_reason : string;
  mutable last_stderr : string;
}

let materialize model (j : Job.t) =
  let m = Runner.materialize ~model j in
  {
    job = j;
    prog = m.Runner.m_prog;
    mat_error = m.Runner.m_error;
    attempts = 0;
    eligible_at = 0.;
    last_reason = "";
    last_stderr = "";
  }

(* --- the supervisor loop ----------------------------------------------------- *)

type running = {
  r_js : jstate;
  r_pid : int;
  r_started : float;
  r_result : string;
  r_stderr : string;
  mutable r_timed_out : bool;
  mutable r_term_sent : bool;
}

let run cfg jobs =
  if cfg.workers < 1 then invalid_arg "Batch.run: workers must be >= 1";
  if cfg.retries < 1 then invalid_arg "Batch.run: retries must be >= 1";
  let t0 = Unix.gettimeofday () in
  let fingerprint = Job.fingerprint jobs in
  let model_name = Worker.model_name cfg.model in
  (* Resume: restore the emitted set and attempt counters, after
     validating that the checkpoint matches this job list and model. *)
  let resumed =
    match cfg.resume with
    | None -> None
    | Some path ->
        let ck, recovered = load_ckpt path in
        if not (String.equal ck.c_fingerprint fingerprint) then
          raise
            (Resume_rejected
               "checkpoint was taken over a different job list (fingerprints \
                differ)");
        if not (String.equal ck.c_model model_name) then
          raise
            (Resume_rejected
               (Printf.sprintf
                  "checkpoint was taken under model %s, this run uses %s"
                  ck.c_model model_name));
        cfg.log
          (Printf.sprintf
             "resuming batch: %d/%d job(s) already finished%s"
             (List.length ck.c_emitted) (List.length jobs)
             (if recovered then
                " (recovered from the last-good .prev generation)"
              else ""));
        Some ck
  in
  let emitted = Hashtbl.create 1024 in
  (match resumed with
  | Some ck -> List.iter (fun id -> Hashtbl.replace emitted id ()) ck.c_emitted
  | None -> ());
  let states =
    List.filter_map
      (fun j ->
        if Hashtbl.mem emitted j.Job.id then None
        else Some (materialize cfg.model j))
      jobs
  in
  (match resumed with
  | Some ck ->
      List.iter
        (fun js ->
          match List.assoc_opt js.job.Job.id ck.c_attempts with
          | Some a -> js.attempts <- a
          | None -> ())
        states
  | None -> ());
  (* Output stream: append mode, so an interrupted run's file plus its
     resume's file concatenate into the full result set. *)
  let out_ch, close_out_ch =
    match cfg.out with
    | None -> (Stdlib.stdout, fun () -> flush Stdlib.stdout)
    | Some p ->
        let ch = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 p in
        (ch, fun () -> close_out ch)
  in
  let emit line =
    output_string out_ch line;
    output_char out_ch '\n';
    flush out_ch
  in
  (* Scratch area for result files and stderr captures. *)
  let scratch =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "weakord-batch-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let result_path id = Filename.concat scratch (Printf.sprintf "job%d.result" id) in
  let stderr_path id = Filename.concat scratch (Printf.sprintf "job%d.stderr" id) in
  (* Drain signal: first SIGTERM/SIGINT flips the flag; the loop does
     the rest at a safe point.  Handlers are restored before we return
     (the in-process test harness runs many batches per process). *)
  let drain = ref false in
  let install s = Sys.signal s (Sys.Signal_handle (fun _ -> drain := true)) in
  let old_term = install Sys.sigterm in
  let old_int = install Sys.sigint in
  let restore () =
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int
  in
  (* Mutable tallies; prior-run numbers fold in so exit codes reflect
     the whole batch, not just the post-resume tail. *)
  let completed = ref 0 and ok = ref 0 and violations = ref 0 in
  let served_from_cache = ref 0 in
  let sym_dedup = ref 0 in
  let quarantined = ref [] in
  let prior =
    match resumed with
    | Some ck -> (ck.c_completed, ck.c_violations, ck.c_quarantined)
    | None -> (0, 0, 0)
  in
  let ready : jstate Queue.t = Queue.create () in
  let delayed : jstate list ref = ref [] in
  List.iter (fun js -> Queue.add js ready) states;
  let running : running list ref = ref [] in
  let last_ckpt = ref 0. in
  let save_ckpt ~force () =
    match cfg.checkpoint with
    | None -> ()
    | Some path ->
        let now = Unix.gettimeofday () in
        if force || now -. !last_ckpt > 0.25 then begin
          last_ckpt := now;
          let unfinished =
            List.filter
              (fun j -> not (Hashtbl.mem emitted j.Job.id))
              jobs
          in
          let attempts_of id =
            let find l = List.find_opt (fun js -> js.job.Job.id = id) l in
            match
              ( find (List.of_seq (Queue.to_seq ready)),
                find !delayed,
                List.find_opt (fun r -> r.r_js.job.Job.id = id) !running )
            with
            | Some js, _, _ | _, Some js, _ -> js.attempts
            | _, _, Some r -> r.r_js.attempts
            | _ -> 0
          in
          let pc, pv, pq = prior in
          write_ckpt path
            {
              c_fingerprint = fingerprint;
              c_model = model_name;
              c_emitted =
                Hashtbl.fold (fun id () acc -> id :: acc) emitted []
                |> List.sort compare;
              c_attempts =
                List.map (fun j -> (j.Job.id, attempts_of j.Job.id)) unfinished;
              c_completed = pc + !completed;
              c_violations = pv + !violations;
              c_quarantined = pq + List.length !quarantined;
            }
        end
  in
  let mark_emitted id =
    Hashtbl.replace emitted id ();
    save_ckpt ~force:false ()
  in
  let finish_verdict js v ~cached ~ms =
    (match js.prog with
    | Some (_, key, skey) ->
        Verdict_cache.add cfg.cache key v;
        Verdict_cache.add cfg.cache skey v
    | None -> ());
    incr completed;
    if v.Verdict_cache.v_violation then begin
      incr violations;
      cfg.log
        (Printf.sprintf "VIOLATION %s: %d outcome(s) beyond SC under %s"
           (Job.label js.job)
           (List.length v.Verdict_cache.v_outcomes)
           model_name)
    end
    else incr ok;
    if cached then incr served_from_cache;
    emit
      (Runner.verdict_record js.job v ~cached ~attempts:(js.attempts + 1) ~ms);
    mark_emitted js.job.Job.id
  in
  let quarantine js ~ms =
    let q =
      {
        q_job = js.job;
        q_attempts = js.attempts;
        q_reason = js.last_reason;
        q_stderr = js.last_stderr;
      }
    in
    quarantined := !quarantined @ [ q ];
    cfg.log
      (Printf.sprintf "QUARANTINED %s after %d attempt(s): %s"
         (Job.label js.job) js.attempts js.last_reason);
    emit (quarantine_record q ~ms);
    mark_emitted js.job.Job.id
  in
  let requeue js =
    let delay =
      backoff_delay_ms ~base:cfg.backoff_ms ~attempt:js.attempts
        ~job_id:js.job.Job.id
    in
    js.eligible_at <- Unix.gettimeofday () +. (float_of_int delay /. 1000.);
    delayed := !delayed @ [ js ];
    if cfg.verbose then
      cfg.log
        (Printf.sprintf "retrying %s in %d ms (attempt %d/%d: %s)"
           (Job.label js.job) delay (js.attempts + 1) cfg.retries
           js.last_reason)
  in
  let attempt_failed r reason =
    let js = r.r_js in
    js.attempts <- js.attempts + 1;
    js.last_reason <- reason;
    js.last_stderr <- Runner.read_tail r.r_stderr;
    if js.attempts >= cfg.retries then
      quarantine js ~ms:((Unix.gettimeofday () -. r.r_started) *. 1000.)
    else requeue js
  in
  let handle_exit r status =
    let ms = (Unix.gettimeofday () -. r.r_started) *. 1000. in
    match status with
    | Unix.WEXITED 0 -> (
        match Runner.read_result r.r_result with
        | Some v -> finish_verdict r.r_js v ~cached:false ~ms
        | None ->
            attempt_failed r "worker exited 0 but left no valid result file")
    | Unix.WEXITED 9 ->
        (* Drain cancellation: not a failure — the job goes back to the
           queue untouched and lands in the resume checkpoint. *)
        if cfg.verbose then
          cfg.log (Printf.sprintf "%s cancelled at a safe point" (Job.label r.r_js.job));
        Queue.add r.r_js ready
    | Unix.WEXITED n -> attempt_failed r (Printf.sprintf "worker exited %d" n)
    | Unix.WSIGNALED _ when r.r_timed_out ->
        attempt_failed r
          (Printf.sprintf "timeout: SIGKILL after %.1fs" cfg.timeout_s)
    | Unix.WSIGNALED s ->
        attempt_failed r
          (Printf.sprintf "worker killed by %s" (Runner.signal_name s))
    | Unix.WSTOPPED _ ->
        (* Not requested (no WUNTRACED); treat defensively. *)
        (try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ());
        attempt_failed r "worker stopped unexpectedly"
  in
  let exec =
    {
      Runner.x_model = cfg.model;
      x_fuel = cfg.fuel;
      x_spill_dir = cfg.spill_dir;
      x_mem_budget = cfg.mem_budget;
    }
  in
  let spawn js =
    let rp = result_path js.job.Job.id and sp = stderr_path js.job.Job.id in
    flush out_ch;
    let pid =
      Runner.spawn exec ~result_path:rp ~stderr_path:sp js.job
        { Runner.m_prog = js.prog; m_error = js.mat_error }
    in
    if cfg.verbose then
      cfg.log
        (Printf.sprintf "worker %d started %s (attempt %d/%d)" pid
           (Job.label js.job) (js.attempts + 1) cfg.retries);
    running :=
      {
        r_js = js;
        r_pid = pid;
        r_started = Unix.gettimeofday ();
        r_result = rp;
        r_stderr = sp;
        r_timed_out = false;
        r_term_sent = false;
      }
      :: !running
  in
  let deadline_at = Option.map (fun d -> t0 +. d) cfg.deadline_s in
  let drain_announced = ref false in
  let finally () =
    restore ();
    close_out_ch ();
    (* Best-effort scratch cleanup; captured stderr of quarantined jobs
       already lives in their records. *)
    (match Sys.readdir scratch with
    | files ->
        Array.iter
          (fun f -> try Sys.remove (Filename.concat scratch f) with Sys_error _ -> ())
          files;
        (try Unix.rmdir scratch with Unix.Unix_error _ -> ())
    | exception Sys_error _ -> ())
  in
  (try
     let continue () =
       !running <> []
       || ((not !drain)
          && ((not (Queue.is_empty ready)) || !delayed <> []))
     in
     while continue () do
       let now = Unix.gettimeofday () in
       (* Deadline is just a self-inflicted drain. *)
       (match deadline_at with
       | Some d when (not !drain) && now > d ->
           drain := true;
           cfg.log "batch deadline reached; draining"
       | _ -> ());
       (* Drain: forward SIGTERM once to every in-flight worker. *)
       if !drain then begin
         if not !drain_announced then begin
           drain_announced := true;
           cfg.log
             (Printf.sprintf
                "draining: %d worker(s) in flight, %d job(s) queued"
                (List.length !running)
                (Queue.length ready + List.length !delayed))
         end;
         List.iter
           (fun r ->
             if not r.r_term_sent then begin
               r.r_term_sent <- true;
               try Unix.kill r.r_pid Sys.sigterm
               with Unix.Unix_error _ -> ()
             end)
           !running
       end;
       (* Timeouts: SIGKILL, then let the reaper classify it. *)
       List.iter
         (fun r ->
           if (not r.r_timed_out) && now -. r.r_started > cfg.timeout_s
           then begin
             r.r_timed_out <- true;
             try Unix.kill r.r_pid Sys.sigkill
             with Unix.Unix_error _ -> ()
           end)
         !running;
       (* Reap. *)
       let progressed = ref false in
       let still = ref [] in
       List.iter
         (fun r ->
           match Unix.waitpid [ Unix.WNOHANG ] r.r_pid with
           | 0, _ -> still := r :: !still
           | _, status ->
               progressed := true;
               handle_exit r status
           | exception Unix.Unix_error (Unix.EINTR, _, _) ->
               still := r :: !still)
         !running;
       running := !still;
       (* Promote delayed jobs whose backoff expired. *)
       let due, later =
         List.partition (fun js -> js.eligible_at <= now) !delayed
       in
       delayed := later;
       List.iter (fun js -> Queue.add js ready) due;
       (* Dispatch. *)
       while
         (not !drain)
         && List.length !running < cfg.workers
         && not (Queue.is_empty ready)
       do
         progressed := true;
         let js = Queue.pop ready in
         match js.mat_error with
         | Some e ->
             (* Unreproducible source: retrying cannot help — straight
                to quarantine, batch keeps going. *)
             js.last_reason <- "unusable job: " ^ e;
             js.attempts <- cfg.retries;
             quarantine js ~ms:0.
         | None -> (
             match js.prog with
             | Some (_, key, skey) -> (
                 match Verdict_cache.find cfg.cache key with
                 | Some v -> finish_verdict js v ~cached:true ~ms:0.
                 | None -> (
                     (* Exact text never verified — but a renaming of it
                        may have been: the symmetry key answers with the
                        class representative's verdict (identical up to
                        the names inside v_outcomes strings). *)
                     match Verdict_cache.find cfg.cache skey with
                     | Some v ->
                         incr sym_dedup;
                         finish_verdict js v ~cached:true ~ms:0.
                     | None -> spawn js))
             | None -> (* wedge: never cached *) spawn js)
       done;
       if not !progressed then (
         try Unix.sleepf 0.01 with Unix.Unix_error _ -> ())
     done;
     save_ckpt ~force:true ()
   with e ->
     (try save_ckpt ~force:true () with _ -> ());
     finally ();
     raise e);
  finally ();
  let pending =
    Queue.length ready + List.length !delayed + List.length !running
  in
  let pc, pv, pq = prior in
  {
    total = List.length jobs;
    completed = pc + !completed;
    ok = !ok;
    violations = pv + !violations;
    quarantined = !quarantined;
    quarantined_total = pq + List.length !quarantined;
    pending;
    served_from_cache = !served_from_cache;
    sym_dedup = !sym_dedup;
    cache = Verdict_cache.stats cfg.cache;
    suspended = !drain && pending > 0;
    wall_s = Unix.gettimeofday () -. t0;
  }

let pp_summary ppf s =
  let c = s.cache in
  Format.fprintf ppf
    "batch: %d job(s): %d finished (%d ok, %d violation(s), %d quarantined, \
     %d pending), %d served from cache (%d via symmetry, %.0f%%)@\n\
     cache: %d hit(s), %d miss(es), %d corrupt record(s) skipped, %d \
     appended, %d entrie(s)@\n\
     wall %.1fs, %.1f job(s)/s%s"
    s.total s.completed s.ok s.violations s.quarantined_total s.pending
    s.served_from_cache s.sym_dedup
    (if s.completed > 0 then
       100. *. float_of_int s.sym_dedup /. float_of_int s.completed
     else 0.)
    c.Verdict_cache.hits c.Verdict_cache.misses
    c.Verdict_cache.corrupt_skipped c.Verdict_cache.appended
    c.Verdict_cache.entries s.wall_s
    (if s.wall_s > 0. then float_of_int s.completed /. s.wall_s else 0.)
    (if s.suspended then " — SUSPENDED (resume with --resume)" else "")
