(** The corpus soundness fuzzer behind [weakord fuzz]: a three-way
    differential oracle over generated programs.

    Three independent implementations of the paper's semantics coexist
    in this repository — the operational machines ([lib/machine]), the
    axiomatic models ([lib/axiomatic]), and the cycle-accurate protocol
    simulator ([lib/sim]).  Each was written against the paper, not
    against the others, so agreement over a large generated corpus is
    real evidence of soundness and any disagreement is a bug somewhere.
    This module streams a seed range through all three and compares.

    {1 The oracle relations}

    Per program, mirroring the hand-picked corpus suite in
    [test/test_differential.ml]:

    - the axiomatic SC outcome set {e equals} the operational SC set;
    - SC is a {e subset} of every machine's outcome set (weakening a
      machine only ever adds behaviours);
    - the write-buffer machine stays within the TSO axioms, and the
      def1/def2 machines within their axiomatic renderings (envelopes);
    - the machine hierarchy [def1 ⊆ def2 ⊆ def2-rs] holds;
    - the paper's theorem: a DRF0-obeying program {e appears SC} on
      def1 and def2; the Section-6 refinement: a DRF1-obeying program
      appears SC on def2-rs and rc;
    - the simulator's deterministic final state is SC-allowed whenever
      its policy guarantees it (always for the [sc] policy; gated on
      DRF0 for [def1]/[def2] and on DRF1 for [def2-rs]).

    Blocking programs ([Await]) may legally wedge the simulator — its
    fixed timing can miss an await's satisfying window even when some
    SC interleaving completes — so wedges on blocking programs are
    counted, not flagged; a wedge on a straight-line program is a
    disagreement like any other.

    {1 Quarantine}

    Each disagreement is written to the quarantine directory as
    [seedN.litmus] (the full program source) plus [seedN.report]
    carrying the failed relation, the diverging outcome sets, the
    generator flag set in effect (so a dossier produced under a
    non-default [gen] profile replays under that profile) and a
    seed-exact reproduction recipe ([weakord gen --seed N <flags>] and
    the one-seed [weakord fuzz] rerun) — the generator's determinism
    contract makes the seed a complete repro.  When shrinking is on
    (the default), the dossier also ships [seedN.min.litmus], a
    {!Shrink.ddmin}-minimized reproducer re-verified against the same
    failing relation.

    {1 The per-seed oracle}

    {!check_prog} and {!check_seed} expose one seed's worth of checks
    as a pure-ish function (no quarantine, no logging, no campaign
    state) so the sharded fleet supervisor ({!Fleet}) can run the exact
    same oracle inside fork-isolated shard workers. *)

type cfg = {
  config : Litmus_gen.config;  (** generator shape for every seed *)
  machines : Machines.t list;  (** operational machines to sweep *)
  sim : bool;  (** run the simulator leg *)
  sim_limit : int;  (** simulator event budget per run *)
  quarantine : string option;  (** directory for disagreement dossiers *)
  shrink : bool;
      (** ddmin-minimize each disagreement's program before writing its
          dossier (re-running the oracle as the shrink predicate) *)
  deadline_s : float option;
      (** wall-clock budget; on expiry the run suspends and reports
          the first unchecked seed *)
  progress : int;  (** log a progress line every N programs; 0 = off *)
  log : string -> unit;  (** log sink *)
}

val default_cfg : cfg
(** Default generator config, all machines, simulator on with a
    200k-event budget, shrinking on, no quarantine dir, silent. *)

type disagreement = {
  d_seed : int;  (** the generator seed — the complete repro *)
  d_check : string;  (** which oracle relation failed *)
  d_detail : string;  (** the diverging sets / final state *)
  d_quarantined : string option;  (** report path when a dir was given *)
}

type seed_report = {
  sr_checks : int;  (** oracle comparisons made on this seed *)
  sr_disagreements : (string * string) list;
      (** failed relations as [(check, detail)] pairs, in check order *)
  sr_sim_runs : int;
  sr_sim_wedged : int;  (** legal wedges (blocking program) *)
  sr_sim_skipped : int;  (** [1] when the program has no complete run *)
  sr_states : int;  (** machine states expanded *)
}
(** One seed's oracle outcome — the unit the fleet's shard workers
    accumulate and ship back to their supervisor. *)

type summary = {
  programs : int;  (** seeds generated and checked *)
  checks : int;  (** individual oracle comparisons *)
  disagreements : disagreement list;  (** in seed order *)
  sim_runs : int;  (** simulator executions across policies *)
  sim_wedged : int;  (** legal wedges on blocking programs *)
  sim_skipped : int;  (** programs with no complete execution *)
  states_total : int;
      (** machine states expanded across the corpus — numerator of
          the [states_per_sec] throughput headline tracked in
          [BENCH_*.json] ([kind:"service"] rows) *)
  wall_s : float;
  suspended : bool;  (** the deadline cut the run short *)
  next_seed : int;  (** first unchecked seed (resume point) *)
}

val check_prog : cfg -> Prog.t -> seed_report
(** [check_prog cfg prog] runs every oracle relation on one program and
    returns the tallies.  No quarantine, no shrinking, no logging —
    side-effect-free campaign-wise (it explores machines and runs the
    simulator, but touches no files and no [cfg] sinks). *)

val check_seed : cfg -> int -> Prog.t * seed_report
(** [check_seed cfg seed] generates program [seed] under [cfg.config]
    and {!check_prog}s it. *)

val still_fails : cfg -> check:string -> Prog.t -> bool
(** [still_fails cfg ~check prog] — does relation [check] still fail on
    [prog] under a probe copy of [cfg] (quarantine, shrinking and
    logging disabled)?  This is the shrink predicate used for
    disagreement minimization; exposed so the fleet can minimize
    disagreements reported by its shards. *)

val quarantine_seed :
  ?minimal:Prog.t ->
  cfg -> seed:int -> prog:Prog.t -> check:string -> detail:string ->
  string option
(** Write the disagreement dossier for [seed] ([seedN.litmus] +
    [seedN.report] with the gen-flags line and the repro recipes, plus
    [seedN.min.litmus] when [minimal] is given) into [cfg.quarantine],
    creating the directory on first use; returns the report path, or
    [None] when no quarantine directory is configured. *)

val run : cfg -> lo:int -> hi:int -> summary
(** [run cfg ~lo ~hi] checks seeds [lo..hi] inclusive.  Keeps going
    past disagreements (a nightly run reports every divergence, not
    just the first); stops early only on the deadline.
    @raise Invalid_argument when [lo > hi]. *)

val exit_code : summary -> int
(** [1] on any disagreement, [3] when suspended by the deadline with
    none found, else [0] — disagreement outranks suspension. *)

val pp_summary : Format.formatter -> summary -> unit
(** Operator summary: corpus size, check count, wedge bookkeeping and
    the states/s headline. *)
