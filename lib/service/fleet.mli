(** The sharded fuzz fleet behind [weakord fleet]: a fault-tolerant
    supervisor driving the three-way differential oracle ({!Fuzz})
    across fork-isolated shard workers, built to survive the failure
    modes a 10^5–10^6-seed nightly campaign actually meets — seeds
    that wedge an engine, workers that crash or get OOM-killed, and
    operators that SIGTERM the whole campaign and expect to resume it
    without losing or double-counting coverage.

    {1 Supervision tree}

    The supervisor partitions the seed range into fixed-size {e work
    units} and keeps at most [shards] workers in flight; each worker is
    a fork running {!Fuzz.check_seed} over its unit's seeds, one at a
    time, reporting progress through a per-spawn heartbeat file (the
    seed it is about to check) and shipping its accumulated
    {!Fuzz.seed_report} tallies back in a CRC-framed result file under
    the {!Runner} worker contract (exit [0] = unit complete, exit [9] =
    drained at a seed boundary with a partial result, exit [10] /
    signal = failed attempt).

    {1 Hang hunting}

    A worker whose heartbeat has not advanced within [hang_timeout_s]
    is presumed wedged on its current seed: the watchdog SIGKILLs it
    and {e bisects} the unit around the suspect seed — the seeds before
    it keep the unit's accumulated progress, the seeds after it become
    a fresh unit, and the suspect itself becomes a single-seed unit
    retried with exponential backoff.  A suspect that keeps hanging
    past [retries] attempts is {e poison}: it is quarantined with a
    dossier ({!Fuzz.quarantine_seed}) carrying a ddmin-minimized
    reproducer ({!Shrink}), and the campaign keeps going (exit code
    [4], matching the batch service's completed-with-quarantine
    contract).  Deaths the watchdog did not cause (a crash, an external
    SIGKILL) requeue the whole unit instead — a transient kill must not
    split units, or an interrupted campaign's records would not match
    an uninterrupted one's.

    {1 Drain and resume}

    SIGTERM/SIGINT, the wall-clock deadline or the supervisor memory
    budget start a drain: shards get SIGTERM, stop at the next seed
    boundary and ship partial results; the supervisor merges each
    unit's [next_seed] frontier and accumulated tallies into a
    CRC-validated [weakord.fleet] checkpoint and reports exit [3].
    [--resume] restores the pending units (frontiers included) after
    validating the campaign fingerprint, so an interrupted+resumed
    campaign emits {e record-identical} output (modulo the volatile
    [attempts]/[ms] trailer) to an uninterrupted run — the chaos suite
    ([test/fleet_chaos.sh]) asserts exactly that.

    {1 Observability}

    Campaign gauges (live shards, unit queue, units done/requeued/
    split, poison and disagreement counts, seeds/sec) are kept in
    {!Obs.Gauge}s and served as one-line JSON over an optional Unix
    socket speaking the daemon wire protocol's [STATS] verb, so an
    operator can watch a nightly campaign with [weakord client]. *)

type cfg = {
  oracle : Fuzz.cfg;
      (** the differential oracle each shard runs; [quarantine] and
          [shrink] govern the supervisor-side dossiers *)
  shards : int;  (** maximum concurrent shard workers *)
  unit_seeds : int;  (** seeds per work unit *)
  hang_timeout_s : float;
      (** per-seed heartbeat budget before the watchdog SIGKILLs *)
  retries : int;  (** hang strikes before a suspect seed is poison *)
  backoff_ms : int;  (** base for suspect-retry exponential backoff *)
  out : string option;  (** JSONL stream (append mode); [None] = stdout *)
  checkpoint : string option;
  resume : string option;
  deadline_s : float option;
  mem_budget : int option;  (** supervisor heap budget, bytes *)
  wedge_seeds : int list;
      (** chaos injection: these seeds spin forever in the shard,
          deterministically exercising the hang-hunting path *)
  stats_socket : string option;  (** serve STATS over this Unix socket *)
  log : string -> unit;
  verbose : bool;
}

val default_cfg : cfg
(** 4 shards, 256-seed units, 30 s hang budget, 3 retries, 100 ms
    backoff base, silent. *)

type poison = {
  p_seed : int;
  p_reason : string;
  p_attempts : int;
  p_report : string option;  (** dossier path when a quarantine dir is set *)
}

type summary = {
  f_units_total : int;
      (** every unit that ever entered the queue — planned plus
          bisection-created, cumulative across resumed runs *)
  f_units_done : int;
  f_units_requeued : int;  (** failed attempts sent back to the queue *)
  f_units_split : int;  (** hang bisections performed *)
  f_pending : int;  (** units not finished (nonzero only when draining) *)
  f_programs : int;
  f_checks : int;
  f_disagreements : int;
  f_sim_runs : int;
  f_sim_wedged : int;
  f_sim_skipped : int;
  f_states : int;
  f_poison : poison list;  (** this run's poisons, in seed order *)
  f_poison_total : int;  (** including resumed-from-checkpoint poisons *)
  f_wall_s : float;
  f_suspended : bool;
}

exception Resume_rejected of string
(** The [--resume] checkpoint is unusable: unreadable, wrong kind, or
    taken over a different campaign (fingerprints differ). *)

val exit_code : summary -> int
(** [3] when suspended (resume to finish), else [1] on any oracle
    disagreement, else [4] when any seed was poisoned, else [0] —
    the batch service's exit-code contract. *)

val run : cfg -> lo:int -> hi:int -> summary
(** Drive the campaign over seeds [lo..hi] inclusive.
    @raise Invalid_argument when [lo > hi], or when [shards],
    [unit_seeds] or [retries] is below [1], or when the stats socket
    cannot be bound
    @raise Resume_rejected when [cfg.resume] names a bad checkpoint. *)

val pp_summary : Format.formatter -> summary -> unit

(** {1 Deterministic internals}

    Exposed for the unit suite: both are pure, and both must stay
    deterministic — the unit plan keys checkpoint resume, and the wedge
    rule doubles as the injected-poison shrink predicate. *)

val units_of_range : lo:int -> hi:int -> unit_seeds:int -> (int * int) list
(** The unit plan: inclusive [(lo, hi)] sub-ranges of [unit_seeds]
    seeds (the last one possibly shorter), covering [lo..hi] exactly. *)

val wedge_fires : wedge_seeds:int list -> seed:int -> Prog.t -> bool
(** The injected-hang rule: fires when [seed] is a wedge seed and the
    program still has at least two instructions — so ddmin against this
    predicate shrinks a generated program to a two-instruction minimal
    reproducer, never to nothing. *)
