(** Shared job-execution machinery under the service front ends.

    Both the one-shot {!Batch} supervisor and the long-lived {!Daemon}
    schedule jobs, but neither verifies anything in-process: every
    attempt runs in a forked worker that computes one verdict, installs
    it atomically into a CRC-framed result file, and [_exit]s.  This
    module is that per-attempt layer — materializing a {!Job.t} into a
    program plus cache keys, forking the worker, reading its result
    back, and rendering the JSONL records both front ends stream — so
    the two supervisors cannot drift apart on exit-status conventions
    or record shapes.

    Scheduling policy (retry queues, backoff, fairness, drain) stays
    with the callers; nothing here blocks or loops.

    {1 Worker exit-status contract}

    A forked worker terminates in exactly one of these ways, and both
    supervisors classify them identically:

    - exit [0] and a valid result file — a verdict; the supervisor
      caches and streams it.
    - exit [0] with a missing or corrupt result file — a torn write;
      counts as a failed attempt.
    - exit [9] — cancelled at a safe point (drain); the job is {e not}
      failed, it returns to the pending queue for the resume.
    - exit [10] — the verification engine raised; the exception text is
      on stderr.  Failed attempt.
    - killed by a signal — [SIGKILL] from the supervisor's timeout, or
      anything else (OOM killer, crash).  Failed attempt. *)

(** {1 Execution parameters} *)

type exec = {
  x_model : Worker.model;  (** synchronization model checked per job *)
  x_fuel : int option;  (** optional exploration fuel bound *)
  x_spill_dir : string option;
      (** root for disk-spilled visited stores; each attempt gets a
          private [jobN/] subdirectory so concurrent workers and
          retries never share run files *)
  x_mem_budget : int option;  (** visited-set memory budget, bytes *)
}
(** What a worker needs beyond the job itself.  One value is built per
    supervisor run and shared by every spawn. *)

(** {1 Materialization} *)

type mat = {
  m_prog : (Prog.t * string * string) option;
      (** program, exact cache key, orbit-canonical symmetry key;
          [None] for wedge jobs (which have no program) and for
          unusable jobs (see [m_error]) *)
  m_error : string option;
      (** why the job cannot run (unknown builtin, parse error,
          unknown machine); retrying cannot help — supervisors send
          such jobs straight to quarantine *)
}
(** The result of turning a job description into something runnable. *)

val materialize : model:Worker.model -> Job.t -> mat
(** [materialize ~model j] resolves [j]'s source (builtin name, litmus
    file, generator seed) into a program and computes both verdict-cache
    keys under [model].  Deterministic; safe to call in the parent
    before forking (generation is pure, file reads happen once). *)

(** {1 The forked worker} *)

val fork_worker : (unit -> unit) -> int
(** [fork_worker child] flushes the parent's [stdout]/[stderr] (so
    buffered bytes are not emitted twice), forks, runs [child] in the
    child process and [_exit 0]s if it returns; the parent gets the
    pid.  The generic fork under {!spawn} and the fleet's shard
    workers — any [child] must honor the exit-status contract above. *)

val redirect_stderr : string -> unit
(** Point the process's [stderr] at a capture file (truncating);
    best-effort, for use inside forked workers before any output. *)

val write_framed : kind:string -> meta:string -> string -> string -> unit
(** [write_framed ~kind ~meta path payload] atomically installs a
    CRC-framed result file — the child half of the result-file
    protocol.  No [fsync] (a torn write is detected, not prevented). *)

val read_framed : kind:string -> string -> string option
(** [read_framed ~kind path] loads a result file and returns its
    payload only when the CRC validates and the snapshot kind matches
    [kind] exactly; [None] on any defect.  The parent half of the
    result-file protocol. *)

val spawn : exec -> result_path:string -> stderr_path:string -> Job.t -> mat -> int
(** [spawn x ~result_path ~stderr_path j m] forks a worker for one
    attempt at [j] and returns its pid.  The child redirects stderr to
    [stderr_path], runs {!Worker.run} (or the wedge spin loop for
    {!Job.Wedge} jobs), writes its verdict to [result_path] via an
    atomic install, and terminates per the exit-status contract above.
    Any stale [result_path] is removed before the fork, and the
    parent's [stdout]/[stderr] channels are flushed so buffered bytes
    are not emitted twice; callers streaming to other channels must
    flush those themselves first. *)

val read_result : string -> Verdict_cache.verdict option
(** [read_result path] loads and validates a worker's result file.
    [None] on any defect — missing file, CRC mismatch, wrong snapshot
    kind, truncation — so a torn write degrades to a retried attempt,
    never a wrong verdict. *)

val read_tail : ?max_bytes:int -> string -> string
(** [read_tail path] returns the trimmed last [max_bytes] (default
    2048) of a worker's captured stderr, for quarantine diagnostics.
    [""] if the file is missing. *)

val signal_name : int -> string
(** [signal_name s] renders an OCaml signal number ([Sys.sigkill] etc.)
    as its conventional name, for diagnostics. *)

(** {1 JSONL rendering}

    Every record is a single line.  The stable fields come first (job
    identity, and for seed jobs the [seed] + [gen] reproduction
    recipe); the volatile trailer [,"cached":_,"attempts":_,"ms":_}]
    always comes last in a fixed order so tooling can strip it with one
    regular expression when diffing runs modulo timing. *)

val record_trailer : cached:bool -> attempts:int -> ms:float -> string
(** The volatile trailer every JSONL record ends with, in the fixed
    order tooling strips: [,"cached":_,"attempts":_,"ms":_}].  Exposed
    so the fleet's unit/poison records stay strippable by the same
    regular expression as batch and daemon records. *)

val verdict_record :
  Job.t -> Verdict_cache.verdict -> cached:bool -> attempts:int -> ms:float -> string
(** [verdict_record j v ~cached ~attempts ~ms] renders a completed
    job's verdict as one JSONL line ([status:"ok"]), including the
    engine telemetry fields [degraded] and [spilled_runs]. *)

val quarantine_record :
  Job.t -> reason:string -> stderr:string -> attempts:int -> ms:float -> string
(** [quarantine_record j ~reason ~stderr ~attempts ~ms] renders a
    poison job's terminal record ([status:"quarantined"]) carrying the
    last failure reason and the worker's captured stderr tail. *)

val json_escape : string -> string
(** [json_escape s] escapes [s] for embedding inside a JSON string
    literal (quotes, backslashes, control characters). *)
