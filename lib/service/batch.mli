(** The supervised batch verification service.

    A batch fans its jobs out across a pool of {e forked} worker
    processes — crash isolation by construction: a segfault, OOM-kill,
    or wedge in one job costs at most that job's attempt, never the
    batch.  The supervisor is the only long-lived process and does no
    verification work itself.

    Robustness machinery:
    - {b per-job timeouts}: a worker past its wall-clock budget is
      SIGKILLed and the attempt counts as failed;
    - {b retry with backoff}: failed attempts are retried up to
      [cfg.retries] times, each retry delayed by exponential backoff
      plus deterministic jitter ({!backoff_delay_ms});
    - {b poison quarantine}: a job that exhausts its attempts is
      quarantined with the worker's last stderr captured for triage, and
      the batch carries on;
    - {b graceful drain}: SIGTERM/SIGINT (or the batch deadline) stops
      dispatch, forwards SIGTERM to in-flight workers (whose exploration
      stops at a safe point via the {!Explore.rcfg} cancel hook), writes
      a crash-safe checkpoint, and exits with the suspended summary;
    - {b resume}: [cfg.resume] validates the checkpoint against the job
      list's fingerprint and re-runs only unfinished jobs;
    - {b verdict cache}: results are served from and recorded to a
      persistent {!Verdict_cache} so replaying a corpus is nearly free.

    Results stream as JSONL (one object per job, in completion order) to
    [cfg.out]; quarantined jobs produce a record carrying the full
    reproduction recipe (seed + generator flags) and captured stderr. *)

type cfg = {
  out : string option;  (** results JSONL path; [None] = stdout *)
  workers : int;  (** concurrent forked workers (>= 1) *)
  timeout_s : float;  (** per-job wall clock before SIGKILL *)
  retries : int;  (** max attempts per job (>= 1) *)
  backoff_ms : int;  (** base backoff between attempts *)
  cache : Verdict_cache.t;
  checkpoint : string option;  (** crash-safe queue snapshot path *)
  resume : string option;  (** checkpoint to resume from *)
  deadline_s : float option;  (** whole-batch budget; drains at expiry *)
  model : Worker.model;  (** the Definition-2 synchronization model *)
  fuel : int option;  (** per-job state bound forwarded to workers *)
  spill_dir : string option;
      (** visited-set spill area: each worker spills into its own
          [jobN] subdirectory (created on demand, removed after the
          attempt), so memory-budgeted jobs stay complete instead of
          degrading *)
  mem_budget : int option;  (** per-job visited-set byte budget *)
  log : string -> unit;  (** supervisor event log (CLI: stderr) *)
  verbose : bool;  (** log per-attempt worker lifecycle events *)
}

val default_cfg : cfg
(** 4 workers, 10 s timeout, 3 attempts, 100 ms backoff, in-memory
    cache, drf0, silent log. *)

type quarantined = {
  q_job : Job.t;
  q_attempts : int;
  q_reason : string;  (** last failure, e.g. ["timeout: SIGKILL after 0.5s"] *)
  q_stderr : string;  (** tail of the worker's captured stderr *)
}

type summary = {
  total : int;  (** jobs in the (expanded) job list *)
  completed : int;  (** verdicts emitted, this run + resumed-from runs *)
  ok : int;  (** verdicts without a violation, this run *)
  violations : int;  (** Definition-2 counterexamples found, this run *)
  quarantined : quarantined list;  (** this run's quarantine, newest last *)
  quarantined_total : int;  (** including resumed-from runs *)
  pending : int;  (** jobs not finished (> 0 only when suspended) *)
  served_from_cache : int;  (** verdicts answered without forking *)
  sym_dedup : int;
      (** cache hits served through the symmetry key: the job's exact
          text was never verified, a renaming of it was *)
  cache : Verdict_cache.stats;
  suspended : bool;  (** a signal or the deadline drained the batch *)
  wall_s : float;
}

exception Resume_rejected of string
(** The resume checkpoint failed validation (CRC, kind, job-list
    fingerprint, or model mismatch). *)

val run : cfg -> Job.t list -> summary
(** Run the batch to completion or drain.  Fork-based: call from a
    single-domain process (the CLI); a worker never spawns domains.
    @raise Invalid_argument on a non-positive [workers]/[retries]
    @raise Resume_rejected when [cfg.resume] is unusable *)

val exit_code : summary -> int
(** The [weakord batch] exit-code contract: [3] suspended (resume point
    written when configured), else [1] when any violation was found,
    else [4] when any job was quarantined, else [0]. *)

val backoff_delay_ms : base:int -> attempt:int -> job_id:int -> int
(** Delay before retry number [attempt] (1-based count of failures so
    far) of [job_id]: [base * 2^(attempt-1)] plus a deterministic jitter
    in [0, base) derived from [(job_id, attempt)] — reproducible
    schedules, no thundering herd. *)

val pp_summary : Format.formatter -> summary -> unit
(** The human summary the CLI prints to stderr, including cache
    hit/miss/corrupt counters. *)
