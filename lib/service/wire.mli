(** The daemon's wire protocol: framing, request grammar, error codes.

    [weakord serve] speaks a versioned, length-prefixed line protocol
    over a Unix-domain socket.  This module is the protocol's single
    implementation — the server ({!Daemon}) and the bundled client
    ([weakord client]) share it, so the two sides cannot drift.  The
    operator-facing specification, including a worked transcript, is
    [docs/PROTOCOL.md]; on any disagreement the code here wins and the
    document has a bug.

    {1 Framing}

    Every message, in both directions, is one frame:

    {v <decimal length> SP <payload> LF v}

    where [length] is the byte length of [payload] (at most
    {!max_frame}), in at most five decimal digits with no leading
    [+]/[-].  The payload itself never contains LF.  Framing is
    symmetric: requests and responses use the same envelope.

    A framing violation (non-digit where a length should be, oversized
    frame, missing terminator) is unrecoverable for the connection:
    the decoder latches the error and the server closes the socket
    after sending a final [ERR 400].

    {1 Handshake}

    The first frame on a connection must be [HELLO weakord/1].  The
    server answers [OK weakord/1 engine=<version>] and only then
    accepts other verbs; anything else gets [ERR 401].  A client
    offering an unknown protocol version is rejected with [ERR 401]
    carrying the server's version, so old clients fail loudly and
    immediately. *)

val version : int
(** Protocol version spoken by this build (currently [1]). *)

val greeting : string
(** The version token exchanged in [HELLO]: ["weakord/1"]. *)

val max_frame : int
(** Maximum payload bytes per frame (65536).  Large enough for any
    job line or stats blob; small enough that a malicious length
    prefix cannot make the server buffer unboundedly. *)

(** {1 Encoding} *)

val frame : string -> string
(** [frame payload] is the full wire encoding
    [sprintf "%d %s\n" (length payload) payload]. *)

(** {1 Incremental decoding}

    Sockets deliver byte chunks, not frames; a {!decoder} reassembles
    them.  Feed whatever arrived, then pull complete payloads until
    {!next} reports it needs more bytes. *)

type decoder
(** Reassembly buffer for one direction of one connection. *)

val decoder : unit -> decoder
(** A fresh, empty decoder. *)

val feed : decoder -> string -> unit
(** [feed d bytes] appends received bytes.  Ignored once the decoder
    has latched a framing error. *)

val next : decoder -> (string option, string) result
(** [next d] is [Ok (Some payload)] when a complete frame is
    available, [Ok None] when more bytes are needed, and [Error msg]
    on a framing violation.  Errors latch: once violated, the decoder
    returns the same error forever and discards further input — a
    desynchronized stream cannot be trusted again. *)

(** {1 Requests} *)

(** A parsed client request.  The verb set is the protocol: job
    submission and lifecycle ([Submit], [Status], [Result], [Cancel]),
    introspection ([Stats], [Ping]), and connection/server lifecycle
    ([Hello], [Drain], [Bye]). *)
type request =
  | Hello of string  (** [HELLO <version-token>] — must be first *)
  | Submit of string
      (** [SUBMIT <job line>] — one line in the {!Job.parse_string}
          grammar ([test NAME], [file PATH], [seed N], [seeds LO..HI],
          [machine=...] and generator options); answered with a ticket *)
  | Status of int  (** [STATUS <ticket>] — queue state, non-blocking *)
  | Result of { ticket : int; wait : bool }
      (** [RESULT <ticket> [WAIT]] — the JSONL verdict record; with
          [WAIT] the response is deferred until the job completes *)
  | Cancel of int  (** [CANCEL <ticket>] — abort a queued/running job *)
  | Stats  (** [STATS] — one-line JSON server statistics *)
  | Drain  (** [DRAIN] — initiate graceful shutdown (same as SIGTERM) *)
  | Ping  (** [PING] — liveness probe, answered [OK pong] *)
  | Bye  (** [BYE] — close this connection cleanly *)

val parse_request : string -> (request, int * string) result
(** [parse_request payload] parses one frame payload.  Verbs are
    case-insensitive; arguments are not.  [Error (code, msg)] values
    are ready to send via {!err}. *)

val render_request : request -> string
(** [render_request r] is the payload that parses back to [r]; the
    client side of {!parse_request}. *)

(** {1 Responses}

    Responses are free-form single lines with a fixed first token:
    [OK ...] for success and [ERR <code> <message>] for failure.
    The stable error codes:

    - [400] — malformed request or framing violation
    - [401] — handshake required, or protocol version mismatch
    - [404] — unknown verb, or unknown ticket
    - [409] — operation invalid in the ticket's current state
    - [410] — result gone: the job was cancelled
    - [503] — server is draining; no new work accepted *)

val ok : string -> string
(** [ok payload] is ["OK " ^ payload] (or just ["OK"] when empty). *)

val err : int -> string -> string
(** [err code msg] is [sprintf "ERR %d %s" code msg]. *)

val e_bad : int
(** [400] — malformed request or framing violation. *)

val e_hello : int
(** [401] — handshake required or version mismatch. *)

val e_unknown : int
(** [404] — unknown verb, or unknown ticket. *)

val e_conflict : int
(** [409] — operation invalid in the ticket's current state. *)

val e_gone : int
(** [410] — result gone (job cancelled). *)

val e_draining : int
(** [503] — server draining, submission refused. *)
