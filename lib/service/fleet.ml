(* The sharded fuzz fleet: a fault-tolerant supervisor over the
   three-way differential oracle in [Fuzz].

   Process architecture mirrors [Batch]: the supervisor forks one shard
   worker per work-unit attempt (never more than [cfg.shards] in
   flight) and does no verification itself.  A shard streams its unit's
   seeds through [Fuzz.check_prog], heartbeats the seed it is about to
   check into a per-spawn file, and ships its accumulated tallies back
   in a CRC-framed result file; all parent-side state transitions
   happen in one thread, in the reap/dispatch loop.

   The failure matrix:

     exit 0 + valid result, next > hi  -> unit done (emit its records)
     exit 9 + valid result             -> drained at a seed boundary:
                                          merge the partial, requeue
     heartbeat stale > hang_timeout_s  -> SIGKILL + bisect: seeds before
                                          the suspect keep the progress,
                                          seeds after become fresh work,
                                          the suspect retries alone
     any other death                   -> failed attempt: requeue whole
                                          (a transient kill must not
                                          split units, or resumed and
                                          uninterrupted campaigns would
                                          emit different records)
     suspect attempts exhausted        -> poison: quarantine dossier
                                          with a ddmin-minimized
                                          reproducer; campaign continues

   Records are emitted only when a unit finalizes, so drained partials
   never double-emit; the volatile [cached/attempts/ms] trailer comes
   from [Runner.record_trailer], so one regex strips timing from fleet,
   batch and daemon streams alike. *)

type cfg = {
  oracle : Fuzz.cfg;
  shards : int;
  unit_seeds : int;
  hang_timeout_s : float;
  retries : int;
  backoff_ms : int;
  out : string option;
  checkpoint : string option;
  resume : string option;
  deadline_s : float option;
  mem_budget : int option;
  wedge_seeds : int list;
  stats_socket : string option;
  log : string -> unit;
  verbose : bool;
}

let default_cfg =
  {
    oracle = Fuzz.default_cfg;
    shards = 4;
    unit_seeds = 256;
    hang_timeout_s = 30.;
    retries = 3;
    backoff_ms = 100;
    out = None;
    checkpoint = None;
    resume = None;
    deadline_s = None;
    mem_budget = None;
    wedge_seeds = [];
    stats_socket = None;
    log = ignore;
    verbose = false;
  }

type poison = {
  p_seed : int;
  p_reason : string;
  p_attempts : int;
  p_report : string option;
}

type summary = {
  f_units_total : int;
  f_units_done : int;
  f_units_requeued : int;
  f_units_split : int;
  f_pending : int;
  f_programs : int;
  f_checks : int;
  f_disagreements : int;
  f_sim_runs : int;
  f_sim_wedged : int;
  f_sim_skipped : int;
  f_states : int;
  f_poison : poison list;
  f_poison_total : int;
  f_wall_s : float;
  f_suspended : bool;
}

exception Resume_rejected of string

let exit_code s =
  if s.f_suspended then 3
  else if s.f_disagreements > 0 then 1
  else if s.f_poison_total > 0 then 4
  else 0

(* --- the unit plan ----------------------------------------------------------- *)

let units_of_range ~lo ~hi ~unit_seeds =
  if lo > hi then invalid_arg "Fleet.units_of_range: empty seed range";
  if unit_seeds < 1 then
    invalid_arg "Fleet.units_of_range: unit_seeds must be >= 1";
  let rec go a acc =
    if a > hi then List.rev acc
    else
      let b = min hi (a + unit_seeds - 1) in
      go (b + 1) ((a, b) :: acc)
  in
  go lo []

(* The injected-hang rule.  The >= 2 guard makes the rule a usable
   ddmin predicate: the shrinker can remove instructions down to a
   two-instruction reproducer but never to an empty program. *)
let wedge_fires ~wedge_seeds ~seed prog =
  List.mem seed wedge_seeds && Prog.num_instrs prog >= 2

(* --- accumulated tallies ------------------------------------------------------ *)

(* What a shard ships back: [Fuzz.seed_report] sums plus each
   disagreement tagged with its seed.  Merged exactly once per seed
   across the campaign — on failed attempts no result file exists, and
   the deterministic oracle recomputes identical tallies on retry. *)
type acc = {
  a_programs : int;
  a_checks : int;
  a_disagreements : (int * string * string) list;  (* seed, check, detail *)
  a_sim_runs : int;
  a_sim_wedged : int;
  a_sim_skipped : int;
  a_states : int;
}

let acc_zero =
  {
    a_programs = 0;
    a_checks = 0;
    a_disagreements = [];
    a_sim_runs = 0;
    a_sim_wedged = 0;
    a_sim_skipped = 0;
    a_states = 0;
  }

let acc_add a ~seed (r : Fuzz.seed_report) =
  {
    a_programs = a.a_programs + 1;
    a_checks = a.a_checks + r.Fuzz.sr_checks;
    a_disagreements =
      a.a_disagreements
      @ List.map (fun (c, d) -> (seed, c, d)) r.Fuzz.sr_disagreements;
    a_sim_runs = a.a_sim_runs + r.Fuzz.sr_sim_runs;
    a_sim_wedged = a.a_sim_wedged + r.Fuzz.sr_sim_wedged;
    a_sim_skipped = a.a_sim_skipped + r.Fuzz.sr_sim_skipped;
    a_states = a.a_states + r.Fuzz.sr_states;
  }

let acc_union a b =
  {
    a_programs = a.a_programs + b.a_programs;
    a_checks = a.a_checks + b.a_checks;
    a_disagreements = a.a_disagreements @ b.a_disagreements;
    a_sim_runs = a.a_sim_runs + b.a_sim_runs;
    a_sim_wedged = a.a_sim_wedged + b.a_sim_wedged;
    a_sim_skipped = a.a_sim_skipped + b.a_sim_skipped;
    a_states = a.a_states + b.a_states;
  }

type ustate = {
  u_lo : int;
  u_hi : int;
  mutable u_frontier : int;  (* first unchecked seed *)
  mutable u_acc : acc;  (* merged tallies for seeds below the frontier *)
  mutable u_attempts : int;
  mutable u_eligible_at : float;
}

let ukey u = Printf.sprintf "%d..%d" u.u_lo u.u_hi

(* --- the shard worker --------------------------------------------------------- *)

let unit_kind = "weakord.fleet.unit"

(* The oracle a shard actually runs: no quarantine writes, no shrinking,
   no logging, no deadline — all campaign policy stays in the parent. *)
let probe_oracle oracle =
  {
    oracle with
    Fuzz.quarantine = None;
    shrink = false;
    progress = 0;
    log = ignore;
    deadline_s = None;
  }

(* Runs in the child.  Heartbeat first, then check: the parent reads a
   stale heartbeat as "wedged on exactly this seed".  A wedge seed spins
   forever and ignores SIGTERM — a faithful model of a real engine hang,
   which only the watchdog's SIGKILL resolves. *)
let shard_body ~oracle ~wedge_seeds ~result ~hb ~stderr ~frontier ~hi ~key () =
  let cancelled = ref false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> cancelled := true));
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  Runner.redirect_stderr stderr;
  let probe = probe_oracle oracle in
  let acc = ref acc_zero in
  let ship next code =
    Runner.write_framed ~kind:unit_kind ~meta:key result
      (Marshal.to_string (!acc, next) []);
    Unix._exit code
  in
  let seed = ref frontier in
  while !seed <= hi do
    if !cancelled then ship !seed 9;
    Atomic_io.write_file ~fsync:false hb (string_of_int !seed);
    let prog = Litmus_gen.generate ~config:probe.Fuzz.config !seed in
    if wedge_fires ~wedge_seeds ~seed:!seed prog then
      while true do
        try Unix.sleepf 0.05 with Unix.Unix_error _ -> ()
      done
    else begin
      let r = Fuzz.check_prog probe prog in
      acc := acc_add !acc ~seed:!seed r;
      incr seed
    end
  done;
  ship (hi + 1) 0

let read_unit_result path =
  match Runner.read_framed ~kind:unit_kind path with
  | None -> None
  | Some payload -> (
      match (Marshal.from_string payload 0 : acc * int) with
      | v -> Some v
      | exception (Failure _ | Invalid_argument _) -> None)

(* --- checkpoint --------------------------------------------------------------- *)

let ckpt_kind = "weakord.fleet"

type ckpt = {
  k_fingerprint : string;
  k_pending : (int * int * int * int * acc) list;
      (* lo, hi, frontier, attempts, merged tallies *)
  k_units_total : int;
  k_units_done : int;
  k_units_requeued : int;
  k_units_split : int;
  k_programs : int;
  k_checks : int;
  k_disagreements : int;
  k_sim_runs : int;
  k_sim_wedged : int;
  k_sim_skipped : int;
  k_states : int;
  k_poison : (int * string * int) list;  (* seed, reason, attempts *)
}

let write_ckpt path ck =
  Snapshot.write_file path
    (Snapshot.frame ~kind:ckpt_kind
       ~meta:
         (Printf.sprintf "%d pending unit(s), %d poison"
            (List.length ck.k_pending)
            (List.length ck.k_poison))
       ~payload:(Marshal.to_string ck []))

let load_ckpt path =
  match Snapshot.load path with
  | Error (e, _) ->
      raise
        (Resume_rejected
           (Printf.sprintf "%s: %s" path (Snapshot.error_string e)))
  | Ok { Snapshot.container = c; recovered } ->
      if not (String.equal c.Snapshot.kind ckpt_kind) then
        raise
          (Resume_rejected
             (Printf.sprintf "%s holds a %S snapshot, expected %S" path
                c.Snapshot.kind ckpt_kind));
      (match (Marshal.from_string c.Snapshot.payload 0 : ckpt) with
      | ck -> (ck, recovered)
      | exception (Failure _ | Invalid_argument _) ->
          raise
            (Resume_rejected (path ^ ": checkpoint payload does not unmarshal")))

(* The campaign identity a checkpoint must match before resuming.
   Deliberately excludes the shard count — an interrupted 4-shard
   campaign may resume on 8 shards; only the work and the oracle must
   agree. *)
let fingerprint cfg ~lo ~hi =
  let o = cfg.oracle in
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            string_of_int lo;
            string_of_int hi;
            string_of_int cfg.unit_seeds;
            Format.asprintf "%a" Litmus_gen.pp_config o.Fuzz.config;
            String.concat "," (List.map Machines.name o.Fuzz.machines);
            string_of_bool o.Fuzz.sim;
            string_of_int o.Fuzz.sim_limit;
            String.concat "," (List.map string_of_int cfg.wedge_seeds);
          ]))

(* --- JSONL records ------------------------------------------------------------ *)

(* Stable fields first, [Runner.record_trailer] last — the same
   strip-one-regex contract as batch/daemon records.  Poison reasons
   must carry no timings, so resumed and uninterrupted campaigns render
   byte-identical records modulo the trailer. *)

let unit_record ~key ~gen a ~attempts ~ms =
  Printf.sprintf
    "{\"unit\":\"%s\",\"status\":\"done\",\"programs\":%d,\"checks\":%d,\"disagreements\":%d,\"sim_runs\":%d,\"sim_wedged\":%d,\"sim_skipped\":%d,\"states\":%d,\"gen\":\"%s\"%s"
    key a.a_programs a.a_checks
    (List.length a.a_disagreements)
    a.a_sim_runs a.a_sim_wedged a.a_sim_skipped a.a_states
    (Runner.json_escape gen)
    (Runner.record_trailer ~cached:false ~attempts ~ms)

let disagreement_record ~key ~seed ~check ~detail ~ms =
  Printf.sprintf
    "{\"unit\":\"%s\",\"status\":\"disagreement\",\"seed\":%d,\"check\":\"%s\",\"detail\":\"%s\"%s"
    key seed (Runner.json_escape check) (Runner.json_escape detail)
    (Runner.record_trailer ~cached:false ~attempts:1 ~ms)

let poison_record ~key ~seed ~reason ~attempts ~ms =
  Printf.sprintf "{\"unit\":\"%s\",\"status\":\"poison\",\"seed\":%d,\"reason\":\"%s\"%s"
    key seed (Runner.json_escape reason)
    (Runner.record_trailer ~cached:false ~attempts ~ms)

let hang_reason = "wedged: heartbeat stalled past the hang budget"

(* --- hang reproduction probe -------------------------------------------------- *)

(* Does [prog] wedge the oracle?  Fork it with a timeout: a child that
   neither completes nor exits cleanly within the hang budget is killed
   and counted as hanging.  Used as the ddmin predicate for organically
   poisoned seeds (injected wedge seeds use the pure [wedge_fires] rule
   instead — no forking, full shrink budget). *)
let hangs_in_fork ~oracle ~hang_timeout_s prog =
  let probe = probe_oracle oracle in
  let pid =
    Runner.fork_worker (fun () ->
        Runner.redirect_stderr "/dev/null";
        ignore (Fuzz.check_prog probe prog : Fuzz.seed_report);
        Unix._exit 0)
  in
  let deadline = Unix.gettimeofday () +. hang_timeout_s in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          true
        end
        else begin
          (try Unix.sleepf 0.01 with Unix.Unix_error _ -> ());
          wait ()
        end
    | _, Unix.WEXITED 0 -> false
    | _, _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ()

(* --- the supervisor ----------------------------------------------------------- *)

type running = {
  r_u : ustate;
  r_pid : int;
  r_started : float;
  r_result : string;
  r_hb : string;
  r_stderr : string;
  mutable r_hb_content : string;
  mutable r_hb_at : float;
  mutable r_term_sent : bool;
  mutable r_hang_killed : bool;
}

(* One stats-socket client. *)
type conn = {
  n_fd : Unix.file_descr;
  n_dec : Wire.decoder;
  n_out : Buffer.t;
  mutable n_hello : bool;
  mutable n_closing : bool;
  mutable n_dead : bool;
}

let read_hb path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Some (String.trim s)
  | exception Sys_error _ -> None

let heap_bytes () =
  let s = Gc.quick_stat () in
  s.Gc.heap_words * (Sys.word_size / 8)

let run cfg ~lo ~hi =
  if lo > hi then invalid_arg "Fleet.run: empty seed range";
  if cfg.shards < 1 then invalid_arg "Fleet.run: shards must be >= 1";
  if cfg.unit_seeds < 1 then invalid_arg "Fleet.run: unit_seeds must be >= 1";
  if cfg.retries < 1 then invalid_arg "Fleet.run: retries must be >= 1";
  let t0 = Unix.gettimeofday () in
  let fp = fingerprint cfg ~lo ~hi in
  (* Cumulative campaign counters; a resume folds the prior runs in. *)
  let units_total = ref 0 in
  let units_done = ref 0 in
  let units_requeued = ref 0 in
  let units_split = ref 0 in
  let g_programs = ref 0 in
  let g_checks = ref 0 in
  let g_disagreements = ref 0 in
  let g_sim_runs = ref 0 in
  let g_sim_wedged = ref 0 in
  let g_sim_skipped = ref 0 in
  let g_states = ref 0 in
  let prior_poison = ref [] in
  let poisons = ref [] in
  let ready : ustate Queue.t = Queue.create () in
  let delayed : ustate list ref = ref [] in
  let running : running list ref = ref [] in
  (* Resume (restores the pending frontiers) or a fresh unit plan. *)
  (match cfg.resume with
  | None ->
      let plan = units_of_range ~lo ~hi ~unit_seeds:cfg.unit_seeds in
      units_total := List.length plan;
      List.iter
        (fun (a, b) ->
          Queue.add
            {
              u_lo = a;
              u_hi = b;
              u_frontier = a;
              u_acc = acc_zero;
              u_attempts = 0;
              u_eligible_at = 0.;
            }
            ready)
        plan
  | Some path ->
      let ck, recovered = load_ckpt path in
      if not (String.equal ck.k_fingerprint fp) then
        raise
          (Resume_rejected
             "checkpoint was taken over a different campaign (fingerprints \
              differ)");
      units_total := ck.k_units_total;
      units_done := ck.k_units_done;
      units_requeued := ck.k_units_requeued;
      units_split := ck.k_units_split;
      g_programs := ck.k_programs;
      g_checks := ck.k_checks;
      g_disagreements := ck.k_disagreements;
      g_sim_runs := ck.k_sim_runs;
      g_sim_wedged := ck.k_sim_wedged;
      g_sim_skipped := ck.k_sim_skipped;
      g_states := ck.k_states;
      prior_poison := ck.k_poison;
      List.iter
        (fun (a, b, frontier, attempts, acc) ->
          Queue.add
            {
              u_lo = a;
              u_hi = b;
              u_frontier = frontier;
              u_acc = acc;
              u_attempts = attempts;
              u_eligible_at = 0.;
            }
            ready)
        (List.sort compare ck.k_pending);
      cfg.log
        (Printf.sprintf
           "resuming fleet: %d unit(s) pending, %d/%d seed(s) already \
            checked%s"
           (Queue.length ready) !g_programs (hi - lo + 1)
           (if recovered then
              " (recovered from the last-good .prev generation)"
            else "")));
  let run_base_programs = !g_programs in
  (* Output stream: append mode, so an interrupted run's records plus
     its resume's records concatenate into the full campaign. *)
  let out_ch, close_out_ch =
    match cfg.out with
    | None -> (Stdlib.stdout, fun () -> flush Stdlib.stdout)
    | Some p ->
        let ch = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 p in
        (ch, fun () -> close_out ch)
  in
  let emit line =
    output_string out_ch line;
    output_char out_ch '\n';
    flush out_ch
  in
  (* Scratch area for result, heartbeat and stderr files. *)
  let scratch =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "weakord-fleet-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  (* Stats socket (optional). *)
  let listen_fd =
    match cfg.stats_socket with
    | None -> None
    | Some path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.bind fd (Unix.ADDR_UNIX path);
           Unix.listen fd 16;
           Unix.set_nonblock fd
         with Unix.Unix_error (e, _, _) ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           invalid_arg
             (Printf.sprintf "Fleet.run: cannot bind stats socket %s: %s" path
                (Unix.error_message e)));
        Some fd
  in
  let conns : conn list ref = ref [] in
  (* Signals: first SIGTERM/SIGINT flips the drain flag; EPIPE from a
     vanished stats client must be an error code, not a signal. *)
  let drain = ref false in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let install s = Sys.signal s (Sys.Signal_handle (fun _ -> drain := true)) in
  let old_term = install Sys.sigterm in
  let old_int = install Sys.sigint in
  let restore_signals () =
    Sys.set_signal Sys.sigpipe old_pipe;
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int
  in
  let budget =
    Budget.create ?deadline_s:cfg.deadline_s ?mem_bytes:cfg.mem_budget ()
  in
  let shards_gauge = Obs.Gauge.create () in
  let queue_gauge = Obs.Gauge.create () in
  let pending_units () =
    List.of_seq (Queue.to_seq ready)
    @ !delayed
    @ List.map (fun r -> r.r_u) !running
  in
  let last_ckpt = ref 0. in
  let save_ckpt ~force () =
    match cfg.checkpoint with
    | None -> ()
    | Some path ->
        let now = Unix.gettimeofday () in
        if force || now -. !last_ckpt > 0.25 then begin
          last_ckpt := now;
          write_ckpt path
            {
              k_fingerprint = fp;
              k_pending =
                List.map
                  (fun u -> (u.u_lo, u.u_hi, u.u_frontier, u.u_attempts, u.u_acc))
                  (pending_units ());
              k_units_total = !units_total;
              k_units_done = !units_done;
              k_units_requeued = !units_requeued;
              k_units_split = !units_split;
              k_programs = !g_programs;
              k_checks = !g_checks;
              k_disagreements = !g_disagreements;
              k_sim_runs = !g_sim_runs;
              k_sim_wedged = !g_sim_wedged;
              k_sim_skipped = !g_sim_skipped;
              k_states = !g_states;
              k_poison =
                !prior_poison
                @ List.map (fun p -> (p.p_seed, p.p_reason, p.p_attempts)) !poisons;
            }
        end
  in
  let gen = Litmus_gen.config_args cfg.oracle.Fuzz.config in
  (* Global counters update at merge time — exactly once per seed across
     the campaign (failed attempts leave no result file; the oracle is
     deterministic, so a retry recomputes identical tallies). *)
  let merge u (a : acc) next =
    g_programs := !g_programs + a.a_programs;
    g_checks := !g_checks + a.a_checks;
    g_disagreements := !g_disagreements + List.length a.a_disagreements;
    g_sim_runs := !g_sim_runs + a.a_sim_runs;
    g_sim_wedged := !g_sim_wedged + a.a_sim_wedged;
    g_sim_skipped := !g_sim_skipped + a.a_sim_skipped;
    g_states := !g_states + a.a_states;
    u.u_acc <- acc_union u.u_acc a;
    u.u_frontier <- next
  in
  (* Dossier for an oracle disagreement: minimize against the same
     failing relation, then write the standard fuzz quarantine files. *)
  let disagreement_dossier ~seed ~check ~detail =
    let oracle = cfg.oracle in
    match oracle.Fuzz.quarantine with
    | None -> None
    | Some _ ->
        let prog = Litmus_gen.generate ~config:oracle.Fuzz.config seed in
        let minimal =
          if not oracle.Fuzz.shrink then None
          else
            match Shrink.ddmin ~pred:(Fuzz.still_fails oracle ~check) prog with
            | m, _ -> Some m
            | exception Invalid_argument _ -> None
        in
        Fuzz.quarantine_seed ?minimal oracle ~seed ~prog ~check ~detail
  in
  (* Dossier for a poison (hanging) seed: the shrink predicate is the
     pure wedge rule for injected seeds, a forked timeout probe for
     organic hangs (bounded — every hanging candidate costs a whole
     hang budget). *)
  let poison_dossier seed ~reason =
    let oracle = cfg.oracle in
    match oracle.Fuzz.quarantine with
    | None -> None
    | Some _ ->
        let prog = Litmus_gen.generate ~config:oracle.Fuzz.config seed in
        let minimal =
          if not oracle.Fuzz.shrink then None
          else
            let injected = List.mem seed cfg.wedge_seeds in
            let pred =
              if injected then fun p ->
                wedge_fires ~wedge_seeds:cfg.wedge_seeds ~seed p
              else
                hangs_in_fork ~oracle ~hang_timeout_s:cfg.hang_timeout_s
            in
            let max_tests = if injected then 2000 else 40 in
            match Shrink.ddmin ~max_tests ~pred prog with
            | m, _ -> Some m
            | exception Invalid_argument _ -> None
        in
        Fuzz.quarantine_seed ?minimal oracle ~seed ~prog ~check:"fleet-hang"
          ~detail:reason
  in
  let finalize u ~ms =
    incr units_done;
    let key = ukey u in
    List.iter
      (fun (seed, check, detail) ->
        let q = disagreement_dossier ~seed ~check ~detail in
        cfg.log
          (Printf.sprintf "DISAGREEMENT seed %d [%s]: %s%s" seed check detail
             (match q with
             | Some p -> " (quarantined: " ^ p ^ ")"
             | None -> ""));
        emit (disagreement_record ~key ~seed ~check ~detail ~ms))
      (List.sort compare u.u_acc.a_disagreements);
    emit (unit_record ~key ~gen u.u_acc ~attempts:(u.u_attempts + 1) ~ms);
    if cfg.verbose then
      cfg.log
        (Printf.sprintf "unit %s done: %d program(s), %d check(s)" key
           u.u_acc.a_programs u.u_acc.a_checks);
    save_ckpt ~force:false ()
  in
  let poison_unit u ~reason ~ms =
    let seed = u.u_lo in
    let report = poison_dossier seed ~reason in
    let p =
      {
        p_seed = seed;
        p_reason = reason;
        p_attempts = u.u_attempts;
        p_report = report;
      }
    in
    poisons := !poisons @ [ p ];
    cfg.log
      (Printf.sprintf "POISON seed %d after %d attempt(s): %s%s" seed
         u.u_attempts reason
         (match report with
         | Some r -> " (dossier: " ^ r ^ ")"
         | None -> ""));
    emit (poison_record ~key:(ukey u) ~seed ~reason ~attempts:u.u_attempts ~ms);
    save_ckpt ~force:false ()
  in
  let backoff_of u =
    float_of_int
      (Batch.backoff_delay_ms ~base:cfg.backoff_ms ~attempt:u.u_attempts
         ~job_id:u.u_lo)
    /. 1000.
  in
  let requeue u ~reason now =
    incr units_requeued;
    u.u_eligible_at <- now +. backoff_of u;
    delayed := !delayed @ [ u ];
    if cfg.verbose then
      cfg.log
        (Printf.sprintf "retrying unit %s (attempt %d/%d: %s)" (ukey u)
           (u.u_attempts + 1) cfg.retries reason)
  in
  (* Hang bisection.  The suspect seed (from the stale heartbeat) is cut
     out into its own single-seed unit carrying the hang strike; seeds
     before it keep the unit's merged progress, seeds after become fresh
     work.  [suspect_attempts] is the strike count the suspect inherits:
     hang strikes accumulate, a crash-exhausted split grants a fresh
     budget. *)
  let bisect r ~suspect_attempts now =
    let u = r.r_u in
    let suspect =
      match int_of_string_opt r.r_hb_content with
      | Some s when s >= u.u_frontier && s <= u.u_hi -> s
      | _ -> u.u_frontier
    in
    incr units_split;
    cfg.log
      (Printf.sprintf
         "HANG unit %s: shard wedged on seed %d (heartbeat stale past %.1fs); \
          bisecting"
         (ukey u) suspect cfg.hang_timeout_s);
    if suspect > u.u_lo then begin
      let left =
        {
          u_lo = u.u_lo;
          u_hi = suspect - 1;
          u_frontier = u.u_frontier;
          u_acc = u.u_acc;
          u_attempts = 0;
          u_eligible_at = 0.;
        }
      in
      incr units_total;
      if left.u_frontier > left.u_hi then
        finalize left ~ms:((now -. r.r_started) *. 1000.)
      else Queue.add left ready
    end;
    if suspect < u.u_hi then begin
      incr units_total;
      Queue.add
        {
          u_lo = suspect + 1;
          u_hi = u.u_hi;
          u_frontier = suspect + 1;
          u_acc = acc_zero;
          u_attempts = 0;
          u_eligible_at = 0.;
        }
        ready
    end;
    let su =
      {
        u_lo = suspect;
        u_hi = suspect;
        u_frontier = suspect;
        u_acc = acc_zero;
        u_attempts = suspect_attempts;
        u_eligible_at = 0.;
      }
    in
    incr units_total;
    if su.u_attempts >= cfg.retries then
      poison_unit su ~reason:hang_reason ~ms:((now -. r.r_started) *. 1000.)
    else begin
      su.u_eligible_at <- now +. backoff_of su;
      delayed := !delayed @ [ su ]
    end
  in
  let attempt_failed r ~reason now =
    let u = r.r_u in
    u.u_attempts <- u.u_attempts + 1;
    if u.u_attempts < cfg.retries then requeue u ~reason now
    else if u.u_lo = u.u_hi then
      poison_unit u ~reason ~ms:((now -. r.r_started) *. 1000.)
    else
      (* Retries exhausted without a hang verdict: isolate the seed the
         shard last heartbeat on, granting the suspect a fresh retry
         budget (the deaths may have been transient). *)
      bisect r ~suspect_attempts:0 now
  in
  let handle_exit r status now =
    let u = r.r_u in
    let ms = (now -. r.r_started) *. 1000. in
    match status with
    | Unix.WEXITED 0 -> (
        match read_unit_result r.r_result with
        | Some (a, next) when next > u.u_hi ->
            merge u a next;
            finalize u ~ms
        | Some _ ->
            attempt_failed r ~reason:"shard exited 0 before finishing its unit"
              now
        | None ->
            attempt_failed r
              ~reason:"shard exited 0 but left no valid result file" now)
    | Unix.WEXITED 9 ->
        (* Drained at a seed boundary: merge the partial frontier and
           keep the unit pending — it lands in the checkpoint. *)
        (match read_unit_result r.r_result with
        | Some (a, next) -> merge u a next
        | None -> ());
        if cfg.verbose then
          cfg.log
            (Printf.sprintf "unit %s drained at seed %d" (ukey u) u.u_frontier);
        if u.u_frontier > u.u_hi then finalize u ~ms else Queue.add u ready
    | Unix.WEXITED n ->
        attempt_failed r ~reason:(Printf.sprintf "shard exited %d" n) now
    | Unix.WSIGNALED _ when r.r_hang_killed ->
        bisect r ~suspect_attempts:(u.u_attempts + 1) now
    | Unix.WSIGNALED s ->
        attempt_failed r
          ~reason:("shard killed by " ^ Runner.signal_name s)
          now
    | Unix.WSTOPPED _ ->
        (try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ());
        attempt_failed r ~reason:"shard stopped unexpectedly" now
  in
  let spawn u =
    let key = ukey u in
    let path ext = Filename.concat scratch (Printf.sprintf "u%s.%s" key ext) in
    let rp = path "result" and hp = path "hb" and sp = path "stderr" in
    (try Sys.remove rp with Sys_error _ -> ());
    (try Sys.remove hp with Sys_error _ -> ());
    let oracle = cfg.oracle and wedge_seeds = cfg.wedge_seeds in
    let frontier = u.u_frontier and uhi = u.u_hi in
    flush out_ch;
    let pid =
      Runner.fork_worker
        (shard_body ~oracle ~wedge_seeds ~result:rp ~hb:hp ~stderr:sp
           ~frontier ~hi:uhi ~key)
    in
    if cfg.verbose then
      cfg.log
        (Printf.sprintf "shard %d started unit %s at seed %d (attempt %d/%d)"
           pid key frontier (u.u_attempts + 1) cfg.retries);
    let now = Unix.gettimeofday () in
    running :=
      {
        r_u = u;
        r_pid = pid;
        r_started = now;
        r_result = rp;
        r_hb = hp;
        r_stderr = sp;
        r_hb_content = "";
        r_hb_at = now;
        r_term_sent = false;
        r_hang_killed = false;
      }
      :: !running
  in
  (* --- stats socket ----------------------------------------------------------- *)
  let stats_json () =
    let now = Unix.gettimeofday () in
    let wall = now -. t0 in
    Printf.sprintf
      "{\"shards\":%d,\"shards_max\":%d,\"shards_mean\":%.1f,\"queue_depth\":%d,\"units_total\":%d,\"units_done\":%d,\"units_pending\":%d,\"units_requeued\":%d,\"units_split\":%d,\"poison\":%d,\"disagreements\":%d,\"seeds_done\":%d,\"seeds_total\":%d,\"seeds_per_sec\":%.1f,\"states_total\":%d,\"uptime_s\":%.1f,\"draining\":%b}"
      (List.length !running)
      (Obs.Gauge.max_level shards_gauge)
      (Obs.Gauge.mean shards_gauge)
      (Queue.length ready + List.length !delayed)
      !units_total !units_done
      (List.length (pending_units ()))
      !units_requeued !units_split
      (List.length !prior_poison + List.length !poisons)
      !g_disagreements !g_programs
      (hi - lo + 1)
      (if wall > 0. then
         float_of_int (!g_programs - run_base_programs) /. wall
       else 0.)
      !g_states wall !drain
  in
  let send c s = Buffer.add_string c.n_out (Wire.frame s) in
  let close_conn c =
    if not c.n_dead then begin
      c.n_dead <- true;
      try Unix.close c.n_fd with Unix.Unix_error _ -> ()
    end
  in
  let handle_req c = function
    | Wire.Hello v ->
        if String.equal v Wire.greeting then begin
          c.n_hello <- true;
          send c
            (Wire.ok
               (Printf.sprintf "%s engine=%s" Wire.greeting
                  Verdict_cache.engine_version))
        end
        else
          send c
            (Wire.err Wire.e_hello
               (Printf.sprintf "unsupported version %S, this server speaks %s"
                  v Wire.greeting))
    | _ when not c.n_hello -> send c (Wire.err Wire.e_hello "say HELLO first")
    | Wire.Stats -> send c (Wire.ok (stats_json ()))
    | Wire.Ping -> send c (Wire.ok "pong")
    | Wire.Drain ->
        drain := true;
        send c
          (Wire.ok
             (Printf.sprintf "draining pending=%d running=%d"
                (Queue.length ready + List.length !delayed)
                (List.length !running)))
    | Wire.Bye ->
        send c (Wire.ok "bye");
        c.n_closing <- true
    | Wire.Submit _ | Wire.Status _ | Wire.Result _ | Wire.Cancel _ ->
        send c
          (Wire.err Wire.e_unknown
             "fleet stats endpoint serves STATS, PING, DRAIN and BYE")
  in
  let read_conn c =
    match
      let buf = Bytes.create 4096 in
      let n = Unix.read c.n_fd buf 0 4096 in
      if n = 0 then `Eof else `Data (Bytes.sub_string buf 0 n)
    with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn c
    | `Eof -> close_conn c
    | `Data data ->
        Wire.feed c.n_dec data;
        let rec pump () =
          match Wire.next c.n_dec with
          | Ok None -> ()
          | Ok (Some payload) ->
              (match Wire.parse_request payload with
              | Ok req -> handle_req c req
              | Error (code, msg) -> send c (Wire.err code msg));
              if not c.n_closing then pump ()
          | Error e ->
              send c (Wire.err Wire.e_bad ("framing: " ^ e));
              c.n_closing <- true
        in
        pump ()
  in
  let write_conn c =
    let s = Buffer.contents c.n_out in
    if String.length s > 0 then (
      match Unix.write_substring c.n_fd s 0 (String.length s) with
      | n ->
          Buffer.clear c.n_out;
          if n < String.length s then
            Buffer.add_substring c.n_out s n (String.length s - n)
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> close_conn c);
    if c.n_closing && (not c.n_dead) && Buffer.length c.n_out = 0 then
      close_conn c
  in
  let accept_conns lfd =
    let rec go () =
      match Unix.accept lfd with
      | fd, _ ->
          Unix.set_nonblock fd;
          conns :=
            {
              n_fd = fd;
              n_dec = Wire.decoder ();
              n_out = Buffer.create 256;
              n_hello = false;
              n_closing = false;
              n_dead = false;
            }
            :: !conns;
          go ()
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in
  (* Idle wait doubles as the socket pump: with a stats socket the loop
     sleeps inside select (responsive to clients), without one it just
     sleeps. *)
  let service_socket timeout =
    match listen_fd with
    | None -> if timeout > 0. then ( try Unix.sleepf timeout with Unix.Unix_error _ -> ())
    | Some lfd -> (
        let live = List.filter (fun c -> not c.n_dead) !conns in
        let rfds = lfd :: List.map (fun c -> c.n_fd) live in
        let wfds =
          List.filter_map
            (fun c -> if Buffer.length c.n_out > 0 then Some c.n_fd else None)
            live
        in
        match Unix.select rfds wfds [] timeout with
        | rs, ws, _ ->
            if List.mem lfd rs then accept_conns lfd;
            List.iter
              (fun c ->
                if (not c.n_dead) && List.mem c.n_fd rs then read_conn c)
              live;
            List.iter
              (fun c ->
                if
                  (not c.n_dead)
                  && (List.mem c.n_fd ws || Buffer.length c.n_out > 0)
                then write_conn c)
              live;
            conns := List.filter (fun c -> not c.n_dead) !conns
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  in
  (* --- the event loop --------------------------------------------------------- *)
  let drain_announced = ref false in
  let finally () =
    restore_signals ();
    List.iter close_conn !conns;
    (match listen_fd with
    | Some fd -> (
        (try Unix.close fd with Unix.Unix_error _ -> ());
        match cfg.stats_socket with
        | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
        | None -> ())
    | None -> ());
    close_out_ch ();
    (match Sys.readdir scratch with
    | files ->
        Array.iter
          (fun f ->
            try Sys.remove (Filename.concat scratch f) with Sys_error _ -> ())
          files;
        (try Unix.rmdir scratch with Unix.Unix_error _ -> ())
    | exception Sys_error _ -> ())
  in
  let continue () =
    !running <> []
    || ((not !drain) && ((not (Queue.is_empty ready)) || !delayed <> []))
  in
  (try
     while continue () do
       let now = Unix.gettimeofday () in
       (* Budget exhaustion is a self-inflicted drain. *)
       if not !drain then begin
         if Budget.over_deadline budget then begin
           drain := true;
           cfg.log "fleet deadline reached; draining"
         end
         else if Budget.over_memory budget ~bytes:(heap_bytes ()) then begin
           drain := true;
           cfg.log "fleet memory budget reached; draining"
         end
       end;
       (* Drain: forward SIGTERM once to every in-flight shard; shards
          stop at the next seed boundary.  The watchdog below stays
          armed — a wedged shard ignores SIGTERM and only SIGKILL (with
          its deterministic bisection) resolves it. *)
       if !drain then begin
         if not !drain_announced then begin
           drain_announced := true;
           cfg.log
             (Printf.sprintf "draining: %d shard(s) in flight, %d unit(s) queued"
                (List.length !running)
                (Queue.length ready + List.length !delayed))
         end;
         List.iter
           (fun r ->
             if not r.r_term_sent then begin
               r.r_term_sent <- true;
               try Unix.kill r.r_pid Sys.sigterm with Unix.Unix_error _ -> ()
             end)
           !running
       end;
       (* Watchdog: a heartbeat that has not advanced within the hang
          budget convicts the shard's current seed. *)
       List.iter
         (fun r ->
           if not r.r_hang_killed then begin
             (match read_hb r.r_hb with
             | Some c when not (String.equal c r.r_hb_content) ->
                 r.r_hb_content <- c;
                 r.r_hb_at <- now
             | _ -> ());
             if now -. r.r_hb_at > cfg.hang_timeout_s then begin
               r.r_hang_killed <- true;
               try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ()
             end
           end)
         !running;
       (* Reap. *)
       let progressed = ref false in
       let still = ref [] in
       List.iter
         (fun r ->
           match Unix.waitpid [ Unix.WNOHANG ] r.r_pid with
           | 0, _ -> still := r :: !still
           | _, status ->
               progressed := true;
               handle_exit r status (Unix.gettimeofday ())
           | exception Unix.Unix_error (Unix.EINTR, _, _) ->
               still := r :: !still)
         !running;
       running := !still;
       (* Promote delayed units whose backoff expired. *)
       let due, later =
         List.partition (fun u -> u.u_eligible_at <= now) !delayed
       in
       delayed := later;
       List.iter (fun u -> Queue.add u ready) due;
       (* Dispatch. *)
       while
         (not !drain)
         && List.length !running < cfg.shards
         && not (Queue.is_empty ready)
       do
         progressed := true;
         let u = Queue.pop ready in
         if u.u_frontier > u.u_hi then finalize u ~ms:0. else spawn u
       done;
       Obs.Gauge.set shards_gauge (List.length !running);
       Obs.Gauge.set queue_gauge (Queue.length ready + List.length !delayed);
       save_ckpt ~force:false ();
       service_socket (if !progressed then 0. else 0.02)
     done;
     save_ckpt ~force:true ()
   with e ->
     (try save_ckpt ~force:true () with _ -> ());
     finally ();
     raise e);
  finally ();
  let pending = Queue.length ready + List.length !delayed in
  {
    f_units_total = !units_total;
    f_units_done = !units_done;
    f_units_requeued = !units_requeued;
    f_units_split = !units_split;
    f_pending = pending;
    f_programs = !g_programs;
    f_checks = !g_checks;
    f_disagreements = !g_disagreements;
    f_sim_runs = !g_sim_runs;
    f_sim_wedged = !g_sim_wedged;
    f_sim_skipped = !g_sim_skipped;
    f_states = !g_states;
    f_poison = !poisons;
    f_poison_total = List.length !prior_poison + List.length !poisons;
    f_wall_s = Unix.gettimeofday () -. t0;
    f_suspended = !drain && pending > 0;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "fleet: %d unit(s): %d done, %d pending, %d requeue(s), %d hang \
     bisection(s)@\n\
     corpus: %d program(s), %d oracle check(s), %d disagreement(s)@\n\
     sim: %d run(s), %d legal wedge(s) on blocking programs, %d skipped@\n\
     poison: %d seed(s) quarantined%s@\n\
     %d state(s) expanded, wall %.1fs, %.1f seed(s)/s%s"
    s.f_units_total s.f_units_done s.f_pending s.f_units_requeued
    s.f_units_split s.f_programs s.f_checks s.f_disagreements s.f_sim_runs
    s.f_sim_wedged s.f_sim_skipped s.f_poison_total
    (match s.f_poison with
    | [] -> ""
    | ps ->
        Printf.sprintf " (this run: %s)"
          (String.concat ", " (List.map (fun p -> string_of_int p.p_seed) ps)))
    s.f_states s.f_wall_s
    (if s.f_wall_s > 0. then float_of_int s.f_programs /. s.f_wall_s else 0.)
    (if s.f_suspended then " — SUSPENDED (resume with --resume)" else "")
