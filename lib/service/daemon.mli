(** The long-lived verification daemon behind [weakord serve].

    A single-threaded event loop serving many concurrent clients over a
    Unix-domain socket.  Clients speak the {!Wire} protocol
    ([SUBMIT]/[STATUS]/[RESULT]/[CANCEL]/[STATS]/[DRAIN]; spec in
    [docs/PROTOCOL.md]); submitted jobs become {e tickets} multiplexed
    onto the same fork-per-attempt machinery as the one-shot {!Batch}
    supervisor ({!Runner}), under the same timeout / retry-with-backoff
    / poison-quarantine policy, against one {!Verdict_cache} shared by
    every client — including the orbit-canonical symmetry key, so a
    job completes instantly when any client ever paid for a verdict of
    any program in its renaming class.

    {1 Fairness}

    Each client owns a FIFO queue of its pending tickets and dispatch
    round-robins across clients, so a bulk submitter cannot starve an
    interactive one.  Tickets restored by [--resume] belong to a
    synthetic orphan client that takes its round-robin turn like any
    other.

    {1 Shutdown contract}

    [SIGTERM], [SIGINT] or a [DRAIN] request start a graceful drain:
    admission stops ([ERR 503] to new [SUBMIT]s and connections),
    in-flight workers receive [SIGTERM] and park their jobs at a safe
    point (worker exit [9]), every unfinished ticket is checkpointed
    ([weakord.daemon] snapshot), blocked [RESULT … WAIT]s are answered
    [ERR 503], and {!run} returns with [suspended = true] when
    anything was left — the CLI maps that to exit [3], mirroring
    [weakord batch].  A periodic checkpoint also runs while serving,
    so even [SIGKILL] loses at most ~250 ms of queue state; finished
    verdicts are never lost (they are already in the cache and the
    JSONL log).  [--resume] then re-enqueues the checkpointed tickets
    as orphans. *)

type cfg = {
  socket : string;  (** Unix-domain socket path to bind *)
  out : string option;
      (** JSONL audit log, appended like [batch -o] — one record per
          finished ticket, same schema (record ids are ticket ids) *)
  workers : int;  (** max concurrent forked workers *)
  timeout_s : float;  (** per-attempt wall clock before SIGKILL *)
  retries : int;  (** attempts before quarantine *)
  backoff_ms : int;  (** base retry backoff (exponential + jitter) *)
  cache : Verdict_cache.t;  (** shared verdict cache *)
  checkpoint : string option;  (** snapshot path for drain/periodic saves *)
  resume : string option;  (** checkpoint to restore orphan tickets from *)
  model : Worker.model;  (** synchronization model for every job *)
  machine : string;  (** default machine for job lines naming none *)
  fuel : int option;  (** exploration fuel bound per job *)
  spill_dir : string option;  (** visited-store spill root *)
  mem_budget : int option;  (** visited-set memory budget, bytes *)
  max_clients : int;  (** concurrent connections before refusing *)
  log : string -> unit;  (** operator log sink *)
  verbose : bool;  (** log per-attempt worker lifecycle events *)
}

val default_cfg : cfg
(** Socket [weakord.sock], 4 workers, 10 s timeout, 3 retries, 100 ms
    backoff, in-memory cache, 64 clients, silent. *)

type summary = {
  submitted : int;  (** tickets accepted over all connections *)
  completed : int;  (** verdicts delivered (cached or computed) *)
  violations : int;  (** completed verdicts with [v_violation] *)
  quarantined : int;  (** tickets that exhausted their retries *)
  cancelled : int;  (** tickets cancelled by clients *)
  pending : int;  (** tickets checkpointed unfinished at drain *)
  served_from_cache : int;  (** completions without forking *)
  sym_dedup : int;  (** cache hits via the symmetry key only *)
  states_total : int;
      (** machine states expanded by non-cached verdicts — the
          numerator of the states-per-second throughput headline *)
  clients_total : int;  (** connections accepted over the lifetime *)
  cache : Verdict_cache.stats;
  suspended : bool;  (** drained with unfinished tickets *)
  wall_s : float;
}
(** What one daemon lifetime did, reported when {!run} returns. *)

exception Startup_error of string
(** The daemon could not start (socket in use, unreadable or
    mismatched resume checkpoint) — exit [2] territory, raised before
    any job runs. *)

val run : cfg -> summary
(** [run cfg] binds the socket and serves until drained.  Only returns
    after a graceful drain (signal or [DRAIN] request); propagates
    {!Startup_error} on misconfiguration.  Signal handlers for
    [SIGTERM]/[SIGINT]/[SIGPIPE] are installed for the duration and
    restored before returning. *)

val exit_code : summary -> int
(** [3] when [suspended] (unfinished tickets were checkpointed;
    restart with [--resume]), else [0]. *)

val pp_summary : Format.formatter -> summary -> unit
(** Multi-line operator summary: jobs, cache amortization and the
    states/s throughput headline. *)
