(** Delta-debugging reproducer minimization for disagreement dossiers.

    A fuzz or fleet campaign that quarantines a seed hands the operator
    a {e generated} program — typically a dozen instructions across
    several threads, most of them irrelevant to the failing oracle
    relation.  This module shrinks it: classic ddmin over the
    instruction list, then whole-thread removal, then location merging,
    each phase re-running a caller-supplied predicate that decides
    whether a candidate still exhibits the failure.

    {b Soundness.}  The shrinker only ever returns a program the
    predicate accepted (or the untouched original), so when the
    predicate is "re-run the differential oracle and check the same
    relation still fails", the minimized reproducer is guaranteed to
    still fail it — minimization can lose nothing but bulk.  The result
    is 1-minimal at instruction granularity: removing any single
    remaining instruction makes the predicate reject (this is ddmin's
    termination guarantee, checked again after the thread and location
    phases since those can re-open instruction removals).

    The predicate must hold on the input program; [ddmin] raises
    [Invalid_argument] otherwise, because "minimize a program that does
    not fail" has no meaningful answer. *)

type stats = {
  s_tests : int;  (** predicate invocations spent *)
  s_rounds : int;  (** outer fixpoint rounds *)
  s_gave_up : bool;  (** the test budget ran out before the fixpoint *)
}

val ddmin : ?max_tests:int -> pred:(Prog.t -> bool) -> Prog.t -> Prog.t * stats
(** [ddmin ~pred prog] returns the smallest program found that still
    satisfies [pred], plus the search statistics.  Phases: ddmin over
    the flattened instruction list, greedy whole-thread removal, greedy
    location merging (renaming a location to another one already in the
    program), iterated to a fixpoint.  [max_tests] (default [2000])
    bounds predicate invocations; on exhaustion the best program so far
    is returned with [s_gave_up = true] — still sound, possibly not
    minimal.
    @raise Invalid_argument when [pred prog] is [false]. *)

val instr_count : Prog.t -> int
(** Total instructions across threads — the size measure minimized. *)
