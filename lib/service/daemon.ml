(* The long-lived verification daemon behind [weakord serve].

   One single-threaded event loop owns everything: the listening
   Unix-domain socket, every client connection, the fork-per-job worker
   pool, the verdict cache, and the checkpoint.  Clients speak the Wire
   protocol; jobs they SUBMIT become tickets multiplexed onto the same
   per-attempt machinery the one-shot batch supervisor uses (Runner),
   under the same timeout/retry/backoff/quarantine policy.

   Fairness: each client owns a FIFO of its pending tickets and
   dispatch round-robins across clients, so a client that dumps 10^4
   jobs cannot starve one submitting a single program.  Tickets
   restored from a checkpoint belong to a synthetic "orphan" client
   that takes its turn like any other.

   The cache is shared across all clients (exact key first, then the
   orbit-canonical symmetry key), so client B's job completes instantly
   when client A already paid for the verdict — the amortization the
   one-shot batch could never get across invocations.

   Shutdown mirrors batch: SIGTERM/SIGINT (or a DRAIN request) stops
   admission, SIGTERMs in-flight workers so they park their jobs at a
   safe point, checkpoints every unfinished ticket, and reports
   suspended=true (exit 3) when anything is left.  A periodic
   checkpoint also runs between drains, so even SIGKILL loses at most a
   quarter second of queue state — completed verdicts are never lost,
   they are already in the cache and the JSONL log. *)

type cfg = {
  socket : string;
  out : string option;
  workers : int;
  timeout_s : float;
  retries : int;
  backoff_ms : int;
  cache : Verdict_cache.t;
  checkpoint : string option;
  resume : string option;
  model : Worker.model;
  machine : string;
  fuel : int option;
  spill_dir : string option;
  mem_budget : int option;
  max_clients : int;
  log : string -> unit;
  verbose : bool;
}

let default_cfg =
  {
    socket = "weakord.sock";
    out = None;
    workers = 4;
    timeout_s = 10.;
    retries = 3;
    backoff_ms = 100;
    cache = Verdict_cache.in_memory ();
    checkpoint = None;
    resume = None;
    model = Worker.Drf0;
    machine = "def2";
    fuel = None;
    spill_dir = None;
    mem_budget = None;
    max_clients = 64;
    log = ignore;
    verbose = false;
  }

type summary = {
  submitted : int;
  completed : int;
  violations : int;
  quarantined : int;
  cancelled : int;
  pending : int;
  served_from_cache : int;
  sym_dedup : int;
  states_total : int;
  clients_total : int;
  cache : Verdict_cache.stats;
  suspended : bool;
  wall_s : float;
}

exception Startup_error of string

let exit_code s = if s.suspended then 3 else 0

(* --- checkpoint -------------------------------------------------------------- *)

let ckpt_kind = "weakord.daemon"

type ckpt = {
  c_model : string;
  c_next_ticket : int;
  c_pending : (int * Job.t * int) list;  (* ticket, job, failed attempts *)
}

let write_ckpt path ck =
  Snapshot.write_file path
    (Snapshot.frame ~kind:ckpt_kind
       ~meta:(Printf.sprintf "%d pending ticket(s)" (List.length ck.c_pending))
       ~payload:(Marshal.to_string ck []))

let load_ckpt path =
  match Snapshot.load path with
  | Error (e, _) ->
      raise
        (Startup_error
           (Printf.sprintf "%s: %s" path (Snapshot.error_string e)))
  | Ok { Snapshot.container = c; recovered } ->
      if not (String.equal c.Snapshot.kind ckpt_kind) then
        raise
          (Startup_error
             (Printf.sprintf "%s holds a %S snapshot, expected %S" path
                c.Snapshot.kind ckpt_kind));
      (match (Marshal.from_string c.Snapshot.payload 0 : ckpt) with
      | ck -> (ck, recovered)
      | exception (Failure _ | Invalid_argument _) ->
          raise (Startup_error (path ^ ": checkpoint payload does not unmarshal")))

(* --- per-ticket and per-connection state ------------------------------------- *)

type phase =
  | Queued
  | Running
  | Done  (* record holds the final JSONL line *)
  | Cancelled

type ticket = {
  t_id : int;
  t_job : Job.t;  (* [t_job.id = t_id] *)
  t_client : int;  (* owner's connection id; [orphan_client] after resume *)
  t_mat : Runner.mat;
  mutable t_phase : phase;
  mutable t_record : string option;
  mutable t_attempts : int;
  mutable t_eligible_at : float;
  mutable t_last_reason : string;
  mutable t_last_stderr : string;
  mutable t_cancel_requested : bool;
}

let orphan_client = -1

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_dec : Wire.decoder;
  c_out : Buffer.t;  (* bytes awaiting a writable socket *)
  mutable c_hello : bool;
  mutable c_closing : bool;  (* flush c_out, then close *)
  mutable c_submitted : int;
  mutable c_completed : int;
}

type running = {
  r_ticket : ticket;
  r_pid : int;
  r_started : float;
  r_result : string;
  r_stderr : string;
  mutable r_timed_out : bool;
  mutable r_term_sent : bool;
}

let phase_string t =
  match t.t_phase with
  | Queued -> if t.t_eligible_at > 0. then "backoff" else "queued"
  | Running -> "running"
  | Cancelled -> "cancelled"
  | Done -> "done"

(* --- the server -------------------------------------------------------------- *)

let bind_socket path =
  (* A leftover socket file from a crashed daemon must not block
     restart, but an actively served one must: probe by connecting. *)
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () ->
          Unix.close probe;
          raise
            (Startup_error
               (Printf.sprintf "%s: a daemon is already serving this socket"
                  path))
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
          Unix.close probe;
          (try Unix.unlink path with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ ->
          Unix.close probe;
          (try Unix.unlink path with Unix.Unix_error _ -> ()))
  | _ ->
      raise
        (Startup_error
           (Printf.sprintf "%s exists and is not a socket" path))
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     Unix.close fd;
     raise
       (Startup_error
          (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e))));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let run cfg =
  if cfg.workers < 1 then invalid_arg "Daemon.run: workers must be >= 1";
  if cfg.retries < 1 then invalid_arg "Daemon.run: retries must be >= 1";
  let t0 = Unix.gettimeofday () in
  let model_name = Worker.model_name cfg.model in
  (* EPIPE from a vanished client must be an error code on the write,
     not a process-killing signal. *)
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let drain = ref false in
  let install s = Sys.signal s (Sys.Signal_handle (fun _ -> drain := true)) in
  let old_term = install Sys.sigterm in
  let old_int = install Sys.sigint in
  let restore_signals () =
    Sys.set_signal Sys.sigpipe old_pipe;
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int
  in

  (* Tickets and queues. *)
  let tickets : (int, ticket) Hashtbl.t = Hashtbl.create 256 in
  let next_ticket = ref 0 in
  let queues : (int, int Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let rr : int list ref = ref [] in  (* round-robin order of queue owners *)
  let queue_of client =
    match Hashtbl.find_opt queues client with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace queues client q;
        rr := !rr @ [ client ];
        q
  in
  let delayed : ticket list ref = ref [] in
  let running : running list ref = ref [] in
  let waiters : (int, int list) Hashtbl.t = Hashtbl.create 16 in

  (* Tallies. *)
  let submitted = ref 0 in
  let completed = ref 0 in
  let violations = ref 0 in
  let quarantined = ref 0 in
  let cancelled = ref 0 in
  let served_from_cache = ref 0 in
  let sym_dedup = ref 0 in
  let states_total = ref 0 in
  let clients_total = ref 0 in
  let queue_gauge = Obs.Gauge.create () in
  let workers_gauge = Obs.Gauge.create () in

  (* Resume: restore unfinished tickets as orphans. *)
  (match cfg.resume with
  | None -> ()
  | Some path ->
      let ck, recovered = load_ckpt path in
      if not (String.equal ck.c_model model_name) then
        raise
          (Startup_error
             (Printf.sprintf
                "checkpoint was taken under model %s, this daemon uses %s"
                ck.c_model model_name));
      next_ticket := ck.c_next_ticket;
      let q = queue_of orphan_client in
      List.iter
        (fun (id, job, attempts) ->
          let t =
            {
              t_id = id;
              t_job = job;
              t_client = orphan_client;
              t_mat = Runner.materialize ~model:cfg.model job;
              t_phase = Queued;
              t_record = None;
              t_attempts = attempts;
              t_eligible_at = 0.;
              t_last_reason = "";
              t_last_stderr = "";
              t_cancel_requested = false;
            }
          in
          Hashtbl.replace tickets id t;
          Queue.add id q)
        ck.c_pending;
      cfg.log
        (Printf.sprintf "resumed %d orphan ticket(s) from %s%s"
           (List.length ck.c_pending) path
           (if recovered then " (recovered from the last-good .prev generation)"
            else "")));

  let listen_fd = bind_socket cfg.socket in

  (* Output stream (append; survives resume like batch). *)
  let out_ch, close_out_ch =
    match cfg.out with
    | None -> (None, fun () -> ())
    | Some p ->
        let ch = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 p in
        (Some ch, fun () -> close_out ch)
  in
  let emit line =
    match out_ch with
    | None -> ()
    | Some ch ->
        output_string ch line;
        output_char ch '\n';
        flush ch
  in

  (* Scratch area for worker result/stderr files. *)
  let scratch =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "weakord-daemon-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let result_path id = Filename.concat scratch (Printf.sprintf "t%d.result" id) in
  let stderr_path id = Filename.concat scratch (Printf.sprintf "t%d.stderr" id) in

  (* Connections. *)
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_conn = ref 0 in
  let send c payload =
    Buffer.add_string c.c_out (Wire.frame payload)
  in
  let close_conn c =
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
    Hashtbl.remove conns c.c_id
  in

  let pending_tickets () =
    Hashtbl.fold
      (fun _ t acc ->
        match t.t_phase with Queued | Running -> t :: acc | _ -> acc)
      tickets []
    |> List.sort (fun a b -> compare a.t_id b.t_id)
  in

  let last_ckpt = ref 0. in
  let save_ckpt ~force () =
    match cfg.checkpoint with
    | None -> ()
    | Some path ->
        let now = Unix.gettimeofday () in
        if force || now -. !last_ckpt > 0.25 then begin
          last_ckpt := now;
          write_ckpt path
            {
              c_model = model_name;
              c_next_ticket = !next_ticket;
              c_pending =
                List.map
                  (fun t -> (t.t_id, t.t_job, t.t_attempts))
                  (pending_tickets ());
            }
        end
  in

  let notify_waiters t =
    match Hashtbl.find_opt waiters t.t_id with
    | None -> ()
    | Some ids ->
        Hashtbl.remove waiters t.t_id;
        List.iter
          (fun cid ->
            match Hashtbl.find_opt conns cid with
            | None -> ()
            | Some c -> (
                match (t.t_phase, t.t_record) with
                | Done, Some r -> send c (Wire.ok r)
                | Cancelled, _ ->
                    send c (Wire.err Wire.e_gone "job was cancelled")
                | _ -> send c (Wire.err Wire.e_draining "server drained")))
          ids
  in

  let finish_ticket t record ~count_client =
    t.t_phase <- Done;
    t.t_record <- Some record;
    emit record;
    notify_waiters t;
    (if count_client then
       match Hashtbl.find_opt conns t.t_client with
       | Some c -> c.c_completed <- c.c_completed + 1
       | None -> ());
    save_ckpt ~force:false ()
  in

  let finish_verdict t v ~cached ~ms =
    (match t.t_mat.Runner.m_prog with
    | Some (_, key, skey) ->
        Verdict_cache.add cfg.cache key v;
        Verdict_cache.add cfg.cache skey v
    | None -> ());
    incr completed;
    if v.Verdict_cache.v_violation then incr violations;
    if cached then incr served_from_cache
    else states_total := !states_total + v.Verdict_cache.v_states;
    finish_ticket t
      (Runner.verdict_record t.t_job v ~cached ~attempts:(t.t_attempts + 1) ~ms)
      ~count_client:true
  in

  let quarantine t ~ms =
    incr quarantined;
    cfg.log
      (Printf.sprintf "QUARANTINED %s after %d attempt(s): %s"
         (Job.label t.t_job) t.t_attempts t.t_last_reason);
    finish_ticket t
      (Runner.quarantine_record t.t_job ~reason:t.t_last_reason
         ~stderr:t.t_last_stderr ~attempts:t.t_attempts ~ms)
      ~count_client:true
  in

  let cancel_done t =
    t.t_phase <- Cancelled;
    incr cancelled;
    notify_waiters t
  in

  let requeue_backoff t =
    let delay =
      Batch.backoff_delay_ms ~base:cfg.backoff_ms ~attempt:t.t_attempts
        ~job_id:t.t_id
    in
    t.t_eligible_at <- Unix.gettimeofday () +. (float_of_int delay /. 1000.);
    delayed := !delayed @ [ t ];
    if cfg.verbose then
      cfg.log
        (Printf.sprintf "retrying %s in %d ms (attempt %d/%d: %s)"
           (Job.label t.t_job) delay (t.t_attempts + 1) cfg.retries
           t.t_last_reason)
  in

  let attempt_failed r reason =
    let t = r.r_ticket in
    t.t_attempts <- t.t_attempts + 1;
    t.t_last_reason <- reason;
    t.t_last_stderr <- Runner.read_tail r.r_stderr;
    if t.t_attempts >= cfg.retries then
      quarantine t ~ms:((Unix.gettimeofday () -. r.r_started) *. 1000.)
    else requeue_backoff t
  in

  let handle_exit r status =
    let t = r.r_ticket in
    let ms = (Unix.gettimeofday () -. r.r_started) *. 1000. in
    t.t_phase <- Queued;
    match status with
    | Unix.WEXITED 0 -> (
        match Runner.read_result r.r_result with
        | Some v -> finish_verdict t v ~cached:false ~ms
        | None ->
            attempt_failed r "worker exited 0 but left no valid result file")
    | Unix.WEXITED 9 ->
        if t.t_cancel_requested then cancel_done t
        else begin
          (* Drain parking: back to the owner's queue for the checkpoint. *)
          if cfg.verbose then
            cfg.log
              (Printf.sprintf "%s cancelled at a safe point" (Job.label t.t_job));
          Queue.add t.t_id (queue_of t.t_client)
        end
    | Unix.WEXITED n -> attempt_failed r (Printf.sprintf "worker exited %d" n)
    | Unix.WSIGNALED _ when r.r_timed_out ->
        attempt_failed r
          (Printf.sprintf "timeout: SIGKILL after %.1fs" cfg.timeout_s)
    | Unix.WSIGNALED s ->
        attempt_failed r
          (Printf.sprintf "worker killed by %s" (Runner.signal_name s))
    | Unix.WSTOPPED _ ->
        (try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ());
        attempt_failed r "worker stopped unexpectedly"
  in

  let exec =
    {
      Runner.x_model = cfg.model;
      x_fuel = cfg.fuel;
      x_spill_dir = cfg.spill_dir;
      x_mem_budget = cfg.mem_budget;
    }
  in
  let spawn t =
    let rp = result_path t.t_id and sp = stderr_path t.t_id in
    (match out_ch with Some ch -> flush ch | None -> ());
    let pid = Runner.spawn exec ~result_path:rp ~stderr_path:sp t.t_job t.t_mat in
    if cfg.verbose then
      cfg.log
        (Printf.sprintf "worker %d started %s (attempt %d/%d)" pid
           (Job.label t.t_job) (t.t_attempts + 1) cfg.retries);
    t.t_phase <- Running;
    running :=
      {
        r_ticket = t;
        r_pid = pid;
        r_started = Unix.gettimeofday ();
        r_result = rp;
        r_stderr = sp;
        r_timed_out = false;
        r_term_sent = false;
      }
      :: !running
  in

  let queue_depth () =
    Hashtbl.fold (fun _ q acc -> acc + Queue.length q) queues 0
    + List.length !delayed
  in

  (* Round-robin dispatch: the serving owner rotates to the back; every
     other owner keeps its place even when its queue is momentarily
     empty — a quiet client must not fall out of the rotation, its next
     SUBMIT reuses the same queue.  Owners whose client is gone and
     whose queue is drained are retired here. *)
  let pop_next_ticket () =
    let rec try_owners skipped = function
      | [] -> None
      | owner :: rest -> (
          let q = queue_of owner in
          match Queue.take_opt q with
          | None ->
              if owner <> orphan_client && not (Hashtbl.mem conns owner)
              then begin
                Hashtbl.remove queues owner;
                rr := List.filter (fun o -> o <> owner) !rr;
                try_owners skipped rest
              end
              else try_owners (owner :: skipped) rest
          | Some id -> (
              match Hashtbl.find_opt tickets id with
              | Some t when t.t_phase = Queued ->
                  rr := List.rev_append skipped (rest @ [ owner ]);
                  Some t
              | _ -> try_owners skipped (owner :: rest)
              (* cancelled while queued: retry the same owner *)))
    in
    try_owners [] !rr
  in

  let dispatch () =
    let continue = ref true in
    while
      !continue
      && (not !drain)
      && List.length !running < cfg.workers
    do
      match pop_next_ticket () with
      | None -> continue := false
      | Some t -> (
          Obs.Gauge.set queue_gauge (queue_depth ());
          match t.t_mat.Runner.m_error with
          | Some e ->
              t.t_last_reason <- "unusable job: " ^ e;
              t.t_attempts <- cfg.retries;
              quarantine t ~ms:0.
          | None -> (
              match t.t_mat.Runner.m_prog with
              | Some (_, key, skey) -> (
                  match Verdict_cache.find cfg.cache key with
                  | Some v -> finish_verdict t v ~cached:true ~ms:0.
                  | None -> (
                      match Verdict_cache.find cfg.cache skey with
                      | Some v ->
                          incr sym_dedup;
                          finish_verdict t v ~cached:true ~ms:0.
                      | None -> spawn t))
              | None -> spawn t));
      Obs.Gauge.set workers_gauge (List.length !running)
    done
  in

  let stats_json () =
    let per_client =
      Hashtbl.fold
        (fun _ c acc ->
          Printf.sprintf
            "{\"client\":%d,\"submitted\":%d,\"completed\":%d}" c.c_id
            c.c_submitted c.c_completed
          :: acc)
        conns []
      |> List.sort compare
    in
    let wall = Unix.gettimeofday () -. t0 in
    let cs = Verdict_cache.stats cfg.cache in
    Printf.sprintf
      "{\"clients\":%d,\"clients_total\":%d,\"queue_depth\":%d,\"running\":%d,\"submitted\":%d,\"completed\":%d,\"violations\":%d,\"quarantined\":%d,\"cancelled\":%d,\"served_from_cache\":%d,\"sym_dedup\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"cache_entries\":%d,\"states_total\":%d,\"states_per_sec\":%.1f,\"queue_depth_max\":%d,\"queue_depth_mean\":%.1f,\"workers_max\":%d,\"workers_mean\":%.1f,\"uptime_s\":%.1f,\"draining\":%b,\"per_client\":[%s]}"
      (Hashtbl.length conns) !clients_total (queue_depth ())
      (List.length !running) !submitted !completed !violations !quarantined
      !cancelled !served_from_cache !sym_dedup cs.Verdict_cache.hits
      cs.Verdict_cache.misses cs.Verdict_cache.entries !states_total
      (if wall > 0. then float_of_int !states_total /. wall else 0.)
      (Obs.Gauge.max_level queue_gauge)
      (Obs.Gauge.mean queue_gauge)
      (Obs.Gauge.max_level workers_gauge)
      (Obs.Gauge.mean workers_gauge)
      wall !drain
      (String.concat "," per_client)
  in

  let submit c jobline =
    if !drain then send c (Wire.err Wire.e_draining "server is draining")
    else
      match Job.parse_string ~default_machine:cfg.machine jobline with
      | Error e -> send c (Wire.err Wire.e_bad e)
      | Ok [] -> send c (Wire.err Wire.e_bad "job line expands to no jobs")
      | Ok jobs ->
          let q = queue_of c.c_id in
          let first = !next_ticket in
          List.iter
            (fun j ->
              let id = !next_ticket in
              incr next_ticket;
              incr submitted;
              c.c_submitted <- c.c_submitted + 1;
              let job = { j with Job.id } in
              let t =
                {
                  t_id = id;
                  t_job = job;
                  t_client = c.c_id;
                  t_mat = Runner.materialize ~model:cfg.model job;
                  t_phase = Queued;
                  t_record = None;
                  t_attempts = 0;
                  t_eligible_at = 0.;
                  t_last_reason = "";
                  t_last_stderr = "";
                  t_cancel_requested = false;
                }
              in
              Hashtbl.replace tickets id t;
              Queue.add id q)
            jobs;
          Obs.Gauge.set queue_gauge (queue_depth ());
          let last = !next_ticket - 1 in
          if first = last then
            send c (Wire.ok (Printf.sprintf "ticket=%d" first))
          else send c (Wire.ok (Printf.sprintf "tickets=%d-%d" first last));
          save_ckpt ~force:false ()
  in

  let handle_request c req =
    match req with
    | Wire.Hello v ->
        if String.equal v Wire.greeting then begin
          c.c_hello <- true;
          send c
            (Wire.ok
               (Printf.sprintf "%s engine=%s" Wire.greeting
                  Verdict_cache.engine_version))
        end
        else
          send c
            (Wire.err Wire.e_hello
               (Printf.sprintf "unsupported version %S, this server speaks %s"
                  v Wire.greeting))
    | _ when not c.c_hello ->
        send c (Wire.err Wire.e_hello "say HELLO first")
    | Wire.Submit jobline -> submit c jobline
    | Wire.Status id -> (
        match Hashtbl.find_opt tickets id with
        | None -> send c (Wire.err Wire.e_unknown (Printf.sprintf "no ticket %d" id))
        | Some t ->
            send c (Wire.ok (Printf.sprintf "%d %s" t.t_id (phase_string t))))
    | Wire.Result { ticket = id; wait } -> (
        match Hashtbl.find_opt tickets id with
        | None -> send c (Wire.err Wire.e_unknown (Printf.sprintf "no ticket %d" id))
        | Some { t_phase = Done; t_record = Some r; _ } -> send c (Wire.ok r)
        | Some { t_phase = Cancelled; _ } ->
            send c (Wire.err Wire.e_gone "job was cancelled")
        | Some t ->
            if wait then
              Hashtbl.replace waiters t.t_id
                (c.c_id
                :: (Option.value ~default:[] (Hashtbl.find_opt waiters t.t_id)))
            else
              send c
                (Wire.err Wire.e_conflict
                   (Printf.sprintf "ticket %d is %s; use RESULT %d WAIT" id
                      (phase_string t) id)))
    | Wire.Cancel id -> (
        match Hashtbl.find_opt tickets id with
        | None -> send c (Wire.err Wire.e_unknown (Printf.sprintf "no ticket %d" id))
        | Some t -> (
            match t.t_phase with
            | Done | Cancelled ->
                send c
                  (Wire.err Wire.e_conflict
                     (Printf.sprintf "ticket %d already %s" id (phase_string t)))
            | Queued ->
                t.t_cancel_requested <- true;
                delayed := List.filter (fun d -> d.t_id <> t.t_id) !delayed;
                cancel_done t;
                send c (Wire.ok (Printf.sprintf "%d cancelled" id))
            | Running ->
                t.t_cancel_requested <- true;
                List.iter
                  (fun r ->
                    if r.r_ticket.t_id = t.t_id && not r.r_term_sent then begin
                      r.r_term_sent <- true;
                      try Unix.kill r.r_pid Sys.sigterm
                      with Unix.Unix_error _ -> ()
                    end)
                  !running;
                send c (Wire.ok (Printf.sprintf "%d cancelling" id))))
    | Wire.Stats -> send c (Wire.ok (stats_json ()))
    | Wire.Drain ->
        drain := true;
        send c
          (Wire.ok
             (Printf.sprintf "draining pending=%d running=%d" (queue_depth ())
                (List.length !running)))
    | Wire.Ping -> send c (Wire.ok "pong")
    | Wire.Bye ->
        send c (Wire.ok "bye");
        c.c_closing <- true
  in

  let read_conn c =
    match
      let buf = Bytes.create 4096 in
      let n = Unix.read c.c_fd buf 0 4096 in
      if n = 0 then `Eof else `Data (Bytes.sub_string buf 0 n)
    with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn c
    | `Eof -> close_conn c
    | `Data data ->
        Wire.feed c.c_dec data;
        let rec pump () =
          match Wire.next c.c_dec with
          | Ok None -> ()
          | Ok (Some payload) ->
              (match Wire.parse_request payload with
              | Ok req -> handle_request c req
              | Error (code, msg) -> send c (Wire.err code msg));
              if not c.c_closing then pump ()
          | Error e ->
              (* Framing violations latch: answer once, then hang up. *)
              send c (Wire.err Wire.e_bad ("framing: " ^ e));
              c.c_closing <- true
        in
        pump ()
  in

  let write_conn c =
    let s = Buffer.contents c.c_out in
    if String.length s > 0 then (
      match Unix.write_substring c.c_fd s 0 (String.length s) with
      | n ->
          Buffer.clear c.c_out;
          if n < String.length s then
            Buffer.add_substring c.c_out s n (String.length s - n)
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> close_conn c);
    if c.c_closing && Buffer.length c.c_out = 0 then close_conn c
  in

  let accept_conns () =
    let rec go () =
      match Unix.accept listen_fd with
      | fd, _ ->
          if !drain || Hashtbl.length conns >= cfg.max_clients then (
            (* Refuse politely: one frame, then close. *)
            let msg =
              Wire.frame
                (Wire.err Wire.e_draining
                   (if !drain then "server is draining" else "too many clients"))
            in
            (try
               ignore (Unix.write_substring fd msg 0 (String.length msg))
             with Unix.Unix_error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ()))
          else begin
            Unix.set_nonblock fd;
            let id = !next_conn in
            incr next_conn;
            incr clients_total;
            Hashtbl.replace conns id
              {
                c_id = id;
                c_fd = fd;
                c_dec = Wire.decoder ();
                c_out = Buffer.create 256;
                c_hello = false;
                c_closing = false;
                c_submitted = 0;
                c_completed = 0;
              };
            if cfg.verbose then cfg.log (Printf.sprintf "client %d connected" id)
          end;
          go ()
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in

  let drain_announced = ref false in
  let finally () =
    restore_signals ();
    close_out_ch ();
    Hashtbl.iter (fun _ c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) conns;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
    (match Sys.readdir scratch with
    | files ->
        Array.iter
          (fun f -> try Sys.remove (Filename.concat scratch f) with Sys_error _ -> ())
          files;
        (try Unix.rmdir scratch with Unix.Unix_error _ -> ())
    | exception Sys_error _ -> ())
  in

  cfg.log
    (Printf.sprintf "serving on %s (model %s, %d worker(s))" cfg.socket
       model_name cfg.workers);

  (try
     let continue () = (not !drain) || !running <> [] in
     while continue () do
       let now = Unix.gettimeofday () in
       (* Drain: forward SIGTERM once to every in-flight worker. *)
       if !drain then begin
         if not !drain_announced then begin
           drain_announced := true;
           cfg.log
             (Printf.sprintf "draining: %d worker(s) in flight, %d job(s) queued"
                (List.length !running) (queue_depth ()))
         end;
         List.iter
           (fun r ->
             if not r.r_term_sent then begin
               r.r_term_sent <- true;
               try Unix.kill r.r_pid Sys.sigterm with Unix.Unix_error _ -> ()
             end)
           !running
       end;
       (* Timeouts. *)
       List.iter
         (fun r ->
           if (not r.r_timed_out) && now -. r.r_started > cfg.timeout_s then begin
             r.r_timed_out <- true;
             try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ()
           end)
         !running;
       (* Reap. *)
       let still = ref [] in
       List.iter
         (fun r ->
           match Unix.waitpid [ Unix.WNOHANG ] r.r_pid with
           | 0, _ -> still := r :: !still
           | _, status -> handle_exit r status
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> still := r :: !still)
         !running;
       running := !still;
       Obs.Gauge.set workers_gauge (List.length !running);
       (* Promote expired backoffs back into their owner's queue. *)
       let due, later = List.partition (fun t -> t.t_eligible_at <= now) !delayed in
       delayed := later;
       List.iter
         (fun t ->
           t.t_eligible_at <- 0.;
           Queue.add t.t_id (queue_of t.t_client))
         due;
       dispatch ();
       save_ckpt ~force:false ();
       (* I/O. *)
       let rfds =
         listen_fd
         :: Hashtbl.fold (fun _ c acc -> c.c_fd :: acc) conns []
       in
       let wfds =
         Hashtbl.fold
           (fun _ c acc ->
             if Buffer.length c.c_out > 0 || c.c_closing then c.c_fd :: acc
             else acc)
           conns []
       in
       (match Unix.select rfds wfds [] 0.02 with
       | rs, ws, _ ->
           if List.mem listen_fd rs then accept_conns ();
           Hashtbl.fold (fun _ c acc -> c :: acc) conns []
           |> List.iter (fun c ->
                  if List.mem c.c_fd rs then read_conn c);
           Hashtbl.fold (fun _ c acc -> c :: acc) conns []
           |> List.iter (fun c ->
                  if List.mem c.c_fd ws && Hashtbl.mem conns c.c_id then
                    write_conn c)
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
     done;
     (* Drained: every waiter still registered is waiting on a ticket
        that will not finish in this process. *)
     Hashtbl.iter
       (fun _ ids ->
         List.iter
           (fun cid ->
             match Hashtbl.find_opt conns cid with
             | Some c -> send c (Wire.err Wire.e_draining "server drained")
             | None -> ())
           ids)
       waiters;
     Hashtbl.reset waiters;
     (* Best-effort flush of goodbye frames before the sockets close. *)
     Hashtbl.fold (fun _ c acc -> c :: acc) conns []
     |> List.iter (fun c -> write_conn c);
     save_ckpt ~force:true ()
   with e ->
     (try save_ckpt ~force:true () with _ -> ());
     finally ();
     raise e);
  finally ();
  let pending = List.length (pending_tickets ()) in
  {
    submitted = !submitted;
    completed = !completed;
    violations = !violations;
    quarantined = !quarantined;
    cancelled = !cancelled;
    pending;
    served_from_cache = !served_from_cache;
    sym_dedup = !sym_dedup;
    states_total = !states_total;
    clients_total = !clients_total;
    cache = Verdict_cache.stats cfg.cache;
    suspended = pending > 0;
    wall_s = Unix.gettimeofday () -. t0;
  }

let pp_summary ppf s =
  let c = s.cache in
  Format.fprintf ppf
    "daemon: %d job(s) submitted by %d client(s): %d finished (%d \
     violation(s), %d quarantined, %d cancelled, %d pending), %d served from \
     cache (%d via symmetry)@\n\
     cache: %d hit(s), %d miss(es), %d appended, %d entrie(s)@\n\
     %d state(s) expanded, wall %.1fs, %.0f states/s%s"
    s.submitted s.clients_total s.completed s.violations s.quarantined
    s.cancelled s.pending s.served_from_cache s.sym_dedup c.Verdict_cache.hits
    c.Verdict_cache.misses c.Verdict_cache.appended c.Verdict_cache.entries
    s.states_total s.wall_s
    (if s.wall_s > 0. then float_of_int s.states_total /. s.wall_s else 0.)
    (if s.suspended then " — SUSPENDED (resume with --resume)" else "")
