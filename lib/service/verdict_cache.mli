(** The persistent verdict cache: an append-only, per-record CRC-framed
    file mapping (canonical program, machine, model, engine version) to a
    finished verdict.

    Robustness contract: a torn tail (the writer was killed mid-append)
    or a corrupted record (bit rot, a concurrent writer's garbage) can
    only ever degrade to a {e recompute} — never to a wrong or stale
    verdict.  Every record carries its own CRC-32, validated before the
    payload is decoded; an invalid record is skipped and counted, and the
    reader resynchronizes on the next record magic.

    The cache key includes {!engine_version}: bumping it (any change to
    machine semantics, the generator mapping, or the verdict payload
    shape) orphans every old record wholesale instead of serving stale
    verdicts.  Keys use the canonical program {e text} (the printed
    litmus source minus the name line), so the same program reached via a
    file, a builtin, or a generator seed shares one cache slot. *)

type verdict = {
  v_outcomes : string list;  (** printed finals, in {!Final.Set} order *)
  v_appears_sc : bool;
      (** the machine's outcome set equals the SC reference set *)
  v_obeys_model : bool;
      (** the program meets its synchronization-model obligation *)
  v_allows_exists : bool option;
      (** whether the program's [exists] clause is reachable ([None]
          when it has no such clause) *)
  v_violation : bool;  (** [v_obeys_model] and not [v_appears_sc] *)
  v_states : int;  (** machine states expanded when first computed *)
  v_complete : bool;  (** the machine sweep was exhaustive *)
  v_degraded : int option;
      (** the sweep degraded to a Bloom visited set after this many
          expansions ([None]: it never did) *)
  v_spilled_runs : int;
      (** visited-set runs the sweep spilled to disk ([0] without a
          spill directory) *)
}

val engine_version : string
(** Part of every key.  Bump on any change that can alter a verdict for
    the same program text: machine semantics, SC enumeration, generator
    mapping, or this record type. *)

val canonical_text : Prog.t -> string
(** The name-independent canonical program rendering hashed into keys. *)

val key : prog:Prog.t -> machine:string -> model:string -> string
(** The cache key: canonical-program digest + machine + model +
    {!engine_version}. *)

val sym_key : prog:Prog.t -> machine:string -> model:string -> string
(** The symmetry-dedup key: like {!key} but digesting the
    orbit-canonical rendering ({!Prog_canon.text}), so every program in
    one processor/location/register-renaming class shares the slot.
    Verdict fields are renaming-invariant except [v_outcomes], whose
    strings mention the {e first} class member's names — consumers that
    only count outcomes (the batch JSONL) are unaffected. *)

type t
(** An open cache: the in-memory index plus, for {!open_file} caches,
    the append-only backing file. *)

val in_memory : unit -> t
(** A cache with no backing file (a [--no-cache] run still counts
    intra-batch hits). *)

val open_file : string -> t
(** Load [path] (tolerating missing files, torn tails and corrupt
    records — each invalid record is counted and skipped) and open it
    for appending.
    @raise Sys_error when the directory is unwritable. *)

val frame : string -> verdict -> string
(** The on-disk framing of one (key, verdict) record — exposed so tests
    can fabricate torn and corrupted records. *)

val find : t -> string -> verdict option
(** Lookup by {!key}; every call counts as a hit or a miss. *)

val add : t -> string -> verdict -> unit
(** Record a verdict: registered in memory and appended (CRC-framed,
    flushed) to the backing file when there is one.  Re-adding an
    existing key is a no-op — first verdict wins. *)

type stats = {
  entries : int;  (** live entries in memory *)
  loaded : int;  (** valid records read from the backing file at open *)
  corrupt_skipped : int;  (** invalid records skipped at open *)
  hits : int;  (** {!find} calls answered *)
  misses : int;  (** {!find} calls not answered *)
  appended : int;  (** records appended this session *)
}
(** Lifetime counters, reported in the batch/daemon summaries. *)

val stats : t -> stats
(** A snapshot of the counters so far. *)

val close : t -> unit
(** Flush and close the backing file, if any.  The [t] must not be
    used afterwards. *)
