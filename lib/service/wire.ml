(* The daemon's wire protocol: length-prefixed text frames carrying
   line-oriented requests and responses.  See docs/PROTOCOL.md for the
   operator-facing specification; this module is its single
   implementation, used by both the server and the bundled client. *)

let version = 1
let max_frame = 65536

let greeting = Printf.sprintf "weakord/%d" version

(* --- framing ----------------------------------------------------------------- *)

let frame payload =
  Printf.sprintf "%d %s\n" (String.length payload) payload

type decoder = { buf : Buffer.t; mutable dead : string option }

let decoder () = { buf = Buffer.create 256; dead = None }

let feed d s = if d.dead = None then Buffer.add_string d.buf s

let digits_limit = 5 (* max_frame fits in 5 decimal digits *)

let next d =
  match d.dead with
  | Some e -> Error e
  | None -> (
      let s = Buffer.contents d.buf in
      let n = String.length s in
      (* Parse "<len> " — reject garbage early so a stream desync is a
         loud protocol error, not a silent hang waiting for bytes. *)
      let rec scan_len i acc =
        if i >= n then
          if i > digits_limit then Error "frame length: too many digits"
          else Ok None (* need more bytes *)
        else
          match s.[i] with
          | '0' .. '9' when i < digits_limit ->
              scan_len (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0'))
          | '0' .. '9' -> Error "frame length: too many digits"
          | ' ' when i > 0 -> Ok (Some (i + 1, acc))
          | c -> Error (Printf.sprintf "frame length: unexpected byte %C" c)
      in
      match scan_len 0 0 with
      | Error e ->
          d.dead <- Some e;
          Error e
      | Ok None -> Ok None
      | Ok (Some (_, len)) when len > max_frame ->
          let e =
            Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len
              max_frame
          in
          d.dead <- Some e;
          Error e
      | Ok (Some (start, len)) ->
          if n < start + len + 1 then Ok None
          else if s.[start + len] <> '\n' then begin
            let e = "frame not terminated by newline" in
            d.dead <- Some e;
            Error e
          end
          else begin
            let payload = String.sub s start len in
            Buffer.clear d.buf;
            Buffer.add_substring d.buf s (start + len + 1)
              (n - start - len - 1);
            Ok (Some payload)
          end)

(* --- requests ---------------------------------------------------------------- *)

type request =
  | Hello of string
  | Submit of string
  | Status of int
  | Result of { ticket : int; wait : bool }
  | Cancel of int
  | Stats
  | Drain
  | Ping
  | Bye

let split_verb s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

(* Error codes are part of the protocol contract (docs/PROTOCOL.md):
   400 malformed request, 401 handshake, 404 unknown verb or ticket,
   409 invalid state for the operation, 410 result gone (cancelled),
   503 draining. *)
let e_bad = 400
let e_hello = 401
let e_unknown = 404
let e_conflict = 409
let e_gone = 410
let e_draining = 503

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 0 -> Ok n
  | _ -> Error (e_bad, Printf.sprintf "%s: expected a nonnegative integer, got %S" what s)

let parse_request line =
  let verb, rest = split_verb line in
  match (String.uppercase_ascii verb, rest) with
  | "HELLO", v -> Ok (Hello (String.trim v))
  | "SUBMIT", "" -> Error (e_bad, "SUBMIT needs a job line")
  | "SUBMIT", job -> Ok (Submit job)
  | "STATUS", t -> Result.map (fun t -> Status t) (parse_int "STATUS ticket" t)
  | "RESULT", t -> (
      match String.split_on_char ' ' (String.trim t) with
      | [ t ] -> Result.map (fun t -> Result { ticket = t; wait = false }) (parse_int "RESULT ticket" t)
      | [ t; w ] when String.uppercase_ascii w = "WAIT" ->
          Result.map (fun t -> Result { ticket = t; wait = true }) (parse_int "RESULT ticket" t)
      | _ -> Error (e_bad, "usage: RESULT <ticket> [WAIT]"))
  | "CANCEL", t -> Result.map (fun t -> Cancel t) (parse_int "CANCEL ticket" t)
  | "STATS", "" -> Ok Stats
  | "DRAIN", "" -> Ok Drain
  | "PING", "" -> Ok Ping
  | "BYE", "" -> Ok Bye
  | ("STATS" | "DRAIN" | "PING" | "BYE"), _ ->
      Error (e_bad, Printf.sprintf "%s takes no arguments" verb)
  | "", _ -> Error (e_bad, "empty request")
  | _ -> Error (e_unknown, Printf.sprintf "unknown verb %S" verb)

let render_request = function
  | Hello v -> "HELLO " ^ v
  | Submit j -> "SUBMIT " ^ j
  | Status t -> Printf.sprintf "STATUS %d" t
  | Result { ticket; wait } ->
      Printf.sprintf "RESULT %d%s" ticket (if wait then " WAIT" else "")
  | Cancel t -> Printf.sprintf "CANCEL %d" t
  | Stats -> "STATS"
  | Drain -> "DRAIN"
  | Ping -> "PING"
  | Bye -> "BYE"

(* --- responses --------------------------------------------------------------- *)

let ok payload = if payload = "" then "OK" else "OK " ^ payload
let err code msg = Printf.sprintf "ERR %d %s" code msg
