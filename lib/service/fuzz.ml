(* The corpus soundness fuzzer behind [weakord fuzz].

   Three independent implementations of the paper's semantics exist in
   this repository: the operational machines (lib/machine), the
   axiomatic models over candidate executions (lib/axiomatic), and the
   cycle-accurate protocol simulator (lib/sim).  They were written
   against the same prose, not against each other — so streaming a
   generated corpus through all three and comparing is a genuine
   differential oracle: any disagreement is a bug in at least one of
   them (or in the paper reading they share).

   The oracle relations per program mirror test_differential.ml:

     axiomatic SC      = operational SC          (set equality)
     SC                ⊆ every machine           (weakening only adds)
     wbuf              ⊆ TSO axioms              (envelope)
     def1, def2        ⊆ their axiomatic models  (envelope)
     def1 ⊆ def2 ⊆ def2-rs                       (hierarchy)
     DRF0 program      ⇒ def1/def2 appear SC     (the paper's theorem)
     DRF1 program      ⇒ def2-rs/rc appear SC    (Section 6)
     simulator final   ∈ SC set                  (policy- and DRF-gated)

   A disagreement quarantines the seed with its full program text, a
   seed-exact reproduction recipe and a ddmin-minimized reproducer; the
   fuzzer itself keeps going, so a nightly 10^5-seed run reports every
   divergence, not just the first.

   The per-seed oracle is exposed as [check_prog]/[check_seed] so the
   sharded fleet supervisor ([Fleet]) can run exactly the same checks
   inside its fork-isolated shard workers: one seed, in, one
   [seed_report] out, no shared state. *)

type cfg = {
  config : Litmus_gen.config;
  machines : Machines.t list;
  sim : bool;
  sim_limit : int;
  quarantine : string option;
  shrink : bool;
  deadline_s : float option;
  progress : int;
  log : string -> unit;
}

let default_cfg =
  {
    config = Litmus_gen.default_config;
    machines = Machines.all;
    sim = true;
    sim_limit = 200_000;
    quarantine = None;
    shrink = true;
    deadline_s = None;
    progress = 0;
    log = ignore;
  }

type disagreement = {
  d_seed : int;
  d_check : string;
  d_detail : string;
  d_quarantined : string option;  (* report path, when a dir was given *)
}

type seed_report = {
  sr_checks : int;
  sr_disagreements : (string * string) list;  (* check name, detail *)
  sr_sim_runs : int;
  sr_sim_wedged : int;
  sr_sim_skipped : int;
  sr_states : int;
}

type summary = {
  programs : int;
  checks : int;
  disagreements : disagreement list;
  sim_runs : int;
  sim_wedged : int;  (* blocking programs the simulator legally wedged on *)
  sim_skipped : int;  (* programs with no complete execution *)
  states_total : int;
  wall_s : float;
  suspended : bool;
  next_seed : int;
}

let exit_code s =
  if s.disagreements <> [] then 1 else if s.suspended then 3 else 0

let set_to_string prog s =
  ignore prog;
  Format.asprintf "%a" Final.pp_set s

(* The machine-under-axioms envelope pairs.  ooo, rp3 and rc have no
   axiomatic counterpart here (rp3/rc would need fenced-delays/RA
   models); they are still covered by the SC-subset and theorem
   checks. *)
let envelope_of = function
  | "wbuf" -> Some Models.tso
  | "def1" -> Some Models.def1
  | "def2" -> Some Models.def2
  | _ -> None

(* --- the per-program oracle --------------------------------------------------- *)

let check_prog cfg prog =
  let checks = ref 0 in
  let disagreements = ref [] in
  let sim_runs = ref 0 in
  let sim_wedged = ref 0 in
  let sim_skipped = ref 0 in
  let states = ref 0 in
  let record ~check ~detail =
    disagreements := (check, detail) :: !disagreements
  in
  let check name cond detail =
    incr checks;
    if not (cond ()) then record ~check:name ~detail:(detail ())
  in
  (* Leg 1: the two SC implementations must agree exactly. *)
  let sc_set = Sc.outcomes_cached prog in
  let sc_ax = Models.outcomes Models.sc prog in
  check "sc-axiomatic-vs-operational"
    (fun () -> Final.Set.equal sc_set sc_ax)
    (fun () ->
      Printf.sprintf "operational SC %s vs axiomatic SC %s"
        (set_to_string prog sc_set) (set_to_string prog sc_ax));
  (* The synchronization-model predicates, computed once. *)
  let drf0 = lazy (Drf.obeys ~model:Drf.DRF0 prog) in
  let drf1 = lazy (Drf.obeys ~model:Drf.DRF1 prog) in
  (* Leg 2: every operational machine against SC, its axiomatic
     envelope, and the paper's appears-SC theorem. *)
  let outs_by_name = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let name = Machines.name m in
      let res = Machines.explore m prog in
      states := !states + res.Explore.stats.Explore.states_expanded;
      let outs =
        match res.Explore.result with
        | Explore.Complete out | Explore.Partial out -> out
      in
      Hashtbl.replace outs_by_name name outs;
      check
        (Printf.sprintf "sc-subset-of-%s" name)
        (fun () -> Final.Set.subset sc_set outs)
        (fun () ->
          Printf.sprintf "SC outcome(s) %s missing from %s's set %s"
            (set_to_string prog (Final.Set.diff sc_set outs))
            name (set_to_string prog outs));
      (match envelope_of name with
      | None -> ()
      | Some model ->
          let ax = Models.outcomes model prog in
          check
            (Printf.sprintf "%s-within-%s-axioms" name (Models.name model))
            (fun () -> Final.Set.subset outs ax)
            (fun () ->
              Printf.sprintf "machine outcome(s) %s beyond the axioms %s"
                (set_to_string prog (Final.Set.diff outs ax))
                (set_to_string prog ax)));
      let appears_sc () = Final.Set.subset outs sc_set in
      match name with
      | "def1" | "def2" ->
          check
            (Printf.sprintf "drf0-implies-%s-appears-sc" name)
            (fun () -> (not (Lazy.force drf0)) || appears_sc ())
            (fun () ->
              Printf.sprintf
                "program obeys DRF0 but %s shows non-SC outcome(s) %s" name
                (set_to_string prog (Final.Set.diff outs sc_set)))
      | "def2-rs" | "rc" ->
          check
            (Printf.sprintf "drf1-implies-%s-appears-sc" name)
            (fun () -> (not (Lazy.force drf1)) || appears_sc ())
            (fun () ->
              Printf.sprintf
                "program obeys DRF1 but %s shows non-SC outcome(s) %s" name
                (set_to_string prog (Final.Set.diff outs sc_set)))
      | _ -> ())
    cfg.machines;
  (* Machine hierarchy, when the relevant machines were swept. *)
  let pair lo hi =
    match
      (Hashtbl.find_opt outs_by_name lo, Hashtbl.find_opt outs_by_name hi)
    with
    | Some a, Some b ->
        check
          (Printf.sprintf "%s-subset-of-%s" lo hi)
          (fun () -> Final.Set.subset a b)
          (fun () ->
            Printf.sprintf "%s outcome(s) %s missing from %s" lo
              (set_to_string prog (Final.Set.diff a b))
              hi)
    | _ -> ()
  in
  pair "def1" "def2";
  pair "def2" "def2-rs";
  (* Leg 3: the timing simulator.  One deterministic run per policy;
     its final state must be in the policy's guaranteed envelope.
     Blocking programs may legally wedge (the simulator's fixed timing
     can miss an await's window even when some SC interleaving
     completes); non-blocking ones never. *)
  if cfg.sim then begin
    if not (Litmus_gen.has_complete_execution prog) then incr sim_skipped
    else
      let blocking =
        List.exists (List.exists Instr.is_blocking) (Prog.threads prog)
      in
      List.iter
        (fun policy ->
          let pname = Cpu.policy_name policy in
          incr sim_runs;
          match Sim_litmus.try_run ~limit:cfg.sim_limit policy prog with
          | Ok run ->
              let must_be_sc =
                match policy with
                | Cpu.Sc -> true
                | Cpu.Def1 | Cpu.Def2 -> Lazy.force drf0
                | Cpu.Def2_rs -> Lazy.force drf1
                | Cpu.Def2_noresv -> false
              in
              if must_be_sc then
                check
                  (Printf.sprintf "sim-%s-final-in-sc" pname)
                  (fun () ->
                    Sim_litmus.allowed_by_sc prog run.Sim_litmus.final)
                  (fun () ->
                    Format.asprintf
                      "simulator final %a is outside the SC set %s"
                      Final.pp run.Sim_litmus.final
                      (set_to_string prog sc_set))
              else incr checks
          | Error (Sim_run.Deadlock _ | Sim_run.Livelock _) when blocking ->
              incr sim_wedged
          | Error f ->
              let what =
                match f with
                | Sim_run.Deadlock d -> "deadlock: " ^ d
                | Sim_run.Livelock d -> "livelock: " ^ d
                | Sim_run.Invariant d -> "invariant violation: " ^ d
              in
              record
                ~check:(Printf.sprintf "sim-%s-run" pname)
                ~detail:what)
        Cpu.all_policies
  end;
  {
    sr_checks = !checks;
    sr_disagreements = List.rev !disagreements;
    sr_sim_runs = !sim_runs;
    sr_sim_wedged = !sim_wedged;
    sr_sim_skipped = !sim_skipped;
    sr_states = !states;
  }

let check_seed cfg seed =
  let prog = Litmus_gen.generate ~config:cfg.config seed in
  (prog, check_prog cfg prog)

(* --- shrinking ---------------------------------------------------------------- *)

(* A minimization predicate must re-run the oracle without the campaign
   plumbing: no quarantine writes, no shrinking recursion, no logging —
   just "does the named relation still fail on this candidate". *)
let still_fails cfg ~check prog =
  let probe_cfg =
    { cfg with quarantine = None; shrink = false; progress = 0; log = ignore }
  in
  let r = check_prog probe_cfg prog in
  List.exists (fun (c, _) -> String.equal c check) r.sr_disagreements

let minimize cfg ~check prog =
  if not cfg.shrink then None
  else
    match Shrink.ddmin ~pred:(still_fails cfg ~check) prog with
    | minimal, st ->
        cfg.log
          (Printf.sprintf
             "shrink [%s]: %d -> %d instruction(s) in %d predicate run(s)%s"
             check
             (Shrink.instr_count prog)
             (Shrink.instr_count minimal)
             st.Shrink.s_tests
             (if st.Shrink.s_gave_up then " (budget exhausted)" else ""));
        Some minimal
    | exception Invalid_argument _ ->
        (* The failure did not reproduce under the probe config (e.g. a
           nondeterministic engine bug).  The dossier still ships the
           full program; minimization is best-effort. *)
        None

(* --- quarantine --------------------------------------------------------------- *)

let quarantine_seed ?minimal cfg ~seed ~prog ~check ~detail =
  match cfg.quarantine with
  | None -> None
  | Some dir ->
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let base = Filename.concat dir (Printf.sprintf "seed%d" seed) in
      let litmus = base ^ ".litmus" in
      let report = base ^ ".report" in
      Atomic_io.write_file litmus (Litmus_print.to_string prog);
      let minimal_line =
        match minimal with
        | None -> []
        | Some m ->
            Atomic_io.write_file (base ^ ".min.litmus")
              (Litmus_print.to_string m);
            [
              Printf.sprintf
                "minimal reproducer: seed%d.min.litmus (%d of %d \
                 instruction(s))"
                seed (Shrink.instr_count m) (Shrink.instr_count prog);
            ]
      in
      let recipe_flags = Litmus_gen.config_args cfg.config in
      Atomic_io.write_file report
        (String.concat "\n"
           ([
              Printf.sprintf "seed: %d" seed;
              Printf.sprintf "check: %s" check;
              Printf.sprintf "detail: %s" detail;
              (* The generator flag set in effect, spelled out even when
                 empty: a dossier produced under a non-default profile
                 must replay under that profile, not the default. *)
              Printf.sprintf "gen flags: %s"
                (if recipe_flags = "" then "(default)" else recipe_flags);
              Printf.sprintf "gen config: %s"
                (Format.asprintf "%a" Litmus_gen.pp_config cfg.config);
            ]
           @ minimal_line
           @ [
               "";
               "reproduce the program:";
               Printf.sprintf "  weakord gen --seed %d%s" seed
                 (if recipe_flags = "" then "" else " " ^ recipe_flags);
               "re-run this oracle on just this seed:";
               Printf.sprintf "  weakord fuzz --seeds %d..%d%s" seed seed
                 (if recipe_flags = "" then "" else " " ^ recipe_flags);
               "";
             ]));
      Some report

(* --- the campaign loop -------------------------------------------------------- *)

let run cfg ~lo ~hi =
  if lo > hi then invalid_arg "Fuzz.run: empty seed range";
  let t0 = Unix.gettimeofday () in
  let deadline_at = Option.map (fun d -> t0 +. d) cfg.deadline_s in
  let programs = ref 0 in
  let checks = ref 0 in
  let disagreements = ref [] in
  let sim_runs = ref 0 in
  let sim_wedged = ref 0 in
  let sim_skipped = ref 0 in
  let states_total = ref 0 in
  let next_seed = ref lo in
  let suspended = ref false in
  let record_disagreement ~seed ~prog ~check ~detail =
    let minimal = minimize cfg ~check prog in
    let q = quarantine_seed ?minimal cfg ~seed ~prog ~check ~detail in
    cfg.log
      (Printf.sprintf "DISAGREEMENT seed %d [%s]: %s%s" seed check detail
         (match q with Some p -> " (quarantined: " ^ p ^ ")" | None -> ""));
    disagreements :=
      { d_seed = seed; d_check = check; d_detail = detail; d_quarantined = q }
      :: !disagreements
  in
  let seed = ref lo in
  (try
     while !seed <= hi do
       (match deadline_at with
       | Some d when Unix.gettimeofday () > d ->
           suspended := true;
           next_seed := !seed;
           raise Exit
       | _ -> ());
       let s = !seed in
       let prog, r = check_seed cfg s in
       incr programs;
       checks := !checks + r.sr_checks;
       sim_runs := !sim_runs + r.sr_sim_runs;
       sim_wedged := !sim_wedged + r.sr_sim_wedged;
       sim_skipped := !sim_skipped + r.sr_sim_skipped;
       states_total := !states_total + r.sr_states;
       List.iter
         (fun (check, detail) ->
           record_disagreement ~seed:s ~prog ~check ~detail)
         r.sr_disagreements;
       if cfg.progress > 0 && (!programs mod cfg.progress) = 0 then
         cfg.log
           (Printf.sprintf
              "fuzz: %d/%d program(s), %d check(s), %d disagreement(s), %d \
               state(s), %.0f states/s"
              !programs (hi - lo + 1) !checks
              (List.length !disagreements)
              !states_total
              (let w = Unix.gettimeofday () -. t0 in
               if w > 0. then float_of_int !states_total /. w else 0.));
       incr seed;
       next_seed := !seed
     done
   with Exit -> ());
  {
    programs = !programs;
    checks = !checks;
    disagreements = List.rev !disagreements;
    sim_runs = !sim_runs;
    sim_wedged = !sim_wedged;
    sim_skipped = !sim_skipped;
    states_total = !states_total;
    wall_s = Unix.gettimeofday () -. t0;
    suspended = !suspended;
    next_seed = !next_seed;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "fuzz: %d program(s), %d oracle check(s), %d disagreement(s)@\n\
     sim: %d run(s), %d legal wedge(s) on blocking programs, %d skipped \
     (no complete execution)@\n\
     %d state(s) expanded, wall %.1fs, %.0f states/s%s"
    s.programs s.checks
    (List.length s.disagreements)
    s.sim_runs s.sim_wedged s.sim_skipped s.states_total s.wall_s
    (if s.wall_s > 0. then float_of_int s.states_total /. s.wall_s else 0.)
    (if s.suspended then
       Format.asprintf " — SUSPENDED at seed %d (deadline)" s.next_seed
     else "")
