(* One verification job, in-process.  The batch supervisor forks before
   calling this, so a crash, wedge, or OOM here takes down one job's
   process, never the batch. *)

type model = Drf0 | Drf1 | Unconstrained | No_check

let model_of_string = function
  | "drf0" -> Some Drf0
  | "drf1" -> Some Drf1
  | "all" -> Some Unconstrained
  | "none" -> Some No_check
  | _ -> None

let model_name = function
  | Drf0 -> "drf0"
  | Drf1 -> "drf1"
  | Unconstrained -> "all"
  | No_check -> "none"

let obeys model prog =
  match model with
  | Drf0 -> Result.is_ok (Drf.check ~model:Drf.DRF0 prog)
  | Drf1 -> Result.is_ok (Drf.check ~model:Drf.DRF1 prog)
  | Unconstrained -> true
  | No_check -> false

let run ?cancel ?fuel ?spill_dir ?mem_budget ~model ~machine prog =
  let budget =
    Option.map (fun b -> Budget.create ~mem_bytes:b ()) mem_budget
  in
  let rcfg = { Explore.rcfg_default with Explore.cancel; spill_dir; budget } in
  let r =
    Machines.explore ~domains:1 ?fuel ~rcfg machine prog
  in
  match r.Explore.stop with
  | Some Explore.Cancelled -> Error `Cancelled
  | stop ->
      let outs = Explore.bounded_value r.Explore.result in
      let sc = Sc.outcomes_cached prog in
      let appears_sc = Final.Set.subset outs sc in
      let obeys_model = obeys model prog in
      let complete =
        Explore.is_complete r.Explore.result && stop = None
      in
      Ok
        {
          Verdict_cache.v_outcomes =
            Final.Set.fold
              (fun f acc -> Format.asprintf "%a" Final.pp f :: acc)
              outs []
            |> List.rev;
          v_appears_sc = appears_sc;
          v_obeys_model = obeys_model;
          v_allows_exists =
            Option.map
              (fun c -> Cond.satisfiable_in outs c)
              (Prog.exists prog);
          v_violation = obeys_model && not appears_sc;
          v_states = r.Explore.stats.Explore.states_expanded;
          v_complete = complete;
          v_degraded = r.Explore.stats.Explore.degraded_at;
          v_spilled_runs = r.Explore.stats.Explore.spilled_runs;
        }
