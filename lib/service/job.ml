(* Batch jobs and the line-based job-file format. *)

type source =
  | Builtin of string
  | File of string
  | Seed of { seed : int; config : Litmus_gen.config }
  | Wedge

type t = { id : int; source : source; machine : string }

let kind_string = function
  | Builtin _ -> "test"
  | File _ -> "file"
  | Seed _ -> "seed"
  | Wedge -> "wedge"

let source_name = function
  | Builtin n -> n
  | File p -> Filename.basename p
  | Seed { seed; _ } -> Printf.sprintf "gen%d" seed
  | Wedge -> "wedge"

let gen_args = function
  | Seed { seed; config } ->
      let extra = Litmus_gen.config_args config in
      Printf.sprintf "--seed %d%s" seed
        (if extra = "" then "" else " " ^ extra)
  | _ -> ""

let label j =
  Printf.sprintf "job %d: %s %s on %s" j.id (kind_string j.source)
    (source_name j.source) j.machine

(* --- parsing ---------------------------------------------------------------- *)

let valid_machine m = Machines.find m <> None

(* [key=value] and bare-flag options shared by seed/seeds lines. *)
let parse_opts ~line_no ~machine opts =
  let machine = ref machine in
  let config = ref Litmus_gen.default_config in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let int_of what v k =
    match int_of_string_opt v with
    | Some n when n > 0 -> k n
    | _ -> err "line %d: %s expects a positive integer, got %S" line_no what v
  in
  let rec go = function
    | [] -> Ok (!machine, !config)
    | opt :: rest -> (
        match String.index_opt opt '=' with
        | Some i -> (
            let k = String.sub opt 0 i in
            let v = String.sub opt (i + 1) (String.length opt - i - 1) in
            match k with
            | "machine" ->
                if valid_machine v then begin
                  machine := v;
                  go rest
                end
                else err "line %d: unknown machine %S" line_no v
            | "threads" ->
                int_of "threads" v (fun n ->
                    config := { !config with Litmus_gen.max_threads = n };
                    go rest)
            | "instrs" ->
                int_of "instrs" v (fun n ->
                    config := { !config with Litmus_gen.max_instrs = n };
                    go rest)
            | "locs" ->
                int_of "locs" v (fun n ->
                    config := { !config with Litmus_gen.num_locs = n };
                    go rest)
            | "sync-locs" ->
                int_of "sync-locs" v (fun n ->
                    config := { !config with Litmus_gen.num_sync_locs = n };
                    go rest)
            | "profile" -> (
                match Litmus_gen.profile_of_string v with
                | Some p ->
                    config := { !config with Litmus_gen.profile = p };
                    go rest
                | None ->
                    err "line %d: unknown profile %S (default|wide|deep-await|mixed-sync)"
                      line_no v)
            | _ -> err "line %d: unknown option %S" line_no k)
        | None -> (
            match opt with
            | "no-rmw" ->
                config := { !config with Litmus_gen.allow_rmw = false };
                go rest
            | "no-await" ->
                config := { !config with Litmus_gen.allow_await = false };
                go rest
            | _ -> err "line %d: unknown option %S" line_no opt))
  in
  go opts

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_range ~line_no s =
  match String.index_opt s '.' with
  | Some i
    when i + 1 < String.length s
         && s.[i + 1] = '.'
         && i > 0
         && i + 2 < String.length s -> (
      let lo = String.sub s 0 i in
      let hi = String.sub s (i + 2) (String.length s - i - 2) in
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi when lo <= hi -> Ok (lo, hi)
      | Some lo, Some hi ->
          Error (Printf.sprintf "line %d: empty seed range %d..%d" line_no lo hi)
      | _ ->
          Error (Printf.sprintf "line %d: malformed seed range %S" line_no s))
  | _ -> Error (Printf.sprintf "line %d: expected LO..HI, got %S" line_no s)

let parse_string ?(default_machine = "def2") text =
  if not (valid_machine default_machine) then
    Error (Printf.sprintf "unknown default machine %S" default_machine)
  else
    let lines = String.split_on_char '\n' text in
    let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
    let rec go line_no machine acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
          let line =
            match String.index_opt line '#' with
            | Some i -> String.sub line 0 i
            | None -> line
          in
          match split_ws line with
          | [] -> go (line_no + 1) machine acc rest
          | [ "machine"; m ] ->
              if valid_machine m then go (line_no + 1) m acc rest
              else err "line %d: unknown machine %S" line_no m
          | "file" :: path :: opts -> (
              match parse_opts ~line_no ~machine opts with
              | Error e -> Error e
              | Ok (m, _) ->
                  go (line_no + 1) machine
                    ({ id = List.length acc; source = File path; machine = m }
                    :: acc)
                    rest)
          | "test" :: name :: opts -> (
              match parse_opts ~line_no ~machine opts with
              | Error e -> Error e
              | Ok (m, _) ->
                  go (line_no + 1) machine
                    ({
                       id = List.length acc;
                       source = Builtin name;
                       machine = m;
                     }
                    :: acc)
                    rest)
          | "seed" :: n :: opts -> (
              match int_of_string_opt n with
              | None -> err "line %d: seed expects an integer, got %S" line_no n
              | Some seed -> (
                  match parse_opts ~line_no ~machine opts with
                  | Error e -> Error e
                  | Ok (m, config) ->
                      go (line_no + 1) machine
                        ({
                           id = List.length acc;
                           source = Seed { seed; config };
                           machine = m;
                         }
                        :: acc)
                        rest))
          | "seeds" :: range :: opts -> (
              match parse_range ~line_no range with
              | Error e -> Error e
              | Ok (lo, hi) -> (
                  match parse_opts ~line_no ~machine opts with
                  | Error e -> Error e
                  | Ok (m, config) ->
                      let acc = ref acc in
                      for seed = lo to hi do
                        acc :=
                          {
                            id = List.length !acc;
                            source = Seed { seed; config };
                            machine = m;
                          }
                          :: !acc
                      done;
                      go (line_no + 1) machine !acc rest))
          | "wedge" :: opts -> (
              match parse_opts ~line_no ~machine opts with
              | Error e -> Error e
              | Ok (m, _) ->
                  go (line_no + 1) machine
                    ({ id = List.length acc; source = Wedge; machine = m }
                    :: acc)
                    rest)
          | w :: _ ->
              err
                "line %d: unknown directive %S \
                 (machine|file|test|seed|seeds|wedge)"
                line_no w)
    in
    go 1 default_machine [] lines

let parse_file ?default_machine path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> parse_string ?default_machine text
  | exception Sys_error e -> Error e

(* --- identity ---------------------------------------------------------------- *)

let canonical j =
  let src =
    match j.source with
    | Builtin n -> "test " ^ n
    | File p -> "file " ^ p
    | Seed { seed; config } ->
        Printf.sprintf "seed %d [%s]" seed
          (Format.asprintf "%a" Litmus_gen.pp_config config)
    | Wedge -> "wedge"
  in
  Printf.sprintf "%d|%s|%s" j.id src j.machine

let fingerprint jobs =
  Digest.to_hex (Digest.string (String.concat "\n" (List.map canonical jobs)))
