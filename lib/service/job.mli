(** Batch verification jobs and the job-file format.

    A job file is line-based so that a 10^5-job corpus can be generated
    with a shell loop and diffed by eye:

    {v
    # comment / blank lines ignored
    machine NAME            set the default machine for following lines
    file PATH [machine=M]           one litmus file
    test NAME [machine=M]           one built-in test
    seed N [machine=M] [GENOPTS]    one generated program
    seeds LO..HI [machine=M] [GENOPTS]   inclusive seed range, expanded
    wedge [machine=M]               poison job: the worker spins forever
    v}

    [GENOPTS] mirror the [weakord gen] flags: [threads=N] [instrs=N]
    [locs=N] [sync-locs=N] [no-rmw] [no-await]
    [profile=default|wide|deep-await|mixed-sync].  A [seed] job is
    reproducible from its line alone — see the determinism contract in
    {!Litmus_gen}.

    [wedge] exists for chaos testing the supervisor: its worker prints a
    marker to stderr and spins until killed, exercising the
    timeout/retry/quarantine path deterministically. *)

type source =
  | Builtin of string  (** a built-in litmus test, by name *)
  | File of string  (** a litmus file on disk *)
  | Seed of { seed : int; config : Litmus_gen.config }
      (** a generated program — (seed, config) is the full recipe *)
  | Wedge  (** poison: the worker wedges until the supervisor kills it *)

type t = { id : int; source : source; machine : string }
(** [id] is the job's position in the expanded job list (0-based) —
    stable across runs of the same file, so checkpoints and results key
    on it. *)

val kind_string : source -> string
(** ["test"], ["file"], ["seed"] or ["wedge"]. *)

val label : t -> string
(** Human-readable one-liner, e.g. ["job 12: seed 17 on def2"]. *)

val source_name : source -> string
(** The program name the source will carry (["gen17"], the file
    basename, the builtin name, or ["wedge"]). *)

val gen_args : source -> string
(** For a [Seed] source, the [weakord gen] invocation suffix that
    reproduces it (["--seed 17" ^ non-default config flags]); [""] for
    other sources. *)

val parse_string : ?default_machine:string -> string -> (t list, string) result
(** Parse a job file's contents.  [Error msg] carries a located
    ["line N: ..."] message.  Machines are validated against the
    machine registry; an unknown machine is a parse error. *)

val parse_file : ?default_machine:string -> string -> (t list, string) result
(** {!parse_string} on a file's contents; unreadable files are
    [Error]. *)

val fingerprint : t list -> string
(** Digest of the canonical rendering of the expanded job list — the
    identity a batch checkpoint validates before resuming, so a resumed
    batch can never silently run against an edited job file. *)
