(* The shared job-execution layer under both front ends of the service:
   the one-shot [Batch] supervisor and the long-lived [Daemon].

   Everything here is the per-attempt machinery: turning a job into a
   program plus cache keys, forking the single-verdict worker process,
   reading back its CRC-framed result file, and rendering the JSONL
   records both front ends stream.  The scheduling policies (retry
   queues, fairness, drain) stay with the callers. *)

type exec = {
  x_model : Worker.model;
  x_fuel : int option;
  x_spill_dir : string option;
  x_mem_budget : int option;
}

type mat = {
  m_prog : (Prog.t * string * string) option;
  m_error : string option;
}

let materialize ~model (j : Job.t) =
  let with_prog p =
    let model = Worker.model_name model in
    ( Some
        ( p,
          Verdict_cache.key ~prog:p ~machine:j.Job.machine ~model,
          Verdict_cache.sym_key ~prog:p ~machine:j.Job.machine ~model ),
      None )
  in
  let prog, m_error =
    match j.Job.source with
    | Job.Wedge -> (None, None)
    | Job.Builtin n -> (
        match Litmus_classics.find n with
        | Some e -> with_prog e.Litmus_classics.prog
        | None -> (None, Some (Printf.sprintf "unknown built-in test %S" n)))
    | Job.File p -> (
        match Litmus_parse.parse_file p with
        | prog -> with_prog prog
        | exception Litmus_parse.Parse_error { line; col; msg } ->
            ( None,
              Some (Printf.sprintf "%s:%d:%d: parse error: %s" p line col msg)
            )
        | exception Sys_error e -> (None, Some e))
    | Job.Seed { seed; config } ->
        with_prog (Litmus_gen.generate ~config seed)
  in
  let m_prog, m_error =
    if m_error <> None then (prog, m_error)
    else if Machines.find j.Job.machine = None then
      (None, Some (Printf.sprintf "unknown machine %S" j.Job.machine))
    else (prog, m_error)
  in
  { m_prog; m_error }

(* --- the forked worker ------------------------------------------------------- *)

let result_kind = "weakord.batch.result"

(* The CRC-framed result-file protocol, shared by every forked worker
   kind (batch/daemon verdict workers and the fleet's shard workers):
   a child installs its payload atomically under a snapshot kind; the
   parent accepts it only when the frame validates under that exact
   kind, so a torn write or a stale file of another kind degrades to a
   retried attempt, never a wrong result. *)
let write_framed ~kind ~meta path payload =
  Atomic_io.write_file ~fsync:false path
    (Snapshot.frame ~kind ~meta ~payload)

let read_framed ~kind path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | bytes -> (
      match Snapshot.unframe bytes with
      | Error _ -> None
      | Ok c ->
          if String.equal c.Snapshot.kind kind then Some c.Snapshot.payload
          else None)

let redirect_stderr path =
  try
    let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
    Unix.dup2 fd Unix.stderr;
    Unix.close fd
  with Unix.Unix_error _ -> ()

let fork_worker child =
  (* The child exits via [Unix._exit], so anything sitting in the
     parent's buffered channels at fork time would otherwise be written
     twice (once per process). *)
  flush Stdlib.stdout;
  flush Stdlib.stderr;
  match Unix.fork () with
  | 0 ->
      (child () : unit);
      Unix._exit 0
  | pid -> pid

(* Runs in the child.  Never returns; never flushes the parent's
   buffered channels ([Unix._exit], not [exit]). *)
let child_exec x ~result_path ~stderr_path (j : Job.t) mat =
  let cancelled = ref false in
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> cancelled := true));
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  redirect_stderr stderr_path;
  match j.Job.source with
  | Job.Wedge ->
      (* The poison pill for chaos tests: announce, then spin until the
         supervisor's SIGKILL (timeout) or SIGTERM (drain) lands. *)
      prerr_string (Printf.sprintf "job %d: wedged on purpose\n" j.Job.id);
      flush Stdlib.stderr;
      while not !cancelled do
        (try Unix.sleepf 0.02 with Unix.Unix_error _ -> ())
      done;
      Unix._exit 9
  | _ -> (
      let prog, _, _ = Option.get mat.m_prog in
      let machine = Option.get (Machines.find j.Job.machine) in
      (* Each attempt spills into its own subdirectory: concurrent
         workers must never share run files, and a retry must not trip
         over a killed attempt's leftovers (the store wipes stale runs
         at creation). *)
      let spill_dir =
        Option.map
          (fun d ->
            let sub = Filename.concat d (Printf.sprintf "job%d" j.Job.id) in
            (try Unix.mkdir sub 0o755
             with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            sub)
          x.x_spill_dir
      in
      match
        Worker.run
          ~cancel:(fun () -> !cancelled)
          ?fuel:x.x_fuel ?spill_dir ?mem_budget:x.x_mem_budget
          ~model:x.x_model ~machine prog
      with
      | Ok v ->
          write_framed ~kind:result_kind
            ~meta:(string_of_int j.Job.id)
            result_path
            (Marshal.to_string v []);
          Unix._exit 0
      | Error `Cancelled -> Unix._exit 9
      | exception e ->
          prerr_string ("worker exception: " ^ Printexc.to_string e ^ "\n");
          flush Stdlib.stderr;
          Unix._exit 10)

let spawn x ~result_path ~stderr_path j mat =
  (try Sys.remove result_path with Sys_error _ -> ());
  fork_worker (fun () -> child_exec x ~result_path ~stderr_path j mat)

let read_result path =
  match read_framed ~kind:result_kind path with
  | None -> None
  | Some payload -> (
      match (Marshal.from_string payload 0 : Verdict_cache.verdict) with
      | v -> Some v
      | exception (Failure _ | Invalid_argument _) -> None)

let read_tail ?(max_bytes = 2048) path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> ""
  | s ->
      let s =
        if String.length s <= max_bytes then s
        else String.sub s (String.length s - max_bytes) max_bytes
      in
      String.trim s

let signal_name = function
  | s when s = Sys.sigkill -> "SIGKILL"
  | s when s = Sys.sigterm -> "SIGTERM"
  | s when s = Sys.sigsegv -> "SIGSEGV"
  | s when s = Sys.sigabrt -> "SIGABRT"
  | s -> Printf.sprintf "signal %d" s

(* --- JSONL rendering --------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The stable prefix every record shares: job identity plus, for seed
   jobs, the full reproduction recipe (the determinism contract makes
   [seed + gen flags] a complete one). *)
let record_prefix (j : Job.t) =
  let b = Buffer.create 128 in
  Printf.bprintf b "{\"job\":%d,\"kind\":\"%s\",\"name\":\"%s\",\"machine\":\"%s\"" j.Job.id
    (Job.kind_string j.Job.source)
    (json_escape (Job.source_name j.Job.source))
    (json_escape j.Job.machine);
  (match j.Job.source with
  | Job.Seed { seed; _ } ->
      Printf.bprintf b ",\"seed\":%d,\"gen\":\"%s\"" seed
        (json_escape (Job.gen_args j.Job.source))
  | _ -> ());
  Buffer.contents b

(* Volatile fields last, in a fixed order, so tooling can strip them
   with one regular expression when comparing runs "modulo timestamps"
   (resume vs. uninterrupted, cached vs. cold). *)
let record_trailer ~cached ~attempts ~ms =
  Printf.sprintf ",\"cached\":%b,\"attempts\":%d,\"ms\":%.1f}" cached attempts
    ms

let verdict_record j (v : Verdict_cache.verdict) ~cached ~attempts ~ms =
  Printf.sprintf
    "%s,\"status\":\"ok\",\"outcomes\":%d,\"appears_sc\":%b,\"obeys_model\":%b,\"violation\":%b,\"exists\":%s,\"states\":%d,\"complete\":%b,\"degraded\":%s,\"spilled_runs\":%d%s"
    (record_prefix j)
    (List.length v.Verdict_cache.v_outcomes)
    v.Verdict_cache.v_appears_sc v.Verdict_cache.v_obeys_model
    v.Verdict_cache.v_violation
    (match v.Verdict_cache.v_allows_exists with
    | Some true -> "true"
    | Some false -> "false"
    | None -> "null")
    v.Verdict_cache.v_states v.Verdict_cache.v_complete
    (match v.Verdict_cache.v_degraded with
    | Some n -> string_of_int n
    | None -> "null")
    v.Verdict_cache.v_spilled_runs
    (record_trailer ~cached ~attempts ~ms)

let quarantine_record j ~reason ~stderr ~attempts ~ms =
  Printf.sprintf
    "%s,\"status\":\"quarantined\",\"reason\":\"%s\",\"stderr\":\"%s\"%s"
    (record_prefix j) (json_escape reason) (json_escape stderr)
    (record_trailer ~cached:false ~attempts ~ms)
