(* Reproducer minimization by delta debugging (Zeller's ddmin), plus two
   coarser phases the instruction-level search cannot express: dropping
   whole threads and merging locations.  The predicate is opaque — the
   fuzzer passes "the same oracle relation still fails", the fleet
   passes "the seed still wedges" — so nothing here knows what failure
   is being preserved, only that every accepted candidate exhibits it. *)

type stats = { s_tests : int; s_rounds : int; s_gave_up : bool }

exception Budget

let instr_count prog =
  List.fold_left (fun n t -> n + List.length t) 0 (Prog.threads prog)

(* Rebuild a program from a thread list, dropping threads left empty by
   instruction removal.  Generated programs carry no init section and no
   exists condition; for hand-written inputs the init is preserved and
   the exists clause is kept only while the thread count is intact (its
   register references are positional). *)
let rebuild base threads =
  let threads = List.filter (fun t -> t <> []) threads in
  if threads = [] then None
  else
    let exists =
      if List.length threads = Prog.num_threads base then Prog.exists base
      else None
    in
    Some (Prog.make ~name:(Prog.name base) ~init:(Prog.init base) ?exists threads)

(* --- phase 1: ddmin over the flattened instruction list ---------------------- *)

(* Instructions are addressed by position (thread, index); a candidate
   is the subset of positions kept, mapped back through [rebuild]. *)
let prog_of_subset base keep =
  rebuild base
    (List.mapi
       (fun t instrs ->
         List.filteri (fun i _ -> Hashtbl.mem keep (t, i)) instrs)
       (Prog.threads base))

let subset_of_list l =
  let h = Hashtbl.create (List.length l) in
  List.iter (fun p -> Hashtbl.replace h p ()) l;
  h

let ddmin_instrs ~test base =
  let positions =
    List.concat
      (List.mapi
         (fun t instrs -> List.mapi (fun i _ -> (t, i)) instrs)
         (Prog.threads base))
  in
  let accepts l =
    match prog_of_subset base (subset_of_list l) with
    | None -> false
    | Some p -> test p
  in
  (* Classic ddmin: split the current failing set into n chunks; recurse
     into a failing chunk (n := 2) or a failing complement (n := n - 1);
     otherwise double the granularity until n = |set|. *)
  let chunks n l =
    let len = List.length l in
    let base_sz = len / n and extra = len mod n in
    let rec go i l acc =
      if i >= n then List.rev acc
      else
        let sz = base_sz + if i < extra then 1 else 0 in
        let rec take k l acc =
          if k = 0 then (List.rev acc, l)
          else match l with [] -> (List.rev acc, []) | x :: r -> take (k - 1) r (x :: acc)
        in
        let c, rest = take sz l [] in
        go (i + 1) rest (c :: acc)
    in
    go 0 l []
  in
  let rec loop cur n =
    if List.length cur <= 1 then cur
    else
      let cs = List.filter (fun c -> c <> []) (chunks n cur) in
      match List.find_opt accepts cs with
      | Some c -> loop c 2
      | None -> (
          let complements =
            List.map (fun c -> List.filter (fun x -> not (List.mem x c)) cur) cs
          in
          match List.find_opt (fun c -> c <> [] && accepts c) complements with
          | Some c -> loop c (max 2 (n - 1))
          | None ->
              if n >= List.length cur then cur
              else loop cur (min (List.length cur) (2 * n)))
  in
  let minimal = loop positions 2 in
  match prog_of_subset base (subset_of_list minimal) with
  | Some p -> p
  | None -> base

(* --- phase 2: whole-thread removal ------------------------------------------- *)

let drop_threads ~test base =
  let rec go prog t =
    if t >= Prog.num_threads prog then prog
    else
      let threads = Prog.threads prog in
      match rebuild prog (List.filteri (fun i _ -> i <> t) threads) with
      | Some cand when Prog.num_threads prog > 1 && test cand -> go cand t
      | _ -> go prog (t + 1)
  in
  go base 0

(* --- phase 3: location merging ----------------------------------------------- *)

let rename_loc ~from ~to_ i =
  let r l = if String.equal l from then to_ else l in
  match i with
  | Instr.Load l -> Instr.Load { l with loc = r l.loc }
  | Instr.Store s -> Instr.Store { s with loc = r s.loc }
  | Instr.Rmw m -> Instr.Rmw { m with loc = r m.loc }
  | Instr.Await a -> Instr.Await { a with loc = r a.loc }
  | Instr.Lock l -> Instr.Lock { loc = r l.loc }
  | Instr.Fence -> Instr.Fence

let merge_locations ~test base =
  (* Greedy: for each location after the first, try folding it into each
     earlier survivor; accept the first merge that still fails. *)
  let rec go prog =
    let locs = Prog.locations prog in
    let try_merge from =
      List.find_map
        (fun to_ ->
          if String.equal to_ from then None
          else
            let threads =
              List.map (List.map (rename_loc ~from ~to_)) (Prog.threads prog)
            in
            match rebuild prog threads with
            | Some cand when test cand -> Some cand
            | _ -> None)
        locs
    in
    match List.find_map (fun from -> try_merge from) locs with
    | Some cand -> go cand
    | None -> prog
  in
  go base

(* --- the fixpoint driver ------------------------------------------------------ *)

(* Lexicographic size: instructions first (the headline), then threads,
   then distinct locations — so a location merge that removes no
   instruction still counts as progress. *)
let size p =
  (instr_count p, Prog.num_threads p, List.length (Prog.locations p))

let ddmin ?(max_tests = 2000) ~pred prog =
  if not (pred prog) then
    invalid_arg "Shrink.ddmin: predicate rejects the input program";
  let tests = ref 0 in
  let best = ref prog in
  let test p =
    if !tests >= max_tests then raise Budget;
    incr tests;
    let ok = pred p in
    if ok && compare (size p) (size !best) < 0 then best := p;
    ok
  in
  let rounds = ref 0 in
  let gave_up = ref false in
  (try
     let continue = ref true in
     while !continue do
       incr rounds;
       let before = size !best in
       let p = ddmin_instrs ~test !best in
       let p = drop_threads ~test p in
       ignore (merge_locations ~test p : Prog.t);
       (* Thread/location merges can re-open instruction removals (and
          vice versa); iterate until a whole round changes nothing. *)
       continue := compare (size !best) before < 0
     done
   with Budget -> gave_up := true);
  (!best, { s_tests = !tests; s_rounds = !rounds; s_gave_up = !gave_up })
