(** One verification job, executed in the current process.

    This is the code a forked batch worker runs; it is also callable
    in-process (tests, benchmarks).  A job computes the machine's
    complete outcome set, the SC reference set, and the Definition-2
    check under a synchronization model. *)

type model =
  | Drf0  (** the paper's Definition 2 check under DRF0 *)
  | Drf1  (** the Section-6 refinement: the check under DRF1 *)
  | Unconstrained  (** no obligation filter: the check is "appears SC" *)
  | No_check  (** record outcome sets only, no verdict *)

val model_of_string : string -> model option
(** ["drf0"], ["drf1"], ["all"] (unconstrained: the check is "appears
    SC"), or ["none"] (no check — record outcomes only). *)

val model_name : model -> string
(** Inverse of {!model_of_string}; the [model] field of cache keys and
    JSONL records. *)

val run :
  ?cancel:(unit -> bool) ->
  ?fuel:int ->
  ?spill_dir:string ->
  ?mem_budget:int ->
  model:model ->
  machine:Machines.t ->
  Prog.t ->
  (Verdict_cache.verdict, [ `Cancelled ]) result
(** Explore the program on the machine (sequentially — crash isolation
    comes from the process boundary, not domains), compare against the
    SC reference, and evaluate the model check.  [cancel] is threaded
    into the exploration as the per-job stop hook; [Error `Cancelled]
    means the hook fired and the verdict is unfinished.  With [fuel] the
    sweep may come back [Partial]: the verdict then has
    [v_complete = false] and a positive violation is still real, but a
    clean result is only "no violation found within fuel".

    [mem_budget] bounds the visited set: without [spill_dir] the sweep
    degrades to a Bloom filter when crossed ([v_degraded] records where,
    [v_complete] goes false); with [spill_dir] (a directory private to
    this job) it spills to disk instead and stays complete
    ([v_spilled_runs] counts the runs). *)
