(* Append-only verdict cache with per-record CRC framing.

   One record:

     WOVC 1 <crc32 hex> <key length> <payload length>\n
     <key bytes>\n
     <payload bytes>\n

   The CRC covers key ^ "\n" ^ payload.  The header is a plain text line
   (diagnosable with [head]); the payload is an opaque marshalled
   {!verdict}.  Validation order on read: magic, version, lengths (a
   declared length past EOF is a torn tail), CRC — and only then the
   unmarshal, so corrupted bytes are never decoded.  An invalid record is
   skipped and the reader resynchronizes on the next "WOVC " at a line
   start, so one bad record costs one recompute, not the whole file. *)

type verdict = {
  v_outcomes : string list;
  v_appears_sc : bool;
  v_obeys_model : bool;
  v_allows_exists : bool option;
  v_violation : bool;
  v_states : int;
  v_complete : bool;
  v_degraded : int option;
  v_spilled_runs : int;
}

(* Bump on any change that can alter a verdict for the same program
   text: machine semantics, the SC enumeration, the generator mapping,
   or the [verdict] record shape (the payload is marshalled).
   wovc2: symmetry reduction in the engines; v_degraded/v_spilled_runs
   added to the record. *)
let engine_version = "wovc2"

let magic = "WOVC "

(* The canonical program text drops the name line: the same program
   reached as a file, a builtin, or a generated seed must share a slot. *)
let canonical_text prog =
  Litmus_print.to_string
    (Prog.make ~name:"p" ~init:(Prog.init prog) ?exists:(Prog.exists prog)
       (Prog.threads prog))

let key ~prog ~machine ~model =
  Printf.sprintf "%s|%s|%s|%s"
    (Digest.to_hex (Digest.string (canonical_text prog)))
    machine model engine_version

(* Secondary, coarser key: the orbit-canonical rendering quotients the
   program by processor/location/register renaming, so every member of a
   symmetry class shares this slot.  Kept distinct from [key] by the
   prefix — the plain key stays exact-text so a hit there never needed
   the renaming argument at all. *)
let sym_key ~prog ~machine ~model =
  Printf.sprintf "sym:%s|%s|%s|%s"
    (Digest.to_hex (Digest.string (Prog_canon.text prog)))
    machine model engine_version

type t = {
  table : (string, verdict) Hashtbl.t;
  chan : out_channel option;
  mutable loaded : int;
  mutable corrupt_skipped : int;
  mutable hits : int;
  mutable misses : int;
  mutable appended : int;
}

type stats = {
  entries : int;
  loaded : int;
  corrupt_skipped : int;
  hits : int;
  misses : int;
  appended : int;
}

let frame key v =
  let payload = Marshal.to_string v [] in
  let crc = Crc32.digest (key ^ "\n" ^ payload) in
  Printf.sprintf "%s1 %08x %d %d\n%s\n%s\n" magic crc (String.length key)
    (String.length payload) key payload

(* --- load -------------------------------------------------------------------- *)

let is_magic_at data pos =
  pos + String.length magic <= String.length data
  && String.equal (String.sub data pos (String.length magic)) magic

(* The next record start at a line boundary strictly after [pos]. *)
let resync data pos =
  let len = String.length data in
  let rec go i =
    if i >= len then len
    else
      match String.index_from_opt data i '\n' with
      | None -> len
      | Some nl -> if is_magic_at data (nl + 1) then nl + 1 else go (nl + 1)
  in
  go pos

let load_into (t : t) data =
  let len = String.length data in
  let pos = ref 0 in
  let bad () =
    t.corrupt_skipped <- t.corrupt_skipped + 1;
    pos := resync data !pos
  in
  while !pos < len do
    if not (is_magic_at data !pos) then bad ()
    else
      match String.index_from_opt data !pos '\n' with
      | None ->
          (* Torn header at EOF. *)
          t.corrupt_skipped <- t.corrupt_skipped + 1;
          pos := len
      | Some nl -> (
          let header =
            String.sub data
              (!pos + String.length magic)
              (nl - !pos - String.length magic)
          in
          match String.split_on_char ' ' header with
          | [ version; crc_hex; klen; plen ] -> (
              match
                ( int_of_string_opt version,
                  int_of_string_opt ("0x" ^ crc_hex),
                  int_of_string_opt klen,
                  int_of_string_opt plen )
              with
              | Some 1, Some crc, Some klen, Some plen
                when klen >= 0 && plen >= 0 ->
                  let kstart = nl + 1 in
                  let pstart = kstart + klen + 1 in
                  let rec_end = pstart + plen + 1 in
                  if
                    rec_end > len
                    || data.[kstart + klen] <> '\n'
                    || data.[pstart + plen] <> '\n'
                  then bad () (* torn tail or corrupted lengths *)
                  else
                    let key = String.sub data kstart klen in
                    let payload = String.sub data pstart plen in
                    if Crc32.digest (key ^ "\n" ^ payload) <> crc then bad ()
                    else (
                      (match
                         (Marshal.from_string payload 0 : verdict)
                       with
                      | v ->
                          if not (Hashtbl.mem t.table key) then
                            Hashtbl.add t.table key v;
                          t.loaded <- t.loaded + 1
                      | exception (Failure _ | Invalid_argument _) ->
                          t.corrupt_skipped <- t.corrupt_skipped + 1);
                      pos := rec_end)
              | _ -> bad ())
          | _ -> bad ())
  done

let in_memory () =
  {
    table = Hashtbl.create 256;
    chan = None;
    loaded = 0;
    corrupt_skipped = 0;
    hits = 0;
    misses = 0;
    appended = 0;
  }

let open_file path =
  let t = in_memory () in
  (match In_channel.with_open_bin path In_channel.input_all with
  | data -> load_into t data
  | exception Sys_error _ -> () (* first run: no cache yet *));
  let chan =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  in
  { t with chan = Some chan }

(* --- use --------------------------------------------------------------------- *)

let find (t : t) key =
  match Hashtbl.find_opt t.table key with
  | Some v ->
      t.hits <- t.hits + 1;
      Some v
  | None ->
      t.misses <- t.misses + 1;
      None

let add (t : t) key v =
  if not (Hashtbl.mem t.table key) then begin
    Hashtbl.add t.table key v;
    (match t.chan with
    | None -> ()
    | Some ch ->
        output_string ch (frame key v);
        flush ch);
    t.appended <- t.appended + 1
  end

let stats (t : t) =
  {
    entries = Hashtbl.length t.table;
    loaded = t.loaded;
    corrupt_skipped = t.corrupt_skipped;
    hits = t.hits;
    misses = t.misses;
    appended = t.appended;
  }

let close t = match t.chan with None -> () | Some ch -> close_out ch
