(* The sequential (atomic, in-program-order) small-step semantics of litmus
   programs.  This is the semantics of the paper's "idealized architecture":
   all memory accesses execute atomically and in program order.  Both the SC
   enumerator and several abstract machines reuse these steps. *)

module Smap = Exp.Smap

type thread_state = { next : int; regs : int Smap.t }

type state = { memory : int Smap.t; threads : thread_state array }

let initial prog =
  {
    memory = Prog.initial_memory prog;
    threads =
      Array.init (Prog.num_threads prog) (fun _ ->
          { next = 0; regs = Smap.empty });
  }

let read_mem memory loc =
  match Smap.find_opt loc memory with Some v -> v | None -> 0

let thread_done prog state p =
  state.threads.(p).next >= List.length (Prog.thread prog p)

let all_done prog state =
  let n = Prog.num_threads prog in
  let rec loop p = p >= n || (thread_done prog state p && loop (p + 1)) in
  loop 0

let next_instr prog state p =
  let ts = state.threads.(p) in
  List.nth_opt (Prog.thread prog p) ts.next

(* Execute the next instruction of thread [p] atomically.  Returns [None] if
   the thread has finished or its next instruction is a blocked [Await] or
   [Lock] (spin-reads that cannot currently succeed). *)
let step prog state p =
  match next_instr prog state p with
  | None -> None
  | Some instr -> (
      let ts = state.threads.(p) in
      let effect =
        match instr with
        | Instr.Load { loc; reg; _ } ->
            Some (state.memory, Smap.add reg (read_mem state.memory loc) ts.regs)
        | Instr.Store { loc; value; _ } ->
            Some (Smap.add loc (Exp.eval ts.regs value) state.memory, ts.regs)
        | Instr.Rmw { loc; reg; value; _ } ->
            let old = read_mem state.memory loc in
            let regs = Smap.add reg old ts.regs in
            Some (Smap.add loc (Exp.eval regs value) state.memory, regs)
        | Instr.Await { loc; expect; reg; _ } ->
            if read_mem state.memory loc = expect then
              let regs =
                match reg with
                | Some r -> Smap.add r expect ts.regs
                | None -> ts.regs
              in
              Some (state.memory, regs)
            else None
        | Instr.Lock { loc } ->
            if read_mem state.memory loc = 0 then
              Some (Smap.add loc 1 state.memory, ts.regs)
            else None
        | Instr.Fence -> Some (state.memory, ts.regs)
      in
      match effect with
      | None -> None
      | Some (memory, regs) ->
          let threads = Array.copy state.threads in
          threads.(p) <- { next = ts.next + 1; regs };
          Some { memory; threads })

let final_of_state state =
  Final.make ~memory:state.memory
    ~regs:(Array.map (fun ts -> ts.regs) state.threads)

(* A canonical, structurally-comparable key for memoization. *)
type key = int array * (string * int) list * (string * int) list array

let key_of_state state : key =
  ( Array.map (fun ts -> ts.next) state.threads,
    Smap.bindings state.memory,
    Array.map (fun ts -> Smap.bindings ts.regs) state.threads )

(* [Hashtbl.hash]'s default 10-meaningful-node cap collides on states that
   differ only deep in a register file; widen the traversal. *)
let key_hash (k : key) = Hashtbl.hash_param 128 256 k
let key_equal (a : key) (b : key) = a = b
