(** Exhaustive sequentially consistent execution of litmus programs. *)

val outcomes : ?reduce:bool -> Prog.t -> Final.Set.t
(** The complete set of SC results, computed by memoized state-space
    exploration.  [reduce] (default [true]) enables a partial-order
    reduction that fires a thread's next instruction alone when it is a
    data access (or fence) provably independent of everything any other
    thread will still do — the outcome set is identical either way
    (checked differentially); [~reduce:false] is the escape hatch that
    forces the unreduced sweep. *)

val explore : ?reduce:bool -> Prog.t -> Final.Set.t * int
(** [outcomes] plus the number of distinct states visited — the state-count
    telemetry the bench harness records. *)

type por_stats = {
  por_taken : int;
      (** branch states where the reduction fired one provably independent
          instruction instead of interleaving *)
  por_declined : int;
      (** branch states the reduction examined but had to expand fully
          (always [0] with [~reduce:false]) *)
}
(** Hit/miss telemetry for the partial-order reduction. *)

val explore_counted :
  ?reduce:bool -> ?sym:bool -> Prog.t -> Final.Set.t * int * por_stats
(** {!explore} plus the reduction's {!por_stats} — the observability feed
    for the exploration dashboards.  [sym] (default [false]) additionally
    prunes modulo the program's automorphism group ({!Sym}): the visited
    table is probed with the least key of each state's orbit and recorded
    outcomes are closed under the group, so the outcome set is identical
    with and without it — only the state count drops. *)

val explore_within :
  ?reduce:bool ->
  ?sym:bool ->
  budget:Budget.t ->
  Prog.t ->
  Final.Set.t * int * bool
(** {!explore} under a {!Budget.t}, checked at a safe point every few
    dozen visited states.  The third component is [true] iff the sweep ran
    to completion; on [false] the set is a sound {e subset} of the
    complete SC set — a positive subset test against it is still valid, a
    negative one is inconclusive. *)

val outcomes_cached : Prog.t -> Final.Set.t
(** [outcomes] memoized process-wide on physical program identity (with
    reduction on).  Use in sweeps that repeatedly compare machines against
    the same program's SC set.  Thread-safe. *)

val iter_traces : ?reduce:bool -> Prog.t -> (int list -> Final.t -> unit) -> unit
(** [iter_traces p f] calls [f trace final] for every SC interleaving, where
    [trace] lists event ids (see {!Evts}) in execution order.  Exponential in
    program size; use for litmus-sized programs and cross-checks only.
    [reduce] defaults to [false] here: full-trace clients (race detection on
    every interleaving) need exhaustive enumeration; with [~reduce:true]
    only a representative of each commutation class is visited (covering
    every final result, but not every trace). *)

val count_traces : ?reduce:bool -> Prog.t -> int

val allows : Prog.t -> Cond.t -> bool
(** Is the condition satisfied by some SC outcome? *)

val allows_exists : Prog.t -> bool option
(** [allows] applied to the program's own "exists" clause, if any. *)
