(* Program automorphisms, for symmetry reduction.

   An automorphism of a litmus program is a triple (processor permutation,
   memory-location renaming, per-thread register renaming) under which the
   program is invariant: thread [pi(p)]'s instruction list is exactly
   thread [p]'s with every location pushed through the (global) location
   bijection and every register through thread [p]'s register bijection,
   and the initial memory is unchanged as a set of bindings.

   Such a map is an automorphism of every abstract machine's transition
   system here: machine states are built from per-processor components
   plus a location-indexed memory, instructions are matched positionally
   (issue order is per-thread program order, which the permutation
   preserves), and the initial state is fixed by construction.  The final
   (outcome) set of the program is therefore closed under the group — the
   soundness fact the exploration engine's orbit pruning rests on.

   The group is discovered by brute force over processor permutations
   (threads are few: the search is capped at [max_threads]); for each
   candidate the location/register bijections are not guessed but
   *derived* by positional unification of the instruction lists, then
   checked for global consistency and init-memory invariance.  The
   [exists] clause is deliberately ignored: outcome sets are sets of
   final states, closed under the group whether or not the clause is
   symmetric.  (Program-level canonicalization for cache keys, which must
   respect the clause, lives in [Prog_canon].) *)

module Smap = Exp.Smap

type perm = {
  p_proc : int array;  (** image: old processor [p] becomes [p_proc.(p)] *)
  p_loc : (string * string) list;  (** location bijection (old, new) *)
  p_reg : (string * string) list array;
      (** per {e old} processor: register bijection (old, new) into
          processor [p_proc.(p)]'s register space *)
}

type t = {
  perms : perm list;  (** every non-identity automorphism *)
  order : int;  (** group order, [List.length perms + 1] *)
}

let trivial = { perms = []; order = 1 }
let order t = t.order

(* Automorphism discovery is O(threads! * instrs); past this many threads
   the factorial dominates and litmus programs this wide do not occur. *)
let max_threads = 6

let assoc_default x l = match List.assoc_opt x l with Some y -> y | None -> x

let proc pi p = pi.p_proc.(p)
let rename_loc pi l = assoc_default l pi.p_loc
let rename_reg pi ~proc:p r = assoc_default r pi.p_reg.(p)

let permute_procs pi f a =
  let n = Array.length a in
  let out = Array.make n a.(0) in
  for p = 0 to n - 1 do
    out.(pi.p_proc.(p)) <- f p a.(p)
  done;
  out

let rename_bindings pi l =
  List.sort compare (List.map (fun (loc, v) -> (rename_loc pi loc, v)) l)

let rename_reg_bindings pi ~proc:p l =
  List.sort compare (List.map (fun (r, v) -> (rename_reg pi ~proc:p r, v)) l)

let apply_final pi (f : Final.t) =
  let memory =
    Smap.fold
      (fun l v m -> Smap.add (rename_loc pi l) v m)
      f.Final.memory Smap.empty
  in
  let n = Array.length f.Final.regs in
  let regs = Array.make n Smap.empty in
  Array.iteri
    (fun p rm ->
      regs.(pi.p_proc.(p)) <-
        Smap.fold (fun r v m -> Smap.add (rename_reg pi ~proc:p r) v m) rm
          Smap.empty)
    f.Final.regs;
  Final.make ~memory ~regs

(* --- discovery ------------------------------------------------------------- *)

exception No_fit

(* A bijection accumulator: forward and inverse maps, extended
   consistently or not at all. *)
type bij = { mutable fwd : string Smap.t; mutable inv : string Smap.t }

let bij () = { fwd = Smap.empty; inv = Smap.empty }

let unify_bij b x y =
  (match Smap.find_opt x b.fwd with
  | Some y' -> if not (String.equal y y') then raise No_fit
  | None -> (
      match Smap.find_opt y b.inv with
      | Some _ -> raise No_fit
      | None ->
          b.fwd <- Smap.add x y b.fwd;
          b.inv <- Smap.add y x b.inv));
  ()

let rec unify_exp rb e e' =
  match (e, e') with
  | Exp.Const c, Exp.Const c' -> if c <> c' then raise No_fit
  | Exp.Reg r, Exp.Reg r' -> unify_bij rb r r'
  | Exp.Add (a, b), Exp.Add (a', b') | Exp.Sub (a, b), Exp.Sub (a', b') ->
      unify_exp rb a a';
      unify_exp rb b b'
  | _ -> raise No_fit

let unify_instr lb rb i i' =
  match (i, i') with
  | Instr.Load { kind; loc; reg }, Instr.Load { kind = k'; loc = l'; reg = r' }
    ->
      if kind <> k' then raise No_fit;
      unify_bij lb loc l';
      unify_bij rb reg r'
  | ( Instr.Store { kind; loc; value },
      Instr.Store { kind = k'; loc = l'; value = v' } ) ->
      if kind <> k' then raise No_fit;
      unify_bij lb loc l';
      unify_exp rb value v'
  | ( Instr.Rmw { kind; loc; reg; value },
      Instr.Rmw { kind = k'; loc = l'; reg = r'; value = v' } ) ->
      if kind <> k' then raise No_fit;
      unify_bij lb loc l';
      unify_bij rb reg r';
      unify_exp rb value v'
  | ( Instr.Await { kind; loc; expect; reg },
      Instr.Await { kind = k'; loc = l'; expect = e'; reg = r' } ) -> (
      if kind <> k' || expect <> e' then raise No_fit;
      unify_bij lb loc l';
      match (reg, r') with
      | None, None -> ()
      | Some r, Some r' -> unify_bij rb r r'
      | _ -> raise No_fit)
  | Instr.Lock { loc }, Instr.Lock { loc = l' } -> unify_bij lb loc l'
  | Instr.Fence, Instr.Fence -> ()
  | _ -> raise No_fit

(* All permutations of [0..n-1] except the identity, as image arrays. *)
let permutations n =
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: rest as l ->
        (x :: l) :: List.map (fun r -> y :: r) (insert x rest)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: rest -> List.concat_map (insert x) (perms rest)
  in
  perms (List.init n Fun.id)
  |> List.map Array.of_list
  |> List.filter (fun a -> not (Array.for_all (fun i -> a.(i) = i) (Array.init n Fun.id)))

let automorphism_of prog threads pproc =
  let n = Array.length threads in
  (* Shape prune: corresponding threads must have equal lengths. *)
  for p = 0 to n - 1 do
    if List.length threads.(p) <> List.length threads.(pproc.(p)) then
      raise No_fit
  done;
  let lb = bij () in
  let rbs = Array.init n (fun _ -> bij ()) in
  for p = 0 to n - 1 do
    List.iter2 (unify_instr lb rbs.(p)) threads.(p) threads.(pproc.(p))
  done;
  (* Locations appearing only in the init list must map to themselves;
     a program location already claiming that name breaks the bijection. *)
  List.iter
    (fun (l, _) ->
      if not (Smap.mem l lb.fwd) then
        match Smap.find_opt l lb.inv with
        | Some _ -> raise No_fit
        | None ->
            lb.fwd <- Smap.add l l lb.fwd;
            lb.inv <- Smap.add l l lb.inv)
    (Prog.init prog);
  (* Initial memory invariance, as a set of bindings (absent locations
     read 0 on both sides of a bijection, so the listed bindings decide). *)
  let norm bs = List.sort compare bs in
  let init = Prog.init prog in
  let ren l =
    match Smap.find_opt l lb.fwd with Some x -> x | None -> l
  in
  if norm (List.map (fun (l, v) -> (ren l, v)) init) <> norm init then
    raise No_fit;
  {
    p_proc = pproc;
    p_loc = Smap.bindings lb.fwd;
    p_reg = Array.map (fun b -> Smap.bindings b.fwd) rbs;
  }

let of_prog prog =
  let n = Prog.num_threads prog in
  if n < 2 || n > max_threads then trivial
  else begin
    let threads = Array.of_list (Prog.threads prog) in
    let perms =
      List.filter_map
        (fun pproc ->
          match automorphism_of prog threads pproc with
          | a -> Some a
          | exception No_fit -> None)
        (permutations n)
    in
    { perms; order = List.length perms + 1 }
  end

(* The group depends only on the program; cache it across calls.  An
   [Atomic] so parallel exploration domains can race on it safely — a
   lost update merely recomputes the (immutable) group. *)
let cache : (Prog.t * t) option Atomic.t = Atomic.make None

let cached prog =
  match Atomic.get cache with
  | Some (p, g) when p == prog -> g
  | Some _ | None ->
      let g = of_prog prog in
      Atomic.set cache (Some (prog, g));
      g
