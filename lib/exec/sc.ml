(* Exhaustive enumeration of sequentially consistent executions.

   An SC execution is an interleaving of the threads in which each access
   executes atomically, in program order (Lamport's definition, as
   instantiated in the paper's introduction).  [outcomes] computes the full
   set of results by reachability over machine states with a structural
   visited table and, by default, a partial-order reduction;
   [iter_traces] enumerates interleavings (no memoization — exponential,
   intended for litmus-sized programs and for cross-checking smarter
   analyses). *)

module K = Hashtbl.Make (struct
  type t = Sem.key

  let hash = Sem.key_hash
  let equal = Sem.key_equal
end)

(* --- partial-order reduction ------------------------------------------------

   At a state where some thread's next instruction is a *data* load or
   store (or a fence) that cannot conflict with anything any other thread
   will ever do again — no other thread's remaining instructions access the
   location at all for a write, nor write it for a read — interleaving it
   against the other threads is pure redundancy: it commutes with every
   step the others can take before it, so every complete run is
   Mazurkiewicz-equivalent to one that fires it immediately.  Exploring
   only that step preserves the outcome set exactly.

   Synchronization operations are never commuted: they are the program's
   ordering backbone, and the blocking ones ([Await]/[Lock]) have
   enabledness that other threads control, so firing them eagerly could
   not be justified by static independence.  The same goes for data
   [Await]s (blocking) and RMWs (conservatively treated as sync). *)

(* The static conflict facts (per-thread suffix masks) come from
   {!Por_static}, the table this reduction now shares with the abstract
   machines' independence oracles. *)

(* The first thread whose next instruction can soundly be fired alone, if
   any.  Determinism of the choice keeps the reduced graph canonical. *)
(* The independence test runs once per (state, thread) on the hottest
   loop in the tree, so it uses [Por_static]'s dense-location-id masks —
   a shift and a mask per other thread, no map lookup — whenever the
   program's locations fit one word (every litmus-sized program), and
   the string-keyed suffix maps otherwise. *)
let por_candidate (info : Por_static.t) st =
  let nprocs = Array.length st.Sem.threads in
  let dense = Por_static.has_dense_ids info in
  let clear p ~pj loc ~write =
    let lid = if dense then Por_static.instr_loc_id info ~p ~j:pj else -1 in
    let ok = ref true in
    for q = 0 to nprocs - 1 do
      if !ok && q <> p then begin
        let jq = st.Sem.threads.(q).Sem.next in
        if
          if dense then
            if write then Por_static.access_remains_id info ~p:q ~j:jq lid
            else Por_static.write_remains_id info ~p:q ~j:jq lid
          else if write then Por_static.access_remains info ~p:q ~j:jq loc
          else Por_static.write_remains info ~p:q ~j:jq loc
        then ok := false
      end
    done;
    !ok
  in
  let rec pick p =
    if p >= nprocs then None
    else
      let j = st.Sem.threads.(p).Sem.next in
      let instrs = info.Por_static.instrs.(p) in
      if j >= Array.length instrs then pick (p + 1)
      else
        let eligible =
          match instrs.(j) with
          | Instr.Fence -> true
          | Instr.Load { kind = Instr.Data; loc; _ } ->
              clear p ~pj:j loc ~write:false
          | Instr.Store { kind = Instr.Data; loc; _ } ->
              clear p ~pj:j loc ~write:true
          | _ -> false
        in
        if eligible then Some p else pick (p + 1)
  in
  pick 0

(* --- symmetry reduction -----------------------------------------------------

   Probe the visited table with the least key in the state's orbit under
   the program's automorphism group, and close recorded outcomes under
   the group at record time.  Sound because every automorphism fixes the
   initial state and maps steps to steps and finals to finals (see
   {!Sym}): a state whose orbit representative was already expanded has
   exactly the image outcomes of the expanded one, and those are in the
   accumulator by closure.  The argument composes with the partial-order
   reduction above by induction on the (acyclic) SC graph. *)

let permute_key pi ((next, mem, regs) : Sem.key) : Sem.key =
  ( Sym.permute_procs pi (fun _ n -> n) next,
    Sym.rename_bindings pi mem,
    Sym.permute_procs pi
      (fun p rb -> Sym.rename_reg_bindings pi ~proc:p rb)
      regs )

let orbit_min perms (k : Sem.key) =
  List.fold_left
    (fun m pi ->
      let k' = permute_key pi k in
      if compare k' m < 0 then k' else m)
    k perms

(* --- outcome enumeration ---------------------------------------------------- *)

type por_stats = { por_taken : int; por_declined : int }

(* Reachability sweep: the outcome set is the union of finals over all
   reachable states, collected into one accumulator (no per-node set
   unions).  Returns the set, the number of distinct states visited, the
   reduction's hit/miss telemetry, and whether the sweep ran to
   completion.  [budget] is checked at a safe point every few dozen
   visited states; on exhaustion the sweep drains cleanly and the set is
   a sound subset of the complete one (exploration only cuts branches). *)
let explore_budgeted ?(reduce = true) ?(sym = false) ?budget prog =
  let info = if reduce then Some (Por_static.cached prog) else None in
  let perms = if sym then (Sym.cached prog).Sym.perms else [] in
  let visited : unit K.t = K.create 1024 in
  let acc = ref Final.Set.empty in
  let taken = ref 0 in
  let declined = ref 0 in
  let complete = ref true in
  let nprocs = Prog.num_threads prog in
  let stack = ref [ Sem.initial prog ] in
  let running = ref true in
  (* A visited SC state costs on the order of a key plus a table binding;
     32 words is a deliberately low estimate so the budget errs on the
     side of stopping early rather than overshooting. *)
  let entry_bytes = 32 * (Sys.word_size / 8) in
  let exhausted () =
    match budget with
    | None -> false
    | Some b ->
        K.length visited land 63 = 0
        && Budget.check b ~bytes:(K.length visited * entry_bytes) <> None
  in
  while !running do
    match !stack with
    | [] -> running := false
    | st :: rest -> (
        if exhausted () then begin
          complete := false;
          running := false
        end
        else begin
        stack := rest;
        let k = orbit_min perms (Sem.key_of_state st) in
        if not (K.mem visited k) then begin
          K.add visited k ();
          if Sem.all_done prog st then begin
            let f = Sem.final_of_state st in
            acc := Final.Set.add f !acc;
            List.iter
              (fun pi -> acc := Final.Set.add (Sym.apply_final pi f) !acc)
              perms
          end
          else
            match
              match info with None -> None | Some i -> por_candidate i st
            with
            | Some p -> (
                incr taken;
                (* The candidate is a non-blocking data access or fence:
                   the step cannot fail. *)
                match Sem.step prog st p with
                | Some st' -> stack := st' :: !stack
                | None -> assert false)
            | None ->
                if reduce then incr declined;
                for p = nprocs - 1 downto 0 do
                  match Sem.step prog st p with
                  | None -> ()
                  | Some st' -> stack := st' :: !stack
                done
        end
        end)
  done;
  ( !acc,
    K.length visited,
    { por_taken = !taken; por_declined = !declined },
    !complete )

let explore_counted ?reduce ?sym prog =
  let set, states, por, _complete = explore_budgeted ?reduce ?sym prog in
  (set, states, por)

let explore_within ?reduce ?sym ~budget prog =
  let set, states, _por, complete =
    explore_budgeted ?reduce ?sym ~budget prog
  in
  (set, states, complete)

let explore ?reduce prog =
  let set, states, _ = explore_counted ?reduce prog in
  (set, states)

let outcomes ?reduce prog = fst (explore ?reduce prog)

(* --- the process-wide SC cache ----------------------------------------------

   [appears_sc]-style sweeps ask for the same program's SC set once per
   machine; enumerating it anew each time dominated their cost.  Keyed on
   physical program identity (programs are built once and passed around),
   guarded by a mutex so parallel exploration clients can share it. *)

let cache_lock = Mutex.create ()
let cache : (Prog.t * Final.Set.t) list ref = ref []
let cache_limit = 512

let outcomes_cached prog =
  Mutex.lock cache_lock;
  let hit = List.assq_opt prog !cache in
  Mutex.unlock cache_lock;
  match hit with
  | Some s -> s
  | None ->
      let s = outcomes prog in
      Mutex.lock cache_lock;
      if not (List.mem_assq prog !cache) then
        cache :=
          (prog, s) :: List.filteri (fun i _ -> i < cache_limit - 1) !cache;
      Mutex.unlock cache_lock;
      s

(* --- trace enumeration ------------------------------------------------------ *)

let iter_traces ?(reduce = false) prog f =
  let evts = Evts.of_prog prog in
  let nprocs = Prog.num_threads prog in
  (* Event ids of each thread as arrays for O(1) lookup by index. *)
  let ids = Array.init nprocs (fun p -> Array.of_list (Evts.by_proc evts p)) in
  let info = if reduce then Some (Por_static.cached prog) else None in
  let rec explore state trace =
    if Sem.all_done prog state then
      f (List.rev trace) (Sem.final_of_state state)
    else
      let fire p state' =
        let fired = ids.(p).(state.Sem.threads.(p).Sem.next) in
        explore state' (fired :: trace)
      in
      match
        match info with None -> None | Some i -> por_candidate i state
      with
      | Some p -> (
          match Sem.step prog state p with
          | Some state' -> fire p state'
          | None -> assert false)
      | None ->
          for p = 0 to nprocs - 1 do
            match Sem.step prog state p with
            | None -> ()
            | Some state' -> fire p state'
          done
  in
  explore (Sem.initial prog) []

let count_traces ?reduce prog =
  let n = ref 0 in
  iter_traces ?reduce prog (fun _ _ -> incr n);
  !n

let allows prog cond =
  Cond.satisfiable_in (outcomes prog) cond

let allows_exists prog =
  match Prog.exists prog with
  | None -> None
  | Some c -> Some (allows prog c)
