(** Program automorphisms — the symmetry groups the exploration engines
    reduce modulo.

    An automorphism is a processor permutation together with the (derived)
    location and per-thread register bijections under which the program is
    invariant: corresponding threads run the same instruction list up to
    renaming, and the initial memory is unchanged.  Every such map is an
    automorphism of each abstract machine's transition graph, it fixes the
    initial state, and it maps final states to final states — so the
    outcome set is closed under the group, which is what makes
    orbit-representative pruning sound.

    The [exists] clause is not required to be invariant: outcome sets are
    final-state sets, closed under the group regardless.  Clause-aware
    program canonicalization (for verdict-cache keys) is [Prog_canon]'s
    job, not this module's. *)

type perm = {
  p_proc : int array;  (** image: old processor [p] becomes [p_proc.(p)] *)
  p_loc : (string * string) list;  (** location bijection, [(old, new)] *)
  p_reg : (string * string) list array;
      (** per {e old} processor [p]: register bijection into processor
          [p_proc.(p)]'s register space *)
}
(** One non-identity automorphism.  Plain structural data: safe to
    marshal, compare and share across domains. *)

type t = {
  perms : perm list;  (** every non-identity automorphism *)
  order : int;  (** group order, [List.length perms + 1] *)
}

val trivial : t
(** The one-element group: no reduction possible (or wanted). *)

val order : t -> int

val max_threads : int
(** Discovery is brute force over processor permutations; programs wider
    than this get {!trivial} (the factorial dominates past it). *)

val of_prog : Prog.t -> t
(** The full automorphism group of a program, by positional unification
    of instruction lists under every candidate processor permutation. *)

val cached : Prog.t -> t
(** {!of_prog} memoized process-wide on physical program identity.
    Thread-safe (racing domains at worst recompute the immutable group). *)

(** {2 Applying a permutation}

    Helpers the machines' [permute] implementations are built from.  All
    renamings default to the identity outside the recorded bijections, so
    callers need not special-case untouched names. *)

val proc : perm -> int -> int
(** The image of a processor index. *)

val rename_loc : perm -> string -> string
val rename_reg : perm -> proc:int -> string -> string

val permute_procs : perm -> (int -> 'a -> 'a) -> 'a array -> 'a array
(** [permute_procs pi f a] is the array [out] with
    [out.(proc pi p) = f p a.(p)] — the per-processor component move
    every machine key shares.  [a] must be non-empty. *)

val rename_bindings : perm -> (string * int) list -> (string * int) list
(** Rename the keys of a sorted location-binding list and re-sort (the
    renaming does not preserve [Smap.bindings] order). *)

val rename_reg_bindings :
  perm -> proc:int -> (string * int) list -> (string * int) list
(** Same for a processor's register-binding list. *)

val apply_final : perm -> Final.t -> Final.t
(** The image of an outcome: memory relocated, register files moved to
    the image processor and renamed.  Used to close recorded outcome sets
    under the group. *)
