(** Static per-program conflict facts shared by the partial-order
    reductions: the SC checker's candidate test ({!Sc}) and the machine
    independence oracles (in [lib/machine]) all key off the same questions
    — answered once per program here rather than once per state.

    All indices are clamped, so callers may pass a thread's
    next-instruction index even when the thread has run off the end of its
    program. *)

type t = {
  instrs : Instr.t array array;  (** per-thread instruction arrays *)
  suffix : int Exp.Smap.t array array;
      (** [suffix.(p).(j)]: location -> 2-bit mask over thread [p]'s
          instructions from index [j] on; bit 0 = some access remains,
          bit 1 = some write remains *)
  sync_after : bool array array;
      (** [sync_after.(p).(j)]: a synchronization-class instruction
          remains at index >= [j] in thread [p] *)
  loc_masks : (int * int) Exp.Smap.t array;
      (** per thread: location -> (access bitmask, write bitmask) over
          instruction indices, for executed-set machines *)
  loc_ids : int Exp.Smap.t;
      (** location -> dense id, in order of first appearance *)
  iloc : int array array;
      (** [iloc.(p).(j)]: dense id of the location instruction [j] of
          thread [p] touches, or [-1] for fences *)
  suffix_ids : int array array;
      (** the suffix masks re-encoded as 2 bits per dense location id —
          the allocation-free fast path; [[||]] when the program has too
          many locations to pack in one word *)
}

val is_sync_class : Instr.t -> bool
(** Instructions that commit through a machine's synchronization path:
    sync loads/stores/awaits, RMWs and locks — everything except plain
    data accesses and fences. *)

val of_prog : Prog.t -> t

val cached : Prog.t -> t
(** [of_prog] behind a process-wide physical-identity cache; safe to call
    from multiple domains. *)

val access_remains : t -> p:int -> j:int -> string -> bool
(** Does thread [p] still access [loc] at instruction index >= [j]? *)

val write_remains : t -> p:int -> j:int -> string -> bool
(** Does thread [p] still write [loc] at instruction index >= [j]? *)

val sync_remains : t -> p:int -> j:int -> bool
(** Does thread [p] still have a synchronization-class instruction at
    index >= [j]? *)

val loc_bitmasks : t -> p:int -> string -> int * int
(** [(access, write)] bitmasks of thread [p]'s instruction indices
    touching [loc]; [(0, 0)] when the thread never touches it. *)

val has_dense_ids : t -> bool
(** Whether the dense-id fast path below is available (it is unless the
    program names more locations than fit 2-bits-each in one word). *)

val instr_loc_id : t -> p:int -> j:int -> int
(** Dense id of the location instruction [j] of thread [p] touches, or
    [-1].  Unlike the suffix queries, [j] must be a valid instruction
    index. *)

val access_remains_id : t -> p:int -> j:int -> int -> bool
val write_remains_id : t -> p:int -> j:int -> int -> bool
(** {!access_remains}/{!write_remains} keyed by dense location id: a
    shift and a mask on a precomputed word, no map lookup, no
    allocation.  Only valid when {!has_dense_ids}. *)
